// Snapshot/restore seam for the thermal models. The dynamic state of a
// Model is its ambient temperature plus the per-DIMM temperature pairs;
// the decay caches are deliberately excluded — they revalidate against
// (dt, tau) on every step, so a restored model recomputes the identical
// factors by the identical expression and stays bit-compatible with a
// model that never checkpointed.

package thermal

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"dramtherm/internal/fbconfig"
)

// ModelState is the restorable dynamic state of a Model.
type ModelState struct {
	Ambient fbconfig.Celsius
	DIMMs   []DIMMState
}

// Snapshot captures the model's dynamic state. The returned state owns
// its DIMM slice and stays valid after further Advance calls.
func (m *Model) Snapshot() ModelState {
	return ModelState{
		Ambient: m.Ambient,
		DIMMs:   append([]DIMMState(nil), m.DIMMs...),
	}
}

// Restore overwrites the model's dynamic state from a snapshot taken on
// a model with the same DIMM geometry.
func (m *Model) Restore(st ModelState) error {
	if len(st.DIMMs) != len(m.DIMMs) {
		return fmt.Errorf("thermal: restore with %d DIMMs onto a model with %d", len(st.DIMMs), len(m.DIMMs))
	}
	m.Ambient = st.Ambient
	copy(m.DIMMs, st.DIMMs)
	return nil
}

// Digest returns the canonical digest of the state: the SHA-256 of its
// full-precision rendering, truncated to 16 hex digits (the same idiom
// as core.ConfigDigest). %v renders floats with the shortest
// round-trippable form, so distinct bit patterns digest differently.
func (st ModelState) Digest() string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%+v", st)))
	return hex.EncodeToString(sum[:8])
}

// AmbientState is the restorable dynamic state of an AmbientModel: the
// current ambient temperature. Params and Inlet are configuration.
type AmbientState struct {
	T fbconfig.Celsius
}

// Snapshot captures the ambient model's dynamic state.
func (am *AmbientModel) Snapshot() AmbientState { return AmbientState{T: am.T} }

// Restore overwrites the ambient temperature from a snapshot.
func (am *AmbientModel) Restore(st AmbientState) { am.T = st.T }
