package thermal

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dramtherm/internal/fbconfig"
	"dramtherm/internal/power"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) < eps }

// TestStableEq33Eq34 checks the stable-temperature equations against hand
// computation with Table 3.2 (AOHS 1.5) values.
func TestStableEq33Eq34(t *testing.T) {
	c := fbconfig.CoolingAOHS15
	p := power.DIMMPower{AMB: 6.0, DRAM: 2.0}
	// Eq 3.3: 50 + 6*9.3 + 2*3.4 = 112.6
	if got := StableAMB(c, 50, p); !almost(got, 112.6, 1e-9) {
		t.Fatalf("StableAMB = %v", got)
	}
	// Eq 3.4: 50 + 6*4.1 + 2*4.0 = 82.6
	if got := StableDRAM(c, 50, p); !almost(got, 82.6, 1e-9) {
		t.Fatalf("StableDRAM = %v", got)
	}
}

// TestStepEq35 verifies the RC update: after exactly tau seconds the gap
// closes by 1−1/e.
func TestStepEq35(t *testing.T) {
	got := Step(100, 120, 50, 50)
	want := 100 + 20*(1-math.Exp(-1))
	if !almost(got, want, 1e-9) {
		t.Fatalf("Step = %v, want %v", got, want)
	}
	// Zero tau jumps to stable.
	if got := Step(100, 120, 1, 0); got != 120 {
		t.Fatalf("tau=0 Step = %v", got)
	}
}

// Property: Step moves toward stable and never overshoots it — and the
// cached-factor fast path (Decay.Step) preserves the invariant, sharing
// one Decay across all draws so the cache is exercised under changing
// (dt, tau) pairs.
func TestStepNoOvershootProperty(t *testing.T) {
	var d Decay
	f := func(t0, stable uint16, dtRaw uint8) bool {
		start := float64(t0%200) + 20
		target := float64(stable%200) + 20
		dt := float64(dtRaw%100) + 0.01
		next := Step(start, target, dt, 50)
		if next != d.Step(start, target, dt, 50) {
			return false // fast path must match exactly here (fixed tau)
		}
		if start <= target {
			return next >= start-1e-9 && next <= target+1e-9
		}
		return next <= start+1e-9 && next >= target-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the cached-factor fast path matches the math.Exp reference
// exactly — or within 1 ULP, the documented contract — for random
// (t, stable, dt, tau), including repeated (dt, tau) pairs that hit the
// cache and tau <= 0 jumps. ulpDiff mirrors simtest.ULPDiff (simtest
// imports sim which imports thermal, so the helper cannot be imported
// here).
func TestDecayMatchesStepProperty(t *testing.T) {
	var d Decay
	var cached int
	var lastDt, lastTau float64
	f := func(tRaw, sRaw uint16, dtRaw, tauRaw uint8, reuse bool) bool {
		start := 20 + float64(tRaw)/300
		target := 20 + float64(sRaw)/300
		dt := 0.001 + float64(dtRaw)/10
		tau := float64(tauRaw)/4 - 2 // spans negative, zero and positive tau
		if reuse && lastDt != 0 {
			dt, tau = lastDt, lastTau // force a cache hit
			cached++
		}
		lastDt, lastTau = dt, tau
		want := Step(start, target, dt, tau)
		got := d.Step(start, target, dt, tau)
		return ulpDiff(got, want) <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
	if cached == 0 {
		t.Fatal("property never exercised the cached-factor path")
	}
}

// TestDecayMatchesStepExact pins the stronger property the simulator
// relies on today: for a fixed (dt, tau) served from the cache, the
// fast path is bit-identical to Step, because the factor is computed by
// the same expression.
func TestDecayMatchesStepExact(t *testing.T) {
	var d Decay
	for i := 0; i < 1000; i++ {
		start := 20 + float64(i)*0.097
		target := 120 - float64(i)*0.083
		want := Step(start, target, 0.01, 50)
		if got := d.Step(start, target, 0.01, 50); got != want {
			t.Fatalf("i=%d: Decay.Step = %v, Step = %v (must be bit-identical)", i, got, want)
		}
	}
	// tau <= 0 must jump to stable exactly, as Step does.
	if got := d.Step(100, 120, 1, 0); got != 120 {
		t.Fatalf("tau=0 Decay.Step = %v", got)
	}
	if got := d.Step(100, 120, 1, -5); got != 120 {
		t.Fatalf("tau<0 Decay.Step = %v", got)
	}
}

func ulpDiff(a, b float64) uint64 {
	ord := func(f float64) uint64 {
		u := math.Float64bits(f)
		if u&(1<<63) != 0 {
			return ^u
		}
		return u | 1<<63
	}
	x, y := ord(a), ord(b)
	if x > y {
		return x - y
	}
	return y - x
}

// Property: the step update converges to the stable temperature — on
// the reference path and on the cached fast path.
func TestStepConvergence(t *testing.T) {
	temp := 60.0
	for i := 0; i < 10000; i++ {
		temp = Step(temp, 110, 0.1, 50)
	}
	if !almost(temp, 110, 0.01) {
		t.Fatalf("did not converge: %v", temp)
	}
	var d Decay
	temp = 60.0
	for i := 0; i < 10000; i++ {
		temp = d.Step(temp, 110, 0.1, 50)
	}
	if !almost(temp, 110, 0.01) {
		t.Fatalf("fast path did not converge: %v", temp)
	}
}

// TestAdvanceExactMatchesAdvance runs a model through both Advance
// paths over a varying power schedule and requires bit-identical
// states.
func TestAdvanceExactMatchesAdvance(t *testing.T) {
	c := fbconfig.CoolingAOHS15
	idle := power.DIMMPower{AMB: 5.1, DRAM: 0.98}
	fast := NewModel(c, 50, 4, idle)
	exact := NewModel(c, 50, 4, idle)
	for i := 0; i < 500; i++ {
		w := 5 + 3*math.Sin(float64(i)/7)
		pw := []power.DIMMPower{
			{AMB: w, DRAM: w / 3}, {AMB: w * 0.9, DRAM: w / 4},
			{AMB: w * 0.8, DRAM: w / 5}, {AMB: w * 0.7, DRAM: w / 6},
		}
		if err := fast.Advance(pw, 0.01); err != nil {
			t.Fatal(err)
		}
		if err := exact.AdvanceExact(pw, 0.01); err != nil {
			t.Fatal(err)
		}
	}
	for i := range fast.DIMMs {
		if fast.DIMMs[i] != exact.DIMMs[i] {
			t.Fatalf("DIMM %d diverged: fast %+v exact %+v", i, fast.DIMMs[i], exact.DIMMs[i])
		}
	}
}

func TestModelAdvance(t *testing.T) {
	c := fbconfig.CoolingAOHS15
	idle := power.DIMMPower{AMB: 5.1, DRAM: 0.98}
	m := NewModel(c, 50, 4, idle)
	// Initially equilibrated at the idle stable point.
	idleStable := StableAMB(c, 50, idle)
	if !almost(m.HottestAMB(), idleStable, 1e-9) {
		t.Fatalf("initial AMB = %v, want %v", m.HottestAMB(), idleStable)
	}
	// Heating with hot power raises all temperatures monotonically.
	hot := []power.DIMMPower{{AMB: 7, DRAM: 2}, {AMB: 7, DRAM: 2}, {AMB: 7, DRAM: 2}, {AMB: 7, DRAM: 2}}
	prev := m.HottestAMB()
	for i := 0; i < 20; i++ {
		if err := m.Advance(hot, 5); err != nil {
			t.Fatal(err)
		}
		if m.HottestAMB() < prev-1e-9 {
			t.Fatalf("temperature fell while heating")
		}
		prev = m.HottestAMB()
	}
	if m.HottestDRAM() <= 0 {
		t.Fatal("DRAM temperature missing")
	}
	// Wrong power slice length errors.
	if err := m.Advance(hot[:2], 1); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestAmbientModelEq36(t *testing.T) {
	a := fbconfig.AmbientIntegrated
	cores := []CoreActivity{{Volt: 1.55, IPC: 0.5}, {Volt: 1.55, IPC: 0.5}}
	// Eq 3.6: inlet + 1.5 * (2 * 1.55 * 0.5) = inlet + 2.325
	if got := StableAmbient(a, 45, cores); !almost(got, 47.325, 1e-9) {
		t.Fatalf("StableAmbient = %v", got)
	}
	am := NewAmbientModel(a, 45)
	if am.T != 45 {
		t.Fatalf("initial ambient = %v", am.T)
	}
	for i := 0; i < 1000; i++ {
		am.Advance(cores, 1)
	}
	if !almost(am.T, 47.325, 0.01) {
		t.Fatalf("ambient did not converge: %v", am.T)
	}
	// Isolated model: zero interaction coefficient → ambient constant.
	iso := NewAmbientModel(fbconfig.AmbientIsolated, 50)
	iso.Advance(cores, 100)
	if iso.T != 50 {
		t.Fatalf("isolated ambient moved: %v", iso.T)
	}
}

func TestSensor(t *testing.T) {
	// Noiseless sensor quantizes to half degrees.
	s := &Sensor{QuantStep: 0.5}
	if got := s.Read(100.26); got != 100.5 {
		t.Fatalf("quantized = %v", got)
	}
	if got := s.Read(100.24); got != 100.0 {
		t.Fatalf("quantized = %v", got)
	}
	// Noisy sensor stays near the truth and occasionally spikes high.
	ns := NewSensor(rand.New(rand.NewSource(1)))
	spikes, n := 0, 20000
	for i := 0; i < n; i++ {
		v := ns.Read(100)
		if v > 103 {
			spikes++
		}
		if v < 95 || v > 110 {
			t.Fatalf("reading %v implausible", v)
		}
	}
	if spikes == 0 {
		t.Fatal("no sensor spikes generated")
	}
	if float64(spikes)/float64(n) > 0.02 {
		t.Fatalf("too many spikes: %d/%d", spikes, n)
	}
}

func TestTimeToReach(t *testing.T) {
	// From 100 toward stable 120, reaching 110 takes tau*ln(20/10).
	got := TimeToReach(100, 110, 120, 50)
	if !almost(got, 50*math.Ln2, 1e-9) {
		t.Fatalf("TimeToReach = %v", got)
	}
	// Unreachable target (cooling but target above start).
	if !math.IsInf(TimeToReach(100, 110, 90, 50), 1) {
		t.Fatal("unreachable target not Inf")
	}
	if got := TimeToReach(100, 100, 120, 50); got != 0 {
		t.Fatalf("zero-distance = %v", got)
	}
}

// TestPaperPremise reproduces the §3.4 arithmetic that motivates the
// whole paper: with Table 3.2 resistances, a memory-intensive channel
// (≈16 GB/s total) exceeds the 110 °C AMB TDP under AOHS 1.5, while an
// idle one stays below the thermal release point.
func TestPaperPremise(t *testing.T) {
	c := fbconfig.CoolingAOHS15
	hot, err := power.ChannelWatts(fbconfig.DefaultDRAMPower, fbconfig.DefaultAMBPower,
		power.ChannelTraffic{Read: 3, Write: 1, Share: power.EvenShares(4)})
	if err != nil {
		t.Fatal(err)
	}
	if got := StableAMB(c, 50, hot[0]); got <= 110 {
		t.Fatalf("hot channel stable AMB %v should exceed the 110C TDP", got)
	}
	idle := power.DIMMPower{AMB: 5.1, DRAM: 0.98}
	if got := StableAMB(c, 50, idle); got >= 109 {
		t.Fatalf("idle stable AMB %v should be below the TRP", got)
	}
	// Under FDHS 1.0 the DRAM devices bind first (§4.4.1).
	f := fbconfig.CoolingFDHS10
	if dram := StableDRAM(f, 45, hot[0]); dram <= 85 {
		t.Fatalf("FDHS hot DRAM %v should exceed 85C", dram)
	}
	if amb := StableAMB(f, 45, hot[0]); amb >= 110 {
		t.Fatalf("FDHS hot AMB %v should stay below 110C", amb)
	}
}
