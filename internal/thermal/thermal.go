// Package thermal implements the Chapter 3 thermal models: the stable
// AMB/DRAM temperatures of Eqs. 3.3/3.4, the lumped thermal-RC dynamic
// update of Eq. 3.5, and the integrated DRAM-ambient model of Eq. 3.6
// (CPU heat pre-heating the memory inlet air). It also provides a thermal
// sensor model with the quantization/noise artifacts the paper filters.
package thermal

import (
	"fmt"
	"math"

	"dramtherm/internal/fbconfig"
	"dramtherm/internal/power"
)

// StableAMB evaluates Eq. 3.3: the steady-state AMB temperature given the
// DIMM's power pair, the cooling configuration, and the ambient.
func StableAMB(c fbconfig.Cooling, ambient fbconfig.Celsius, p power.DIMMPower) fbconfig.Celsius {
	return ambient + p.AMB*c.PsiAMB + p.DRAM*c.PsiDRAMAMB
}

// StableDRAM evaluates Eq. 3.4: the steady-state temperature of the DRAM
// chip next to the AMB (the hottest one, §3.4).
func StableDRAM(c fbconfig.Cooling, ambient fbconfig.Celsius, p power.DIMMPower) fbconfig.Celsius {
	return ambient + p.AMB*c.PsiAMBDRAM + p.DRAM*c.PsiDRAM
}

// Step evaluates Eq. 3.5, advancing temperature t toward stable over dt
// seconds with time constant tau: T(t+Δt) = T + (Tstable−T)(1−e^(−Δt/τ)).
//
// Step is the retained reference path: it evaluates math.Exp on every
// call. The hot loop uses Decay, which computes the identical decay
// factor once per (dt, tau) pair and reuses it; internal/simtest keeps
// the two paths differentially tested against each other (they agree
// bit-for-bit today; the documented contract allows ≤ 1 ULP drift — see
// docs/PERFORMANCE.md).
func Step(t, stable fbconfig.Celsius, dt, tau fbconfig.Seconds) fbconfig.Celsius {
	if tau <= 0 {
		return stable
	}
	return t + (stable-t)*(1-math.Exp(-dt/tau))
}

// DecayFactor returns 1−e^(−Δt/τ), the fraction of the gap to the
// stable temperature closed over dt. It is the exact subexpression of
// Step, hoisted so it can be computed once per (dt, tau) pair. Callers
// must handle tau <= 0 themselves (Step jumps to stable in that case;
// no finite factor reproduces that for every float input).
func DecayFactor(dt, tau fbconfig.Seconds) float64 {
	return 1 - math.Exp(-dt/tau)
}

// Decay memoizes the decay factor of one (dt, tau) pair. The simulator
// grid uses a handful of fixed RC constants and a fixed window, so in
// steady state Step's per-call math.Exp collapses to one multiply; any
// change of dt or tau transparently recomputes the factor, so a Decay
// is always safe to keep across configuration changes. The zero value
// is ready to use.
type Decay struct {
	dt, tau fbconfig.Seconds
	f       float64
	jump    bool // tau <= 0: jump straight to stable, as Step does
	ok      bool
}

// Step is Step with the factor served from the cache: bit-identical to
// the package-level Step whenever (dt, tau) matches the cached pair,
// because the factor is computed by the very same expression.
func (d *Decay) Step(t, stable fbconfig.Celsius, dt, tau fbconfig.Seconds) fbconfig.Celsius {
	if !d.ok || d.dt != dt || d.tau != tau {
		d.dt, d.tau, d.ok = dt, tau, true
		if d.jump = tau <= 0; !d.jump {
			d.f = DecayFactor(dt, tau)
		}
	}
	if d.jump {
		return stable
	}
	return t + (stable-t)*d.f
}

// DIMMState tracks the dynamic temperatures of one DIMM.
type DIMMState struct {
	AMB  fbconfig.Celsius
	DRAM fbconfig.Celsius
}

// Model is the isolated thermal model of a set of DIMMs (§3.4): no
// DIMM-to-DIMM interaction, fixed or externally supplied ambient.
type Model struct {
	Cooling fbconfig.Cooling
	Ambient fbconfig.Celsius // current DRAM ambient temperature
	DIMMs   []DIMMState

	// Cached decay factors for the AMB and DRAM RC constants; they
	// revalidate against (dt, tau) on every step, so mutating Cooling or
	// varying dt stays correct.
	ambDecay, dramDecay Decay
}

// NewModel returns a model with n DIMMs equilibrated at the idle stable
// point for the given cooling and ambient (so simulations start from a
// realistic warm-idle state, as the paper's machines do).
func NewModel(c fbconfig.Cooling, ambient fbconfig.Celsius, n int, idle power.DIMMPower) *Model {
	m := &Model{Cooling: c, Ambient: ambient, DIMMs: make([]DIMMState, n)}
	for i := range m.DIMMs {
		m.DIMMs[i] = DIMMState{
			AMB:  StableAMB(c, ambient, idle),
			DRAM: StableDRAM(c, ambient, idle),
		}
	}
	return m
}

// Advance steps every DIMM dt seconds toward the stable temperatures
// implied by pw (one power pair per DIMM). This is the fast path: the
// two exponential decay factors are computed once per (dt, tau) pair
// and reused across grid points and across timesteps, instead of one
// math.Exp per DIMM per side per step.
func (m *Model) Advance(pw []power.DIMMPower, dt fbconfig.Seconds) error {
	if len(pw) != len(m.DIMMs) {
		return fmt.Errorf("thermal: %d power entries for %d DIMMs", len(pw), len(m.DIMMs))
	}
	for i := range m.DIMMs {
		sa := StableAMB(m.Cooling, m.Ambient, pw[i])
		sd := StableDRAM(m.Cooling, m.Ambient, pw[i])
		m.DIMMs[i].AMB = m.ambDecay.Step(m.DIMMs[i].AMB, sa, dt, m.Cooling.TauAMB)
		m.DIMMs[i].DRAM = m.dramDecay.Step(m.DIMMs[i].DRAM, sd, dt, m.Cooling.TauDRAM)
	}
	return nil
}

// AdvanceExact is the retained reference implementation of Advance: the
// per-step math.Exp path the fast path is differentially tested
// against. Simulation code should use Advance.
func (m *Model) AdvanceExact(pw []power.DIMMPower, dt fbconfig.Seconds) error {
	if len(pw) != len(m.DIMMs) {
		return fmt.Errorf("thermal: %d power entries for %d DIMMs", len(pw), len(m.DIMMs))
	}
	for i := range m.DIMMs {
		sa := StableAMB(m.Cooling, m.Ambient, pw[i])
		sd := StableDRAM(m.Cooling, m.Ambient, pw[i])
		m.DIMMs[i].AMB = Step(m.DIMMs[i].AMB, sa, dt, m.Cooling.TauAMB)
		m.DIMMs[i].DRAM = Step(m.DIMMs[i].DRAM, sd, dt, m.Cooling.TauDRAM)
	}
	return nil
}

// HottestAMB returns the maximum AMB temperature across DIMMs.
func (m *Model) HottestAMB() fbconfig.Celsius {
	h := math.Inf(-1)
	for _, d := range m.DIMMs {
		if d.AMB > h {
			h = d.AMB
		}
	}
	return h
}

// HottestDRAM returns the maximum DRAM temperature across DIMMs.
func (m *Model) HottestDRAM() fbconfig.Celsius {
	h := math.Inf(-1)
	for _, d := range m.DIMMs {
		if d.DRAM > h {
			h = d.DRAM
		}
	}
	return h
}

// CoreActivity is the per-core input of Eq. 3.6.
type CoreActivity struct {
	Volt float64
	IPC  float64 // committed instructions per *reference* cycle (§3.5)
}

// StableAmbient evaluates Eq. 3.6: the steady-state DRAM ambient given the
// system inlet temperature and per-core activity.
func StableAmbient(a fbconfig.Ambient, inlet fbconfig.Celsius, cores []CoreActivity) fbconfig.Celsius {
	var s float64
	for _, c := range cores {
		s += c.Volt * c.IPC
	}
	return inlet + a.PsiXi*s
}

// AmbientModel tracks the dynamic DRAM ambient temperature of §3.5 with
// its own RC constant (τ = 20 s).
type AmbientModel struct {
	Params fbconfig.Ambient
	Inlet  fbconfig.Celsius
	T      fbconfig.Celsius

	decay Decay
}

// NewAmbientModel starts the ambient at the idle stable point (no core
// activity) for the given inlet temperature.
func NewAmbientModel(p fbconfig.Ambient, inlet fbconfig.Celsius) *AmbientModel {
	return &AmbientModel{Params: p, Inlet: inlet, T: inlet}
}

// Advance steps the ambient dt seconds toward the stable value implied by
// the current core activity and returns the new ambient temperature.
// Like Model.Advance, it serves the decay factor from a cache.
func (am *AmbientModel) Advance(cores []CoreActivity, dt fbconfig.Seconds) fbconfig.Celsius {
	stable := StableAmbient(am.Params, am.Inlet, cores)
	am.T = am.decay.Step(am.T, stable, dt, am.Params.TauCPUDRAM)
	return am.T
}

// AdvanceExact is the retained math.Exp reference path of Advance, used
// by the differential harness.
func (am *AmbientModel) AdvanceExact(cores []CoreActivity, dt fbconfig.Seconds) fbconfig.Celsius {
	stable := StableAmbient(am.Params, am.Inlet, cores)
	am.T = Step(am.T, stable, dt, am.Params.TauCPUDRAM)
	return am.T
}

// Sensor models an AMB-embedded thermal sensor: half-degree quantization,
// small Gaussian noise, and rare large positive spikes (the artifact the
// paper removes by dropping the top 0.5% of samples, §5.4.1). A nil Rand
// disables noise. The sensor reading is reported to the memory controller
// every 1344 bus cycles on real hardware; Read models an instantaneous
// sample of the true temperature.
type Sensor struct {
	QuantStep float64 // 0 disables quantization
	NoiseStd  float64
	SpikeProb float64
	SpikeMag  float64
	Rand      interface{ Float64() float64 }
	normRand  interface{ NormFloat64() float64 }
}

// NewSensor returns the default sensor: 0.5 °C quantization, 0.2 °C noise,
// 0.3% spike probability of +6 °C.
func NewSensor(r interface {
	Float64() float64
	NormFloat64() float64
}) *Sensor {
	s := &Sensor{QuantStep: 0.5, NoiseStd: 0.2, SpikeProb: 0.003, SpikeMag: 6}
	if r != nil {
		s.Rand = r
		s.normRand = r
	}
	return s
}

// Read samples the sensor at true temperature t.
func (s *Sensor) Read(t fbconfig.Celsius) fbconfig.Celsius {
	v := t
	if s.Rand != nil {
		if s.NoiseStd > 0 && s.normRand != nil {
			v += s.normRand.NormFloat64() * s.NoiseStd
		}
		if s.SpikeProb > 0 && s.Rand.Float64() < s.SpikeProb {
			v += s.SpikeMag
		}
	}
	if s.QuantStep > 0 {
		v = math.Round(v/s.QuantStep) * s.QuantStep
	}
	return v
}

// TimeToReach returns the time for a first-order RC system starting at t0
// to reach target given a constant stable temperature, or +Inf when the
// target is unreachable. Used in tests and in reasoning about duty cycles.
func TimeToReach(t0, target, stable, tau fbconfig.Seconds) fbconfig.Seconds {
	if (stable > t0) != (target > t0) && target != t0 {
		return math.Inf(1)
	}
	den := stable - target
	num := stable - t0
	if num == 0 {
		if target == t0 {
			return 0
		}
		return math.Inf(1)
	}
	ratio := num / den
	if ratio <= 0 {
		return math.Inf(1)
	}
	return tau * math.Log(ratio)
}
