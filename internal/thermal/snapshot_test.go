package thermal

import (
	"testing"

	"dramtherm/internal/fbconfig"
	"dramtherm/internal/power"
)

func warmModel(t *testing.T, steps int) *Model {
	t.Helper()
	m := NewModel(fbconfig.CoolingAOHS15, 50, 4, power.DIMMPower{AMB: 2, DRAM: 1})
	pw := []power.DIMMPower{{AMB: 6, DRAM: 2}, {AMB: 5, DRAM: 2}, {AMB: 4, DRAM: 1.5}, {AMB: 3, DRAM: 1}}
	for i := 0; i < steps; i++ {
		if err := m.Advance(pw, 0.01); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

// TestModelSnapshotForkBitIdentical: a restored model continues exactly
// like the model it was captured from — same trajectory, same digests —
// and the snapshot is a deep copy unaffected by further stepping.
func TestModelSnapshotForkBitIdentical(t *testing.T) {
	src := warmModel(t, 20)
	st := src.Snapshot()
	if src.Snapshot().Digest() != st.Digest() {
		t.Fatal("snapshot digest not stable")
	}

	dst := NewModel(fbconfig.CoolingAOHS15, 50, 4, power.DIMMPower{AMB: 2, DRAM: 1})
	if err := dst.Restore(st); err != nil {
		t.Fatal(err)
	}
	pw := []power.DIMMPower{{AMB: 6, DRAM: 2}, {AMB: 5, DRAM: 2}, {AMB: 4, DRAM: 1.5}, {AMB: 3, DRAM: 1}}
	for i := 0; i < 20; i++ {
		if err := src.Advance(pw, 0.01); err != nil {
			t.Fatal(err)
		}
		if err := dst.Advance(pw, 0.01); err != nil {
			t.Fatal(err)
		}
		if src.HottestAMB() != dst.HottestAMB() || src.HottestDRAM() != dst.HottestDRAM() {
			t.Fatalf("step %d: restored model diverged: %v/%v vs %v/%v",
				i, src.HottestAMB(), src.HottestDRAM(), dst.HottestAMB(), dst.HottestDRAM())
		}
	}
	if src.Snapshot().Digest() != dst.Snapshot().Digest() {
		t.Fatal("final digests differ after lockstep advance")
	}
	// The snapshot must not have aliased live state: advancing src moved
	// it past st, so restoring st again rewinds.
	if src.Snapshot().Digest() == st.Digest() {
		t.Fatal("snapshot aliases live model state")
	}
}

func TestModelRestoreGeometryMismatch(t *testing.T) {
	st := warmModel(t, 5).Snapshot()
	m3 := NewModel(fbconfig.CoolingAOHS15, 50, 3, power.DIMMPower{AMB: 2, DRAM: 1})
	if err := m3.Restore(st); err == nil {
		t.Fatal("4-DIMM snapshot restored onto a 3-DIMM model")
	}
}

func TestModelStateDigestDistinguishes(t *testing.T) {
	a := warmModel(t, 5).Snapshot()
	b := warmModel(t, 6).Snapshot()
	if a.Digest() == b.Digest() {
		t.Fatal("distinct states share a digest")
	}
	if len(a.Digest()) != 16 {
		t.Fatalf("digest %q is not 16 hex digits", a.Digest())
	}
}

func TestAmbientModelSnapshotRoundTrip(t *testing.T) {
	cores := []CoreActivity{{Volt: 1.2, IPC: 0.8}, {Volt: 1.2, IPC: 0.5}}
	src := NewAmbientModel(fbconfig.AmbientIsolated, 45)
	for i := 0; i < 10; i++ {
		src.Advance(cores, 0.01)
	}
	st := src.Snapshot()
	dst := NewAmbientModel(fbconfig.AmbientIsolated, 45)
	dst.Restore(st)
	for i := 0; i < 10; i++ {
		a, b := src.Advance(cores, 0.01), dst.Advance(cores, 0.01)
		if a != b {
			t.Fatalf("step %d: restored ambient model diverged: %v vs %v", i, a, b)
		}
	}
}
