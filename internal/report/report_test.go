package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("caption", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRowf("beta", 2.5, "extra")
	s := tb.String()
	for _, want := range []string{"caption", "name", "alpha", "2.500", "extra", "---"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in:\n%s", want, s)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		3:      "3",
		2.5:    "2.500",
		12.345: "12.35",
		1234.5: "1234.5",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
	if got := FormatFloat(math.NaN()); got != "NaN" {
		t.Errorf("NaN = %q", got)
	}
	if got := FormatFloat(math.Inf(1)); got != "Inf" {
		t.Errorf("Inf = %q", got)
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("plain", `has "quote", comma`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"has ""quote"", comma"`) {
		t.Fatalf("quoting wrong: %s", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Fatalf("header wrong: %s", csv)
	}
}

func TestFigureChart(t *testing.T) {
	f := NewFigure("fig", "x", "y")
	f.Add("s1", []float64{1, 2, 3, 4})
	f.AddXY("s2", []float64{0, 1, 2, 3}, []float64{4, 3, 2, 1})
	chart := f.Chart(40, 8)
	for _, want := range []string{"fig", "s1", "s2", "*", "+"} {
		if !strings.Contains(chart, want) {
			t.Fatalf("missing %q in chart:\n%s", want, chart)
		}
	}
	// Degenerate inputs do not panic.
	empty := NewFigure("empty", "x", "y")
	if !strings.Contains(empty.Chart(10, 3), "no data") {
		t.Fatal("empty figure not flagged")
	}
	flat := NewFigure("flat", "x", "y")
	flat.Add("c", []float64{5, 5, 5})
	_ = flat.Chart(1, 1) // minimum sizes clamped
}

func TestFigureDataTable(t *testing.T) {
	f := NewFigure("fig", "x", "y")
	f.AddXY("s1", []float64{10, 20}, []float64{1, 2})
	f.Add("s2", []float64{3}) // shorter series
	dt := f.DataTable()
	if len(dt.Rows) != 2 {
		t.Fatalf("rows = %d", len(dt.Rows))
	}
	if dt.Rows[0][0] != "10" || dt.Rows[0][1] != "1" || dt.Rows[0][2] != "3" {
		t.Fatalf("row0 = %v", dt.Rows[0])
	}
	if dt.Rows[1][2] != "" {
		t.Fatalf("short series not padded: %v", dt.Rows[1])
	}
}

func TestBars(t *testing.T) {
	s := Bars("cap", []string{"W1", "W2"}, []string{"TS", "BW"},
		[][]float64{{1, 2}, {3, 4}})
	for _, want := range []string{"cap", "W1", "BW", "="} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q:\n%s", want, s)
		}
	}
	// All-zero values: no bars but no panic.
	z := Bars("z", []string{"a"}, []string{"g"}, [][]float64{{0}})
	if !strings.Contains(z, "a") {
		t.Fatal("zero bars broken")
	}
}

func TestWriteTo(t *testing.T) {
	tb := NewTable("c", "h")
	tb.AddRow("v")
	var sb strings.Builder
	n, err := tb.WriteTo(&sb)
	if err != nil || n == 0 || sb.Len() == 0 {
		t.Fatalf("WriteTo: %d, %v", n, err)
	}
}
