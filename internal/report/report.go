// Package report renders experiment results as ASCII tables, simple line
// charts, and CSV. Every table and figure of the paper is regenerated
// through this package so that `cmd/memtherm` output can be compared
// side-by-side with the published artifacts.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple column-oriented table with a caption.
type Table struct {
	Caption string
	Header  []string
	Rows    [][]string
}

// NewTable returns a table with the given caption and column headers.
func NewTable(caption string, header ...string) *Table {
	return &Table{Caption: caption, Header: header}
}

// AddRow appends a row. Cells beyond the header width are kept; short rows
// are padded when rendering.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddRowf appends a row where each cell is rendered with fmt.Sprint unless
// it is a float64, which is formatted with 3 significant decimals.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly: 3 decimals for small magnitudes,
// fewer for large ones, and "NaN"/"Inf" passed through.
func FormatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 0):
		return "Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.1f", v)
	case math.Abs(v) >= 10:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

func (t *Table) widths() []int {
	n := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > n {
			n = len(r)
		}
	}
	w := make([]int, n)
	for i, h := range t.Header {
		if len(h) > w[i] {
			w[i] = len(h)
		}
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// WriteTo renders the table to w.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	ws := t.widths()
	line := func(cells []string) {
		for i := 0; i < len(ws); i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", ws[i], c)
		}
		b.WriteString("\n")
	}
	if len(t.Header) > 0 {
		line(t.Header)
		sep := make([]string, len(ws))
		for i := range sep {
			sep[i] = strings.Repeat("-", ws[i])
		}
		line(sep)
	}
	for _, r := range t.Rows {
		line(r)
	}
	b.WriteString("\n")
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.WriteTo(&b) //nolint:errcheck // strings.Builder cannot fail
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (quoting cells that need it).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Series is a named sequence of (x, y) points, the unit figures are built
// from. X values are optional; when nil, indices are used.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a set of series sharing axes, matching one paper figure.
type Figure struct {
	Caption string
	XLabel  string
	YLabel  string
	Series  []Series
}

// NewFigure returns an empty figure.
func NewFigure(caption, xlabel, ylabel string) *Figure {
	return &Figure{Caption: caption, XLabel: xlabel, YLabel: ylabel}
}

// Add appends a series with implicit X indices.
func (f *Figure) Add(name string, ys []float64) {
	f.Series = append(f.Series, Series{Name: name, Y: ys})
}

// AddXY appends a series with explicit X values.
func (f *Figure) AddXY(name string, xs, ys []float64) {
	f.Series = append(f.Series, Series{Name: name, X: xs, Y: ys})
}

// Chart renders an ASCII line chart of the figure, height rows tall and
// width columns wide, with one glyph per series.
func (f *Figure) Chart(width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	minY, maxY := math.Inf(1), math.Inf(-1)
	minX, maxX := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for i, y := range s.Y {
			x := float64(i)
			if s.X != nil {
				x = s.X[i]
			}
			if y < minY {
				minY = y
			}
			if y > maxY {
				maxY = y
			}
			if x < minX {
				minX = x
			}
			if x > maxX {
				maxX = x
			}
		}
	}
	if math.IsInf(minY, 1) { // no data
		return f.Caption + " (no data)\n"
	}
	if maxY == minY {
		maxY = minY + 1
	}
	if maxX == minX {
		maxX = minX + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	glyphs := []byte{'*', '+', 'o', 'x', '#', '@', '%', '~', '&', '$'}
	for si, s := range f.Series {
		g := glyphs[si%len(glyphs)]
		for i, y := range s.Y {
			x := float64(i)
			if s.X != nil {
				x = s.X[i]
			}
			col := int((x - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((y-minY)/(maxY-minY)*float64(height-1))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = g
			}
		}
	}
	var b strings.Builder
	if f.Caption != "" {
		fmt.Fprintf(&b, "%s\n", f.Caption)
	}
	fmt.Fprintf(&b, "%s (top=%.2f bottom=%.2f)\n", f.YLabel, maxY, minY)
	for _, row := range grid {
		b.WriteString("| ")
		b.Write(row)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "+-%s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "  %s: %.2f .. %.2f\n", f.XLabel, minX, maxX)
	for si, s := range f.Series {
		fmt.Fprintf(&b, "  %c %s\n", glyphs[si%len(glyphs)], s.Name)
	}
	return b.String()
}

// DataTable renders the figure's series as a table, one row per X value.
// Series with differing X sets are aligned by position.
func (f *Figure) DataTable() *Table {
	t := NewTable(f.Caption, append([]string{f.XLabel}, seriesNames(f.Series)...)...)
	n := 0
	for _, s := range f.Series {
		if len(s.Y) > n {
			n = len(s.Y)
		}
	}
	for i := 0; i < n; i++ {
		row := make([]string, 0, len(f.Series)+1)
		x := float64(i)
		if len(f.Series) > 0 && f.Series[0].X != nil && i < len(f.Series[0].X) {
			x = f.Series[0].X[i]
		}
		row = append(row, FormatFloat(x))
		for _, s := range f.Series {
			if i < len(s.Y) {
				row = append(row, FormatFloat(s.Y[i]))
			} else {
				row = append(row, "")
			}
		}
		t.AddRow(row...)
	}
	return t
}

func seriesNames(ss []Series) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Name
	}
	return out
}

// Bars renders a grouped bar dataset (categories × groups) as a table plus
// a per-category ASCII bar strip. values[i][j] is category i, group j.
func Bars(caption string, categories, groups []string, values [][]float64) string {
	t := NewTable(caption, append([]string{""}, groups...)...)
	for i, c := range categories {
		row := []string{c}
		for j := range groups {
			row = append(row, FormatFloat(values[i][j]))
		}
		t.AddRow(row...)
	}
	var maxV float64
	for _, row := range values {
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
	}
	var b strings.Builder
	b.WriteString(t.String())
	if maxV <= 0 {
		return b.String()
	}
	const barW = 40
	for i, c := range categories {
		for j, g := range groups {
			n := int(values[i][j] / maxV * barW)
			if n < 0 {
				n = 0
			}
			fmt.Fprintf(&b, "%-6s %-14s %s %s\n", c, g,
				strings.Repeat("=", n), FormatFloat(values[i][j]))
		}
	}
	b.WriteByte('\n')
	return b.String()
}
