package dtm

import (
	"math"
	"testing"

	"dramtherm/internal/fbconfig"
)

func TestLevelMapping(t *testing.T) {
	l := DefaultLevels()
	cases := []struct {
		amb, dram float64
		want      int
	}{
		{100, 80, 1},
		{108.2, 80, 2},
		{109.2, 80, 3},
		{109.7, 80, 4},
		{110.5, 80, 5},
		{100, 83.5, 2}, // DRAM binds
		{100, 84.9, 4},
		{100, 85.1, 5},
		{109.2, 84.9, 4}, // max of the two
	}
	for _, tc := range cases {
		if got := l.Level(tc.amb, tc.dram); got != tc.want {
			t.Errorf("Level(%v,%v) = %d, want %d", tc.amb, tc.dram, got, tc.want)
		}
	}
}

func TestLevelsForTDP(t *testing.T) {
	l := LevelsForTDP(100, 85)
	if l.AMB[3] != 100 {
		t.Fatalf("shifted top AMB = %v", l.AMB[3])
	}
	if l.AMB[0] != 98 {
		t.Fatalf("shifted AMB L1 bound = %v (margins not preserved)", l.AMB[0])
	}
	if l.DRAM != DefaultLevels().DRAM {
		t.Fatal("unchanged DRAM TDP moved the DRAM bounds")
	}
}

func TestTSHysteresis(t *testing.T) {
	p := NewTS(fbconfig.DefaultLimits, 4)
	if p.Name() != "DTM-TS" {
		t.Fatal(p.Name())
	}
	a := p.Decide(Input{AMB: 105, DRAM: 80})
	if a.MemOff {
		t.Fatal("cold start shut down")
	}
	a = p.Decide(Input{AMB: 110, DRAM: 80})
	if !a.MemOff {
		t.Fatal("TDP reached but memory on")
	}
	// Between TRP and TDP: stays off.
	a = p.Decide(Input{AMB: 109.5, DRAM: 80})
	if !a.MemOff {
		t.Fatal("hysteresis released early")
	}
	a = p.Decide(Input{AMB: 108.9, DRAM: 80})
	if a.MemOff {
		t.Fatal("below TRP but still off")
	}
	// DRAM can trigger too.
	a = p.Decide(Input{AMB: 100, DRAM: 85})
	if !a.MemOff {
		t.Fatal("DRAM TDP ignored")
	}
	p.Reset()
	if p.Decide(Input{AMB: 109.5, DRAM: 80}).MemOff {
		t.Fatal("reset did not clear hysteresis")
	}
}

func TestBWTable(t *testing.T) {
	p := NewBW(DefaultLevels(), 4)
	for _, tc := range []struct {
		amb  float64
		want float64
	}{
		{100, math.Inf(1)}, {108.5, 19.2}, {109.2, 12.8}, {109.7, 6.4},
	} {
		a := p.Decide(Input{AMB: tc.amb, DRAM: 70})
		if a.BWCapGBps != tc.want || a.MemOff {
			t.Errorf("BW at %v = %+v", tc.amb, a)
		}
	}
	if a := p.Decide(Input{AMB: 110.2, DRAM: 70}); !a.MemOff {
		t.Fatal("L5 did not shut down")
	}
	// Hysteresis: still off just below the TDP.
	if a := p.Decide(Input{AMB: 109.6, DRAM: 70}); !a.MemOff {
		t.Fatal("shutdown hysteresis missing")
	}
	// Released a full degree below.
	if a := p.Decide(Input{AMB: 108.9, DRAM: 70}); a.MemOff {
		t.Fatal("hysteresis never released")
	}
}

func TestACGTable(t *testing.T) {
	p := NewACG(DefaultLevels(), 4)
	for _, tc := range []struct {
		amb  float64
		want int
	}{
		{100, 4}, {108.5, 3}, {109.2, 2}, {109.7, 1},
	} {
		a := p.Decide(Input{AMB: tc.amb, DRAM: 70})
		if a.ActiveCores != tc.want {
			t.Errorf("ACG at %v = %d cores, want %d", tc.amb, a.ActiveCores, tc.want)
		}
	}
	if a := p.Decide(Input{AMB: 111, DRAM: 70}); !a.MemOff || a.ActiveCores != 0 {
		t.Fatalf("ACG L5 = %+v", a)
	}
}

func TestCDVFSTable(t *testing.T) {
	p := NewCDVFS(DefaultLevels(), 4)
	for _, tc := range []struct {
		amb  float64
		want int
	}{
		{100, 0}, {108.5, 1}, {109.2, 2}, {109.7, 3},
	} {
		a := p.Decide(Input{AMB: tc.amb, DRAM: 70})
		if a.FreqIndex != tc.want {
			t.Errorf("CDVFS at %v = level %d, want %d", tc.amb, a.FreqIndex, tc.want)
		}
	}
}

func TestNewTable(t *testing.T) {
	if _, err := NewTable("x", DefaultLevels(), nil, 1); err == nil {
		t.Fatal("empty action table accepted")
	}
	p, err := NewTable("custom", DefaultLevels(), []Action{
		{BWCapGBps: NoCap(), ActiveCores: 4},
		{BWCapGBps: 5, ActiveCores: 4},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "custom" {
		t.Fatal(p.Name())
	}
	// Levels beyond the table clamp to the last action.
	a := p.Decide(Input{AMB: 120, DRAM: 120})
	if a.BWCapGBps != 5 {
		t.Fatalf("clamped action = %+v", a)
	}
}

func TestPIDPolicy(t *testing.T) {
	p, err := NewPID("DTM-ACG", ActionsACG(4), fbconfig.DefaultLimits)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "DTM-ACG+PID" {
		t.Fatal(p.Name())
	}
	// Cold: full performance.
	a := p.Decide(Input{AMB: 95, DRAM: 70, Dt: 0.01})
	if a.ActiveCores != 4 || a.MemOff {
		t.Fatalf("cold = %+v", a)
	}
	// Far above target: most throttled (but not off below TDP).
	p.Reset()
	a = p.Decide(Input{AMB: 109.99, DRAM: 70, Dt: 0.01})
	if a.ActiveCores != 1 || a.MemOff {
		t.Fatalf("hot = %+v", a)
	}
	// At/above the TDP the safety net shuts down until the TRP.
	a = p.Decide(Input{AMB: 110.1, DRAM: 70, Dt: 0.01})
	if !a.MemOff {
		t.Fatal("safety net missing")
	}
	a = p.Decide(Input{AMB: 109.5, DRAM: 70, Dt: 0.01})
	if !a.MemOff {
		t.Fatal("safety hysteresis missing")
	}
	a = p.Decide(Input{AMB: 108.5, DRAM: 70, Dt: 0.01})
	if a.MemOff {
		t.Fatal("safety never released")
	}
	if _, err := NewPID("x", nil, fbconfig.DefaultLimits); err == nil {
		t.Fatal("empty PID table accepted")
	}
}

func TestActionLadders(t *testing.T) {
	if got := len(ActionsBW(4)); got != 4 {
		t.Fatalf("BW ladder = %d", got)
	}
	acg := ActionsACG(4)
	if len(acg) != 4 || acg[0].ActiveCores != 4 || acg[3].ActiveCores != 1 {
		t.Fatalf("ACG ladder = %+v", acg)
	}
	cd := ActionsCDVFS(4, 4)
	if len(cd) != 4 || cd[3].FreqIndex != 3 {
		t.Fatalf("CDVFS ladder = %+v", cd)
	}
}

func TestNoLimit(t *testing.T) {
	p := &NoLimit{Cores: 4}
	a := p.Decide(Input{AMB: 200, DRAM: 200})
	if a.MemOff || a.ActiveCores != 4 || !math.IsInf(a.BWCapGBps, 1) {
		t.Fatalf("NoLimit throttled: %+v", a)
	}
	p.Reset()
	if p.Name() != "No-limit" {
		t.Fatal(p.Name())
	}
}

func TestCOMBTable(t *testing.T) {
	p := NewCOMB(DefaultLevels(), 4)
	if p.Name() != "DTM-COMB" {
		t.Fatal(p.Name())
	}
	a := p.Decide(Input{AMB: 100, DRAM: 70})
	if a.ActiveCores != 4 || a.FreqIndex != 0 {
		t.Fatalf("cold = %+v", a)
	}
	a = p.Decide(Input{AMB: 108.5, DRAM: 70})
	if a.ActiveCores != 3 || a.FreqIndex != 1 {
		t.Fatalf("L2 = %+v", a)
	}
	a = p.Decide(Input{AMB: 109.7, DRAM: 70})
	if a.ActiveCores != 1 || a.FreqIndex != 3 {
		t.Fatalf("L4 = %+v", a)
	}
	if a := p.Decide(Input{AMB: 111, DRAM: 70}); !a.MemOff {
		t.Fatal("L5 not off")
	}
}
