// Package dtm implements the dynamic thermal management policies of the
// paper: the two pre-existing schemes DTM-TS (thermal shutdown) and
// DTM-BW (bandwidth throttling), the two proposed schemes DTM-ACG
// (adaptive core gating) and DTM-CDVFS (coordinated DVFS), the Chapter 5
// combination DTM-COMB, and PID-controlled variants of BW/ACG/CDVFS
// (§4.2.3). A policy observes sensor temperatures once per DTM interval
// and outputs an Action; the level-2 simulator and the platform emulator
// apply the action through their actuators.
package dtm

import (
	"fmt"
	"math"

	"dramtherm/internal/fbconfig"
	"dramtherm/internal/pid"
)

// Action is the running state a policy requests.
type Action struct {
	// MemOff stops all memory transactions (thermal shutdown / level L5).
	MemOff bool
	// BWCapGBps caps memory bandwidth; +Inf means no cap.
	BWCapGBps float64
	// ActiveCores is the number of ungated cores (DTM-ACG); the machine's
	// core count means all active.
	ActiveCores int
	// FreqIndex indexes the platform's DVFS table (0 = fastest).
	FreqIndex int
}

// Input is what a policy observes each interval.
type Input struct {
	AMB  fbconfig.Celsius // hottest AMB sensor reading
	DRAM fbconfig.Celsius // hottest DRAM sensor reading
	Now  float64          // seconds since run start
	Dt   float64          // seconds since previous decision
}

// Policy decides a running state each DTM interval.
type Policy interface {
	Name() string
	Decide(in Input) Action
	Reset()
}

// Levels holds the thermal emergency thresholds of Table 4.3: the
// boundaries between levels L1..L5 for the AMB and DRAM sensors. Five
// levels need four ascending boundaries each.
type Levels struct {
	AMB  [4]fbconfig.Celsius
	DRAM [4]fbconfig.Celsius
}

// DefaultLevels reproduces Table 4.3 for the chosen FBDIMM
// (AMB TDP 110 °C, DRAM TDP 85 °C).
func DefaultLevels() Levels {
	return Levels{
		AMB:  [4]fbconfig.Celsius{108.0, 109.0, 109.5, 110.0},
		DRAM: [4]fbconfig.Celsius{83.0, 84.0, 84.5, 85.0},
	}
}

// LevelsForTDP shifts the default level boundaries so the highest
// boundary equals the given TDPs, preserving the Table 4.3 margins. Used
// by the TRP/TDP sensitivity experiments.
func LevelsForTDP(ambTDP, dramTDP fbconfig.Celsius) Levels {
	d := DefaultLevels()
	var out Levels
	for i := 0; i < 4; i++ {
		out.AMB[i] = d.AMB[i] + (ambTDP - 110.0)
		out.DRAM[i] = d.DRAM[i] + (dramTDP - 85.0)
	}
	return out
}

// Level returns the emergency level 1..5 implied by the two sensor
// readings: the maximum of the per-sensor levels, since either device
// overheating is an emergency.
func (l Levels) Level(amb, dram fbconfig.Celsius) int {
	return maxInt(levelOf(amb, l.AMB[:]), levelOf(dram, l.DRAM[:]))
}

func levelOf(t fbconfig.Celsius, bounds []fbconfig.Celsius) int {
	for i, b := range bounds {
		if t < b {
			return i + 1
		}
	}
	return len(bounds) + 1
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// NoCap is the uncapped bandwidth value.
func NoCap() float64 { return math.Inf(1) }

// ---------------------------------------------------------------------------
// DTM-TS: thermal shutdown with TDP/TRP hysteresis (§4.2.1).

// TS is the thermal-shutdown policy.
type TS struct {
	Limits fbconfig.ThermalLimits
	Cores  int
	off    bool
}

// NewTS builds DTM-TS with the given limits for a machine with cores
// cores.
func NewTS(lim fbconfig.ThermalLimits, cores int) *TS {
	return &TS{Limits: lim, Cores: cores}
}

// Name implements Policy.
func (p *TS) Name() string { return "DTM-TS" }

// Reset implements Policy.
func (p *TS) Reset() { p.off = false }

// Decide implements Policy: shut down at TDP, release at TRP.
func (p *TS) Decide(in Input) Action {
	if in.AMB >= p.Limits.AMBTDP || in.DRAM >= p.Limits.DRAMTDP {
		p.off = true
	} else if in.AMB < p.Limits.AMBTRP && in.DRAM < p.Limits.DRAMTRP {
		p.off = false
	}
	return Action{MemOff: p.off, BWCapGBps: NoCap(), ActiveCores: p.Cores, FreqIndex: 0}
}

// ---------------------------------------------------------------------------
// Level-table policies: BW, ACG, CDVFS, COMB share the structure "read
// the emergency level, apply the level's setting" (Table 4.3/5.1), with
// TS-style hysteresis at the highest level (memory stays off until both
// sensors drop a release margin below their TDPs).

// levelPolicy is the shared machinery.
type levelPolicy struct {
	name    string
	levels  Levels
	actions []Action // one per level, len 5 (or 4 for Chapter 5 tables)
	release fbconfig.Celsius
	off     bool
}

func (p *levelPolicy) Name() string { return p.name }
func (p *levelPolicy) Reset()       { p.off = false }

func (p *levelPolicy) Decide(in Input) Action {
	lv := p.levels.Level(in.AMB, in.DRAM)
	if lv >= len(p.actions)+1 {
		lv = len(p.actions)
	}
	top := p.actions[len(p.actions)-1]
	if top.MemOff {
		// Hysteresis on the shutdown level.
		if lv == len(p.actions) {
			p.off = true
		} else if in.AMB < p.levels.AMB[3]-p.release && in.DRAM < p.levels.DRAM[3]-p.release {
			p.off = false
		}
		if p.off {
			return top
		}
		if lv == len(p.actions) {
			lv--
		}
	}
	return p.actions[lv-1]
}

// NewBW builds DTM-BW with Table 4.3 caps: no limit, 19.2, 12.8,
// 6.4 GB/s, off.
func NewBW(levels Levels, cores int) Policy {
	return &levelPolicy{
		name:   "DTM-BW",
		levels: levels,
		actions: []Action{
			{BWCapGBps: NoCap(), ActiveCores: cores},
			{BWCapGBps: 19.2, ActiveCores: cores},
			{BWCapGBps: 12.8, ActiveCores: cores},
			{BWCapGBps: 6.4, ActiveCores: cores},
			{MemOff: true, BWCapGBps: 0, ActiveCores: cores},
		},
		release: 1.0,
	}
}

// NewACG builds DTM-ACG with Table 4.3 core counts 4,3,2,1,0.
func NewACG(levels Levels, cores int) Policy {
	acts := []Action{
		{BWCapGBps: NoCap(), ActiveCores: cores},
		{BWCapGBps: NoCap(), ActiveCores: cores - 1},
		{BWCapGBps: NoCap(), ActiveCores: cores - 2},
		{BWCapGBps: NoCap(), ActiveCores: 1},
		{MemOff: true, BWCapGBps: 0, ActiveCores: 0},
	}
	return &levelPolicy{name: "DTM-ACG", levels: levels, actions: acts, release: 1.0}
}

// NewCDVFS builds DTM-CDVFS with Table 4.3 frequency levels (indexes into
// the platform's DVFS table; 3.2/2.4/1.6/0.8 GHz in Chapter 4).
func NewCDVFS(levels Levels, cores int) Policy {
	return &levelPolicy{
		name:   "DTM-CDVFS",
		levels: levels,
		actions: []Action{
			{BWCapGBps: NoCap(), ActiveCores: cores, FreqIndex: 0},
			{BWCapGBps: NoCap(), ActiveCores: cores, FreqIndex: 1},
			{BWCapGBps: NoCap(), ActiveCores: cores, FreqIndex: 2},
			{BWCapGBps: NoCap(), ActiveCores: cores, FreqIndex: 3},
			{MemOff: true, BWCapGBps: 0, ActiveCores: cores, FreqIndex: 3},
		},
		release: 1.0,
	}
}

// NewCOMB builds DTM-COMB for the Chapter 4 machine: the §5.2.2
// combination policy back-ported to the simulator — each emergency level
// both gates a core and steps DVFS down, shedding traffic and processor
// heat at once.
func NewCOMB(levels Levels, cores int) Policy {
	return &levelPolicy{
		name:   "DTM-COMB",
		levels: levels,
		actions: []Action{
			{BWCapGBps: NoCap(), ActiveCores: cores, FreqIndex: 0},
			{BWCapGBps: NoCap(), ActiveCores: cores - 1, FreqIndex: 1},
			{BWCapGBps: NoCap(), ActiveCores: cores - 2, FreqIndex: 2},
			{BWCapGBps: NoCap(), ActiveCores: 1, FreqIndex: 3},
			{MemOff: true, BWCapGBps: 0, ActiveCores: 0, FreqIndex: 3},
		},
		release: 1.0,
	}
}

// NewTable builds a policy from an explicit action table (used for the
// Chapter 5 four-level tables and DTM-COMB). actions[i] applies at
// emergency level i+1.
func NewTable(name string, levels Levels, actions []Action, release fbconfig.Celsius) (Policy, error) {
	if len(actions) == 0 {
		return nil, fmt.Errorf("dtm: empty action table for %s", name)
	}
	return &levelPolicy{name: name, levels: levels, actions: actions, release: release}, nil
}

// ---------------------------------------------------------------------------
// PID-wrapped policies (§4.2.3): one controller per sensor; the
// controller of the currently binding sensor chooses among the same
// discrete settings.

// PIDPolicy wraps a setting table with two PID controllers.
type PIDPolicy struct {
	name    string
	actions []Action // ordered fastest..slowest, no MemOff entry
	ambC    *pid.Controller
	dramC   *pid.Controller
	limits  fbconfig.ThermalLimits
	off     bool
}

// NewPID wraps the action table (fastest first, no shutdown entry —
// shutdown is enforced by the TDP safety net) with the Chapter 4 PID
// constants. kind is used in the policy name, e.g. "DTM-ACG+PID".
func NewPID(kind string, actions []Action, limits fbconfig.ThermalLimits) (*PIDPolicy, error) {
	if len(actions) == 0 {
		return nil, fmt.Errorf("dtm: empty PID action table")
	}
	span := float64(len(actions))
	ac := pid.AMBDefaults()
	ac.OutputMin, ac.OutputMax = -span, span
	dc := pid.DRAMDefaults()
	dc.OutputMin, dc.OutputMax = -span, span
	ambC, err := pid.New(ac)
	if err != nil {
		return nil, err
	}
	dramC, err := pid.New(dc)
	if err != nil {
		return nil, err
	}
	return &PIDPolicy{
		name:    kind + "+PID",
		actions: actions,
		ambC:    ambC,
		dramC:   dramC,
		limits:  limits,
	}, nil
}

// Name implements Policy.
func (p *PIDPolicy) Name() string { return p.name }

// Reset implements Policy.
func (p *PIDPolicy) Reset() {
	p.ambC.Reset()
	p.dramC.Reset()
	p.off = false
}

// Decide implements Policy.
func (p *PIDPolicy) Decide(in Input) Action {
	// Safety net: never exceed the TDP (overshoot handling, §4.4.2).
	if in.AMB >= p.limits.AMBTDP || in.DRAM >= p.limits.DRAMTDP {
		p.off = true
	} else if in.AMB < p.limits.AMBTRP && in.DRAM < p.limits.DRAMTRP {
		p.off = false
	}
	if p.off {
		a := p.actions[len(p.actions)-1]
		a.MemOff = true
		return a
	}

	ao := p.ambC.Update(in.AMB, in.Dt)
	do := p.dramC.Update(in.DRAM, in.Dt)
	// The binding sensor is the one closer to (or further past) its
	// target: lower controller output = more throttling demanded.
	out, ctl := ao, p.ambC
	if do < ao {
		out, ctl = do, p.dramC
	}
	lv := ctl.Level(out, len(p.actions))
	return p.actions[lv]
}

// ActionsBW returns the DTM-BW setting ladder (for PID wrapping).
func ActionsBW(cores int) []Action {
	return []Action{
		{BWCapGBps: NoCap(), ActiveCores: cores},
		{BWCapGBps: 19.2, ActiveCores: cores},
		{BWCapGBps: 12.8, ActiveCores: cores},
		{BWCapGBps: 6.4, ActiveCores: cores},
	}
}

// ActionsACG returns the DTM-ACG setting ladder.
func ActionsACG(cores int) []Action {
	out := make([]Action, 0, cores)
	for n := cores; n >= 1; n-- {
		out = append(out, Action{BWCapGBps: NoCap(), ActiveCores: n})
	}
	return out
}

// ActionsCDVFS returns the DTM-CDVFS setting ladder for nLevels DVFS
// levels.
func ActionsCDVFS(cores, nLevels int) []Action {
	out := make([]Action, 0, nLevels)
	for i := 0; i < nLevels; i++ {
		out = append(out, Action{BWCapGBps: NoCap(), ActiveCores: cores, FreqIndex: i})
	}
	return out
}

// NoLimit is the pseudo-policy of the paper's "no thermal limit" baseline.
type NoLimit struct{ Cores int }

// Name implements Policy.
func (p *NoLimit) Name() string { return "No-limit" }

// Reset implements Policy.
func (p *NoLimit) Reset() {}

// Decide implements Policy.
func (p *NoLimit) Decide(Input) Action {
	return Action{BWCapGBps: NoCap(), ActiveCores: p.Cores, FreqIndex: 0}
}
