package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"sort"
	"strings"
	"sync/atomic"
)

// RequestIDHeader is the HTTP header a request id travels in: the
// middleware adopts an incoming value (so a caller, or an upstream
// coordinator, names the request once) and the remote backend forwards
// it to peers, correlating one request's log lines across every node.
const RequestIDHeader = "X-Request-ID"

type reqIDKey struct{}

// WithRequestID attaches a request correlation id to the context.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, reqIDKey{}, id)
}

// RequestID returns the context's request id, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}

var reqSeq atomic.Uint64

// NewRequestID returns a fresh 16-hex-char request id.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// rand failing is unheard of, but an id must still be unique.
		return fmt.Sprintf("req-%016x", reqSeq.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// LogfLogger adapts a printf-style sink into a *slog.Logger, rendering
// each record as one logfmt-ish line ("level msg key=value …"). It
// bridges the legacy Logf seams (httpapi, remote, gossip configs and
// their tests) onto the structured logging path.
func LogfLogger(logf func(format string, v ...any)) *slog.Logger {
	return slog.New(&logfHandler{logf: logf})
}

type logfHandler struct {
	logf  func(format string, v ...any)
	attrs []slog.Attr
	group string
}

func (h *logfHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h *logfHandler) Handle(_ context.Context, rec slog.Record) error {
	var b strings.Builder
	b.WriteString(rec.Level.String())
	b.WriteByte(' ')
	b.WriteString(rec.Message)
	emit := func(a slog.Attr) {
		if a.Equal(slog.Attr{}) {
			return
		}
		key := a.Key
		if h.group != "" {
			key = h.group + "." + key
		}
		v := a.Value.Resolve().String()
		if strings.ContainsAny(v, " \"\n") {
			fmt.Fprintf(&b, " %s=%q", key, v)
		} else {
			fmt.Fprintf(&b, " %s=%s", key, v)
		}
	}
	for _, a := range h.attrs {
		emit(a)
	}
	rec.Attrs(func(a slog.Attr) bool { emit(a); return true })
	h.logf("%s", b.String())
	return nil
}

func (h *logfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	n := *h
	n.attrs = append(append([]slog.Attr(nil), h.attrs...), attrs...)
	return &n
}

func (h *logfHandler) WithGroup(name string) slog.Handler {
	n := *h
	if n.group != "" {
		n.group += "."
	}
	n.group += name
	return &n
}

// SortedLabelNames returns the label names of a gathered series in
// sorted order — a small helper for cardinality assertions in tests.
func SortedLabelNames(s Series) []string {
	out := make([]string, len(s.Labels))
	for i, l := range s.Labels {
		out[i] = l.Name
	}
	sort.Strings(out)
	return out
}
