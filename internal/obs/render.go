package obs

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// TextContentType is the Content-Type of the Prometheus text exposition
// format rendered by WriteText.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// DefBuckets is the default latency bucket layout in seconds, matching
// the conventional Prometheus client defaults.
var DefBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

var (
	helpEscaper  = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
)

// formatFloat renders a sample value the way Prometheus expects:
// shortest round-trip representation, with +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteText renders every family in the Prometheus text exposition
// format (version 0.0.4): a # HELP and # TYPE header per family, then
// one line per series. Output is deterministic — families sorted by
// name, series sorted by label values — so scrapes diff cleanly.
func (r *Registry) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, fam := range r.Gather() {
		if fam.Help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(fam.Name)
			bw.WriteByte(' ')
			bw.WriteString(helpEscaper.Replace(fam.Help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(fam.Name)
		bw.WriteByte(' ')
		bw.WriteString(fam.Kind.String())
		bw.WriteByte('\n')
		for _, s := range fam.Series {
			bw.WriteString(fam.Name)
			bw.WriteString(s.Suffix)
			if len(s.Labels) > 0 {
				bw.WriteByte('{')
				for i, l := range s.Labels {
					if i > 0 {
						bw.WriteByte(',')
					}
					bw.WriteString(l.Name)
					bw.WriteString(`="`)
					bw.WriteString(labelEscaper.Replace(l.Value))
					bw.WriteByte('"')
				}
				bw.WriteByte('}')
			}
			bw.WriteByte(' ')
			bw.WriteString(formatFloat(s.Value))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// Handler serves the registry in the text exposition format — mount it
// at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", TextContentType)
		r.WriteText(w) //nolint:errcheck // nothing to do about a dead scraper
	})
}
