package obs

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeSemantics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "a counter")
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // ignored: counters only go up
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	g := r.Gauge("g", "a gauge")
	g.Set(10)
	g.Dec()
	g.Add(-2)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %v, want 7", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("a_total", "").Inc()
	r.Gauge("b", "").Set(1)
	r.Histogram("c", "", []float64{1}).Observe(0.5)
	r.CounterVec("d_total", "", "l").WithLabelValues("x").Add(2)
	r.GaugeFunc("e", "", func() float64 { return 1 })
	r.SampleFunc(KindGauge, "f", "", nil, nil)
	if got := r.Gather(); got != nil {
		t.Fatalf("nil registry gathered %v", got)
	}
	if got := r.Sum("a_total", nil); got != 0 {
		t.Fatalf("nil registry Sum = %v", got)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry rendered %q (%v)", buf.String(), err)
	}
}

func TestRegistrationIsGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same_total", "h")
	b := r.Counter("same_total", "h")
	if a != b {
		t.Fatal("re-registration returned a different instrument")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("instruments not shared")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting re-registration did not panic")
		}
	}()
	r.Gauge("same_total", "h") // different kind: programmer error
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.05, 0.5, 5, 50} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 2`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_count 5`,
		`lat_seconds_sum 55.6`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if h.Count() != 5 || math.Abs(h.Sum()-55.6) > 1e-9 {
		t.Fatalf("count=%d sum=%v", h.Count(), h.Sum())
	}
	// A value exactly on a bound lands in that bucket (le is <=).
	h2 := r.Histogram("edge_seconds", "", []float64{1, 2})
	h2.Observe(1)
	fams := r.Gather()
	for _, f := range fams {
		if f.Name != "edge_seconds" {
			continue
		}
		if f.Series[0].Value != 1 {
			t.Fatalf("boundary observation missed le=1 bucket: %+v", f.Series)
		}
	}
}

func TestRenderEscapingAndOrdering(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("esc_total", "help with \\ and\nnewline", "path")
	v.WithLabelValues("b\"quote").Inc()
	v.WithLabelValues(`a\slash`).Inc()
	v.WithLabelValues("c\nline").Inc()
	r.Gauge("aaa_first", "sorts before esc_total")
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `# HELP esc_total help with \\ and\nnewline`) {
		t.Errorf("help not escaped:\n%s", out)
	}
	for _, want := range []string{
		`esc_total{path="a\\slash"} 1`,
		`esc_total{path="b\"quote"} 1`,
		`esc_total{path="c\nline"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Families sort by name; series sort by label values.
	if strings.Index(out, "aaa_first") > strings.Index(out, "esc_total") {
		t.Errorf("families out of order:\n%s", out)
	}
	if strings.Index(out, `a\\slash`) > strings.Index(out, `b\"quote`) {
		t.Errorf("series out of order:\n%s", out)
	}
	// Determinism: two renders are byte-identical.
	var buf2 bytes.Buffer
	r.WriteText(&buf2)
	if buf.String() != buf2.String() {
		t.Fatal("renders differ between calls")
	}
}

func TestSampleFuncAndSum(t *testing.T) {
	r := NewRegistry()
	state := map[string]float64{"up": 2, "down": 1}
	var mu sync.Mutex
	r.SampleFunc(KindGauge, "peers", "peer states", []string{"state"}, func() []Sample {
		mu.Lock()
		defer mu.Unlock()
		var out []Sample
		for k, v := range state {
			out = append(out, Sample{LabelValues: []string{k}, Value: v})
		}
		return out
	})
	if got := r.Sum("peers", nil); got != 3 {
		t.Fatalf("Sum all = %v, want 3", got)
	}
	if got := r.Sum("peers", map[string]string{"state": "up"}); got != 2 {
		t.Fatalf("Sum up = %v, want 2", got)
	}
	mu.Lock()
	state["down"] = 5
	mu.Unlock()
	if got := r.Sum("peers", map[string]string{"state": "down"}); got != 5 {
		t.Fatalf("snapshot family did not track live state: %v", got)
	}
}

func TestRenderedOutputPassesLint(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "counter").Add(3)
	r.GaugeVec("b_things", "gauge", "kind").WithLabelValues("x{}\"\\,").Set(-2)
	h := r.Histogram("c_seconds", "hist", []float64{0.01, 0.1, 1})
	h.Observe(0.5)
	h.Observe(2)
	r.CounterFunc("d_total", "func counter", func() float64 { return 9 })
	r.SampleFunc(KindGauge, "e_members", "by state", []string{"state"}, func() []Sample {
		return []Sample{{LabelValues: []string{"alive"}, Value: 1}}
	})
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := Lint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("own output fails lint: %v\n%s", err, buf.String())
	}
	if len(fams) != 5 {
		t.Fatalf("lint saw families %v, want 5", fams)
	}
}

func TestLintRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no families":        "",
		"sample before TYPE": "x_total 1\n",
		"counter not _total": "# TYPE x counter\nx 1\n",
		"bad value":          "# TYPE x gauge\nx one\n",
		"bad name":           "# TYPE 9x gauge\n9x 1\n",
		"duplicate series":   "# TYPE x gauge\nx 1\nx 2\n",
		"duplicate TYPE":     "# TYPE x gauge\n# TYPE x gauge\n",
		"negative counter":   "# TYPE x_total counter\nx_total -1\n",
		"unquoted label":     "# TYPE x gauge\nx{l=v} 1\n",
		"non-cumulative histogram": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="2"} 3` + "\n" + `h_bucket{le="+Inf"} 5` + "\n",
		"histogram without +Inf": "# TYPE h histogram\n" + `h_bucket{le="1"} 1` + "\nh_count 1\nh_sum 1\n",
		"count != +Inf bucket": "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 2` + "\nh_count 3\nh_sum 1\n",
	}
	for name, in := range cases {
		if _, err := Lint(strings.NewReader(in)); err == nil {
			t.Errorf("%s: lint accepted %q", name, in)
		}
	}
	// And a well-formed stream with label order shuffled still passes.
	ok := "# HELP h hist\n# TYPE h histogram\n" +
		`h_bucket{x="1",le="1"} 1` + "\n" + `h_bucket{le="+Inf",x="1"} 2` + "\n" +
		`h_sum{x="1"} 3` + "\n" + `h_count{x="1"} 2` + "\n"
	if _, err := Lint(strings.NewReader(ok)); err != nil {
		t.Errorf("well-formed stream rejected: %v", err)
	}
}

func TestHandlerServesText(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total", "x").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != TextContentType {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "served_total 1") {
		t.Fatalf("body %q", rec.Body.String())
	}
}

// TestConcurrentUpdates hammers one registry from many goroutines (run
// with -race): instrument updates, vec child creation, and renders must
// all be safe together, and no update may be lost.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total", "")
	vec := r.CounterVec("routed_total", "", "route")
	h := r.Histogram("lat_seconds", "", []float64{0.5})
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
				vec.WithLabelValues(fmt.Sprintf("r%d", i%3)).Inc()
				h.Observe(float64(i%2) + 0.25)
				if i%100 == 0 {
					var buf bytes.Buffer
					if err := r.WriteText(&buf); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*each {
		t.Fatalf("lost counter updates: %v", got)
	}
	if got := r.Sum("routed_total", nil); got != workers*each {
		t.Fatalf("lost vec updates: %v", got)
	}
	if h.Count() != workers*each {
		t.Fatalf("lost observations: %d", h.Count())
	}
}

func TestRequestIDContext(t *testing.T) {
	ctx := context.Background()
	if got := RequestID(ctx); got != "" {
		t.Fatalf("empty ctx has id %q", got)
	}
	ctx = WithRequestID(ctx, "abc123")
	if got := RequestID(ctx); got != "abc123" {
		t.Fatalf("id %q", got)
	}
	a, b := NewRequestID(), NewRequestID()
	if a == b || len(a) != 16 {
		t.Fatalf("ids %q %q", a, b)
	}
}

func TestLogfLogger(t *testing.T) {
	var lines []string
	lg := LogfLogger(func(format string, v ...any) {
		lines = append(lines, fmt.Sprintf(format, v...))
	})
	lg.Error("boom", "path", "/v1/x", "err", "secret detail: /var/lib")
	lg.With(slog.String("peer", "w1")).Info("ejected")
	if len(lines) != 2 {
		t.Fatalf("lines %v", lines)
	}
	if !strings.Contains(lines[0], "boom") || !strings.Contains(lines[0], "secret detail: /var/lib") ||
		!strings.Contains(lines[0], "path=/v1/x") {
		t.Fatalf("line %q", lines[0])
	}
	if !strings.Contains(lines[1], "peer=w1") {
		t.Fatalf("line %q", lines[1])
	}
}
