// Package obs is dramtherm's dependency-free observability layer:
// Prometheus-compatible metrics (counters, gauges, fixed-bucket
// histograms, all optionally labeled), rendered in the text exposition
// format, plus the request-id and structured-logging glue the HTTP and
// cluster layers share.
//
// # Metrics
//
// A Registry holds metric families. Instrument-backed families are
// updated in place on the hot path:
//
//	reg := obs.NewRegistry()
//	hits := reg.Counter("dramtherm_hits_total", "Cache hits.")
//	hits.Inc()
//
// Snapshot-backed families read existing state at gather time, so a
// subsystem that already keeps atomics (the run cache, the peer ring,
// the gossip table) exposes them without double bookkeeping — and any
// other surface reading the same state (healthz) cannot drift from
// /metrics:
//
//	reg.GaugeFunc("dramtherm_cache_entries", "Completed entries.",
//		func() float64 { return float64(cache.Len()) })
//
// Every instrument is safe to use through a nil pointer, and a nil
// *Registry hands out nil instruments: an uninstrumented subsystem pays
// one nil check per update and nothing else. Registration is
// get-or-create, so instrumenting the same subsystem into the same
// registry twice is harmless.
//
// WriteText renders the whole registry deterministically (families and
// series in sorted order) in the Prometheus text exposition format;
// Handler serves it over HTTP. Lint parses and validates that format —
// the CI scrape check — without any promtool dependency.
//
// # Request ids and logging
//
// WithRequestID/RequestID thread a per-request correlation id through
// context: the HTTP middleware assigns one (or adopts the caller's
// X-Request-ID), the engine's contexts carry it into the remote
// backend, and the backend forwards it to peers, so one id follows a
// request across every node that touches it. LogfLogger adapts a
// legacy printf-style sink into a *slog.Logger for packages that still
// accept Logf callbacks.
package obs
