package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind classifies a metric family.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

var kindNames = [...]string{"counter", "gauge", "histogram"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Registry is a set of metric families. The zero value is not usable;
// call NewRegistry. A nil *Registry is a valid no-op sink: every
// registration returns a nil instrument whose methods do nothing.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one metric family: fixed name, help, kind and label names,
// plus either live children (instrument-backed) or a snapshot callback.
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64 // histograms only: upper bounds, sorted, no +Inf

	mu       sync.Mutex
	children map[string]any // label-values key -> *Counter | *Gauge | *Histogram
	collect  func() []Sample
}

// Sample is one series of a snapshot-backed family at gather time.
type Sample struct {
	// LabelValues align positionally with the family's label names.
	LabelValues []string
	Value       float64
}

// lvKey joins label values into a map key; \xff cannot appear in any
// sane label value, so the join is unambiguous.
func lvKey(lvs []string) string { return strings.Join(lvs, "\xff") }

// register returns the family with this name, creating it if absent.
// A name reused with a different kind or label arity panics: that is a
// programming error two subsystems cannot both be right about.
func (r *Registry) register(name, help string, kind Kind, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: %s re-registered as %s%v, was %s%v", name, kind, labels, f.kind, f.labels))
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		children: make(map[string]any),
	}
	sort.Float64s(f.buckets)
	r.families[name] = f
	return f
}

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.CounterVec(name, help).WithLabelValues()
}

// CounterVec registers (or finds) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{fam: r.register(name, help, KindCounter, labels, nil)}
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.GaugeVec(name, help).WithLabelValues()
}

// GaugeVec registers (or finds) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{fam: r.register(name, help, KindGauge, labels, nil)}
}

// Histogram registers (or finds) an unlabeled fixed-bucket histogram.
// buckets are upper bounds in seconds (or any unit); +Inf is implicit.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.HistogramVec(name, help, buckets).WithLabelValues()
}

// HistogramVec registers (or finds) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{fam: r.register(name, help, KindHistogram, labels, buckets)}
}

// GaugeFunc registers a snapshot-backed gauge: fn is called at gather
// time. Re-registering replaces the callback (latest wins), so a
// subsystem re-instrumented after a restart stays correct.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.SampleFunc(KindGauge, name, help, nil, func() []Sample { return []Sample{{Value: fn()}} })
}

// CounterFunc registers a snapshot-backed counter over an existing
// monotonic source (an atomic some subsystem already keeps).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.SampleFunc(KindCounter, name, help, nil, func() []Sample { return []Sample{{Value: fn()}} })
}

// SampleFunc registers a snapshot-backed family with dynamic series:
// fn returns one Sample per series at gather time. This is the seam for
// state with dynamic identity — per-peer ring health, gossip member
// states — where pre-registering children is impossible.
func (r *Registry) SampleFunc(kind Kind, name, help string, labels []string, fn func() []Sample) {
	if r == nil {
		return
	}
	f := r.register(name, help, kind, labels, nil)
	f.mu.Lock()
	f.collect = fn
	f.mu.Unlock()
}

// --- instruments ------------------------------------------------------

// Counter is a monotonically increasing value. All methods are nil-safe
// and goroutine-safe.
type Counter struct{ bits atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d; negative deltas are ignored (counters only go up).
func (c *Counter) Add(d float64) {
	if c == nil || d < 0 {
		return
	}
	addFloat(&c.bits, d)
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a value that can go up and down. All methods are nil-safe
// and goroutine-safe.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d (which may be negative).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	addFloat(&g.bits, d)
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. All methods are
// nil-safe and goroutine-safe.
type Histogram struct {
	le      []float64 // upper bounds, sorted; +Inf implicit at len(le)
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.le, v) // first bucket with le >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	addFloat(&h.sumBits, v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

func addFloat(bits *atomic.Uint64, d float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// --- vecs -------------------------------------------------------------

// CounterVec hands out per-label-set counters.
type CounterVec struct{ fam *family }

// WithLabelValues returns the counter for these label values, creating
// it on first use. Nil-safe: a nil vec returns a nil (no-op) counter.
func (v *CounterVec) WithLabelValues(lvs ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.fam.child(lvs, func() any { return new(Counter) }).(*Counter)
}

// GaugeVec hands out per-label-set gauges.
type GaugeVec struct{ fam *family }

// WithLabelValues returns the gauge for these label values, creating it
// on first use. Nil-safe: a nil vec returns a nil (no-op) gauge.
func (v *GaugeVec) WithLabelValues(lvs ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.fam.child(lvs, func() any { return new(Gauge) }).(*Gauge)
}

// HistogramVec hands out per-label-set histograms.
type HistogramVec struct{ fam *family }

// WithLabelValues returns the histogram for these label values,
// creating it on first use. Nil-safe: a nil vec returns a nil (no-op)
// histogram.
func (v *HistogramVec) WithLabelValues(lvs ...string) *Histogram {
	if v == nil {
		return nil
	}
	mk := func() any {
		return &Histogram{
			le:     v.fam.buckets,
			counts: make([]atomic.Uint64, len(v.fam.buckets)+1),
		}
	}
	return v.fam.child(lvs, mk).(*Histogram)
}

func (f *family) child(lvs []string, mk func() any) any {
	if len(lvs) != len(f.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", f.name, len(f.labels), len(lvs)))
	}
	k := lvKey(lvs)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[k]; ok {
		return c
	}
	c := mk()
	f.children[k] = c
	return c
}

// --- gathering --------------------------------------------------------

// Label is one name=value pair of a gathered series.
type Label struct {
	Name  string
	Value string
}

// Series is one exposition line of a gathered family. For histograms
// the Suffix distinguishes _bucket/_sum/_count series; bucket series
// carry a trailing "le" label.
type Series struct {
	Suffix string // "", "_bucket", "_sum" or "_count"
	Labels []Label
	Value  float64
}

// Family is one gathered metric family, ready to render or inspect.
type Family struct {
	Name   string
	Help   string
	Kind   Kind
	Series []Series
}

// Gather snapshots every family, sorted by name, with series in
// deterministic (label-sorted) order — the single source WriteText,
// Handler and test assertions all read.
func (r *Registry) Gather() []Family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	out := make([]Family, 0, len(fams))
	for _, f := range fams {
		out = append(out, f.gather())
	}
	return out
}

func (f *family) gather() Family {
	out := Family{Name: f.name, Help: f.help, Kind: f.kind}
	f.mu.Lock()
	collect := f.collect
	type kv struct {
		key string
		lvs []string
		c   any
	}
	kids := make([]kv, 0, len(f.children))
	for k, c := range f.children {
		var lvs []string
		if k != "" || len(f.labels) > 0 {
			lvs = strings.Split(k, "\xff")
		}
		kids = append(kids, kv{k, lvs, c})
	}
	f.mu.Unlock()

	if collect != nil {
		samples := collect()
		sort.Slice(samples, func(i, j int) bool {
			return lvKey(samples[i].LabelValues) < lvKey(samples[j].LabelValues)
		})
		for _, s := range samples {
			out.Series = append(out.Series, Series{Labels: f.pairs(s.LabelValues), Value: s.Value})
		}
		return out
	}

	sort.Slice(kids, func(i, j int) bool { return kids[i].key < kids[j].key })
	for _, kid := range kids {
		base := f.pairs(kid.lvs)
		switch c := kid.c.(type) {
		case *Counter:
			out.Series = append(out.Series, Series{Labels: base, Value: c.Value()})
		case *Gauge:
			out.Series = append(out.Series, Series{Labels: base, Value: c.Value()})
		case *Histogram:
			cum := uint64(0)
			for i, le := range c.le {
				cum += c.counts[i].Load()
				out.Series = append(out.Series, Series{
					Suffix: "_bucket",
					Labels: append(append([]Label(nil), base...), Label{"le", formatFloat(le)}),
					Value:  float64(cum),
				})
			}
			out.Series = append(out.Series, Series{
				Suffix: "_bucket",
				Labels: append(append([]Label(nil), base...), Label{"le", "+Inf"}),
				Value:  float64(c.Count()),
			})
			out.Series = append(out.Series,
				Series{Suffix: "_sum", Labels: base, Value: c.Sum()},
				Series{Suffix: "_count", Labels: base, Value: float64(c.Count())})
		}
	}
	return out
}

func (f *family) pairs(lvs []string) []Label {
	if len(lvs) == 0 {
		return nil
	}
	out := make([]Label, len(f.labels))
	for i, n := range f.labels {
		v := ""
		if i < len(lvs) {
			v = lvs[i]
		}
		out[i] = Label{n, v}
	}
	return out
}

// Sum adds up the current values of every series of family name whose
// labels include all of match — a test- and assertion-friendly reader.
// Histogram families sum their _count series.
func (r *Registry) Sum(name string, match map[string]string) float64 {
	if r == nil {
		return 0
	}
	total := 0.0
	for _, fam := range r.Gather() {
		if fam.Name != name {
			continue
		}
		for _, s := range fam.Series {
			if fam.Kind == KindHistogram && s.Suffix != "_count" {
				continue
			}
			ok := true
			for k, v := range match {
				found := false
				for _, l := range s.Labels {
					if l.Name == k && l.Value == v {
						found = true
						break
					}
				}
				if !found {
					ok = false
					break
				}
			}
			if ok {
				total += s.Value
			}
		}
	}
	return total
}
