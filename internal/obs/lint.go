package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"strconv"
	"strings"
)

// Lint validates a Prometheus text exposition stream — the Go-based
// replacement for promtool's check. It enforces the format itself
// (parsable lines, legal metric and label names, TYPE headers before
// samples, no duplicate series) plus the conventions this repo's
// metrics follow (counter families end in _total, histogram buckets are
// cumulative and close with +Inf, _count matches the +Inf bucket).
// It returns the family names seen, so callers can assert coverage.
func Lint(r io.Reader) (families []string, err error) {
	l := &linter{
		types: make(map[string]string),
		seen:  make(map[string]bool),
		hists: make(map[string]*histCheck),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		if err := l.line(sc.Text()); err != nil {
			return l.names, fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return l.names, err
	}
	if err := l.finish(); err != nil {
		return l.names, err
	}
	if len(l.names) == 0 {
		return nil, fmt.Errorf("no metric families found")
	}
	return l.names, nil
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// histCheck accumulates one histogram series group (one label set,
// "le" excluded) for cumulativity and closure checks.
type histCheck struct {
	fam     string
	lastLe  float64
	lastCum float64
	started bool
	infSeen bool
	infVal  float64
	count   float64
	hasCnt  bool
}

type linter struct {
	types map[string]string // family -> declared type
	seen  map[string]bool   // full series identity -> seen
	names []string          // families in declaration order
	hists map[string]*histCheck
}

func (l *linter) line(s string) error {
	if s == "" {
		return nil
	}
	if strings.HasPrefix(s, "#") {
		return l.comment(s)
	}
	return l.sample(s)
}

func (l *linter) comment(s string) error {
	fields := strings.SplitN(s, " ", 4)
	if len(fields) < 2 {
		return nil // free-form comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE line %q", s)
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		if !metricNameRe.MatchString(name) {
			return fmt.Errorf("illegal metric name %q", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown type %q for %s", typ, name)
		}
		if _, dup := l.types[name]; dup {
			return fmt.Errorf("duplicate TYPE for %s", name)
		}
		if typ == "counter" && !strings.HasSuffix(name, "_total") {
			return fmt.Errorf("counter %s does not end in _total", name)
		}
		l.types[name] = typ
		l.names = append(l.names, name)
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("malformed HELP line %q", s)
		}
		if !metricNameRe.MatchString(fields[2]) {
			return fmt.Errorf("illegal metric name %q", fields[2])
		}
	}
	return nil
}

// familyOf strips histogram/summary suffixes down to the declared
// family name, if one matches.
func (l *linter) familyOf(name string) (fam, suffix string) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if t := l.types[base]; t == "histogram" || t == "summary" {
				return base, suf
			}
		}
	}
	return name, ""
}

func (l *linter) sample(s string) error {
	name, rest := s, ""
	if i := strings.IndexAny(s, "{ "); i >= 0 {
		name, rest = s[:i], s[i:]
	}
	if !metricNameRe.MatchString(name) {
		return fmt.Errorf("illegal metric name %q", name)
	}
	labels := map[string]string{}
	rest = strings.TrimSpace(rest)
	if strings.HasPrefix(rest, "{") {
		end := strings.LastIndex(rest, "}")
		if end < 0 {
			return fmt.Errorf("unterminated label set in %q", s)
		}
		var err error
		if labels, err = parseLabels(rest[1:end]); err != nil {
			return fmt.Errorf("%w in %q", err, s)
		}
		rest = strings.TrimSpace(rest[end+1:])
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("want value (and optional timestamp) after %s, got %q", name, rest)
	}
	val, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return fmt.Errorf("bad sample value %q for %s", fields[0], name)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return fmt.Errorf("bad timestamp %q for %s", fields[1], name)
		}
	}

	fam, suffix := l.familyOf(name)
	if _, ok := l.types[fam]; !ok {
		return fmt.Errorf("sample %s before any TYPE declaration for %s", name, fam)
	}
	id := seriesID(name, labels)
	if l.seen[id] {
		return fmt.Errorf("duplicate series %s", id)
	}
	l.seen[id] = true

	if l.types[fam] == "counter" && val < 0 {
		return fmt.Errorf("counter %s has negative value %v", name, val)
	}
	if l.types[fam] == "histogram" {
		return l.histSample(fam, suffix, labels, val)
	}
	return nil
}

func (l *linter) histSample(fam, suffix string, labels map[string]string, val float64) error {
	le, hasLe := labels["le"]
	delete(labels, "le")
	group := fam + "\xff" + seriesID("", labels)
	hc := l.hists[group]
	if hc == nil {
		hc = &histCheck{fam: fam}
		l.hists[group] = hc
	}
	switch suffix {
	case "_bucket":
		if !hasLe {
			return fmt.Errorf("histogram %s bucket without le label", fam)
		}
		bound := math.Inf(1)
		if le != "+Inf" {
			var err error
			if bound, err = strconv.ParseFloat(le, 64); err != nil {
				return fmt.Errorf("bad le %q on %s", le, fam)
			}
		}
		if hc.started {
			if bound <= hc.lastLe {
				return fmt.Errorf("histogram %s buckets out of order: le=%v after le=%v", fam, bound, hc.lastLe)
			}
			if val < hc.lastCum {
				return fmt.Errorf("histogram %s buckets not cumulative: %v after %v", fam, val, hc.lastCum)
			}
		}
		hc.started, hc.lastLe, hc.lastCum = true, bound, val
		if math.IsInf(bound, 1) {
			hc.infSeen, hc.infVal = true, val
		}
	case "_count":
		hc.count, hc.hasCnt = val, true
	case "_sum":
		// any float is fine
	default:
		return fmt.Errorf("histogram %s has a bare sample line", fam)
	}
	return nil
}

// finish runs the whole-stream histogram checks once every line is in.
func (l *linter) finish() error {
	for _, hc := range l.hists {
		if !hc.infSeen {
			return fmt.Errorf("histogram %s has no +Inf bucket", hc.fam)
		}
		if hc.hasCnt && hc.count != hc.infVal {
			return fmt.Errorf("histogram %s _count %v != +Inf bucket %v", hc.fam, hc.count, hc.infVal)
		}
	}
	return nil
}

func seriesID(name string, labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	// Deterministic identity regardless of label order on the wire.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	var b strings.Builder
	b.WriteString(name)
	for _, k := range keys {
		b.WriteByte('\xfe')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
	}
	return b.String()
}

// parseLabels parses the inside of a {…} label set.
func parseLabels(s string) (map[string]string, error) {
	out := map[string]string{}
	for len(s) > 0 {
		eq := strings.Index(s, "=")
		if eq < 0 {
			return nil, fmt.Errorf("malformed label pair %q", s)
		}
		name := strings.TrimSpace(s[:eq])
		if !labelNameRe.MatchString(name) {
			return nil, fmt.Errorf("illegal label name %q", name)
		}
		s = strings.TrimSpace(s[eq+1:])
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("label %s value is not quoted", name)
		}
		s = s[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(s[i])
				default:
					return nil, fmt.Errorf("bad escape \\%c in label %s", s[i], name)
				}
				continue
			}
			if c == '"' {
				s = s[i+1:]
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("unterminated value for label %s", name)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("duplicate label %s", name)
		}
		out[name] = val.String()
		s = strings.TrimSpace(s)
		if strings.HasPrefix(s, ",") {
			s = strings.TrimSpace(s[1:])
		}
	}
	return out, nil
}
