// Snapshot/restore seam for the FBDIMM channel, part of the level-1
// checkpoint chain (internal/cpu). Channel state is bank/link timing
// plus counters and row-buffer state — all plain data.

package fbdimm

import "fmt"

// ChannelState is the restorable state of a Channel. Timing and
// geometry are configuration; Restore checks them via array lengths.
type ChannelState struct {
	BankFree  []float64
	SouthFree float64
	NorthFree float64

	Traffic    []DIMMTrafficBytes
	ReadBytes  uint64
	WriteBytes uint64

	PageMode     PageMode
	OpenRow      []int64
	RowHits      uint64
	RowMisses    uint64
	RowConflicts uint64
}

// Snapshot deep-copies the channel's dynamic state.
func (c *Channel) Snapshot() ChannelState {
	return ChannelState{
		BankFree:     append([]float64(nil), c.bankFree...),
		SouthFree:    c.southFree,
		NorthFree:    c.northFree,
		Traffic:      append([]DIMMTrafficBytes(nil), c.traffic...),
		ReadBytes:    c.readBytes,
		WriteBytes:   c.writeBytes,
		PageMode:     c.pageMode,
		OpenRow:      append([]int64(nil), c.openRow...),
		RowHits:      c.rowHits,
		RowMisses:    c.rowMisses,
		RowConflicts: c.rowConflicts,
	}
}

// Restore overwrites the channel's state from a snapshot taken on a
// channel with the same geometry.
func (c *Channel) Restore(st ChannelState) error {
	if len(st.BankFree) != len(c.bankFree) || len(st.Traffic) != len(c.traffic) ||
		len(st.OpenRow) != len(c.openRow) {
		return fmt.Errorf("fbdimm: restore onto a channel with different geometry")
	}
	copy(c.bankFree, st.BankFree)
	c.southFree = st.SouthFree
	c.northFree = st.NorthFree
	copy(c.traffic, st.Traffic)
	c.readBytes = st.ReadBytes
	c.writeBytes = st.WriteBytes
	c.pageMode = st.PageMode
	copy(c.openRow, st.OpenRow)
	c.rowHits = st.RowHits
	c.rowMisses = st.RowMisses
	c.rowConflicts = st.RowConflicts
	return nil
}
