// Package fbdimm is a transaction-level simulator of the Fully Buffered
// DIMM interconnect of §3.2: daisy-chained AMBs on narrow south/northbound
// links, DDR2 banks behind each AMB, close-page auto-precharge timing, and
// variable read latency (VRL) by chain position. It produces exactly the
// quantities the Chapter 3 power model consumes: per-DIMM local read/write
// bytes and per-AMB bypass bytes.
//
// The simulated unit is one *logical* channel: a ganged pair of physical
// channels that together move one 64-byte line per transaction (burst
// length four over two channels, §3.3). Per-physical-DIMM traffic is half
// the logical DIMM traffic.
package fbdimm

import (
	"fmt"
	"math"

	"dramtherm/internal/fbconfig"
)

// Times are float64 nanoseconds from the start of the simulation run.

// Timing collects the DDR2/FBDIMM latencies in nanoseconds.
type Timing struct {
	TRCD, TCL, TRP, TRAS, TRC float64
	ClockNS                   float64 // DDR2 clock period (3 ns at 667 MT/s)
	HopNS                     float64 // AMB forward latency per chain hop
	ReadBurstNS               float64 // northbound occupancy per 64B line
	WriteBurstNS              float64 // southbound occupancy per 64B line
	CtrlOverheadNS            float64
	// AMBFixedNS is the AMB serialization/deserialization overhead of the
	// narrow-link protocol: FBDIMM reads pay roughly 20–30 ns over a raw
	// DDR2 access even to the first DIMM (§3.2's increased-latency cost).
	AMBFixedNS float64
}

// TimingFrom derives Timing from the Table 4.1 parameters. The northbound
// link of a physical channel matches one DDR2 channel's read bandwidth, so
// a 64B line on the ganged pair occupies the link for two DDR2 clocks
// (32B per channel at 16B/clock); the southbound data rate is half that.
func TimingFrom(p fbconfig.SimParams) Timing {
	// 3 ns at 667 MT/s; rounded to a quarter nanosecond so burst slots
	// align with simulation ticks (667 is the marketing name of 666.67).
	clock := math.Round(2000.0/float64(p.ChannelMTps)*4) / 4
	return Timing{
		TRCD: p.TRCD, TCL: p.TCL, TRP: p.TRP, TRAS: p.TRAS, TRC: p.TRC,
		ClockNS:        clock,
		HopNS:          4,
		ReadBurstNS:    2 * clock,
		WriteBurstNS:   4 * clock,
		CtrlOverheadNS: p.CtrlOverheadNS,
		AMBFixedNS:     25,
	}
}

// DIMMTrafficBytes accumulates the Fig. 3.2 traffic decomposition.
type DIMMTrafficBytes struct {
	LocalRead  uint64
	LocalWrite uint64
	Bypass     uint64
}

// Channel is one logical FBDIMM channel.
type Channel struct {
	timing Timing
	dimms  int
	banks  int

	bankFree   []float64 // next-free time per (dimm*banks+bank)
	southFree  float64   // southbound link (commands + write data)
	northFree  float64   // northbound link (read returns)
	traffic    []DIMMTrafficBytes
	readBytes  uint64
	writeBytes uint64

	// Row-buffer state (openpage.go); unused in ClosePage mode.
	pageMode     PageMode
	openRow      []int64
	rowHits      uint64
	rowMisses    uint64
	rowConflicts uint64
}

// NewChannel builds a channel with the given DIMM/bank geometry.
func NewChannel(t Timing, dimms, banks int) (*Channel, error) {
	if dimms <= 0 || banks <= 0 {
		return nil, fmt.Errorf("fbdimm: invalid geometry %d DIMMs × %d banks", dimms, banks)
	}
	c := &Channel{
		timing:   t,
		dimms:    dimms,
		banks:    banks,
		bankFree: make([]float64, dimms*banks),
		traffic:  make([]DIMMTrafficBytes, dimms),
		openRow:  make([]int64, dimms*banks),
	}
	for i := range c.openRow {
		c.openRow[i] = -1
	}
	return c, nil
}

// DIMMs returns the number of DIMMs on the channel.
func (c *Channel) DIMMs() int { return c.dimms }

// Banks returns the number of banks per DIMM.
func (c *Channel) Banks() int { return c.banks }

// BankFreeAt returns when the given bank is next free.
func (c *Channel) BankFreeAt(dimm, bank int) float64 { return c.bankFree[dimm*c.banks+bank] }

// CanIssue reports whether a transaction to (dimm, bank) could start at
// time now (bank and required link free).
func (c *Channel) CanIssue(now float64, dimm, bank int, write bool) bool {
	if c.bankFree[dimm*c.banks+bank] > now {
		return false
	}
	if write {
		return c.southFree <= now
	}
	// Reads need a southbound command slot now and the northbound link
	// free by the time the data is ready (otherwise the return path is
	// backlogged and issuing would only lengthen the reservation).
	dataValid := now + c.timing.TRCD + c.timing.TCL +
		c.timing.AMBFixedNS + c.timing.HopNS*float64(dimm)
	return c.southFree <= now && c.northFree <= dataValid
}

// Issue schedules a 64-byte transaction on (dimm, bank) starting at now
// and returns the completion time as seen by the requester (data returned
// for reads; write accepted and bank cycle reserved for writes). The
// caller must have checked CanIssue.
func (c *Channel) Issue(now float64, dimm, bank int, write bool) float64 {
	bi := dimm*c.banks + bank
	hop := c.timing.HopNS * float64(dimm) // VRL: farther DIMMs take longer

	// Close page with auto precharge: the bank is busy for a full tRC.
	c.bankFree[bi] = now + c.timing.TRC

	// Structural traffic accounting: every byte to DIMM d passes through
	// AMBs 0..d-1 (commands+write data southbound, read data northbound).
	for i := 0; i < dimm; i++ {
		c.traffic[i].Bypass += 64
	}

	if write {
		// Write data streams down the southbound link.
		c.southFree = now + c.timing.WriteBurstNS
		c.traffic[dimm].LocalWrite += 64
		c.writeBytes += 64
		// Posted write: requester is done once the data is accepted.
		return now + c.timing.WriteBurstNS + hop
	}

	// Command slot is brief; subsequent commands may follow next clock.
	c.southFree = now + c.timing.ClockNS
	dataValid := now + c.timing.TRCD + c.timing.TCL + hop + c.timing.AMBFixedNS
	start := dataValid
	if c.northFree > start {
		start = c.northFree
	}
	c.northFree = start + c.timing.ReadBurstNS
	c.traffic[dimm].LocalRead += 64
	c.readBytes += 64
	return start + c.timing.ReadBurstNS + hop + c.timing.CtrlOverheadNS
}

// Traffic returns the accumulated per-DIMM traffic decomposition.
func (c *Channel) Traffic() []DIMMTrafficBytes {
	out := make([]DIMMTrafficBytes, len(c.traffic))
	copy(out, c.traffic)
	return out
}

// Bytes returns total read and write bytes moved on the channel.
func (c *Channel) Bytes() (read, write uint64) { return c.readBytes, c.writeBytes }

// ResetStats clears traffic counters (bank/link state is kept), used after
// level-1 warmup.
func (c *Channel) ResetStats() {
	for i := range c.traffic {
		c.traffic[i] = DIMMTrafficBytes{}
	}
	c.readBytes, c.writeBytes = 0, 0
}

// MinReadLatencyNS returns the unloaded read latency of a DIMM: the
// quantity that varies with chain position under VRL.
func (c *Channel) MinReadLatencyNS(dimm int) float64 {
	return c.timing.TRCD + c.timing.TCL + c.timing.ReadBurstNS +
		2*c.timing.HopNS*float64(dimm) + c.timing.CtrlOverheadNS +
		c.timing.AMBFixedNS
}
