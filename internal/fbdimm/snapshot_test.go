package fbdimm

import (
	"testing"
)

// TestChannelSnapshotForkBitIdentical: a restored channel issues the
// remaining request stream with the exact same latencies and counters as
// the channel it was captured from, in both page modes.
func TestChannelSnapshotForkBitIdentical(t *testing.T) {
	for _, mode := range []PageMode{ClosePage, OpenPage} {
		src := mustChannel(t, 4, 8)
		src.SetPageMode(mode)
		now := 0.0
		for i := 0; i < 200; i++ {
			d, b, row := i%4, (i/4)%8, int64(i%3)
			if src.CanIssue(now, d, b, i%2 == 0) {
				src.IssueRow(now, d, b, row, i%2 == 0)
			}
			now += 7
		}
		st := src.Snapshot()

		dst := mustChannel(t, 4, 8)
		dst.SetPageMode(mode)
		if err := dst.Restore(st); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			d, b, row := i%4, (i/4)%8, int64(i%5)
			write := i%3 == 0
			if can, can2 := src.CanIssue(now, d, b, write), dst.CanIssue(now, d, b, write); can != can2 {
				t.Fatalf("mode %v issue %d: CanIssue %v vs %v", mode, i, can, can2)
			} else if can {
				if a, b2 := src.IssueRow(now, d, b, row, write), dst.IssueRow(now, d, b, row, write); a != b2 {
					t.Fatalf("mode %v issue %d: latency %v vs %v", mode, i, a, b2)
				}
			}
			now += 11
		}
		sr, sw := src.Bytes()
		dr, dw := dst.Bytes()
		if sr != dr || sw != dw {
			t.Fatalf("mode %v: bytes diverged: %d/%d vs %d/%d", mode, sr, sw, dr, dw)
		}
		h1, m1, c1 := src.RowStats()
		h2, m2, c2 := dst.RowStats()
		if h1 != h2 || m1 != m2 || c1 != c2 {
			t.Fatalf("mode %v: row stats diverged: %d/%d/%d vs %d/%d/%d", mode, h1, m1, c1, h2, m2, c2)
		}
	}
}

func TestChannelRestoreGeometryMismatch(t *testing.T) {
	st := mustChannel(t, 4, 8).Snapshot()
	if err := mustChannel(t, 2, 8).Restore(st); err == nil {
		t.Fatal("4-DIMM snapshot restored onto a 2-DIMM channel")
	}
}
