// Open-page mode: the ablation of the paper's close-page-with-auto-
// precharge assumption (§3.3). The paper states close page achieves
// better overall performance for multicore execution; this file lets the
// claim be tested. In open-page mode a bank keeps its row open after an
// access: a subsequent access to the same row skips activation (row-buffer
// hit, tCL only), while a conflict pays precharge + activate.

package fbdimm

// PageMode selects the row-buffer policy of a channel.
type PageMode int

const (
	// ClosePage is the paper's default: auto-precharge after every
	// column access, zero row-buffer hit rate (§3.3).
	ClosePage PageMode = iota
	// OpenPage leaves rows open, trading row-buffer hits against
	// conflict penalties.
	OpenPage
)

func (m PageMode) String() string {
	if m == OpenPage {
		return "open-page"
	}
	return "close-page"
}

// SetPageMode switches the channel's row-buffer policy. Switching resets
// all open-row state.
func (c *Channel) SetPageMode(m PageMode) {
	c.pageMode = m
	for i := range c.openRow {
		c.openRow[i] = -1
	}
}

// PageMode returns the active policy.
func (c *Channel) PageMode() PageMode { return c.pageMode }

// RowStats reports row-buffer outcomes (meaningful in open-page mode).
func (c *Channel) RowStats() (hits, misses, conflicts uint64) {
	return c.rowHits, c.rowMisses, c.rowConflicts
}

// IssueRow schedules a transaction like Issue but with an explicit DRAM
// row, enabling row-buffer management. In ClosePage mode the row is
// ignored and behaviour is identical to Issue.
func (c *Channel) IssueRow(now float64, dimm, bank int, row int64, write bool) float64 {
	if c.pageMode == ClosePage {
		return c.Issue(now, dimm, bank, write)
	}
	bi := dimm*c.banks + bank
	hop := c.timing.HopNS * float64(dimm)

	// Determine the access latency components from the row state.
	var rasToData float64 // command-to-data-valid, excluding link overheads
	var bankBusy float64  // how long the bank stays unavailable
	switch {
	case c.openRow[bi] == row:
		// Row-buffer hit: column access only.
		c.rowHits++
		rasToData = c.timing.TCL
		bankBusy = c.timing.TCL + c.timing.ReadBurstNS
	case c.openRow[bi] < 0:
		// Row closed (first touch): activate then access; keep it open.
		c.rowMisses++
		rasToData = c.timing.TRCD + c.timing.TCL
		bankBusy = c.timing.TRAS
	default:
		// Conflict: precharge the open row, activate the new one.
		c.rowConflicts++
		rasToData = c.timing.TRP + c.timing.TRCD + c.timing.TCL
		bankBusy = c.timing.TRP + c.timing.TRAS
	}
	c.openRow[bi] = row
	c.bankFree[bi] = now + bankBusy

	for i := 0; i < dimm; i++ {
		c.traffic[i].Bypass += 64
	}
	if write {
		c.southFree = now + c.timing.WriteBurstNS
		c.traffic[dimm].LocalWrite += 64
		c.writeBytes += 64
		return now + c.timing.WriteBurstNS + hop
	}
	c.southFree = now + c.timing.ClockNS
	dataValid := now + rasToData + hop + c.timing.AMBFixedNS
	start := dataValid
	if c.northFree > start {
		start = c.northFree
	}
	c.northFree = start + c.timing.ReadBurstNS
	c.traffic[dimm].LocalRead += 64
	c.readBytes += 64
	return start + c.timing.ReadBurstNS + hop + c.timing.CtrlOverheadNS
}
