package fbdimm

import (
	"testing"

	"dramtherm/internal/fbconfig"
)

func testTiming() Timing { return TimingFrom(fbconfig.DefaultSimParams) }

func mustChannel(t *testing.T, dimms, banks int) *Channel {
	t.Helper()
	c, err := NewChannel(testTiming(), dimms, banks)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTimingFrom(t *testing.T) {
	tm := testTiming()
	if tm.ClockNS != 3 { // 667 MT/s → 3 ns DDR2 clock
		t.Fatalf("ClockNS = %v", tm.ClockNS)
	}
	if tm.TRCD != 15 || tm.TCL != 15 || tm.TRC != 54 {
		t.Fatalf("timing = %+v", tm)
	}
	if tm.ReadBurstNS != 6 || tm.WriteBurstNS != 12 {
		t.Fatalf("burst = %v/%v", tm.ReadBurstNS, tm.WriteBurstNS)
	}
}

func TestNewChannelErrors(t *testing.T) {
	if _, err := NewChannel(testTiming(), 0, 8); err == nil {
		t.Fatal("0 DIMMs accepted")
	}
	if _, err := NewChannel(testTiming(), 4, 0); err == nil {
		t.Fatal("0 banks accepted")
	}
}

func TestBankOccupancy(t *testing.T) {
	c := mustChannel(t, 4, 8)
	if !c.CanIssue(0, 0, 0, false) {
		t.Fatal("fresh bank not issuable")
	}
	c.Issue(0, 0, 0, false)
	// Close-page auto-precharge: the bank is busy for tRC = 54 ns.
	if c.CanIssue(10, 0, 0, false) {
		t.Fatal("bank free inside tRC")
	}
	if got := c.BankFreeAt(0, 0); got != 54 {
		t.Fatalf("bank free at %v, want 54", got)
	}
	// A different bank is fine once the command slot and the northbound
	// return slot free up (one read burst after the first issue).
	if !c.CanIssue(6, 0, 1, false) {
		t.Fatal("sibling bank blocked")
	}
}

func TestVRL(t *testing.T) {
	c := mustChannel(t, 4, 8)
	// Variable read latency: farther DIMMs have longer minimum latency.
	prev := -1.0
	for d := 0; d < 4; d++ {
		l := c.MinReadLatencyNS(d)
		if l <= prev {
			t.Fatalf("VRL not increasing: DIMM %d = %v", d, l)
		}
		prev = l
	}
	// And issued reads follow: same-time issue to DIMM 0 vs DIMM 3.
	a := mustChannel(t, 4, 8)
	t0 := a.Issue(0, 0, 0, false)
	b := mustChannel(t, 4, 8)
	t3 := b.Issue(0, 3, 0, false)
	if t3 <= t0 {
		t.Fatalf("DIMM3 read (%v) not slower than DIMM0 (%v)", t3, t0)
	}
}

func TestTrafficAccounting(t *testing.T) {
	c := mustChannel(t, 4, 8)
	// One read to DIMM 2: 64B local there, 64B bypass at DIMMs 0 and 1.
	c.Issue(0, 2, 0, false)
	tr := c.Traffic()
	if tr[2].LocalRead != 64 || tr[2].LocalWrite != 0 {
		t.Fatalf("DIMM2 = %+v", tr[2])
	}
	if tr[0].Bypass != 64 || tr[1].Bypass != 64 || tr[3].Bypass != 0 {
		t.Fatalf("bypass = %+v", tr)
	}
	// One write to DIMM 0: local write, no bypass anywhere.
	c.Issue(100, 0, 1, true)
	tr = c.Traffic()
	if tr[0].LocalWrite != 64 {
		t.Fatalf("DIMM0 write = %+v", tr[0])
	}
	r, w := c.Bytes()
	if r != 64 || w != 64 {
		t.Fatalf("bytes = %v/%v", r, w)
	}
	c.ResetStats()
	if r, w := c.Bytes(); r != 0 || w != 0 {
		t.Fatal("reset kept counters")
	}
}

// TestNorthboundSaturation drives reads as fast as the channel accepts
// and checks throughput lands at the northbound link limit (one 64B line
// per ReadBurstNS), not above it.
func TestNorthboundSaturation(t *testing.T) {
	c := mustChannel(t, 4, 8)
	tm := testTiming()
	issued := 0
	horizon := 100000.0 // 100 µs
	bank := 0
	for now := 0.0; now < horizon; now += tm.ClockNS {
		for try := 0; try < 8; try++ {
			d, b := (issued+try)%4, ((issued+try)/4)%8
			if c.CanIssue(now, d, b, false) {
				c.Issue(now, d, b, false)
				issued++
				break
			}
		}
		bank++
	}
	gbps := float64(issued) * 64 / horizon // bytes per ns = GB/s
	limit := 64 / tm.ReadBurstNS
	if gbps > limit*1.01 {
		t.Fatalf("throughput %v exceeds link limit %v", gbps, limit)
	}
	// Rotating over DIMMs adds VRL hop jitter to the return path, so the
	// achieved rate sits somewhat below the ideal link limit.
	if gbps < limit*0.7 {
		t.Fatalf("throughput %v too far below link limit %v", gbps, limit)
	}
}

// TestWriteSouthboundOccupancy: back-to-back writes are limited by the
// southbound data rate (half the northbound).
func TestWriteSouthboundOccupancy(t *testing.T) {
	c := mustChannel(t, 4, 8)
	tm := testTiming()
	c.Issue(0, 0, 0, true)
	if c.CanIssue(tm.WriteBurstNS-1, 1, 0, true) {
		t.Fatal("southbound free during write burst")
	}
	if !c.CanIssue(tm.WriteBurstNS, 1, 0, true) {
		t.Fatal("southbound still busy after write burst")
	}
}

func TestPostedWriteCompletion(t *testing.T) {
	c := mustChannel(t, 4, 8)
	done := c.Issue(0, 0, 0, true)
	// Writes complete once accepted (posted), far sooner than a read.
	read := mustChannel(t, 4, 8).Issue(0, 0, 0, false)
	if done >= read {
		t.Fatalf("write completion %v not before read %v", done, read)
	}
}

func benchParams() fbconfig.SimParams { return fbconfig.DefaultSimParams }
