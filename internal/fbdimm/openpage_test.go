package fbdimm

import "testing"

func TestPageModeString(t *testing.T) {
	if ClosePage.String() != "close-page" || OpenPage.String() != "open-page" {
		t.Fatal("mode names wrong")
	}
}

func TestIssueRowClosePageIdentical(t *testing.T) {
	a := mustChannel(t, 4, 8)
	b := mustChannel(t, 4, 8)
	t1 := a.Issue(0, 1, 2, false)
	t2 := b.IssueRow(0, 1, 2, 77, false)
	if t1 != t2 {
		t.Fatalf("close-page IssueRow differs: %v vs %v", t1, t2)
	}
	if h, m, cf := b.RowStats(); h+m+cf != 0 {
		t.Fatal("close-page tracked row stats")
	}
}

func TestOpenPageRowHit(t *testing.T) {
	c := mustChannel(t, 4, 8)
	c.SetPageMode(OpenPage)
	if c.PageMode() != OpenPage {
		t.Fatal("mode not set")
	}
	// First touch: row miss (activation); keep open.
	first := c.IssueRow(0, 0, 0, 5, false)
	// Same row much later: row-buffer hit, faster by tRCD.
	later := 1000.0
	hit := c.IssueRow(later, 0, 0, 5, false) - later
	miss := first - 0
	if hit >= miss {
		t.Fatalf("row hit (%v) not faster than activation (%v)", hit, miss)
	}
	// Different row: conflict, slower than the first-touch activation.
	conflictAt := 2000.0
	conflict := c.IssueRow(conflictAt, 0, 0, 9, false) - conflictAt
	if conflict <= miss {
		t.Fatalf("conflict (%v) not slower than activation (%v)", conflict, miss)
	}
	h, m, cf := c.RowStats()
	if h != 1 || m != 1 || cf != 1 {
		t.Fatalf("row stats = %d/%d/%d", h, m, cf)
	}
}

func TestSetPageModeResetsRows(t *testing.T) {
	c := mustChannel(t, 4, 8)
	c.SetPageMode(OpenPage)
	c.IssueRow(0, 0, 0, 5, false)
	c.SetPageMode(OpenPage) // re-set: open rows forgotten
	at := 500.0
	c.IssueRow(at, 0, 0, 5, false)
	_, m, _ := c.RowStats()
	if m != 2 {
		t.Fatalf("open-row state survived reset: misses = %d", m)
	}
}

// BenchmarkPageModeAblation measures sequential-stream service time under
// both row-buffer policies — the ablation of the paper's close-page
// design choice (§3.3). Sequential streams are the best case for open
// page; the b.ReportMetric output shows the achieved GB/s.
func BenchmarkPageModeAblation(b *testing.B) {
	for _, mode := range []PageMode{ClosePage, OpenPage} {
		b.Run(mode.String(), func(b *testing.B) {
			c, err := NewChannel(TimingFrom(benchParams()), 4, 8)
			if err != nil {
				b.Fatal(err)
			}
			c.SetPageMode(mode)
			now := 0.0
			issued := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d, bank := i%4, (i/4)%8
				row := int64(i / 256)
				for !c.CanIssue(now, d, bank, false) {
					now += 3
				}
				c.IssueRow(now, d, bank, row, false)
				issued++
			}
			b.StopTimer()
			if now > 0 {
				b.ReportMetric(float64(issued)*64/now, "GB/s-simulated")
			}
		})
	}
}
