package cpu

import (
	"testing"

	"dramtherm/internal/fbconfig"
	"dramtherm/internal/memctrl"
	"dramtherm/internal/workload"
)

func machine(t *testing.T) *Multicore {
	t.Helper()
	mem, err := memctrl.New(memctrl.DefaultConfig(fbconfig.DefaultSimParams))
	if err != nil {
		t.Fatal(err)
	}
	mc, err := New(DefaultConfig(), mem, 1)
	if err != nil {
		t.Fatal(err)
	}
	return mc
}

func TestNewValidation(t *testing.T) {
	mem, _ := memctrl.New(memctrl.DefaultConfig(fbconfig.DefaultSimParams))
	if _, err := New(Config{Cores: 0}, mem, 1); err == nil {
		t.Fatal("zero cores accepted")
	}
	if _, err := New(Config{Cores: 2, L2Domain: []int{0}}, mem, 1); err == nil {
		t.Fatal("domain length mismatch accepted")
	}
	if _, err := New(Config{Cores: 2, L2Domain: []int{0, -1}}, mem, 1); err == nil {
		t.Fatal("negative domain accepted")
	}
	// Two domains build two L2s.
	mc, err := New(Config{Cores: 4, MaxFreqGHz: 3, L2Domain: []int{0, 0, 1, 1},
		Params: fbconfig.DefaultSimParams}, mem, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mc.L2Domains() != 2 {
		t.Fatalf("domains = %d", mc.L2Domains())
	}
}

// cpuOnly is a compute-bound profile: essentially no L2 accesses.
var cpuOnly = workload.Profile{
	Name: "cpuonly", IPC0: 2.0, L2APKI: 0.0001, HotKB: 64, HotFrac: 1,
	StreamKB: 64, StoreFrac: 0, MLP: 4, GInstr: 1,
}

// TestRetireRate: with no memory stalls, the core retires IPC0 × freq.
func TestRetireRate(t *testing.T) {
	mc := machine(t)
	mc.Assign(0, &cpuOnly, 1)
	mc.SetFreq(3.2)
	mc.RunFor(1e5) // 100 µs
	got := mc.Cores()[0].Stats().Retired
	want := 2.0 * 3.2 * 1e5 // IPC0 × GHz × ns
	if got < want*0.95 || got > want*1.001 {
		t.Fatalf("retired %v, want ≈%v", got, want)
	}
}

// TestFrequencyScaling: halving frequency halves a compute-bound core's
// rate.
func TestFrequencyScaling(t *testing.T) {
	rate := func(f float64) float64 {
		mc := machine(t)
		mc.Assign(0, &cpuOnly, 1)
		mc.SetFreq(f)
		mc.RunFor(1e5)
		return mc.Cores()[0].Stats().Retired
	}
	full, half := rate(3.2), rate(1.6)
	ratio := half / full
	if ratio < 0.48 || ratio > 0.52 {
		t.Fatalf("frequency scaling ratio = %v", ratio)
	}
}

func TestGating(t *testing.T) {
	mc := machine(t)
	mc.Assign(0, &cpuOnly, 1)
	mc.SetGated(0, true)
	if !mc.Gated(0) {
		t.Fatal("gate not set")
	}
	mc.RunFor(1e4)
	if got := mc.Cores()[0].Stats().Retired; got != 0 {
		t.Fatalf("gated core retired %v instructions", got)
	}
	mc.SetGated(0, false)
	mc.RunFor(1e4)
	if mc.Cores()[0].Stats().Retired == 0 {
		t.Fatal("ungated core did not run")
	}
}

// TestMemoryTraffic: a memory-bound profile produces controller traffic
// and outstanding misses never exceed MLP.
func TestMemoryTraffic(t *testing.T) {
	mc := machine(t)
	p, err := workload.ByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	mc.Assign(0, p, 1)
	for i := 0; i < 100000; i++ {
		mc.Step()
		if out := mc.Cores()[0].outstanding; out > p.MLP {
			t.Fatalf("outstanding %d exceeds MLP %d", out, p.MLP)
		}
	}
	// Run long enough to fill the 4 MB L2 and start evicting dirty lines.
	mc.RunFor(4e6)
	st := mc.Mem().Stats()
	if st.ReadBytes == 0 {
		t.Fatal("no read traffic generated")
	}
	if st.WriteBytes == 0 {
		t.Fatal("no writeback traffic generated")
	}
	cs := mc.Cores()[0].Stats()
	if cs.DemandMiss == 0 || cs.StallCycles == 0 {
		t.Fatalf("memory-bound core stats implausible: %+v", cs)
	}
}

// TestSpeculativeScaling: speculative requests drop when the core is
// slowed (§4.4.2).
func TestSpeculativeScaling(t *testing.T) {
	spec := func(f float64) uint64 {
		mc := machine(t)
		p, _ := workload.ByName("swim")
		mc.Assign(0, p, 1)
		mc.SetFreq(f)
		mc.RunFor(3e5)
		return mc.Cores()[0].Stats().SpecIssued
	}
	full, slow := spec(3.2), spec(0.8)
	if slow >= full {
		t.Fatalf("speculative traffic did not shrink: %d vs %d", slow, full)
	}
}

// TestPhaseMultiplier: a higher memory-intensity multiplier produces more
// misses per instruction.
func TestPhaseMultiplier(t *testing.T) {
	missPerInstr := func(mul float64) float64 {
		mc := machine(t)
		p, _ := workload.ByName("swim")
		mc.Assign(0, p, mul)
		mc.RunFor(3e5)
		cs := mc.Cores()[0].Stats()
		return float64(cs.DemandMiss) / cs.Retired
	}
	lo, hi := missPerInstr(0.5), missPerInstr(1.5)
	if hi <= lo {
		t.Fatalf("phase multiplier ineffective: %v vs %v", lo, hi)
	}
}

func TestAssignReset(t *testing.T) {
	mc := machine(t)
	p, _ := workload.ByName("art")
	mc.Assign(2, p, 1)
	if !mc.Cores()[2].Assigned() || mc.Cores()[2].Profile() != p {
		t.Fatal("assignment lost")
	}
	mc.Assign(2, nil, 1)
	if mc.Cores()[2].Assigned() {
		t.Fatal("core still assigned after nil")
	}
	mc.RunFor(1e4) // idle core must not crash
}

func TestResetStats(t *testing.T) {
	mc := machine(t)
	p, _ := workload.ByName("swim")
	mc.Assign(0, p, 1)
	mc.RunFor(1e5)
	mc.ResetStats()
	if mc.Cores()[0].Stats().Retired != 0 {
		t.Fatal("core stats survive reset")
	}
	if mc.Mem().Stats().ReadBytes != 0 {
		t.Fatal("controller stats survive reset")
	}
	if mc.L2(0).Stats().Accesses != 0 {
		t.Fatal("cache stats survive reset")
	}
}

// TestSharedCacheContention: four copies of a hot-set program miss more
// in the shared L2 than a single copy — the DTM-ACG mechanism.
func TestSharedCacheContention(t *testing.T) {
	missRate := func(copies int) float64 {
		mc := machine(t)
		p, _ := workload.ByName("art")
		for i := 0; i < copies; i++ {
			mc.Assign(i, p, 1)
		}
		mc.RunFor(2e6)
		mc.ResetStats()
		mc.RunFor(1e6)
		return mc.L2(0).Stats().MissRate()
	}
	solo, four := missRate(1), missRate(4)
	if four <= solo*1.2 {
		t.Fatalf("contention too weak: solo %.3f vs four %.3f", solo, four)
	}
}
