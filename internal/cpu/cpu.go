// Package cpu models the multicore processor of the level-1 architectural
// simulator (Table 4.1): cores that retire instructions at an
// issue-limited rate, generate L2 accesses from their workload's synthetic
// stream, sustain a bounded number of outstanding misses (MSHR-limited
// memory-level parallelism), and support the two DTM actuators — per-core
// clock gating (DTM-ACG) and chip-wide DVFS (DTM-CDVFS). Speculative
// traffic scales with core frequency, reproducing the §4.4.2 observation
// that slower cores generate fewer speculative memory accesses.
package cpu

import (
	"fmt"

	"dramtherm/internal/cache"
	"dramtherm/internal/fbconfig"
	"dramtherm/internal/fbdimm"
	"dramtherm/internal/memctrl"
	"dramtherm/internal/workload"
)

// missIssueCycles is the core-cycle cost charged per demand miss in the
// issue path (see the comment at the charge site).
const missIssueCycles = 20

// Config describes the processor.
type Config struct {
	Cores      int
	MaxFreqGHz float64
	// L2Domain[i] gives the index of the shared L2 serving core i; the
	// Chapter 4 processor has one domain, the Chapter 5 servers have one
	// per socket.
	L2Domain []int
	Params   fbconfig.SimParams
}

// DefaultConfig is the Chapter 4 four-core processor with one shared L2.
func DefaultConfig() Config {
	return Config{
		Cores:      4,
		MaxFreqGHz: 3.2,
		L2Domain:   []int{0, 0, 0, 0},
		Params:     fbconfig.DefaultSimParams,
	}
}

// CoreStats are the per-core counters of one measurement window.
type CoreStats struct {
	Retired     float64
	BusyCycles  float64 // cycles the core was clocked and unblocked
	StallCycles float64 // cycles blocked on MLP/queue
	DemandMiss  uint64
	SpecIssued  uint64
}

// Core is one processor core.
type Core struct {
	ID      int
	prof    *workload.Profile
	stream  *workload.Stream
	freqGHz float64
	gated   bool

	phaseMul float64 // memory-intensity multiplier for the current phase

	outstanding int
	pendingReq  *memctrl.Request
	pendingWB   []*memctrl.Request
	toNextAcc   float64 // instructions until next L2 access
	hitStall    float64 // remaining stall cycles from L2 hits

	stats CoreStats
}

// Assigned reports whether the core is running a program.
func (c *Core) Assigned() bool { return c.prof != nil }

// Profile returns the assigned program, or nil.
func (c *Core) Profile() *workload.Profile { return c.prof }

// Stats returns the window counters.
func (c *Core) Stats() CoreStats { return c.stats }

// Multicore couples cores, shared L2s and the memory controller into the
// steppable level-1 machine.
type Multicore struct {
	cfg   Config
	cores []*Core
	l2s   []*cache.Cache
	mem   *memctrl.Controller

	tickNS float64
	now    float64
	seed   int64

	// compBuf is the completion buffer handed to memctrl.TickAppend every
	// clock; free recycles completed Request structs back into access()
	// (a completed request is dead: the controller drops its reference on
	// pop and Step only reads it), so the steady-state tick allocates
	// nothing.
	compBuf []memctrl.Completion
	free    []*memctrl.Request
}

// New builds the machine. The memory controller is owned by the caller so
// experiment code can configure throttling before/independently of the
// processor.
func New(cfg Config, mem *memctrl.Controller, seed int64) (*Multicore, error) {
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("cpu: no cores")
	}
	if len(cfg.L2Domain) != cfg.Cores {
		return nil, fmt.Errorf("cpu: L2Domain has %d entries for %d cores", len(cfg.L2Domain), cfg.Cores)
	}
	nd := 0
	for _, d := range cfg.L2Domain {
		if d < 0 {
			return nil, fmt.Errorf("cpu: negative L2 domain")
		}
		if d+1 > nd {
			nd = d + 1
		}
	}
	m := &Multicore{cfg: cfg, mem: mem, seed: seed}
	// One tick per DDR2 clock, taken from the fbdimm timing so core-driven
	// controller ticks align exactly with link burst slots.
	m.tickNS = fbdimm.TimingFrom(cfg.Params).ClockNS
	for i := 0; i < nd; i++ {
		l2, err := cache.New(cache.Config{
			SizeKB:    cfg.Params.L2SizeKB,
			Ways:      cfg.Params.L2Ways,
			LineBytes: cfg.Params.LineBytes,
		}, cfg.Cores)
		if err != nil {
			return nil, err
		}
		m.l2s = append(m.l2s, l2)
	}
	for i := 0; i < cfg.Cores; i++ {
		m.cores = append(m.cores, &Core{ID: i, freqGHz: cfg.MaxFreqGHz})
	}
	return m, nil
}

// Cores returns the core slice.
func (m *Multicore) Cores() []*Core { return m.cores }

// L2 returns the shared cache of domain d.
func (m *Multicore) L2(d int) *cache.Cache { return m.l2s[d] }

// L2Domains returns the number of L2 domains.
func (m *Multicore) L2Domains() int { return len(m.l2s) }

// Mem returns the memory controller.
func (m *Multicore) Mem() *memctrl.Controller { return m.mem }

// Now returns the current simulation time in ns.
func (m *Multicore) Now() float64 { return m.now }

// TickNS returns the simulation step (one DDR2 clock).
func (m *Multicore) TickNS() float64 { return m.tickNS }

// Assign binds a program to core id with the given memory-intensity
// phase multiplier (1 = the profile's nominal intensity). Passing nil
// idles the core.
func (m *Multicore) Assign(id int, p *workload.Profile, phaseMul float64) {
	c := m.cores[id]
	c.prof = p
	c.phaseMul = phaseMul
	if c.phaseMul <= 0 {
		c.phaseMul = 1
	}
	c.outstanding = 0
	c.pendingReq = nil
	c.pendingWB = nil
	c.hitStall = 0
	if p != nil {
		c.stream = workload.NewStream(p, id, m.seed)
		c.toNextAcc = c.gap()
	} else {
		c.stream = nil
	}
}

// SetFreq sets all cores to f GHz (DTM-CDVFS actuator).
func (m *Multicore) SetFreq(f float64) {
	for _, c := range m.cores {
		c.freqGHz = f
	}
}

// SetGated clock-gates or ungates core id (DTM-ACG actuator).
func (m *Multicore) SetGated(id int, gated bool) { m.cores[id].gated = gated }

// Gated reports whether core id is gated.
func (m *Multicore) Gated(id int) bool { return m.cores[id].gated }

// gap returns the instruction distance to the next L2 access under the
// profile's current phase multiplier.
func (c *Core) gap() float64 {
	apki := c.prof.L2APKI * c.phaseMul
	if apki <= 0 {
		return 1e12
	}
	return 1000 / apki
}

// Step advances the machine by one tick (one DDR2 clock).
func (m *Multicore) Step() {
	m.compBuf = m.mem.TickAppend(m.now, m.compBuf[:0])
	for _, comp := range m.compBuf {
		r := comp.Req
		if !r.Speculative && !r.Write {
			c := m.cores[r.Core]
			if c.outstanding > 0 {
				c.outstanding--
			}
		}
		if len(m.free) < 256 {
			m.free = append(m.free, r)
		}
	}
	for _, c := range m.cores {
		m.advanceCore(c)
	}
	m.now += m.tickNS
}

// newRequest returns a zeroed Request, recycled from the freelist when
// possible.
func (m *Multicore) newRequest() *memctrl.Request {
	if n := len(m.free); n > 0 {
		r := m.free[n-1]
		m.free = m.free[:n-1]
		*r = memctrl.Request{}
		return r
	}
	return &memctrl.Request{}
}

// Run advances the machine n ticks.
func (m *Multicore) Run(n int) {
	for i := 0; i < n; i++ {
		m.Step()
	}
}

// RunFor advances the machine by ns nanoseconds.
func (m *Multicore) RunFor(ns float64) {
	n := int(ns / m.tickNS)
	m.Run(n)
}

func (m *Multicore) advanceCore(c *Core) {
	if c.prof == nil || c.gated || c.freqGHz <= 0 {
		return
	}
	// Retry deferred writebacks first; they only need queue space.
	for len(c.pendingWB) > 0 {
		if !m.mem.Enqueue(c.pendingWB[0], m.now) {
			break
		}
		c.pendingWB = c.pendingWB[1:]
	}

	cycles := c.freqGHz * m.tickNS
	if c.hitStall > 0 {
		if c.hitStall >= cycles {
			c.hitStall -= cycles
			c.stats.BusyCycles += cycles
			return
		}
		cycles -= c.hitStall
		c.stats.BusyCycles += c.hitStall
		c.hitStall = 0
	}

	for cycles > 0 {
		if c.outstanding >= c.prof.MLP {
			c.stats.StallCycles += cycles
			return
		}
		if c.pendingReq != nil {
			if !m.mem.Enqueue(c.pendingReq, m.now) {
				c.stats.StallCycles += cycles
				return
			}
			c.outstanding++
			c.pendingReq = nil
		}
		// Retire instructions until the next access or the cycle budget
		// runs out.
		instr := cycles * c.prof.IPC0
		if instr >= c.toNextAcc {
			instr = c.toNextAcc
		}
		used := instr / c.prof.IPC0
		cycles -= used
		c.stats.BusyCycles += used
		c.stats.Retired += instr
		c.toNextAcc -= instr
		if c.toNextAcc > 0 {
			return // budget exhausted mid-gap
		}
		c.toNextAcc = c.gap()
		m.access(c)
	}
}

// access performs one L2 access for core c and issues memory traffic on a
// miss.
func (m *Multicore) access(c *Core) {
	addr, kind := c.stream.Next()
	l2 := m.l2s[m.cfg.L2Domain[c.ID]]
	res := l2.Access(c.ID, addr, kind)
	if res.WritebackValid {
		wb := m.newRequest()
		wb.Core, wb.Addr, wb.Write = c.ID, res.Writeback, true
		if !m.mem.Enqueue(wb, m.now) {
			if len(c.pendingWB) < 64 {
				c.pendingWB = append(c.pendingWB, wb)
			} else if len(m.free) < 256 {
				m.free = append(m.free, wb) // dropped writeback
			}
		}
	}
	if res.Hit {
		// OOO execution hides most of the L2 hit latency; charge a
		// quarter of it as exposed stall.
		c.hitStall += float64(m.cfg.Params.L2HitLatency) / 4
		return
	}
	c.stats.DemandMiss++
	// Each miss costs a fixed number of *core* cycles in the issue path
	// (address generation, miss handling, dependent-chain restart). At
	// high clock this is negligible against DRAM latency; at low clock it
	// throttles demand — the effect that lets DTM-CDVFS actually shed
	// memory traffic (§4.4.2).
	c.hitStall += missIssueCycles
	req := m.newRequest()
	req.Core, req.Addr = c.ID, addr
	if m.mem.Enqueue(req, m.now) {
		c.outstanding++
	} else {
		c.pendingReq = req
	}
	// Speculative/prefetch traffic accompanies demand misses and scales
	// with core frequency.
	if c.stream.Speculative(c.freqGHz / m.cfg.MaxFreqGHz) {
		spec := m.newRequest()
		spec.Core, spec.Addr, spec.Speculative = c.ID, addr+64, true
		if m.mem.Enqueue(spec, m.now) {
			c.stats.SpecIssued++
		} else if len(m.free) < 256 {
			m.free = append(m.free, spec) // dropped speculative request
		}
	}
}

// ResetStats clears all window counters (core, cache, controller) while
// keeping microarchitectural state warm. Call at the end of warmup.
func (m *Multicore) ResetStats() {
	for _, c := range m.cores {
		c.stats = CoreStats{}
	}
	for _, l2 := range m.l2s {
		l2.ResetStats()
	}
	m.mem.ResetStats()
}
