package cpu

import (
	"sync"
	"testing"

	"dramtherm/internal/fbconfig"
	"dramtherm/internal/memctrl"
	"dramtherm/internal/workload"
)

// loaded returns a machine mid-window: memory-bound work assigned, run
// long enough that requests are in flight, writebacks pending, and the
// request freelist populated with recycled completions.
func loaded(t *testing.T) *Multicore {
	t.Helper()
	mc := machine(t)
	p, err := workload.ByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	mc.Assign(0, p, 1)
	mc.Assign(1, p, 1.2)
	mc.RunFor(3e5)
	return mc
}

// TestSnapshotFreelistIsolation is the recycled-request regression test:
// a snapshot taken mid-window must not leak freelist (or any other)
// *Request pointers into the restored machine. The source machine keeps
// recycling its own completions while the restored one runs concurrently
// — under -race, one shared request struct between them is a detected
// write race; identical digests afterwards prove the empty freelist did
// not perturb simulation semantics either.
func TestSnapshotFreelistIsolation(t *testing.T) {
	src := loaded(t)
	if src.FreeListLen() == 0 {
		t.Fatal("scenario vacuous: source freelist empty — run longer before snapshotting")
	}
	st := src.Snapshot()

	dst := machine(t)
	if err := dst.Restore(st); err != nil {
		t.Fatal(err)
	}
	if n := dst.FreeListLen(); n != 0 {
		t.Fatalf("restored machine inherited %d freelist entries", n)
	}

	var wg sync.WaitGroup
	for _, m := range []*Multicore{src, dst} {
		wg.Add(1)
		go func(m *Multicore) {
			defer wg.Done()
			m.RunFor(3e5)
		}(m)
	}
	wg.Wait()

	a, b := src.Snapshot(), dst.Snapshot()
	if a.Digest() != b.Digest() {
		t.Fatalf("restored machine diverged from source after identical run:\nsrc: %+v\ndst: %+v", a.Mem.Stats, b.Mem.Stats)
	}
}

// TestSnapshotRoundTrip: snapshot → restore → snapshot reproduces the
// same digest, including pending requests and writebacks by value.
func TestSnapshotRoundTrip(t *testing.T) {
	src := loaded(t)
	st := src.Snapshot()
	dst := machine(t)
	if err := dst.Restore(st); err != nil {
		t.Fatal(err)
	}
	if got, want := dst.Snapshot().Digest(), st.Digest(); got != want {
		t.Fatalf("round-trip digest %s != %s", got, want)
	}
	if dst.Now() != src.Now() {
		t.Fatalf("clock %v != %v", dst.Now(), src.Now())
	}
}

// TestRestoreValidation: geometry mismatches are rejected.
func TestRestoreValidation(t *testing.T) {
	st := loaded(t).Snapshot()

	bad := *st
	bad.Cores = bad.Cores[:1]
	if err := machine(t).Restore(&bad); err == nil {
		t.Fatal("core-count mismatch accepted")
	}

	mem, err := memctrl.New(memctrl.DefaultConfig(fbconfig.DefaultSimParams))
	if err != nil {
		t.Fatal(err)
	}
	two, err := New(Config{Cores: 2, MaxFreqGHz: 3.2, L2Domain: []int{0, 0},
		Params: fbconfig.DefaultSimParams}, mem, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := two.Restore(st); err == nil {
		t.Fatal("restore across machine shapes accepted")
	}
}
