// Snapshot/restore seam for the level-1 machine. The subtle invariant is
// request-pointer isolation: a Multicore recycles completed
// *memctrl.Request structs through a freelist, and naively copying that
// freelist (or any pending request pointer) into a snapshot would let a
// restored machine and its source mutate the same structs. Snapshot
// therefore captures every request by value, and Restore materializes
// fresh allocations and an empty freelist — the restored machine shares
// no request pointer with the machine it came from, which the -race
// regression test in snapshot_test.go checks by running both
// concurrently.

package cpu

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"dramtherm/internal/cache"
	"dramtherm/internal/memctrl"
	"dramtherm/internal/workload"
)

// CoreState is the restorable state of one core.
type CoreState struct {
	Prof        string // profile name; empty = idle core
	PhaseMul    float64
	FreqGHz     float64
	Gated       bool
	Outstanding int
	// PendingReqValid gates PendingReq: a pending request may be the
	// zero value, so presence cannot be inferred from the payload.
	PendingReqValid bool
	PendingReq      memctrl.RequestState
	PendingWB       []memctrl.RequestState
	ToNextAcc       float64
	HitStall        float64
	Stats           CoreStats
	Stream          workload.StreamState // valid when Prof != ""
}

// MulticoreState is the restorable state of a Multicore and its memory
// system. The freelist is deliberately absent: it is an allocation
// cache, not simulation state, and carrying its pointers across a
// checkpoint would leak recycled requests between machines.
type MulticoreState struct {
	Now   float64
	Cores []CoreState
	L2s   []cache.State
	Mem   memctrl.ControllerState
}

// Snapshot deep-copies the machine's dynamic state, requests by value.
func (m *Multicore) Snapshot() *MulticoreState {
	st := &MulticoreState{
		Now:   m.now,
		Cores: make([]CoreState, len(m.cores)),
		L2s:   make([]cache.State, len(m.l2s)),
		Mem:   m.mem.Snapshot(),
	}
	for i, c := range m.cores {
		cs := CoreState{
			PhaseMul:    c.phaseMul,
			FreqGHz:     c.freqGHz,
			Gated:       c.gated,
			Outstanding: c.outstanding,
			ToNextAcc:   c.toNextAcc,
			HitStall:    c.hitStall,
			Stats:       c.stats,
		}
		if c.prof != nil {
			cs.Prof = c.prof.Name
			cs.Stream = c.stream.Snapshot()
		}
		if c.pendingReq != nil {
			cs.PendingReqValid = true
			cs.PendingReq = c.pendingReq.State()
		}
		cs.PendingWB = make([]memctrl.RequestState, len(c.pendingWB))
		for j, wb := range c.pendingWB {
			cs.PendingWB[j] = wb.State()
		}
		st.Cores[i] = cs
	}
	for i, l2 := range m.l2s {
		st.L2s[i] = l2.Snapshot()
	}
	return st
}

// Restore overwrites the machine's state from a snapshot taken on a
// machine with the same configuration. All pending requests are fresh
// allocations and the freelist starts empty, so the restored machine
// holds no pointer into the snapshotted one.
func (m *Multicore) Restore(st *MulticoreState) error {
	if len(st.Cores) != len(m.cores) {
		return fmt.Errorf("cpu: restore with %d cores onto %d", len(st.Cores), len(m.cores))
	}
	if len(st.L2s) != len(m.l2s) {
		return fmt.Errorf("cpu: restore with %d L2 domains onto %d", len(st.L2s), len(m.l2s))
	}
	for i, ls := range st.L2s {
		if err := m.l2s[i].Restore(ls); err != nil {
			return err
		}
	}
	if err := m.mem.Restore(st.Mem); err != nil {
		return err
	}
	for i, cs := range st.Cores {
		c := m.cores[i]
		c.phaseMul = cs.PhaseMul
		c.freqGHz = cs.FreqGHz
		c.gated = cs.Gated
		c.outstanding = cs.Outstanding
		c.toNextAcc = cs.ToNextAcc
		c.hitStall = cs.HitStall
		c.stats = cs.Stats
		if cs.Prof == "" {
			c.prof, c.stream = nil, nil
		} else {
			p, err := workload.ByName(cs.Prof)
			if err != nil {
				return fmt.Errorf("cpu: restore core %d: %w", i, err)
			}
			s, err := workload.RestoreStream(cs.Stream)
			if err != nil {
				return fmt.Errorf("cpu: restore core %d stream: %w", i, err)
			}
			c.prof, c.stream = p, s
		}
		c.pendingReq = nil
		if cs.PendingReqValid {
			c.pendingReq = memctrl.NewRequest(cs.PendingReq)
		}
		c.pendingWB = nil
		for _, wb := range cs.PendingWB {
			c.pendingWB = append(c.pendingWB, memctrl.NewRequest(wb))
		}
	}
	m.now = st.Now
	// The freelist is an allocation cache of the *source* machine's dead
	// requests; recycling them here would hand live pointers to two
	// machines at once. Start empty and let it refill from this machine's
	// own completions.
	m.free = nil
	m.compBuf = m.compBuf[:0]
	return nil
}

// FreeListLen reports the freelist population, exposed for the
// pointer-isolation regression test.
func (m *Multicore) FreeListLen() int { return len(m.free) }

// Digest returns the canonical digest of the state: SHA-256 over its
// full-precision rendering, truncated to 16 hex digits (the
// core.ConfigDigest idiom; the state holds no maps, so the rendering is
// deterministic).
func (st *MulticoreState) Digest() string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%+v", *st)))
	return hex.EncodeToString(sum[:8])
}
