package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); !almost(got, 2.5) {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); !almost(got, 2) {
		t.Fatalf("GeoMean = %v, want 2", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Fatalf("GeoMean(nil) = %v", got)
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	mn, err := Min(xs)
	if err != nil || mn != -1 {
		t.Fatalf("Min = %v, %v", mn, err)
	}
	mx, err := Max(xs)
	if err != nil || mx != 7 {
		t.Fatalf("Max = %v, %v", mx, err)
	}
	if s := Sum(xs); !almost(s, 11) {
		t.Fatalf("Sum = %v", s)
	}
	if _, err := Min(nil); err != ErrEmpty {
		t.Fatalf("Min(nil) err = %v", err)
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Fatalf("Max(nil) err = %v", err)
	}
}

func TestVarianceStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if v := Variance(xs); !almost(v, 4) {
		t.Fatalf("Variance = %v, want 4", v)
	}
	if s := Stddev(xs); !almost(s, 2) {
		t.Fatalf("Stddev = %v, want 2", s)
	}
	if v := Variance(nil); v != 0 {
		t.Fatalf("Variance(nil) = %v", v)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil || !almost(r, 1) {
		t.Fatalf("Pearson = %v, %v", r, err)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, err = Pearson(xs, neg)
	if err != nil || !almost(r, -1) {
		t.Fatalf("Pearson = %v, %v", r, err)
	}
	if _, err := Pearson(xs, ys[:3]); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Pearson([]float64{1}, []float64{2}); err == nil {
		t.Fatal("single sample accepted")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Fatal("zero variance accepted")
	}
}

func TestNormalize(t *testing.T) {
	out, err := Normalize([]float64{2, 6}, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(out[0], 1) || !almost(out[1], 2) {
		t.Fatalf("Normalize = %v", out)
	}
	if _, err := Normalize([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	for _, tc := range []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2},
	} {
		got, err := Percentile(xs, tc.p)
		if err != nil || !almost(got, tc.want) {
			t.Fatalf("Percentile(%v) = %v, %v", tc.p, got, err)
		}
	}
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Fatal("Percentile(nil) accepted")
	}
}

func TestTrimTop(t *testing.T) {
	xs := []float64{5, 1, 9, 2, 8, 3, 7, 4, 6, 100}
	got := TrimTop(xs, 0.1)
	if len(got) != 9 {
		t.Fatalf("TrimTop kept %d", len(got))
	}
	for _, v := range got {
		if v == 100 {
			t.Fatal("spike not removed")
		}
	}
	if got := TrimTop(xs, 0); len(got) != len(xs) {
		t.Fatal("frac 0 should keep all")
	}
	if got := TrimTop(xs, 1); got != nil {
		t.Fatalf("frac 1 should drop all, got %v", got)
	}
}

func TestDownsample(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	got := Downsample(xs, 10)
	if len(got) != 10 {
		t.Fatalf("len = %d", len(got))
	}
	if !almost(got[0], 4.5) {
		t.Fatalf("first bucket = %v", got[0])
	}
	if got := Downsample(xs, 200); len(got) != 100 {
		t.Fatal("upsampling should be identity")
	}
}

func TestEWMA(t *testing.T) {
	got := EWMA([]float64{1, 1, 1}, 0.5)
	for _, v := range got {
		if !almost(v, 1) {
			t.Fatalf("EWMA of constant = %v", got)
		}
	}
	if len(EWMA(nil, 0.5)) != 0 {
		t.Fatal("EWMA(nil) not empty")
	}
}

// Property: the mean lies between min and max.
func TestMeanBoundsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m := Mean(clean)
		mn, _ := Min(clean)
		mx, _ := Max(clean)
		return m >= mn-1e-6 && m <= mx+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Pearson is always within [-1, 1] when defined.
func TestPearsonRangeProperty(t *testing.T) {
	f := func(xs, ys []int8) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		if n < 2 {
			return true
		}
		a := make([]float64, n)
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = float64(xs[i])
			b[i] = float64(ys[i])
		}
		r, err := Pearson(a, b)
		if err != nil {
			return true // zero variance, fine
		}
		return r >= -1-1e-9 && r <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
