// Package stats provides the small statistical toolkit used by the
// experiment drivers: means, normalization against a baseline, Pearson
// correlation (used in §5.4.3 of the paper to correlate L2-miss reduction
// with speedup), and simple series utilities.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by reductions over empty inputs.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. All values must be positive;
// non-positive entries make the result NaN.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Min returns the smallest element of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest element of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It returns an error if the lengths differ, fewer than two samples are
// given, or either series has zero variance.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: length mismatch")
	}
	if len(xs) < 2 {
		return 0, errors.New("stats: need at least two samples")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Normalize divides each element of xs by the corresponding element of
// baseline. Lengths must match; zero baseline entries yield +Inf/NaN as in
// ordinary float division.
func Normalize(xs, baseline []float64) ([]float64, error) {
	if len(xs) != len(baseline) {
		return nil, errors.New("stats: length mismatch")
	}
	out := make([]float64, len(xs))
	for i := range xs {
		out[i] = xs[i] / baseline[i]
	}
	return out, nil
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. xs is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0], nil
	}
	if p >= 100 {
		return cp[len(cp)-1], nil
	}
	pos := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return cp[lo], nil
	}
	frac := pos - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac, nil
}

// TrimTop returns a copy of xs with the top frac fraction (by value) of
// samples removed. The paper excludes the 0.5% highest sensor samples to
// suppress read spikes (§5.4.1); TrimTop(readings, 0.005) reproduces that.
func TrimTop(xs []float64, frac float64) []float64 {
	if len(xs) == 0 || frac <= 0 {
		return append([]float64(nil), xs...)
	}
	n := int(math.Ceil(float64(len(xs)) * frac))
	if n >= len(xs) {
		return nil
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return cp[:len(cp)-n]
}

// Downsample reduces xs to at most n points by averaging fixed-size
// buckets. It is used when rendering long temperature traces as figures.
func Downsample(xs []float64, n int) []float64 {
	if n <= 0 || len(xs) <= n {
		return append([]float64(nil), xs...)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		lo := i * len(xs) / n
		hi := (i + 1) * len(xs) / n
		if hi <= lo {
			hi = lo + 1
		}
		out[i] = Mean(xs[lo:hi])
	}
	return out
}

// EWMA returns the exponentially weighted moving average of xs with
// smoothing factor alpha in (0,1].
func EWMA(xs []float64, alpha float64) []float64 {
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out
	}
	out[0] = xs[0]
	for i := 1; i < len(xs); i++ {
		out[i] = alpha*xs[i] + (1-alpha)*out[i-1]
	}
	return out
}
