package sweep_test

import (
	"fmt"

	"dramtherm/internal/sweep"
)

// A Grid expands cartesian products of spec fields into a deterministic
// job list — mixes vary slowest — ready for Engine.Sweep or the
// POST /v1/sweeps body.
func ExampleGrid_Expand() {
	grid := sweep.Grid{
		Mixes:    []string{"W1", "W2"},
		Policies: []string{"DTM-TS", "DTM-BW"},
	}
	specs := grid.Expand()
	fmt.Println(len(specs), "specs:")
	for _, s := range specs {
		fmt.Println(s) // unset fields print their paper defaults
	}
	// Output:
	// 4 specs:
	// W1/DTM-TS/AOHS_1.5/isolated
	// W1/DTM-BW/AOHS_1.5/isolated
	// W2/DTM-TS/AOHS_1.5/isolated
	// W2/DTM-BW/AOHS_1.5/isolated
}

// Unset grid dimensions collapse to the paper default for that field,
// so a mixes-only grid is the common "compare mixes under the default
// policy" sweep.
func ExampleGrid_Expand_defaults() {
	specs := sweep.Grid{Mixes: []string{"W12"}}.Expand()
	fmt.Println(specs[0])
	// Output:
	// W12/No-limit/AOHS_1.5/isolated
}
