package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"dramtherm/internal/core"
	"dramtherm/internal/sim"
)

// fakeBatchBackend records every RunSpecs call and serves specs from a
// programmable function, standing in for the remote cluster backend.
type fakeBatchBackend struct {
	mu      sync.Mutex
	calls   [][]Spec // specs of each RunSpecs invocation
	singles int      // RunSpec invocations (spec-at-a-time path)
	serve   func(sp Spec) (sim.MEMSpotResult, RunInfo, error)
}

func (f *fakeBatchBackend) RunSpec(ctx context.Context, sp Spec) (sim.MEMSpotResult, RunInfo, error) {
	f.mu.Lock()
	f.singles++
	f.mu.Unlock()
	return f.serve(sp)
}

func (f *fakeBatchBackend) RunSpecs(ctx context.Context, specs []Spec, deliver func(int, sim.MEMSpotResult, RunInfo, error)) {
	f.mu.Lock()
	f.calls = append(f.calls, append([]Spec(nil), specs...))
	f.mu.Unlock()
	for i, sp := range specs {
		res, info, err := f.serve(sp)
		deliver(i, res, info, err)
	}
}

func peerServe(sp Spec) (sim.MEMSpotResult, RunInfo, error) {
	return sim.MEMSpotResult{Seconds: 100, Completed: 1}, RunInfo{Outcome: Built, Peer: "peer-1"}, nil
}

// TestSweepBatchesDistinctSpecs: a batched sweep hands the backend every
// distinct uncached spec in ONE RunSpecs call — duplicates join through
// the cache and already-cached specs are not re-dispatched — and events
// report the delivering peer.
func TestSweepBatchesDistinctSpecs(t *testing.T) {
	var builds atomic.Int64
	e := testEngine(4, &builds, 0)
	fb := &fakeBatchBackend{serve: peerServe}
	e.SetBatchBackend(fb)

	// Warm the cache with one spec through the single-run path.
	warm := Spec{Mix: "W2", Policy: "DTM-TS"}
	if _, err := e.Run(context.Background(), warm); err != nil {
		t.Fatal(err)
	}

	specs := []Spec{
		{Mix: "W1", Policy: "DTM-TS"},
		{Mix: "W1", Policy: "DTM-BW"},
		{Mix: "W1", Policy: "DTM-TS"}, // duplicate: must not be dispatched twice
		warm,                          // cached: must not be dispatched at all
	}
	var events []Event
	var mu sync.Mutex
	res, err := e.Sweep(context.Background(), specs, Options{OnEvent: func(ev Event) {
		mu.Lock()
		defer mu.Unlock()
		if ev.Kind != EventStarted {
			events = append(events, ev)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(fb.calls) != 1 {
		t.Fatalf("RunSpecs called %d times, want 1", len(fb.calls))
	}
	if got := len(fb.calls[0]); got != 2 {
		t.Fatalf("batch carried %d specs, want 2 (distinct uncached): %v", got, fb.calls[0])
	}
	if fb.singles != 1 {
		t.Fatalf("RunSpec called %d times, want 1 (the warmup only)", fb.singles)
	}
	for i, r := range res.Results {
		if r.Seconds != 100 {
			t.Errorf("result %d: seconds = %v, want 100", i, r.Seconds)
		}
	}
	peers := map[string]int{}
	for _, ev := range events {
		if ev.Err != nil {
			t.Fatalf("event error for %s: %v", ev.Spec, ev.Err)
		}
		peers[ev.Peer]++
	}
	// Two specs built on peer-1; the duplicate joins or hits locally
	// (empty peer) depending on timing; the warm spec hits (empty peer).
	if peers["peer-1"] != 2 {
		t.Errorf("peer-1 served %d finish events, want 2 (events: %+v)", peers["peer-1"], events)
	}
	if peers[""] != 2 {
		t.Errorf("local cache served %d finish events, want 2 (events: %+v)", peers[""], events)
	}
}

// TestSweepBatchLocalFallback: an ErrRunLocal delivery makes the engine
// execute the spec on its own pool and report it as served locally.
func TestSweepBatchLocalFallback(t *testing.T) {
	var builds atomic.Int64
	e := testEngine(2, &builds, 0)
	fb := &fakeBatchBackend{serve: func(sp Spec) (sim.MEMSpotResult, RunInfo, error) {
		return sim.MEMSpotResult{}, RunInfo{}, ErrRunLocal
	}}
	e.SetBatchBackend(fb)

	specs := []Spec{{Mix: "W1", Policy: "DTM-TS"}, {Mix: "W1", Policy: "DTM-BW"}}
	var mu sync.Mutex
	peers := map[string]int{}
	res, err := e.Sweep(context.Background(), specs, Options{OnEvent: func(ev Event) {
		if ev.Kind == EventFinished {
			mu.Lock()
			peers[ev.Peer]++
			mu.Unlock()
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if builds.Load() != 2 {
		t.Errorf("local builds = %d, want 2", builds.Load())
	}
	if peers["local"] != 2 {
		t.Errorf("peer counts = %v, want 2 local", peers)
	}
	for i, r := range res.Results {
		if r.Seconds != 150 {
			t.Errorf("result %d: seconds = %v, want 150 (locally simulated)", i, r.Seconds)
		}
	}
}

// TestSweepBatchTerminalError: a delivered terminal error fails the
// sweep, like a failed run on the unbatched path.
func TestSweepBatchTerminalError(t *testing.T) {
	var builds atomic.Int64
	e := testEngine(2, &builds, 0)
	boom := errors.New("poisoned spec")
	fb := &fakeBatchBackend{serve: func(sp Spec) (sim.MEMSpotResult, RunInfo, error) {
		if sp.Policy == "DTM-BW" {
			return sim.MEMSpotResult{}, RunInfo{}, boom
		}
		return peerServe(sp)
	}}
	e.SetBatchBackend(fb)

	_, err := e.Sweep(context.Background(), []Spec{
		{Mix: "W1", Policy: "DTM-TS"}, {Mix: "W1", Policy: "DTM-BW"},
	}, Options{})
	if !errors.Is(err, boom) {
		t.Fatalf("sweep error = %v, want %v", err, boom)
	}
	if builds.Load() != 0 {
		t.Errorf("local builds = %d, want 0 (terminal errors must not fall back)", builds.Load())
	}
}

// TestSweepBatchResultsCached: batch deliveries populate the run cache,
// so a repeat sweep is served entirely locally with no new dispatch.
func TestSweepBatchResultsCached(t *testing.T) {
	var builds atomic.Int64
	e := testEngine(2, &builds, 0)
	fb := &fakeBatchBackend{serve: peerServe}
	e.SetBatchBackend(fb)

	specs := []Spec{{Mix: "W1", Policy: "DTM-TS"}, {Mix: "W1", Policy: "DTM-BW"}}
	if _, err := e.Sweep(context.Background(), specs, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Sweep(context.Background(), specs, Options{}); err != nil {
		t.Fatal(err)
	}
	if len(fb.calls) != 1 {
		t.Fatalf("RunSpecs called %d times across two sweeps, want 1 (second sweep all cache hits)", len(fb.calls))
	}
	if fb.singles != 0 {
		t.Errorf("RunSpec called %d times, want 0", fb.singles)
	}
}

// TestSweepBatchNormalize: a normalized sweep plans the No-limit
// baselines into the same batch (deduplicated per mix), never
// dispatching spec-at-a-time, and the normalized values come out right.
func TestSweepBatchNormalize(t *testing.T) {
	var builds atomic.Int64
	e := testEngine(4, &builds, 0)
	fb := &fakeBatchBackend{serve: func(sp Spec) (sim.MEMSpotResult, RunInfo, error) {
		secs := 100.0 // No-limit baseline
		if sp.Policy != "No-limit" && sp.Policy != "" {
			secs = 150
		}
		return sim.MEMSpotResult{Seconds: secs, Completed: 1}, RunInfo{Outcome: Built, Peer: "peer-1"}, nil
	}}
	e.SetBatchBackend(fb)

	res, err := e.Sweep(context.Background(), []Spec{
		{Mix: "W1", Policy: "DTM-TS"}, {Mix: "W1", Policy: "DTM-BW"},
	}, Options{Normalize: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Norms {
		if want := 1.5; res.Norms[i] != want {
			t.Errorf("norm %d = %v, want %v", i, res.Norms[i], want)
		}
	}
	if len(fb.calls) != 1 {
		t.Fatalf("RunSpecs called %d times, want 1", len(fb.calls))
	}
	// Two specs plus ONE shared W1 baseline, all in the single batch.
	if got := len(fb.calls[0]); got != 3 {
		t.Errorf("batch carried %d specs, want 3 (2 specs + 1 deduplicated baseline): %v", got, fb.calls[0])
	}
	if fb.singles != 0 {
		t.Errorf("RunSpec calls = %d, want 0 (baselines must ride the batch)", fb.singles)
	}
}

// TestSweepBatchIdenticalTable: the batched and unbatched paths produce
// byte-identical report tables for the same grid.
func TestSweepBatchIdenticalTable(t *testing.T) {
	grid := Grid{Mixes: []string{"W1", "W2"}, Policies: []string{"DTM-TS", "DTM-BW", "DTM-ACG"}}
	specs := grid.Expand()

	runFake := func(ctx context.Context, rs core.RunSpec) (sim.MEMSpotResult, error) {
		return sim.MEMSpotResult{Seconds: float64(10*len(rs.Mix.Name) + len(rs.Policy.Name())), Completed: 1}, nil
	}
	plain := NewEngine(core.NewSystem(core.DefaultConfig()), 4)
	plain.SetRunFunc(runFake)
	ref, err := plain.Sweep(context.Background(), specs, Options{})
	if err != nil {
		t.Fatal(err)
	}

	exec := NewEngine(core.NewSystem(core.DefaultConfig()), 4)
	exec.SetRunFunc(runFake)
	batched := NewEngine(core.NewSystem(core.DefaultConfig()), 4)
	batched.SetRunFunc(func(ctx context.Context, rs core.RunSpec) (sim.MEMSpotResult, error) {
		return sim.MEMSpotResult{}, fmt.Errorf("the coordinator must not simulate")
	})
	fb := &fakeBatchBackend{serve: func(sp Spec) (sim.MEMSpotResult, RunInfo, error) {
		res, err := exec.Exec(context.Background(), sp)
		return res, RunInfo{Outcome: Built, Peer: "peer-1"}, err
	}}
	batched.SetBatchBackend(fb)
	got, err := batched.Sweep(context.Background(), specs, Options{})
	if err != nil {
		t.Fatal(err)
	}

	if a, b := ref.Table("t").String(), got.Table("t").String(); a != b {
		t.Fatalf("tables differ:\n--- plain ---\n%s--- batched ---\n%s", a, b)
	}
}
