package sweep

import (
	"context"
	"sync"

	"dramtherm/internal/report"
	"dramtherm/internal/sim"
)

// Progress reports one finished job of a sweep.
type Progress struct {
	Done  int // jobs finished so far, including this one
	Total int
	Index int // index of this job in the spec list
	Spec  Spec
	Err   error
}

// Options tunes Sweep execution.
type Options struct {
	// Normalize additionally runs each spec's No-limit baseline and
	// fills Result.Norms with normalized runtimes.
	Normalize bool
	// OnProgress, when non-nil, is called after each job completes. It
	// is invoked from worker goroutines and must be safe for concurrent
	// use.
	OnProgress func(Progress)
}

// Result holds the outcome of one sweep, positionally aligned with the
// submitted specs.
type Result struct {
	Specs   []Spec
	Results []sim.MEMSpotResult
	// Norms is runtime normalized to the No-limit baseline; only filled
	// when Options.Normalize is set.
	Norms []float64
}

// Sweep executes all specs concurrently through the run cache (duplicate
// specs collapse to one simulation; parallelism is bounded by the worker
// pool) and returns positionally aligned results. The first error
// cancels the remaining jobs and is returned; ctx cancellation does the
// same with ctx.Err().
func (e *Engine) Sweep(ctx context.Context, specs []Spec, opts Options) (*Result, error) {
	res := &Result{
		Specs:   specs,
		Results: make([]sim.MEMSpotResult, len(specs)),
		Norms:   make([]float64, len(specs)),
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		done     int
		firstErr error
	)
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var err error
			if opts.Normalize {
				res.Norms[i], err = e.Normalized(ctx, specs[i])
				if err == nil {
					res.Results[i], err = e.Run(ctx, specs[i])
				}
			} else {
				res.Results[i], err = e.Run(ctx, specs[i])
			}
			mu.Lock()
			done++
			n := done
			if err != nil && firstErr == nil {
				firstErr = err
				cancel()
			}
			mu.Unlock()
			if opts.OnProgress != nil {
				opts.OnProgress(Progress{Done: n, Total: len(specs), Index: i, Spec: specs[i], Err: err})
			}
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return res, nil
}

// Table aggregates the sweep into a report table with one row per mix
// and one column per policy, in first-appearance order. The cell value
// is the normalized runtime when norms were computed, otherwise raw
// seconds. Cells never produced by the sweep render empty.
func (r *Result) Table(caption string) *report.Table {
	value := func(i int) float64 {
		if len(r.Norms) == len(r.Specs) && r.Norms[i] != 0 {
			return r.Norms[i]
		}
		return r.Results[i].Seconds
	}
	var mixes, policies []string
	seenMix := map[string]int{}
	seenPol := map[string]int{}
	cells := map[[2]int]float64{}
	for i, s := range r.Specs {
		n := s.normalize()
		mi, ok := seenMix[n.Mix]
		if !ok {
			mi = len(mixes)
			seenMix[n.Mix] = mi
			mixes = append(mixes, n.Mix)
		}
		pi, ok := seenPol[n.Policy]
		if !ok {
			pi = len(policies)
			seenPol[n.Policy] = pi
			policies = append(policies, n.Policy)
		}
		cells[[2]int{mi, pi}] = value(i)
	}
	t := report.NewTable(caption, append([]string{"mix"}, policies...)...)
	for mi, mix := range mixes {
		row := []string{mix}
		for pi := range policies {
			if v, ok := cells[[2]int{mi, pi}]; ok {
				row = append(row, report.FormatFloat(v))
			} else {
				row = append(row, "")
			}
		}
		t.AddRow(row...)
	}
	return t
}
