package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"dramtherm/internal/report"
	"dramtherm/internal/sim"
)

// Progress reports one finished job of a sweep.
type Progress struct {
	Done  int // jobs finished so far, including this one
	Total int
	Index int // index of this job in the spec list
	Spec  Spec
	Err   error
}

// EventKind classifies a per-spec run lifecycle event.
type EventKind string

const (
	// EventStarted fires when a spec's run begins executing (or begins
	// waiting for the cache/pool — before any result exists).
	EventStarted EventKind = "spec_started"
	// EventFinished fires when a spec's run completes successfully.
	EventFinished EventKind = "spec_finished"
	// EventError fires when a spec's run fails or is cancelled.
	EventError EventKind = "spec_error"
	// EventRoundStarted marks an adaptive-search round boundary: the
	// strategy has planned the round's specs and the engine is about to
	// sweep them (internal/sweep/search).
	EventRoundStarted EventKind = "round_started"
	// EventRoundFinished fires when a search round's sweep completes
	// and the strategy has planned the next round, carrying how many
	// candidates survived and how many were pruned.
	EventRoundFinished EventKind = "round_finished"
)

// Event is one per-spec lifecycle notification from RunObserved or
// Sweep. Unlike Progress (finish-only), events also mark run starts and
// carry the cache outcome, so observers can distinguish fresh
// simulations from cache hits and deduplicated joins.
type Event struct {
	Kind  EventKind
	Index int // position in the sweep's spec list; 0 for single runs
	Spec  Spec
	Done  int // specs finished so far including this one (finish events)
	Total int // sweep size; 1 for single runs
	// Outcome tells how the run was served (finish events): Built means
	// this call simulated, Hit a completed cache entry, Joined an
	// identical in-flight run. In cluster mode the outcome is the
	// executing peer's (a Hit means its cache was warm for the shard).
	Outcome Outcome
	// Peer identifies the cluster member that executed the run: a peer
	// id, "local" for the remote backend's local fallback, or empty on
	// single-node engines and local cache hits/joins.
	Peer    string
	Seconds float64 // simulated runtime, on EventFinished
	Err     error   // non-nil on EventError

	// Round-boundary payload (EventRoundStarted/EventRoundFinished only).
	// Round is the zero-based round index, Rung the round's fidelity
	// multiplier; Survivors counts candidates advancing past the round
	// and Pruned the candidates the strategy discarded after it.
	Round     int
	Rung      float64
	Survivors int
	Pruned    int
}

// Options tunes Sweep execution.
type Options struct {
	// Normalize additionally runs each spec's No-limit baseline and
	// fills Result.Norms with normalized runtimes.
	Normalize bool
	// OnProgress, when non-nil, is called after each job completes. It
	// is invoked from worker goroutines and must be safe for concurrent
	// use.
	OnProgress func(Progress)
	// OnEvent, when non-nil, additionally observes run starts and cache
	// outcomes (see Event). Finish events (EventFinished/EventError) are
	// delivered serialized and in completion order — their Done counters
	// never regress — so the callback must be fast and must not call
	// back into the engine. Start events follow the OnProgress contract:
	// concurrent, from worker goroutines.
	OnEvent func(Event)
}

// Result holds the outcome of one sweep, positionally aligned with the
// submitted specs.
type Result struct {
	Specs   []Spec
	Results []sim.MEMSpotResult
	// Norms is runtime normalized to the No-limit baseline; only filled
	// when Options.Normalize is set.
	Norms []float64
}

// Sweep executes all specs concurrently through the run cache (duplicate
// specs collapse to one simulation; parallelism is bounded by the worker
// pool) and returns positionally aligned results. The first error
// cancels the remaining jobs and is returned; ctx cancellation does the
// same with ctx.Err(). With a BatchBackend installed the grid's distinct
// uncached specs are handed to the backend in one call (one request per
// cluster peer) instead of spec-at-a-time; per-spec cache and event
// semantics are unchanged.
func (e *Engine) Sweep(ctx context.Context, specs []Spec, opts Options) (*Result, error) {
	res := &Result{
		Specs:   specs,
		Results: make([]sim.MEMSpotResult, len(specs)),
		Norms:   make([]float64, len(specs)),
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	runOne := e.RunDetailed
	if e.batch != nil {
		// The dispatcher goroutine is bounded by ctx, which the deferred
		// cancel kills when the sweep returns.
		runOne = e.batchRunner(ctx, specs, opts.Normalize)
	}
	// normOne computes runtime(spec)/runtime(baseline) through runOne,
	// so in batched mode the No-limit baselines ride the batch plan too
	// instead of dispatching spec-at-a-time.
	normOne := func(ctx context.Context, spec Spec, r sim.MEMSpotResult) (float64, error) {
		base, _, err := runOne(ctx, e.BaselineSpec(spec))
		if err != nil {
			return 0, err
		}
		if base.Seconds == 0 {
			return 0, fmt.Errorf("sweep: zero-length baseline for %s", spec)
		}
		return r.Seconds / base.Seconds, nil
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		done     int
		firstErr error
	)
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if opts.OnEvent != nil {
				opts.OnEvent(Event{Kind: EventStarted, Index: i, Spec: specs[i], Total: len(specs)})
			}
			r, info, err := runOne(ctx, specs[i])
			if err == nil {
				res.Results[i] = r
				if opts.Normalize {
					// The spec's own run is already in hand, so this only
					// adds the No-limit baseline.
					res.Norms[i], err = normOne(ctx, specs[i], r)
				}
			}
			mu.Lock()
			done++
			n := done
			if err != nil && firstErr == nil {
				firstErr = err
				cancel()
			}
			// Finish events go out under the lock so observers (e.g. a
			// job event log feeding SSE) see Done counters in order.
			if opts.OnEvent != nil {
				ev := Event{Kind: EventFinished, Index: i, Spec: specs[i],
					Done: n, Total: len(specs), Outcome: info.Outcome, Peer: info.Peer, Seconds: r.Seconds}
				if err != nil {
					ev = Event{Kind: EventError, Index: i, Spec: specs[i],
						Done: n, Total: len(specs), Outcome: info.Outcome, Peer: info.Peer, Err: err}
				}
				opts.OnEvent(ev)
			}
			mu.Unlock()
			if opts.OnProgress != nil {
				opts.OnProgress(Progress{Done: n, Total: len(specs), Index: i, Spec: specs[i], Err: err})
			}
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return res, nil
}

// batchRunner plans a sweep's distinct uncached specs — plus their
// No-limit baselines when normalizing — into one BatchBackend call and
// returns a RunDetailed-equivalent runner whose cache builders wait on
// the batch stream instead of dispatching spec-at-a-time. Every run
// still flows through the cache, so duplicate specs join, concurrent
// sweeps deduplicate, and observers see the same built/hit/joined
// outcomes and peer ids as the unbatched path.
func (e *Engine) batchRunner(ctx context.Context, specs []Spec, normalize bool) func(context.Context, Spec) (sim.MEMSpotResult, RunInfo, error) {
	type pending struct {
		done chan struct{}
		res  sim.MEMSpotResult
		info RunInfo
		err  error
	}
	pend := make(map[Key]*pending)
	var batch []Spec
	plan := func(sp Spec) {
		k := e.Key(sp)
		if pend[k] != nil {
			return // duplicate within the grid: one dispatch, others join
		}
		if _, ok := e.cache.Get(k); ok {
			return // already cached: the runner will Hit
		}
		pend[k] = &pending{done: make(chan struct{})}
		batch = append(batch, sp)
	}
	for _, sp := range specs {
		if e.Validate(sp) != nil {
			continue // fails fast in its own runner, nothing to dispatch
		}
		plan(sp)
		if normalize {
			plan(e.BaselineSpec(sp))
		}
	}
	if len(batch) > 0 {
		go e.batch.RunSpecs(ctx, batch, func(i int, res sim.MEMSpotResult, info RunInfo, err error) {
			p := pend[e.Key(batch[i])]
			p.res, p.info, p.err = res, info, err
			close(p.done)
		})
	}
	return func(ctx context.Context, spec Spec) (sim.MEMSpotResult, RunInfo, error) {
		if err := e.Validate(spec); err != nil {
			return sim.MEMSpotResult{}, RunInfo{}, err
		}
		k := e.Key(spec)
		var served RunInfo
		res, out, err := e.cache.DoTraced(ctx, k, func(bctx context.Context) (sim.MEMSpotResult, error) {
			p := pend[k]
			if p == nil {
				// Not planned (cached at plan time, yet we are the leader —
				// a concurrent engine user raced us): dispatch the one spec
				// exactly like RunDetailed would.
				r, info, err := e.backend.RunSpec(bctx, spec)
				served = info
				return r, err
			}
			select {
			case <-p.done:
			case <-bctx.Done():
				return sim.MEMSpotResult{}, bctx.Err()
			}
			if p.err != nil {
				if errors.Is(p.err, ErrRunLocal) {
					served = RunInfo{Outcome: Built, Peer: localPeer}
					return e.Exec(bctx, spec)
				}
				return sim.MEMSpotResult{}, p.err
			}
			served = p.info
			return p.res, nil
		})
		info := RunInfo{Outcome: out}
		if out == Built {
			info = served
		}
		return res, info, err
	}
}

// Table aggregates the sweep into a report table with one row per mix
// and one column per policy, in first-appearance order. The cell value
// is the normalized runtime when norms were computed, otherwise raw
// seconds. Cells never produced by the sweep render empty.
func (r *Result) Table(caption string) *report.Table {
	value := func(i int) float64 {
		if len(r.Norms) == len(r.Specs) && r.Norms[i] != 0 {
			return r.Norms[i]
		}
		return r.Results[i].Seconds
	}
	var mixes, policies []string
	seenMix := map[string]int{}
	seenPol := map[string]int{}
	cells := map[[2]int]float64{}
	for i, s := range r.Specs {
		n := s.normalize()
		mi, ok := seenMix[n.Mix]
		if !ok {
			mi = len(mixes)
			seenMix[n.Mix] = mi
			mixes = append(mixes, n.Mix)
		}
		pi, ok := seenPol[n.Policy]
		if !ok {
			pi = len(policies)
			seenPol[n.Policy] = pi
			policies = append(policies, n.Policy)
		}
		cells[[2]int{mi, pi}] = value(i)
	}
	t := report.NewTable(caption, append([]string{"mix"}, policies...)...)
	for mi, mix := range mixes {
		row := []string{mix}
		for pi := range policies {
			if v, ok := cells[[2]int{mi, pi}]; ok {
				row = append(row, report.FormatFloat(v))
			} else {
				row = append(row, "")
			}
		}
		t.AddRow(row...)
	}
	return t
}
