// Benchmarks for the sweep run cache: the hit path (every request served
// from a completed entry) and the contended path (many goroutines racing
// on a small key set). These anchor the perf baseline for future PRs,
// alongside the per-artifact suites in the repo root.
package sweep

import (
	"context"
	"fmt"
	"testing"
)

func BenchmarkCacheHit(b *testing.B) {
	c := NewCache[int](4)
	key := Key("hot")
	c.Put(key, 1)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Do(ctx, key, func(context.Context) (int, error) { return 0, nil }); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCacheHitParallel(b *testing.B) {
	c := NewCache[int](4)
	const keys = 64
	for i := 0; i < keys; i++ {
		c.Put(Key(fmt.Sprintf("k%d", i)), i)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			key := Key(fmt.Sprintf("k%d", i%keys))
			i++
			if _, err := c.Do(ctx, key, func(context.Context) (int, error) { return 0, nil }); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCacheContended races goroutines on a small rotating key set,
// so every Do is either a fresh build, a singleflight join, or a hit —
// the mixed regime a busy dramthermd sees. Allocation count per op is
// the number to watch.
func BenchmarkCacheContended(b *testing.B) {
	c := NewCache[int](8)
	ctx := context.Background()
	var epoch int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			// 8 live keys per epoch of 1024 ops; the epoch shift retires
			// old keys so builds keep happening.
			key := Key(fmt.Sprintf("e%d-k%d", (epoch+int64(i))/1024, i%8))
			i++
			if _, err := c.Do(ctx, key, func(context.Context) (int, error) { return i, nil }); err != nil {
				b.Fatal(err)
			}
		}
	})
}
