package sweep

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// The versioned persisted-state wire format. Every dramtherm state
// artifact — segment files here, and the importer's sniff of legacy gob
// blobs — shares this magic + version header, so a state file written by
// a future incompatible format fails loudly instead of silently
// corrupting the warm cache.
//
// Segment file layout:
//
//	[8]byte  magic "DTMSTATE"
//	uint32   version (little endian)
//	records: repeated frames of
//	  byte    kind (recordRun | recordTrace)
//	  uint32  payload length (little endian)
//	  uint32  CRC-32 (IEEE) of the payload
//	  []byte  payload
//
// Frames are self-delimiting and checksummed, so a crash mid-append
// leaves at most one torn frame at the tail; replay truncates it and the
// log is clean again. Later records for the same key win, so compaction
// (rewriting the live snapshot as one fresh segment) is a pure
// space/startup-time optimization, never a correctness step.
var stateMagic = [8]byte{'D', 'T', 'M', 'S', 'T', 'A', 'T', 'E'}

// StateVersion is the current persisted-state wire-format version.
// Readers reject higher versions loudly; lower versions (none exist yet,
// the unversioned gob blob predates the header) go through the legacy
// importer exactly once.
const StateVersion = 1

// Record kinds.
const (
	// recordRun is one completed run-cache entry: payload is a gob
	// runRecord (canonical key + gob-encoded result).
	recordRun byte = 1
	// recordTrace is one level-1 trace-store record: payload is a gob
	// trace.Rates.
	recordTrace byte = 2
	// recordCheckpoint is one prefix-sharing group record: payload is a
	// gob checkpointRecord (decision log + strided simulator
	// checkpoints, digest-keyed). Checkpoint records are an
	// optimization, not source of truth — replay skips any that fail to
	// decode or validate instead of aborting.
	recordCheckpoint byte = 3
)

// maxRecordBytes bounds one frame's payload; anything larger is
// corruption, not data (a full result with traces is a few MB at most).
const maxRecordBytes = 64 << 20

// segMaxBytes rotates the active segment when it grows past this, so
// compaction has file-granular units to retire.
const segMaxBytes = 64 << 20

const (
	segPrefix = "seg-"
	segSuffix = ".dtl"
	segTmp    = ".tmp"
)

// ErrStateVersion marks a magic/version mismatch: the file is a
// dramtherm state artifact from an incompatible (newer) format, and
// loading it would corrupt the warm cache. Callers must fail loudly.
var ErrStateVersion = errors.New("sweep: incompatible state version")

// SegmentLog is an append-only, crash-safe log of warm-state records for
// one node's shard of the key space. Records are appended as runs
// complete (no shutdown flush to lose), replayed on start, and folded
// together by periodic compaction. It is safe for concurrent use.
type SegmentLog struct {
	dir string

	mu      sync.Mutex
	active  *os.File // current append target
	seq     int      // active segment sequence number
	size    int64    // active segment size
	appends int64    // frames appended since open/compact
	closed  bool

	truncated int64 // torn bytes dropped by replays (observability)
	lost      int64 // unreadable mid-log bytes skipped by replays
}

// segPath names segment n in dir.
func segPath(dir string, n int) string {
	return filepath.Join(dir, fmt.Sprintf("%s%06d%s", segPrefix, n, segSuffix))
}

// segSeq parses a segment file name, returning -1 for foreign files.
func segSeq(name string) int {
	s, ok := strings.CutPrefix(name, segPrefix)
	if !ok {
		return -1
	}
	s, ok = strings.CutSuffix(s, segSuffix)
	if !ok {
		return -1
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return -1
	}
	return n
}

// OpenSegmentLog opens (creating if needed) the segment log in dir. The
// caller replays it with Replay before appending, so recovery truncation
// and the append offset agree.
func OpenSegmentLog(dir string) (*SegmentLog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: segment log: %w", err)
	}
	l := &SegmentLog{dir: dir}
	l.cleanTmp()
	seqs, err := l.segments()
	if err != nil {
		return nil, err
	}
	if len(seqs) == 0 {
		if err := l.rotateLocked(1); err != nil {
			return nil, err
		}
		return l, nil
	}
	// Adopt the newest segment as the append target; Replay will truncate
	// any torn tail before the first Append lands.
	seq := seqs[len(seqs)-1]
	f, err := os.OpenFile(segPath(dir, seq), os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: segment log: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("sweep: segment log: %w", err)
	}
	if st.Size() == 0 {
		// A crash between create and header write: re-stamp the header.
		if err := writeSegHeader(f); err != nil {
			f.Close()
			return nil, err
		}
		st, _ = f.Stat()
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("sweep: segment log: %w", err)
	}
	l.active, l.seq, l.size = f, seq, st.Size()
	return l, nil
}

// segments lists existing segment sequence numbers, ascending.
func (l *SegmentLog) segments() ([]int, error) {
	ents, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("sweep: segment log: %w", err)
	}
	var seqs []int
	for _, e := range ents {
		if n := segSeq(e.Name()); n >= 0 {
			seqs = append(seqs, n)
		}
	}
	sort.Ints(seqs)
	return seqs, nil
}

// cleanTmp removes compaction temporaries a crash left behind. Only
// called from OpenSegmentLog — a live Compact owns its own tmp file.
func (l *SegmentLog) cleanTmp() {
	ents, err := os.ReadDir(l.dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), segTmp) {
			os.Remove(filepath.Join(l.dir, e.Name())) //nolint:errcheck // best-effort cleanup
		}
	}
}

// writeSegHeader stamps the magic + version header on a fresh segment.
func writeSegHeader(w io.Writer) error {
	var hdr [12]byte
	copy(hdr[:8], stateMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], StateVersion)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("sweep: segment log: %w", err)
	}
	return nil
}

// readSegHeader validates a segment's header, returning its version.
func readSegHeader(r io.Reader) (uint32, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, fmt.Errorf("sweep: segment header: %w", err)
	}
	if [8]byte(hdr[:8]) != stateMagic {
		return 0, fmt.Errorf("sweep: not a dramtherm state segment (bad magic %q)", hdr[:8])
	}
	v := binary.LittleEndian.Uint32(hdr[8:])
	if v > StateVersion {
		return v, fmt.Errorf("%w: segment is v%d, this build reads up to v%d", ErrStateVersion, v, StateVersion)
	}
	return v, nil
}

// rotateLocked closes the active segment (if any) and opens segment seq
// as the fresh append target. Callers hold l.mu (or have exclusive
// access during construction).
func (l *SegmentLog) rotateLocked(seq int) error {
	if l.active != nil {
		l.active.Sync()  //nolint:errcheck // durability is best-effort per segment
		l.active.Close() //nolint:errcheck
		l.active = nil
	}
	f, err := os.OpenFile(segPath(l.dir, seq), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("sweep: segment log: %w", err)
	}
	if err := writeSegHeader(f); err != nil {
		f.Close()
		return err
	}
	l.active, l.seq, l.size = f, seq, 12
	return nil
}

// Append writes one framed record to the active segment, rotating first
// when it is over the size bound. Safe for concurrent use.
func (l *SegmentLog) Append(kind byte, payload []byte) error {
	if len(payload) > maxRecordBytes {
		return fmt.Errorf("sweep: segment record of %d bytes exceeds %d", len(payload), maxRecordBytes)
	}
	frame := make([]byte, 9+len(payload))
	frame[0] = kind
	binary.LittleEndian.PutUint32(frame[1:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[5:], crc32.ChecksumIEEE(payload))
	copy(frame[9:], payload)

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("sweep: segment log is closed")
	}
	if l.size+int64(len(frame)) > segMaxBytes && l.size > 12 {
		if err := l.rotateLocked(l.seq + 1); err != nil {
			return err
		}
	}
	if _, err := l.active.Write(frame); err != nil {
		return fmt.Errorf("sweep: segment append: %w", err)
	}
	l.size += int64(len(frame))
	l.appends++
	return nil
}

// Replay reads every segment in sequence order, invoking fn per record.
// A torn frame at the tail of the active segment (a crash mid-append) is
// truncated away so appends resume cleanly; an unreadable frame earlier
// in the log ends that segment's replay (framing is lost beyond it) and
// the remaining bytes are counted as lost. fn errors abort the replay.
func (l *SegmentLog) Replay(fn func(kind byte, payload []byte) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	seqs, err := l.segments()
	if err != nil {
		return err
	}
	for _, seq := range seqs {
		path := segPath(l.dir, seq)
		var (
			f   *os.File
			err error
		)
		if seq == l.seq && l.active != nil {
			f = l.active
			if _, err := f.Seek(0, io.SeekStart); err != nil {
				return fmt.Errorf("sweep: segment replay: %w", err)
			}
		} else if f, err = os.Open(path); err != nil {
			return fmt.Errorf("sweep: segment replay: %w", err)
		}
		good, err := replaySegment(f, fn)
		if seq == l.seq && l.active != nil {
			if err == nil && good < l.size {
				// Torn tail on the append target: truncate to the last good
				// frame so the next Append lands on a clean boundary.
				if terr := f.Truncate(good); terr != nil {
					return fmt.Errorf("sweep: truncating torn segment: %w", terr)
				}
				l.truncated += l.size - good
				l.size = good
			}
			if _, serr := f.Seek(0, io.SeekEnd); serr != nil && err == nil {
				err = serr
			}
		} else {
			st, _ := f.Stat()
			if err == nil && st != nil && good < st.Size() {
				l.lost += st.Size() - good
			}
			f.Close()
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// replaySegment reads one segment, returning the offset of the last
// fully valid frame. Torn or corrupt frames end the scan without error;
// header violations and fn errors are returned.
func replaySegment(f *os.File, fn func(kind byte, payload []byte) error) (good int64, err error) {
	r := io.Reader(f)
	if _, err := readSegHeader(r); err != nil {
		return 0, err
	}
	good = 12
	var hdr [9]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return good, nil // clean EOF or torn frame header
		}
		kind := hdr[0]
		n := binary.LittleEndian.Uint32(hdr[1:])
		sum := binary.LittleEndian.Uint32(hdr[5:])
		if n > maxRecordBytes || (kind != recordRun && kind != recordTrace && kind != recordCheckpoint) {
			return good, nil // corrupt frame: framing is gone past here
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return good, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return good, nil // bit rot or torn overwrite
		}
		if err := fn(kind, payload); err != nil {
			return good, err
		}
		good += int64(9 + n)
	}
}

// Compact folds the live state into one fresh segment and retires every
// older one. snapshot must emit the current record set through emit;
// appends racing the snapshot land in the post-rotation active segment
// and survive. Crash-safe: the compacted segment is written to a
// temporary file and renamed into place only after the retired segments
// are gone — replay order (later records win) absorbs every intermediate
// state.
func (l *SegmentLog) Compact(snapshot func(emit func(kind byte, payload []byte) error) error) error {
	// Rotate first so the snapshot covers everything in segments <= old
	// seq, then write the snapshot into the old seq's slot.
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return errors.New("sweep: segment log is closed")
	}
	old := l.seq
	if err := l.rotateLocked(l.seq + 1); err != nil {
		l.mu.Unlock()
		return err
	}
	l.appends = 0
	l.mu.Unlock()

	tmp := segPath(l.dir, old) + segTmp
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("sweep: compact: %w", err)
	}
	defer os.Remove(tmp) //nolint:errcheck // no-op after the rename
	if err := writeSegHeader(f); err != nil {
		f.Close()
		return err
	}
	emit := func(kind byte, payload []byte) error {
		frame := make([]byte, 9+len(payload))
		frame[0] = kind
		binary.LittleEndian.PutUint32(frame[1:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(frame[5:], crc32.ChecksumIEEE(payload))
		copy(frame[9:], payload)
		_, err := f.Write(frame)
		return err
	}
	if err := snapshot(emit); err != nil {
		f.Close()
		return fmt.Errorf("sweep: compact: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("sweep: compact: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("sweep: compact: %w", err)
	}
	// Retire the superseded segments, then land the snapshot in the
	// newest retired slot. A crash between the removes and the rename
	// only costs the compaction (the active segment plus the snapshot's
	// sources are disjoint record sets under last-wins replay).
	seqs, err := l.segments()
	if err != nil {
		return err
	}
	for _, seq := range seqs {
		if seq <= old {
			if err := os.Remove(segPath(l.dir, seq)); err != nil {
				return fmt.Errorf("sweep: compact: %w", err)
			}
		}
	}
	if err := os.Rename(tmp, segPath(l.dir, old)); err != nil {
		return fmt.Errorf("sweep: compact: %w", err)
	}
	return nil
}

// SegLogStats snapshots the log for healthz and metrics.
type SegLogStats struct {
	// Segments is the on-disk segment-file count.
	Segments int `json:"segments"`
	// Bytes is the total on-disk size of all segments.
	Bytes int64 `json:"bytes"`
	// Appends counts frames appended since open or the last compaction.
	Appends int64 `json:"appends"`
	// TruncatedBytes counts torn tail bytes dropped by replay.
	TruncatedBytes int64 `json:"truncated_bytes,omitempty"`
	// LostBytes counts unreadable mid-log bytes skipped by replay.
	LostBytes int64 `json:"lost_bytes,omitempty"`
}

// Stats reports the log's current shape.
func (l *SegmentLog) Stats() SegLogStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := SegLogStats{Appends: l.appends, TruncatedBytes: l.truncated, LostBytes: l.lost}
	seqs, err := l.segments()
	if err != nil {
		return out
	}
	out.Segments = len(seqs)
	for _, seq := range seqs {
		if st, err := os.Stat(segPath(l.dir, seq)); err == nil {
			out.Bytes += st.Size()
		}
	}
	return out
}

// Dir returns the log directory.
func (l *SegmentLog) Dir() string { return l.dir }

// Close syncs and closes the active segment. Further Appends fail.
func (l *SegmentLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.active == nil {
		return nil
	}
	l.active.Sync() //nolint:errcheck // close still proceeds
	err := l.active.Close()
	l.active = nil
	return err
}
