package prefix

import (
	"dramtherm/internal/obs"
)

// Instrument registers the sharer's metric families on reg. The families
// read the sharer's own atomics, so /metrics and Stats report identical
// numbers by construction. Call before the sharer is shared across
// goroutines; a nil reg is a no-op.
func (s *Sharer) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("dramtherm_prefix_timesteps_saved_total",
		"Simulated windows skipped via checkpoint resume or full result reuse — the sims-avoided headline.",
		func() float64 { return float64(s.stepsSaved.Load()) })
	reg.CounterFunc("dramtherm_prefix_timesteps_simulated_total",
		"Simulated windows actually stepped through the hot loop under prefix sharing.",
		func() float64 { return float64(s.stepsRun.Load()) })
	reg.CounterFunc("dramtherm_prefix_checkpoints_total",
		"Checkpoints captured by group leaders at strided decision boundaries.",
		func() float64 { return float64(s.checkpoints.Load()) })
	reg.GaugeFunc("dramtherm_prefix_groups",
		"Policy-sliced prefix groups currently tracked.",
		func() float64 {
			s.mu.Lock()
			n := len(s.groups)
			s.mu.Unlock()
			return float64(n)
		})
	reg.SampleFunc(obs.KindCounter, "dramtherm_prefix_runs_total",
		"Runs by mode: leader (cold run recording the group log), full_reuse (follower matched the whole log), resumed (follower restored a checkpoint), cold (follower fell back to full replay).",
		[]string{"mode"}, func() []obs.Sample {
			return []obs.Sample{
				{LabelValues: []string{"leader"}, Value: float64(s.leaders.Load())},
				{LabelValues: []string{"full_reuse"}, Value: float64(s.fullReuse.Load())},
				{LabelValues: []string{"resumed"}, Value: float64(s.resumed.Load())},
				{LabelValues: []string{"cold"}, Value: float64(s.cold.Load())},
			}
		})
}
