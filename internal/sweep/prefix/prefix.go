// Package prefix shares simulated prefixes across DTM policy slices.
//
// Specs that differ only in DTM policy replay an identical trace and an
// identical thermal trajectory until the first throttle decision
// diverges: every policy returns the same neutral action while the
// machine is below its emergency levels, so a 4-policy grid point pays
// for the shared warm-up prefix four times over under cold replay. This
// package runs the first spec of each policy-sliced group as a *leader*
// — recording every (input, action) decision pair and checkpointing the
// simulator state at strided decision boundaries — and turns the rest
// into *followers*: a follower probes its own fresh policy against the
// recorded log, finds the first decision where it would diverge, and
// resumes from the deepest checkpoint at or before that point instead of
// replaying from t=0. A follower whose policy matches the entire log
// reuses the leader's result outright.
//
// Correctness rests on a bit-identity proof obligation, discharged by
// the divergence differential suite in internal/simtest: restoring a
// checkpoint and warming a fresh policy with the recorded inputs must
// reproduce, bit for bit, the state a cold run would have reached —
// identical report tables, 0-ULP trajectories. Anything cheaper (the
// inexact-cuts temptation) is rejected by construction: only exact
// action matches extend the shared prefix. Checkpoints are keyed by
// (trace digest, state digest) so persisted records are validated
// before reuse.
package prefix

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"

	"dramtherm/internal/core"
	"dramtherm/internal/dtm"
	"dramtherm/internal/sim"
)

// maxCheckpoints bounds per-group checkpoints; when the leader would
// exceed it, every other checkpoint is dropped and the stride doubles.
const maxCheckpoints = 16

// maxDecisions bounds the recorded decision log (≈ 44 simulated minutes
// at the default 10 ms DTM interval, ~12 MB of records). Past the cap
// the leader stops recording; followers can still resume from any
// checkpoint within the recorded prefix, but full-result reuse is off.
const maxDecisions = 1 << 18

// maxGroups bounds the group table; the oldest group is evicted first.
// Evicting an in-flight group is safe: followers hold the *group
// pointer and the leader completes it regardless of table membership.
const maxGroups = 512

// DecisionRecord is one recorded policy invocation.
type DecisionRecord struct {
	In  dtm.Input
	Act dtm.Action
}

// Checkpoint is a restorable simulator state at a decision boundary:
// the state was taken immediately before decision Decision was asked.
type Checkpoint struct {
	Decision    int
	StateDigest string
	State       *sim.MEMSpotState
}

// CheckpointRecord is the persistable form of one checkpoint.
type CheckpointRecord struct {
	Decision    int
	StateDigest string
	State       sim.MEMSpotState
}

// GroupRecord is the persistable form of a completed group: the
// decision log plus its checkpoints, keyed by the slice key and the
// digest of the recorded trace.
type GroupRecord struct {
	Key         string
	TraceDigest string
	Truncated   bool
	Decisions   []DecisionRecord
	Checkpoints []CheckpointRecord
}

// Builder constructs a fresh, unstarted level-2 simulator instance for a
// resolved run spec. *core.System implements it; tests substitute
// synthetic systems.
type Builder interface {
	NewRun(core.RunSpec) (*sim.MEMSpot, error)
}

// Stats is a point-in-time snapshot of the sharer's counters.
type Stats struct {
	Groups         int
	Leaders        int64
	FullReuse      int64 // followers that reused the leader's result outright
	Resumed        int64 // followers resumed from a checkpoint
	Cold           int64 // followers that fell back to a cold replay
	Checkpoints    int64
	StepsSimulated int64 // windows actually stepped through the hot loop
	StepsSaved     int64 // windows skipped via checkpoint resume or full reuse
}

// group is one policy-sliced prefix group. The leader writes decisions,
// checkpoints, res and err before closing done; everything is read-only
// for followers afterwards.
type group struct {
	done chan struct{}

	decisions   []DecisionRecord
	checkpoints []Checkpoint
	truncated   bool
	res         sim.MEMSpotResult
	hasRes      bool
	steps       int64 // leader's total timeline steps, for full-reuse accounting
	err         error
}

// Sharer coordinates prefix sharing across concurrently executing specs.
// The zero value is not usable; construct with New.
type Sharer struct {
	builder Builder

	mu     sync.Mutex
	groups map[string]*group
	order  []string

	onComplete func(GroupRecord) // persistence hook; set before first Run

	leaders, fullReuse, resumed, cold atomic.Int64
	checkpoints                       atomic.Int64
	stepsRun, stepsSaved              atomic.Int64
}

// New returns a sharer building runs through b.
func New(b Builder) *Sharer {
	return &Sharer{builder: b, groups: make(map[string]*group)}
}

// OnGroupComplete registers fn to receive a persistable record of every
// leader-completed group that produced checkpoints (the segment-log
// append hook). Call before the first Run.
func (s *Sharer) OnGroupComplete(fn func(GroupRecord)) { s.onComplete = fn }

// Stats returns a snapshot of the counters.
func (s *Sharer) Stats() Stats {
	s.mu.Lock()
	n := len(s.groups)
	s.mu.Unlock()
	return Stats{
		Groups:         n,
		Leaders:        s.leaders.Load(),
		FullReuse:      s.fullReuse.Load(),
		Resumed:        s.resumed.Load(),
		Cold:           s.cold.Load(),
		Checkpoints:    s.checkpoints.Load(),
		StepsSimulated: s.stepsRun.Load(),
		StepsSaved:     s.stepsSaved.Load(),
	}
}

// Run executes one spec under prefix sharing. groupKey identifies the
// policy slice (all specs identical except policy share it); newRun
// resolves a fresh run spec — with a fresh policy instance — on every
// call. The first spec of a group leads (cold run, recording and
// checkpointing); later specs follow (probe, resume, or reuse). Results
// are bit-identical to a cold replay either way.
func (s *Sharer) Run(ctx context.Context, groupKey string, newRun func() (core.RunSpec, error)) (sim.MEMSpotResult, error) {
	s.mu.Lock()
	g, ok := s.groups[groupKey]
	if !ok {
		g = &group{done: make(chan struct{})}
		s.insertLocked(groupKey, g)
		s.mu.Unlock()

		res, err := s.runLeader(ctx, g, newRun)
		g.err = err
		if err != nil {
			// Delete before close(done) so arrivals that observe the map
			// without this group elect a fresh leader; current waiters see
			// g.err and fall back to cold runs.
			s.mu.Lock()
			if s.groups[groupKey] == g {
				delete(s.groups, groupKey)
			}
			s.mu.Unlock()
		}
		close(g.done)
		if err == nil && s.onComplete != nil && len(g.checkpoints) > 0 {
			s.onComplete(s.export(groupKey, g))
		}
		return res, err
	}
	s.mu.Unlock()

	select {
	case <-g.done:
	case <-ctx.Done():
		return sim.MEMSpotResult{}, ctx.Err()
	}
	return s.runFollower(ctx, g, newRun)
}

// insertLocked adds a group under s.mu, evicting the oldest past the cap.
func (s *Sharer) insertLocked(key string, g *group) {
	s.groups[key] = g
	s.order = append(s.order, key)
	for len(s.order) > maxGroups {
		old := s.order[0]
		s.order = s.order[1:]
		delete(s.groups, old)
	}
}

// Recorder wraps a policy so every decision is captured; the prefix
// leader runs under one, and the differential suite uses it to build
// brute-force lockstep logs.
type Recorder struct {
	inner dtm.Policy
	log   []DecisionRecord
	full  bool
}

// NewRecorder wraps pol.
func NewRecorder(pol dtm.Policy) *Recorder { return &Recorder{inner: pol} }

// Name implements dtm.Policy.
func (r *Recorder) Name() string { return r.inner.Name() }

// Reset implements dtm.Policy and clears the log.
func (r *Recorder) Reset() {
	r.inner.Reset()
	r.log = r.log[:0]
	r.full = false
}

// Decide implements dtm.Policy, recording up to maxDecisions pairs.
func (r *Recorder) Decide(in dtm.Input) dtm.Action {
	act := r.inner.Decide(in)
	if len(r.log) < maxDecisions {
		r.log = append(r.log, DecisionRecord{In: in, Act: act})
	} else {
		r.full = true
	}
	return act
}

// Log returns the recorded decisions (owned by the recorder).
func (r *Recorder) Log() []DecisionRecord { return r.log }

// Truncated reports whether decisions beyond the cap went unrecorded.
func (r *Recorder) Truncated() bool { return r.full }

// DivergencePoint returns the index of the first recorded decision at
// which pol — fed the recorded inputs in order — would act differently,
// or len(log) if it matches throughout. The caller passes a fresh
// (reset) policy. Because inputs are functions of prior actions, the
// first index where the recorded and probed *actions* differ is exactly
// the first timestep at which a cold run of pol would depart from the
// leader's trajectory; the differential suite verifies this against
// brute-force lockstep simulation.
func DivergencePoint(log []DecisionRecord, pol dtm.Policy) int {
	for i, d := range log {
		if pol.Decide(d.In) != d.Act {
			return i
		}
	}
	return len(log)
}

// runLeader executes a cold run, recording decisions and checkpointing
// at strided decision boundaries.
func (s *Sharer) runLeader(ctx context.Context, g *group, newRun func() (core.RunSpec, error)) (sim.MEMSpotResult, error) {
	s.leaders.Add(1)
	rs, err := newRun()
	if err != nil {
		return sim.MEMSpotResult{}, err
	}
	rec := NewRecorder(rs.Policy)
	rs.Policy = rec
	ms, err := s.builder.NewRun(rs)
	if err != nil {
		return sim.MEMSpotResult{}, err
	}

	stride := 1
	snapsOK := true
	var cps []Checkpoint
	res, err := ms.RunHooked(ctx, func(m *sim.MEMSpot) error {
		d := m.Decisions()
		// The t=0 state is free to rebuild; checkpoint from decision
		// `stride` on, and only within the recorded (probe-able) prefix.
		if !snapsOK || d == 0 || d%stride != 0 || d >= maxDecisions {
			return nil
		}
		st, serr := m.Snapshot()
		if serr != nil {
			// Sensor-noise runs are not checkpointable; keep running cold
			// (the decision log still enables full-reuse detection).
			snapsOK = false
			cps = nil
			return nil
		}
		cps = append(cps, Checkpoint{Decision: d, StateDigest: st.Digest(), State: st})
		if len(cps) >= maxCheckpoints {
			// Thin to every other checkpoint and double the stride.
			kept := cps[:0]
			for i := 1; i < len(cps); i += 2 {
				kept = append(kept, cps[i])
			}
			cps = kept
			stride *= 2
		}
		return nil
	})
	s.stepsRun.Add(ms.StepsTaken())
	if err != nil {
		return res, err
	}
	s.checkpoints.Add(int64(len(cps)))
	g.decisions = rec.Log()
	g.checkpoints = cps
	g.truncated = rec.Truncated()
	g.res = res
	g.hasRes = true
	g.steps = ms.StepsTaken()
	return res, nil
}

// runFollower probes a fresh policy against the group's log and resumes
// from the deepest usable checkpoint, reuses the leader's result on a
// full match, or falls back to a cold replay.
func (s *Sharer) runFollower(ctx context.Context, g *group, newRun func() (core.RunSpec, error)) (sim.MEMSpotResult, error) {
	if g.err != nil || len(g.decisions) == 0 {
		return s.runCold(ctx, newRun)
	}

	probe, err := newRun()
	if err != nil {
		return sim.MEMSpotResult{}, err
	}
	probe.Policy.Reset()
	k := DivergencePoint(g.decisions, probe.Policy)
	if k == len(g.decisions) && g.hasRes && !g.truncated {
		// Identical decisions at identical inputs: the follower's
		// trajectory is the leader's, so its result is too. Results are
		// shared read-only by engine convention.
		s.fullReuse.Add(1)
		s.stepsSaved.Add(g.steps)
		return g.res, nil
	}
	var cp *Checkpoint
	for i := range g.checkpoints {
		if g.checkpoints[i].Decision <= k {
			cp = &g.checkpoints[i]
		} else {
			break
		}
	}
	if cp == nil {
		return s.runCold(ctx, newRun)
	}

	rs, err := newRun()
	if err != nil {
		return sim.MEMSpotResult{}, err
	}
	ms, err := s.builder.NewRun(rs)
	if err != nil {
		return sim.MEMSpotResult{}, err
	}
	// Warm the fresh policy with the recorded prefix: bit-identical
	// inputs reproduce bit-identical internal policy state (integrators,
	// hysteresis) at the checkpoint. NewRun has already Reset it.
	for i := 0; i < cp.Decision; i++ {
		rs.Policy.Decide(g.decisions[i].In)
	}
	if err := ms.Restore(cp.State); err != nil {
		return s.runCold(ctx, newRun)
	}
	inherited := ms.StepsTaken()
	res, err := ms.RunCtx(ctx)
	s.stepsRun.Add(ms.StepsTaken() - inherited)
	if err != nil {
		return res, err
	}
	s.resumed.Add(1)
	s.stepsSaved.Add(inherited)
	return res, nil
}

// runCold executes the spec without sharing.
func (s *Sharer) runCold(ctx context.Context, newRun func() (core.RunSpec, error)) (sim.MEMSpotResult, error) {
	s.cold.Add(1)
	rs, err := newRun()
	if err != nil {
		return sim.MEMSpotResult{}, err
	}
	ms, err := s.builder.NewRun(rs)
	if err != nil {
		return sim.MEMSpotResult{}, err
	}
	res, err := ms.RunCtx(ctx)
	s.stepsRun.Add(ms.StepsTaken())
	return res, err
}

// export builds the persistable record of a completed group; done is
// closed, so the group's fields are immutable and no lock is needed.
func (s *Sharer) export(key string, g *group) GroupRecord {
	rec := GroupRecord{
		Key:         key,
		TraceDigest: TraceDigest(key, g.decisions),
		Truncated:   g.truncated,
		Decisions:   g.decisions,
	}
	for _, cp := range g.checkpoints {
		rec.Checkpoints = append(rec.Checkpoints, CheckpointRecord{
			Decision:    cp.Decision,
			StateDigest: cp.StateDigest,
			State:       *cp.State,
		})
	}
	return rec
}

// Export streams persistable records of every completed group with
// checkpoints (segment-log compaction uses it).
func (s *Sharer) Export(fn func(GroupRecord) bool) {
	s.mu.Lock()
	type kv struct {
		k string
		g *group
	}
	var completed []kv
	for _, k := range s.order {
		g := s.groups[k]
		if g == nil {
			continue
		}
		select {
		case <-g.done:
			if g.err == nil && len(g.checkpoints) > 0 {
				completed = append(completed, kv{k, g})
			}
		default:
		}
	}
	s.mu.Unlock()
	for _, e := range completed {
		if !fn(s.export(e.k, e.g)) {
			return
		}
	}
}

// Validate checks a record's internal consistency: the trace digest must
// match the decision log and every checkpoint's state digest must match
// its state. It is the gate persisted records pass before reuse.
func (rec *GroupRecord) Validate() error {
	if rec.Key == "" {
		return fmt.Errorf("prefix: record without a key")
	}
	if len(rec.Decisions) > maxDecisions {
		return fmt.Errorf("prefix: record with %d decisions exceeds the cap", len(rec.Decisions))
	}
	if len(rec.Checkpoints) > maxCheckpoints {
		return fmt.Errorf("prefix: record with %d checkpoints exceeds the cap", len(rec.Checkpoints))
	}
	if got := TraceDigest(rec.Key, rec.Decisions); got != rec.TraceDigest {
		return fmt.Errorf("prefix: trace digest mismatch (%s != %s)", got, rec.TraceDigest)
	}
	last := 0
	for i := range rec.Checkpoints {
		cp := &rec.Checkpoints[i]
		if cp.Decision <= last && i > 0 || cp.Decision <= 0 {
			return fmt.Errorf("prefix: checkpoint decisions not increasing")
		}
		if cp.Decision > len(rec.Decisions) {
			return fmt.Errorf("prefix: checkpoint at decision %d beyond the %d-entry log", cp.Decision, len(rec.Decisions))
		}
		if got := cp.State.Digest(); got != cp.StateDigest {
			return fmt.Errorf("prefix: state digest mismatch at decision %d", cp.Decision)
		}
		last = cp.Decision
	}
	return nil
}

// Import installs a persisted group record (segment-log replay). The
// record must Validate; a group already present under the key wins.
// Imported groups carry no result, so followers resume from checkpoints
// rather than reuse a result outright.
func (s *Sharer) Import(rec GroupRecord) error {
	if err := rec.Validate(); err != nil {
		return err
	}
	g := &group{
		done:      make(chan struct{}),
		decisions: rec.Decisions,
		truncated: true, // no result to reuse; resume-only
	}
	for i := range rec.Checkpoints {
		cp := &rec.Checkpoints[i]
		st := cp.State
		g.checkpoints = append(g.checkpoints, Checkpoint{
			Decision:    cp.Decision,
			StateDigest: cp.StateDigest,
			State:       &st,
		})
	}
	close(g.done)
	s.mu.Lock()
	if _, exists := s.groups[rec.Key]; !exists {
		s.insertLocked(rec.Key, g)
	}
	s.mu.Unlock()
	return nil
}

// TraceDigest is the canonical digest of a group's identity: the slice
// key plus the full-precision rendering of its decision log, hashed and
// truncated to 16 hex digits (the core.ConfigDigest idiom).
func TraceDigest(key string, log []DecisionRecord) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\n", key)
	for i := range log {
		fmt.Fprintf(h, "%+v\n", log[i])
	}
	return hex.EncodeToString(h.Sum(nil)[:8])
}
