package prefix_test

import (
	"context"
	"reflect"
	"testing"

	"dramtherm/internal/core"
	"dramtherm/internal/dtm"
	"dramtherm/internal/obs"
	"dramtherm/internal/sim"
	"dramtherm/internal/sweep/prefix"
)

// fabricatedRecord builds a valid importable group record whose first
// recorded action no real policy would take, with its only checkpoint
// after decision 0 — so a follower diverges immediately and has nothing
// to restore from.
func fabricatedRecord(key string) prefix.GroupRecord {
	var st sim.MEMSpotState
	absurd := dtm.Action{BWCapGBps: dtm.NoCap(), ActiveCores: 1, FreqIndex: 3}
	rec := prefix.GroupRecord{
		Key: key,
		Decisions: []prefix.DecisionRecord{
			{In: dtm.Input{AMB: 100, DRAM: 70, Now: 0.01, Dt: 0.01}, Act: absurd},
			{In: dtm.Input{AMB: 100, DRAM: 70, Now: 0.02, Dt: 0.01}, Act: absurd},
		},
		Checkpoints: []prefix.CheckpointRecord{{Decision: 1, StateDigest: st.Digest(), State: st}},
	}
	rec.TraceDigest = prefix.TraceDigest(rec.Key, rec.Decisions)
	return rec
}

// TestRunColdOnImmediateDivergence: a follower that diverges at decision
// 0 with no usable checkpoint must fall back to a plain cold run — and
// the result must still be bit-identical to one run outside the sharer.
func TestRunColdOnImmediateDivergence(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation skipped in -short mode")
	}
	sys := testSystem(t)
	want, err := sys.Run(runSpec(t, sys, "DTM-TS"))
	if err != nil {
		t.Fatal(err)
	}

	s := prefix.New(sys)
	if err := s.Import(fabricatedRecord("cold-slice")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Run(context.Background(), "cold-slice", func() (core.RunSpec, error) {
		return runSpec(t, sys, "DTM-TS"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("cold-fallback result diverged from a plain run")
	}
	st := s.Stats()
	if st.Cold != 1 || st.Leaders != 0 || st.Resumed != 0 || st.FullReuse != 0 {
		t.Fatalf("stats %+v, want exactly one cold run", st)
	}
	if st.StepsSaved != 0 {
		t.Fatalf("cold fallback claims %d saved steps", st.StepsSaved)
	}
}

// TestInstrument: the sharer's metric families track its Stats and the
// run-mode counter carries one sample per mode.
func TestInstrument(t *testing.T) {
	s := prefix.New(testSystem(t))
	if err := s.Import(fabricatedRecord("g1")); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s.Instrument(reg)
	if got := reg.Sum("dramtherm_prefix_groups", nil); got != 1 {
		t.Fatalf("groups gauge %v, want 1", got)
	}
	if got := reg.Sum("dramtherm_prefix_timesteps_saved_total", nil); got != 0 {
		t.Fatalf("saved counter %v before any run", got)
	}
	for _, mode := range []string{"leader", "full_reuse", "resumed", "cold"} {
		if got := reg.Sum("dramtherm_prefix_runs_total", map[string]string{"mode": mode}); got != 0 {
			t.Fatalf("runs_total{mode=%s} = %v before any run", mode, got)
		}
	}
	// A nil registry must be a no-op, not a panic.
	s.Instrument(nil)
}

// TestExportRoundTrip: Export visits every importable group, stops when
// the visitor declines, and the exported records re-import cleanly.
func TestExportRoundTrip(t *testing.T) {
	s := prefix.New(testSystem(t))
	for _, key := range []string{"a", "b"} {
		if err := s.Import(fabricatedRecord(key)); err != nil {
			t.Fatal(err)
		}
	}
	var recs []prefix.GroupRecord
	s.Export(func(r prefix.GroupRecord) bool {
		recs = append(recs, r)
		return true
	})
	if len(recs) != 2 {
		t.Fatalf("exported %d groups, want 2", len(recs))
	}
	fresh := prefix.New(testSystem(t))
	for _, r := range recs {
		if err := r.Validate(); err != nil {
			t.Fatalf("exported record invalid: %v", err)
		}
		if err := fresh.Import(r); err != nil {
			t.Fatal(err)
		}
	}
	stopped := 0
	fresh.Export(func(prefix.GroupRecord) bool {
		stopped++
		return false
	})
	if stopped != 1 {
		t.Fatalf("visitor ran %d times after declining, want 1", stopped)
	}
}
