package prefix_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"dramtherm/internal/core"
	"dramtherm/internal/dtm"
	"dramtherm/internal/fbconfig"
	"dramtherm/internal/sim"
	"dramtherm/internal/sweep/prefix"
	"dramtherm/internal/workload"
)

// scripted is a deterministic fake policy: it answers decision i with
// acts[min(i, len-1)], ignoring the input.
type scripted struct {
	acts []dtm.Action
	i    int
}

func (s *scripted) Name() string { return "scripted" }
func (s *scripted) Reset()       { s.i = 0 }
func (s *scripted) Decide(dtm.Input) dtm.Action {
	k := s.i
	if k >= len(s.acts) {
		k = len(s.acts) - 1
	}
	s.i++
	return s.acts[k]
}

func neutral(cores int) dtm.Action {
	return dtm.Action{BWCapGBps: dtm.NoCap(), ActiveCores: cores, FreqIndex: 0}
}

func TestDivergencePoint(t *testing.T) {
	n4, off := neutral(4), dtm.Action{MemOff: true, BWCapGBps: dtm.NoCap(), ActiveCores: 4}
	log := []prefix.DecisionRecord{{Act: n4}, {Act: n4}, {Act: off}, {Act: n4}}

	if k := prefix.DivergencePoint(log, &scripted{acts: []dtm.Action{n4, n4, off, n4}}); k != len(log) {
		t.Fatalf("full match: k = %d, want %d", k, len(log))
	}
	if k := prefix.DivergencePoint(log, &scripted{acts: []dtm.Action{n4, n4, n4}}); k != 2 {
		t.Fatalf("divergence at 2: k = %d", k)
	}
	if k := prefix.DivergencePoint(log, &scripted{acts: []dtm.Action{off}}); k != 0 {
		t.Fatalf("immediate divergence: k = %d", k)
	}
}

func TestRecorder(t *testing.T) {
	inner := &scripted{acts: []dtm.Action{neutral(4)}}
	r := prefix.NewRecorder(inner)
	if r.Name() != "scripted" {
		t.Fatalf("name %q", r.Name())
	}
	for i := 0; i < 5; i++ {
		r.Decide(dtm.Input{AMB: float64(i)})
	}
	log := r.Log()
	if len(log) != 5 || r.Truncated() {
		t.Fatalf("log %d entries, truncated %v", len(log), r.Truncated())
	}
	if log[3].In.AMB != 3 {
		t.Fatalf("input not recorded: %+v", log[3])
	}
	r.Reset()
	if len(r.Log()) != 0 || inner.i != 0 {
		t.Fatal("reset did not clear recorder and inner policy")
	}
}

// testSystem is the golden-scale real system: small enough for CI, hot
// enough (tightened limits) that policies actually throttle and diverge.
func testSystem(t *testing.T) *core.System {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Replicas = 1
	cfg.InstrScale = 0.02
	cfg.Limits = fbconfig.ThermalLimits{AMBTDP: 103.5, DRAMTDP: 85, AMBTRP: 102.5, DRAMTRP: 84}
	return core.NewSystem(cfg)
}

func runSpec(t *testing.T, sys *core.System, policy string) core.RunSpec {
	t.Helper()
	mix, err := workload.MixByName("W1")
	if err != nil {
		t.Fatal(err)
	}
	pol, err := sys.NewPolicy(policy)
	if err != nil {
		t.Fatal(err)
	}
	return core.RunSpec{Mix: mix, Policy: pol, Cooling: fbconfig.CoolingAOHS15}
}

// TestLeaderFollowerBitIdentical drives four policies through one
// sharer group against a real system and requires every result to be
// bit-identical to its cold replay — the package-level statement of the
// contract the internal/simtest divergence suite proves at sweep scale.
func TestLeaderFollowerBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation skipped in -short mode")
	}
	sys := testSystem(t)
	policies := []string{"DTM-TS", "DTM-BW", "DTM-ACG", "DTM-CDVFS"}

	cold := make(map[string]sim.MEMSpotResult, len(policies))
	for _, p := range policies {
		res, err := sys.Run(runSpec(t, sys, p))
		if err != nil {
			t.Fatal(err)
		}
		cold[p] = res
	}

	s := prefix.New(sys)
	var exported []prefix.GroupRecord
	s.OnGroupComplete(func(rec prefix.GroupRecord) { exported = append(exported, rec) })
	for _, p := range policies {
		p := p
		res, err := s.Run(context.Background(), "slice", func() (core.RunSpec, error) {
			return runSpec(t, sys, p), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, cold[p]) {
			t.Fatalf("%s: shared result diverged from cold replay", p)
		}
	}

	st := s.Stats()
	if st.Leaders != 1 {
		t.Fatalf("leaders = %d, want 1", st.Leaders)
	}
	if st.FullReuse+st.Resumed+st.Cold != int64(len(policies))-1 {
		t.Fatalf("follower modes don't sum: %+v", st)
	}
	if st.StepsSaved == 0 {
		t.Fatalf("no timesteps saved: %+v", st)
	}
	if len(exported) != 1 {
		t.Fatalf("%d group records exported, want 1", len(exported))
	}
	if err := exported[0].Validate(); err != nil {
		t.Fatalf("exported record invalid: %v", err)
	}

	// The exported record must round-trip through Import into a fresh
	// sharer and still serve bit-identical resumes.
	s2 := prefix.New(sys)
	if err := s2.Import(exported[0]); err != nil {
		t.Fatal(err)
	}
	res, err := s2.Run(context.Background(), "slice", func() (core.RunSpec, error) {
		return runSpec(t, sys, "DTM-CDVFS"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, cold["DTM-CDVFS"]) {
		t.Fatal("resume from imported record diverged from cold replay")
	}
	if st := s2.Stats(); st.Leaders != 0 || st.Resumed+st.Cold != 1 {
		t.Fatalf("imported group did not serve a follower: %+v", st)
	}
}

// TestLeaderErrorElectsFreshLeader: a failed leader must not poison the
// group — the next arrival leads again.
func TestLeaderErrorElectsFreshLeader(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation skipped in -short mode")
	}
	sys := testSystem(t)
	s := prefix.New(sys)
	boom := errors.New("boom")
	if _, err := s.Run(context.Background(), "slice", func() (core.RunSpec, error) {
		return core.RunSpec{}, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("leader error = %v, want boom", err)
	}
	res, err := s.Run(context.Background(), "slice", func() (core.RunSpec, error) {
		return runSpec(t, sys, "DTM-TS"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds <= 0 {
		t.Fatalf("degenerate re-led run: %+v", res)
	}
	if st := s.Stats(); st.Leaders != 2 {
		t.Fatalf("leaders = %d, want 2 (failed + fresh)", st.Leaders)
	}
}

func TestValidateRejects(t *testing.T) {
	var st sim.MEMSpotState
	n4 := neutral(4)
	log := []prefix.DecisionRecord{{Act: n4}, {Act: n4}, {Act: n4}}
	good := prefix.GroupRecord{
		Key:       "k",
		Decisions: log,
		Checkpoints: []prefix.CheckpointRecord{
			{Decision: 1, StateDigest: st.Digest(), State: st},
			{Decision: 2, StateDigest: st.Digest(), State: st},
		},
	}
	good.TraceDigest = prefix.TraceDigest(good.Key, good.Decisions)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}

	for name, mutate := range map[string]func(*prefix.GroupRecord){
		"empty key":       func(r *prefix.GroupRecord) { r.Key = "" },
		"trace digest":    func(r *prefix.GroupRecord) { r.TraceDigest = "beef" },
		"state digest":    func(r *prefix.GroupRecord) { r.Checkpoints[0].StateDigest = "beef" },
		"not increasing":  func(r *prefix.GroupRecord) { r.Checkpoints[1].Decision = 1 },
		"beyond log":      func(r *prefix.GroupRecord) { r.Checkpoints[1].Decision = 99 },
		"zero decision":   func(r *prefix.GroupRecord) { r.Checkpoints[0].Decision = 0 },
		"tampered state":  func(r *prefix.GroupRecord) { r.Checkpoints[0].State.Now = 1e9 },
		"tampered action": func(r *prefix.GroupRecord) { r.Decisions[0].Act.MemOff = true },
	} {
		bad := good
		bad.Decisions = append([]prefix.DecisionRecord(nil), good.Decisions...)
		bad.Checkpoints = append([]prefix.CheckpointRecord(nil), good.Checkpoints...)
		mutate(&bad)
		if err := bad.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
