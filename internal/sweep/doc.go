// Package sweep is the concurrent simulation-serving subsystem: it
// turns the blocking, in-process core.System.Run call into a service
// that many clients (experiment drivers, CLIs, the dramthermd HTTP
// server) share.
//
// # Specs and keys
//
// A Spec names one level-2 run entirely by value — mix, policy,
// cooling, thermal model and overrides — so it can be transported as
// JSON and canonicalized into a cache Key. The Key includes the
// system-configuration digest, so caches and state files from a
// differently configured system can never satisfy a lookup. A Grid
// expands cartesian products of spec fields into deterministic job
// lists.
//
// # Cache and engine
//
// Cache is a sharded singleflight build cache: concurrent requests for
// the same Key share one simulation, distinct Keys run in parallel on a
// bounded worker pool, and completed entries persist with gob. Engine
// layers validation, spec resolution (names → live workload mixes,
// fresh stateful policies, cooling columns) and normalization on top,
// and executes whole sweeps with cancellation, per-spec lifecycle
// events (Options.OnEvent) and report-table aggregation.
//
// # Jobs
//
// Jobs is the asynchronous job registry between the engine and a front
// end such as internal/httpapi: bounded, TTL-evicted, each job with its
// own cancellable context and an append-only event log that any number
// of streaming observers can follow without missing or reordering
// events (EventsSince).
//
// # Cluster mode
//
// SetBackend reroutes cache misses through a SpecBackend instead of
// local execution. The engine still deduplicates locally — the backend
// sees each distinct key once — and the backend's RunInfo (its outcome
// plus the executing peer id) flows through Event.Peer into the job
// event log and out over SSE. The internal/sweep/remote package
// implements the backend that fans runs out to remote dramthermd peers
// by consistent hashing on the canonical Key.
package sweep
