package sweep

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source for TTL tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestJobs(t *testing.T, opts JobsOptions) *Jobs {
	t.Helper()
	r := NewJobs(opts)
	t.Cleanup(r.Close)
	return r
}

func TestJobsTTLReap(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	r := newTestJobs(t, JobsOptions{TTL: time.Minute, Now: clk.now})

	j, err := r.Create(context.Background(), JobRun, []Spec{{Mix: "W1"}})
	if err != nil {
		t.Fatal(err)
	}
	j.Finish(nil, nil)

	clk.advance(30 * time.Second)
	if n := r.Reap(); n != 0 {
		t.Fatalf("reaped %d jobs before TTL", n)
	}
	clk.advance(31 * time.Second)
	if n := r.Reap(); n != 1 {
		t.Fatalf("reaped %d jobs after TTL, want 1", n)
	}
	if _, ok := r.Get(j.ID()); ok {
		t.Fatal("job still present after reap")
	}
	// The evicted job's context is released.
	select {
	case <-j.Context().Done():
	default:
		t.Fatal("evicted job context not cancelled")
	}
}

func TestJobsTTLSparesRunning(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	r := newTestJobs(t, JobsOptions{TTL: time.Minute, Now: clk.now})
	j, err := r.Create(context.Background(), JobRun, []Spec{{Mix: "W1"}})
	if err != nil {
		t.Fatal(err)
	}
	clk.advance(time.Hour)
	if n := r.Reap(); n != 0 {
		t.Fatalf("reaped %d running jobs", n)
	}
	if _, ok := r.Get(j.ID()); !ok {
		t.Fatal("running job evicted")
	}
}

func TestJobsBackgroundReaper(t *testing.T) {
	r := newTestJobs(t, JobsOptions{TTL: 20 * time.Millisecond, ReapEvery: 10 * time.Millisecond})
	j, err := r.Create(context.Background(), JobRun, []Spec{{Mix: "W1"}})
	if err != nil {
		t.Fatal(err)
	}
	j.Finish(nil, nil)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := r.Get(j.ID()); !ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("background reaper never evicted the finished job")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestJobsBounded(t *testing.T) {
	r := newTestJobs(t, JobsOptions{MaxJobs: 2})
	a, err := r.Create(context.Background(), JobRun, []Spec{{Mix: "W1"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create(context.Background(), JobRun, []Spec{{Mix: "W2"}}); err != nil {
		t.Fatal(err)
	}
	// Registry full of running jobs: a third must be rejected.
	if _, err := r.Create(context.Background(), JobRun, []Spec{{Mix: "W3"}}); err == nil {
		t.Fatal("Create succeeded past MaxJobs with every job running")
	}
	// Once one finishes, Create evicts it to make room.
	a.Finish(nil, nil)
	c, err := r.Create(context.Background(), JobRun, []Spec{{Mix: "W3"}})
	if err != nil {
		t.Fatalf("Create after finish: %v", err)
	}
	if _, ok := r.Get(a.ID()); ok {
		t.Fatal("oldest finished job not evicted to make room")
	}
	if _, ok := r.Get(c.ID()); !ok {
		t.Fatal("new job missing")
	}
	if r.Len() != 2 {
		t.Fatalf("registry size %d, want 2", r.Len())
	}
}

func TestJobsCancelRunning(t *testing.T) {
	r := newTestJobs(t, JobsOptions{})
	j, err := r.Create(context.Background(), JobRun, []Spec{{Mix: "W1"}})
	if err != nil {
		t.Fatal(err)
	}
	evicted, ok := r.Cancel(j.ID())
	if !ok || evicted {
		t.Fatalf("Cancel = (evicted=%v, ok=%v), want running-cancel path", evicted, ok)
	}
	select {
	case <-j.Context().Done():
	case <-time.After(time.Second):
		t.Fatal("job context not cancelled")
	}
	// The owner observes the cancellation and finishes the job.
	j.Finish(nil, j.Context().Err())
	snap := j.Snapshot()
	if snap.Status != JobCancelled {
		t.Fatalf("status %q, want cancelled", snap.Status)
	}
	evs, _, finished := j.EventsSince(0)
	if !finished {
		t.Fatal("job not terminal after Finish")
	}
	if last := evs[len(evs)-1]; last.Kind != "cancelled" {
		t.Fatalf("terminal event %q, want cancelled", last.Kind)
	}
}

func TestJobsCancelFinishedEvicts(t *testing.T) {
	r := newTestJobs(t, JobsOptions{})
	j, err := r.Create(context.Background(), JobRun, []Spec{{Mix: "W1"}})
	if err != nil {
		t.Fatal(err)
	}
	j.Finish(nil, nil)
	evicted, ok := r.Cancel(j.ID())
	if !ok || !evicted {
		t.Fatalf("Cancel = (evicted=%v, ok=%v), want eviction", evicted, ok)
	}
	if _, ok := r.Get(j.ID()); ok {
		t.Fatal("finished job still present after Cancel")
	}
	if _, ok := r.Cancel("nope"); ok {
		t.Fatal("Cancel of unknown id reported ok")
	}
}

func TestJobsListFilterAndPagination(t *testing.T) {
	r := newTestJobs(t, JobsOptions{})
	var ids []string
	for i := 0; i < 5; i++ {
		j, err := r.Create(context.Background(), JobRun, []Spec{{Mix: fmt.Sprintf("W%d", i+1)}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID())
		if i%2 == 0 {
			j.Finish(nil, nil) // W1, W3, W5 finish
		}
	}
	all, total := r.List("", 0, 0)
	if total != 5 || len(all) != 5 {
		t.Fatalf("List all = %d/%d, want 5/5", len(all), total)
	}
	// Newest first.
	if all[0].ID != ids[4] || all[4].ID != ids[0] {
		t.Fatalf("ordering: %v", all)
	}
	done, total := r.List(JobDone, 0, 0)
	if total != 3 || len(done) != 3 {
		t.Fatalf("List done = %d/%d, want 3/3", len(done), total)
	}
	running, total := r.List(JobRunning, 0, 0)
	if total != 2 || len(running) != 2 {
		t.Fatalf("List running = %d/%d, want 2/2", len(running), total)
	}
	// Pagination: page size 2, second page.
	page, total := r.List("", 2, 2)
	if total != 5 || len(page) != 2 {
		t.Fatalf("page = %d/%d, want 2/5", len(page), total)
	}
	if page[0].ID != ids[2] || page[1].ID != ids[1] {
		t.Fatalf("page content: %+v", page)
	}
	// Offset past the end yields an empty page with the true total.
	page, total = r.List("", 99, 2)
	if total != 5 || len(page) != 0 {
		t.Fatalf("far page = %d/%d, want 0/5", len(page), total)
	}
}

// TestJobsEventStream checks that concurrent publishers never reorder
// or drop events for a streaming observer, and that the terminal event
// is observed last. Run under -race this also proves the locking.
func TestJobsEventStream(t *testing.T) {
	r := newTestJobs(t, JobsOptions{})
	j, err := r.Create(context.Background(), JobSweep, []Spec{{Mix: "W1"}, {Mix: "W2"}})
	if err != nil {
		t.Fatal(err)
	}

	const publishers = 4
	const perPublisher = 25
	go func() {
		var wg sync.WaitGroup
		for p := 0; p < publishers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for k := 0; k < perPublisher; k++ {
					j.Publish(JobEvent{Kind: string(EventStarted), Index: p})
				}
			}(p)
		}
		wg.Wait()
		j.Finish(nil, nil)
	}()

	var got []JobEvent
	cursor := 0
	for {
		evs, changed, finished := j.EventsSince(cursor)
		got = append(got, evs...)
		cursor += len(evs)
		if finished {
			// Drain anything published between the last read and the
			// terminal flag.
			evs, _, _ := j.EventsSince(cursor)
			got = append(got, evs...)
			break
		}
		select {
		case <-changed:
		case <-time.After(5 * time.Second):
			t.Fatal("stream stalled")
		}
	}
	want := 1 + publishers*perPublisher + 1 // started + published + terminal
	if len(got) != want {
		t.Fatalf("observed %d events, want %d", len(got), want)
	}
	for i, ev := range got {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
	if got[0].Kind != "started" || got[len(got)-1].Kind != "done" {
		t.Fatalf("bracketing events: first %q last %q", got[0].Kind, got[len(got)-1].Kind)
	}
}

// TestJobsFinishIdempotent checks a double Finish (e.g. cancel racing
// natural completion) keeps the first terminal state.
func TestJobsFinishIdempotent(t *testing.T) {
	r := newTestJobs(t, JobsOptions{})
	j, err := r.Create(context.Background(), JobRun, []Spec{{Mix: "W1"}})
	if err != nil {
		t.Fatal(err)
	}
	j.Finish("payload", nil)
	j.Finish(nil, context.Canceled)
	snap := j.Snapshot()
	if snap.Status != JobDone || snap.Result != "payload" {
		t.Fatalf("second Finish overwrote terminal state: %+v", snap)
	}
}
