package sweep

import (
	"context"
	"sync/atomic"
	"testing"

	"dramtherm/internal/obs"
)

// BenchmarkObsOverhead measures what instrumentation costs the hot path:
// the same cached sweep served by an uninstrumented engine (nil-receiver
// no-op instruments) and by one registered on a live registry. The two
// sub-benchmarks must stay within a few percent of each other — the
// whole design leans on nil-check no-ops being free enough to leave the
// hooks compiled into every path.
func BenchmarkObsOverhead(b *testing.B) {
	bench := func(b *testing.B, instrument bool) {
		var builds atomic.Int64
		eng := testEngine(4, &builds, 0)
		if instrument {
			eng.Instrument(obs.NewRegistry())
		}
		ctx := context.Background()
		spec := Spec{Mix: "W1", Policy: "DTM-ACG"}
		if _, _, err := eng.RunTraced(ctx, spec); err != nil { // warm the cache
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := eng.RunTraced(ctx, spec); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("noop", func(b *testing.B) { bench(b, false) })
	b.Run("instrumented", func(b *testing.B) { bench(b, true) })
}
