// Checkpoint persistence: prefix-sharing group records ride the same
// segment log as runs and traces, so a restarted engine resumes with its
// decision logs and strided checkpoints warm. Checkpoint records are an
// optimization, never source of truth — a record that fails to decode or
// validate on replay is dropped silently, and oversized groups are not
// persisted at all.

package sweep

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"dramtherm/internal/sweep/prefix"
)

// maxCheckpointRecordBytes caps the encoded size of one persisted group
// record. A group whose decision log and checkpoints encode larger than
// this stays memory-only: losing it costs one cold replay after a
// restart, while persisting it would bloat every compaction.
const maxCheckpointRecordBytes = 8 << 20

// encodeCheckpointRecord frames one group record as a gob payload.
func encodeCheckpointRecord(rec prefix.GroupRecord) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeCheckpointRecord decodes and validates one checkpoint payload.
// Validation re-derives every state digest, so a payload that gob-decodes
// but carries a tampered or bit-rotted simulator state is rejected here
// rather than restored into a run.
func decodeCheckpointRecord(payload []byte) (prefix.GroupRecord, error) {
	var rec prefix.GroupRecord
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
		return prefix.GroupRecord{}, fmt.Errorf("sweep: decoding checkpoint record: %w", err)
	}
	if err := rec.Validate(); err != nil {
		return prefix.GroupRecord{}, fmt.Errorf("sweep: invalid checkpoint record: %w", err)
	}
	return rec, nil
}

// appendCheckpoint frames one completed prefix group into the segment
// log. Registered as the sharer's OnGroupComplete hook when both prefix
// sharing and the segment log are enabled.
func (e *Engine) appendCheckpoint(rec prefix.GroupRecord) {
	payload, err := encodeCheckpointRecord(rec)
	if err != nil {
		e.appendErrs.Add(1)
		return
	}
	if len(payload) > maxCheckpointRecordBytes {
		return // too large to persist; keep memory-only
	}
	if err := e.seglog.Append(recordCheckpoint, payload); err != nil {
		e.appendErrs.Add(1)
	}
}
