package sweep

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"dramtherm/internal/sim"
)

// logKeys replays l and returns the run-record keys in replay order.
func logKeys(t *testing.T, l *SegmentLog) []Key {
	t.Helper()
	var keys []Key
	if err := l.Replay(func(kind byte, payload []byte) error {
		if kind != recordRun {
			return nil
		}
		var rec runRecord
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
			return err
		}
		keys = append(keys, rec.Key)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return keys
}

func runPayload(t *testing.T, key Key, secs float64) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(runRecord{Key: key, Result: sim.MEMSpotResult{Seconds: secs}}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSegmentLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenSegmentLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []Key{"a", "b", "c"} {
		if err := l.Append(recordRun, runPayload(t, k, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenSegmentLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := logKeys(t, l2); len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("replayed keys = %v", got)
	}
	// Appends after a reopen+replay land cleanly past the existing tail.
	if err := l2.Append(recordRun, runPayload(t, "d", 1)); err != nil {
		t.Fatal(err)
	}
	if got := logKeys(t, l2); len(got) != 4 || got[3] != "d" {
		t.Fatalf("after append, keys = %v", got)
	}
}

// TestSegmentLogCrashReplay truncates the active segment mid-record —
// the on-disk state a crash mid-append leaves — and asserts the replay
// recovers every whole record, drops the torn tail, and appends resume
// on a clean frame boundary.
func TestSegmentLogCrashReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenSegmentLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(recordRun, runPayload(t, "whole", 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(recordRun, runPayload(t, "torn", 2)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last record: chop 3 bytes off its payload.
	path := segPath(dir, 1)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-3); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenSegmentLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := logKeys(t, l2); len(got) != 1 || got[0] != "whole" {
		t.Fatalf("recovered keys = %v, want [whole]", got)
	}
	if st := l2.Stats(); st.TruncatedBytes == 0 {
		t.Fatalf("torn tail not reported: %+v", st)
	}
	// The torn bytes are physically gone: a new append must replay back.
	if err := l2.Append(recordRun, runPayload(t, "after", 3)); err != nil {
		t.Fatal(err)
	}
	if got := logKeys(t, l2); len(got) != 2 || got[1] != "after" {
		t.Fatalf("post-recovery keys = %v, want [whole after]", got)
	}
}

// TestSegmentLogCorruptMidRecord flips a payload byte of an early record
// and asserts replay surfaces the later records as lost bytes rather
// than decoding garbage.
func TestSegmentLogCorruptMidRecord(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenSegmentLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(recordRun, runPayload(t, "first", 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(recordRun, runPayload(t, "second", 2)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	path := segPath(dir, 1)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[12+9+2] ^= 0xff // a payload byte of the first record
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenSegmentLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := logKeys(t, l2); len(got) != 0 {
		t.Fatalf("replay decoded corrupt data: %v", got)
	}
}

func TestSegmentLogVersionMismatch(t *testing.T) {
	dir := t.TempDir()
	var hdr [12]byte
	copy(hdr[:8], stateMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], StateVersion+7)
	if err := os.WriteFile(segPath(dir, 1), hdr[:], 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := OpenSegmentLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	err = l.Replay(func(byte, []byte) error { return nil })
	if !errors.Is(err, ErrStateVersion) {
		t.Fatalf("future-version replay err = %v, want ErrStateVersion", err)
	}
}

func TestSegmentLogBadMagic(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(segPath(dir, 1), []byte("not a state file"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := OpenSegmentLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	err = l.Replay(func(byte, []byte) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("bad-magic replay err = %v", err)
	}
}

// TestSegmentLogCompact floods enough records to rotate, compacts, and
// asserts the folded log replays the identical live set from fewer
// segments while concurrent-era appends survive.
func TestSegmentLogCompact(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenSegmentLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	live := map[Key]bool{"a": true, "b": true}
	for k := range live {
		if err := l.Append(recordRun, runPayload(t, k, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Compact(func(emit func(byte, []byte) error) error {
		for k := range live {
			if err := emit(recordRun, runPayload(t, k, 1)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Post-compaction appends land in the fresh active segment.
	if err := l.Append(recordRun, runPayload(t, "c", 1)); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Segments != 2 {
		t.Fatalf("segments after compact = %d, want 2 (snapshot + active)", st.Segments)
	}
	got := map[Key]bool{}
	for _, k := range logKeys(t, l) {
		got[k] = true
	}
	if len(got) != 3 || !got["a"] || !got["b"] || !got["c"] {
		t.Fatalf("post-compact keys = %v", got)
	}
}

// TestEngineSegmentLogAppendsOnBuild checks the engine hooks: a built
// run and its level-1 trace records persist without any explicit save,
// replay into a fresh engine as pure cache hits, and Put-path restores
// do not re-append (no write amplification on restart).
func TestEngineSegmentLogAppendsOnBuild(t *testing.T) {
	dir := t.TempDir()
	var builds atomic.Int64
	e := testEngine(2, &builds, 0)
	if err := e.EnableSegmentLog(dir, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(context.Background(), Spec{Mix: "W1"}); err != nil {
		t.Fatal(err)
	}
	st, ok := e.StateStats()
	if !ok || st.Appends != 1 {
		t.Fatalf("state stats after one build = %+v ok=%v, want 1 append", st, ok)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := testEngine(2, &builds, 0)
	if err := e2.EnableSegmentLog(dir, 0); err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if st2, _ := e2.StateStats(); st2.Appends != 0 {
		t.Fatalf("replay re-appended records: %+v", st2)
	}
	builds.Store(0)
	if _, out, err := e2.RunTraced(context.Background(), Spec{Mix: "W1"}); err != nil || out != Hit {
		t.Fatalf("restored run: out=%v err=%v, want Hit", out, err)
	}
	if builds.Load() != 0 {
		t.Fatal("restored engine rebuilt a persisted run")
	}
}

// TestEngineImportResult covers the replica/handoff ingestion path:
// digest-mismatched keys are rejected, imports are idempotent, and an
// imported result both persists and serves later Runs as a hit.
func TestEngineImportResult(t *testing.T) {
	var builds atomic.Int64
	e := testEngine(1, &builds, 0)
	if err := e.EnableSegmentLog(t.TempDir(), 0); err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	spec := Spec{Mix: "W1"}
	key := e.Key(spec)
	res := sim.MEMSpotResult{Seconds: 42}
	if e.ImportResult("deadbeef|W1|...", res) {
		t.Fatal("accepted a key from a different config digest")
	}
	if !e.ImportResult(key, res) {
		t.Fatal("rejected a well-formed import")
	}
	if e.ImportResult(key, res) {
		t.Fatal("re-import of a present key reported accepted")
	}
	got, out, err := e.RunTraced(context.Background(), spec)
	if err != nil || out != Hit || got.Seconds != 42 {
		t.Fatalf("run after import: %+v out=%v err=%v, want hit of imported result", got, out, err)
	}
	if builds.Load() != 0 {
		t.Fatal("import did not prevent a rebuild")
	}
	if st, _ := e.StateStats(); st.Appends != 1 {
		t.Fatalf("import not persisted: %+v", st)
	}
}

// TestMigrateLegacyStateFile writes a pre-versioning gob blob, migrates
// it through the segment log, and asserts it loads once: the records
// are served from the log afterwards and the blob is renamed aside.
func TestMigrateLegacyStateFile(t *testing.T) {
	legacy := filepath.Join(t.TempDir(), "state.gob")
	segdir := filepath.Join(t.TempDir(), "seg")

	var builds atomic.Int64
	src := testEngine(1, &builds, 0)
	if _, err := src.Run(context.Background(), Spec{Mix: "W2"}); err != nil {
		t.Fatal(err)
	}
	// Hand-roll the legacy format: two gob-framed blobs (cache map, trace
	// records) under one outer stream — what SaveState used to write.
	var cacheBuf, traceBuf, out bytes.Buffer
	if err := src.cache.Save(&cacheBuf); err != nil {
		t.Fatal(err)
	}
	if err := src.System().Store().Save(&traceBuf); err != nil {
		t.Fatal(err)
	}
	enc := gob.NewEncoder(&out)
	if err := enc.Encode(cacheBuf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(traceBuf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(legacy, out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	e := testEngine(1, &builds, 0)
	if err := e.EnableSegmentLog(segdir, 0); err != nil {
		t.Fatal(err)
	}
	migrated, err := e.MigrateLegacyStateFile(legacy)
	if err != nil || !migrated {
		t.Fatalf("migrate = %v, %v", migrated, err)
	}
	if _, err := os.Stat(legacy); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("legacy blob still present after migration: %v", err)
	}
	if _, err := os.Stat(legacy + migratedSuffix); err != nil {
		t.Fatalf("migrated marker missing: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Second boot: the alias is a no-op, the log alone restores the run.
	e2 := testEngine(1, &builds, 0)
	if err := e2.EnableSegmentLog(segdir, 0); err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if migrated, err := e2.MigrateLegacyStateFile(legacy); err != nil || migrated {
		t.Fatalf("second migrate = %v, %v, want no-op", migrated, err)
	}
	builds.Store(0)
	if _, out, err := e2.RunTraced(context.Background(), Spec{Mix: "W2"}); err != nil || out != Hit {
		t.Fatalf("post-migration run: out=%v err=%v, want Hit", out, err)
	}
	if builds.Load() != 0 {
		t.Fatal("migrated state did not prevent a rebuild")
	}
}

// TestMigrateRejectsVersionedFile guards the flag mixup: pointing -state
// at a segment file must fail loudly, not decode as gob.
func TestMigrateRejectsVersionedFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg-000001.dtl")
	var hdr [12]byte
	copy(hdr[:8], stateMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], StateVersion)
	if err := os.WriteFile(path, hdr[:], 0o644); err != nil {
		t.Fatal(err)
	}
	var builds atomic.Int64
	e := testEngine(1, &builds, 0)
	if err := e.EnableSegmentLog(filepath.Join(dir, "seg"), 0); err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	_, err := e.MigrateLegacyStateFile(path)
	if err == nil || !strings.Contains(err.Error(), "versioned state segment") {
		t.Fatalf("migrating a versioned file: err = %v", err)
	}
}

// TestEngineCompactState folds a multi-record log and checks the live
// set survives exactly.
func TestEngineCompactState(t *testing.T) {
	dir := t.TempDir()
	var builds atomic.Int64
	e := testEngine(2, &builds, 0)
	if err := e.EnableSegmentLog(dir, 0); err != nil {
		t.Fatal(err)
	}
	for _, mix := range []string{"W1", "W2", "W3"} {
		if _, err := e.Run(context.Background(), Spec{Mix: mix}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.CompactState(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := testEngine(2, &builds, 0)
	if err := e2.EnableSegmentLog(dir, 0); err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	builds.Store(0)
	for _, mix := range []string{"W1", "W2", "W3"} {
		if _, out, err := e2.RunTraced(context.Background(), Spec{Mix: mix}); err != nil || out != Hit {
			t.Fatalf("mix %s after compact: out=%v err=%v", mix, out, err)
		}
	}
	if builds.Load() != 0 {
		t.Fatal("compaction lost live records")
	}
}
