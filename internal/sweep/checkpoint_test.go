package sweep

import (
	"testing"

	"dramtherm/internal/core"
	"dramtherm/internal/sweep/prefix"
)

// TestCheckpointPersistRoundTrip: a checkpoint record appended through
// the engine's group-complete hook survives a restart (replayState
// imports it into the new sharer) and a CompactState rewrite.
func TestCheckpointPersistRoundTrip(t *testing.T) {
	dir := t.TempDir()
	e := NewEngine(core.NewSystem(tinyConfig()), 1)
	e.EnablePrefixSharing()
	if err := e.EnableSegmentLog(dir, 0); err != nil {
		t.Fatal(err)
	}
	rec := seedGroupRecord()
	// The hook the sharer fires on group completion.
	e.appendCheckpoint(rec)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	reopen := func(t *testing.T) *Engine {
		t.Helper()
		e2 := NewEngine(core.NewSystem(tinyConfig()), 1)
		e2.EnablePrefixSharing()
		if err := e2.EnableSegmentLog(dir, 0); err != nil {
			t.Fatal(err)
		}
		return e2
	}
	exported := func(e *Engine) []string {
		var keys []string
		e.prefix.Export(func(r prefix.GroupRecord) bool {
			keys = append(keys, r.Key)
			return true
		})
		return keys
	}

	e2 := reopen(t)
	if got := exported(e2); len(got) != 1 || got[0] != rec.Key {
		t.Fatalf("replayed groups %v, want [%s]", got, rec.Key)
	}
	// Compaction must re-emit the checkpoint record into the fresh
	// segment, not drop it.
	if err := e2.CompactState(); err != nil {
		t.Fatal(err)
	}
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	e3 := reopen(t)
	defer e3.Close()
	if got := exported(e3); len(got) != 1 || got[0] != rec.Key {
		t.Fatalf("groups after compaction %v, want [%s]", got, rec.Key)
	}
}

// TestCheckpointReplayIgnoredWithoutSharing: an engine that replays a
// log holding checkpoint records with prefix sharing disabled must not
// fail — the records are simply skipped.
func TestCheckpointReplayIgnoredWithoutSharing(t *testing.T) {
	dir := t.TempDir()
	e := NewEngine(core.NewSystem(tinyConfig()), 1)
	e.EnablePrefixSharing()
	if err := e.EnableSegmentLog(dir, 0); err != nil {
		t.Fatal(err)
	}
	e.appendCheckpoint(seedGroupRecord())
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	plain := NewEngine(core.NewSystem(tinyConfig()), 1)
	if err := plain.EnableSegmentLog(dir, 0); err != nil {
		t.Fatalf("replay with sharing disabled: %v", err)
	}
	defer plain.Close()
	if _, ok := plain.PrefixStats(); ok {
		t.Fatal("sharing reported enabled on a plain engine")
	}
}

// TestCheckpointCorruptReplaySkipped: a log whose checkpoint payload is
// garbage still replays — the bad record is dropped, not fatal.
func TestCheckpointCorruptReplaySkipped(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenSegmentLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(recordCheckpoint, []byte("definitely not gob")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(core.NewSystem(tinyConfig()), 1)
	e.EnablePrefixSharing()
	if err := e.EnableSegmentLog(dir, 0); err != nil {
		t.Fatalf("corrupt checkpoint record aborted replay: %v", err)
	}
	defer e.Close()
	count := 0
	e.prefix.Export(func(prefix.GroupRecord) bool { count++; return true })
	if count != 0 {
		t.Fatalf("%d groups imported from garbage", count)
	}
}
