package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"dramtherm/internal/obs"
)

// JobKind tags what a job executes.
type JobKind string

const (
	// JobRun is one asynchronous single-spec run.
	JobRun JobKind = "run"
	// JobSweep is one asynchronous multi-spec sweep.
	JobSweep JobKind = "sweep"
	// JobSearch is one asynchronous adaptive search: rounds of sweeps
	// planned by a strategy (internal/sweep/search). Its Total is the
	// candidate count; Done counts spec executions across all rounds,
	// so it can exceed Total when survivors re-run at higher rungs.
	JobSearch JobKind = "search"
)

// JobStatus is the lifecycle state of a job.
type JobStatus string

const (
	JobRunning   JobStatus = "running"
	JobDone      JobStatus = "done"
	JobError     JobStatus = "error"
	JobCancelled JobStatus = "cancelled"
)

// Terminal reports whether the status is final.
func (s JobStatus) Terminal() bool { return s != JobRunning }

// JobEvent is one entry of a job's retained event log: the job-level
// started/terminal markers plus the per-spec Events forwarded from the
// engine. Seq increases by one per event within a job, so streaming
// clients can resume from a cursor.
type JobEvent struct {
	Seq  int       `json:"seq"`
	Kind string    `json:"kind"` // "started", Event kinds, "done", "error", "cancelled"
	Time time.Time `json:"time"`

	Spec    *Spec   `json:"spec,omitempty"`
	Index   int     `json:"index,omitempty"`
	Done    int     `json:"done,omitempty"`
	Total   int     `json:"total,omitempty"`
	Outcome string  `json:"outcome,omitempty"` // "built", "hit", "joined"
	Peer    string  `json:"peer,omitempty"`    // executing cluster member, if any
	Seconds float64 `json:"seconds,omitempty"`
	Error   string  `json:"error,omitempty"`

	// Adaptive-search round boundaries (round_started/round_finished).
	Round     int     `json:"round,omitempty"`
	Rung      float64 `json:"rung,omitempty"`
	Survivors int     `json:"survivors,omitempty"`
	Pruned    int     `json:"pruned,omitempty"`
}

// JobSnapshot is a point-in-time copy of a job's externally visible
// state, safe to hold and serialize after the job moves on.
type JobSnapshot struct {
	ID        string     `json:"id"`
	Kind      JobKind    `json:"kind"`
	Specs     []Spec     `json:"specs"`
	Status    JobStatus  `json:"status"`
	Error     string     `json:"error,omitempty"`
	Submitted time.Time  `json:"submitted"`
	Finished  *time.Time `json:"finished,omitempty"`
	Done      int        `json:"done"`   // specs finished so far
	Total     int        `json:"total"`  // specs submitted
	Events    int        `json:"events"` // retained event count
	// Result is the payload stored by Finish; its concrete type is
	// whatever the job's owner chose (the HTTP server stores full
	// simulation results and renders summaries at fetch time).
	Result any `json:"-"`
}

// JobsOptions tunes a Jobs registry.
type JobsOptions struct {
	// TTL evicts finished (done/error/cancelled) jobs this long after
	// they finish. <= 0 disables time-based eviction.
	TTL time.Duration
	// MaxJobs bounds the registry. When full, Create evicts the oldest
	// finished jobs; if every job is still running, Create fails.
	// <= 0 selects DefaultMaxJobs.
	MaxJobs int
	// ReapEvery overrides the background reaper period (default TTL/4,
	// clamped to [10ms, 1min]). Ignored when TTL <= 0.
	ReapEvery time.Duration
	// Now overrides the clock, for tests. Defaults to time.Now.
	Now func() time.Time
}

// DefaultMaxJobs bounds a registry whose options leave MaxJobs unset.
const DefaultMaxJobs = 1024

// Jobs is a bounded registry of asynchronous jobs with TTL eviction:
// the job-lifecycle layer between the Engine (which executes specs) and
// a front end like dramthermd (which owns the wire format). Each job
// carries its own cancellable context, a status snapshot, and a
// retained event log that any number of streaming observers can follow
// without missing or reordering events.
type Jobs struct {
	ttl     time.Duration
	maxJobs int
	now     func() time.Time

	mu     sync.Mutex
	nextID int
	jobs   map[string]*Job
	order  []string // creation order, oldest first

	reaper *time.Ticker
	stop   chan struct{}
	once   sync.Once

	evictions *obs.CounterVec // by reason; nil until Instrument
}

// NewJobs builds a registry and, when opts.TTL > 0, starts its
// background reaper. Call Close to stop the reaper.
func NewJobs(opts JobsOptions) *Jobs {
	if opts.MaxJobs <= 0 {
		opts.MaxJobs = DefaultMaxJobs
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	r := &Jobs{
		ttl:     opts.TTL,
		maxJobs: opts.MaxJobs,
		now:     opts.Now,
		jobs:    make(map[string]*Job),
		stop:    make(chan struct{}),
	}
	if opts.TTL > 0 {
		every := opts.ReapEvery
		if every <= 0 {
			every = opts.TTL / 4
		}
		every = min(max(every, 10*time.Millisecond), time.Minute)
		r.reaper = time.NewTicker(every)
		go func() {
			for {
				select {
				case <-r.reaper.C:
					r.Reap()
				case <-r.stop:
					return
				}
			}
		}()
	}
	return r
}

// Close stops the background reaper. Jobs already in the registry stay
// readable; their contexts are not cancelled.
func (r *Jobs) Close() {
	r.once.Do(func() {
		close(r.stop)
		if r.reaper != nil {
			r.reaper.Stop()
		}
	})
}

// Job is one asynchronous run or sweep: a cancellable context, a status
// machine, and an append-only event log. The owner drives it (Publish
// events from engine hooks, then Finish exactly once); observers read
// Snapshot and follow EventsSince.
type Job struct {
	reg  *Jobs
	id   string
	kind JobKind

	ctx    context.Context
	cancel context.CancelFunc

	// All mutable state below is guarded by reg.mu, so snapshots,
	// listings and event appends are mutually consistent.
	specs       []Spec
	status      JobStatus
	errMsg      string
	submitted   time.Time
	finished    *time.Time
	doneSpecs   int
	result      any
	cancelAsked bool

	events  []JobEvent
	changed chan struct{} // closed and replaced on every append
}

// Create registers a running job over the given specs. The job's
// context is derived from base (a server shutting down cancels every
// job) and is additionally cancelled by Cancel or eviction. When the
// registry is full of still-running jobs, Create fails.
func (r *Jobs) Create(base context.Context, kind JobKind, specs []Spec) (*Job, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.jobs) >= r.maxJobs {
		r.evictOldestFinishedLocked(len(r.jobs) - r.maxJobs + 1)
	}
	if len(r.jobs) >= r.maxJobs {
		return nil, fmt.Errorf("sweep: job registry full (%d running jobs)", len(r.jobs))
	}
	r.nextID++
	ctx, cancel := context.WithCancel(base)
	j := &Job{
		reg:       r,
		id:        fmt.Sprintf("%s-%d", kind, r.nextID),
		kind:      kind,
		ctx:       ctx,
		cancel:    cancel,
		specs:     specs,
		status:    JobRunning,
		submitted: r.now(),
		changed:   make(chan struct{}),
	}
	r.jobs[j.id] = j
	r.order = append(r.order, j.id)
	j.publishLocked(JobEvent{Kind: "started", Total: len(specs)})
	return j, nil
}

// Get returns the job with the given id.
func (r *Jobs) Get(id string) (*Job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	return j, ok
}

// Len returns the number of registered jobs.
func (r *Jobs) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.jobs)
}

// List returns snapshots of jobs matching status (""=all), newest
// first, skipping offset matches and returning at most limit (<= 0
// means no limit). total is the match count before pagination.
func (r *Jobs) List(status JobStatus, offset, limit int) (page []JobSnapshot, total int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := len(r.order) - 1; i >= 0; i-- {
		j, ok := r.jobs[r.order[i]]
		if !ok || (status != "" && j.status != status) {
			continue
		}
		if total >= offset && (limit <= 0 || len(page) < limit) {
			page = append(page, j.snapshotLocked())
		}
		total++
	}
	return page, total
}

// Cancel ends the job with the given id: a running job has its context
// cancelled (the simulation actually stops; the job transitions to
// cancelled when its owner calls Finish), a finished job is evicted
// immediately. evicted reports which path was taken.
func (r *Jobs) Cancel(id string) (evicted, ok bool) {
	r.mu.Lock()
	j, ok := r.jobs[id]
	if !ok {
		r.mu.Unlock()
		return false, false
	}
	if j.status.Terminal() {
		r.deleteLocked(id)
		r.evictions.WithLabelValues("cancel").Inc()
		r.mu.Unlock()
		return true, true
	}
	j.cancelAsked = true
	r.mu.Unlock()
	j.cancel() // outside the lock: AfterFunc callbacks may run inline
	return false, true
}

// Reap evicts finished jobs older than the TTL. It runs periodically on
// the background reaper and may be called directly (tests, fake
// clocks). It reports how many jobs it evicted.
func (r *Jobs) Reap() int {
	if r.ttl <= 0 {
		return 0
	}
	cutoff := r.now().Add(-r.ttl)
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for id, j := range r.jobs {
		if j.status.Terminal() && j.finished != nil && j.finished.Before(cutoff) {
			r.deleteLocked(id)
			r.evictions.WithLabelValues("ttl").Inc()
			n++
		}
	}
	return n
}

// deleteLocked removes the job and releases its context resources.
func (r *Jobs) deleteLocked(id string) {
	j, ok := r.jobs[id]
	if !ok {
		return
	}
	delete(r.jobs, id)
	for i, oid := range r.order {
		if oid == id {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	j.cancel()
}

// evictOldestFinishedLocked drops up to n finished jobs, oldest first.
func (r *Jobs) evictOldestFinishedLocked(n int) {
	for _, id := range append([]string(nil), r.order...) {
		if n <= 0 {
			return
		}
		if j := r.jobs[id]; j != nil && j.status.Terminal() {
			r.deleteLocked(id)
			r.evictions.WithLabelValues("capacity").Inc()
			n--
		}
	}
}

// ID returns the job identifier.
func (j *Job) ID() string { return j.id }

// Context is the job's lifetime context: cancelled by Cancel, eviction,
// or cancellation of the base context passed to Create. Run the job's
// simulations under it so cancellation actually stops them.
func (j *Job) Context() context.Context { return j.ctx }

// Publish appends one event to the job's log (stamping Seq and Time)
// and wakes streaming observers. The engine's Event hooks adapt
// directly: job.Publish(sweep.JobEventFrom(ev)).
func (j *Job) Publish(ev JobEvent) {
	j.reg.mu.Lock()
	defer j.reg.mu.Unlock()
	j.publishLocked(ev)
}

func (j *Job) publishLocked(ev JobEvent) {
	ev.Seq = len(j.events)
	ev.Time = j.reg.now()
	if ev.Kind == string(EventFinished) || ev.Kind == string(EventError) {
		j.doneSpecs++
	}
	j.events = append(j.events, ev)
	close(j.changed)
	j.changed = make(chan struct{})
}

// JobEventFrom converts an engine Event into a job log entry.
func JobEventFrom(ev Event) JobEvent {
	if ev.Kind == EventRoundStarted || ev.Kind == EventRoundFinished {
		// Round boundaries carry no spec; their payload is the round
		// shape itself.
		return JobEvent{
			Kind:      string(ev.Kind),
			Total:     ev.Total,
			Round:     ev.Round,
			Rung:      ev.Rung,
			Survivors: ev.Survivors,
			Pruned:    ev.Pruned,
		}
	}
	spec := ev.Spec
	out := JobEvent{
		Kind:    string(ev.Kind),
		Spec:    &spec,
		Index:   ev.Index,
		Done:    ev.Done,
		Total:   ev.Total,
		Peer:    ev.Peer,
		Seconds: ev.Seconds,
	}
	if ev.Kind != EventStarted {
		out.Outcome = ev.Outcome.String()
	}
	if ev.Err != nil {
		out.Error = ev.Err.Error()
	}
	return out
}

// Finish moves the job to its terminal status, stores the result
// payload, and publishes the terminal event ("done", "error", or —
// when the error follows a Cancel — "cancelled"). It must be called
// exactly once, by the goroutine driving the job.
func (j *Job) Finish(result any, err error) {
	j.reg.mu.Lock()
	defer j.reg.mu.Unlock()
	if j.status.Terminal() {
		return
	}
	now := j.reg.now()
	j.finished = &now
	ev := JobEvent{Kind: "done", Done: j.doneSpecs, Total: len(j.specs)}
	switch {
	case err == nil:
		j.status = JobDone
		j.result = result
	case j.cancelAsked || (j.ctx.Err() != nil && errIsCancel(err)):
		j.status = JobCancelled
		j.errMsg = err.Error()
		ev.Kind = "cancelled"
		ev.Error = j.errMsg
	default:
		j.status = JobError
		j.errMsg = err.Error()
		ev.Kind = "error"
		ev.Error = j.errMsg
	}
	j.publishLocked(ev)
}

// errIsCancel reports whether err looks like a context cancellation.
func errIsCancel(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Snapshot returns a consistent copy of the job's visible state.
func (j *Job) Snapshot() JobSnapshot {
	j.reg.mu.Lock()
	defer j.reg.mu.Unlock()
	return j.snapshotLocked()
}

func (j *Job) snapshotLocked() JobSnapshot {
	return JobSnapshot{
		ID:        j.id,
		Kind:      j.kind,
		Specs:     j.specs,
		Status:    j.status,
		Error:     j.errMsg,
		Submitted: j.submitted,
		Finished:  j.finished,
		Done:      j.doneSpecs,
		Total:     len(j.specs),
		Events:    len(j.events),
		Result:    j.result,
	}
}

// EventsSince returns the retained events with Seq >= cursor, a channel
// that is closed on the next append, and whether the job has reached a
// terminal status. A streaming observer loops: drain the slice, and if
// not finished, select on changed (plus its own heartbeat/cancel).
func (j *Job) EventsSince(cursor int) (evs []JobEvent, changed <-chan struct{}, finished bool) {
	j.reg.mu.Lock()
	defer j.reg.mu.Unlock()
	if cursor < len(j.events) {
		evs = j.events[cursor:len(j.events):len(j.events)]
	}
	return evs, j.changed, j.status.Terminal()
}
