package sweep

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCacheDedup hammers the cache with many goroutines per key and
// asserts exactly one underlying build per key (run under -race in CI).
func TestCacheDedup(t *testing.T) {
	const (
		keys       = 8
		goroutines = 32 // per key
	)
	c := NewCache[int](4)
	var builds [keys]atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < keys; k++ {
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				v, err := c.Do(context.Background(), Key(fmt.Sprintf("k%d", k)), func(context.Context) (int, error) {
					builds[k].Add(1)
					time.Sleep(2 * time.Millisecond) // widen the race window
					return 100 + k, nil
				})
				if err != nil {
					t.Errorf("key %d: %v", k, err)
				}
				if v != 100+k {
					t.Errorf("key %d: got %d", k, v)
				}
			}(k)
		}
	}
	wg.Wait()
	for k := range builds {
		if n := builds[k].Load(); n != 1 {
			t.Errorf("key %d built %d times, want exactly 1", k, n)
		}
	}
	st := c.Stats()
	if st.Builds != keys {
		t.Errorf("stats.Builds = %d, want %d", st.Builds, keys)
	}
	if st.Hits+st.Waits != keys*(goroutines-1) {
		t.Errorf("hits+waits = %d, want %d", st.Hits+st.Waits, keys*(goroutines-1))
	}
	if st.Entries != keys {
		t.Errorf("entries = %d, want %d", st.Entries, keys)
	}
}

// TestCacheFollowerCancel checks a follower can abandon a slow build
// without affecting the leader.
func TestCacheFollowerCancel(t *testing.T) {
	c := NewCache[int](1)
	release := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		v, err := c.Do(context.Background(), "slow", func(context.Context) (int, error) {
			<-release
			return 7, nil
		})
		if err != nil || v != 7 {
			t.Errorf("leader: v=%d err=%v", v, err)
		}
	}()
	// Wait until the leader's flight is registered.
	for c.Stats().Builds == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(5 * time.Millisecond); cancel() }()
	if _, err := c.Do(ctx, "slow", func(context.Context) (int, error) { return 0, nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("follower err = %v, want context.Canceled", err)
	}
	close(release)
	<-leaderDone
	if v, ok := c.Get("slow"); !ok || v != 7 {
		t.Fatalf("leader result lost: v=%d ok=%v", v, ok)
	}
}

// TestCacheLeaderCancelDoesNotPoisonFollower: when the leader's own ctx
// cancels mid-build, a live follower must take over leadership and get
// the value rather than inherit the leader's cancellation.
func TestCacheLeaderCancelDoesNotPoisonFollower(t *testing.T) {
	c := NewCache[int](2)
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	building := make(chan struct{}, 2)
	go func() {
		_, err := c.Do(leaderCtx, "k", func(ctx context.Context) (int, error) {
			building <- struct{}{}
			<-ctx.Done()
			return 0, ctx.Err()
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("leader err = %v, want context.Canceled", err)
		}
	}()
	<-building // leader is mid-build

	followerDone := make(chan error, 1)
	var followerVal int
	go func() {
		v, err := c.Do(context.Background(), "k", func(ctx context.Context) (int, error) {
			building <- struct{}{}
			return 99, nil
		})
		followerVal = v
		followerDone <- err
	}()
	// Wait for the follower to join the flight, then kill the leader.
	for c.Stats().Waits == 0 {
		time.Sleep(time.Millisecond)
	}
	cancelLeader()
	if err := <-followerDone; err != nil {
		t.Fatalf("follower inherited leader's cancellation: %v", err)
	}
	if followerVal != 99 {
		t.Fatalf("follower value = %d, want 99 (from its own re-build)", followerVal)
	}
	if v, ok := c.Get("k"); !ok || v != 99 {
		t.Fatalf("value not cached after takeover: %d, %v", v, ok)
	}
}

// TestCacheBuildErrorNotCached checks failed builds surface their error
// and retry on the next Do.
func TestCacheBuildErrorNotCached(t *testing.T) {
	c := NewCache[int](1)
	boom := errors.New("boom")
	calls := 0
	build := func(context.Context) (int, error) {
		calls++
		if calls == 1 {
			return 0, boom
		}
		return 42, nil
	}
	if _, err := c.Do(context.Background(), "k", build); !errors.Is(err, boom) {
		t.Fatalf("first err = %v, want boom", err)
	}
	v, err := c.Do(context.Background(), "k", build)
	if err != nil || v != 42 {
		t.Fatalf("retry: v=%d err=%v", v, err)
	}
	if calls != 2 {
		t.Fatalf("build calls = %d, want 2", calls)
	}
}

// TestCachePersistence round-trips entries through Save/Load.
func TestCachePersistence(t *testing.T) {
	c := NewCache[int](1)
	for i := 0; i < 10; i++ {
		c.Put(Key(fmt.Sprintf("k%d", i)), i*i)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	c2 := NewCache[int](1)
	if err := c2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if c2.Len() != 10 {
		t.Fatalf("loaded %d entries, want 10", c2.Len())
	}
	for i := 0; i < 10; i++ {
		if v, ok := c2.Get(Key(fmt.Sprintf("k%d", i))); !ok || v != i*i {
			t.Fatalf("k%d: v=%d ok=%v", i, v, ok)
		}
	}
	if err := c2.Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("junk accepted")
	}
}

// TestCacheDefaultWorkers checks the GOMAXPROCS fallback.
func TestCacheDefaultWorkers(t *testing.T) {
	if NewCache[int](0).Workers() < 1 {
		t.Fatal("no workers")
	}
	if w := NewCache[int](3).Workers(); w != 3 {
		t.Fatalf("workers = %d, want 3", w)
	}
}
