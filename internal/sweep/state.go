package sweep

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"dramtherm/internal/sim"
	"dramtherm/internal/sweep/prefix"
	"dramtherm/internal/trace"
)

// runRecord is the gob payload of one recordRun frame: a completed
// level-2 run under its canonical cache key.
type runRecord struct {
	Key    Key
	Result sim.MEMSpotResult
}

// traceRecord is the gob payload of one recordTrace frame. BWCapGBps may
// be +Inf; gob round-trips IEEE bit patterns, so no sentinel is needed.
type traceRecord struct {
	Rates trace.Rates
}

// EnableSegmentLog makes the engine's warm state durable under crashes:
// it opens (or creates) the append-only segment log in dir, replays it
// into the run cache and the level-1 trace store, and registers hooks so
// every freshly built run and trace record is appended as it completes —
// there is no shutdown flush to lose. compactEvery > 0 starts a
// background compactor folding the log into one snapshot segment on that
// period (stopped by Close); <= 0 leaves compaction to CompactState
// calls. Call once, before the engine is shared across goroutines.
func (e *Engine) EnableSegmentLog(dir string, compactEvery time.Duration) error {
	if e.seglog != nil {
		return errors.New("sweep: segment log already enabled")
	}
	l, err := OpenSegmentLog(dir)
	if err != nil {
		return err
	}
	if err := e.replayState(l); err != nil {
		l.Close()
		return err
	}
	e.seglog = l
	e.cache.OnInsert(func(k Key, v sim.MEMSpotResult) {
		e.appendRun(k, v)
	})
	if e.prefix != nil {
		e.prefix.OnGroupComplete(e.appendCheckpoint)
	}
	e.sys.Store().SetOnBuild(func(r trace.Rates) {
		var buf bytes.Buffer
		if gob.NewEncoder(&buf).Encode(traceRecord{Rates: r}) == nil {
			if e.seglog.Append(recordTrace, buf.Bytes()) != nil {
				e.appendErrs.Add(1)
			}
		} else {
			e.appendErrs.Add(1)
		}
	})
	if compactEvery > 0 {
		e.compactStop = make(chan struct{})
		e.compactDone = make(chan struct{})
		go e.compactLoop(compactEvery)
	}
	return nil
}

// appendRun frames one completed run into the segment log.
func (e *Engine) appendRun(k Key, v sim.MEMSpotResult) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(runRecord{Key: k, Result: v}); err != nil {
		e.appendErrs.Add(1)
		return
	}
	if err := e.seglog.Append(recordRun, buf.Bytes()); err != nil {
		e.appendErrs.Add(1)
	}
}

// replayState folds every log record into the in-memory layers. Inserts
// go through Put, which does not re-trigger the append hooks.
func (e *Engine) replayState(l *SegmentLog) error {
	return l.Replay(func(kind byte, payload []byte) error {
		switch kind {
		case recordRun:
			var rec runRecord
			if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
				return fmt.Errorf("sweep: replaying run record: %w", err)
			}
			e.cache.Put(rec.Key, rec.Result)
		case recordTrace:
			var rec traceRecord
			if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
				return fmt.Errorf("sweep: replaying trace record: %w", err)
			}
			e.sys.Store().Put(rec.Rates)
		case recordCheckpoint:
			// Checkpoints are droppable: a record that no longer decodes
			// or validates costs one cold replay, not a failed startup.
			if e.prefix == nil {
				break
			}
			if rec, err := decodeCheckpointRecord(payload); err == nil {
				e.prefix.Import(rec)
			}
		}
		return nil
	})
}

// compactLoop periodically folds the log; only runs between ticks that
// saw fresh appends, so an idle engine does not churn disk.
func (e *Engine) compactLoop(every time.Duration) {
	defer close(e.compactDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-e.compactStop:
			return
		case <-t.C:
			if st := e.seglog.Stats(); st.Appends == 0 && st.Segments <= 1 {
				continue
			}
			if err := e.CompactState(); err != nil {
				e.appendErrs.Add(1)
			}
		}
	}
}

// CompactState folds the entire warm state (run cache + trace store)
// into one fresh snapshot segment, retiring the older segments. Requires
// EnableSegmentLog.
func (e *Engine) CompactState() error {
	if e.seglog == nil {
		return errors.New("sweep: segment log not enabled")
	}
	return e.seglog.Compact(func(emit func(kind byte, payload []byte) error) error {
		var err error
		e.cache.Range(func(k Key, v sim.MEMSpotResult) bool {
			var buf bytes.Buffer
			if err = gob.NewEncoder(&buf).Encode(runRecord{Key: k, Result: v}); err != nil {
				return false
			}
			err = emit(recordRun, buf.Bytes())
			return err == nil
		})
		if err != nil {
			return err
		}
		e.sys.Store().Range(func(r trace.Rates) bool {
			var buf bytes.Buffer
			if err = gob.NewEncoder(&buf).Encode(traceRecord{Rates: r}); err != nil {
				return false
			}
			err = emit(recordTrace, buf.Bytes())
			return err == nil
		})
		if err != nil {
			return err
		}
		if e.prefix != nil {
			e.prefix.Export(func(rec prefix.GroupRecord) bool {
				payload, encErr := encodeCheckpointRecord(rec)
				if encErr != nil {
					err = encErr
					return false
				}
				if len(payload) > maxCheckpointRecordBytes {
					return true // skip, as appendCheckpoint would
				}
				err = emit(recordCheckpoint, payload)
				return err == nil
			})
		}
		return err
	})
}

// Close stops the background compactor and closes the segment log. Safe
// to call on engines without one, and more than once.
func (e *Engine) Close() error {
	if e.compactStop != nil {
		close(e.compactStop)
		<-e.compactDone
		e.compactStop = nil
	}
	if e.seglog == nil {
		return nil
	}
	return e.seglog.Close()
}

// StateStats describes the durable-state layer for healthz.
type StateStats struct {
	SegLogStats
	// Dir is the segment-log directory.
	Dir string `json:"dir"`
	// AppendErrors counts hook-side encode/append failures — state that
	// stayed warm in memory but did not persist.
	AppendErrors int64 `json:"append_errors,omitempty"`
}

// StateStats reports the segment log's shape; ok is false when no
// segment log is enabled.
func (e *Engine) StateStats() (StateStats, bool) {
	if e.seglog == nil {
		return StateStats{}, false
	}
	return StateStats{
		SegLogStats:  e.seglog.Stats(),
		Dir:          e.seglog.Dir(),
		AppendErrors: e.appendErrs.Load(),
	}, true
}

// ImportResult installs an externally produced result (a replica or a
// handed-off cache entry) under its canonical key, persisting it when a
// segment log is enabled. Keys minted under a different configuration
// digest are rejected — a replica from a mis-configured peer must not
// shadow this node's own results. Returns false for rejected or
// already-present keys (the import is idempotent).
func (e *Engine) ImportResult(key Key, res sim.MEMSpotResult) bool {
	if !strings.HasPrefix(string(key), e.digest+"|") {
		return false
	}
	if _, ok := e.cache.Get(key); ok {
		return false
	}
	e.cache.Put(key, res)
	if e.seglog != nil {
		e.appendRun(key, res)
	}
	return true
}

// HasResult reports whether key is already cached.
func (e *Engine) HasResult(key Key) bool {
	_, ok := e.cache.Get(key)
	return ok
}

// Range iterates the completed run cache (see Cache.Range) — the export
// side of replication and handoff.
func (e *Engine) Range(fn func(Key, sim.MEMSpotResult) bool) { e.cache.Range(fn) }

// ImportLegacyState reads the pre-versioning state blob (two gob-framed
// byte blobs — run cache map, then trace records — under one outer gob
// stream) and folds it into the in-memory layers. It does not persist:
// callers migrate by following up with CompactState.
func (e *Engine) ImportLegacyState(r io.Reader) error {
	dec := gob.NewDecoder(r)
	var cacheBlob, traceBlob []byte
	if err := dec.Decode(&cacheBlob); err != nil {
		return fmt.Errorf("sweep: legacy state: %w", err)
	}
	if err := dec.Decode(&traceBlob); err != nil {
		return fmt.Errorf("sweep: legacy state: %w", err)
	}
	if err := e.cache.Load(bytes.NewReader(cacheBlob)); err != nil {
		return err
	}
	return e.sys.Store().Load(bytes.NewReader(traceBlob))
}

// migratedSuffix marks a legacy state file that has been folded into a
// segment log, so it imports exactly once.
const migratedSuffix = ".migrated"

// MigrateLegacyStateFile imports the legacy gob state file at path into
// the enabled segment log, compacts so every imported record is durable,
// and renames the file aside (path + ".migrated") so it never imports
// twice. A missing file — including one already renamed by a previous
// migration — is a cold start: (false, nil). A file that carries the
// versioned state magic is not legacy: that is a segment file passed as
// -state, reported loudly instead of mis-parsed as gob.
func (e *Engine) MigrateLegacyStateFile(path string) (migrated bool, err error) {
	if e.seglog == nil {
		return false, errors.New("sweep: segment log not enabled")
	}
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	var head [8]byte
	if n, _ := io.ReadFull(f, head[:]); n == len(head) && head == stateMagic {
		f.Close()
		return false, fmt.Errorf("sweep: %s is a versioned state segment, not a legacy blob — pass its directory as the segment dir instead", path)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return false, err
	}
	err = e.ImportLegacyState(f)
	f.Close()
	if err != nil {
		return false, err
	}
	if err := e.CompactState(); err != nil {
		return false, err
	}
	if err := os.Rename(path, path+migratedSuffix); err != nil {
		return false, fmt.Errorf("sweep: marking %s migrated: %w", path, err)
	}
	return true, nil
}
