package sweep

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"dramtherm/internal/core"
	"dramtherm/internal/fbconfig"
	"dramtherm/internal/sim"
	"dramtherm/internal/sweep/prefix"
	"dramtherm/internal/workload"
)

// RunFunc executes one resolved level-2 run. The default is
// core.System.RunCtx; tests substitute counting fakes via SetRunFunc.
type RunFunc func(ctx context.Context, spec core.RunSpec) (sim.MEMSpotResult, error)

// RunInfo describes how a run was ultimately served: the cache outcome
// plus, for runs dispatched through a SpecBackend, the identity of the
// cluster member that executed it.
type RunInfo struct {
	// Outcome is how the serving node obtained the result. With a
	// backend set it is the backend's outcome (a Hit here means the
	// remote peer served its own cached entry).
	Outcome Outcome
	// Peer identifies who executed the run: a remote peer id, "local"
	// for a backend's local fallback, or empty for plain local engines
	// and for local cache hits/joins.
	Peer string
}

// SpecBackend executes one validated spec on behalf of the engine — the
// seam a distributed executor implements (see internal/sweep/remote).
// The engine still deduplicates through its local cache; the backend is
// only invoked on the leader path, once per distinct key, and its
// RunInfo replaces the engine's own Built outcome so observers see how
// the run was really served (built/hit/joined on which peer).
type SpecBackend interface {
	RunSpec(ctx context.Context, spec Spec) (sim.MEMSpotResult, RunInfo, error)
}

// ErrRunLocal is the sentinel a BatchBackend delivers for specs no peer
// could serve: instead of executing the run itself (which would bypass
// the worker pool), the backend hands it back and the engine executes it
// locally inside the leader's pool slot — exactly where the
// spec-at-a-time local fallback runs.
var ErrRunLocal = errors.New("sweep: no peer available, execute locally")

// localPeer is the RunInfo.Peer reported for batch specs the engine
// executed itself after an ErrRunLocal delivery. It matches the remote
// backend's spec-at-a-time fallback marker.
const localPeer = "local"

// BatchBackend is the grid-at-a-time extension of SpecBackend: Sweep
// hands it every distinct uncached spec of a grid in one call instead of
// dispatching spec-at-a-time, so a distributed implementation can send
// each cluster peer its whole shard in a single request. deliver must be
// called exactly once per spec index, from any goroutine, as outcomes
// become available; RunSpecs returns when every index has been delivered
// or ctx is done. A spec no peer can serve is delivered with ErrRunLocal
// (the engine runs it on its own pool); any other delivered error is
// terminal for that spec.
type BatchBackend interface {
	SpecBackend
	RunSpecs(ctx context.Context, specs []Spec, deliver func(i int, res sim.MEMSpotResult, info RunInfo, err error))
}

// Engine serves level-2 runs from a deduplicating cache over one
// core.System. It is safe for concurrent use by any number of callers;
// actual simulation work is bounded by the cache's worker pool.
type Engine struct {
	sys      *core.System
	digest   string
	cache    *Cache[sim.MEMSpotResult]
	run      RunFunc
	backend  SpecBackend
	batch    BatchBackend
	policies map[string]bool

	// Prefix sharing (EnablePrefixSharing): nil means cold replay for
	// every spec. runCustom records that SetRunFunc replaced the default
	// local runner — prefix sharing then steps aside, because it drives
	// the simulator directly rather than through the run function.
	prefix    *prefix.Sharer
	runCustom bool

	// Durable-state machinery (state.go); all nil/zero until
	// EnableSegmentLog.
	seglog      *SegmentLog
	compactStop chan struct{}
	compactDone chan struct{}
	appendErrs  atomic.Int64
}

// NewEngine builds an engine over sys with the given worker-pool width
// (<= 0 selects GOMAXPROCS).
func NewEngine(sys *core.System, workers int) *Engine {
	e := &Engine{
		sys:      sys,
		digest:   sys.ConfigDigest(),
		cache:    NewCache[sim.MEMSpotResult](workers),
		policies: make(map[string]bool),
	}
	for _, n := range core.PolicyNames() {
		e.policies[n] = true
	}
	e.run = sys.RunCtx
	return e
}

// System returns the underlying simulation system.
func (e *Engine) System() *core.System { return e.sys }

// Workers returns the simulation worker-pool width.
func (e *Engine) Workers() int { return e.cache.Workers() }

// Stats returns run-cache traffic counters.
func (e *Engine) Stats() Stats { return e.cache.Stats() }

// SetRunFunc replaces the local run function. It must be called before
// the engine is shared across goroutines. An engine with a custom run
// function executes every spec through it — prefix sharing, which
// drives the simulator directly, is bypassed.
func (e *Engine) SetRunFunc(fn RunFunc) {
	e.run = fn
	e.runCustom = true
}

// EnablePrefixSharing turns on prefix-state checkpointing across DTM
// policy slices: specs that differ only in policy form a group whose
// first run leads (recording decisions, checkpointing state at decision
// boundaries) and whose later runs resume from the deepest checkpoint
// before their first divergent decision — or reuse the leader's result
// outright when the decision logs match in full. Results are
// bit-identical to cold replay (enforced by internal/simtest's
// divergence differential suite). It must be called before the engine
// is shared across goroutines; call it before EnableSegmentLog so
// persisted checkpoint records replay into the sharer.
func (e *Engine) EnablePrefixSharing() {
	if e.prefix != nil {
		return
	}
	e.prefix = prefix.New(e.sys)
	if e.seglog != nil {
		e.prefix.OnGroupComplete(e.appendCheckpoint)
	}
}

// PrefixStats returns the prefix sharer's counters and whether sharing
// is enabled.
func (e *Engine) PrefixStats() (prefix.Stats, bool) {
	if e.prefix == nil {
		return prefix.Stats{}, false
	}
	return e.prefix.Stats(), true
}

// sliceKey is the group identity for prefix sharing: the spec's
// canonical key with the policy wildcarded, so specs identical except
// for policy land in the same group. normalize never produces "*", so
// slice keys cannot collide with real spec keys.
func (e *Engine) sliceKey(spec Spec) string {
	spec = spec.normalize()
	spec.Policy = "*"
	return string(spec.Key(e.digest))
}

// SetBackend routes cache misses through b instead of local execution
// (cluster mode). It must be called before the engine is shared across
// goroutines. Backends that need a local fallback should capture Exec.
// Single runs always dispatch spec-at-a-time; use SetBatchBackend to
// additionally batch whole sweeps.
func (e *Engine) SetBackend(b SpecBackend) {
	e.backend = b
	e.batch = nil
}

// SetBatchBackend is SetBackend plus grid batching: Sweep plans each
// grid's distinct uncached specs into one RunSpecs call (one request per
// cluster peer) while single runs keep dispatching through RunSpec. It
// must be called before the engine is shared across goroutines.
func (e *Engine) SetBatchBackend(b BatchBackend) {
	e.backend = b
	e.batch = b
}

// Key canonicalizes the spec under this engine's configuration digest —
// the identity the run cache and the remote backend's consistent-hash
// ring both shard on.
func (e *Engine) Key(spec Spec) Key { return spec.Key(e.digest) }

// Validate checks the spec without constructing any run state: name
// lookups plus the limits-override shape. A Limits override must be
// complete — the simulator treats AMBTDP==0 as "no override", so a
// partial override would be silently ignored while still producing a
// distinct cache key.
func (e *Engine) Validate(spec Spec) error {
	spec = spec.normalize()
	if _, err := workload.MixByName(spec.Mix); err != nil {
		return err
	}
	if !e.policies[spec.Policy] {
		return fmt.Errorf("core: unknown policy %q", spec.Policy)
	}
	if _, err := fbconfig.CoolingByName(spec.Cooling); err != nil {
		return err
	}
	if _, err := spec.modelKind(); err != nil {
		return err
	}
	if lim := spec.Limits; lim != (fbconfig.ThermalLimits{}) &&
		(lim.AMBTDP == 0 || lim.DRAMTDP == 0 || lim.AMBTRP == 0 || lim.DRAMTRP == 0) {
		return fmt.Errorf("sweep: partial limits override %+v: all four of AMBTDP, DRAMTDP, AMBTRP, DRAMTRP must be set", lim)
	}
	// normalize has already mapped 0 to 1, so anything non-positive (or
	// non-finite) here was an explicit bad value.
	if !(spec.InstrScale > 0) || math.IsInf(spec.InstrScale, 1) {
		return fmt.Errorf("sweep: instr_scale %g out of range: must be a finite positive fidelity multiplier", spec.InstrScale)
	}
	return nil
}

// Resolve validates the spec and binds it to live objects: the workload
// mix, a fresh policy (policies are stateful, so every call constructs a
// new one), and the cooling column.
func (e *Engine) Resolve(spec Spec) (core.RunSpec, error) {
	if err := e.Validate(spec); err != nil {
		return core.RunSpec{}, err
	}
	spec = spec.normalize()
	mix, err := workload.MixByName(spec.Mix)
	if err != nil {
		return core.RunSpec{}, err
	}
	cool, err := fbconfig.CoolingByName(spec.Cooling)
	if err != nil {
		return core.RunSpec{}, err
	}
	model, err := spec.modelKind()
	if err != nil {
		return core.RunSpec{}, err
	}
	lim := e.sys.Config().Limits
	if spec.Limits.AMBTDP != 0 {
		lim = spec.Limits
	}
	p, err := e.sys.NewPolicyFor(spec.Policy, lim)
	if err != nil {
		return core.RunSpec{}, err
	}
	return core.RunSpec{
		Mix:        mix,
		Policy:     p,
		Cooling:    cool,
		Model:      model,
		PsiXi:      spec.PsiXi,
		Interval:   spec.Interval,
		Limits:     spec.Limits,
		InstrScale: spec.InstrScale,
	}, nil
}

// Run executes the spec, deduplicating against identical in-flight and
// completed runs. The returned result is shared with other callers and
// must be treated as read-only.
func (e *Engine) Run(ctx context.Context, spec Spec) (sim.MEMSpotResult, error) {
	res, _, err := e.RunTraced(ctx, spec)
	return res, err
}

// RunTraced is Run plus the cache Outcome: whether this call simulated,
// hit a completed entry, or joined an identical in-flight run.
func (e *Engine) RunTraced(ctx context.Context, spec Spec) (sim.MEMSpotResult, Outcome, error) {
	res, info, err := e.RunDetailed(ctx, spec)
	return res, info.Outcome, err
}

// Exec executes the spec locally, uncached: resolve then run. It is the
// raw unit of work behind the cache — and the local-fallback hook a
// SpecBackend uses when its peer ring is empty. Most callers want Run.
func (e *Engine) Exec(ctx context.Context, spec Spec) (sim.MEMSpotResult, error) {
	rs, err := e.Resolve(spec) // fresh policy for this execution
	if err != nil {
		return sim.MEMSpotResult{}, err
	}
	return e.run(ctx, rs)
}

// RunDetailed is Run plus the full RunInfo: the outcome and, in cluster
// mode, the peer that executed the run.
func (e *Engine) RunDetailed(ctx context.Context, spec Spec) (sim.MEMSpotResult, RunInfo, error) {
	// Validate eagerly (without building run state) so bad specs fail
	// fast even on the cache hit path, and so resolution inside the
	// builder cannot fail.
	if err := e.Validate(spec); err != nil {
		return sim.MEMSpotResult{}, RunInfo{}, err
	}
	// The leader runs the builder synchronously inside DoTraced, so the
	// captured backend info is safe to read whenever out == Built.
	var remote RunInfo
	res, out, err := e.cache.DoTraced(ctx, spec.Key(e.digest), func(ctx context.Context) (sim.MEMSpotResult, error) {
		if e.backend == nil {
			if e.prefix != nil && !e.runCustom {
				return e.prefix.Run(ctx, e.sliceKey(spec), func() (core.RunSpec, error) {
					return e.Resolve(spec)
				})
			}
			return e.Exec(ctx, spec)
		}
		r, info, err := e.backend.RunSpec(ctx, spec)
		remote = info
		return r, err
	})
	info := RunInfo{Outcome: out}
	if e.backend != nil && out == Built {
		info = remote
	}
	return res, info, err
}

// RunObserved executes the spec like Run while reporting its lifecycle
// to onEvent: a started event before execution and a finished or error
// event after, tagged with how the run was served. onEvent may be nil.
func (e *Engine) RunObserved(ctx context.Context, spec Spec, onEvent func(Event)) (sim.MEMSpotResult, error) {
	if onEvent == nil {
		return e.Run(ctx, spec)
	}
	onEvent(Event{Kind: EventStarted, Spec: spec, Total: 1})
	res, info, err := e.RunDetailed(ctx, spec)
	if err != nil {
		onEvent(Event{Kind: EventError, Spec: spec, Done: 1, Total: 1, Outcome: info.Outcome, Peer: info.Peer, Err: err})
		return res, err
	}
	onEvent(Event{Kind: EventFinished, Spec: spec, Done: 1, Total: 1, Outcome: info.Outcome, Peer: info.Peer, Seconds: res.Seconds})
	return res, nil
}

// Normalized executes the spec and its No-limit baseline (same mix,
// cooling, model and psi-xi, default interval and limits) and returns
// runtime(spec)/runtime(baseline) — the unit of the paper's figures.
func (e *Engine) Normalized(ctx context.Context, spec Spec) (float64, error) {
	res, err := e.Run(ctx, spec)
	if err != nil {
		return 0, err
	}
	base, err := e.Run(ctx, e.BaselineSpec(spec))
	if err != nil {
		return 0, err
	}
	if base.Seconds == 0 {
		return 0, fmt.Errorf("sweep: zero-length baseline for %s", spec)
	}
	return res.Seconds / base.Seconds, nil
}

// BaselineSpec returns the No-limit normalization partner of spec. The
// baseline shares the spec's fidelity rung, so a low-fidelity search
// round normalizes against an equally cheap baseline.
func (e *Engine) BaselineSpec(spec Spec) Spec {
	return Spec{
		Mix:        spec.Mix,
		Policy:     "No-limit",
		Cooling:    spec.Cooling,
		Model:      spec.Model,
		PsiXi:      spec.PsiXi,
		InstrScale: spec.InstrScale,
	}
}

// Persistence lives in state.go: the engine appends completed runs and
// level-1 trace records to a crash-safe segment log (EnableSegmentLog)
// instead of rewriting a monolithic blob at shutdown; legacy blobs
// migrate once through ImportLegacyState.
