package sweep

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"dramtherm/internal/core"
	"dramtherm/internal/fbconfig"
	"dramtherm/internal/sim"
)

// testEngine returns an engine whose run backend is a counting fake, so
// orchestration tests stay fast and can assert on build counts.
func testEngine(workers int, builds *atomic.Int64, delay time.Duration) *Engine {
	e := NewEngine(core.NewSystem(core.DefaultConfig()), workers)
	e.SetRunFunc(func(ctx context.Context, rs core.RunSpec) (sim.MEMSpotResult, error) {
		builds.Add(1)
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return sim.MEMSpotResult{}, ctx.Err()
		}
		secs := 100.0
		if rs.Policy.Name() != "No-limit" {
			secs = 150
		}
		return sim.MEMSpotResult{Seconds: secs, Completed: 1}, nil
	})
	return e
}

func TestEngineRejectsBadSpecs(t *testing.T) {
	var n atomic.Int64
	e := testEngine(1, &n, 0)
	for _, s := range []Spec{
		{Mix: "W99"},
		{Mix: "W1", Policy: "DTM-NOPE"},
		{Mix: "W1", Cooling: "WATERCOOLED"},
		{Mix: "W1", Model: "imaginary"},
		// Partial limits would be silently ignored by the simulator
		// while still keyed as distinct — must be rejected.
		{Mix: "W1", Limits: fbconfig.ThermalLimits{DRAMTRP: 81}},
		{Mix: "W1", Limits: fbconfig.ThermalLimits{AMBTDP: 110, DRAMTDP: 85}},
	} {
		if _, err := e.Run(context.Background(), s); err == nil {
			t.Errorf("spec %v accepted", s)
		}
	}
	if n.Load() != 0 {
		t.Fatalf("bad specs reached the backend %d times", n.Load())
	}
}

// TestEngineSweepDedup submits a grid with duplicated specs concurrently
// and asserts one backend run per unique key.
func TestEngineSweepDedup(t *testing.T) {
	var n atomic.Int64
	e := testEngine(8, &n, 2*time.Millisecond)
	grid := Grid{
		Mixes:    []string{"W1", "W2"},
		Policies: []string{"No-limit", "DTM-TS", "DTM-BW", "DTM-ACG"},
	}
	specs := grid.Expand() // 8 unique
	specs = append(specs, specs...)
	specs = append(specs, specs...) // 32 jobs, 8 unique

	var progress atomic.Int64
	res, err := e.Sweep(context.Background(), specs, Options{
		OnProgress: func(p Progress) {
			progress.Add(1)
			if p.Total != len(specs) {
				t.Errorf("progress total %d, want %d", p.Total, len(specs))
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n.Load() != 8 {
		t.Fatalf("backend ran %d times, want 8 (dedup failed)", n.Load())
	}
	if progress.Load() != int64(len(specs)) {
		t.Fatalf("progress fired %d times, want %d", progress.Load(), len(specs))
	}
	for i, r := range res.Results {
		want := 150.0
		if res.Specs[i].normalize().Policy == "No-limit" {
			want = 100
		}
		if r.Seconds != want {
			t.Fatalf("job %d: seconds=%v want %v", i, r.Seconds, want)
		}
	}
}

func TestEngineNormalized(t *testing.T) {
	var n atomic.Int64
	e := testEngine(4, &n, 0)
	res, err := e.Sweep(context.Background(),
		Grid{Mixes: []string{"W1"}, Policies: []string{"DTM-TS"}}.Expand(),
		Options{Normalize: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Norms[0] != 1.5 {
		t.Fatalf("norm = %v, want 1.5", res.Norms[0])
	}
	// Table renders the normalized value.
	tab := res.Table("sweep")
	if !contains(tab.String(), "1.500") {
		t.Fatalf("table missing norm:\n%s", tab)
	}
}

// TestEngineSweepCancel cancels mid-sweep and checks prompt teardown.
func TestEngineSweepCancel(t *testing.T) {
	var n atomic.Int64
	e := testEngine(2, &n, 500*time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(10 * time.Millisecond); cancel() }()
	start := time.Now()
	_, err := e.Sweep(ctx, Grid{Mixes: AllMixes(), Policies: []string{"No-limit", "DTM-TS"}}.Expand(), Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if wall := time.Since(start); wall > 5*time.Second {
		t.Fatalf("cancellation took %v", wall)
	}
}

// TestEngineSweepFirstErrorCancels checks a failing job aborts the rest.
func TestEngineSweepFirstErrorCancels(t *testing.T) {
	e := NewEngine(core.NewSystem(core.DefaultConfig()), 2)
	boom := errors.New("boom")
	e.SetRunFunc(func(ctx context.Context, rs core.RunSpec) (sim.MEMSpotResult, error) {
		if rs.Mix.Name == "W3" {
			return sim.MEMSpotResult{}, boom
		}
		select {
		case <-time.After(2 * time.Second):
		case <-ctx.Done():
			return sim.MEMSpotResult{}, ctx.Err()
		}
		return sim.MEMSpotResult{Seconds: 1}, nil
	})
	start := time.Now()
	_, err := e.Sweep(context.Background(),
		Grid{Mixes: []string{"W1", "W2", "W3", "W4"}}.Expand(), Options{})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if wall := time.Since(start); wall > 5*time.Second {
		t.Fatalf("error propagation took %v", wall)
	}
}

// tinyConfig is a reduced-scale real-simulation configuration shared by
// the determinism test and benchmarks that need genuine runs.
func tinyConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Replicas = 1
	cfg.InstrScale = 0.01
	return cfg
}

// TestEngineMatchesSerialRun runs a real (reduced-scale) simulation
// through the engine and through core.System directly and asserts
// identical results — the engine must be a pure cache over the serial
// path.
func TestEngineMatchesSerialRun(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation skipped in -short mode")
	}
	spec := Spec{Mix: "W1", Policy: "DTM-TS"}

	e := NewEngine(core.NewSystem(tinyConfig()), 2)
	got, err := e.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	// Second call must be a cache hit sharing the identical value.
	again, err := e.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seconds != again.Seconds || e.Stats().Builds != 1 {
		t.Fatalf("second run not served from cache (builds=%d)", e.Stats().Builds)
	}

	serial := core.NewSystem(tinyConfig())
	p, err := serial.NewPolicy("DTM-TS")
	if err != nil {
		t.Fatal(err)
	}
	mixRS, err := e.Resolve(spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := serial.Run(core.RunSpec{Mix: mixRS.Mix, Policy: p, Cooling: fbconfig.CoolingAOHS15, Model: core.Isolated})
	if err != nil {
		t.Fatal(err)
	}
	if got.Seconds != want.Seconds || got.ReadGB != want.ReadGB || got.MaxAMB != want.MaxAMB {
		t.Fatalf("engine result diverges from serial run:\nengine %+v\nserial %+v", got, want)
	}
}

// TestEngineStatePersistence round-trips run cache + trace store through
// the segment log and checks a rerun does no new work.
func TestEngineStatePersistence(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation skipped in -short mode")
	}
	dir := t.TempDir()
	spec := Spec{Mix: "W5"}
	e := NewEngine(core.NewSystem(tinyConfig()), 2)
	if err := e.EnableSegmentLog(dir, 0); err != nil {
		t.Fatal(err)
	}
	want, err := e.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	// No shutdown flush: records were appended as the run completed, so
	// closing is only a courtesy sync.
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := NewEngine(core.NewSystem(tinyConfig()), 2)
	if err := e2.EnableSegmentLog(dir, 0); err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if e2.System().Store().Len() == 0 {
		t.Fatal("trace store state not restored")
	}
	got, err := e2.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seconds != want.Seconds {
		t.Fatalf("restored run differs: %v != %v", got.Seconds, want.Seconds)
	}
	if st := e2.Stats(); st.Builds != 0 || st.Hits != 1 {
		t.Fatalf("restored engine did new work: %+v", st)
	}
}

// TestRunCtxCancelled checks the simulation loop honours a pre-cancelled
// context without doing level-1 work.
func TestRunCtxCancelled(t *testing.T) {
	e := NewEngine(core.NewSystem(tinyConfig()), 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Run(ctx, Spec{Mix: "W1"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
