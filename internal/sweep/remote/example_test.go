package remote_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"dramtherm/internal/sim"
	"dramtherm/internal/sweep"
	"dramtherm/internal/sweep/remote"
)

// A Backend fans specs out to dramthermd peers and reports which peer
// served each run with what cache outcome. Here the single "peer" is a
// stub /v1/exec handler, so the output is deterministic; in production
// the peers are real dramthermd instances and Config.Key/Config.Local
// come from the coordinating engine (Engine.Key, Engine.Exec).
func ExampleBackend() {
	worker := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(remote.ExecResponse{
			Outcome: "hit",
			Result:  sim.MEMSpotResult{Seconds: 412},
		})
	}))
	defer worker.Close()

	backend, err := remote.New(remote.Config{
		Peers:      []remote.Peer{{ID: "worker-1", URL: worker.URL}},
		Key:        func(s sweep.Spec) sweep.Key { return s.Key("example-config") },
		ProbeEvery: -1, // no background prober in this example
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer backend.Close()

	spec := sweep.Spec{Mix: "W1", Policy: "DTM-ACG"}
	fmt.Println("owner:", backend.OwnerOf(spec))
	res, info, err := backend.RunSpec(context.Background(), spec)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("served by %s (%s): %.0f s\n", info.Peer, info.Outcome, res.Seconds)
	// Output:
	// owner: worker-1
	// served by worker-1 (hit): 412 s
}

// When every peer is down the backend degrades to local execution
// rather than failing the sweep: the Local hook (normally Engine.Exec)
// runs the spec in-process and the run is attributed to "local".
func ExampleBackend_failover() {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // the only peer is unreachable

	backend, err := remote.New(remote.Config{
		Peers: []remote.Peer{{ID: "worker-1", URL: dead.URL}},
		Key:   func(s sweep.Spec) sweep.Key { return s.Key("example-config") },
		Local: func(ctx context.Context, s sweep.Spec) (sim.MEMSpotResult, error) {
			return sim.MEMSpotResult{Seconds: 412}, nil
		},
		ProbeEvery: -1,
		Backoff:    time.Minute,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer backend.Close()

	res, info, err := backend.RunSpec(context.Background(), sweep.Spec{Mix: "W1"})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("served by %s (%s): %.0f s\n", info.Peer, info.Outcome, res.Seconds)
	fmt.Println("worker-1 up:", backend.Status()[0].Up)
	// Output:
	// served by local (built): 412 s
	// worker-1 up: false
}
