package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"dramtherm/internal/sim"
	"dramtherm/internal/sweep"
)

// HandoffPath is the cache-replication endpoint, served by
// internal/httpapi: POST a stream of NDJSON HandoffLines, get a
// HandoffResponse back. Both RF=2 replication (a just-built result
// pushed to its key's ring successor) and membership handoff (a moved
// shard's cached results streamed to their new owner) ride this wire.
const HandoffPath = "/v1/handoff"

// Handoff reasons, carried per line for the receiver's accounting.
const (
	// ReasonReplica marks a freshly built result replicated to the key's
	// ring successor (RF=2).
	ReasonReplica = "replica"
	// ReasonHandoff marks a cached result streamed to a ring member that
	// became responsible for its key after a membership change.
	ReasonHandoff = "handoff"
)

// HandoffLine is one NDJSON line of a handoff request: a completed
// result under its canonical cache key. The receiver imports it
// idempotently — present keys and digest mismatches are skipped, never
// errors.
type HandoffLine struct {
	Key    string             `json:"key"`
	Result *sim.MEMSpotResult `json:"result"`
	Reason string             `json:"reason,omitempty"`
}

// HandoffResponse is the POST /v1/handoff reply.
type HandoffResponse struct {
	// Accepted counts lines imported into the receiver's cache.
	Accepted int `json:"accepted"`
	// Skipped counts lines the receiver already had (or rejected as
	// belonging to a different config digest).
	Skipped int `json:"skipped"`
}

// handoffChunkLines bounds one handoff POST, so a large handed-off shard
// streams as several requests instead of one unbounded body.
const handoffChunkLines = 128

// replQueueDepth bounds the replication queue. Replication is
// best-effort by design — a full queue drops (and counts) the job
// rather than stalling the sweep hot path.
const replQueueDepth = 1024

// replJob is one unit of background replication work: lines for a fixed
// destination (handoff), or a single just-built result whose successor
// is resolved at send time against the then-current ring (replica).
type replJob struct {
	destID string // fixed destination; "" resolves the successor of lines[0].Key
	served string // peer that produced the result — never its own replica
	lines  []HandoffLine
}

// ReplicationStatus snapshots the replication layer for healthz.
type ReplicationStatus struct {
	Enabled bool `json:"enabled"`
	// Sent counts results delivered to a replica or handoff destination.
	Sent int64 `json:"sent"`
	// Dropped counts results not replicated: queue overflow, no eligible
	// destination, or delivery failure. Replication is best-effort; drops
	// cost warmth, not correctness.
	Dropped int64 `json:"dropped"`
	// Pending counts queued-but-undelivered results.
	Pending int64 `json:"pending"`
	// HandoffKeys counts results streamed by membership-change handoff.
	HandoffKeys int64 `json:"handoff_keys"`
	// HandoffRounds counts membership changes that planned a handoff.
	HandoffRounds int64 `json:"handoff_rounds"`
	// Promotions counts keys whose dead primary's replica holder became
	// the new ring owner — served warm with no data movement at all.
	Promotions int64 `json:"promotions"`
}

// ReplicationStatus reports the backend's replication counters.
func (b *Backend) ReplicationStatus() ReplicationStatus {
	return ReplicationStatus{
		Enabled:       b.cfg.Replication,
		Sent:          b.replSent.Load(),
		Dropped:       b.replDropped.Load(),
		Pending:       b.replPending.Load(),
		HandoffKeys:   b.handoffKeys.Load(),
		HandoffRounds: b.handoffRounds.Load(),
		Promotions:    b.promotions.Load(),
	}
}

// maybeReplicate queues a just-completed result for asynchronous RF=2
// replication to its key's ring successor. Cache hits are skipped — the
// serving peer's copy was replicated when it was first built.
func (b *Backend) maybeReplicate(spec sweep.Spec, res sim.MEMSpotResult, info sweep.RunInfo) {
	if !b.cfg.Replication || info.Outcome == sweep.Hit {
		return
	}
	r := res
	b.enqueueRepl(replJob{
		served: info.Peer,
		lines:  []HandoffLine{{Key: string(b.cfg.Key(spec)), Result: &r, Reason: ReasonReplica}},
	})
}

// enqueueRepl hands a job to the replication worker without ever
// blocking the caller; overflow drops and counts.
func (b *Backend) enqueueRepl(job replJob) {
	n := int64(len(job.lines))
	b.replPending.Add(n)
	select {
	case b.replQ <- job:
	default:
		b.replPending.Add(-n)
		b.dropRepl(n, "queue full")
	}
}

func (b *Backend) dropRepl(n int64, why string) {
	b.replDropped.Add(n)
	b.mReplDropped.Add(float64(n))
	b.log.Warn("remote: replication dropped", "results", n, "reason", why)
}

// replicateLoop is the single background worker draining the
// replication queue. One slow destination back-pressures the queue, not
// the dispatch hot path.
func (b *Backend) replicateLoop() {
	defer b.wg.Done()
	for {
		select {
		case job := <-b.replQ:
			b.runReplJob(job)
		case <-b.stop:
			return
		}
	}
}

// runReplJob resolves the job's destination against the current ring
// and streams its lines there.
func (b *Backend) runReplJob(job replJob) {
	defer b.replPending.Add(-int64(len(job.lines)))
	destID := job.destID
	if destID == "" {
		destID = b.replicaFor(job.lines[0].Key, job.served)
	}
	if destID == "" {
		b.dropRepl(int64(len(job.lines)), "no eligible successor")
		return
	}
	p := b.peerByID(destID)
	if p == nil {
		b.dropRepl(int64(len(job.lines)), "destination left membership")
		return
	}
	for start := 0; start < len(job.lines); start += handoffChunkLines {
		end := min(start+handoffChunkLines, len(job.lines))
		chunk := job.lines[start:end]
		if err := b.sendHandoff(p, chunk); err != nil {
			b.dropRepl(int64(len(job.lines)-start), "delivery failed")
			b.log.Warn("remote: handoff delivery failed", "peer", destID, "err", err.Error())
			return
		}
		b.replSent.Add(int64(len(chunk)))
		b.mReplSent.WithLabelValues(destID).Add(float64(len(chunk)))
		for _, ln := range chunk {
			if ln.Reason == ReasonHandoff {
				b.handoffKeys.Add(1)
				b.mHandoffKeys.WithLabelValues(destID).Inc()
			}
		}
	}
}

// replicaFor resolves the RF=2 replica destination for key: the first
// ring candidate that is not the peer that produced the result. When the
// producer is the key's owner this is exactly the ring successor; when
// the producer was a failover candidate (or the coordinator itself, via
// local fallback) it is the owner — either way the result lands on the
// member that will serve the key if the producer dies. Returns "" when
// no distinct live candidate exists (single-member ring).
func (b *Backend) replicaFor(key, served string) string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	for _, idx := range b.ring.candidates(key) {
		if id := b.ringPeers[idx].id; id != served {
			return id
		}
	}
	return ""
}

// sendHandoff streams lines to p as one POST /v1/handoff request.
func (b *Backend) sendHandoff(p *peer, lines []HandoffLine) error {
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for _, ln := range lines {
		if err := enc.Encode(ln); err != nil {
			return err
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.url+HandoffPath, &body)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	b.mDispatch.WithLabelValues(p.id, "handoff").Inc()
	resp, err := b.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //nolint:errcheck
		return fmt.Errorf("handoff status %s", resp.Status)
	}
	var hr HandoffResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		return fmt.Errorf("decoding handoff response: %w", err)
	}
	return nil
}

// respSet is the RF=2 responsibility set for key on one ring snapshot:
// the owner then the successor (fewer when the ring is smaller).
func respSet(r *ring, peers []*peer, key string) []string {
	c := r.candidates(key)
	if len(c) > 2 {
		c = c[:2]
	}
	out := make([]string, len(c))
	for i, idx := range c {
		out[i] = peers[idx].id
	}
	return out
}

// handoffPlan is the outcome of diffing one membership change against
// the cached key set: which results to stream where, and how many keys
// were promoted in place.
type handoffPlan struct {
	// moves maps destination peer id → results it became responsible for.
	moves map[string][]HandoffLine
	// promotions counts keys whose dead primary's successor became the
	// new owner — already replicated there, so no movement is needed.
	promotions int
}

// planHandoff diffs each cached key's RF=2 responsibility set between
// the old and new rings: any member newly responsible for a key gets its
// cached result streamed over before traffic lands there. entries
// iterates the coordinator's cached results (Config.Entries); left names
// the members removed by the change.
func planHandoff(oldRing *ring, oldPeers []*peer, newRing *ring, newPeers []*peer,
	left map[string]bool, entries func(fn func(sweep.Key, sim.MEMSpotResult) bool)) handoffPlan {
	plan := handoffPlan{moves: make(map[string][]HandoffLine)}
	entries(func(k sweep.Key, res sim.MEMSpotResult) bool {
		key := string(k)
		oldSet := respSet(oldRing, oldPeers, key)
		newSet := respSet(newRing, newPeers, key)
		for _, dest := range newSet {
			if !contains(oldSet, dest) {
				r := res
				plan.moves[dest] = append(plan.moves[dest], HandoffLine{Key: key, Result: &r, Reason: ReasonHandoff})
			}
		}
		if len(oldSet) > 1 && left[oldSet[0]] && len(newSet) > 0 && newSet[0] == oldSet[1] {
			plan.promotions++
		}
		return true
	})
	return plan
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// handoffOnChange plans and queues the cache handoff for one membership
// change, called asynchronously from SetMembers with the pre- and
// post-change ring snapshots.
func (b *Backend) handoffOnChange(oldRing *ring, oldPeers []*peer, left []string) {
	b.mu.RLock()
	newRing, newPeers := b.ring, b.ringPeers
	b.mu.RUnlock()
	leftSet := make(map[string]bool, len(left))
	for _, id := range left {
		leftSet[id] = true
	}
	plan := planHandoff(oldRing, oldPeers, newRing, newPeers, leftSet, b.cfg.Entries)
	if len(plan.moves) == 0 && plan.promotions == 0 {
		return
	}
	b.handoffRounds.Add(1)
	b.mHandoffRounds.Inc()
	if plan.promotions > 0 {
		b.promotions.Add(int64(plan.promotions))
		b.mPromotions.Add(float64(plan.promotions))
	}
	total := 0
	for dest, lines := range plan.moves {
		total += len(lines)
		b.enqueueRepl(replJob{destID: dest, lines: lines})
	}
	b.log.Info("remote: cache handoff planned",
		"destinations", len(plan.moves), "results", total, "promotions", plan.promotions)
}
