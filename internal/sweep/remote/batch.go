package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"dramtherm/internal/obs"
	"dramtherm/internal/sim"
	"dramtherm/internal/sweep"
)

// BatchPath is the batched execution endpoint: POST a BatchRequest, read
// per-spec outcomes back as a stream of NDJSON BatchLines.
const BatchPath = "/v1/exec/batch"

// BatchRequest is the POST /v1/exec/batch body: one peer's whole shard
// of a sweep.
type BatchRequest struct {
	Specs []sweep.Spec `json:"specs"`
}

// BatchLine is one NDJSON line of a batch response, emitted as each spec
// of the shard completes. Exactly one of Result and Error is set: an
// Error line is terminal for that spec (retrying elsewhere would fail
// identically), while peer-level failures truncate the stream instead so
// the coordinator fails the unacknowledged remainder over.
type BatchLine struct {
	// Index is the spec's position in the BatchRequest.
	Index int `json:"index"`
	// Key is the serving node's canonical cache key for the spec,
	// for log correlation across nodes.
	Key string `json:"key,omitempty"`
	// Outcome is how the serving node obtained the result: "built",
	// "hit" or "joined".
	Outcome string             `json:"outcome,omitempty"`
	Result  *sim.MEMSpotResult `json:"result,omitempty"`
	Error   string             `json:"error,omitempty"`
}

// Shard is one ring member's slice of a planned batch.
type Shard struct {
	// Peer is the owning member's id, or "" for specs no live peer owns
	// (the ring is empty): those execute locally.
	Peer string
	// Indexes are positions in the planned spec list, in input order.
	Indexes []int
}

// PlanShards groups specs by the ring member that currently owns their
// key — the dispatch plan for a batched sweep: one Shard, one request.
// Shards appear in first-ownership order; specs with no live owner
// collect under the "" shard. The plan is a snapshot: membership changes
// after planning are handled by dispatch-time failover, not re-planning.
func (b *Backend) PlanShards(specs []sweep.Spec) []Shard {
	b.readmitExpired()
	b.mu.RLock()
	ring, ringPeers := b.ring, b.ringPeers
	b.mu.RUnlock()
	byPeer := make(map[string]int)
	var out []Shard
	for i, sp := range specs {
		owner := ""
		if c := ring.candidates(string(b.cfg.Key(sp))); len(c) > 0 {
			owner = ringPeers[c[0]].id
		}
		j, ok := byPeer[owner]
		if !ok {
			j = len(out)
			byPeer[owner] = j
			out = append(out, Shard{Peer: owner})
		}
		out[j].Indexes = append(out[j].Indexes, i)
	}
	return out
}

// RunSpecs implements sweep.BatchBackend: it plans the specs into one
// shard per ring owner, sends each peer its entire shard in a single
// request, and delivers per-spec outcomes as the NDJSON response streams
// back. When a peer dies mid-stream the specs it had not yet
// acknowledged are re-planned onto the surviving ring; when no peer is
// left they are delivered with sweep.ErrRunLocal so the engine executes
// them on its own pool.
func (b *Backend) RunSpecs(ctx context.Context, specs []sweep.Spec, deliver func(i int, res sim.MEMSpotResult, info sweep.RunInfo, err error)) {
	// Failover can race a late line from a dying stream; guard delivery
	// so each spec is reported exactly once.
	var mu sync.Mutex
	acked := make([]bool, len(specs))
	once := func(i int, res sim.MEMSpotResult, info sweep.RunInfo, err error) {
		mu.Lock()
		dup := acked[i]
		acked[i] = true
		mu.Unlock()
		if !dup {
			if err == nil {
				b.maybeReplicate(specs[i], res, info)
			}
			deliver(i, res, info, err)
		}
	}
	all := make([]int, len(specs))
	for i := range all {
		all[i] = i
	}
	// Each failover round ejects at least one peer. Membership can grow
	// mid-sweep (gossip joins), so budget generously: a round per member
	// at dispatch time plus slack, after which only local execution is
	// left.
	b.mu.RLock()
	budget := len(b.peers) + 2
	b.mu.RUnlock()
	b.runBatch(ctx, specs, all, once, budget)
}

// runBatch plans idxs onto the current ring and dispatches one request
// per shard, recursing on the unacknowledged remainder of failed shards
// with a decremented budget. A zero budget (or an empty ring) delivers
// sweep.ErrRunLocal.
func (b *Backend) runBatch(ctx context.Context, specs []sweep.Spec, idxs []int, deliver func(int, sim.MEMSpotResult, sweep.RunInfo, error), budget int) {
	if ctx.Err() != nil {
		return // the sweep is over; nobody is waiting on deliveries
	}
	sub := make([]sweep.Spec, len(idxs))
	for j, i := range idxs {
		sub[j] = specs[i]
	}
	var wg sync.WaitGroup
	for _, sh := range b.PlanShards(sub) {
		mapped := make([]int, len(sh.Indexes))
		for j, k := range sh.Indexes {
			mapped[j] = idxs[k]
		}
		if sh.Peer == "" || budget <= 0 {
			for _, i := range mapped {
				deliver(i, sim.MEMSpotResult{}, sweep.RunInfo{}, sweep.ErrRunLocal)
			}
			continue
		}
		p := b.peerByID(sh.Peer)
		if p == nil {
			// The owner left the membership between planning and dispatch:
			// re-plan its shard on the current ring.
			b.mReplan.Inc()
			wg.Add(1)
			go func(mapped []int) {
				defer wg.Done()
				b.runBatch(ctx, specs, mapped, deliver, budget-1)
			}(mapped)
			continue
		}
		wg.Add(1)
		go func(p *peer, mapped []int) {
			defer wg.Done()
			unacked, singles := b.dispatchBatch(ctx, p, specs, mapped, deliver)
			if singles {
				// The peer is healthy but cannot take this shard as one
				// batch: dispatch it spec-at-a-time against the same peer.
				unacked = b.dispatchSingles(ctx, p, specs, unacked, deliver)
			}
			if len(unacked) > 0 {
				b.mReplan.Inc()
				b.runBatch(ctx, specs, unacked, deliver, budget-1)
			}
		}(p, mapped)
	}
	wg.Wait()
}

func (b *Backend) peerByID(id string) *peer {
	b.mu.RLock()
	defer b.mu.RUnlock()
	for _, p := range b.peers {
		if p.id == id {
			return p
		}
	}
	return nil // the member left between planning and dispatch
}

// dispatchBatch sends p its shard in one request and delivers outcomes
// as the response streams back. It returns the indexes the peer never
// acknowledged when the peer failed (submit error, 5xx, stream
// truncation or protocol violation) — the caller's cue to fail them
// over — and nil when every spec was delivered or the caller's ctx
// died. singles is set when the peer is healthy but cannot take the
// shard as one batch (no batch endpoint, or the shard exceeds its size
// limit): the unacked specs should go to the same peer spec-at-a-time.
func (b *Backend) dispatchBatch(ctx context.Context, p *peer, specs []sweep.Spec, idxs []int, deliver func(int, sim.MEMSpotResult, sweep.RunInfo, error)) (unacked []int, singles bool) {
	var zero sim.MEMSpotResult
	select {
	case p.sem <- struct{}{}:
		defer func() { <-p.sem }()
	case <-ctx.Done():
		return nil, false
	}
	p.requests.Add(1)
	b.mDispatch.WithLabelValues(p.id, "batch").Inc()
	breq := BatchRequest{Specs: make([]sweep.Spec, len(idxs))}
	for j, i := range idxs {
		breq.Specs[j] = specs[i]
	}
	body, err := json.Marshal(breq)
	if err != nil {
		for _, i := range idxs {
			deliver(i, zero, sweep.RunInfo{}, err)
		}
		return nil, false
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.url+BatchPath, bytes.NewReader(body))
	if err != nil {
		for _, i := range idxs {
			deliver(i, zero, sweep.RunInfo{}, err)
		}
		return nil, false
	}
	req.Header.Set("Content-Type", "application/json")
	if id := obs.RequestID(ctx); id != "" {
		req.Header.Set(obs.RequestIDHeader, id)
	}
	resp, err := b.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil, false // the caller gave up; not the peer's fault
		}
		b.eject(p, err)
		return idxs, false
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		return b.decodeBatchStream(ctx, p, resp.Body, idxs, deliver), false
	case resp.StatusCode == http.StatusNotFound || resp.StatusCode == http.StatusMethodNotAllowed ||
		resp.StatusCode == http.StatusRequestEntityTooLarge:
		// The peer is healthy but batch-incapable for this shard: an
		// older node without the endpoint (404/405) or a shard over its
		// size limit (413). Degrade to spec-at-a-time dispatch instead
		// of failing the sweep or ejecting a working peer.
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //nolint:errcheck
		return idxs, true
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		// The peer is healthy and rejected the batch itself: terminal for
		// every spec in it (the coordinator validated them, so this is a
		// version-skew or protocol bug worth surfacing, not retrying).
		err := fmt.Errorf("remote: peer %s rejected batch: %s", p.id, errorBody(resp))
		for _, i := range idxs {
			deliver(i, zero, sweep.RunInfo{}, err)
		}
		return nil, false
	default:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //nolint:errcheck
		b.eject(p, fmt.Errorf("batch status %s", resp.Status))
		return idxs, false
	}
}

// dispatchSingles executes idxs against p one spec at a time — the
// degraded path for a healthy peer that cannot serve the shard as one
// batch. Concurrency is bounded by the peer's request pool (dispatch
// acquires a slot per call). Peer failures eject p and return the
// still-unserved indexes for re-planning; terminal errors are delivered.
func (b *Backend) dispatchSingles(ctx context.Context, p *peer, specs []sweep.Spec, idxs []int, deliver func(int, sim.MEMSpotResult, sweep.RunInfo, error)) (unacked []int) {
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	for _, i := range idxs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, info, err := b.dispatch(ctx, p, specs[i])
			var pe *peerError
			switch {
			case err == nil:
				deliver(i, res, info, nil)
			case errors.As(err, &pe):
				b.eject(p, pe.err)
				mu.Lock()
				unacked = append(unacked, i)
				mu.Unlock()
			case ctx.Err() != nil:
				// The sweep is over; nobody is waiting on the delivery.
			default:
				deliver(i, sim.MEMSpotResult{}, sweep.RunInfo{}, err)
			}
		}(i)
	}
	wg.Wait()
	sort.Ints(unacked)
	return unacked
}

// decodeBatchStream consumes one batch response, delivering each line's
// outcome. The remainder fails over when the stream dies or misbehaves
// before acknowledging every spec.
func (b *Backend) decodeBatchStream(ctx context.Context, p *peer, body io.Reader, idxs []int, deliver func(int, sim.MEMSpotResult, sweep.RunInfo, error)) (unacked []int) {
	var zero sim.MEMSpotResult
	acked := make([]bool, len(idxs))
	remaining := func() []int {
		var out []int
		for j, ok := range acked {
			if !ok {
				out = append(out, idxs[j])
			}
		}
		return out
	}
	dec := json.NewDecoder(&countingReader{r: body, c: b.mStreamBytes})
	for n := 0; n < len(idxs); n++ {
		var line BatchLine
		if err := dec.Decode(&line); err != nil {
			if ctx.Err() != nil {
				return nil
			}
			// io.EOF here is a truncated stream: the peer drained or died
			// with specs outstanding.
			b.eject(p, fmt.Errorf("batch stream: %w", err))
			return remaining()
		}
		b.mStreamLines.Inc()
		if line.Index < 0 || line.Index >= len(idxs) || acked[line.Index] {
			b.eject(p, fmt.Errorf("batch protocol: unexpected line index %d", line.Index))
			return remaining()
		}
		acked[line.Index] = true
		switch {
		case line.Error != "":
			deliver(idxs[line.Index], zero, sweep.RunInfo{}, fmt.Errorf("remote: run failed on peer %s: %s", p.id, line.Error))
		case line.Result != nil:
			deliver(idxs[line.Index], *line.Result, sweep.RunInfo{Outcome: parseOutcome(line.Outcome), Peer: p.id}, nil)
		default:
			b.eject(p, fmt.Errorf("batch protocol: line %d has neither result nor error", line.Index))
			return remaining()
		}
	}
	return nil
}
