package remote_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dramtherm/internal/core"
	"dramtherm/internal/httpapi"
	"dramtherm/internal/sim"
	"dramtherm/internal/sweep"
	"dramtherm/internal/sweep/remote"
)

// fakeEngine returns an engine whose run function is a counting fake,
// so cluster tests exercise routing and failover without paying for
// real simulations. All fakeEngines share one config digest, so keys
// line up across coordinator and workers.
func fakeEngine(builds *atomic.Int64, delay time.Duration) *sweep.Engine {
	e := sweep.NewEngine(core.NewSystem(core.DefaultConfig()), 4)
	e.SetRunFunc(func(ctx context.Context, rs core.RunSpec) (sim.MEMSpotResult, error) {
		if builds != nil {
			builds.Add(1)
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return sim.MEMSpotResult{}, ctx.Err()
		}
		secs := 100.0
		if rs.Policy.Name() != "No-limit" {
			secs = 150
		}
		return sim.MEMSpotResult{Seconds: secs, Completed: 1}, nil
	})
	return e
}

// fakeWorker embeds a full dramthermd (httpapi over a fake engine).
func fakeWorker(t *testing.T, builds *atomic.Int64, delay time.Duration) *httptest.Server {
	t.Helper()
	api := httpapi.New(context.Background(), fakeEngine(builds, delay), httpapi.Config{})
	t.Cleanup(api.Close)
	ts := httptest.NewServer(api)
	t.Cleanup(ts.Close)
	return ts
}

func newBackend(t *testing.T, coord *sweep.Engine, cfg remote.Config) *remote.Backend {
	t.Helper()
	if cfg.Key == nil {
		cfg.Key = coord.Key
	}
	if cfg.ProbeEvery == 0 {
		cfg.ProbeEvery = -1
	}
	b, err := remote.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	return b
}

// TestPeerDownAtSubmit: the owning peer is already dead when the run is
// submitted — it must fail over to the live peer and eject the corpse.
func TestPeerDownAtSubmit(t *testing.T) {
	var workerBuilds atomic.Int64
	live := fakeWorker(t, &workerBuilds, 0)
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // a peer that is down from the start

	coord := fakeEngine(nil, 0)
	b := newBackend(t, coord, remote.Config{
		Peers: []remote.Peer{{ID: "dead", URL: dead.URL}, {ID: "live", URL: live.URL}},
		Local: coord.Exec,
	})
	coord.SetBackend(b)

	// Sweep enough specs that the dead peer owns at least one shard.
	specs := sweep.Grid{Mixes: []string{"W1", "W2", "W3", "W4", "W5", "W6"},
		Policies: []string{"DTM-TS", "DTM-BW", "DTM-ACG"}}.Expand()
	owned := 0
	for _, s := range specs {
		if b.OwnerOf(s) == "dead" {
			owned++
		}
	}
	if owned == 0 {
		t.Fatal("test needs the dead peer to own at least one shard")
	}
	var deadServed atomic.Int64
	res, err := coord.Sweep(context.Background(), specs, sweep.Options{
		OnEvent: func(ev sweep.Event) {
			if ev.Kind == sweep.EventFinished && ev.Peer == "dead" {
				deadServed.Add(1)
			}
		},
	})
	if err != nil {
		t.Fatalf("sweep with a dead peer: %v", err)
	}
	for i, r := range res.Results {
		if r.Seconds != 150 {
			t.Fatalf("spec %d: Seconds = %v, want 150", i, r.Seconds)
		}
	}
	if deadServed.Load() != 0 {
		t.Fatalf("%d specs reported as served by the dead peer", deadServed.Load())
	}
	if workerBuilds.Load() == 0 {
		t.Fatal("live worker built nothing — failover never reached it")
	}
	for _, ps := range b.Status() {
		if ps.ID == "dead" {
			if ps.Up {
				t.Fatal("dead peer still admitted after failing")
			}
			if ps.DownSince == nil || ps.LastError == "" {
				t.Fatalf("dead peer status lacks diagnostics: %+v", ps)
			}
		}
	}
}

// TestPeerDiesMidSweep: a worker is killed while its shard is in
// flight; failover must rerun those specs elsewhere and the sweep must
// still produce results identical to a single-node run.
func TestPeerDiesMidSweep(t *testing.T) {
	apiA := httpapi.New(context.Background(), fakeEngine(nil, 100*time.Millisecond), httpapi.Config{})
	defer apiA.Close()
	victim := httptest.NewServer(apiA)
	defer victim.Close()
	survivor := fakeWorker(t, nil, 0)

	coord := fakeEngine(nil, 0)
	b := newBackend(t, coord, remote.Config{
		Peers: []remote.Peer{{ID: "victim", URL: victim.URL}, {ID: "survivor", URL: survivor.URL}},
		Local: coord.Exec,
	})
	coord.SetBackend(b)

	specs := sweep.Grid{Mixes: []string{"W1", "W2", "W3", "W4"},
		Policies: []string{"DTM-TS", "DTM-BW", "DTM-ACG"}}.Expand()
	owned := false
	for _, s := range specs {
		if b.OwnerOf(s) == "victim" {
			owned = true
		}
	}
	if !owned {
		t.Fatal("test needs the victim to own at least one shard")
	}

	// Kill the victim once the first spec starts: its in-flight exec
	// requests (the victim's fake sims take 100ms) die mid-simulation
	// and must be rerun on the survivor or locally.
	started := make(chan struct{}, 1)
	go func() {
		<-started
		victim.CloseClientConnections()
		victim.Close()
	}()
	res, err := coord.Sweep(context.Background(), specs, sweep.Options{
		OnEvent: func(ev sweep.Event) {
			if ev.Kind == sweep.EventStarted {
				select {
				case started <- struct{}{}:
				default:
				}
			}
		},
	})
	if err != nil {
		t.Fatalf("sweep across a dying peer: %v", err)
	}
	for i, r := range res.Results {
		if r.Seconds != 150 {
			t.Fatalf("spec %d: Seconds = %v, want 150", i, r.Seconds)
		}
	}
	for _, ps := range b.Status() {
		if ps.ID == "victim" && ps.Up {
			t.Fatal("victim still admitted — the mid-sweep kill never hit it")
		}
	}
}

// TestLocalFallbackWhenRingEmpty: no peers at all → every run executes
// locally and is attributed to the "local" pseudo-peer.
func TestLocalFallbackWhenRingEmpty(t *testing.T) {
	var localBuilds atomic.Int64
	coord := fakeEngine(&localBuilds, 0)
	b := newBackend(t, coord, remote.Config{Local: coord.Exec})
	coord.SetBackend(b)

	res, info, err := coord.RunDetailed(context.Background(), sweep.Spec{Mix: "W1", Policy: "DTM-TS"})
	if err != nil {
		t.Fatal(err)
	}
	if info.Peer != remote.LocalPeer || info.Outcome != sweep.Built {
		t.Fatalf("info = %+v, want local build", info)
	}
	if res.Seconds != 150 || localBuilds.Load() != 1 {
		t.Fatalf("local fallback did not execute (res=%v builds=%d)", res.Seconds, localBuilds.Load())
	}
}

// TestClientErrorDoesNotFailOver: a 4xx means the spec itself is bad —
// the error must surface, no other peer or the local engine should be
// tried, and the peer must stay in the ring.
func TestClientErrorDoesNotFailOver(t *testing.T) {
	worker := fakeWorker(t, nil, 0)
	var localBuilds atomic.Int64
	coord := fakeEngine(&localBuilds, 0)
	b := newBackend(t, coord, remote.Config{
		Peers: []remote.Peer{{ID: "w", URL: worker.URL}},
		Local: coord.Exec,
	})

	// Dispatch a bad spec straight at the backend: the engine's own
	// validation would otherwise reject it before routing.
	_, _, err := b.RunSpec(context.Background(), sweep.Spec{Mix: "W1", Policy: "DTM-NOPE"})
	if err == nil || !strings.Contains(err.Error(), "rejected spec") {
		t.Fatalf("err = %v, want a peer rejection", err)
	}
	if localBuilds.Load() != 0 {
		t.Fatal("4xx fell back to local execution")
	}
	if ps := b.Status(); !ps[0].Up {
		t.Fatalf("peer ejected on a client error: %+v", ps[0])
	}
}

// TestRunErrorIsTerminal: a spec that fails deterministically (422
// from the worker) must surface as an error without ejecting the
// healthy peer, without trying other peers, and without a local rerun —
// one poisoned spec must not empty the ring.
func TestRunErrorIsTerminal(t *testing.T) {
	eng := sweep.NewEngine(core.NewSystem(core.DefaultConfig()), 2)
	eng.SetRunFunc(func(ctx context.Context, rs core.RunSpec) (sim.MEMSpotResult, error) {
		return sim.MEMSpotResult{}, fmt.Errorf("synthetic trace-store corruption")
	})
	api := httpapi.New(context.Background(), eng, httpapi.Config{Logf: func(string, ...any) {}})
	defer api.Close()
	worker := httptest.NewServer(api)
	defer worker.Close()

	var localBuilds atomic.Int64
	coord := fakeEngine(&localBuilds, 0)
	b := newBackend(t, coord, remote.Config{
		Peers: []remote.Peer{{ID: "w", URL: worker.URL}},
		Local: coord.Exec,
	})

	_, _, err := b.RunSpec(context.Background(), sweep.Spec{Mix: "W1", Policy: "DTM-TS"})
	if err == nil || !strings.Contains(err.Error(), "run failed on peer w") ||
		!strings.Contains(err.Error(), "synthetic trace-store corruption") {
		t.Fatalf("err = %v, want a terminal run failure naming the peer", err)
	}
	if localBuilds.Load() != 0 {
		t.Fatal("failing run was retried locally")
	}
	if ps := b.Status(); !ps[0].Up {
		t.Fatalf("healthy peer ejected over a failing spec: %+v", ps[0])
	}
}

// TestEjectReadmitFakeClock drives the ring's ejection lifecycle on a
// fake clock: a failure ejects the peer, routing avoids it while the
// backoff runs, backoff expiry readmits it half-open, and a successful
// probe readmits it immediately.
func TestEjectReadmitFakeClock(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	clock := &now

	// A worker that fails on demand.
	var failing atomic.Bool
	var execs atomic.Int64
	inner := httpapi.New(context.Background(), fakeEngine(nil, 0), httpapi.Config{})
	defer inner.Close()
	worker := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		if r.URL.Path == remote.ExecPath {
			execs.Add(1)
		}
		inner.ServeHTTP(w, r)
	}))
	defer worker.Close()

	var localBuilds atomic.Int64
	coord := fakeEngine(&localBuilds, 0)
	b := newBackend(t, coord, remote.Config{
		Peers:   []remote.Peer{{ID: "w", URL: worker.URL}},
		Local:   coord.Exec,
		Backoff: time.Minute,
		Now:     func() time.Time { return *clock },
	})

	spec := sweep.Spec{Mix: "W1", Policy: "DTM-TS"}

	// 1. Failure ejects.
	failing.Store(true)
	if _, info, err := b.RunSpec(context.Background(), spec); err != nil || info.Peer != remote.LocalPeer {
		t.Fatalf("failing peer: info=%+v err=%v, want local fallback", info, err)
	}
	if st := b.Status()[0]; st.Up || st.DownSince == nil {
		t.Fatalf("peer not ejected: %+v", st)
	}

	// 2. While the backoff runs, routing skips the peer entirely even
	// though it has recovered — only probes can readmit it early.
	failing.Store(false)
	now = now.Add(30 * time.Second)
	if _, info, _ := b.RunSpec(context.Background(), spec); info.Peer != remote.LocalPeer {
		t.Fatalf("run during backoff served by %q, want local", info.Peer)
	}
	if execs.Load() != 0 {
		t.Fatal("ejected peer received traffic during its backoff")
	}

	// 3. Backoff expiry readmits half-open: the next run routes to the
	// peer again.
	now = now.Add(31 * time.Second)
	if _, info, err := b.RunSpec(context.Background(), spec); err != nil || info.Peer != "w" {
		t.Fatalf("after backoff: info=%+v err=%v, want peer w", info, err)
	}
	if st := b.Status()[0]; !st.Up {
		t.Fatalf("peer not readmitted after backoff: %+v", st)
	}

	// 4. Eject again, then a successful probe readmits immediately,
	// long before the backoff expires.
	failing.Store(true)
	if _, info, _ := b.RunSpec(context.Background(), spec); info.Peer != remote.LocalPeer {
		t.Fatalf("second failure served by %q, want local", info.Peer)
	}
	failing.Store(false)
	b.Probe(context.Background())
	if st := b.Status()[0]; !st.Up {
		t.Fatalf("probe did not readmit recovered peer: %+v", st)
	}

	// 5. A probe against a failing peer ejects it without any traffic.
	failing.Store(true)
	b.Probe(context.Background())
	if st := b.Status()[0]; st.Up {
		t.Fatalf("probe did not eject failing peer: %+v", st)
	}
}

// TestRemoteOutcomeAndPeerFlowIntoEvents: a warm worker cache must
// surface as outcome "hit" with the peer id on the coordinator's finish
// events — through the engine, job log and all.
func TestRemoteOutcomeAndPeerFlowIntoEvents(t *testing.T) {
	worker := fakeWorker(t, nil, 0)
	coord := fakeEngine(nil, 0)
	b := newBackend(t, coord, remote.Config{
		Peers: []remote.Peer{{ID: "w1", URL: worker.URL}},
		Local: coord.Exec,
	})
	coord.SetBackend(b)
	spec := sweep.Spec{Mix: "W1", Policy: "DTM-TS"}

	var evs []sweep.Event
	if _, err := coord.RunObserved(context.Background(), spec, func(ev sweep.Event) {
		evs = append(evs, ev)
	}); err != nil {
		t.Fatal(err)
	}
	last := evs[len(evs)-1]
	if last.Kind != sweep.EventFinished || last.Peer != "w1" || last.Outcome != sweep.Built {
		t.Fatalf("cold run event = %+v, want finished/built on w1", last)
	}

	// A second coordinator shares the worker: the worker's cache is warm
	// now, so the run must come back as a remote hit.
	coord2 := fakeEngine(nil, 0)
	b2 := newBackend(t, coord2, remote.Config{
		Peers: []remote.Peer{{ID: "w1", URL: worker.URL}},
		Local: coord2.Exec,
	})
	coord2.SetBackend(b2)
	_, info, err := coord2.RunDetailed(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if info.Outcome != sweep.Hit || info.Peer != "w1" {
		t.Fatalf("warm run info = %+v, want hit on w1", info)
	}

	// The coordinator's own cache hit wins on a repeat: no peer involved.
	_, info, err = coord2.RunDetailed(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if info.Outcome != sweep.Hit || info.Peer != "" {
		t.Fatalf("local cache hit info = %+v, want hit with no peer", info)
	}
}
