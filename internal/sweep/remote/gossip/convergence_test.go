package gossip

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"
)

// mesh is an in-memory gossip cluster on a fake clock: transports are
// direct HandleExchange calls, with deterministic message drops and
// per-node partitions injected between rounds. No goroutines, no
// network, no wall clock — every test run takes the same path.
type mesh struct {
	t     *testing.T
	clk   *fakeClock
	nodes map[string]*Node
	order []string

	mu          sync.Mutex
	rnd         *rand.Rand
	dropPercent int
	partitioned map[string]bool
}

func newMesh(t *testing.T, n int, dropPercent int, seed int64) *mesh {
	m := &mesh{
		t:           t,
		clk:         newFakeClock(),
		nodes:       make(map[string]*Node),
		rnd:         rand.New(rand.NewSource(seed)),
		dropPercent: dropPercent,
		partitioned: make(map[string]bool),
	}
	for i := 0; i < n; i++ {
		m.add(fmt.Sprintf("node-%d", i), i)
	}
	return m
}

// add joins a node to the mesh, seeded with node-0 (the join pattern:
// every newcomer knows one seed, gossip spreads the rest).
func (m *mesh) add(id string, seedIdx int) *Node {
	var seeds []Member
	if id != "node-0" {
		seeds = []Member{{ID: "node-0", URL: m.url("node-0")}}
	}
	node, err := NewNode(Config{
		Self:         Member{ID: id, URL: m.url(id)},
		Seeds:        seeds,
		Interval:     -1, // tests drive Round directly
		Fanout:       2,
		SuspectAfter: 3 * time.Second,
		Quarantine:   time.Hour,
		Transport:    m.transport(id),
		Now:          m.clk.now,
		Seed:         int64(seedIdx) + 42,
	})
	if err != nil {
		m.t.Fatal(err)
	}
	m.nodes[id] = node
	m.order = append(m.order, id)
	return node
}

func (m *mesh) url(id string) string { return "mesh://" + id }

// transport resolves mesh URLs to direct HandleExchange calls,
// simulating loss (dropPercent of exchanges vanish) and partitions
// (all traffic to or from a partitioned node fails).
func (m *mesh) transport(from string) Transport {
	return func(ctx context.Context, url string, msg Message) (Message, error) {
		m.mu.Lock()
		drop := m.rnd.Intn(100) < m.dropPercent
		cut := m.partitioned[from]
		m.mu.Unlock()
		if drop {
			return Message{}, fmt.Errorf("mesh: dropped %s -> %s", from, url)
		}
		to, ok := m.nodes[url[len("mesh://"):]]
		if !ok {
			return Message{}, fmt.Errorf("mesh: no node at %s", url)
		}
		if cut || m.isPartitioned(to.cfg.Self.ID) {
			return Message{}, fmt.Errorf("mesh: partitioned %s -> %s", from, url)
		}
		return to.HandleExchange(msg), nil
	}
}

func (m *mesh) isPartitioned(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.partitioned[id]
}

func (m *mesh) setPartitioned(id string, cut bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.partitioned[id] = cut
}

// round advances the fake clock and runs one gossip round on every
// node, in stable order.
func (m *mesh) round(dt time.Duration) {
	m.clk.advance(dt)
	for _, id := range m.order {
		m.nodes[id].Round(context.Background())
	}
}

// converged reports whether every node's snapshot is identical and
// shows all n members in the given state.
func (m *mesh) converged(want State) bool {
	var ref []Member
	for i, id := range m.order {
		snap := m.nodes[id].Members()
		if len(snap) != len(m.order) {
			return false
		}
		for _, mem := range snap {
			if mem.State != want {
				return false
			}
		}
		if i == 0 {
			ref = snap
		} else if !reflect.DeepEqual(ref, snap) {
			return false
		}
	}
	return true
}

// TestConvergenceUnderDrop: a 5-node mesh where every node initially
// knows only the first seed, and 30% of all exchanges are dropped, must
// still converge every table to the identical all-alive view within a
// bounded number of rounds.
func TestConvergenceUnderDrop(t *testing.T) {
	const nodes, maxRounds = 5, 30
	m := newMesh(t, nodes, 30, 7)
	for r := 1; r <= maxRounds; r++ {
		m.round(100 * time.Millisecond)
		if m.converged(Alive) {
			t.Logf("converged after %d rounds", r)
			return
		}
	}
	for _, id := range m.order {
		t.Logf("%s: %v", id, m.nodes[id].Members())
	}
	t.Fatalf("5-node mesh with 30%% drop did not converge in %d rounds", maxRounds)
}

// TestPartitionedNodeRefutesItsDeath: a node cut off long enough to be
// declared dead must, once healed, learn of its own death through an
// exchange and refute it with an incarnation bump that every other node
// then adopts.
func TestPartitionedNodeRefutesItsDeath(t *testing.T) {
	const nodes, maxRounds = 5, 40
	m := newMesh(t, nodes, 0, 11)
	for r := 0; r < 10 && !m.converged(Alive); r++ {
		m.round(100 * time.Millisecond)
	}
	if !m.converged(Alive) {
		t.Fatal("mesh did not converge before the partition")
	}

	// Partition node-4. Failed exchanges make the others suspect it;
	// after SuspectAfter with no refutation they confirm it dead.
	m.setPartitioned("node-4", true)
	dead := func() bool {
		for _, id := range m.order[:nodes-1] {
			mem, ok := stateOf(t, m.nodes[id].table, "node-4")
			if !ok || mem.State != Dead {
				return false
			}
		}
		return true
	}
	for r := 0; r < maxRounds && !dead(); r++ {
		m.round(500 * time.Millisecond)
	}
	if !dead() {
		t.Fatal("partitioned node-4 was never confirmed dead by the others")
	}

	// Heal. node-4 exchanges with someone, sees itself dead in the
	// reply, bumps its incarnation and re-asserts alive; the bump
	// outbids the death rumor everywhere.
	m.setPartitioned("node-4", false)
	for r := 0; r < maxRounds; r++ {
		m.round(100 * time.Millisecond)
		if m.converged(Alive) {
			refuted, _ := stateOf(t, m.nodes["node-0"].table, "node-4")
			if refuted.Incarnation == 0 {
				t.Fatalf("node-4 converged alive at incarnation 0; refutation must bump it")
			}
			t.Logf("node-4 refuted its death at incarnation %d after %d healed rounds", refuted.Incarnation, r+1)
			return
		}
	}
	for _, id := range m.order {
		t.Logf("%s: %v", id, m.nodes[id].Members())
	}
	t.Fatal("healed node-4 never refuted its death")
}

// TestJoinPropagates: a node added to a converged mesh through a single
// seed becomes visible on every table within a bounded number of
// rounds, and OnChange observers see the delta.
func TestJoinPropagates(t *testing.T) {
	const maxRounds = 30
	m := newMesh(t, 4, 20, 13)
	for r := 0; r < 15 && !m.converged(Alive); r++ {
		m.round(100 * time.Millisecond)
	}
	if !m.converged(Alive) {
		t.Fatal("mesh did not converge before the join")
	}
	m.add("node-4", 4)
	for r := 0; r < maxRounds; r++ {
		m.round(100 * time.Millisecond)
		if m.converged(Alive) {
			t.Logf("join propagated after %d rounds", r+1)
			return
		}
	}
	t.Fatalf("join of node-4 did not propagate in %d rounds", maxRounds)
}

// TestOnChangeDeltasAreOrderedAndDeduplicated: concurrent merges must
// deliver snapshots to OnChange serialized, without repeating a version.
func TestOnChangeDeltasAreOrderedAndDeduplicated(t *testing.T) {
	var mu sync.Mutex
	var sizes []int
	n, err := NewNode(Config{
		Self:     Member{ID: "self", URL: "http://self"},
		Interval: -1,
		OnChange: func(ms []Member) {
			mu.Lock()
			sizes = append(sizes, len(ms))
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				n.HandleExchange(Message{From: "x", Members: []Member{member(fmt.Sprintf("m-%d-%d", g, i), 0, Alive)}})
			}
		}(g)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(sizes) == 0 {
		t.Fatal("OnChange never fired")
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			t.Fatalf("OnChange snapshots went backwards: sizes %v", sizes)
		}
	}
	// 160 adds happened; the last delivered snapshot must be complete
	// (self + 160) even if intermediate versions were coalesced.
	if got := sizes[len(sizes)-1]; got != 161 {
		t.Fatalf("final OnChange snapshot has %d members, want 161", got)
	}
}
