package gossip

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"dramtherm/internal/obs"
)

// Transport carries one exchange to the member at url and returns its
// reply. The default posts JSON to url+Path; tests substitute in-memory
// meshes with injected drops and partitions.
type Transport func(ctx context.Context, url string, msg Message) (Message, error)

// Config tunes a Node. Self.ID is required; every other zero value
// selects a default.
type Config struct {
	// Self names this node in every table it touches. An empty URL makes
	// it an observer: it initiates exchanges but advertises no address.
	Self Member
	// Seeds are merged into the table at construction, alive at
	// incarnation 0 — the static -peers/-join list that bootstraps an
	// empty table.
	Seeds []Member
	// Interval is the gossip round period (default 1s; < 0 disables the
	// background loop — Round can still be called directly).
	Interval time.Duration
	// Fanout is how many random members each round exchanges with
	// (default 3).
	Fanout int
	// SuspectAfter is how long a Suspect member may stay unrefuted
	// before it is declared Dead (default 5×Interval).
	SuspectAfter time.Duration
	// Quarantine is how long a Dead member is remembered before being
	// forgotten (default 30×Interval).
	Quarantine time.Duration
	// Timeout bounds one exchange (default 2s).
	Timeout time.Duration
	// Transport overrides the HTTP exchange, for tests.
	Transport Transport
	// Client overrides the HTTP client behind the default transport.
	Client *http.Client
	// OnChange, when non-nil, observes every membership change with a
	// fresh table snapshot, in change order — the seam that re-forms the
	// sweep ring. It is called from gossip and handler goroutines and
	// must not block for long.
	OnChange func([]Member)
	// Seed seeds peer selection; 0 means a time-derived seed. Tests pin
	// it for reproducible rounds.
	Seed int64
	// Logf sinks exchange-failure logs (default: silent). When Logger is
	// unset, log records are rendered onto Logf one line each.
	Logf func(format string, v ...any)
	// Logger, when non-nil, receives structured exchange-failure events
	// and takes precedence over Logf.
	Logger *slog.Logger
	// Now overrides the clock, for tests.
	Now func() time.Time
}

// Node gossips one membership table: a background loop anti-entropy
// syncs it with Fanout random members per Interval, and HandleExchange
// serves the receiving half (wired to POST /v1/gossip by
// internal/httpapi). Close stops the loop; it is safe to call twice.
type Node struct {
	cfg   Config
	table *Table
	log   *slog.Logger

	// Instrumentation; nil (no-op) until Instrument.
	mRounds    *obs.Counter
	mExchanges *obs.CounterVec // {direction, result}

	rndMu sync.Mutex
	rnd   *rand.Rand

	notifyMu sync.Mutex
	notified uint64 // table version last delivered to OnChange

	stop chan struct{}
	once sync.Once
	wg   sync.WaitGroup
}

// NewNode builds a node over Self plus the seed members and, unless the
// interval disables it, starts the gossip loop. Call Close when done.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Self.ID == "" {
		return nil, errors.New("gossip: Config.Self.ID is required")
	}
	if cfg.Interval == 0 {
		cfg.Interval = time.Second
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = 3
	}
	// Interval < 0 only disables the background loop; the time-driven
	// transitions still need positive defaults for manually-driven
	// Rounds, so derive them from a positive base.
	base := cfg.Interval
	if base <= 0 {
		base = time.Second
	}
	if cfg.SuspectAfter == 0 {
		cfg.SuspectAfter = 5 * base
	}
	if cfg.Quarantine == 0 {
		cfg.Quarantine = 30 * base
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = time.Now().UnixNano()
	}
	n := &Node{
		cfg:  cfg,
		log:  cfg.Logger,
		rnd:  rand.New(rand.NewSource(cfg.Seed)),
		stop: make(chan struct{}),
	}
	if n.log == nil {
		if cfg.Logf != nil {
			n.log = obs.LogfLogger(cfg.Logf)
		} else {
			n.log = slog.New(slog.DiscardHandler)
		}
	}
	if n.cfg.Transport == nil {
		client := cfg.Client
		if client == nil {
			client = &http.Client{}
		}
		n.cfg.Transport = httpTransport(client)
	}
	n.table = NewTable(cfg.Self, cfg.SuspectAfter, cfg.Quarantine, cfg.Now)
	seeds := make([]Member, 0, len(cfg.Seeds))
	for _, s := range cfg.Seeds {
		if s.ID != cfg.Self.ID {
			seeds = append(seeds, Member{ID: s.ID, URL: s.URL})
		}
	}
	n.table.Merge(seeds)
	if cfg.Interval > 0 {
		n.wg.Add(1)
		go n.loop()
	}
	return n, nil
}

// Close stops the gossip loop and waits for it to exit. In-flight
// exchanges finish on their own timeouts.
func (n *Node) Close() {
	n.once.Do(func() { close(n.stop) })
	n.wg.Wait()
}

// Members returns the current table snapshot, sorted by id.
func (n *Node) Members() []Member { return n.table.Snapshot() }

// Suspect feeds a local failure detector's verdict into the table — the
// sweep ring's probe ejections plug in here. Unrefuted suspicions turn
// Dead after the suspicion timeout.
func (n *Node) Suspect(id string) {
	if n.table.Suspect(id) {
		n.notify()
	}
}

// Alive feeds a local detector's recovery verdict into the table — the
// sweep ring's probe readmissions plug in here.
func (n *Node) Alive(id string) {
	if n.table.Alive(id) {
		n.notify()
	}
}

// HandleExchange is the receiving half of an exchange: merge the
// caller's table, answer with ours. internal/httpapi wires it to
// POST /v1/gossip.
func (n *Node) HandleExchange(msg Message) Message {
	n.mExchanges.WithLabelValues("in", "ok").Inc()
	if n.table.Merge(msg.Members) {
		n.notify()
	}
	return Message{From: n.cfg.Self.ID, Members: n.table.Snapshot()}
}

// Round performs one gossip round synchronously: advance time-driven
// transitions, then push-pull with Fanout random dialable members. The
// background loop calls it every Interval; tests drive it directly.
func (n *Node) Round(ctx context.Context) {
	n.mRounds.Inc()
	if n.table.Tick() {
		n.notify()
	}
	targets := n.pickTargets()
	for _, m := range targets {
		tctx, cancel := context.WithTimeout(ctx, n.cfg.Timeout)
		reply, err := n.cfg.Transport(tctx, m.URL, Message{From: n.cfg.Self.ID, Members: n.table.Snapshot()})
		cancel()
		if err != nil {
			n.mExchanges.WithLabelValues("out", "error").Inc()
			n.log.Warn("gossip: exchange failed", "peer", m.ID, "err", err.Error())
			// A failed exchange is a detector signal of its own: suspect
			// the member so an unreachable node is eventually evicted
			// even when nothing else probes it.
			if n.table.Suspect(m.ID) {
				n.notify()
			}
			continue
		}
		n.mExchanges.WithLabelValues("out", "ok").Inc()
		changed := n.table.Merge(reply.Members)
		// The member answered: clear any lingering local suspicion.
		changed = n.table.Alive(m.ID) || changed
		if changed {
			n.notify()
		}
	}
}

// Instrument registers the node's metric families on reg: gossip rounds
// and exchanges, membership state transitions, the table version, and
// members by state (counted from the same Snapshot healthz membership
// reports). Call it once, before the gossip loop starts exchanging; a
// nil reg is a no-op.
func (n *Node) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	n.mRounds = reg.Counter("dramtherm_gossip_rounds_total",
		"Gossip rounds performed (background loop ticks plus direct Round calls).")
	n.mExchanges = reg.CounterVec("dramtherm_gossip_exchanges_total",
		"Push-pull exchanges, by direction (out: initiated, in: served) and result.",
		"direction", "result")
	n.table.transitions = reg.CounterVec("dramtherm_gossip_transitions_total",
		"Membership table transitions, by destination: joined, alive, suspect, dead, forgotten, refuted (self rumor rebutted).",
		"to")
	reg.GaugeFunc("dramtherm_gossip_table_version",
		"Membership table version; bumps on every visible change.",
		func() float64 { return float64(n.table.Version()) })
	reg.SampleFunc(obs.KindGauge, "dramtherm_gossip_members",
		"Membership table rows by state, self included.",
		[]string{"state"}, func() []obs.Sample {
			counts := map[State]int{}
			for _, m := range n.Members() {
				counts[m.State]++
			}
			out := make([]obs.Sample, 0, len(stateNames))
			for s := Alive; s <= Dead; s++ {
				out = append(out, obs.Sample{LabelValues: []string{s.String()}, Value: float64(counts[s])})
			}
			return out
		})
}

// pickTargets selects up to Fanout distinct non-self, non-dead members
// that have an address.
func (n *Node) pickTargets() []Member {
	var cands []Member
	for _, m := range n.table.Snapshot() {
		if m.ID != n.cfg.Self.ID && m.State != Dead && m.URL != "" {
			cands = append(cands, m)
		}
	}
	n.rndMu.Lock()
	n.rnd.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	n.rndMu.Unlock()
	if len(cands) > n.cfg.Fanout {
		cands = cands[:n.cfg.Fanout]
	}
	return cands
}

// notify delivers the freshest snapshot to OnChange, serialized and
// deduplicated by table version so concurrent merges cannot reorder or
// repeat deliveries.
func (n *Node) notify() {
	if n.cfg.OnChange == nil {
		return
	}
	n.notifyMu.Lock()
	defer n.notifyMu.Unlock()
	v := n.table.Version()
	if v == n.notified {
		return
	}
	n.notified = v
	n.cfg.OnChange(n.table.Snapshot())
}

func (n *Node) loop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan struct{})
			go func() { defer close(done); n.Round(ctx) }()
			select {
			case <-done:
			case <-n.stop:
				cancel()
				<-done
				return
			}
			cancel()
		case <-n.stop:
			return
		}
	}
}

// httpTransport posts msg as JSON to url+Path and decodes the reply.
func httpTransport(client *http.Client) Transport {
	return func(ctx context.Context, url string, msg Message) (Message, error) {
		body, err := json.Marshal(msg)
		if err != nil {
			return Message{}, err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+Path, bytes.NewReader(body))
		if err != nil {
			return Message{}, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return Message{}, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //nolint:errcheck
			return Message{}, fmt.Errorf("gossip: %s answered %s", url, resp.Status)
		}
		var reply Message
		if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&reply); err != nil {
			return Message{}, fmt.Errorf("gossip: decoding reply from %s: %w", url, err)
		}
		if len(reply.Members) > MaxMembers {
			return Message{}, fmt.Errorf("gossip: reply from %s has %d members (max %d)", url, len(reply.Members), MaxMembers)
		}
		return reply, nil
	}
}
