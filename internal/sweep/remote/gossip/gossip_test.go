package gossip

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock shared by every table of a test.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1700000000, 0)} }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func member(id string, inc uint64, st State) Member {
	return Member{ID: id, URL: "http://" + id, Incarnation: inc, State: st}
}

func stateOf(t *testing.T, tb *Table, id string) (Member, bool) {
	t.Helper()
	for _, m := range tb.Snapshot() {
		if m.ID == id {
			return m, true
		}
	}
	return Member{}, false
}

func TestMergePrecedence(t *testing.T) {
	clk := newFakeClock()
	tb := NewTable(Member{ID: "self"}, time.Minute, time.Hour, clk.now)

	// Unknown members are adopted.
	if !tb.Merge([]Member{member("a", 0, Alive)}) {
		t.Fatal("adopting an unknown member reported no change")
	}
	// Same incarnation, more severe state wins.
	if !tb.Merge([]Member{member("a", 0, Suspect)}) {
		t.Fatal("suspect at equal incarnation must override alive")
	}
	// Same incarnation, less severe state loses.
	if tb.Merge([]Member{member("a", 0, Alive)}) {
		t.Fatal("alive at equal incarnation must not override suspect")
	}
	// Higher incarnation always wins — that is the refutation channel.
	if !tb.Merge([]Member{member("a", 1, Alive)}) {
		t.Fatal("alive at a higher incarnation must override suspect")
	}
	if m, _ := stateOf(t, tb, "a"); m.State != Alive || m.Incarnation != 1 {
		t.Fatalf("member a = %+v, want alive at incarnation 1", m)
	}
	// Dead at the same incarnation beats everything...
	tb.Merge([]Member{member("a", 1, Dead)})
	if tb.Merge([]Member{member("a", 1, Suspect)}) {
		t.Fatal("suspect must not override dead at the same incarnation")
	}
	// ...but a higher incarnation resurrects (the member refuted).
	if !tb.Merge([]Member{member("a", 2, Alive)}) {
		t.Fatal("alive at a higher incarnation must resurrect the dead")
	}
	// Empty ids never enter the table.
	tb.Merge([]Member{{URL: "http://nowhere", Incarnation: 9}})
	if ms := tb.Snapshot(); len(ms) != 2 { // self + a
		t.Fatalf("table has %d members %v, want 2", len(ms), ms)
	}
}

// TestMergeIgnoresUnknownDead: a death rumor about a member this table
// has already forgotten (or never knew) must not be adopted — it would
// restart the quarantine clock and corpses would ping-pong between
// tables forever instead of ageing out cluster-wide.
func TestMergeIgnoresUnknownDead(t *testing.T) {
	clk := newFakeClock()
	tb := NewTable(Member{ID: "self"}, time.Minute, time.Hour, clk.now)
	if tb.Merge([]Member{member("ghost", 4, Dead)}) {
		t.Fatal("a dead rumor about an unknown member was adopted")
	}
	if _, ok := stateOf(t, tb, "ghost"); ok {
		t.Fatal("forgotten corpse re-entered the table")
	}
	// The same rumor about a member we do know still lands.
	tb.Merge([]Member{member("a", 0, Alive)})
	if !tb.Merge([]Member{member("a", 0, Dead)}) {
		t.Fatal("a dead rumor about a known member must be adopted")
	}
}

// TestManualRoundTimeoutsStayPositive: Interval < 0 disables only the
// background loop; manually-driven Rounds must still confirm deaths
// and forget the quarantined — the timeout defaults cannot go negative.
func TestManualRoundTimeoutsStayPositive(t *testing.T) {
	clk := newFakeClock()
	n, err := NewNode(Config{
		Self:     Member{ID: "self", URL: "mesh://self"},
		Interval: -1,
		Now:      clk.now,
		Transport: func(ctx context.Context, url string, msg Message) (Message, error) {
			return Message{}, fmt.Errorf("unreachable")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.table.Merge([]Member{member("a", 0, Alive)})
	n.Suspect("a")
	clk.advance(6 * time.Second) // past the 5×1s fallback default
	n.Round(context.Background())
	if m, _ := stateOf(t, n.table, "a"); m.State != Dead {
		t.Fatalf("unrefuted suspect = %+v after the timeout, want dead", m)
	}
	clk.advance(31 * time.Second) // past the 30×1s quarantine fallback
	n.Round(context.Background())
	if _, ok := stateOf(t, n.table, "a"); ok {
		t.Fatal("quarantined corpse never forgotten under manual rounds")
	}
}

func TestMergeAdoptsURLForUnaddressedMember(t *testing.T) {
	clk := newFakeClock()
	tb := NewTable(Member{ID: "self"}, time.Minute, time.Hour, clk.now)
	tb.Merge([]Member{{ID: "a", Incarnation: 0}})
	if !tb.Merge([]Member{member("a", 0, Alive)}) {
		t.Fatal("learning a URL for an unaddressed member reported no change")
	}
	if m, _ := stateOf(t, tb, "a"); m.URL != "http://a" {
		t.Fatalf("member a URL = %q, want http://a", m.URL)
	}
}

func TestSelfRefutesRumors(t *testing.T) {
	clk := newFakeClock()
	tb := NewTable(Member{ID: "self", URL: "http://self"}, time.Minute, time.Hour, clk.now)

	// A suspect rumor about self at our incarnation forces a bump.
	tb.Merge([]Member{member("self", 0, Suspect)})
	if m, _ := stateOf(t, tb, "self"); m.State != Alive || m.Incarnation != 1 {
		t.Fatalf("self = %+v, want alive at incarnation 1 after refuting", m)
	}
	// A dead rumor at a later incarnation than ours is outbid too.
	tb.Merge([]Member{member("self", 7, Dead)})
	if m, _ := stateOf(t, tb, "self"); m.State != Alive || m.Incarnation != 8 {
		t.Fatalf("self = %+v, want alive at incarnation 8", m)
	}
	// Stale rumors (below our incarnation) change nothing.
	if tb.Merge([]Member{member("self", 2, Dead)}) {
		t.Fatal("a stale rumor about self must be ignored")
	}
	// Suspecting self locally is a no-op: self knows better.
	if tb.Suspect("self") {
		t.Fatal("Suspect(self) must not change the table")
	}
}

func TestSuspectAliveAndTick(t *testing.T) {
	clk := newFakeClock()
	tb := NewTable(Member{ID: "self"}, time.Minute, time.Hour, clk.now)
	tb.Merge([]Member{member("a", 0, Alive), member("b", 0, Alive)})

	if !tb.Suspect("a") {
		t.Fatal("suspecting an alive member reported no change")
	}
	if tb.Suspect("a") {
		t.Fatal("re-suspecting a suspect member must be a no-op")
	}
	// Direct contact clears a local suspicion at the same incarnation.
	if !tb.Alive("a") {
		t.Fatal("Alive on a suspect member reported no change")
	}

	// An unrefuted suspicion turns dead after the timeout...
	tb.Suspect("a")
	clk.advance(30 * time.Second)
	if tb.Tick() {
		t.Fatal("Tick before the suspicion timeout must change nothing")
	}
	clk.advance(31 * time.Second)
	if !tb.Tick() {
		t.Fatal("Tick past the suspicion timeout must confirm death")
	}
	if m, _ := stateOf(t, tb, "a"); m.State != Dead {
		t.Fatalf("member a = %+v, want dead", m)
	}
	// ...Alive cannot resurrect the dead (only an incarnation bump can)...
	if tb.Alive("a") {
		t.Fatal("Alive must not resurrect a dead member")
	}
	// ...and the quarantine eventually forgets it.
	clk.advance(time.Hour)
	if !tb.Tick() {
		t.Fatal("Tick past the quarantine TTL must forget the dead")
	}
	if _, ok := stateOf(t, tb, "a"); ok {
		t.Fatal("member a still in the table after quarantine expiry")
	}
	if _, ok := stateOf(t, tb, "b"); !ok {
		t.Fatal("member b vanished; quarantine must only remove the dead")
	}
}

func TestVersionCountsChanges(t *testing.T) {
	clk := newFakeClock()
	tb := NewTable(Member{ID: "self"}, time.Minute, time.Hour, clk.now)
	v0 := tb.Version()
	tb.Merge([]Member{member("a", 0, Alive)})
	if tb.Version() == v0 {
		t.Fatal("a merge that changed the table must bump the version")
	}
	v1 := tb.Version()
	tb.Merge([]Member{member("a", 0, Alive)}) // no-op
	if tb.Version() != v1 {
		t.Fatal("a no-op merge must not bump the version")
	}
}

func TestStateJSONRejectsUnknown(t *testing.T) {
	for _, s := range []State{Alive, Suspect, Dead} {
		b, err := s.MarshalJSON()
		if err != nil {
			t.Fatalf("marshal %v: %v", s, err)
		}
		var back State
		if err := back.UnmarshalJSON(b); err != nil || back != s {
			t.Fatalf("round trip of %v: got %v, err %v", s, back, err)
		}
	}
	var s State
	for _, bad := range []string{`"zombie"`, `3`, `{}`} {
		if err := s.UnmarshalJSON([]byte(bad)); err == nil {
			t.Fatalf("unmarshal %s succeeded, want error", bad)
		}
	}
	if _, err := State(9).MarshalJSON(); err == nil {
		t.Fatal("marshal of an unknown state succeeded, want error")
	}
}

func TestNodeRequiresSelfID(t *testing.T) {
	if _, err := NewNode(Config{}); err == nil {
		t.Fatal("NewNode without Self.ID succeeded, want error")
	}
}

func TestPickTargetsSkipsSelfDeadAndUnaddressed(t *testing.T) {
	n, err := NewNode(Config{
		Self:     Member{ID: "self", URL: "http://self"},
		Interval: -1, // no background loop
		Fanout:   10,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.table.Merge([]Member{
		member("a", 0, Alive),
		member("b", 0, Suspect),
		member("dead", 0, Dead),
		{ID: "observer", Incarnation: 0}, // no URL
	})
	targets := n.pickTargets()
	want := map[string]bool{"a": true, "b": true}
	if len(targets) != len(want) {
		t.Fatalf("targets %v, want exactly a and b", targets)
	}
	for _, m := range targets {
		if !want[m.ID] {
			t.Fatalf("unexpected gossip target %q in %v", m.ID, targets)
		}
	}
}

func TestHandleExchangeMergesAndReplies(t *testing.T) {
	n, err := NewNode(Config{Self: Member{ID: "self", URL: "http://self"}, Interval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	reply := n.HandleExchange(Message{From: "a", Members: []Member{member("a", 0, Alive)}})
	if reply.From != "self" {
		t.Fatalf("reply.From = %q, want self", reply.From)
	}
	ids := fmt.Sprint(reply.Members)
	if len(reply.Members) != 2 {
		t.Fatalf("reply members %s, want self and a", ids)
	}
}
