package gossip

import (
	"encoding/json"
	"log/slog"
	"reflect"
	"testing"
	"time"
)

// FuzzGossipDecode feeds arbitrary bytes through the exact path a
// POST /v1/gossip body takes — JSON decode, bounds check, then
// HandleExchange — and asserts the two wire-safety invariants: no
// payload ever panics the node, and a payload rejected by decoding or
// bounds checking never mutates the membership table. Accepted payloads
// may change the table, but never into an invalid shape (rows without
// ids, a lost self entry, or states outside the enum).
func FuzzGossipDecode(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"from":"a","members":[]}`))
	f.Add([]byte(`{"from":"a","members":[{"id":"w1","url":"http://w1:8080","incarnation":3,"state":"alive"}]}`))
	f.Add([]byte(`{"from":"a","members":[{"id":"w2","incarnation":18446744073709551615,"state":"dead"}]}`))
	f.Add([]byte(`{"from":"a","members":[{"id":"self","state":"suspect"}]}`))
	f.Add([]byte(`{"from":"a","members":[{"id":"","url":"http://ghost"}]}`))
	f.Add([]byte(`{"from":"a","members":[{"id":"w1","state":"zombie"}]}`))
	f.Add([]byte(`{"members":[{"id":"w1","state":"alive"},{"id":"w1","state":"dead"}]}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"members": [{"id": "\\u0000", "state": "alive"}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		clk := newFakeClock()
		tb := NewTable(Member{ID: "self", URL: "http://self"}, time.Minute, time.Hour, clk.now)
		tb.Merge([]Member{
			{ID: "w1", URL: "http://w1", Incarnation: 1},
			{ID: "w2", URL: "http://w2", Incarnation: 2, State: Suspect},
		})
		n := &Node{cfg: Config{Self: Member{ID: "self", URL: "http://self"}}, table: tb, log: slog.New(slog.DiscardHandler)}
		before := tb.Snapshot()
		beforeVersion := tb.Version()

		// The handler's decode-and-validate, inlined.
		var msg Message
		err := json.Unmarshal(data, &msg)
		if err == nil && len(msg.Members) > MaxMembers {
			err = errNoMutation
		}
		if err != nil {
			// Rejected payloads must leave the table untouched.
			if tb.Version() != beforeVersion || !reflect.DeepEqual(before, tb.Snapshot()) {
				t.Fatalf("rejected payload %q mutated the table:\nbefore %v\nafter  %v", data, before, tb.Snapshot())
			}
			return
		}

		reply := n.HandleExchange(msg)
		if reply.From != "self" {
			t.Fatalf("reply.From = %q, want self", reply.From)
		}
		checkInvariants(t, reply.Members)
		checkInvariants(t, tb.Snapshot())
	})
}

// errNoMutation marks the bounds-check rejection in the fuzz harness.
var errNoMutation = jsonError("too many members")

type jsonError string

func (e jsonError) Error() string { return string(e) }

// checkInvariants asserts a snapshot is shaped like a table the rest of
// the system can consume, whatever garbage was merged into it.
func checkInvariants(t *testing.T, ms []Member) {
	t.Helper()
	seen := make(map[string]bool, len(ms))
	self := false
	for i, m := range ms {
		if m.ID == "" {
			t.Fatalf("snapshot row %d has an empty id: %+v", i, m)
		}
		if seen[m.ID] {
			t.Fatalf("snapshot has duplicate rows for %q", m.ID)
		}
		seen[m.ID] = true
		if m.State > Dead {
			t.Fatalf("snapshot row %q has out-of-enum state %d", m.ID, m.State)
		}
		if i > 0 && ms[i-1].ID > m.ID {
			t.Fatalf("snapshot is not sorted at row %d: %q > %q", i, ms[i-1].ID, m.ID)
		}
		if m.ID == "self" {
			self = true
			if m.State != Alive {
				t.Fatalf("self is %v; rumors must be refuted, not adopted", m.State)
			}
		}
	}
	if !self {
		t.Fatal("snapshot lost the self entry")
	}
}
