package gossip

import (
	"context"
	"runtime"
	"testing"
	"time"
)

// TestNodeCloseNoLeak: Close must stop the gossip loop even while a
// round is blocked inside a hung transport — the round context is
// cancelled and the loop goroutine unwinds. Repeated open/close cycles
// must leave the goroutine count where it started.
func TestNodeCloseNoLeak(t *testing.T) {
	runtime.GC()
	baseline := runtime.NumGoroutine()

	for i := 0; i < 5; i++ {
		block := make(chan struct{})
		n, err := NewNode(Config{
			Self:     Member{ID: "self", URL: "mesh://self"},
			Seeds:    []Member{{ID: "a", URL: "mesh://a"}, {ID: "b", URL: "mesh://b"}},
			Interval: time.Millisecond,
			Transport: func(ctx context.Context, url string, msg Message) (Message, error) {
				// A hung member: never answers until the node gives up.
				select {
				case <-ctx.Done():
					return Message{}, ctx.Err()
				case <-block:
					return Message{}, context.Canceled
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond) // let a round block in the transport
		done := make(chan struct{})
		go func() { defer close(done); n.Close() }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("Close wedged behind a hung transport")
		}
		close(block)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked across Close: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
