// Package gossip disseminates sweep-ring membership epidemically, so
// dramthermd workers can join and leave a running cluster without a
// coordinator restart. Each node keeps a versioned membership table
// (peer id, url, incarnation, alive/suspect/dead) and anti-entropy
// syncs it with a few random peers per interval over POST /v1/gossip:
// the caller pushes its table, the callee merges it and replies with
// its own, and the caller merges the reply (push-pull). Conflicts
// resolve SWIM-style — a higher incarnation always wins, and at equal
// incarnations the more severe state (dead > suspect > alive) wins —
// so a slow peer that learns it is suspected refutes by bumping its
// own incarnation instead of being falsely evicted. Confirmed-dead
// members linger in a quarantine state (so the death outlives stale
// alive rumors) and are forgotten after a TTL.
package gossip

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"dramtherm/internal/obs"
)

// Path is the HTTP exchange endpoint served by internal/httpapi: POST
// a Message, get the callee's post-merge Message back.
const Path = "/v1/gossip"

// MaxMembers bounds the member count of one decoded Message — far above
// any sensible cluster, low enough to reject garbage early.
const MaxMembers = 4096

// State is a member's health in the table. The zero value is Alive.
type State uint8

const (
	// Alive members are ring candidates.
	Alive State = iota
	// Suspect members are still ring candidates, but their detector
	// timed out somewhere: unless they refute (by bumping their
	// incarnation) they turn Dead after the suspicion timeout.
	Suspect
	// Dead members are out of the ring and quarantined: the death rumor
	// keeps circulating so stale alive rumors at the same incarnation
	// cannot resurrect them, until the quarantine TTL forgets them.
	Dead
)

var stateNames = [...]string{"alive", "suspect", "dead"}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// MarshalJSON encodes the state by name.
func (s State) MarshalJSON() ([]byte, error) {
	if int(s) >= len(stateNames) {
		return nil, fmt.Errorf("gossip: unknown state %d", uint8(s))
	}
	return json.Marshal(s.String())
}

// UnmarshalJSON rejects unknown states, so a malformed exchange fails
// decoding as a whole instead of smuggling garbage into the table.
func (s *State) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	for i, n := range stateNames {
		if n == name {
			*s = State(i)
			return nil
		}
	}
	return fmt.Errorf("gossip: unknown state %q", name)
}

// Member is one row of the membership table.
type Member struct {
	// ID identifies the node across the cluster; it must be unique and
	// stable (dramthermd derives it from the advertised URL).
	ID string `json:"id"`
	// URL is the node's advertised base URL; empty for observer members
	// that initiate exchanges but serve none (a coordinator without an
	// inbound server).
	URL string `json:"url,omitempty"`
	// Incarnation is the member's self-asserted version: only the
	// member itself bumps it, to refute a suspicion or death rumor.
	Incarnation uint64 `json:"incarnation"`
	// State is the rumored health.
	State State `json:"state"`
}

// Message is the POST /v1/gossip body and reply: the sender's whole
// membership table (the sender itself included).
type Message struct {
	// From is the sending member's id, for logs.
	From string `json:"from"`
	// Members is the sender's table snapshot.
	Members []Member `json:"members"`
}

// entry is a Member plus the local wall-clock time of its last state
// transition, which drives the suspect timeout and the dead quarantine.
type entry struct {
	m     Member
	since time.Time
}

// Table is one node's versioned membership view. It is safe for
// concurrent use; the Node gossips it, and local failure detectors
// (ring probes, failed exchanges) feed it via Suspect.
type Table struct {
	mu           sync.Mutex
	self         string
	selfURL      string
	selfInc      uint64
	entries      map[string]*entry
	version      uint64 // bumped on every visible change
	now          func() time.Time
	suspectAfter time.Duration
	quarantine   time.Duration

	transitions *obs.CounterVec // {to}; nil (no-op) until Node.Instrument
}

// NewTable builds a table containing only self, alive at incarnation 0.
// suspectAfter bounds how long a Suspect member may stay unrefuted
// before Tick declares it Dead; quarantine is how long a Dead member is
// remembered before Tick forgets it. now overrides the clock (nil means
// time.Now).
func NewTable(self Member, suspectAfter, quarantine time.Duration, now func() time.Time) *Table {
	if now == nil {
		now = time.Now
	}
	t := &Table{
		self:         self.ID,
		selfURL:      self.URL,
		selfInc:      self.Incarnation,
		entries:      make(map[string]*entry),
		now:          now,
		suspectAfter: suspectAfter,
		quarantine:   quarantine,
	}
	t.entries[self.ID] = &entry{m: Member{ID: self.ID, URL: self.URL, Incarnation: self.Incarnation}, since: now()}
	return t
}

// Version counts visible table changes; pollers use it to skip
// no-op notifications.
func (t *Table) Version() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.version
}

// Snapshot returns every member sorted by id, self included.
func (t *Table) Snapshot() []Member {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.snapshotLocked()
}

func (t *Table) snapshotLocked() []Member {
	out := make([]Member, 0, len(t.entries))
	for _, e := range t.entries {
		out = append(out, e.m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Merge folds a remote table snapshot into this one, returning whether
// anything visible changed. Precedence is SWIM's: a higher incarnation
// always wins; at equal incarnations the more severe state wins; ties
// are ignored. A rumor about self that is not "alive" at our current
// (or a later) incarnation is refuted: self bumps its incarnation past
// the rumor's and re-asserts alive. Members with an empty id are
// dropped — a malformed exchange can never grow an undialable row.
func (t *Table) Merge(ms []Member) (changed bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	for _, m := range ms {
		if m.ID == "" {
			continue
		}
		if m.ID == t.self {
			if m.State != Alive && m.Incarnation >= t.selfInc {
				t.selfInc = m.Incarnation + 1
				t.refuteLocked(now)
				t.transitions.WithLabelValues("refuted").Inc()
				changed = true
			}
			continue
		}
		e, ok := t.entries[m.ID]
		switch {
		case !ok:
			if m.State == Dead {
				// Never adopt a dead rumor about a member we've already
				// forgotten (or never knew): it would restart the
				// quarantine clock and the corpse would ping-pong
				// between tables forever instead of ageing out.
				continue
			}
			t.entries[m.ID] = &entry{m: m, since: now}
			t.transitions.WithLabelValues("joined").Inc()
			changed = true
		case m.Incarnation > e.m.Incarnation,
			m.Incarnation == e.m.Incarnation && m.State > e.m.State:
			if m.State != e.m.State {
				e.since = now
				t.transitions.WithLabelValues(m.State.String()).Inc()
			}
			e.m = m
			changed = true
		case m.URL != "" && e.m.URL == "":
			// Same rumor, better address: adopt the URL alone.
			e.m.URL = m.URL
			changed = true
		}
	}
	if changed {
		t.version++
	}
	return changed
}

// refuteLocked rewrites self's row alive at the (already bumped)
// incarnation, so subsequent exchanges spread the refutation.
func (t *Table) refuteLocked(now time.Time) {
	e := t.entries[t.self]
	e.m = Member{ID: t.self, URL: t.selfURL, Incarnation: t.selfInc}
	e.since = now
}

// Suspect records a local detector's verdict: the member timed out. An
// Alive member turns Suspect at its current incarnation; Suspect and
// Dead members are left as they are. Suspecting self refutes instead
// (self knows it is alive better than any detector).
func (t *Table) Suspect(id string) (changed bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id == t.self {
		return false
	}
	e, ok := t.entries[id]
	if !ok || e.m.State != Alive {
		return false
	}
	e.m.State = Suspect
	e.since = t.now()
	t.transitions.WithLabelValues("suspect").Inc()
	t.version++
	return true
}

// Alive records direct positive contact with a member (a probe or
// exchange answered): a Suspect member returns to Alive at the same
// incarnation. Dead members are not resurrected — only the member's own
// incarnation bump (via Merge) can do that, so a stale detector cannot
// fight the quarantine.
func (t *Table) Alive(id string) (changed bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[id]
	if !ok || e.m.State != Suspect {
		return false
	}
	e.m.State = Alive
	e.since = t.now()
	t.transitions.WithLabelValues("alive").Inc()
	t.version++
	return true
}

// Tick advances time-driven transitions: Suspect members unrefuted for
// suspectAfter turn Dead, and Dead members quarantined for the TTL are
// forgotten. It returns whether anything visible changed; the Node
// calls it once per gossip round.
func (t *Table) Tick() (changed bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	for id, e := range t.entries {
		if id == t.self {
			continue
		}
		switch e.m.State {
		case Suspect:
			if t.suspectAfter >= 0 && now.Sub(e.since) >= t.suspectAfter {
				e.m.State = Dead
				e.since = now
				t.transitions.WithLabelValues("dead").Inc()
				changed = true
			}
		case Dead:
			if t.quarantine >= 0 && now.Sub(e.since) >= t.quarantine {
				delete(t.entries, id)
				t.transitions.WithLabelValues("forgotten").Inc()
				changed = true
			}
		}
	}
	if changed {
		t.version++
	}
	return changed
}
