package remote_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dramtherm/internal/core"
	"dramtherm/internal/httpapi"
	"dramtherm/internal/sim"
	"dramtherm/internal/sweep"
	"dramtherm/internal/sweep/remote"
)

// countingWorker is an embedded dramthermd that counts exec requests by
// endpoint and whose simulations can be frozen (to stage a mid-stream
// death deterministically).
type countingWorker struct {
	ts      *httptest.Server
	api     *httpapi.Server
	execs   atomic.Int64
	batches atomic.Int64
	frozen  atomic.Bool
	gotRun  chan struct{} // closed on the first frozen run
	once    sync.Once
	kill    func()
}

func newCountingWorker(t *testing.T) *countingWorker {
	t.Helper()
	w := &countingWorker{gotRun: make(chan struct{})}
	eng := sweep.NewEngine(core.NewSystem(core.DefaultConfig()), 4)
	eng.SetRunFunc(func(ctx context.Context, rs core.RunSpec) (sim.MEMSpotResult, error) {
		if w.frozen.Load() {
			w.once.Do(func() { close(w.gotRun) })
			<-ctx.Done() // hold the stream open until the worker is killed
			return sim.MEMSpotResult{}, ctx.Err()
		}
		secs := 100.0
		if rs.Policy.Name() != "No-limit" {
			secs = 150
		}
		return sim.MEMSpotResult{Seconds: secs, Completed: 1}, nil
	})
	w.api = httpapi.New(context.Background(), eng, httpapi.Config{Logf: func(string, ...any) {}})
	w.ts = httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case remote.ExecPath:
			w.execs.Add(1)
		case remote.BatchPath:
			w.batches.Add(1)
		}
		w.api.ServeHTTP(rw, r)
	}))
	var killOnce sync.Once
	w.kill = func() {
		killOnce.Do(func() {
			w.ts.CloseClientConnections()
			w.ts.Close()
			w.api.Close()
		})
	}
	t.Cleanup(w.kill)
	return w
}

// singleNodeTable sweeps specs on one plain fake engine — the reference
// every cluster run must reproduce byte-for-byte.
func singleNodeTable(t *testing.T, specs []sweep.Spec) string {
	t.Helper()
	res, err := fakeEngine(nil, 0).Sweep(context.Background(), specs, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Table("t").String()
}

// TestBatchedSweepOneRequestPerPeer is the batched dispatch acceptance
// test: a multi-peer sweep costs exactly one /v1/exec/batch request per
// live peer that owns a shard — never one request per spec — and the
// report table is byte-identical to single-node execution.
func TestBatchedSweepOneRequestPerPeer(t *testing.T) {
	specs := sweep.Grid{
		Mixes:    []string{"W1", "W2"},
		Policies: []string{"DTM-TS", "DTM-BW", "DTM-ACG", "DTM-CDVFS"},
	}.Expand()

	workers := []*countingWorker{newCountingWorker(t), newCountingWorker(t), newCountingWorker(t)}
	coord := fakeEngine(nil, 0)
	b := newBackend(t, coord, remote.Config{Peers: []remote.Peer{
		{ID: "w0", URL: workers[0].ts.URL},
		{ID: "w1", URL: workers[1].ts.URL},
		{ID: "w2", URL: workers[2].ts.URL},
	}})
	coord.SetBatchBackend(b)

	// The plan tells us which peers own a shard of this grid.
	owners := map[string]bool{}
	for _, sh := range b.PlanShards(specs) {
		if sh.Peer != "" {
			owners[sh.Peer] = true
		}
	}
	if len(owners) < 2 {
		t.Fatalf("grid of %d specs landed on %d peers; want a multi-peer spread", len(specs), len(owners))
	}

	res, err := coord.Sweep(context.Background(), specs, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Table("t").String(), singleNodeTable(t, specs); got != want {
		t.Fatalf("batched table differs from single-node:\n--- single ---\n%s--- batched ---\n%s", want, got)
	}
	for i, w := range workers {
		id := []string{"w0", "w1", "w2"}[i]
		wantBatches := int64(0)
		if owners[id] {
			wantBatches = 1
		}
		if got := w.batches.Load(); got != wantBatches {
			t.Errorf("%s served %d batch requests, want %d", id, got, wantBatches)
		}
		if got := w.execs.Load(); got != 0 {
			t.Errorf("%s served %d single-exec requests, want 0", id, got)
		}
	}
}

// TestBatchedSweepMidStreamKill: a peer that dies mid-stream acks
// nothing; its whole shard re-plans onto the surviving ring in one more
// batch request, and the table still comes out byte-identical.
func TestBatchedSweepMidStreamKill(t *testing.T) {
	specs := sweep.Grid{
		Mixes:    []string{"W1", "W2"},
		Policies: []string{"DTM-TS", "DTM-BW", "DTM-ACG", "DTM-CDVFS"},
	}.Expand()

	victim, survivor := newCountingWorker(t), newCountingWorker(t)
	coord := fakeEngine(nil, 0)
	b := newBackend(t, coord, remote.Config{
		Peers: []remote.Peer{
			{ID: "victim", URL: victim.ts.URL},
			{ID: "survivor", URL: survivor.ts.URL},
		},
		Local: coord.Exec,
	})
	coord.SetBatchBackend(b)

	victimOwns, survivorOwns := false, false
	for _, sh := range b.PlanShards(specs) {
		switch sh.Peer {
		case "victim":
			victimOwns = true
		case "survivor":
			survivorOwns = true
		}
	}
	if !victimOwns {
		t.Fatalf("victim owns no shard of this grid; pick a bigger grid")
	}

	// Freeze the victim: its first simulation holds its batch stream open
	// (nothing acked), then the kill truncates it.
	victim.frozen.Store(true)
	go func() {
		select {
		case <-victim.gotRun:
		case <-time.After(10 * time.Second):
		}
		victim.kill()
	}()

	res, err := coord.Sweep(context.Background(), specs, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Table("t").String(), singleNodeTable(t, specs); got != want {
		t.Fatalf("failover table differs from single-node:\n--- single ---\n%s--- failover ---\n%s", want, got)
	}
	if got := victim.batches.Load(); got != 1 {
		t.Errorf("victim served %d batch requests, want 1 (the one that died)", got)
	}
	wantSurvivor := int64(1) // the failover re-plan
	if survivorOwns {
		wantSurvivor = 2 // its own shard first
	}
	if got := survivor.batches.Load(); got != wantSurvivor {
		t.Errorf("survivor served %d batch requests, want %d", got, wantSurvivor)
	}
	if got := victim.execs.Load() + survivor.execs.Load(); got != 0 {
		t.Errorf("cluster served %d single-exec requests, want 0 in batched mode", got)
	}
}

// TestBatchFallbackToSingles: a healthy peer that cannot take its shard
// as one batch — an older node without the endpoint (404) or one whose
// MaxBatch is smaller than the shard (413) — is served spec-at-a-time
// instead of failing the sweep or being ejected.
func TestBatchFallbackToSingles(t *testing.T) {
	specs := sweep.Grid{
		Mixes:    []string{"W1", "W2"},
		Policies: []string{"DTM-TS", "DTM-BW", "DTM-ACG", "DTM-CDVFS"},
	}.Expand()

	newIncapableWorker := func(cfg httpapi.Config, fake404 bool) *countingWorker {
		w := &countingWorker{gotRun: make(chan struct{})}
		eng := sweep.NewEngine(core.NewSystem(core.DefaultConfig()), 4)
		eng.SetRunFunc(func(ctx context.Context, rs core.RunSpec) (sim.MEMSpotResult, error) {
			secs := 100.0
			if rs.Policy.Name() != "No-limit" {
				secs = 150
			}
			return sim.MEMSpotResult{Seconds: secs, Completed: 1}, nil
		})
		cfg.Logf = func(string, ...any) {}
		w.api = httpapi.New(context.Background(), eng, cfg)
		w.ts = httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			switch r.URL.Path {
			case remote.ExecPath:
				w.execs.Add(1)
			case remote.BatchPath:
				w.batches.Add(1)
				if fake404 { // a pre-batch node: the endpoint does not exist
					http.NotFound(rw, r)
					return
				}
			}
			w.api.ServeHTTP(rw, r)
		}))
		t.Cleanup(func() { w.ts.Close(); w.api.Close() })
		return w
	}
	// legacy pretends to be a pre-batch node: its batch route 404s.
	legacy := newIncapableWorker(httpapi.Config{}, true)
	// tiny accepts at most one spec per batch, so any real shard 413s.
	tiny := newIncapableWorker(httpapi.Config{MaxBatch: 1}, false)

	coord := fakeEngine(nil, 0)
	b := newBackend(t, coord, remote.Config{Peers: []remote.Peer{
		{ID: "legacy", URL: legacy.ts.URL},
		{ID: "tiny", URL: tiny.ts.URL},
	}})
	coord.SetBatchBackend(b)

	res, err := coord.Sweep(context.Background(), specs, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Table("t").String(), singleNodeTable(t, specs); got != want {
		t.Fatalf("fallback table differs from single-node:\n--- single ---\n%s--- fallback ---\n%s", want, got)
	}
	// Every spec was served over /v1/exec by the peer that owned it.
	if got := legacy.execs.Load() + tiny.execs.Load(); got != int64(len(specs)) {
		t.Errorf("singles served = %d, want %d", got, len(specs))
	}
	for _, st := range b.Status() {
		if !st.Up {
			t.Errorf("peer %s was ejected; batch-incapable peers must stay in the ring", st.ID)
		}
	}
}

// TestPlanShards: the plan covers every spec exactly once, groups by the
// routing ring's owner, and an empty ring collects everything under the
// local shard.
func TestPlanShards(t *testing.T) {
	specs := sweep.Grid{
		Mixes:    []string{"W1", "W2", "W3"},
		Policies: []string{"DTM-TS", "DTM-BW"},
	}.Expand()
	coord := fakeEngine(nil, 0)
	b := newBackend(t, coord, remote.Config{Peers: []remote.Peer{
		{ID: "a", URL: "http://unused-a"},
		{ID: "b", URL: "http://unused-b"},
	}})

	seen := make(map[int]bool)
	for _, sh := range b.PlanShards(specs) {
		if sh.Peer == "" {
			t.Errorf("live ring produced a local shard: %+v", sh)
		}
		for _, i := range sh.Indexes {
			if seen[i] {
				t.Errorf("spec %d planned twice", i)
			}
			seen[i] = true
			if owner := b.OwnerOf(specs[i]); owner != sh.Peer {
				t.Errorf("spec %d planned on %s but owned by %s", i, sh.Peer, owner)
			}
		}
	}
	if len(seen) != len(specs) {
		t.Errorf("plan covered %d of %d specs", len(seen), len(specs))
	}

	// No peers at all: everything lands in the local shard.
	lonely := fakeEngine(nil, 0)
	lb, err := remote.New(remote.Config{Key: lonely.Key, Local: lonely.Exec, ProbeEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lb.Close)
	shards := lb.PlanShards(specs)
	if len(shards) != 1 || shards[0].Peer != "" || len(shards[0].Indexes) != len(specs) {
		t.Fatalf("empty ring plan = %+v, want one local shard with every spec", shards)
	}
}
