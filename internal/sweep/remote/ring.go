package remote

import (
	"hash/fnv"
	"sort"
)

// ring is an immutable consistent-hash ring over peer indices. Each
// admitted peer contributes vnodes points, hashed from "id#i", so keys
// spread evenly and membership changes only move the ejected peer's
// shard. The Backend swaps in a freshly built ring on every membership
// change; lookups never lock.
type ring struct {
	points []ringPoint // sorted by hash
	peers  int         // distinct members
}

type ringPoint struct {
	hash uint64
	peer int // index into Backend.peers
}

// hash64 is the ring's hash: FNV-1a plus a MurmurHash3-style avalanche
// finalizer (raw FNV clusters badly on near-identical short strings
// like "peer-0#17"). It is stable across processes and rebuilds (unlike
// maphash), so a coordinator restart keeps routing the same shards to
// the same peers and their run caches stay hot.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// buildRing places vnodes points per member. ids is indexed by peer
// index; members lists the admitted subset.
func buildRing(ids []string, members []int, vnodes int) *ring {
	r := &ring{points: make([]ringPoint, 0, len(members)*vnodes), peers: len(members)}
	var buf []byte
	for _, m := range members {
		buf = append(buf[:0], ids[m]...)
		buf = append(buf, '#')
		n := len(buf)
		for v := 0; v < vnodes; v++ {
			buf = appendInt(buf[:n], v)
			r.points = append(r.points, ringPoint{hash: hash64(string(buf)), peer: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

func appendInt(b []byte, v int) []byte {
	if v >= 10 {
		b = appendInt(b, v/10)
	}
	return append(b, byte('0'+v%10))
}

// candidates returns the distinct members that should serve key, in
// failover order: the owner (first point clockwise of the key's hash)
// first, then each subsequent distinct peer around the ring. An empty
// ring returns nil.
func (r *ring) candidates(key string) []int {
	if len(r.points) == 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int, 0, r.peers)
	seen := make(map[int]bool, r.peers)
	for i := 0; i < len(r.points) && len(out) < r.peers; i++ {
		p := r.points[(start+i)%len(r.points)].peer
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}
