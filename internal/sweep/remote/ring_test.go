package remote

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"dramtherm/internal/sim"
	"dramtherm/internal/sweep"
)

func testIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("peer-%d", i)
	}
	return ids
}

func allMembers(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return m
}

// TestRingDeterministic: the same membership must produce the same
// routing, across rebuilds and across processes (FNV, not maphash).
func TestRingDeterministic(t *testing.T) {
	ids := testIDs(4)
	a := buildRing(ids, allMembers(4), 64)
	b := buildRing(ids, allMembers(4), 64)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("spec-%d", i)
		ca, cb := a.candidates(key), b.candidates(key)
		if fmt.Sprint(ca) != fmt.Sprint(cb) {
			t.Fatalf("key %q: rebuilt ring routes %v, want %v", key, cb, ca)
		}
	}
}

// TestRingCandidates: every lookup yields all members, each exactly
// once, owner first.
func TestRingCandidates(t *testing.T) {
	ids := testIDs(5)
	r := buildRing(ids, allMembers(5), 32)
	for i := 0; i < 50; i++ {
		c := r.candidates(fmt.Sprintf("key-%d", i))
		if len(c) != 5 {
			t.Fatalf("key %d: %d candidates, want 5", i, len(c))
		}
		seen := map[int]bool{}
		for _, p := range c {
			if seen[p] {
				t.Fatalf("key %d: duplicate candidate %d in %v", i, p, c)
			}
			seen[p] = true
		}
	}
	if got := (&ring{}).candidates("x"); got != nil {
		t.Fatalf("empty ring returned candidates %v", got)
	}
}

// TestRingDistribution: with enough vnodes no peer should own a wildly
// disproportionate share of keys.
func TestRingDistribution(t *testing.T) {
	const peers, keys = 4, 4000
	r := buildRing(testIDs(peers), allMembers(peers), 64)
	counts := make([]int, peers)
	for i := 0; i < keys; i++ {
		counts[r.candidates(fmt.Sprintf("W%d|policy-%d", i%12, i))[0]]++
	}
	for p, n := range counts {
		// Fair share is 1000; accept a generous 3x spread either way.
		if n < keys/peers/3 || n > keys*3/peers {
			t.Fatalf("peer %d owns %d of %d keys (distribution %v)", p, n, keys, counts)
		}
	}
}

// TestRingStabilityUnderEjection: ejecting one member must not reroute
// keys owned by the survivors — that is the point of consistent hashing
// (the survivors' run caches stay hot).
func TestRingStabilityUnderEjection(t *testing.T) {
	ids := testIDs(4)
	full := buildRing(ids, allMembers(4), 64)
	without3 := buildRing(ids, []int{0, 1, 2}, 64)
	moved := 0
	const keys = 2000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		before := full.candidates(key)[0]
		after := without3.candidates(key)[0]
		if before != 3 && before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d of %d surviving-peer keys rerouted after ejecting peer 3", moved, keys)
	}
}

// TestBackendChurnRace hammers routing, ejection, readmission, probing
// and status snapshots concurrently; run with -race. Peers point at
// dead addresses, so every dispatch also exercises the failure path.
func TestBackendChurnRace(t *testing.T) {
	peers := make([]Peer, 6)
	for i := range peers {
		// Reserved TEST-NET-1 addresses: dial fails fast or times out.
		peers[i] = Peer{ID: fmt.Sprintf("p%d", i), URL: fmt.Sprintf("http://192.0.2.%d:9", i+1)}
	}
	local := func(ctx context.Context, spec sweep.Spec) (sim.MEMSpotResult, error) {
		return sim.MEMSpotResult{Seconds: 1}, nil
	}
	b, err := New(Config{
		Peers: peers, Local: local,
		Key:        func(s sweep.Spec) sweep.Key { return sweep.Key(s.String()) },
		ProbeEvery: -1,
		Backoff:    time.Microsecond, // immediate half-open readmission → constant ring churn
		Client:     &http.Client{Timeout: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ctx.Err() == nil && i < 50; i++ {
				spec := sweep.Spec{Mix: fmt.Sprintf("W%d", (g*50+i)%12+1)}
				res, info, err := b.RunSpec(ctx, spec)
				if ctx.Err() != nil {
					return
				}
				if err != nil {
					t.Errorf("RunSpec: %v", err)
					return
				}
				if info.Peer != LocalPeer || res.Seconds != 1 {
					t.Errorf("dead-peer run served by %q", info.Peer)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ctx.Err() == nil && i < 200; i++ {
				p := b.peers[(g*7+i)%len(b.peers)]
				switch i % 3 {
				case 0:
					b.eject(p, fmt.Errorf("churn"))
				case 1:
					b.readmit(p)
				default:
					b.readmitExpired()
				}
				b.Status()
				b.OwnerOf(sweep.Spec{Mix: "W1"})
			}
		}(g)
	}
	wg.Wait()
}
