package remote

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"dramtherm/internal/sim"
	"dramtherm/internal/sweep"
)

func testIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("peer-%d", i)
	}
	return ids
}

func allMembers(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return m
}

// TestRingDeterministic: the same membership must produce the same
// routing, across rebuilds and across processes (FNV, not maphash).
func TestRingDeterministic(t *testing.T) {
	ids := testIDs(4)
	a := buildRing(ids, allMembers(4), 64)
	b := buildRing(ids, allMembers(4), 64)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("spec-%d", i)
		ca, cb := a.candidates(key), b.candidates(key)
		if fmt.Sprint(ca) != fmt.Sprint(cb) {
			t.Fatalf("key %q: rebuilt ring routes %v, want %v", key, cb, ca)
		}
	}
}

// TestRingCandidates: every lookup yields all members, each exactly
// once, owner first.
func TestRingCandidates(t *testing.T) {
	ids := testIDs(5)
	r := buildRing(ids, allMembers(5), 32)
	for i := 0; i < 50; i++ {
		c := r.candidates(fmt.Sprintf("key-%d", i))
		if len(c) != 5 {
			t.Fatalf("key %d: %d candidates, want 5", i, len(c))
		}
		seen := map[int]bool{}
		for _, p := range c {
			if seen[p] {
				t.Fatalf("key %d: duplicate candidate %d in %v", i, p, c)
			}
			seen[p] = true
		}
	}
	if got := (&ring{}).candidates("x"); got != nil {
		t.Fatalf("empty ring returned candidates %v", got)
	}
}

// TestRingDistribution: with enough vnodes no peer should own a wildly
// disproportionate share of keys.
func TestRingDistribution(t *testing.T) {
	const peers, keys = 4, 4000
	r := buildRing(testIDs(peers), allMembers(peers), 64)
	counts := make([]int, peers)
	for i := 0; i < keys; i++ {
		counts[r.candidates(fmt.Sprintf("W%d|policy-%d", i%12, i))[0]]++
	}
	for p, n := range counts {
		// Fair share is 1000; accept a generous 3x spread either way.
		if n < keys/peers/3 || n > keys*3/peers {
			t.Fatalf("peer %d owns %d of %d keys (distribution %v)", p, n, keys, counts)
		}
	}
}

// TestRingStabilityUnderEjection: ejecting one member must not reroute
// keys owned by the survivors — that is the point of consistent hashing
// (the survivors' run caches stay hot).
func TestRingStabilityUnderEjection(t *testing.T) {
	ids := testIDs(4)
	full := buildRing(ids, allMembers(4), 64)
	without3 := buildRing(ids, []int{0, 1, 2}, 64)
	moved := 0
	const keys = 2000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		before := full.candidates(key)[0]
		after := without3.candidates(key)[0]
		if before != 3 && before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d of %d surviving-peer keys rerouted after ejecting peer 3", moved, keys)
	}
}

// TestRingRebalanceProperty: the consistent-hashing contract under
// membership change. Over K sampled spec keys, a single join or leave
// on an N-peer ring may move at most roughly its fair share — K/N plus
// vnode-variance slack — and every move must involve the changed peer:
// keys between two surviving peers never reshuffle among themselves.
func TestRingRebalanceProperty(t *testing.T) {
	const peers, keys = 5, 2000
	slack := keys / 10
	ids := testIDs(peers + 1)
	ownerOf := func(r *ring, i int) int { return r.candidates(fmt.Sprintf("W%d|spec-%d|lim=%d", i%12, i, i%7))[0] }

	base := buildRing(ids[:peers], allMembers(peers), 64)

	t.Run("leave", func(t *testing.T) {
		leaver := 3
		var members []int
		for i := 0; i < peers; i++ {
			if i != leaver {
				members = append(members, i)
			}
		}
		after := buildRing(ids[:peers], members, 64)
		moved := 0
		for i := 0; i < keys; i++ {
			before, now := ownerOf(base, i), ownerOf(after, i)
			if before != now {
				moved++
				if before != leaver {
					t.Fatalf("key %d moved %d→%d; only the leaver's keys may move", i, before, now)
				}
			}
		}
		if max := keys/peers + slack; moved > max {
			t.Fatalf("leave moved %d of %d keys, want at most ~K/N=%d+%d slack", moved, keys, keys/peers, slack)
		}
	})

	t.Run("join", func(t *testing.T) {
		joiner := peers // a 6th peer joins
		after := buildRing(ids, allMembers(peers+1), 64)
		moved := 0
		for i := 0; i < keys; i++ {
			before, now := ownerOf(base, i), ownerOf(after, i)
			if before != now {
				moved++
				if now != joiner {
					t.Fatalf("key %d moved %d→%d; joins may only move keys onto the joiner", i, before, now)
				}
			}
		}
		if max := keys/(peers+1) + slack; moved > max {
			t.Fatalf("join moved %d of %d keys, want at most ~K/(N+1)=%d+%d slack", moved, keys, keys/(peers+1), slack)
		}
		if moved == 0 {
			t.Fatal("join moved no keys; the joiner would idle forever")
		}
	})
}

// TestRingOwnershipIgnoresMembershipOrder: two rings independently
// built from the same membership table — fed in different orders, as
// two gossiping coordinators may hold it — must route every key to the
// same peer id.
func TestRingOwnershipIgnoresMembershipOrder(t *testing.T) {
	ids := testIDs(5)
	perm := []string{ids[3], ids[0], ids[4], ids[2], ids[1]}
	a := buildRing(ids, allMembers(5), 64)
	b := buildRing(perm, allMembers(5), 64)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("spec-%d", i)
		ownerA := ids[a.candidates(key)[0]]
		ownerB := perm[b.candidates(key)[0]]
		if ownerA != ownerB {
			t.Fatalf("key %q owned by %s on ring A but %s on permuted ring B", key, ownerA, ownerB)
		}
	}
}

// TestBackendOwnershipIgnoresMembershipOrder is the same determinism
// property one level up: two backends fed the same membership table in
// different orders (one statically, one through SetMembers deltas)
// agree on every spec's owner.
func TestBackendOwnershipIgnoresMembershipOrder(t *testing.T) {
	peers := make([]Peer, 4)
	for i := range peers {
		peers[i] = Peer{ID: fmt.Sprintf("peer-%d", i), URL: fmt.Sprintf("http://192.0.2.%d:9", i+1)}
	}
	key := func(s sweep.Spec) sweep.Key { return sweep.Key(s.String()) }
	a, err := New(Config{Peers: peers, Key: key, ProbeEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := New(Config{Peers: []Peer{peers[2], peers[0]}, Key: key, ProbeEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.SetMembers([]Peer{peers[3], peers[1], peers[2], peers[0]})
	for i := 0; i < 200; i++ {
		spec := sweep.Spec{Mix: fmt.Sprintf("W%d", i%12+1), Policy: fmt.Sprintf("p-%d", i)}
		if oa, ob := a.OwnerOf(spec), b.OwnerOf(spec); oa != ob {
			t.Fatalf("spec %s owned by %q statically but %q via SetMembers", spec, oa, ob)
		}
	}
}

// TestBackendChurnRace hammers routing, ejection, readmission, probing
// and status snapshots concurrently; run with -race. Peers point at
// dead addresses, so every dispatch also exercises the failure path.
func TestBackendChurnRace(t *testing.T) {
	peers := make([]Peer, 6)
	for i := range peers {
		// Reserved TEST-NET-1 addresses: dial fails fast or times out.
		peers[i] = Peer{ID: fmt.Sprintf("p%d", i), URL: fmt.Sprintf("http://192.0.2.%d:9", i+1)}
	}
	local := func(ctx context.Context, spec sweep.Spec) (sim.MEMSpotResult, error) {
		return sim.MEMSpotResult{Seconds: 1}, nil
	}
	b, err := New(Config{
		Peers: peers, Local: local,
		Key:        func(s sweep.Spec) sweep.Key { return sweep.Key(s.String()) },
		ProbeEvery: -1,
		Backoff:    time.Microsecond, // immediate half-open readmission → constant ring churn
		Client:     &http.Client{Timeout: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ctx.Err() == nil && i < 50; i++ {
				spec := sweep.Spec{Mix: fmt.Sprintf("W%d", (g*50+i)%12+1)}
				res, info, err := b.RunSpec(ctx, spec)
				if ctx.Err() != nil {
					return
				}
				if err != nil {
					t.Errorf("RunSpec: %v", err)
					return
				}
				if info.Peer != LocalPeer || res.Seconds != 1 {
					t.Errorf("dead-peer run served by %q", info.Peer)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ctx.Err() == nil && i < 200; i++ {
				b.mu.RLock()
				p := b.peers[(g*7+i)%len(b.peers)]
				b.mu.RUnlock()
				switch i % 3 {
				case 0:
					b.eject(p, fmt.Errorf("churn"))
				case 1:
					b.readmit(p)
				default:
					b.readmitExpired()
				}
				b.Status()
				b.OwnerOf(sweep.Spec{Mix: "W1"})
			}
		}(g)
	}
	// Membership churn races the health churn: gossip deltas grow and
	// shrink the ring while dispatches and ejections are in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ctx.Err() == nil && i < 200; i++ {
			n := 3 + i%4 // between 3 and 6 members
			b.SetMembers(peers[:n])
		}
		b.SetMembers(peers) // leave full membership for the runners
	}()
	wg.Wait()
}
