package remote

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"dramtherm/internal/sim"
	"dramtherm/internal/sweep"
)

// mkRing builds a ring over ids with every member admitted — the pure
// substrate the planner tests drive, no clock or network anywhere.
func mkRing(ids []string, vnodes int) (*ring, []*peer) {
	members := make([]int, len(ids))
	ps := make([]*peer, len(ids))
	for i, id := range ids {
		members[i] = i
		ps[i] = &peer{id: id, up: true}
	}
	return buildRing(ids, members, vnodes), ps
}

// syntheticEntries iterates n synthetic cached results.
func syntheticEntries(n int) func(fn func(sweep.Key, sim.MEMSpotResult) bool) {
	return func(fn func(sweep.Key, sim.MEMSpotResult) bool) {
		for i := 0; i < n; i++ {
			if !fn(sweep.Key(fmt.Sprintf("digest|spec-%d", i)), sim.MEMSpotResult{Seconds: float64(i)}) {
				return
			}
		}
	}
}

// TestPlanHandoffJoin checks the membership-delta planner on a pure
// join: with K cached keys and a 5th member joining, the joiner becomes
// owner of ~K/5 keys and successor of ~K/5 more, so the planned set is
// ~2K/5 — and every planned line targets the joiner, since nobody else
// gained responsibility.
func TestPlanHandoffJoin(t *testing.T) {
	const K = 500
	old := []string{"p0", "p1", "p2", "p3"}
	oldRing, oldPeers := mkRing(old, 64)
	newRing, newPeers := mkRing(append(old, "p4"), 64)

	plan := planHandoff(oldRing, oldPeers, newRing, newPeers, nil, syntheticEntries(K))
	if plan.promotions != 0 {
		t.Fatalf("pure join planned %d promotions", plan.promotions)
	}
	for dest := range plan.moves {
		if dest != "p4" {
			t.Fatalf("pure join planned a move to %s (only the joiner gained responsibility)", dest)
		}
	}
	moved := len(plan.moves["p4"])
	// Expect ~2K/5 = 200; vnode placement wobbles, so accept a wide band
	// that still rules out "everything" (500) and "owner-share only" (100).
	if moved < K/4 || moved > K*11/20 {
		t.Fatalf("join moved %d of %d keys, want ~%d (2K/5)", moved, K, 2*K/5)
	}
	for _, ln := range plan.moves["p4"] {
		if ln.Reason != ReasonHandoff || ln.Result == nil {
			t.Fatalf("malformed planned line: %+v", ln)
		}
		newSet := respSet(newRing, newPeers, ln.Key)
		if !contains(newSet, "p4") {
			t.Fatalf("planned key %s is not in the joiner's responsibility set %v", ln.Key, newSet)
		}
	}
}

// TestPlanHandoffLeave checks the death path: removing a member promotes
// its replicas (the old successor becomes owner with no data movement)
// and streams each affected key to the one member newly in its
// responsibility set.
func TestPlanHandoffLeave(t *testing.T) {
	const K = 400
	old := []string{"a", "b", "c", "d"}
	oldRing, oldPeers := mkRing(old, 64)
	newRing, newPeers := mkRing([]string{"b", "c", "d"}, 64)

	ownedByA := 0
	syntheticEntries(K)(func(k sweep.Key, _ sim.MEMSpotResult) bool {
		if respSet(oldRing, oldPeers, string(k))[0] == "a" {
			ownedByA++
		}
		return true
	})

	plan := planHandoff(oldRing, oldPeers, newRing, newPeers, map[string]bool{"a": true}, syntheticEntries(K))
	// Consistent hashing: removing the owner always promotes the old
	// successor, so promotions == keys "a" owned.
	if plan.promotions != ownedByA {
		t.Fatalf("promotions = %d, want %d (keys the dead member owned)", plan.promotions, ownedByA)
	}
	moved := 0
	for dest, lines := range plan.moves {
		if dest == "a" {
			t.Fatal("planned a move to the departed member")
		}
		moved += len(lines)
		for _, ln := range lines {
			if contains(respSet(oldRing, oldPeers, ln.Key), dest) {
				t.Fatalf("planned %s → %s, but it was already responsible", ln.Key, dest)
			}
		}
	}
	// Every key that had "a" in its RF=2 set needs one new holder.
	if moved < K/4 || moved > K*3/4 {
		t.Fatalf("leave moved %d of %d keys, want ~%d (2K/4)", moved, K, K/2)
	}
}

// TestReplicaPlacementProperty is the RF=2 placement property test: for
// any key, the replica destination is never the peer that produced the
// result, and when the producer is the key's ring owner the replica is
// exactly the ring successor.
func TestReplicaPlacementProperty(t *testing.T) {
	ids := []string{"w0", "w1", "w2", "w3", "w4"}
	peers := make([]Peer, len(ids))
	for i, id := range ids {
		peers[i] = Peer{ID: id, URL: "http://" + id + ".invalid"}
	}
	fixed := time.Unix(1700000000, 0)
	b, err := New(Config{
		Peers:       peers,
		Key:         func(s sweep.Spec) sweep.Key { return sweep.Key(s.Mix) },
		Replication: true,
		ProbeEvery:  -1,
		Now:         func() time.Time { return fixed },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("prop-key-%d", i)
		cands := b.ring.candidates(key)
		if len(cands) < 2 {
			t.Fatalf("ring lost members: %d candidates", len(cands))
		}
		owner, successor := b.ringPeers[cands[0]].id, b.ringPeers[cands[1]].id
		if got := b.replicaFor(key, owner); got != successor {
			t.Fatalf("key %s: replica of owner-built result = %q, want ring successor %q", key, got, successor)
		}
		// Whoever produced it, the replica never lands on the producer.
		for _, served := range ids {
			if got := b.replicaFor(key, served); got == served {
				t.Fatalf("key %s: replica placed on the producing peer %s", key, served)
			} else if got == "" {
				t.Fatalf("key %s served by %s: no replica destination", key, served)
			}
		}
		// A coordinator-local build replicates to the ring owner itself.
		if got := b.replicaFor(key, LocalPeer); got != owner {
			t.Fatalf("key %s: replica of local-built result = %q, want owner %q", key, got, owner)
		}
	}
}

// fakeWorker is a minimal peer: it serves /v1/exec with a canned result
// and records every /v1/handoff line it receives.
type fakeWorker struct {
	id  string
	srv *httptest.Server

	mu      sync.Mutex
	execs   int
	handoff []HandoffLine
}

func newFakeWorker(t *testing.T, id string) *fakeWorker {
	t.Helper()
	w := &fakeWorker{id: id}
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+ExecPath, func(rw http.ResponseWriter, req *http.Request) {
		var spec sweep.Spec
		if err := json.NewDecoder(req.Body).Decode(&spec); err != nil {
			rw.WriteHeader(http.StatusBadRequest)
			return
		}
		w.mu.Lock()
		w.execs++
		w.mu.Unlock()
		json.NewEncoder(rw).Encode(ExecResponse{ //nolint:errcheck
			Outcome: "built",
			Result:  sim.MEMSpotResult{Seconds: 7},
		})
	})
	mux.HandleFunc("POST "+HandoffPath, func(rw http.ResponseWriter, req *http.Request) {
		dec := json.NewDecoder(req.Body)
		var resp HandoffResponse
		for {
			var ln HandoffLine
			if err := dec.Decode(&ln); err != nil {
				if err != io.EOF {
					rw.WriteHeader(http.StatusBadRequest)
					return
				}
				break
			}
			w.mu.Lock()
			w.handoff = append(w.handoff, ln)
			w.mu.Unlock()
			resp.Accepted++
		}
		json.NewEncoder(rw).Encode(resp) //nolint:errcheck
	})
	w.srv = httptest.NewServer(mux)
	t.Cleanup(w.srv.Close)
	return w
}

func (w *fakeWorker) handoffLines() []HandoffLine {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]HandoffLine(nil), w.handoff...)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestReplicationEndToEnd drives a real dispatch through two fake
// workers and asserts the built result is asynchronously streamed to
// the non-serving peer as an RF=2 replica.
func TestReplicationEndToEnd(t *testing.T) {
	a, c := newFakeWorker(t, "A"), newFakeWorker(t, "C")
	b, err := New(Config{
		Peers:       []Peer{{ID: "A", URL: a.srv.URL}, {ID: "C", URL: c.srv.URL}},
		Key:         func(s sweep.Spec) sweep.Key { return sweep.Key("digest|" + s.Mix) },
		Replication: true,
		ProbeEvery:  -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	spec := sweep.Spec{Mix: "W1"}
	_, info, err := b.RunSpec(t.Context(), spec)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "replica delivery", func() bool { return b.ReplicationStatus().Sent == 1 })

	served, other := a, c
	if info.Peer == "C" {
		served, other = c, a
	}
	if lines := served.handoffLines(); len(lines) != 0 {
		t.Fatalf("serving peer %s received its own replica: %+v", served.id, lines)
	}
	lines := other.handoffLines()
	if len(lines) != 1 || lines[0].Reason != ReasonReplica || lines[0].Key != "digest|W1" {
		t.Fatalf("successor %s handoff = %+v, want one replica of digest|W1", other.id, lines)
	}
	if lines[0].Result == nil || lines[0].Result.Seconds != 7 {
		t.Fatalf("replica carried wrong result: %+v", lines[0].Result)
	}
	st := b.ReplicationStatus()
	if !st.Enabled || st.Pending != 0 || st.Dropped != 0 {
		t.Fatalf("replication status after delivery: %+v", st)
	}
}

// TestHandoffOnJoinEndToEnd joins a third worker into a live backend
// whose coordinator holds cached results, and asserts the joiner
// receives exactly the cached results it became responsible for.
func TestHandoffOnJoinEndToEnd(t *testing.T) {
	a, c, j := newFakeWorker(t, "A"), newFakeWorker(t, "C"), newFakeWorker(t, "J")

	const K = 60
	cached := make(map[string]sim.MEMSpotResult, K)
	for i := 0; i < K; i++ {
		cached[fmt.Sprintf("digest|cached-%d", i)] = sim.MEMSpotResult{Seconds: float64(i)}
	}
	b, err := New(Config{
		Peers:       []Peer{{ID: "A", URL: a.srv.URL}, {ID: "C", URL: c.srv.URL}},
		Key:         func(s sweep.Spec) sweep.Key { return sweep.Key("digest|" + s.Mix) },
		Replication: true,
		ProbeEvery:  -1,
		Entries: func(fn func(sweep.Key, sim.MEMSpotResult) bool) {
			for k, v := range cached {
				if !fn(sweep.Key(k), v) {
					return
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	b.SetMembers([]Peer{{ID: "A", URL: a.srv.URL}, {ID: "C", URL: c.srv.URL}, {ID: "J", URL: j.srv.URL}})
	waitFor(t, "handoff round drained", func() bool {
		st := b.ReplicationStatus()
		return st.HandoffRounds == 1 && st.Pending == 0
	})

	lines := j.handoffLines()
	if len(lines) == 0 {
		t.Fatal("joiner received no handed-off results")
	}
	// Every line must be a key the joiner is now responsible for, with
	// the coordinator's cached result attached.
	for _, ln := range lines {
		if ln.Reason != ReasonHandoff {
			t.Fatalf("line %s has reason %q", ln.Key, ln.Reason)
		}
		want, ok := cached[ln.Key]
		if !ok || ln.Result == nil || ln.Result.Seconds != want.Seconds {
			t.Fatalf("handed-off line %s does not match the cached result", ln.Key)
		}
		if !contains(respSet(b.ring, b.ringPeers, ln.Key), "J") {
			t.Fatalf("key %s streamed to joiner but it is not responsible", ln.Key)
		}
	}
	if st := b.ReplicationStatus(); st.HandoffKeys != int64(len(lines)) || st.Dropped != 0 {
		t.Fatalf("handoff counters %+v, want %d keys and no drops", st, len(lines))
	}
	if got := a.handoffLines(); len(got) != 0 {
		t.Fatalf("unmoved member A received %d handoff lines", len(got))
	}
	if got := c.handoffLines(); len(got) != 0 {
		t.Fatalf("unmoved member C received %d handoff lines", len(got))
	}
}
