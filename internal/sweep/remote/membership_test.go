package remote_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dramtherm/internal/sweep"
	"dramtherm/internal/sweep/remote"
)

// specsSample enumerates n distinct specs spread across mixes and
// policies, so they hash all over the ring.
func specsSample(n int) []sweep.Spec {
	out := make([]sweep.Spec, n)
	for i := range out {
		out[i] = sweep.Spec{Mix: fmt.Sprintf("W%d", i%8+1), Policy: "No-limit", Interval: float64(i)}
	}
	return out
}

// TestSetMembersJoinAndLeave: a joined member starts serving its share
// of the key space without a backend restart, and a removed member's
// share redistributes to the survivors — while the survivors' own keys
// never reroute.
func TestSetMembersJoinAndLeave(t *testing.T) {
	coord := fakeEngine(nil, 0)
	w1, w2 := fakeWorker(t, nil, 0), fakeWorker(t, nil, 0)
	b := newBackend(t, coord, remote.Config{
		Peers: []remote.Peer{{ID: "w1", URL: w1.URL}},
		Local: coord.Exec,
	})

	specs := specsSample(40)
	for _, sp := range specs {
		_, info, err := b.RunSpec(context.Background(), sp)
		if err != nil {
			t.Fatalf("RunSpec(%s): %v", sp, err)
		}
		if info.Peer != "w1" {
			t.Fatalf("spec %s served by %q before the join, want w1", sp, info.Peer)
		}
	}

	// Join w2: it must take over part of the key space.
	b.SetMembers([]remote.Peer{{ID: "w1", URL: w1.URL}, {ID: "w2", URL: w2.URL}})
	servedBy := map[string]int{}
	for _, sp := range specs {
		_, info, err := b.RunSpec(context.Background(), sp)
		if err != nil {
			t.Fatalf("RunSpec(%s) after join: %v", sp, err)
		}
		servedBy[info.Peer]++
	}
	if servedBy["w2"] == 0 {
		t.Fatalf("joined member served nothing (distribution %v)", servedBy)
	}
	if servedBy["w1"]+servedBy["w2"] != len(specs) {
		t.Fatalf("unexpected servers in %v", servedBy)
	}

	// Leave w1: everything must flow to w2, with zero failovers (the
	// plan must not route through the departed member at all).
	b.SetMembers([]remote.Peer{{ID: "w2", URL: w2.URL}})
	for _, sp := range specs {
		_, info, err := b.RunSpec(context.Background(), sp)
		if err != nil {
			t.Fatalf("RunSpec(%s) after leave: %v", sp, err)
		}
		if info.Peer != "w2" {
			t.Fatalf("spec %s served by %q after w1 left, want w2", sp, info.Peer)
		}
	}
	for _, st := range b.Status() {
		if st.ID == "w1" {
			t.Fatal("departed member still listed in Status")
		}
		if st.Failures != 0 {
			t.Fatalf("membership changes caused %d dispatch failures on %s", st.Failures, st.ID)
		}
	}
}

// TestSetMembersRetainsHealthState: a member that stays across a delta
// keeps its health state and counters; re-adding a departed id builds a
// fresh admitted peer.
func TestSetMembersRetainsHealthState(t *testing.T) {
	coord := fakeEngine(nil, 0)
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // unreachable from the start
	w1 := fakeWorker(t, nil, 0)
	b := newBackend(t, coord, remote.Config{
		Peers: []remote.Peer{{ID: "w1", URL: w1.URL}, {ID: "corpse", URL: dead.URL}},
		Local: coord.Exec,
		Now:   time.Now,
	})
	// Eject the corpse by failing a dispatch through it.
	for _, sp := range specsSample(40) {
		if _, _, err := b.RunSpec(context.Background(), sp); err != nil {
			t.Fatal(err)
		}
	}
	down := func() bool {
		for _, st := range b.Status() {
			if st.ID == "corpse" {
				return !st.Up
			}
		}
		return false
	}
	if !down() {
		t.Fatal("corpse never got ejected")
	}
	// A delta that keeps both members must keep the corpse down.
	b.SetMembers([]remote.Peer{{ID: "corpse", URL: dead.URL}, {ID: "w1", URL: w1.URL}})
	if !down() {
		t.Fatal("SetMembers with an unchanged id reset its health state")
	}
	// Dropping and re-adding the id is a fresh join: admitted again.
	b.SetMembers([]remote.Peer{{ID: "w1", URL: w1.URL}})
	b.SetMembers([]remote.Peer{{ID: "w1", URL: w1.URL}, {ID: "corpse", URL: dead.URL}})
	if down() {
		t.Fatal("a re-added member must start admitted")
	}
}

// TestDetectorCallbacks: eject fires OnPeerDown, probe-confirmed
// recovery fires OnPeerUp — the seam gossip suspicion plugs into.
func TestDetectorCallbacks(t *testing.T) {
	var downs, ups atomic.Int32
	var lastDown atomic.Value
	var healthy atomic.Bool
	flappy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer flappy.Close()
	coord := fakeEngine(nil, 0)
	b := newBackend(t, coord, remote.Config{
		Peers: []remote.Peer{{ID: "flappy", URL: flappy.URL}},
		Local: coord.Exec,
		OnPeerDown: func(id string, cause error) {
			downs.Add(1)
			lastDown.Store(id)
		},
		OnPeerUp: func(id string) { ups.Add(1) },
	})

	b.Probe(context.Background())
	if downs.Load() != 1 || lastDown.Load() != "flappy" {
		t.Fatalf("after a failed probe: downs=%d lastDown=%v, want 1 flappy", downs.Load(), lastDown.Load())
	}
	b.Probe(context.Background()) // still down: no repeat notification
	if downs.Load() != 1 {
		t.Fatalf("repeated failed probes re-notified: downs=%d", downs.Load())
	}
	healthy.Store(true)
	b.Probe(context.Background())
	if ups.Load() != 1 {
		t.Fatalf("after a successful probe: ups=%d, want 1", ups.Load())
	}
}

// TestCloseDuringChurnNoLeak: the prober plus a storm of dispatches,
// probes and membership deltas must all unwind on Close — no goroutine
// may outlive the backend, whatever state the churn left it in.
func TestCloseDuringChurnNoLeak(t *testing.T) {
	coord := fakeEngine(nil, 0)
	w1, w2 := fakeWorker(t, nil, 0), fakeWorker(t, nil, 0)
	peers := []remote.Peer{
		{ID: "w1", URL: w1.URL},
		{ID: "w2", URL: w2.URL},
		{ID: "corpse", URL: "http://192.0.2.1:9"},
	}
	// Baseline after the servers are up: their goroutines are the
	// test's, not the backend's.
	runtime.GC()
	baseline := runtime.NumGoroutine()

	for iter := 0; iter < 3; iter++ {
		b, err := remote.New(remote.Config{
			Peers:        peers,
			Key:          coord.Key,
			Local:        coord.Exec,
			ProbeEvery:   time.Millisecond,
			ProbeTimeout: 50 * time.Millisecond,
			Backoff:      time.Microsecond,
			// Client stays nil: the backend owns it, so Close must also
			// reap its idle connections.
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; ctx.Err() == nil && i < 50; i++ {
					switch i % 3 {
					case 0:
						b.RunSpec(ctx, sweep.Spec{Mix: fmt.Sprintf("W%d", (g+i)%12+1)}) //nolint:errcheck
					case 1:
						b.SetMembers(peers[:1+(g+i)%3])
					default:
						b.Probe(ctx)
					}
				}
			}(g)
		}
		time.Sleep(10 * time.Millisecond) // let churn overlap the close
		cancel()
		b.Close()
		wg.Wait()
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked across Close: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
