package remote

import (
	"fmt"
	"io"

	"dramtherm/internal/obs"
)

// rebalanceProbes is a fixed probe-key set whose ownership is diffed
// across ring rebuilds: the moved fraction of these keys estimates the
// moved fraction of the whole key space (consistent hashing moves
// ~1/n of all keys per membership change, regardless of which keys).
var rebalanceProbes = func() []string {
	out := make([]string, 64)
	for i := range out {
		out[i] = fmt.Sprintf("rebalance-probe-%d", i)
	}
	return out
}()

// Instrument registers the backend's metric families on reg and arms
// its per-event counters: dispatches by peer and kind, peer state
// transitions, spec failovers, batch re-plan rounds, batch stream
// traffic, and a sampled estimate of keys moved per ring rebuild. The
// peer gauge and per-peer failure counters read the same Status()
// snapshot healthz reports. Like the engine's Instrument, call it once,
// before the backend is shared; a nil reg is a no-op.
func (b *Backend) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	b.mDispatch = reg.CounterVec("dramtherm_remote_dispatch_total",
		"Requests dispatched to peers, by peer id and kind (exec, batch, probe).",
		"peer", "kind")
	b.mTransition = reg.CounterVec("dramtherm_remote_peer_state_transitions_total",
		"Peer ring-state transitions, by destination state: down (ejected), up (probe readmitted), half_open (backoff-expiry retry).",
		"peer", "to")
	b.mFailover = reg.Counter("dramtherm_remote_failover_total",
		"Spec dispatches that failed over to the next ring candidate after a peer error.")
	b.mReplan = reg.Counter("dramtherm_remote_replan_rounds_total",
		"Batch re-plan rounds: a shard's unacknowledged remainder re-planned onto the surviving ring.")
	b.mMoved = reg.Counter("dramtherm_remote_rebalance_moved_keys_total",
		"Probe keys whose ring owner changed across rebuilds — a sampled estimate of rebalance churn (out of 64 probes per rebuild).")
	b.mStreamBytes = reg.Counter("dramtherm_remote_batch_stream_bytes_total",
		"Bytes read from batch NDJSON response streams.")
	b.mStreamLines = reg.Counter("dramtherm_remote_batch_stream_lines_total",
		"NDJSON lines decoded from batch response streams.")
	b.mReplSent = reg.CounterVec("dramtherm_remote_replication_sent_total",
		"Results delivered to a replica or handoff destination, by destination peer.",
		"peer")
	b.mReplDropped = reg.Counter("dramtherm_remote_replication_dropped_total",
		"Results not replicated: queue overflow, no eligible destination, or delivery failure.")
	b.mHandoffKeys = reg.CounterVec("dramtherm_remote_handoff_keys_total",
		"Cached results streamed to a newly responsible member on membership change, by destination peer.",
		"peer")
	b.mHandoffRounds = reg.Counter("dramtherm_remote_handoff_rounds_total",
		"Membership changes that planned a cache handoff.")
	b.mPromotions = reg.Counter("dramtherm_remote_replica_promotions_total",
		"Keys whose dead primary's replica holder became the new ring owner (promoted in place, no data movement).")
	reg.GaugeFunc("dramtherm_remote_replication_pending",
		"Queued-but-undelivered replication results.",
		func() float64 { return float64(b.replPending.Load()) })
	reg.SampleFunc(obs.KindGauge, "dramtherm_remote_peers",
		"Ring membership by state, from the same snapshot healthz peers report.",
		[]string{"state"}, func() []obs.Sample {
			up, down := 0, 0
			for _, ps := range b.Status() {
				if ps.Up {
					up++
				} else {
					down++
				}
			}
			return []obs.Sample{
				{LabelValues: []string{"up"}, Value: float64(up)},
				{LabelValues: []string{"down"}, Value: float64(down)},
			}
		})
	reg.SampleFunc(obs.KindCounter, "dramtherm_remote_peer_failures_total",
		"Dispatch and probe failures per current ring member.",
		[]string{"peer"}, func() []obs.Sample {
			st := b.Status()
			out := make([]obs.Sample, len(st))
			for i, ps := range st {
				out[i] = obs.Sample{LabelValues: []string{ps.ID}, Value: float64(ps.Failures)}
			}
			return out
		})
	// Baseline the probe-key owners so the first instrumented rebuild
	// counts moves against the current ring, not against nothing.
	b.mu.Lock()
	b.prevOwners = b.probeOwnersLocked()
	b.mu.Unlock()
}

// probeOwnersLocked resolves the current owner of every rebalance probe
// key. Callers hold b.mu.
func (b *Backend) probeOwnersLocked() []string {
	out := make([]string, len(rebalanceProbes))
	for i, k := range rebalanceProbes {
		if c := b.ring.candidates(k); len(c) > 0 {
			out[i] = b.ringPeers[c[0]].id
		}
	}
	return out
}

// countMovedLocked diffs probe-key ownership against the previous ring
// and feeds the rebalance counter. Callers hold b.mu.
func (b *Backend) countMovedLocked() {
	if b.mMoved == nil {
		return
	}
	next := b.probeOwnersLocked()
	if b.prevOwners != nil {
		moved := 0
		for i := range next {
			if next[i] != b.prevOwners[i] {
				moved++
			}
		}
		b.mMoved.Add(float64(moved))
	}
	b.prevOwners = next
}

// countingReader feeds every byte read from r into c. A nil counter
// costs one nil check per Read.
type countingReader struct {
	r io.Reader
	c *obs.Counter
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.c.Add(float64(n))
	return n, err
}
