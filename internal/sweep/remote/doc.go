// Package remote fans simulation runs out to a cluster of dramthermd
// peers — the distributed backend behind a sweep.Engine.
//
// # Routing
//
// Backend implements sweep.SpecBackend. Each spec is canonicalized into
// its cache Key (Config.Key, normally Engine.Key) and routed by
// consistent hashing: every peer contributes Vnodes points to a hash
// ring, and the spec goes to the first peer clockwise of the key's
// hash. The same key therefore always lands on the same peer while the
// membership is stable, so each peer's run cache (and level-1 trace
// store) stays hot for its shard of the grid — repeated or overlapping
// sweeps hit warm caches instead of resimulating.
//
// # Health and failover
//
// Peers start admitted. A failed request or probe ejects a peer from
// the ring; a periodic /v1/healthz probe readmits it when it answers
// again, and request routing retries it half-open once its backoff
// expires. A run whose peer is down or errors fails over to the next
// ring member, and when no peer is left, executes locally via
// Config.Local — a cluster degrades to a slower single node, never to
// an outage. Caller cancellation and 4xx rejections are terminal, not
// failover triggers: no other peer would do better.
//
// # Wire protocol
//
// Single runs dispatch as one synchronous POST /v1/exec, bounded by a
// per-peer request pool: the body is the sweep.Spec JSON and the reply
// an ExecResponse carrying the full result plus the peer's own cache
// outcome. That outcome and the peer id flow back through
// sweep.RunInfo into Event.Peer, the job event log, and the SSE
// stream, so a cluster-wide sweep is observable per spec.
//
// # Batched sweeps
//
// Backend also implements sweep.BatchBackend: a whole sweep is planned
// up front (PlanShards groups the grid's distinct uncached specs by
// ring owner) and each peer receives its entire shard in a single
// POST /v1/exec/batch, streaming per-spec outcomes back as NDJSON
// BatchLines — one round trip per peer instead of one per spec, with
// the same per-spec observability. A peer that dies mid-stream only
// loses its unacknowledged specs: they re-plan onto the surviving
// ring, and when no peer is left they are handed back to the engine
// with sweep.ErrRunLocal for local execution.
//
// # Dynamic membership
//
// The ring is not fixed at construction: SetMembers reconciles the
// peer set in place — joiners enter admitted, leavers drop out (their
// in-flight requests fail over), retained members keep their health
// state and counters — so a membership layer can re-form the ring on
// join/leave without restarting the coordinator. The gossip
// subpackage (internal/sweep/remote/gossip) provides that layer:
// Config.OnPeerDown/OnPeerUp expose the backend's probe verdicts as
// the local failure detector gossip suspicion feeds on, and the
// gossip node's OnChange deltas drive SetMembers.
package remote
