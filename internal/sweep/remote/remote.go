package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dramtherm/internal/obs"
	"dramtherm/internal/sim"
	"dramtherm/internal/sweep"
)

// ExecPath is the synchronous execution endpoint the backend dispatches
// to on each peer, served by internal/httpapi: POST a sweep.Spec, get an
// ExecResponse back.
const ExecPath = "/v1/exec"

// HealthPath is the endpoint the prober checks on each peer.
const HealthPath = "/v1/healthz"

// LocalPeer is the RunInfo.Peer value reported when the backend fell
// back to local execution because no peer could serve the run.
const LocalPeer = "local"

// ExecResponse is the POST /v1/exec reply: the full simulation result
// (traces included, so the coordinator's cache entry is complete) plus
// how the serving node obtained it ("built", "hit" or "joined").
type ExecResponse struct {
	Outcome string            `json:"outcome"`
	Result  sim.MEMSpotResult `json:"result"`
}

// Peer names one dramthermd instance runs can be dispatched to.
type Peer struct {
	// ID identifies the peer in events and status reports; when empty it
	// is derived from the URL.
	ID string
	// URL is the peer's base URL, e.g. "http://worker-1:8080".
	URL string
}

// Config tunes a Backend. Key and at least one of Peers/Local are
// required; every other zero value selects a default.
type Config struct {
	// Peers is the initial ring membership. Peers start admitted and are
	// ejected on their first failure (or failed probe).
	Peers []Peer
	// Key canonicalizes a spec for consistent hashing — pass the
	// engine's Key method so the ring shards on the same identity the
	// run caches are keyed by.
	Key func(sweep.Spec) sweep.Key
	// Local executes a spec in-process when no peer can: the ring is
	// empty or every candidate failed. Pass the engine's Exec method.
	// When nil, exhausting the ring is an error.
	Local func(ctx context.Context, spec sweep.Spec) (sim.MEMSpotResult, error)
	// MaxPerPeer bounds concurrent in-flight requests per peer
	// (default 4); excess dispatches to the same peer queue.
	MaxPerPeer int
	// Vnodes is the number of ring points per peer (default 64).
	Vnodes int
	// ProbeEvery is the health-probe period (default 5s; < 0 disables
	// the background prober — Probe can still be called directly).
	ProbeEvery time.Duration
	// ProbeTimeout bounds one health probe (default 2s).
	ProbeTimeout time.Duration
	// Backoff is how long an ejected peer stays out of the ring before
	// request routing retries it; a successful probe readmits it sooner
	// (default 15s).
	Backoff time.Duration
	// Client overrides the HTTP client (default: a client whose
	// transport keeps MaxPerPeer idle connections per peer).
	Client *http.Client
	// Logf sinks ejection/readmission logs (default: silent). When
	// Logger is unset, log records are rendered onto Logf one line each.
	Logf func(format string, v ...any)
	// Logger, when non-nil, receives structured membership and peer
	// state-transition events and takes precedence over Logf.
	Logger *slog.Logger
	// Now overrides the clock, for tests.
	Now func() time.Time
	// OnPeerDown, when non-nil, observes every up→down transition — the
	// local failure-detector output a gossip membership layer feeds on
	// (see internal/sweep/remote/gossip). Called without locks held.
	OnPeerDown func(id string, cause error)
	// OnPeerUp observes every probe-confirmed down→up transition.
	// Speculative backoff-expiry readmissions do not count: they are
	// retries, not evidence. Called without locks held.
	OnPeerUp func(id string)
	// Replication enables RF=2: every result a peer builds for this
	// coordinator is asynchronously pushed to its key's ring successor
	// via POST /v1/handoff, and membership changes stream moved keys'
	// cached results to their new owners (see Entries). Best-effort —
	// delivery failures cost cache warmth, never sweep correctness.
	Replication bool
	// Entries iterates the coordinator's cached results — pass the
	// engine's Range method. Required for membership-change handoff;
	// without it only build-time replication runs.
	Entries func(fn func(sweep.Key, sim.MEMSpotResult) bool)
}

// Backend distributes runs across dramthermd peers by consistent
// hashing on the canonical spec key, so each peer's run cache stays hot
// for its shard of the grid. It implements sweep.SpecBackend: install it
// with Engine.SetBackend. Peers are health-checked (periodic probes,
// eject on failure, readmit on recovery or backoff expiry) and a run
// whose peer is down or errors fails over around the ring, landing on
// local execution when no peer is left.
type Backend struct {
	cfg       Config
	client    *http.Client
	ownClient bool // we built the client, so Close may reap its idle conns
	now       func() time.Time
	log       *slog.Logger

	mu        sync.RWMutex // guards membership, peer state transitions and the ring pointer
	peers     []*peer      // current membership (SetMembers rewrites it)
	ring      *ring
	ringPeers []*peer      // the membership snapshot ring indices point into
	down      atomic.Int32 // ejected-peer count; lets the hot path skip readmitExpired

	// Replication state (replicate.go); the queue is nil unless
	// Config.Replication is set.
	replQ         chan replJob
	replSent      atomic.Int64
	replDropped   atomic.Int64
	replPending   atomic.Int64
	handoffKeys   atomic.Int64
	handoffRounds atomic.Int64
	promotions    atomic.Int64

	// Instrumentation; all nil (and therefore no-ops) until Instrument.
	mDispatch      *obs.CounterVec // {peer, kind}
	mTransition    *obs.CounterVec // {peer, to}
	mFailover      *obs.Counter
	mReplan        *obs.Counter
	mMoved         *obs.Counter
	mStreamBytes   *obs.Counter
	mStreamLines   *obs.Counter
	mReplSent      *obs.CounterVec // {peer}
	mReplDropped   *obs.Counter
	mHandoffKeys   *obs.CounterVec // {peer}
	mHandoffRounds *obs.Counter
	mPromotions    *obs.Counter
	prevOwners     []string // probe-key owners at the last rebuild (guarded by mu)

	stop chan struct{}
	once sync.Once
	wg   sync.WaitGroup
}

// peer is one ring member plus its health state and traffic counters.
type peer struct {
	id  string
	url string
	sem chan struct{} // bounded request pool

	requests atomic.Int64
	failures atomic.Int64

	// Guarded by Backend.mu.
	up        bool
	gone      bool // removed by SetMembers; late failures must not touch counters
	downSince time.Time
	downUntil time.Time
	lastErr   string
}

// New builds a backend over the configured peers and, unless probing is
// disabled, starts the background health prober. Call Close when done.
func New(cfg Config) (*Backend, error) {
	if cfg.Key == nil {
		return nil, errors.New("remote: Config.Key is required")
	}
	if len(cfg.Peers) == 0 && cfg.Local == nil {
		return nil, errors.New("remote: need at least one peer or a local fallback")
	}
	if cfg.MaxPerPeer <= 0 {
		cfg.MaxPerPeer = 4
	}
	if cfg.Vnodes <= 0 {
		cfg.Vnodes = 64
	}
	if cfg.ProbeEvery == 0 {
		cfg.ProbeEvery = 5 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 15 * time.Second
	}
	b := &Backend{
		cfg:    cfg,
		client: cfg.Client,
		now:    cfg.Now,
		log:    cfg.Logger,
		stop:   make(chan struct{}),
	}
	if b.client == nil {
		b.client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: cfg.MaxPerPeer}}
		b.ownClient = true
	}
	if b.now == nil {
		b.now = time.Now
	}
	if b.log == nil {
		if cfg.Logf != nil {
			b.log = obs.LogfLogger(cfg.Logf)
		} else {
			b.log = slog.New(slog.DiscardHandler)
		}
	}
	seen := make(map[string]bool, len(cfg.Peers))
	for _, pc := range cfg.Peers {
		id, url, err := canonPeer(pc)
		if err != nil {
			return nil, err
		}
		if seen[id] {
			return nil, fmt.Errorf("remote: duplicate peer id %q", id)
		}
		seen[id] = true
		b.peers = append(b.peers, &peer{
			id: id, url: url, up: true,
			sem: make(chan struct{}, cfg.MaxPerPeer),
		})
	}
	b.rebuildLocked() // no lock needed yet: b is not shared
	if cfg.ProbeEvery > 0 {
		b.wg.Add(1)
		go b.probeLoop()
	}
	if cfg.Replication {
		b.replQ = make(chan replJob, replQueueDepth)
		b.wg.Add(1)
		go b.replicateLoop()
	}
	return b, nil
}

// DeriveID is the canonical URL-to-member-id derivation: trailing
// slashes dropped, scheme stripped. The ring and the gossip layer must
// agree on member identity, so every layer that names a member from
// its URL (peer configs, gossip seeds, a node's own advertised self)
// must derive through here.
func DeriveID(url string) string {
	url = strings.TrimRight(url, "/")
	return strings.TrimPrefix(strings.TrimPrefix(url, "http://"), "https://")
}

// canonPeer normalizes one configured peer: the URL loses its trailing
// slash and an empty id is derived from the URL.
func canonPeer(pc Peer) (id, url string, err error) {
	url = strings.TrimRight(pc.URL, "/")
	if url == "" {
		return "", "", fmt.Errorf("remote: peer %q has no URL", pc.ID)
	}
	id = pc.ID
	if id == "" {
		id = DeriveID(url)
	}
	return id, url, nil
}

// Close stops the background prober and reaps the backend-owned HTTP
// client's idle connections. In-flight dispatches are not interrupted;
// cancel their contexts for that.
func (b *Backend) Close() {
	b.once.Do(func() { close(b.stop) })
	b.wg.Wait()
	if b.ownClient {
		b.client.CloseIdleConnections()
	}
}

// SetMembers replaces the backend's membership with peers, rebuilding
// the ring: new members join admitted, absent members leave (their
// in-flight requests finish, then fail over), and retained members keep
// their health state and traffic counters. This is the seam a gossip
// membership layer drives, so the ring re-forms on join/leave without
// restarting the coordinator. Unusable entries (no URL) and duplicate
// ids are skipped.
func (b *Backend) SetMembers(peers []Peer) {
	b.mu.Lock()
	oldRing, oldRingPeers := b.ring, b.ringPeers
	current := make(map[string]*peer, len(b.peers))
	for _, p := range b.peers {
		current[p.id] = p
	}
	next := make([]*peer, 0, len(peers))
	seen := make(map[string]bool, len(peers))
	var joined, left []string
	for _, pc := range peers {
		id, url, err := canonPeer(pc)
		if err != nil || seen[id] {
			continue
		}
		seen[id] = true
		// peer.url is immutable (dispatch paths read it unlocked), so a
		// member re-announcing at a new address is a leave plus a fresh
		// join rather than an in-place rewrite.
		if p, ok := current[id]; ok && p.url == url {
			next = append(next, p)
			delete(current, id)
			continue
		}
		next = append(next, &peer{
			id: id, url: url, up: true,
			sem: make(chan struct{}, b.cfg.MaxPerPeer),
		})
		joined = append(joined, id)
	}
	for id, p := range current {
		p.gone = true
		if !p.up {
			b.down.Add(-1) // it no longer counts toward ejected membership
		}
		left = append(left, id)
	}
	changed := len(joined) > 0 || len(left) > 0
	if changed {
		b.peers = next
		b.rebuildLocked()
	}
	b.mu.Unlock()
	if changed {
		b.log.Info("remote: membership changed",
			"peers", len(next), "joined", fmt.Sprint(joined), "left", fmt.Sprint(left))
		if b.cfg.Replication && b.cfg.Entries != nil {
			// Stream the moved keys' cached results to their new owners
			// before traffic lands there. Asynchronous: gossip must not
			// block on a cache walk.
			go b.handoffOnChange(oldRing, oldRingPeers, left)
		}
	}
}

func (b *Backend) probeLoop() {
	defer b.wg.Done()
	t := time.NewTicker(b.cfg.ProbeEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			b.Probe(context.Background())
		case <-b.stop:
			return
		}
	}
}

// Probe health-checks every peer once: GET /v1/healthz, ejecting peers
// that fail and readmitting peers that answer. The background prober
// calls this periodically; tests call it directly.
func (b *Backend) Probe(ctx context.Context) {
	b.mu.RLock()
	peers := append([]*peer(nil), b.peers...)
	b.mu.RUnlock()
	for _, p := range peers {
		pctx, cancel := context.WithTimeout(ctx, b.cfg.ProbeTimeout)
		req, err := http.NewRequestWithContext(pctx, http.MethodGet, p.url+HealthPath, nil)
		if err == nil {
			var resp *http.Response
			if resp, err = b.client.Do(req); err == nil {
				io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //nolint:errcheck
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					err = fmt.Errorf("probe status %s", resp.Status)
				}
			}
		}
		cancel()
		b.mDispatch.WithLabelValues(p.id, "probe").Inc()
		if err != nil {
			b.eject(p, err)
		} else {
			b.readmit(p)
		}
	}
}

// peerError marks a failure attributable to the peer (unreachable, or a
// 5xx) — the retryable class that triggers ejection and failover.
// Client-side errors (a 4xx: the spec itself is bad) and caller
// cancellation are terminal instead: no other peer would do better.
type peerError struct {
	id  string
	err error
}

func (e *peerError) Error() string { return fmt.Sprintf("peer %s: %v", e.id, e.err) }
func (e *peerError) Unwrap() error { return e.err }

// RunSpec implements sweep.SpecBackend: it dispatches the spec to the
// ring member owning its key, fails over around the ring on peer
// errors, and falls back to Config.Local when no peer can serve it.
func (b *Backend) RunSpec(ctx context.Context, spec sweep.Spec) (sim.MEMSpotResult, sweep.RunInfo, error) {
	b.readmitExpired()
	key := string(b.cfg.Key(spec))
	b.mu.RLock()
	ring, ringPeers := b.ring, b.ringPeers
	b.mu.RUnlock()
	var lastErr error
	for _, idx := range ring.candidates(key) {
		p := ringPeers[idx]
		res, info, err := b.dispatch(ctx, p, spec)
		if err == nil {
			b.maybeReplicate(spec, res, info)
			return res, info, nil
		}
		var pe *peerError
		if !errors.As(err, &pe) {
			return sim.MEMSpotResult{}, sweep.RunInfo{}, err
		}
		b.eject(p, pe.err)
		b.mFailover.Inc()
		lastErr = pe
	}
	if b.cfg.Local == nil {
		if lastErr == nil {
			lastErr = errors.New("no live peers")
		}
		return sim.MEMSpotResult{}, sweep.RunInfo{}, fmt.Errorf("remote: %s unservable: %w", spec, lastErr)
	}
	res, err := b.cfg.Local(ctx, spec)
	info := sweep.RunInfo{Outcome: sweep.Built, Peer: LocalPeer}
	if err == nil {
		// A locally built result still gets a ring copy: its owner is the
		// first candidate that is not "local", i.e. whoever would serve
		// the key once a peer comes back.
		b.maybeReplicate(spec, res, info)
	}
	return res, info, err
}

// dispatch executes spec on p, bounded by the peer's request pool.
func (b *Backend) dispatch(ctx context.Context, p *peer, spec sweep.Spec) (sim.MEMSpotResult, sweep.RunInfo, error) {
	var zero sim.MEMSpotResult
	select {
	case p.sem <- struct{}{}:
		defer func() { <-p.sem }()
	case <-ctx.Done():
		return zero, sweep.RunInfo{}, ctx.Err()
	}
	p.requests.Add(1)
	b.mDispatch.WithLabelValues(p.id, "exec").Inc()
	body, err := json.Marshal(spec)
	if err != nil {
		return zero, sweep.RunInfo{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.url+ExecPath, bytes.NewReader(body))
	if err != nil {
		return zero, sweep.RunInfo{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	if id := obs.RequestID(ctx); id != "" {
		req.Header.Set(obs.RequestIDHeader, id)
	}
	resp, err := b.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			// The caller gave up; that is not the peer's fault.
			return zero, sweep.RunInfo{}, ctx.Err()
		}
		return zero, sweep.RunInfo{}, &peerError{p.id, err}
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		var er ExecResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			return zero, sweep.RunInfo{}, &peerError{p.id, fmt.Errorf("decoding exec response: %w", err)}
		}
		return er.Result, sweep.RunInfo{Outcome: parseOutcome(er.Outcome), Peer: p.id}, nil
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		// 4xx is terminal: the spec is invalid (400) or its run fails
		// deterministically (422) — no other peer would do better, and
		// the peer itself is healthy.
		if resp.StatusCode == http.StatusUnprocessableEntity {
			return zero, sweep.RunInfo{}, fmt.Errorf("remote: run failed on peer %s: %s", p.id, errorBody(resp))
		}
		return zero, sweep.RunInfo{}, fmt.Errorf("remote: peer %s rejected spec: %s", p.id, errorBody(resp))
	default:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //nolint:errcheck
		return zero, sweep.RunInfo{}, &peerError{p.id, fmt.Errorf("status %s", resp.Status)}
	}
}

// errorBody extracts the error message of a 4xx reply — the structured
// {"error":{"code","message"}} envelope, the legacy {"error":"..."}
// string of pre-0.8 peers during a rolling upgrade — falling back to
// the status line.
func errorBody(resp *http.Response) string {
	var body []byte
	body, _ = io.ReadAll(io.LimitReader(resp.Body, 4096))
	var env struct {
		Error struct {
			Message string `json:"message"`
		} `json:"error"`
	}
	if json.Unmarshal(body, &env) == nil && env.Error.Message != "" {
		return env.Error.Message
	}
	var legacy struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &legacy) == nil && legacy.Error != "" {
		return legacy.Error
	}
	return resp.Status
}

// parseOutcome maps the wire outcome back to the sweep enum; anything
// unrecognized counts as a fresh build.
func parseOutcome(s string) sweep.Outcome {
	switch s {
	case sweep.Hit.String():
		return sweep.Hit
	case sweep.Joined.String():
		return sweep.Joined
	default:
		return sweep.Built
	}
}

// eject takes p out of the ring until a probe succeeds or its backoff
// expires. Repeated failures while down push the backoff forward.
func (b *Backend) eject(p *peer, cause error) {
	p.failures.Add(1)
	now := b.now()
	b.mu.Lock()
	p.lastErr = cause.Error()
	p.downUntil = now.Add(b.cfg.Backoff)
	ejected := p.up
	if ejected {
		p.up = false
		p.downSince = now
		if !p.gone {
			b.down.Add(1)
			b.rebuildLocked()
		}
		b.mTransition.WithLabelValues(p.id, "down").Inc()
		b.log.Warn("remote: peer ejected", "peer", p.id, "err", cause.Error())
	}
	b.mu.Unlock()
	if ejected && b.cfg.OnPeerDown != nil {
		b.cfg.OnPeerDown(p.id, cause)
	}
}

// readmit puts p back into the ring (a probe answered).
func (b *Backend) readmit(p *peer) {
	b.mu.Lock()
	readmitted := !p.up
	if readmitted {
		p.up = true
		p.lastErr = ""
		if !p.gone {
			b.down.Add(-1)
			b.rebuildLocked()
		}
		b.mTransition.WithLabelValues(p.id, "up").Inc()
		b.log.Info("remote: peer readmitted", "peer", p.id)
	}
	b.mu.Unlock()
	if readmitted && b.cfg.OnPeerUp != nil {
		b.cfg.OnPeerUp(p.id)
	}
}

// readmitExpired returns ejected peers whose backoff has elapsed to the
// ring, so request routing retries them (half-open) even when probing
// is disabled; a failure ejects them again.
func (b *Backend) readmitExpired() {
	if b.down.Load() == 0 {
		return // all peers admitted: stay off the write lock
	}
	now := b.now()
	b.mu.Lock()
	defer b.mu.Unlock()
	changed := false
	for _, p := range b.peers {
		if !p.up && !now.Before(p.downUntil) {
			p.up = true
			b.down.Add(-1)
			changed = true
			b.mTransition.WithLabelValues(p.id, "half_open").Inc()
			b.log.Info("remote: retrying peer after backoff", "peer", p.id)
		}
	}
	if changed {
		b.rebuildLocked()
	}
}

// rebuildLocked recomputes the ring from the admitted peers, snapshotting
// the membership the new ring's indices point into — lookups resolved
// against an old ring stay valid even after SetMembers rewrites b.peers.
// Callers hold b.mu (or exclusive access during construction).
func (b *Backend) rebuildLocked() {
	ids := make([]string, len(b.peers))
	var members []int
	for i, p := range b.peers {
		ids[i] = p.id
		if p.up {
			members = append(members, i)
		}
	}
	b.ring = buildRing(ids, members, b.cfg.Vnodes)
	b.ringPeers = append([]*peer(nil), b.peers...)
	b.countMovedLocked()
}

// OwnerOf reports the id of the ring member spec currently routes to —
// the first failover candidate — or "" when the ring is empty. It is a
// routing probe for observability and tests; membership changes can
// reroute the spec at any time.
func (b *Backend) OwnerOf(spec sweep.Spec) string {
	key := string(b.cfg.Key(spec))
	b.mu.RLock()
	defer b.mu.RUnlock()
	c := b.ring.candidates(key)
	if len(c) == 0 {
		return ""
	}
	return b.ringPeers[c[0]].id
}

// PeerStatus is one peer's health and traffic snapshot, reported by
// Status and surfaced in clustered healthz bodies.
type PeerStatus struct {
	ID        string     `json:"id"`
	URL       string     `json:"url"`
	Up        bool       `json:"up"`
	Requests  int64      `json:"requests"`
	Failures  int64      `json:"failures"`
	LastError string     `json:"last_error,omitempty"`
	DownSince *time.Time `json:"down_since,omitempty"`
}

// Status snapshots every peer in configuration order.
func (b *Backend) Status() []PeerStatus {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]PeerStatus, len(b.peers))
	for i, p := range b.peers {
		out[i] = PeerStatus{
			ID:        p.id,
			URL:       p.url,
			Up:        p.up,
			Requests:  p.requests.Load(),
			Failures:  p.failures.Load(),
			LastError: p.lastErr,
		}
		if !p.up {
			t := p.downSince
			out[i].DownSince = &t
		}
	}
	return out
}
