package sweep

import (
	"fmt"

	"dramtherm/internal/core"
	"dramtherm/internal/fbconfig"
	"dramtherm/internal/workload"
)

// Spec names one level-2 run entirely by value, unlike core.RunSpec
// whose Policy field is a live (stateful) object. The zero value of
// every field selects the paper default.
type Spec struct {
	// Mix is the workload mix name (W1..W8, W11, W12).
	Mix string `json:"mix"`
	// Policy is the DTM policy name (core.PolicyNames); empty means
	// "No-limit".
	Policy string `json:"policy,omitempty"`
	// Cooling is the Table 3.2 column shorthand (e.g. "AOHS_1.5");
	// empty selects AOHS_1.5.
	Cooling string `json:"cooling,omitempty"`
	// Model is "isolated" (default) or "integrated".
	Model string `json:"model,omitempty"`
	// PsiXi overrides the integrated model's interaction coefficient
	// when nonzero.
	PsiXi float64 `json:"psi_xi,omitempty"`
	// Interval overrides the DTM interval in seconds when nonzero.
	Interval float64 `json:"interval,omitempty"`
	// Limits overrides the thermal limits when AMBTDP is nonzero; the
	// override reaches both the simulation and the policy construction
	// (TRP/TDP sweeps).
	Limits fbconfig.ThermalLimits `json:"limits,omitempty"`
	// InstrScale is the run's fidelity: a multiplier on the system's
	// base application-length scale. Zero and 1 both mean full fidelity
	// (and share a cache key); adaptive search strategies use fractional
	// rungs (e.g. 0.25) as cheap approximations, each a distinct cache
	// entry.
	InstrScale float64 `json:"instr_scale,omitempty"`
}

// normalize fills defaulted fields so that equivalent specs share a key.
func (s Spec) normalize() Spec {
	if s.Policy == "" {
		s.Policy = "No-limit"
	}
	if s.Cooling == "" {
		s.Cooling = fbconfig.CoolingAOHS15.Name()
	}
	if s.Model == "" {
		s.Model = core.Isolated.String()
	}
	if s.InstrScale == 0 {
		s.InstrScale = 1
	}
	// The JSON codec cannot tell -0 from +0 (omitempty drops both), so
	// the canonical key must not either — otherwise a spec would change
	// identity crossing the wire and shard to a different ring owner.
	s.PsiXi = canonZero(s.PsiXi)
	s.Interval = canonZero(s.Interval)
	s.Limits.AMBTDP = canonZero(s.Limits.AMBTDP)
	s.Limits.DRAMTDP = canonZero(s.Limits.DRAMTDP)
	s.Limits.AMBTRP = canonZero(s.Limits.AMBTRP)
	s.Limits.DRAMTRP = canonZero(s.Limits.DRAMTRP)
	return s
}

// canonZero collapses negative zero onto positive zero.
func canonZero(f float64) float64 {
	if f == 0 {
		return 0
	}
	return f
}

// Key is the canonical cache identity of a run: a normalized spec plus
// the digest of the system configuration it executes under.
type Key string

// Key canonicalizes the spec under the given system-config digest.
func (s Spec) Key(configDigest string) Key {
	n := s.normalize()
	k := fmt.Sprintf("%s|%s|%s|%s|%s|psixi=%g|iv=%g|lim=%g,%g,%g,%g",
		configDigest, n.Mix, n.Policy, n.Cooling, n.Model,
		n.PsiXi, n.Interval,
		n.Limits.AMBTDP, n.Limits.DRAMTDP, n.Limits.AMBTRP, n.Limits.DRAMTRP)
	// Full fidelity keeps the pre-InstrScale key format, so existing
	// segment logs and replicated caches stay valid; only fractional
	// rungs grow the suffix that makes them distinct entries.
	if n.InstrScale != 1 {
		k += fmt.Sprintf("|is=%g", n.InstrScale)
	}
	return Key(k)
}

// String renders the spec compactly for progress lines and logs.
func (s Spec) String() string {
	n := s.normalize()
	out := fmt.Sprintf("%s/%s/%s/%s", n.Mix, n.Policy, n.Cooling, n.Model)
	if n.PsiXi != 0 {
		out += fmt.Sprintf("/psixi=%g", n.PsiXi)
	}
	if n.Interval != 0 {
		out += fmt.Sprintf("/iv=%g", n.Interval)
	}
	if n.Limits.AMBTDP != 0 {
		out += fmt.Sprintf("/lim=%g,%g", n.Limits.AMBTDP, n.Limits.DRAMTDP)
	}
	if n.InstrScale != 1 {
		out += fmt.Sprintf("/is=%g", n.InstrScale)
	}
	return out
}

// modelKind parses the Model field.
func (s Spec) modelKind() (core.ThermalModelKind, error) {
	switch s.Model {
	case "", core.Isolated.String():
		return core.Isolated, nil
	case core.Integrated.String():
		return core.Integrated, nil
	default:
		return core.Isolated, fmt.Errorf("sweep: unknown thermal model %q (want %q or %q)",
			s.Model, core.Isolated, core.Integrated)
	}
}

// Grid is a cartesian product of spec fields. Empty slices default to a
// single zero entry (the paper default for that dimension), so the zero
// Grid expands to nothing only because Mixes is empty — every populated
// grid needs at least one mix.
type Grid struct {
	Mixes     []string                 `json:"mixes"`
	Policies  []string                 `json:"policies,omitempty"`
	Coolings  []string                 `json:"coolings,omitempty"`
	Models    []string                 `json:"models,omitempty"`
	PsiXis    []float64                `json:"psi_xis,omitempty"`
	Intervals []float64                `json:"intervals,omitempty"`
	Limits    []fbconfig.ThermalLimits `json:"limits,omitempty"`
}

// AllMixes fills the grid's Mixes with every paper mix.
func AllMixes() []string {
	out := make([]string, len(workload.Mixes))
	for i, m := range workload.Mixes {
		out[i] = m.Name
	}
	return out
}

// Expand enumerates the cartesian product in deterministic order: mixes
// vary slowest, then policies, coolings, models, psi-xi, intervals,
// limits.
func (g Grid) Expand() []Spec {
	or := func(ss []string) []string {
		if len(ss) == 0 {
			return []string{""}
		}
		return ss
	}
	orF := func(fs []float64) []float64 {
		if len(fs) == 0 {
			return []float64{0}
		}
		return fs
	}
	lims := g.Limits
	if len(lims) == 0 {
		lims = []fbconfig.ThermalLimits{{}}
	}
	var out []Spec
	for _, mix := range g.Mixes {
		for _, pol := range or(g.Policies) {
			for _, cool := range or(g.Coolings) {
				for _, mdl := range or(g.Models) {
					for _, px := range orF(g.PsiXis) {
						for _, iv := range orF(g.Intervals) {
							for _, lim := range lims {
								out = append(out, Spec{
									Mix: mix, Policy: pol, Cooling: cool, Model: mdl,
									PsiXi: px, Interval: iv, Limits: lim,
								})
							}
						}
					}
				}
			}
		}
	}
	return out
}
