package search

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync/atomic"
	"testing"

	"dramtherm/internal/core"
	"dramtherm/internal/sim"
	"dramtherm/internal/sweep"
)

// synthEngine backs the sweep engine with a synthetic objective: every
// (mix, policy) pair gets a stable pseudo-random runtime derived from
// seed, independent of the fidelity rung — a perfectly monotone
// landscape where cheap rungs rank exactly like full fidelity. The
// returned counter tracks full-fidelity executions.
func synthEngine(t *testing.T, seed int64) (*sweep.Engine, *atomic.Int64) {
	t.Helper()
	eng := sweep.NewEngine(core.NewSystem(core.DefaultConfig()), 4)
	fullFid := new(atomic.Int64)
	eng.SetRunFunc(func(ctx context.Context, rs core.RunSpec) (sim.MEMSpotResult, error) {
		if rs.InstrScale == 0 || rs.InstrScale == 1 {
			fullFid.Add(1)
		}
		return sim.MEMSpotResult{Seconds: synthSeconds(seed, rs), Completed: 4}, nil
	})
	t.Cleanup(func() { eng.Close() })
	return eng, fullFid
}

func synthSeconds(seed int64, rs core.RunSpec) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s", seed, rs.Mix.Name, rs.Policy.Name())
	return 100 + float64(h.Sum64()%1000)
}

// randomCandidates draws 2..n distinct (mix, policy) candidates.
func randomCandidates(rng *rand.Rand, n int) []sweep.Spec {
	mixes := []string{"W1", "W2", "W3", "W4", "W5", "W6", "W7", "W8"}
	policies := []string{"DTM-TS", "DTM-BW", "DTM-ACG", "DTM-CDVFS", "DTM-COMB"}
	all := sweep.Grid{Mixes: mixes, Policies: policies}.Expand()
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	k := 2 + rng.Intn(n-1)
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// trueBest returns the candidate the synthetic landscape actually
// favors, by exhaustive objective evaluation.
func trueBest(t *testing.T, eng *sweep.Engine, seed int64, candidates []sweep.Spec) sweep.Spec {
	t.Helper()
	best, bestObj := 0, 0.0
	for i, sp := range candidates {
		rs, err := eng.Resolve(sp)
		if err != nil {
			t.Fatal(err)
		}
		obj := synthSeconds(seed, rs)
		if i == 0 || obj < bestObj {
			best, bestObj = i, obj
		}
	}
	return candidates[best]
}

// TestHalvingCheaperThanGrid: for every candidate set larger than one,
// successive halving reaches full fidelity with strictly fewer
// simulations than the exhaustive grid would need.
func TestHalvingCheaperThanGrid(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		candidates := randomCandidates(rng, 24)
		eng, fullFid := synthEngine(t, seed)
		res, err := Run(context.Background(), eng, &Halving{Candidates: candidates}, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.FullFidelityRuns >= len(candidates) {
			t.Errorf("seed %d: %d full-fidelity runs for %d candidates, want strictly fewer",
				seed, res.FullFidelityRuns, len(candidates))
		}
		if got := int(fullFid.Load()); got != res.FullFidelityRuns {
			t.Errorf("seed %d: engine executed %d full-fidelity sims, result reports %d",
				seed, got, res.FullFidelityRuns)
		}
	}
}

// TestSearchKeepsOptimum: on a monotone landscape (cheap rungs rank
// like full fidelity) neither strategy ever prunes the true optimum.
func TestSearchKeepsOptimum(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		candidates := randomCandidates(rng, 24)
		for _, strat := range []Strategy{
			&Halving{Candidates: candidates},
			&BoundPrune{Candidates: candidates},
		} {
			eng, _ := synthEngine(t, seed)
			want := trueBest(t, eng, seed, candidates)
			res, err := Run(context.Background(), eng, strat, Options{})
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, strat.Name(), err)
			}
			if res.Best.String() != want.String() {
				t.Errorf("seed %d %s: best %s, exhaustive optimum %s",
					seed, strat.Name(), res.Best, want)
			}
		}
	}
}

// TestSearchDeterministic: the same seed (same candidates, same
// landscape) renders byte-identical result tables on fresh engines,
// concurrency notwithstanding.
func TestSearchDeterministic(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		candidates := randomCandidates(rng, 24)
		run := func() string {
			eng, _ := synthEngine(t, seed)
			res, err := Run(context.Background(), eng, &Halving{Candidates: candidates}, Options{})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			return res.Table("t").String()
		}
		if a, b := run(), run(); a != b {
			t.Errorf("seed %d: nondeterministic tables:\n%s\nvs\n%s", seed, a, b)
		}
	}
}

// TestSearchEvents: round boundaries are observable — one started and
// one finished event per round, with monotone round indices and the
// final round at full fidelity.
func TestSearchEvents(t *testing.T) {
	eng, _ := synthEngine(t, 1)
	candidates := randomCandidates(rand.New(rand.NewSource(1)), 16)
	var starts, finishes []sweep.Event
	res, err := Run(context.Background(), eng, &BoundPrune{Candidates: candidates}, Options{
		OnEvent: func(ev sweep.Event) {
			switch ev.Kind {
			case sweep.EventRoundStarted:
				starts = append(starts, ev)
			case sweep.EventRoundFinished:
				finishes = append(finishes, ev)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(starts) != len(res.Rounds) || len(finishes) != len(res.Rounds) {
		t.Fatalf("events = %d started / %d finished, want %d each",
			len(starts), len(finishes), len(res.Rounds))
	}
	for i := range finishes {
		if starts[i].Round != i || finishes[i].Round != i {
			t.Errorf("event %d carries rounds %d/%d", i, starts[i].Round, finishes[i].Round)
		}
		if starts[i].Rung != res.Rounds[i].Scale {
			t.Errorf("round %d started with rung %g, executed %g", i, starts[i].Rung, res.Rounds[i].Scale)
		}
	}
	if last := res.Rounds[len(res.Rounds)-1]; last.Scale != 1 {
		t.Errorf("final round at rung %g, want full fidelity", last.Scale)
	}
}

// TestSearchCancellation: a dead context aborts the search with the
// context's error rather than hanging or returning a partial result.
func TestSearchCancellation(t *testing.T) {
	eng, _ := synthEngine(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	candidates := randomCandidates(rand.New(rand.NewSource(2)), 8)
	if _, err := Run(ctx, eng, &Halving{Candidates: candidates}, Options{}); err == nil {
		t.Fatal("cancelled search returned nil error")
	}
}

// TestSearchNoCandidates: an empty strategy is an error, not a panic or
// an empty success.
func TestSearchNoCandidates(t *testing.T) {
	eng, _ := synthEngine(t, 1)
	if _, err := Run(context.Background(), eng, &Halving{}, Options{}); err == nil {
		t.Fatal("empty search returned nil error")
	}
}
