package search

import (
	"math"

	"dramtherm/internal/sweep"
)

// Halving is successive halving over a fidelity ladder: round r runs
// the surviving candidates at Rungs[r]; the best ceil(n/Eta) by
// objective advance. The last rung must be 1 (full fidelity), so the
// final round measures the true objective of everything still standing.
// Candidate order is the tie-break: equal objectives advance the
// earlier candidate, which keeps the whole search deterministic.
type Halving struct {
	// Candidates is the design space, typically Grid.Expand(). Their
	// InstrScale fields are overwritten by the rung ladder.
	Candidates []sweep.Spec
	// Rungs is the ascending fidelity ladder (default DefaultRungs).
	// The final entry must be 1.
	Rungs []float64
	// Eta is the keep fraction denominator: each round keeps
	// ceil(n/Eta) candidates (default 2; values < 2 are raised to 2).
	Eta float64
}

// DefaultRungs is the two-cheap-rungs-then-exact ladder strategies use
// when the caller does not pick one.
var DefaultRungs = []float64{0.25, 0.5, 1}

// Name implements Strategy.
func (h *Halving) Name() string { return "halving" }

// Next implements Strategy: plan round len(completed).
func (h *Halving) Next(completed []Round) ([]sweep.Spec, bool) {
	rungs := h.rungs()
	r := len(completed)
	// A completed full-fidelity round ends the search — whether it was
	// the ladder's last rung or the early jump below.
	if len(h.Candidates) == 0 || r >= len(rungs) || (r > 0 && completed[r-1].Scale == 1) {
		return nil, true
	}
	var survivors []sweep.Spec
	if r == 0 {
		survivors = h.Candidates
	} else {
		last := completed[r-1]
		keep := ceilDiv(len(last.Specs), h.eta())
		survivors = topK(last.Specs, last.Objectives, keep)
		if len(survivors) == 1 && rungs[r] != 1 {
			// One candidate left: skip straight to the full-fidelity
			// confirmation round instead of re-measuring it per rung.
			return atScale(survivors, 1), false
		}
	}
	return atScale(survivors, rungs[r]), false
}

func (h *Halving) rungs() []float64 {
	if len(h.Rungs) == 0 {
		return DefaultRungs
	}
	return h.Rungs
}

func (h *Halving) eta() float64 {
	if h.Eta < 2 {
		return 2
	}
	return h.Eta
}

// ceilDiv returns ceil(n/eta), never below 1.
func ceilDiv(n int, eta float64) int {
	k := int(math.Ceil(float64(n) / eta))
	if k < 1 {
		k = 1
	}
	return k
}

// topK selects the k lowest-objective specs, preserving their relative
// order (stable selection, earlier index wins ties).
func topK(specs []sweep.Spec, objectives []float64, k int) []sweep.Spec {
	if k >= len(specs) {
		return specs
	}
	// Selection by rank: an index is kept when fewer than k others beat
	// it, where "beats" is (lower objective) or (equal and earlier).
	out := make([]sweep.Spec, 0, k)
	for i := range specs {
		rank := 0
		for j := range specs {
			if objectives[j] < objectives[i] || (objectives[j] == objectives[i] && j < i) {
				rank++
			}
		}
		if rank < k {
			out = append(out, specs[i])
		}
	}
	return out
}

// atScale copies the specs with their fidelity rung set.
func atScale(specs []sweep.Spec, scale float64) []sweep.Spec {
	out := make([]sweep.Spec, len(specs))
	for i, s := range specs {
		s.InstrScale = scale
		out[i] = s
	}
	return out
}
