package search

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"dramtherm/internal/core"
	"dramtherm/internal/sim"
	"dramtherm/internal/sweep"
)

// fakeStrategy scripts Next round by round: each entry is the specs to
// plan, and after the script runs out the strategy reports done.
type fakeStrategy struct {
	rounds [][]sweep.Spec
	calls  int
}

func (f *fakeStrategy) Name() string { return "fake" }
func (f *fakeStrategy) Next(completed []Round) ([]sweep.Spec, bool) {
	i := f.calls
	f.calls++
	if i >= len(f.rounds) {
		return nil, true
	}
	return f.rounds[i], false
}

func fullFidSpecs() []sweep.Spec {
	return sweep.Grid{Mixes: []string{"W1"}, Policies: []string{"DTM-TS", "DTM-BW"}}.Expand()
}

// TestEmptyFirstRound: a strategy that plans an empty (but not done)
// round must abort the search loudly, not sweep nothing forever.
func TestEmptyFirstRound(t *testing.T) {
	eng, _ := synthEngine(t, 1)
	_, err := Run(context.Background(), eng, &fakeStrategy{rounds: [][]sweep.Spec{{}}}, Options{})
	if err == nil || !strings.Contains(err.Error(), "planned an empty round 0") {
		t.Fatalf("err = %v, want empty-round-0 error", err)
	}
}

// TestEmptyLaterRound: the empty-round check applies after completed
// rounds too — the error names the round that was empty.
func TestEmptyLaterRound(t *testing.T) {
	eng, _ := synthEngine(t, 1)
	_, err := Run(context.Background(), eng,
		&fakeStrategy{rounds: [][]sweep.Spec{fullFidSpecs(), {}}}, Options{})
	if err == nil || !strings.Contains(err.Error(), "planned an empty round 1") {
		t.Fatalf("err = %v, want empty-round-1 error", err)
	}
}

// TestNoRounds: a strategy that is done before planning anything has no
// final round to crown a winner from.
func TestNoRounds(t *testing.T) {
	eng, _ := synthEngine(t, 1)
	_, err := Run(context.Background(), eng, &fakeStrategy{}, Options{})
	if err == nil || !strings.Contains(err.Error(), "planned no rounds") {
		t.Fatalf("err = %v, want no-rounds error", err)
	}
}

// TestCancellationMidRound: cancelling while a round's sweep is in
// flight must abort the search with the round's context error — the
// existing TestSearchCancellation only covers a pre-cancelled context.
func TestCancellationMidRound(t *testing.T) {
	eng := sweep.NewEngine(core.NewSystem(core.DefaultConfig()), 2)
	t.Cleanup(func() { eng.Close() })
	ctx, cancel := context.WithCancel(context.Background())
	var runs atomic.Int64
	eng.SetRunFunc(func(rctx context.Context, rs core.RunSpec) (sim.MEMSpotResult, error) {
		if runs.Add(1) == 2 {
			// Second run of the round: pull the rug mid-sweep.
			cancel()
		}
		<-rctx.Done()
		return sim.MEMSpotResult{}, rctx.Err()
	})
	_, err := Run(ctx, eng, &fakeStrategy{rounds: [][]sweep.Spec{fullFidSpecs()}}, Options{})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "round 0") {
		t.Fatalf("err %v does not name the aborted round", err)
	}
}

// TestCancellationBetweenRounds: a context cancelled after round 0
// completes must stop round 1, and the error names it. Round 1 plans
// fresh specs — cached repeats of round 0 would never consult the
// context at all.
func TestCancellationBetweenRounds(t *testing.T) {
	eng := sweep.NewEngine(core.NewSystem(core.DefaultConfig()), 2)
	t.Cleanup(func() { eng.Close() })
	eng.SetRunFunc(func(rctx context.Context, rs core.RunSpec) (sim.MEMSpotResult, error) {
		if err := rctx.Err(); err != nil {
			return sim.MEMSpotResult{}, err
		}
		return sim.MEMSpotResult{Seconds: 100, Completed: 4}, nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	round1 := sweep.Grid{Mixes: []string{"W2"}, Policies: []string{"DTM-ACG", "DTM-CDVFS"}}.Expand()
	strat := &fakeStrategy{rounds: [][]sweep.Spec{fullFidSpecs(), round1}}
	done := false
	_, err := Run(ctx, eng, strat, Options{OnEvent: func(ev sweep.Event) {
		if ev.Kind == sweep.EventRoundFinished && !done {
			done = true
			cancel()
		}
	}})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "round 1") {
		t.Fatalf("err %v does not name round 1", err)
	}
}
