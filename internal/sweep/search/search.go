// Package search plans multi-round adaptive sweeps over the design
// space the exhaustive Grid would enumerate, trading cheap low-fidelity
// simulations for pruning before any full-cost run.
//
// The paper's DTM evaluation is a cartesian grid (mix × policy ×
// cooling × ψ·ξ × interval): doubling any dimension squares the work.
// A Strategy breaks that coupling. It plans rounds — each round is a
// plain spec list executed through Engine.Sweep, so rounds ride the
// batch backend, the replicated run cache, job event streaming and the
// obs metrics with no new cluster machinery — and decides from the
// completed rounds which candidates deserve the next, more expensive,
// fidelity rung. Fidelity is the Spec.InstrScale field: a fractional
// rung shrinks application lengths (and therefore cost) while keeping
// the simulated physics identical in kind, in the spirit of the
// inexact-cuts bound literature (Guigues, arXiv:1801.04243): cheap
// approximate evaluations produce bounds that prune before exact ones.
//
// Two strategies ship:
//
//   - Halving: successive halving. Run every candidate at the cheapest
//     rung, keep the best 1/eta by objective, re-run at the next rung,
//     repeat until one full-fidelity round remains.
//   - BoundPrune: bound-driven refinement. A low-fidelity objective f
//     brackets the true objective in [f·(1−slack), f·(1+slack)]; any
//     candidate whose optimistic bound is worse than the incumbent's
//     pessimistic bound can never win and is pruned.
//
// Both are deterministic: candidate order is the tie-break, so two runs
// over the same engine produce byte-identical Result tables — the
// regression oracle the report tables already are for grids.
package search

import (
	"context"
	"errors"
	"fmt"
	"time"

	"dramtherm/internal/report"
	"dramtherm/internal/sweep"
)

// Strategy plans an adaptive search: Next inspects every completed
// round and returns the specs of the next one (their InstrScale fields
// carry the fidelity rung), or done=true when the search is over. Next
// must be deterministic — same completed rounds, same plan — and must
// end on a full-fidelity round (InstrScale 1), whose best candidate
// becomes the search result. Next is never called concurrently.
type Strategy interface {
	// Name identifies the strategy in results, metrics and wire forms.
	Name() string
	// Next plans the round after the given completed ones.
	Next(completed []Round) (specs []sweep.Spec, done bool)
}

// Round is one completed search round: the specs the strategy planned,
// positionally aligned objectives (normalized runtime when the search
// normalizes, raw simulated seconds otherwise — lower is better), and
// the pruning the strategy applied after seeing them.
type Round struct {
	// Index is the zero-based round number.
	Index int
	// Scale is the round's fidelity rung (the specs' InstrScale).
	Scale float64
	// Specs are the candidates executed this round.
	Specs []sweep.Spec
	// Objectives are the per-spec objective values, aligned with Specs.
	Objectives []float64
	// Survivors counts candidates the strategy advanced to the next
	// round (0 on the final round).
	Survivors int
	// Pruned counts candidates discarded after this round.
	Pruned int
}

// Options tunes Run.
type Options struct {
	// Normalize makes the objective the normalized runtime
	// runtime(spec)/runtime(No-limit baseline) — the unit of the paper's
	// figures. Baselines share each round's fidelity rung, so they stay
	// cheap. When false the objective is raw simulated seconds.
	Normalize bool
	// OnEvent observes the search: round_started/round_finished
	// boundaries plus every per-spec event of the underlying sweeps.
	// The sweep.Options.OnEvent contract applies.
	OnEvent func(sweep.Event)
	// MaxRounds aborts a strategy that never finishes (default 32).
	MaxRounds int
	// Metrics, when non-nil, records rounds, pruned candidates and
	// per-rung latency (see Instrument).
	Metrics *Metrics
}

// Result is one completed adaptive search.
type Result struct {
	// Strategy is the planning strategy's name.
	Strategy string
	// Rounds are the completed rounds in execution order; the last one
	// ran at full fidelity.
	Rounds []Round
	// Best is the winning candidate, normalized, at full fidelity.
	Best sweep.Spec
	// BestObjective is Best's objective in the final round.
	BestObjective float64
	// TotalRuns counts specs executed across all rounds (baselines not
	// included).
	TotalRuns int
	// FullFidelityRuns counts specs executed at InstrScale 1 — the
	// number to hold against the exhaustive grid's candidate count.
	FullFidelityRuns int
}

// Run executes the strategy against the engine: each planned round goes
// through eng.Sweep (one batch-backend call per round in cluster mode,
// every run deduplicated and cached per rung), the objectives feed back
// into the strategy, and the final full-fidelity round's best candidate
// wins. The error of any round's sweep aborts the search.
func Run(ctx context.Context, eng *sweep.Engine, strat Strategy, opts Options) (*Result, error) {
	if strat == nil {
		return nil, errors.New("search: nil strategy")
	}
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 32
	}
	res := &Result{Strategy: strat.Name()}
	specs, done := strat.Next(nil)
	for !done {
		round := len(res.Rounds)
		if round >= maxRounds {
			return nil, fmt.Errorf("search: strategy %s still planning after %d rounds", strat.Name(), maxRounds)
		}
		if len(specs) == 0 {
			return nil, fmt.Errorf("search: strategy %s planned an empty round %d", strat.Name(), round)
		}
		scale := rungOf(specs[0])
		if opts.OnEvent != nil {
			opts.OnEvent(sweep.Event{Kind: sweep.EventRoundStarted,
				Round: round, Rung: scale, Survivors: len(specs), Total: len(specs)})
		}
		start := time.Now()
		sres, err := eng.Sweep(ctx, specs, sweep.Options{
			Normalize: opts.Normalize,
			OnEvent:   opts.OnEvent,
		})
		if err != nil {
			return nil, fmt.Errorf("search: round %d (rung %g): %w", round, scale, err)
		}
		objectives := make([]float64, len(specs))
		for i := range specs {
			if opts.Normalize {
				objectives[i] = sres.Norms[i]
			} else {
				objectives[i] = sres.Results[i].Seconds
			}
		}
		res.Rounds = append(res.Rounds, Round{
			Index: round, Scale: scale, Specs: specs, Objectives: objectives,
		})
		res.TotalRuns += len(specs)
		if scale == 1 {
			res.FullFidelityRuns += len(specs)
		}

		var next []sweep.Spec
		next, done = strat.Next(res.Rounds)
		cur := &res.Rounds[len(res.Rounds)-1]
		if !done {
			cur.Survivors = len(next)
			cur.Pruned = len(specs) - len(next)
			if cur.Pruned < 0 {
				cur.Pruned = 0
			}
		}
		opts.Metrics.roundDone(scale, time.Since(start), len(specs), cur.Pruned)
		if opts.OnEvent != nil {
			opts.OnEvent(sweep.Event{Kind: sweep.EventRoundFinished,
				Round: round, Rung: scale, Survivors: cur.Survivors, Pruned: cur.Pruned, Total: len(specs)})
		}
		specs = next
	}
	if len(res.Rounds) == 0 {
		return nil, fmt.Errorf("search: strategy %s planned no rounds", strat.Name())
	}
	final := res.Rounds[len(res.Rounds)-1]
	if final.Scale != 1 {
		return nil, fmt.Errorf("search: strategy %s ended on rung %g, not full fidelity", strat.Name(), final.Scale)
	}
	best := bestOf(final.Specs, final.Objectives)
	res.Best = final.Specs[best]
	res.BestObjective = final.Objectives[best]
	return res, nil
}

// rungOf reads a spec's fidelity rung, mapping the zero value onto full
// fidelity exactly like spec normalization does.
func rungOf(s sweep.Spec) float64 {
	if s.InstrScale == 0 {
		return 1
	}
	return s.InstrScale
}

// bestOf returns the index of the lowest objective; ties break toward
// the earliest index, which both strategies keep in candidate order —
// the determinism contract.
func bestOf(specs []sweep.Spec, objectives []float64) int {
	best := 0
	for i := 1; i < len(specs); i++ {
		if objectives[i] < objectives[best] {
			best = i
		}
	}
	return best
}

// Table renders the search deterministically: one row per round (rung,
// candidate count, pruned, round best and its objective) plus a final
// row naming the winner. Byte-identical tables across runs with the
// same seed are the regression oracle searches are held to.
func (r *Result) Table(caption string) *report.Table {
	t := report.NewTable(caption, "round", "rung", "candidates", "pruned", "best", "objective")
	for _, rd := range r.Rounds {
		best := bestOf(rd.Specs, rd.Objectives)
		t.AddRow(
			fmt.Sprintf("%d", rd.Index),
			fmt.Sprintf("%g", rd.Scale),
			fmt.Sprintf("%d", len(rd.Specs)),
			fmt.Sprintf("%d", rd.Pruned),
			rd.Specs[best].String(),
			report.FormatFloat(rd.Objectives[best]),
		)
	}
	t.AddRow("winner", "1", "", "", r.Best.String(), report.FormatFloat(r.BestObjective))
	return t
}
