package search

import (
	"fmt"
	"time"

	"dramtherm/internal/obs"
)

// Metrics are the adaptive-search instruments. A nil *Metrics is a
// no-op, so uninstrumented searches pay one nil check per round.
type Metrics struct {
	rounds   *obs.Counter
	pruned   *obs.Counter
	fullFid  *obs.Counter
	roundDur *obs.HistogramVec // by rung
}

// Instrument registers the search metric families on reg and returns
// the handle Options.Metrics takes. The counter families register at
// zero, so a scrape sees them before the first search runs (metriclint
// can require them on a freshly booted daemon). A nil reg returns nil.
func Instrument(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		rounds: reg.Counter("dramtherm_search_rounds_total",
			"Adaptive-search rounds executed (one multi-spec sweep each)."),
		pruned: reg.Counter("dramtherm_search_specs_pruned_total",
			"Candidates discarded by a search strategy before full fidelity."),
		fullFid: reg.Counter("dramtherm_search_full_fidelity_runs_total",
			"Search specs executed at full fidelity (InstrScale 1) — compare against the exhaustive grid size."),
		roundDur: reg.HistogramVec("dramtherm_search_round_seconds",
			"Wall-clock seconds per search round, by fidelity rung.",
			obs.DefBuckets, "rung"),
	}
}

// roundDone records one completed round of n specs.
func (m *Metrics) roundDone(rung float64, dur time.Duration, n, pruned int) {
	if m == nil {
		return
	}
	m.rounds.Inc()
	m.pruned.Add(float64(pruned))
	if rung == 1 {
		m.fullFid.Add(float64(n))
	}
	m.roundDur.WithLabelValues(fmt.Sprintf("%g", rung)).Observe(dur.Seconds())
}
