package search

import "dramtherm/internal/sweep"

// BoundPrune is bound-driven refinement in the inexact-cuts spirit: a
// candidate's low-fidelity objective f brackets its true objective in
// [f·(1−Slack), f·(1+Slack)]. After each cheap rung, the incumbent is
// the candidate with the lowest pessimistic bound, and every candidate
// whose optimistic bound exceeds it is pruned — it cannot win even if
// the cheap measurement flattered it by the full slack. Survivors climb
// the rung ladder; the final full-fidelity round is exact, so the
// winner is measured, not estimated.
//
// Unlike Halving, the survivor count is data-driven: a design space
// with one clear winner collapses after one cheap round, while a tight
// race keeps every contender alive all the way to full fidelity —
// bounds never discard a candidate that could still win under the
// stated slack.
type BoundPrune struct {
	// Candidates is the design space; InstrScale fields are overwritten
	// by the rung ladder.
	Candidates []sweep.Spec
	// Rungs is the ascending fidelity ladder (default DefaultRungs);
	// the final entry must be 1.
	Rungs []float64
	// Slack is the relative uncertainty assumed of sub-full-fidelity
	// objectives (default 0.1): smaller prunes harder, larger is safer
	// against fidelity bias.
	Slack float64
}

// Name implements Strategy.
func (b *BoundPrune) Name() string { return "bounds" }

// Next implements Strategy.
func (b *BoundPrune) Next(completed []Round) ([]sweep.Spec, bool) {
	rungs := b.rungs()
	r := len(completed)
	// A completed full-fidelity round ends the search — whether it was
	// the ladder's last rung or the early jump below.
	if len(b.Candidates) == 0 || r >= len(rungs) || (r > 0 && completed[r-1].Scale == 1) {
		return nil, true
	}
	if r == 0 {
		return atScale(b.Candidates, rungs[0]), false
	}
	last := completed[r-1]
	slack := b.slack()
	// Incumbent: lowest pessimistic bound (earliest index on ties).
	incumbent := last.Objectives[0] * (1 + slack)
	for _, f := range last.Objectives[1:] {
		if p := f * (1 + slack); p < incumbent {
			incumbent = p
		}
	}
	var survivors []sweep.Spec
	for i, s := range last.Specs {
		if last.Objectives[i]*(1-slack) <= incumbent {
			survivors = append(survivors, s)
		}
	}
	if len(survivors) == 1 && rungs[r] != 1 {
		// Decided early: confirm the sole survivor at full fidelity.
		return atScale(survivors, 1), false
	}
	return atScale(survivors, rungs[r]), false
}

func (b *BoundPrune) rungs() []float64 {
	if len(b.Rungs) == 0 {
		return DefaultRungs
	}
	return b.Rungs
}

func (b *BoundPrune) slack() float64 {
	if b.Slack <= 0 {
		return 0.1
	}
	return b.Slack
}
