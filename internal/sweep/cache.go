package sweep

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/maphash"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dramtherm/internal/obs"
)

// numShards keeps shard-lock contention negligible even when every
// GOMAXPROCS worker touches the cache at once.
const numShards = 16

// Cache is a sharded, singleflight-deduplicating build cache: Do returns
// the cached value for a key, joins an in-flight build of the same key,
// or becomes the leader that builds it. Leaders run on a worker pool
// bounded at construction, so any number of concurrent distinct keys
// degrade gracefully to pool-width parallelism. The value type only
// needs to be gob-encodable if Save/Load are used.
type Cache[V any] struct {
	shards [numShards]shard[V]
	seed   maphash.Seed
	sem    chan struct{}

	builds atomic.Int64 // builder invocations (unique work)
	hits   atomic.Int64 // completed-entry lookups
	waits  atomic.Int64 // joins of an in-flight build (deduplicated work)

	buildDur *obs.Histogram // leader build latency; nil until Instrument

	onInsert func(Key, V) // leader-insert hook; nil until OnInsert
}

type shard[V any] struct {
	mu      sync.Mutex
	done    map[Key]V
	flights map[Key]*flight[V]
}

// flight is one in-flight build; waiters block on done.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// NewCache returns a cache whose leaders run on a pool of the given
// width; workers <= 0 selects GOMAXPROCS.
func NewCache[V any](workers int) *Cache[V] {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	c := &Cache[V]{seed: maphash.MakeSeed(), sem: make(chan struct{}, workers)}
	for i := range c.shards {
		c.shards[i].done = make(map[Key]V)
		c.shards[i].flights = make(map[Key]*flight[V])
	}
	return c
}

// Workers returns the pool width.
func (c *Cache[V]) Workers() int { return cap(c.sem) }

func (c *Cache[V]) shardOf(key Key) *shard[V] {
	return &c.shards[maphash.String(c.seed, string(key))%numShards]
}

// Outcome reports how a Do call was served: by running the builder, by
// a completed cache entry, or by joining another caller's in-flight
// build.
type Outcome int

const (
	// Built: this caller was the leader and ran the builder itself.
	Built Outcome = iota
	// Hit: served from a completed cache entry, no work at all.
	Hit
	// Joined: deduplicated against another caller's in-flight build.
	Joined
)

// String renders the outcome for logs and wire events.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Joined:
		return "joined"
	default:
		return "built"
	}
}

// Do returns the value for key, building it at most once across all
// concurrent callers. The first caller for an absent key becomes the
// leader: it takes a pool slot, runs build, publishes the result and
// wakes the followers. Followers (and leaders waiting for a pool slot)
// abort when their own ctx is done. A failed build is not cached: the
// error reaches the leader and any follower whose own ctx is also done,
// while followers that are still live elect a new leader and rebuild —
// one client's disconnect never fails another client's identical
// request. A later Do after a failure retries from scratch.
func (c *Cache[V]) Do(ctx context.Context, key Key, build func(context.Context) (V, error)) (V, error) {
	v, _, err := c.DoTraced(ctx, key, build)
	return v, err
}

// DoTraced is Do plus the Outcome: whether this caller built the value,
// found it completed, or joined an in-flight build. A caller that joins
// a failing flight and then rebuilds reports Built — the outcome
// describes how the returned value was finally obtained.
func (c *Cache[V]) DoTraced(ctx context.Context, key Key, build func(context.Context) (V, error)) (V, Outcome, error) {
	var zero V
	sh := c.shardOf(key)
	for {
		sh.mu.Lock()
		if v, ok := sh.done[key]; ok {
			sh.mu.Unlock()
			c.hits.Add(1)
			return v, Hit, nil
		}
		if fl, ok := sh.flights[key]; ok {
			sh.mu.Unlock()
			c.waits.Add(1)
			select {
			case <-fl.done:
			case <-ctx.Done():
				return zero, Joined, ctx.Err()
			}
			if fl.err == nil {
				return fl.val, Joined, nil
			}
			// The leader failed. If we are still live, loop and take
			// (or share) leadership of a fresh build; the flight has
			// been cleared. Otherwise report our own cancellation.
			if err := ctx.Err(); err != nil {
				return zero, Joined, err
			}
			if errors.Is(fl.err, context.Canceled) || errors.Is(fl.err, context.DeadlineExceeded) {
				continue
			}
			return zero, Joined, fl.err
		}
		fl := &flight[V]{done: make(chan struct{})}
		sh.flights[key] = fl
		sh.mu.Unlock()

		// Leader path: bounded by the worker pool.
		select {
		case c.sem <- struct{}{}:
		case <-ctx.Done():
			c.abort(sh, key, fl, ctx.Err())
			return zero, Built, ctx.Err()
		}
		c.builds.Add(1)
		var t0 time.Time
		if c.buildDur != nil {
			t0 = time.Now()
		}
		v, err := build(ctx)
		if c.buildDur != nil {
			c.buildDur.Observe(time.Since(t0).Seconds())
		}
		<-c.sem

		if err != nil {
			c.abort(sh, key, fl, err)
			return zero, Built, err
		}
		fl.val = v
		sh.mu.Lock()
		sh.done[key] = v
		delete(sh.flights, key)
		sh.mu.Unlock()
		close(fl.done)
		if c.onInsert != nil {
			c.onInsert(key, v)
		}
		return v, Built, nil
	}
}

// abort publishes a failure to followers and clears the flight so a
// later Do can retry.
func (c *Cache[V]) abort(sh *shard[V], key Key, fl *flight[V], err error) {
	fl.err = err
	sh.mu.Lock()
	delete(sh.flights, key)
	sh.mu.Unlock()
	close(fl.done)
}

// Get returns the completed value for key without building.
func (c *Cache[V]) Get(key Key) (V, bool) {
	sh := c.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	v, ok := sh.done[key]
	return v, ok
}

// Put inserts a completed value directly (used by Load and tests).
func (c *Cache[V]) Put(key Key, v V) {
	sh := c.shardOf(key)
	sh.mu.Lock()
	sh.done[key] = v
	sh.mu.Unlock()
}

// OnInsert registers fn to run after every leader-path insert — a value
// newly built by Do, not entries restored via Put/Load (so replaying a
// persisted log does not re-persist every record). fn runs outside the
// shard lock on the leader's goroutine; it must not call back into the
// cache for the same key. Call before the cache is in use; not
// synchronized with concurrent Do.
func (c *Cache[V]) OnInsert(fn func(Key, V)) { c.onInsert = fn }

// Range calls fn for every completed entry until fn returns false. Each
// shard is snapshotted under its lock, so fn itself runs lock-free and
// may touch the cache; entries inserted mid-iteration may or may not be
// seen.
func (c *Cache[V]) Range(fn func(Key, V) bool) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		snap := make(map[Key]V, len(sh.done))
		for k, v := range sh.done {
			snap[k] = v
		}
		sh.mu.Unlock()
		for k, v := range snap {
			if !fn(k, v) {
				return
			}
		}
	}
}

// Len returns the number of completed entries.
func (c *Cache[V]) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += len(c.shards[i].done)
		c.shards[i].mu.Unlock()
	}
	return n
}

// Stats summarizes cache traffic.
type Stats struct {
	// Builds counts builder invocations — the unique simulations run.
	Builds int64 `json:"builds"`
	// Hits counts lookups served from a completed entry.
	Hits int64 `json:"hits"`
	// Waits counts lookups that joined an in-flight build — requests a
	// singleflight saved from duplicate simulation.
	Waits int64 `json:"waits"`
	// Entries is the completed-entry count.
	Entries int `json:"entries"`
}

// Stats returns a snapshot of the counters.
func (c *Cache[V]) Stats() Stats {
	return Stats{
		Builds:  c.builds.Load(),
		Hits:    c.hits.Load(),
		Waits:   c.waits.Load(),
		Entries: c.Len(),
	}
}

// Save writes all completed entries to w with gob.
func (c *Cache[V]) Save(w io.Writer) error {
	out := make(map[Key]V)
	for i := range c.shards {
		c.shards[i].mu.Lock()
		for k, v := range c.shards[i].done {
			out[k] = v
		}
		c.shards[i].mu.Unlock()
	}
	return gob.NewEncoder(w).Encode(out)
}

// Load reads entries written by Save and inserts them.
func (c *Cache[V]) Load(r io.Reader) error {
	var in map[Key]V
	if err := gob.NewDecoder(r).Decode(&in); err != nil {
		return fmt.Errorf("sweep: cache load: %w", err)
	}
	for k, v := range in {
		c.Put(k, v)
	}
	return nil
}
