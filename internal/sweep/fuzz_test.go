package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"
	"unicode/utf8"

	"dramtherm/internal/fbconfig"
)

// FuzzSpecKey asserts the two identities the whole cluster leans on:
// the canonical cache key survives a round trip through the /v1/exec
// JSON codec (what a coordinator sends is what a worker keys), and it
// is invariant under JSON field permutation (two clients serializing
// the same spec in different field orders shard to the same ring
// owner). A key that drifted across the wire would split the run cache
// and misroute consistent-hash shards.
func FuzzSpecKey(f *testing.F) {
	f.Add("W1", "DTM-TS", "AOHS_1.5", "isolated", 0.0, 0.0, 0.0)
	f.Add("W2", "", "", "", 0.35, 2.0, 103.5)
	f.Add("W12", "No-limit", "AOHS_2.0", "integrated", -1.5, 1e300, 85.0)
	f.Add("", "", "", "", math.Inf(1), -0.0, 5e-324)
	f.Add("mix|with|separators", "p=q", "c,d", "m\"n", 1.0, 2.0, 3.0)
	f.Add("Ω-mix", "污", "\n\t", "\\", 0.1, 0.2, 0.3)
	f.Fuzz(func(t *testing.T, mix, policy, cooling, model string, psiXi, interval, ambtdp float64) {
		// JSON cannot carry NaN, and replaces invalid UTF-8 with
		// U+FFFD at encode time; normalize the inputs the same way so
		// the round trip is comparable.
		if math.IsNaN(psiXi) || math.IsNaN(interval) || math.IsNaN(ambtdp) {
			t.Skip("NaN is not encodable as JSON")
		}
		valid := func(s string) string { return strings.ToValidUTF8(s, string(utf8.RuneError)) }
		spec := Spec{
			Mix:      valid(mix),
			Policy:   valid(policy),
			Cooling:  valid(cooling),
			Model:    valid(model),
			PsiXi:    psiXi,
			Interval: interval,
			Limits:   fbconfig.ThermalLimits{AMBTDP: ambtdp, DRAMTDP: ambtdp, AMBTRP: ambtdp, DRAMTRP: ambtdp},
		}
		const digest = "fuzz-digest"
		key := spec.Key(digest)

		// Round trip through the /v1/exec codec: marshal as the
		// coordinator does, decode as the worker does.
		body, err := json.Marshal(spec)
		if err != nil {
			t.Skipf("unencodable spec: %v", err)
		}
		var decoded Spec
		if err := json.NewDecoder(bytes.NewReader(body)).Decode(&decoded); err != nil {
			t.Fatalf("spec %+v does not survive its own codec: %v", spec, err)
		}
		if got := decoded.Key(digest); got != key {
			t.Fatalf("key drifted across the exec codec:\nspec    %+v\nbefore  %s\nafter   %s", spec, key, got)
		}

		// Field permutation: rebuild the same JSON object with its
		// fields in reverse order; the decoded key must not care.
		var fields map[string]json.RawMessage
		if err := json.Unmarshal(body, &fields); err != nil {
			t.Fatalf("re-parsing own marshal output: %v", err)
		}
		names := make([]string, 0, len(fields))
		for name := range fields {
			names = append(names, name)
		}
		// Reverse of Go's map-iteration order is already adversarial,
		// but make it deterministic: sort descending.
		for i := 0; i < len(names); i++ {
			for j := i + 1; j < len(names); j++ {
				if names[j] > names[i] {
					names[i], names[j] = names[j], names[i]
				}
			}
		}
		var permuted bytes.Buffer
		permuted.WriteByte('{')
		for i, name := range names {
			if i > 0 {
				permuted.WriteByte(',')
			}
			fmt.Fprintf(&permuted, "%q:%s", name, fields[name])
		}
		permuted.WriteByte('}')
		var reordered Spec
		if err := json.Unmarshal(permuted.Bytes(), &reordered); err != nil {
			t.Fatalf("permuted body %s does not decode: %v", permuted.Bytes(), err)
		}
		if got := reordered.Key(digest); got != key {
			t.Fatalf("key depends on JSON field order:\noriginal %s\npermuted %s\nbody %s", key, got, permuted.Bytes())
		}

		// The key must also be insensitive to explicit defaults: a
		// spec with defaults filled in and one with them zeroed are
		// the same run.
		if got := spec.normalize().Key(digest); got != key {
			t.Fatalf("normalized spec keys differently:\nzeroed     %s\nnormalized %s", key, got)
		}
	})
}
