package sweep

import (
	"dramtherm/internal/obs"
)

// Instrument registers the cache's metric families on reg: lookup
// outcomes, completed entries, worker-pool saturation, and the leader
// build-latency histogram. The counter and gauge families read the
// cache's own atomics and pool channel, so /metrics and Stats report
// identical numbers by construction. Like SetRunFunc, Instrument must
// be called before the cache is shared across goroutines; a nil reg is
// a no-op (the uninstrumented hot path pays one nil check).
func (c *Cache[V]) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	c.buildDur = reg.Histogram("dramtherm_cache_build_seconds",
		"Wall-clock seconds per leader build (one unique simulation each).",
		obs.DefBuckets)
	reg.SampleFunc(obs.KindCounter, "dramtherm_cache_requests_total",
		"Cache lookups by outcome: built (leader ran the builder), hit (completed entry), joined (deduplicated against an in-flight build).",
		[]string{"outcome"}, func() []obs.Sample {
			return []obs.Sample{
				{LabelValues: []string{"built"}, Value: float64(c.builds.Load())},
				{LabelValues: []string{"hit"}, Value: float64(c.hits.Load())},
				{LabelValues: []string{"joined"}, Value: float64(c.waits.Load())},
			}
		})
	reg.GaugeFunc("dramtherm_cache_entries",
		"Completed run-cache entries.",
		func() float64 { return float64(c.Len()) })
	reg.GaugeFunc("dramtherm_pool_workers",
		"Simulation worker-pool width.",
		func() float64 { return float64(cap(c.sem)) })
	reg.GaugeFunc("dramtherm_pool_busy",
		"Worker-pool slots currently held by leader builds.",
		func() float64 { return float64(len(c.sem)) })
}

// Instrument registers the engine's run-cache metrics on reg, plus the
// prefix-sharing families when EnablePrefixSharing has been called. It
// must be called before the engine is shared across goroutines.
func (e *Engine) Instrument(reg *obs.Registry) {
	e.cache.Instrument(reg)
	if e.prefix != nil {
		e.prefix.Instrument(reg)
	}
}

// Instrument registers the job registry's metric families on reg: jobs
// by status (gauge, counted under the registry lock so it matches List)
// and evictions by reason (ttl, capacity, cancel). Call it once, before
// the registry is shared.
func (r *Jobs) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	r.evictions = reg.CounterVec("dramtherm_jobs_evictions_total",
		"Jobs evicted from the registry, by reason: ttl (reaper), capacity (oldest finished dropped for a new job), cancel (client deleted a finished job).",
		"reason")
	reg.SampleFunc(obs.KindGauge, "dramtherm_jobs",
		"Registered jobs by status.",
		[]string{"status"}, func() []obs.Sample {
			counts := map[JobStatus]int{}
			r.mu.Lock()
			for _, j := range r.jobs {
				counts[j.status]++
			}
			r.mu.Unlock()
			out := make([]obs.Sample, 0, 4)
			for _, s := range []JobStatus{JobRunning, JobDone, JobError, JobCancelled} {
				out = append(out, obs.Sample{LabelValues: []string{string(s)}, Value: float64(counts[s])})
			}
			return out
		})
}
