package sweep

import (
	"encoding/json"
	"testing"

	"dramtherm/internal/fbconfig"
)

func TestSpecKeyCanonicalization(t *testing.T) {
	// Defaulted and explicit forms of the same run share a key.
	a := Spec{Mix: "W1"}.Key("d1")
	b := Spec{Mix: "W1", Policy: "No-limit", Cooling: "AOHS_1.5", Model: "isolated"}.Key("d1")
	if a != b {
		t.Fatalf("equivalent specs differ:\n%s\n%s", a, b)
	}
	// Any distinguishing field separates keys.
	distinct := []Spec{
		{Mix: "W2"},
		{Mix: "W1", Policy: "DTM-TS"},
		{Mix: "W1", Cooling: "FDHS_1.0"},
		{Mix: "W1", Model: "integrated"},
		{Mix: "W1", PsiXi: 2},
		{Mix: "W1", Interval: 0.02},
		{Mix: "W1", Limits: fbconfig.ThermalLimits{AMBTDP: 100, DRAMTDP: 80, AMBTRP: 99, DRAMTRP: 79}},
	}
	seen := map[Key]bool{a: true}
	for _, s := range distinct {
		k := s.Key("d1")
		if seen[k] {
			t.Errorf("spec %v collides", s)
		}
		seen[k] = true
	}
	// The config digest scopes keys.
	if (Spec{Mix: "W1"}).Key("d2") == a {
		t.Fatal("digest not part of key")
	}
}

func TestSpecString(t *testing.T) {
	s := Spec{Mix: "W1", Policy: "DTM-TS", PsiXi: 1.5, Interval: 0.02,
		Limits: fbconfig.ThermalLimits{AMBTDP: 100, DRAMTDP: 80}}
	got := s.String()
	for _, want := range []string{"W1", "DTM-TS", "psixi=1.5", "iv=0.02", "lim=100,80"} {
		if !contains(got, want) {
			t.Errorf("String() = %q missing %q", got, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestGridExpand(t *testing.T) {
	g := Grid{
		Mixes:    []string{"W1", "W2"},
		Policies: []string{"No-limit", "DTM-TS", "DTM-BW"},
		Coolings: []string{"AOHS_1.5", "FDHS_1.0"},
	}
	specs := g.Expand()
	if len(specs) != 2*3*2 {
		t.Fatalf("expanded %d specs, want 12", len(specs))
	}
	// Deterministic order: mixes slowest.
	if specs[0].Mix != "W1" || specs[len(specs)-1].Mix != "W2" {
		t.Fatalf("order wrong: %v ... %v", specs[0], specs[len(specs)-1])
	}
	// Empty dimensions default to one zero entry.
	if n := len(Grid{Mixes: []string{"W1"}}.Expand()); n != 1 {
		t.Fatalf("minimal grid expanded to %d", n)
	}
	if len(Grid{}.Expand()) != 0 {
		t.Fatal("empty grid expanded to something")
	}
	// Every spec key is unique.
	seen := map[Key]bool{}
	for _, s := range specs {
		k := s.Key("d")
		if seen[k] {
			t.Fatalf("duplicate key %s", k)
		}
		seen[k] = true
	}
}

func TestAllMixes(t *testing.T) {
	ms := AllMixes()
	if len(ms) != 10 || ms[0] != "W1" {
		t.Fatalf("AllMixes = %v", ms)
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	in := Spec{Mix: "W3", Policy: "DTM-ACG", Cooling: "FDHS_1.0", Model: "integrated", PsiXi: 2}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Spec
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}
