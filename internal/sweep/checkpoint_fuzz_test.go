package sweep

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dramtherm/internal/dtm"
	"dramtherm/internal/sim"
	"dramtherm/internal/sweep/prefix"
)

// seedGroupRecord is a small valid record: three neutral decisions with
// two zero-state checkpoints, digests computed the real way.
func seedGroupRecord() prefix.GroupRecord {
	var st sim.MEMSpotState
	neutral := dtm.Action{BWCapGBps: dtm.NoCap(), ActiveCores: 4}
	rec := prefix.GroupRecord{
		Key: "seedcfg|W1|*||isolated",
		Decisions: []prefix.DecisionRecord{
			{In: dtm.Input{AMB: 100.5, DRAM: 74, Now: 0.01, Dt: 0.01}, Act: neutral},
			{In: dtm.Input{AMB: 100.6, DRAM: 74.1, Now: 0.02, Dt: 0.01}, Act: neutral},
			{In: dtm.Input{AMB: 100.7, DRAM: 74.2, Now: 0.03, Dt: 0.01}, Act: neutral},
		},
		Checkpoints: []prefix.CheckpointRecord{
			{Decision: 1, StateDigest: st.Digest(), State: st},
			{Decision: 2, StateDigest: st.Digest(), State: st},
		},
	}
	rec.TraceDigest = prefix.TraceDigest(rec.Key, rec.Decisions)
	return rec
}

// FuzzCheckpointDecode: arbitrary bytes must never panic the checkpoint
// decoder, anything it accepts must survive an encode/decode round trip
// unchanged, and an accepted record framed into a segment log must
// replay byte-identically. Torn and corrupt frames are exercised by
// mangling the accepted encoding.
func FuzzCheckpointDecode(f *testing.F) {
	valid, err := encodeCheckpointRecord(seedGroupRecord())
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, payload []byte) {
		rec, err := decodeCheckpointRecord(payload)
		if err != nil {
			return // rejected without panicking: the contract for garbage
		}
		enc, err := encodeCheckpointRecord(rec)
		if err != nil {
			t.Fatalf("accepted record does not re-encode: %v", err)
		}
		rec2, err := decodeCheckpointRecord(enc)
		if err != nil {
			t.Fatalf("re-encoded record does not decode: %v", err)
		}
		if !reflect.DeepEqual(rec, rec2) {
			t.Fatal("record changed across encode/decode round trip")
		}

		// Through the segment log and back.
		dir := t.TempDir()
		l, err := OpenSegmentLog(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Append(recordCheckpoint, enc); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		reopened, err := OpenSegmentLog(dir)
		if err != nil {
			t.Fatalf("reopening log with checkpoint frame: %v", err)
		}
		defer reopened.Close()
		var got [][]byte
		if err := reopened.Replay(func(kind byte, p []byte) error {
			if kind == recordCheckpoint {
				got = append(got, append([]byte(nil), p...))
			}
			return nil
		}); err != nil {
			t.Fatalf("replay: %v", err)
		}
		if len(got) != 1 || !bytes.Equal(got[0], enc) {
			t.Fatalf("checkpoint frame did not replay byte-identically (%d frames)", len(got))
		}
	})
}

// TestSegmentLogDropsMangledCheckpointFrames: a torn tail or a flipped
// payload byte must cost exactly the damaged frame — replay keeps every
// frame before it, reports no error, and does not panic.
func TestSegmentLogDropsMangledCheckpointFrames(t *testing.T) {
	valid, err := encodeCheckpointRecord(seedGroupRecord())
	if err != nil {
		t.Fatal(err)
	}
	write := func(t *testing.T, dir string) string {
		l, err := OpenSegmentLog(dir)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			if err := l.Append(recordCheckpoint, valid); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		seg, err := filepath.Glob(filepath.Join(dir, "*"))
		if err != nil || len(seg) == 0 {
			t.Fatalf("no segment files: %v", err)
		}
		return seg[0]
	}
	replayed := func(t *testing.T, dir string) int {
		l, err := OpenSegmentLog(dir)
		if err != nil {
			t.Fatalf("mangled log failed to open: %v", err)
		}
		defer l.Close()
		n := 0
		if err := l.Replay(func(kind byte, p []byte) error {
			if kind == recordCheckpoint {
				n++
			}
			return nil
		}); err != nil {
			t.Fatalf("mangled log failed to replay: %v", err)
		}
		return n
	}

	t.Run("torn tail", func(t *testing.T) {
		dir := t.TempDir()
		seg := write(t, dir)
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(seg, fi.Size()-int64(len(valid)/2)); err != nil {
			t.Fatal(err)
		}
		if n := replayed(t, dir); n != 1 {
			t.Fatalf("replayed %d checkpoint frames after tear, want 1", n)
		}
	})
	t.Run("flipped payload byte", func(t *testing.T) {
		dir := t.TempDir()
		seg := write(t, dir)
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		// Flip a byte inside the second frame's payload: the CRC catches it.
		data[len(data)-len(valid)/2] ^= 0xff
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if n := replayed(t, dir); n != 1 {
			t.Fatalf("replayed %d checkpoint frames after corruption, want 1", n)
		}
	})
}
