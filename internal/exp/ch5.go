// Chapter 5 figures: the measurement-style study on the emulated PE1950
// and SR1500AL testbeds.

package exp

import (
	"fmt"

	"dramtherm/internal/platform"
	"dramtherm/internal/report"
	"dramtherm/internal/stats"
	"dramtherm/internal/workload"
)

func init() {
	register("fig5.4", "AMB temperature, first 500s, homogeneous workloads (SR1500AL)", fig54)
	register("fig5.5", "Average AMB temperature per benchmark, no DTM (PE1950)", fig55)
	register("fig5.6", "Normalized running time of SPEC CPU2000 workloads", fig56)
	register("fig5.7", "Normalized running time of SPEC CPU2006 workloads (PE1950)", fig57)
	register("fig5.8", "Normalized number of L2 cache misses", fig58)
	register("fig5.9", "Measured memory inlet temperature (SR1500AL)", fig59)
	register("fig5.10", "CPU power consumption (SR1500AL)", fig510)
	register("fig5.11", "Normalized CPU+DRAM energy (SR1500AL)", fig511)
	register("fig5.12", "Normalized running time at 26C ambient (SR1500AL)", fig512)
	register("fig5.13", "DTM-ACG vs DTM-BW at 3.0/2.0 GHz (SR1500AL)", fig513)
	register("fig5.14", "Normalized running time vs AMB TDP (PE1950)", fig514)
	register("fig5.15", "Runtime and L2 misses vs scheduling quantum (PE1950)", fig515)
}

// homogeneous returns a 4-copy mix of one program.
func homogeneous(name string) workload.Mix {
	return workload.Mix{Name: name + "x4", Apps: []string{name, name, name, name}}
}

// ch5Policies is the Fig. 5.6+ policy list.
var ch5Policies = []platform.PolicyKind{platform.BW, platform.ACG, platform.CDVFS, platform.COMB}

func fig54(r *Runner) (Result, error) {
	out := Result{ID: "fig5.4"}
	apps := []string{"swim", "mgrid", "galgel", "apsi", "vpr"}
	if r.Quick {
		apps = apps[:2]
	}
	fig := report.NewFigure("Fig 5.4: AMB temperature, first 500 s (SR1500AL, no DTM below safety cap)",
		"time (s)", "AMB temperature (C)")
	for _, a := range apps {
		res, err := r.pfRun(platform.RunConfig{
			Machine: r.sr, Policy: platform.NoLimit, Mix: homogeneous(a),
			RunsPerApp: 5, MaxSeconds: 3000,
		})
		if err != nil {
			return out, err
		}
		tr := res.AMBTrace
		if len(tr) > 500 {
			tr = tr[:500]
		}
		fig.Add(a, tr)
	}
	out.Figures = append(out.Figures, fig)
	return out, nil
}

func fig55(r *Runner) (Result, error) {
	out := Result{ID: "fig5.5"}
	progs := workload.Suite2000()
	if r.Quick {
		progs = progs[:6]
	}
	t := report.NewTable("Fig 5.5: average AMB temperature, homogeneous workloads on PE1950 (no DTM)",
		"benchmark", "avg AMB (C)", "max AMB (C)")
	var names []string
	var avgs []float64
	for _, p := range progs {
		res, err := r.pfRun(platform.RunConfig{
			Machine: r.pe, Policy: platform.NoLimit, Mix: homogeneous(p.Name),
			RunsPerApp: 1, MaxSeconds: 5000,
		})
		if err != nil {
			return out, err
		}
		// The paper excludes the top 0.5% of samples to remove sensor
		// spikes (§5.4.1).
		trimmed := stats.TrimTop(res.AMBTrace, 0.005)
		avg := stats.Mean(trimmed)
		t.AddRowf(p.Name, avg, res.MaxAMB)
		names = append(names, p.Name)
		avgs = append(avgs, avg)
	}
	fig := report.NewFigure("Fig 5.5 (chart)", "benchmark index", "avg AMB (C)")
	fig.Add("avg AMB", avgs)
	out.Tables = append(out.Tables, t)
	out.Figures = append(out.Figures, fig)
	_ = names
	return out, nil
}

// pfNormSeries runs mixes × policies on machine m and returns normalized
// runtimes plus the raw results for derived figures.
func (r *Runner) pfNormSeries(m platform.Machine, mixes []workload.Mix, variant func(*platform.RunConfig)) (map[platform.PolicyKind][]float64, map[string]platform.RunResult, error) {
	norm := make(map[platform.PolicyKind][]float64)
	raw := make(map[string]platform.RunResult)
	for _, mix := range mixes {
		baseCfg := platform.RunConfig{Machine: m, Policy: platform.NoLimit, Mix: mix}
		if variant != nil {
			variant(&baseCfg)
		}
		base, err := r.pfRun(baseCfg)
		if err != nil {
			return nil, nil, err
		}
		raw[mix.Name+"/No-limit"] = base
		for _, k := range ch5Policies {
			cfg := platform.RunConfig{Machine: m, Policy: k, Mix: mix}
			if variant != nil {
				variant(&cfg)
			}
			res, err := r.pfRun(cfg)
			if err != nil {
				return nil, nil, err
			}
			raw[mix.Name+"/"+k.String()] = res
			norm[k] = append(norm[k], res.Seconds/base.Seconds)
		}
	}
	return norm, raw, nil
}

func ch5Mixes2000(r *Runner) []workload.Mix {
	ms := workload.Chapter4Mixes()
	if r.Quick {
		return ms[:2]
	}
	return ms
}

func fig56(r *Runner) (Result, error) {
	out := Result{ID: "fig5.6"}
	for _, m := range []platform.Machine{r.pe, r.sr} {
		norm, _, err := r.pfNormSeries(m, ch5Mixes2000(r), nil)
		if err != nil {
			return out, err
		}
		fig := report.NewFigure(fmt.Sprintf("Fig 5.6 (%s): normalized running time, SPEC CPU2000", m.Name),
			"workload", "runtime / No-limit")
		for _, k := range ch5Policies {
			ys := norm[k]
			ys = append(ys, stats.Mean(ys))
			fig.Add(k.String(), ys)
		}
		out.Figures = append(out.Figures, fig)
	}
	return out, nil
}

func fig57(r *Runner) (Result, error) {
	out := Result{ID: "fig5.7"}
	mixes := []workload.Mix{}
	for _, n := range []string{"W11", "W12"} {
		m, err := workload.MixByName(n)
		if err != nil {
			return out, err
		}
		mixes = append(mixes, m)
	}
	norm, _, err := r.pfNormSeries(r.pe, mixes, func(c *platform.RunConfig) {
		c.RunsPerApp = 1 // CPU2006 runs are long; the paper uses 5
		if !r.Quick {
			c.RunsPerApp = 2
		}
	})
	if err != nil {
		return out, err
	}
	fig := report.NewFigure("Fig 5.7 (PE1950): normalized running time, SPEC CPU2006",
		"workload", "runtime / No-limit")
	for _, k := range ch5Policies {
		fig.Add(k.String(), norm[k])
	}
	out.Figures = append(out.Figures, fig)
	return out, nil
}

func fig58(r *Runner) (Result, error) {
	out := Result{ID: "fig5.8"}
	for _, m := range []platform.Machine{r.pe, r.sr} {
		_, raw, err := r.pfNormSeries(m, ch5Mixes2000(r), nil)
		if err != nil {
			return out, err
		}
		fig := report.NewFigure(fmt.Sprintf("Fig 5.8 (%s): normalized L2 cache misses", m.Name),
			"workload", "L2 misses / No-limit")
		for _, k := range ch5Policies {
			var ys []float64
			for _, mix := range ch5Mixes2000(r) {
				base := raw[mix.Name+"/No-limit"]
				res := raw[mix.Name+"/"+k.String()]
				ys = append(ys, res.L2Misses/base.L2Misses)
			}
			ys = append(ys, stats.Mean(ys))
			fig.Add(k.String(), ys)
		}
		out.Figures = append(out.Figures, fig)
	}
	return out, nil
}

func fig59(r *Runner) (Result, error) {
	out := Result{ID: "fig5.9"}
	_, raw, err := r.pfNormSeries(r.sr, ch5Mixes2000(r), nil)
	if err != nil {
		return out, err
	}
	fig := report.NewFigure("Fig 5.9 (SR1500AL): measured memory inlet temperature",
		"workload", "inlet (C)")
	for _, k := range ch5Policies {
		var ys []float64
		for _, mix := range ch5Mixes2000(r) {
			ys = append(ys, raw[mix.Name+"/"+k.String()].AvgInletC)
		}
		ys = append(ys, stats.Mean(ys))
		fig.Add(k.String(), ys)
	}
	out.Figures = append(out.Figures, fig)
	return out, nil
}

func fig510(r *Runner) (Result, error) {
	out := Result{ID: "fig5.10"}
	_, raw, err := r.pfNormSeries(r.sr, ch5Mixes2000(r), nil)
	if err != nil {
		return out, err
	}
	fig := report.NewFigure("Fig 5.10 (SR1500AL): CPU power, normalized to DTM-BW",
		"workload", "power / DTM-BW")
	for _, k := range ch5Policies {
		var ys []float64
		for _, mix := range ch5Mixes2000(r) {
			bw := raw[mix.Name+"/DTM-BW"]
			ys = append(ys, raw[mix.Name+"/"+k.String()].AvgCPUWatt/bw.AvgCPUWatt)
		}
		ys = append(ys, stats.Mean(ys))
		fig.Add(k.String(), ys)
	}
	out.Figures = append(out.Figures, fig)
	return out, nil
}

func fig511(r *Runner) (Result, error) {
	out := Result{ID: "fig5.11"}
	_, raw, err := r.pfNormSeries(r.sr, ch5Mixes2000(r), nil)
	if err != nil {
		return out, err
	}
	fig := report.NewFigure("Fig 5.11 (SR1500AL): CPU+DRAM energy, normalized to DTM-BW",
		"workload", "energy / DTM-BW")
	for _, k := range ch5Policies {
		var ys []float64
		for _, mix := range ch5Mixes2000(r) {
			bw := raw[mix.Name+"/DTM-BW"]
			ys = append(ys, raw[mix.Name+"/"+k.String()].TotalEnergyJ()/bw.TotalEnergyJ())
		}
		ys = append(ys, stats.Mean(ys))
		fig.Add(k.String(), ys)
	}
	out.Figures = append(out.Figures, fig)
	return out, nil
}

func fig512(r *Runner) (Result, error) {
	out := Result{ID: "fig5.12"}
	norm, _, err := r.pfNormSeries(r.sr, ch5Mixes2000(r), func(c *platform.RunConfig) {
		c.AmbientOverride = 26
		c.TDPOverride = 90
	})
	if err != nil {
		return out, err
	}
	fig := report.NewFigure("Fig 5.12 (SR1500AL): normalized runtime at 26C ambient, TDP 90C",
		"workload", "runtime / No-limit")
	for _, k := range ch5Policies {
		ys := norm[k]
		ys = append(ys, stats.Mean(ys))
		fig.Add(k.String(), ys)
	}
	out.Figures = append(out.Figures, fig)
	return out, nil
}

func fig513(r *Runner) (Result, error) {
	out := Result{ID: "fig5.13"}
	fig := report.NewFigure("Fig 5.13 (SR1500AL): DTM-ACG vs DTM-BW at 3.0 and 2.0 GHz",
		"workload", "runtime / No-limit(3GHz)")
	for _, v := range []struct {
		label string
		force int
	}{{"3.0GHz", -1}, {"2.0GHz", 3}} {
		for _, k := range []platform.PolicyKind{platform.BW, platform.ACG} {
			var ys []float64
			for _, mix := range ch5Mixes2000(r) {
				base, err := r.pfRun(platform.RunConfig{Machine: r.sr, Policy: platform.NoLimit, Mix: mix})
				if err != nil {
					return out, err
				}
				res, err := r.pfRun(platform.RunConfig{
					Machine: r.sr, Policy: k, Mix: mix, ForceFreqIdx: v.force,
				})
				if err != nil {
					return out, err
				}
				ys = append(ys, res.Seconds/base.Seconds)
			}
			ys = append(ys, stats.Mean(ys))
			fig.Add(k.String()+"@"+v.label, ys)
		}
	}
	out.Figures = append(out.Figures, fig)
	return out, nil
}

func fig514(r *Runner) (Result, error) {
	out := Result{ID: "fig5.14"}
	tdps := []float64{88, 90, 92}
	fig := report.NewFigure("Fig 5.14 (PE1950): avg normalized runtime vs AMB TDP",
		"AMB TDP (C)", "runtime / No-limit")
	for _, k := range ch5Policies {
		var ys []float64
		for _, tdp := range tdps {
			var ns []float64
			for _, mix := range ch5Mixes2000(r) {
				base, err := r.pfRun(platform.RunConfig{Machine: r.pe, Policy: platform.NoLimit, Mix: mix})
				if err != nil {
					return out, err
				}
				res, err := r.pfRun(platform.RunConfig{
					Machine: r.pe, Policy: k, Mix: mix, TDPOverride: tdp,
				})
				if err != nil {
					return out, err
				}
				ns = append(ns, res.Seconds/base.Seconds)
			}
			ys = append(ys, stats.Mean(ns))
		}
		fig.AddXY(k.String(), tdps, ys)
	}
	out.Figures = append(out.Figures, fig)
	return out, nil
}

func fig515(r *Runner) (Result, error) {
	out := Result{ID: "fig5.15"}
	quanta := []float64{0.005, 0.01, 0.02, 0.05, 0.1}
	figT := report.NewFigure("Fig 5.15 (PE1950): avg runtime vs scheduling quantum (DTM-ACG)",
		"quantum (ms)", "runtime / 100ms quantum")
	figM := report.NewFigure("Fig 5.15 (PE1950): avg L2 misses vs scheduling quantum (DTM-ACG)",
		"quantum (ms)", "L2 misses / 100ms quantum")
	var rt, ms []float64
	for _, q := range quanta {
		var sumT, sumM float64
		for _, mix := range ch5Mixes2000(r) {
			res, err := r.pfRun(platform.RunConfig{
				Machine: r.pe, Policy: platform.ACG, Mix: mix, QuantumS: q,
			})
			if err != nil {
				return out, err
			}
			sumT += res.Seconds
			sumM += res.L2Misses
		}
		rt = append(rt, sumT)
		ms = append(ms, sumM)
	}
	refT, refM := rt[len(rt)-1], ms[len(ms)-1]
	for i := range rt {
		rt[i] /= refT
		ms[i] /= refM
	}
	x := []float64{5, 10, 20, 50, 100}
	figT.AddXY("running time", x, rt)
	figM.AddXY("L2 misses", x, ms)
	out.Figures = append(out.Figures, figT, figM)
	return out, nil
}
