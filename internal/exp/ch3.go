// Chapter 3 artifacts: the model parameter tables. These are inputs, but
// regenerating them verifies the constants compiled into the library
// against the paper.

package exp

import (
	"fmt"

	"dramtherm/internal/fbconfig"
	"dramtherm/internal/report"
)

func init() {
	register("table3.1", "AMB power model parameters (Eq. 3.2)", table31)
	register("table3.2", "Thermal model parameters for AMB and DRAM", table32)
	register("table3.3", "DRAM ambient temperature model parameters", table33)
	register("table4.1", "Level-1 simulator parameters", table41)
	register("table4.3", "Thermal emergency levels and default settings", table43)
	register("table4.4", "Processor power consumption of DTM schemes", table44)
	register("table5.1", "Chapter 5 thermal emergency levels and running states", table51)
}

func table31(*Runner) (Result, error) {
	ap := fbconfig.DefaultAMBPower
	dp := fbconfig.DefaultDRAMPower
	t := report.NewTable("Table 3.1: AMB power parameters (FBDIMM, 1GB DDR2-667x8, 110nm)", "Parameter", "Value")
	t.AddRow("P_AMB_idle (last DIMM)", fmt.Sprintf("%.1f watt", ap.IdleLast))
	t.AddRow("P_AMB_idle (other DIMMs)", fmt.Sprintf("%.1f watt", ap.IdleOther))
	t.AddRow("beta (bypass)", fmt.Sprintf("%.2f watt/(GB/s)", ap.BypassCoef))
	t.AddRow("gamma (local)", fmt.Sprintf("%.2f watt/(GB/s)", ap.LocalCoef))
	t2 := report.NewTable("DRAM power parameters (Eq. 3.1)", "Parameter", "Value")
	t2.AddRow("P_DRAM_static", fmt.Sprintf("%.2f watt", dp.Static))
	t2.AddRow("alpha1 (read)", fmt.Sprintf("%.2f watt/(GB/s)", dp.ReadCoef))
	t2.AddRow("alpha2 (write)", fmt.Sprintf("%.2f watt/(GB/s)", dp.WriteCoef))
	return Result{ID: "table3.1", Tables: []*report.Table{t, t2}}, nil
}

func table32(*Runner) (Result, error) {
	t := report.NewTable("Table 3.2: thermal model parameters (bold columns used in experiments: AOHS 1.5, FDHS 1.0)",
		"Config", "Psi_AMB", "Psi_DRAM_AMB", "Psi_DRAM", "Psi_AMB_DRAM", "tau_AMB", "tau_DRAM")
	for _, c := range fbconfig.Coolings {
		t.AddRowf(c.Name(), c.PsiAMB, c.PsiDRAMAMB, c.PsiDRAM, c.PsiAMBDRAM, c.TauAMB, c.TauDRAM)
	}
	return Result{ID: "table3.2", Tables: []*report.Table{t}}, nil
}

func table33(*Runner) (Result, error) {
	t := report.NewTable("Table 3.3: DRAM ambient temperature model parameters",
		"Model", "Inlet FDHS_1.0", "Inlet AOHS_1.5", "PsiCPU_MEM*xi", "tau_CPU_DRAM")
	iso, integ := fbconfig.AmbientIsolated, fbconfig.AmbientIntegrated
	t.AddRowf("Isolated", iso.InletFDHS10, iso.InletAOHS15, iso.PsiXi, iso.TauCPUDRAM)
	t.AddRowf("Integrated", integ.InletFDHS10, integ.InletAOHS15, integ.PsiXi, integ.TauCPUDRAM)
	return Result{ID: "table3.3", Tables: []*report.Table{t}}, nil
}

func table41(*Runner) (Result, error) {
	p := fbconfig.DefaultSimParams
	t := report.NewTable("Table 4.1: simulator parameters", "Parameter", "Value")
	t.AddRow("Processor", fmt.Sprintf("%d-core, %d-issue per core", p.Cores, p.IssueWidth))
	var lv string
	for i, l := range p.DVFS {
		if i > 0 {
			lv += ", "
		}
		lv += fmt.Sprintf("%.1fGHz@%.2fV", l.FreqGHz, l.Volt)
	}
	t.AddRow("Clock frequency scaling", lv)
	t.AddRow("ROB/LQ/SQ", fmt.Sprintf("%d/%d/%d", p.ROB, p.LQ, p.SQ))
	t.AddRow("L1 caches (per core)", fmt.Sprintf("%dKB, %d-way, %dB line", p.L1SizeKB, p.L1Ways, p.LineBytes))
	t.AddRow("L2 cache (shared)", fmt.Sprintf("%dMB, %d-way, %d-cycle hit", p.L2SizeKB/1024, p.L2Ways, p.L2HitLatency))
	t.AddRow("Memory", fmt.Sprintf("%d logic (%d physical) channels, %d DIMMs/channel, %d banks/DIMM",
		p.LogicalChannels, p.PhysicalChannels, p.DIMMsPerChannel, p.BanksPerDIMM))
	t.AddRow("Channel bandwidth", fmt.Sprintf("%dMT/s FBDIMM-DDR2", p.ChannelMTps))
	t.AddRow("Memory controller", fmt.Sprintf("%d-entry buffer, %.0fns overhead", p.CtrlQueue, p.CtrlOverheadNS))
	t.AddRow("DTM parameters", fmt.Sprintf("interval %.0fms, overhead %.0fus, scale 25%%", p.DTMIntervalMS, p.DTMOverheadUS))
	t.AddRow("DRAM timing (5-5-5)", fmt.Sprintf("tRCD %.0fns, tCL %.0fns, tRP %.0fns", p.TRCD, p.TCL, p.TRP))
	t.AddRow("Other DRAM timing", fmt.Sprintf("tRAS=%.0f tRC=%.0f tWTR=%.0f tWL=%.0f tRRD=%.0f (ns)",
		p.TRAS, p.TRC, p.TWTR, p.TWL, p.TRRD))
	return Result{ID: "table4.1", Tables: []*report.Table{t}}, nil
}

func table43(*Runner) (Result, error) {
	t := report.NewTable("Table 4.3: thermal emergency levels and default settings",
		"Level", "AMB range (C)", "DRAM range (C)", "TS", "BW", "ACG cores", "CDVFS")
	rows := [][]string{
		{"L1", "(-,108.0)", "(-,83.0)", "On", "No limit", "4", "3.2GHz@1.55V"},
		{"L2", "[108.0,109.0)", "[83.0,84.0)", "On", "19.2GB/s", "3", "2.4GHz@1.35V"},
		{"L3", "[109.0,109.5)", "[84.0,84.5)", "On/Off", "12.8GB/s", "2", "1.6GHz@1.15V"},
		{"L4", "[109.5,110.0)", "[84.5,85.0)", "On/Off", "6.4GB/s", "1", "0.8GHz@0.95V"},
		{"L5", "[110.0,-)", "[85.0,-)", "Off", "Off", "0", "Stopped"},
	}
	for _, r := range rows {
		t.AddRow(r...)
	}
	return Result{ID: "table4.3", Tables: []*report.Table{t}}, nil
}

func table44(*Runner) (Result, error) {
	cp := fbconfig.DefaultCPUPower
	t := report.NewTable("Table 4.4: processor power consumption of DTM schemes",
		"DTM-ACG active cores", "Power (W)", "DTM-CDVFS setting", "Power (W)")
	dv := fbconfig.DTMDVFS
	rows := []struct {
		n   int
		lvl string
		w   float64
	}{
		{0, "(-,0)", cp.IdleWatt},
		{1, fmt.Sprintf("(%.2fV,%.1fGHz)", dv[3].Volt, dv[3].FreqGHz), cp.DVFSWatt[dv[3]]},
		{2, fmt.Sprintf("(%.2fV,%.1fGHz)", dv[2].Volt, dv[2].FreqGHz), cp.DVFSWatt[dv[2]]},
		{3, fmt.Sprintf("(%.2fV,%.1fGHz)", dv[1].Volt, dv[1].FreqGHz), cp.DVFSWatt[dv[1]]},
		{4, fmt.Sprintf("(%.2fV,%.1fGHz)", dv[0].Volt, dv[0].FreqGHz), cp.DVFSWatt[dv[0]]},
	}
	for _, r := range rows {
		t.AddRowf(r.n, cp.ActiveCoresWatt(r.n), r.lvl, r.w)
	}
	return Result{ID: "table4.4", Tables: []*report.Table{t}}, nil
}

func table51(r *Runner) (Result, error) {
	var tables []*report.Table
	for _, m := range []struct {
		name   string
		levels [4]fbconfig.Celsius
		caps   [3]float64
	}{
		{"PE1950", r.pe.AMBLevels, r.pe.BWCaps},
		{"SR1500AL", r.sr.AMBLevels, r.sr.BWCaps},
	} {
		t := report.NewTable(fmt.Sprintf("Table 5.1 (%s): emergency levels and running states", m.name),
			"Level", "AMB range (C)", "BW", "ACG cores", "CDVFS", "COMB")
		freq := []string{"3.00GHz", "2.67GHz", "2.33GHz", "2.00GHz"}
		for i := 0; i < 4; i++ {
			lo := "-"
			if i > 0 {
				lo = fmt.Sprintf("%.0f", m.levels[i-1])
			}
			bw := "No limit"
			if i > 0 {
				bw = fmt.Sprintf("%.1fGB/s", m.caps[i-1])
			}
			cores := []string{"4", "3", "2", "2"}[i]
			comb := fmt.Sprintf("%s@%s", []string{"4", "3", "2", "2"}[i], freq[i])
			t.AddRow(fmt.Sprintf("L%d", i+1),
				fmt.Sprintf("[%s,%.0f)", lo, m.levels[i]), bw, cores, freq[i], comb)
		}
		tables = append(tables, t)
	}
	return Result{ID: "table5.1", Tables: tables}, nil
}
