package exp

import (
	"strings"
	"testing"
)

// TestRegistryComplete verifies every paper artifact has a driver.
func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table3.1", "table3.2", "table3.3", "table4.1", "table4.3", "table4.4", "table5.1",
		"fig4.2", "fig4.3", "fig4.4", "fig4.5", "fig4.6", "fig4.7", "fig4.8",
		"fig4.9", "fig4.10", "fig4.11", "fig4.12", "fig4.13", "fig4.14",
		"fig5.4", "fig5.5", "fig5.6", "fig5.7", "fig5.8", "fig5.9",
		"fig5.10", "fig5.11", "fig5.12", "fig5.13", "fig5.14", "fig5.15",
	}
	for _, id := range want {
		if _, err := Lookup(id); err != nil {
			t.Errorf("missing driver %s", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registry has %d drivers, want %d", len(IDs()), len(want))
	}
	if _, err := Lookup("fig9.9"); err == nil {
		t.Fatal("unknown ID accepted")
	}
	if len(All()) != len(IDs()) {
		t.Fatal("All inconsistent with IDs")
	}
}

// TestStaticTables runs every parameter-table driver and checks paper
// constants appear in the rendering.
func TestStaticTables(t *testing.T) {
	r := NewRunner(true)
	cases := map[string][]string{
		"table3.1": {"4.0 watt", "5.1 watt", "0.19", "0.75", "0.98", "1.12", "1.16"},
		"table3.2": {"AOHS_1.5", "FDHS_1.0", "9.3", "4.1", "50", "100"},
		"table3.3": {"Isolated", "Integrated", "1.5"},
		"table4.1": {"4-core", "64-entry", "tRCD 15ns"},
		"table4.3": {"19.2GB/s", "0.8GHz@0.95V", "[110.0,-)"},
		"table4.4": {"62", "260", "80.60", "193.40"},
		"table5.1": {"PE1950", "SR1500AL", "2.67GHz", "3.0GB/s"},
	}
	for id, wants := range cases {
		d, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.Run(r)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		s := res.String()
		for _, w := range wants {
			if !strings.Contains(s, w) {
				t.Errorf("%s output missing %q:\n%s", id, w, s)
			}
		}
	}
}

// TestResultString covers figure rendering through the Result type.
func TestResultString(t *testing.T) {
	r := NewRunner(true)
	d, _ := Lookup("table3.2")
	res, err := d.Run(r)
	if err != nil {
		t.Fatal(err)
	}
	if res.String() == "" {
		t.Fatal("empty rendering")
	}
}
