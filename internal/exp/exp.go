// Package exp contains one driver per table and figure of the paper's
// evaluation (Chapters 3–5). Each driver regenerates the artifact's rows
// or series from the simulation/emulation substrate and renders it
// through internal/report. The registry maps experiment IDs ("fig4.3",
// "table4.4", …) to drivers; cmd/memtherm exposes them on the command
// line and bench_test.go exposes them as benchmarks.
package exp

import (
	"context"
	"fmt"
	"sort"

	"dramtherm/internal/core"
	"dramtherm/internal/fbconfig"
	"dramtherm/internal/platform"
	"dramtherm/internal/report"
	"dramtherm/internal/sim"
	"dramtherm/internal/sweep"
	"dramtherm/internal/trace"
	"dramtherm/internal/workload"
)

// Result is a rendered experiment: any number of tables and figures.
type Result struct {
	ID      string
	Tables  []*report.Table
	Figures []*report.Figure
}

// String renders everything as text (figures as data table + chart).
func (r Result) String() string {
	out := ""
	for _, t := range r.Tables {
		out += t.String()
	}
	for _, f := range r.Figures {
		out += f.DataTable().String()
		out += f.Chart(72, 16)
		out += "\n"
	}
	return out
}

// Runner carries the shared state all drivers use: one Chapter 4 sweep
// engine and one trace store per Chapter 5 machine. All level-2 runs go
// through the engine's deduplicating cache, so related figures (e.g.
// 4.3/4.4/4.9/4.10) never repeat work — and drivers running concurrently
// (memtherm -parallel) share in-flight simulations instead of racing.
type Runner struct {
	Sys *core.System
	// Eng serves every Chapter 4 level-2 run.
	Eng *sweep.Engine

	// Quick trades fidelity for speed (small batches, fewer mixes);
	// used by tests and benchmarks.
	Quick bool

	pe, sr  platform.Machine
	peStore *trace.Store
	srStore *trace.Store
	pfCache *sweep.Cache[platform.RunResult]
}

// NewRunner builds a Runner. quick selects the reduced-scale mode.
func NewRunner(quick bool) *Runner {
	return NewRunnerParallel(quick, 0)
}

// NewRunnerParallel is NewRunner with an explicit simulation worker-pool
// width (<= 0 selects GOMAXPROCS).
func NewRunnerParallel(quick bool, workers int) *Runner {
	return NewRunnerFor(sweep.NewEngine(core.NewSystem(RunnerConfig(quick)), workers), quick)
}

// RunnerConfig is the system configuration the drivers expect: the
// Chapter 4 defaults, with the batch replica count reduced in quick
// mode. Callers building their own engine (e.g. through the public
// dramtherm facade, to add durable state) start from this and pass the
// engine to NewRunnerFor.
func RunnerConfig(quick bool) core.Config {
	cfg := core.DefaultConfig()
	if quick {
		cfg.Replicas = 2
	} else {
		cfg.Replicas = 4
	}
	return cfg
}

// NewRunnerFor wraps an existing sweep engine — one the caller already
// configured with durable state or a cluster backend — in a Runner. The
// engine's System should come from RunnerConfig so results line up with
// the paper's tables.
func NewRunnerFor(eng *sweep.Engine, quick bool) *Runner {
	r := &Runner{
		Sys:     eng.System(),
		Eng:     eng,
		Quick:   quick,
		pe:      platform.PE1950(),
		sr:      platform.SR1500AL(),
		pfCache: sweep.NewCache[platform.RunResult](eng.Workers()),
	}
	r.peStore = platform.NewStore(r.pe, 1)
	r.srStore = platform.NewStore(r.sr, 1)
	return r
}

// mixes returns the Chapter 4 mixes, truncated in quick mode.
func (r *Runner) mixes() []workload.Mix {
	ms := workload.Chapter4Mixes()
	if r.Quick {
		return ms[:2]
	}
	return ms
}

// run executes one Chapter 4 level-2 run through the sweep engine, which
// memoizes it and deduplicates concurrent requests for the same spec.
func (r *Runner) run(mix workload.Mix, policyName string, cooling fbconfig.Cooling, model core.ThermalModelKind, spec core.RunSpec) (sim.MEMSpotResult, error) {
	return r.Eng.Run(context.Background(), sweep.Spec{
		Mix:      mix.Name,
		Policy:   policyName,
		Cooling:  cooling.Name(),
		Model:    model.String(),
		PsiXi:    spec.PsiXi,
		Interval: spec.Interval,
		Limits:   spec.Limits,
	})
}

// norm returns runtime normalized to the No-limit baseline.
func (r *Runner) norm(mix workload.Mix, policyName string, cooling fbconfig.Cooling, model core.ThermalModelKind, spec core.RunSpec) (float64, sim.MEMSpotResult, error) {
	res, err := r.run(mix, policyName, cooling, model, spec)
	if err != nil {
		return 0, res, err
	}
	base, err := r.run(mix, "No-limit", cooling, model, core.RunSpec{PsiXi: spec.PsiXi})
	if err != nil {
		return 0, res, err
	}
	return res.Seconds / base.Seconds, res, nil
}

// pfRun executes one Chapter 5 platform run through a sweep cache, so
// concurrent drivers share in-flight emulations the same way Chapter 4
// runs share simulations.
func (r *Runner) pfRun(cfg platform.RunConfig) (platform.RunResult, error) {
	if cfg.RunsPerApp == 0 {
		if r.Quick {
			cfg.RunsPerApp = 1
		} else {
			cfg.RunsPerApp = 3
		}
	}
	if cfg.SensorSeed == 0 {
		cfg.SensorSeed = 7
	}
	key := sweep.Key(fmt.Sprintf("%s|%v|%s|%d|%v|%v|%v|%v|%d", cfg.Machine.Name, cfg.Policy, cfg.Mix.Name,
		cfg.RunsPerApp, cfg.QuantumS, cfg.AmbientOverride, cfg.TDPOverride, cfg.ForceFreqIdx, cfg.SensorSeed))
	return r.pfCache.Do(context.Background(), key, func(context.Context) (platform.RunResult, error) {
		store := r.peStore
		if cfg.Machine.Name == r.sr.Name {
			store = r.srStore
		}
		return platform.RunPlatform(cfg, store)
	})
}

// Driver is one registered experiment.
type Driver struct {
	ID    string
	Title string
	Run   func(*Runner) (Result, error)
}

var registry = map[string]Driver{}

func register(id, title string, fn func(*Runner) (Result, error)) {
	registry[id] = Driver{ID: id, Title: title, Run: fn}
}

// Lookup returns the driver for id.
func Lookup(id string) (Driver, error) {
	d, ok := registry[id]
	if !ok {
		return Driver{}, fmt.Errorf("exp: unknown experiment %q (try `memtherm -list`)", id)
	}
	return d, nil
}

// IDs returns all experiment IDs in a stable order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// All returns all drivers sorted by ID.
func All() []Driver {
	out := make([]Driver, 0, len(registry))
	for _, id := range IDs() {
		out = append(out, registry[id])
	}
	return out
}
