// Package exp contains one driver per table and figure of the paper's
// evaluation (Chapters 3–5). Each driver regenerates the artifact's rows
// or series from the simulation/emulation substrate and renders it
// through internal/report. The registry maps experiment IDs ("fig4.3",
// "table4.4", …) to drivers; cmd/memtherm exposes them on the command
// line and bench_test.go exposes them as benchmarks.
package exp

import (
	"fmt"
	"sort"
	"sync"

	"dramtherm/internal/core"
	"dramtherm/internal/dtm"
	"dramtherm/internal/fbconfig"
	"dramtherm/internal/platform"
	"dramtherm/internal/report"
	"dramtherm/internal/sim"
	"dramtherm/internal/trace"
	"dramtherm/internal/workload"
)

// Result is a rendered experiment: any number of tables and figures.
type Result struct {
	ID      string
	Tables  []*report.Table
	Figures []*report.Figure
}

// String renders everything as text (figures as data table + chart).
func (r Result) String() string {
	out := ""
	for _, t := range r.Tables {
		out += t.String()
	}
	for _, f := range r.Figures {
		out += f.DataTable().String()
		out += f.Chart(72, 16)
		out += "\n"
	}
	return out
}

// Runner carries the shared state all drivers use: one Chapter 4 system
// and one trace store per Chapter 5 machine, plus memoized level-2 runs
// so related figures (e.g. 4.3/4.4/4.9/4.10) do not repeat work.
type Runner struct {
	Sys *core.System

	// Quick trades fidelity for speed (small batches, fewer mixes);
	// used by tests and benchmarks.
	Quick bool

	mu       sync.Mutex
	runCache map[string]sim.MEMSpotResult
	pe, sr   platform.Machine
	peStore  *trace.Store
	srStore  *trace.Store
	pfCache  map[string]platform.RunResult
}

// NewRunner builds a Runner. quick selects the reduced-scale mode.
func NewRunner(quick bool) *Runner {
	cfg := core.DefaultConfig()
	if quick {
		cfg.Replicas = 2
	} else {
		cfg.Replicas = 4
	}
	r := &Runner{
		Sys:      core.NewSystem(cfg),
		Quick:    quick,
		runCache: make(map[string]sim.MEMSpotResult),
		pe:       platform.PE1950(),
		sr:       platform.SR1500AL(),
		pfCache:  make(map[string]platform.RunResult),
	}
	r.peStore = platform.NewStore(r.pe, 1)
	r.srStore = platform.NewStore(r.sr, 1)
	return r
}

// mixes returns the Chapter 4 mixes, truncated in quick mode.
func (r *Runner) mixes() []workload.Mix {
	ms := workload.Chapter4Mixes()
	if r.Quick {
		return ms[:2]
	}
	return ms
}

// run executes (and memoizes) one Chapter 4 level-2 run.
func (r *Runner) run(mix workload.Mix, policyName string, cooling fbconfig.Cooling, model core.ThermalModelKind, spec core.RunSpec) (sim.MEMSpotResult, error) {
	key := fmt.Sprintf("%s|%s|%s|%v|%v|%v|%v", mix.Name, policyName, cooling.Name(), model,
		spec.PsiXi, spec.Interval, spec.Limits)
	r.mu.Lock()
	if res, ok := r.runCache[key]; ok {
		r.mu.Unlock()
		return res, nil
	}
	r.mu.Unlock()
	p, err := r.Sys.NewPolicy(policyName)
	if err != nil {
		return sim.MEMSpotResult{}, err
	}
	spec.Mix = mix
	spec.Policy = p
	spec.Cooling = cooling
	spec.Model = model
	res, err := r.Sys.Run(spec)
	if err != nil {
		return sim.MEMSpotResult{}, err
	}
	r.mu.Lock()
	r.runCache[key] = res
	r.mu.Unlock()
	return res, nil
}

// runWithPolicy executes (and memoizes) a run with an explicitly built
// policy, for sweeps whose parameter lives inside the policy itself.
func (r *Runner) runWithPolicy(mix workload.Mix, p dtm.Policy, cooling fbconfig.Cooling, spec core.RunSpec) (sim.MEMSpotResult, error) {
	key := fmt.Sprintf("custom|%s|%s|%s|%v", mix.Name, p.Name(), cooling.Name(), spec.Limits)
	r.mu.Lock()
	if res, ok := r.runCache[key]; ok {
		r.mu.Unlock()
		return res, nil
	}
	r.mu.Unlock()
	spec.Mix = mix
	spec.Policy = p
	spec.Cooling = cooling
	res, err := r.Sys.Run(spec)
	if err != nil {
		return sim.MEMSpotResult{}, err
	}
	r.mu.Lock()
	r.runCache[key] = res
	r.mu.Unlock()
	return res, nil
}

// norm returns runtime normalized to the No-limit baseline.
func (r *Runner) norm(mix workload.Mix, policyName string, cooling fbconfig.Cooling, model core.ThermalModelKind, spec core.RunSpec) (float64, sim.MEMSpotResult, error) {
	res, err := r.run(mix, policyName, cooling, model, spec)
	if err != nil {
		return 0, res, err
	}
	base, err := r.run(mix, "No-limit", cooling, model, core.RunSpec{PsiXi: spec.PsiXi})
	if err != nil {
		return 0, res, err
	}
	return res.Seconds / base.Seconds, res, nil
}

// pfRun executes (and memoizes) one Chapter 5 platform run.
func (r *Runner) pfRun(cfg platform.RunConfig) (platform.RunResult, error) {
	if cfg.RunsPerApp == 0 {
		if r.Quick {
			cfg.RunsPerApp = 1
		} else {
			cfg.RunsPerApp = 3
		}
	}
	if cfg.SensorSeed == 0 {
		cfg.SensorSeed = 7
	}
	key := fmt.Sprintf("%s|%v|%s|%d|%v|%v|%v|%v|%d", cfg.Machine.Name, cfg.Policy, cfg.Mix.Name,
		cfg.RunsPerApp, cfg.QuantumS, cfg.AmbientOverride, cfg.TDPOverride, cfg.ForceFreqIdx, cfg.SensorSeed)
	r.mu.Lock()
	if res, ok := r.pfCache[key]; ok {
		r.mu.Unlock()
		return res, nil
	}
	r.mu.Unlock()
	store := r.peStore
	if cfg.Machine.Name == r.sr.Name {
		store = r.srStore
	}
	res, err := platform.RunPlatform(cfg, store)
	if err != nil {
		return res, err
	}
	r.mu.Lock()
	r.pfCache[key] = res
	r.mu.Unlock()
	return res, nil
}

// Driver is one registered experiment.
type Driver struct {
	ID    string
	Title string
	Run   func(*Runner) (Result, error)
}

var registry = map[string]Driver{}

func register(id, title string, fn func(*Runner) (Result, error)) {
	registry[id] = Driver{ID: id, Title: title, Run: fn}
}

// Lookup returns the driver for id.
func Lookup(id string) (Driver, error) {
	d, ok := registry[id]
	if !ok {
		return Driver{}, fmt.Errorf("exp: unknown experiment %q (try `memtherm -list`)", id)
	}
	return d, nil
}

// IDs returns all experiment IDs in a stable order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// All returns all drivers sorted by ID.
func All() []Driver {
	out := make([]Driver, 0, len(registry))
	for _, id := range IDs() {
		out = append(out, registry[id])
	}
	return out
}
