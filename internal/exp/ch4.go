// Chapter 4 figures: the simulation study of the DTM schemes.

package exp

import (
	"fmt"

	"dramtherm/internal/core"
	"dramtherm/internal/fbconfig"
	"dramtherm/internal/report"
	"dramtherm/internal/stats"
)

func init() {
	register("fig4.2", "DTM-TS performance with varied TRP", fig42)
	register("fig4.3", "Normalized running time for DTM schemes", fig43)
	register("fig4.4", "Normalized total memory traffic for DTM schemes", fig44)
	register("fig4.5", "AMB temperature of DTM-TS, W1, AOHS 1.5", figTemp("fig4.5", "DTM-TS"))
	register("fig4.6", "AMB temperature of DTM-BW, W1, AOHS 1.5", figTemp("fig4.6", "DTM-BW"))
	register("fig4.7", "AMB temperature of DTM-ACG, W1, AOHS 1.5", figTemp("fig4.7", "DTM-ACG"))
	register("fig4.8", "AMB temperature of DTM-CDVFS, W1, AOHS 1.5", figTemp("fig4.8", "DTM-CDVFS"))
	register("fig4.9", "Normalized FBDIMM energy for DTM schemes", fig49)
	register("fig4.10", "Normalized processor energy for DTM schemes", fig410)
	register("fig4.11", "Normalized average running time vs DTM interval", fig411)
	register("fig4.12", "Normalized running time, integrated thermal model", fig412)
	register("fig4.13", "Average running time vs thermal interaction degree", fig413)
	register("fig4.14", "ACG/CDVFS improvement over BW vs interaction degree", fig414)
}

// coolings returns the two experiment cooling configurations.
func coolings() []fbconfig.Cooling { return fbconfig.ExperimentCoolings }

func fig42(r *Runner) (Result, error) {
	res := Result{ID: "fig4.2"}
	type sweep struct {
		cooling fbconfig.Cooling
		isAMB   bool
		trps    []float64
	}
	sweeps := []sweep{
		{fbconfig.CoolingFDHS10, false, []float64{81, 82, 83, 84, 84.5}},
		{fbconfig.CoolingAOHS15, true, []float64{106, 107, 108, 109, 109.5}},
	}
	for _, sw := range sweeps {
		kind := "DRAM TRP"
		if sw.isAMB {
			kind = "AMB TRP"
		}
		fig := report.NewFigure(
			fmt.Sprintf("Fig 4.2 (%s): DTM-TS normalized runtime vs %s", sw.cooling.Name(), kind),
			kind+" (C)", "normalized running time")
		for _, mix := range r.mixes() {
			var ys []float64
			for _, trp := range sw.trps {
				lim := fbconfig.DefaultLimits
				if sw.isAMB {
					lim.AMBTRP = trp
				} else {
					lim.DRAMTRP = trp
				}
				// The TS policy carries its own limits; the engine
				// builds it with the swept TRP because the spec's Limits
				// override reaches policy construction.
				res2, err := r.run(mix, "DTM-TS", sw.cooling, core.Isolated,
					core.RunSpec{Limits: lim})
				if err != nil {
					return res, err
				}
				base, err := r.run(mix, "No-limit", sw.cooling, core.Isolated, core.RunSpec{})
				if err != nil {
					return res, err
				}
				ys = append(ys, res2.Seconds/base.Seconds)
			}
			fig.AddXY(mix.Name, sw.trps, ys)
		}
		res.Figures = append(res.Figures, fig)
	}
	return res, nil
}

// schemeSet is the Fig. 4.3/4.4/4.9/4.10 policy list.
func schemeSet(r *Runner) []string {
	if r.Quick {
		return []string{"DTM-TS", "DTM-BW", "DTM-ACG", "DTM-CDVFS"}
	}
	return []string{"DTM-TS", "DTM-BW", "DTM-ACG", "DTM-CDVFS",
		"DTM-BW+PID", "DTM-ACG+PID", "DTM-CDVFS+PID"}
}

// byScheme runs every (mix, scheme) pair for both coolings and hands the
// per-run values to get.
func (r *Runner) byScheme(id, caption, ylabel string,
	get func(res, ts, base statsIn) float64) (Result, error) {
	out := Result{ID: id}
	for _, cool := range coolings() {
		fig := report.NewFigure(fmt.Sprintf("%s (%s)", caption, cool.Name()), "workload", ylabel)
		schemes := schemeSet(r)
		series := make(map[string][]float64, len(schemes))
		for _, mix := range r.mixes() {
			base, err := r.run(mix, "No-limit", cool, core.Isolated, core.RunSpec{})
			if err != nil {
				return out, err
			}
			ts, err := r.run(mix, "DTM-TS", cool, core.Isolated, core.RunSpec{})
			if err != nil {
				return out, err
			}
			for _, s := range schemes {
				res, err := r.run(mix, s, cool, core.Isolated, core.RunSpec{})
				if err != nil {
					return out, err
				}
				series[s] = append(series[s], get(statsIn{res.Seconds, res.TotalTrafficGB(), res.MemEnergyJ, res.CPUEnergyJ},
					statsIn{ts.Seconds, ts.TotalTrafficGB(), ts.MemEnergyJ, ts.CPUEnergyJ},
					statsIn{base.Seconds, base.TotalTrafficGB(), base.MemEnergyJ, base.CPUEnergyJ}))
			}
		}
		for _, s := range schemes {
			ys := series[s]
			ys = append(ys, stats.Mean(ys)) // final point = average, as in the paper's "avg" bar
			fig.Add(s, ys)
		}
		out.Figures = append(out.Figures, fig)
	}
	return out, nil
}

// statsIn bundles the quantities the byScheme getters need.
type statsIn struct {
	Seconds, TrafficGB, MemE, CPUE float64
}

func fig43(r *Runner) (Result, error) {
	return r.byScheme("fig4.3", "Fig 4.3: normalized running time", "runtime / No-limit",
		func(res, ts, base statsIn) float64 { return res.Seconds / base.Seconds })
}

func fig44(r *Runner) (Result, error) {
	return r.byScheme("fig4.4", "Fig 4.4: normalized total memory traffic", "traffic / No-limit",
		func(res, ts, base statsIn) float64 { return res.TrafficGB / base.TrafficGB })
}

func fig49(r *Runner) (Result, error) {
	return r.byScheme("fig4.9", "Fig 4.9: normalized FBDIMM energy", "energy / DTM-TS",
		func(res, ts, base statsIn) float64 { return res.MemE / ts.MemE })
}

func fig410(r *Runner) (Result, error) {
	return r.byScheme("fig4.10", "Fig 4.10: normalized processor energy", "energy / DTM-TS",
		func(res, ts, base statsIn) float64 { return res.CPUE / ts.CPUE })
}

// figTemp renders the first 1000 s of the AMB temperature trace of one
// scheme on W1 under AOHS 1.5 (Figs. 4.5–4.8).
func figTemp(id, scheme string) func(*Runner) (Result, error) {
	return func(r *Runner) (Result, error) {
		mix := r.mixes()[0] // W1
		res, err := r.run(mix, scheme, fbconfig.CoolingAOHS15, core.Isolated, core.RunSpec{})
		if err != nil {
			return Result{}, err
		}
		tr := res.AMBTrace
		if len(tr) > 1000 {
			tr = tr[:1000]
		}
		fig := report.NewFigure(
			fmt.Sprintf("%s: AMB temperature of %s for W1 with AOHS 1.5", id, scheme),
			"time (s)", "AMB temperature (C)")
		fig.Add(scheme, tr)
		return Result{ID: id, Figures: []*report.Figure{fig}}, nil
	}
}

func fig411(r *Runner) (Result, error) {
	out := Result{ID: "fig4.11"}
	intervals := []float64{0.001, 0.01, 0.02, 0.1}
	schemes := []string{"DTM-TS", "DTM-BW", "DTM-ACG", "DTM-CDVFS"}
	for _, cool := range coolings() {
		fig := report.NewFigure(
			fmt.Sprintf("Fig 4.11 (%s): normalized avg runtime vs DTM interval", cool.Name()),
			"DTM interval (ms)", "runtime / 10ms interval")
		for _, s := range schemes {
			var ys []float64
			var ref float64
			for _, iv := range intervals {
				var sum float64
				for _, mix := range r.mixes() {
					res, err := r.run(mix, s, cool, core.Isolated, core.RunSpec{Interval: iv})
					if err != nil {
						return out, err
					}
					sum += res.Seconds
				}
				if iv == 0.01 {
					ref = sum
				}
				ys = append(ys, sum)
			}
			for i := range ys {
				ys[i] /= ref
			}
			fig.AddXY(s, []float64{1, 10, 20, 100}, ys)
		}
		out.Figures = append(out.Figures, fig)
	}
	return out, nil
}

func fig412(r *Runner) (Result, error) {
	out := Result{ID: "fig4.12"}
	schemes := []string{"DTM-TS", "DTM-BW", "DTM-ACG", "DTM-CDVFS"}
	for _, cool := range coolings() {
		fig := report.NewFigure(
			fmt.Sprintf("Fig 4.12 (%s): normalized runtime, integrated thermal model", cool.Name()),
			"workload", "runtime / No-limit")
		series := make(map[string][]float64)
		for _, mix := range r.mixes() {
			for _, s := range schemes {
				n, _, err := r.norm(mix, s, cool, core.Integrated, core.RunSpec{})
				if err != nil {
					return out, err
				}
				series[s] = append(series[s], n)
			}
		}
		for _, s := range schemes {
			ys := series[s]
			ys = append(ys, stats.Mean(ys))
			fig.Add(s, ys)
		}
		out.Figures = append(out.Figures, fig)
	}
	return out, nil
}

// interactionDegrees are the Fig. 4.13/4.14 Ψ_CPU_MEM×ξ settings.
var interactionDegrees = []float64{1.0, 1.5, 2.0}

func fig413(r *Runner) (Result, error) {
	out := Result{ID: "fig4.13"}
	schemes := []string{"DTM-TS", "DTM-BW", "DTM-ACG", "DTM-CDVFS"}
	cool := fbconfig.CoolingFDHS10
	fig := report.NewFigure("Fig 4.13 (FDHS 1.0): avg normalized runtime vs thermal interaction degree",
		"PsiCPU_MEM*xi", "runtime / No-limit")
	for _, s := range schemes {
		var ys []float64
		for _, deg := range interactionDegrees {
			var ns []float64
			for _, mix := range r.mixes() {
				n, _, err := r.norm(mix, s, cool, core.Integrated, core.RunSpec{PsiXi: deg})
				if err != nil {
					return out, err
				}
				ns = append(ns, n)
			}
			ys = append(ys, stats.Mean(ns))
		}
		fig.AddXY(s, interactionDegrees, ys)
	}
	out.Figures = append(out.Figures, fig)
	return out, nil
}

func fig414(r *Runner) (Result, error) {
	out := Result{ID: "fig4.14"}
	cool := fbconfig.CoolingFDHS10
	fig := report.NewFigure("Fig 4.14 (FDHS 1.0): avg improvement over DTM-BW vs interaction degree",
		"PsiCPU_MEM*xi", "improvement over DTM-BW (%)")
	for _, s := range []string{"DTM-ACG", "DTM-CDVFS"} {
		var ys []float64
		for _, deg := range interactionDegrees {
			var imps []float64
			for _, mix := range r.mixes() {
				bw, err := r.run(mix, "DTM-BW", cool, core.Integrated, core.RunSpec{PsiXi: deg})
				if err != nil {
					return out, err
				}
				res, err := r.run(mix, s, cool, core.Integrated, core.RunSpec{PsiXi: deg})
				if err != nil {
					return out, err
				}
				imps = append(imps, (bw.Seconds-res.Seconds)/bw.Seconds*100)
			}
			ys = append(ys, stats.Mean(imps))
		}
		fig.AddXY(s, interactionDegrees, ys)
	}
	out.Figures = append(out.Figures, fig)
	return out, nil
}
