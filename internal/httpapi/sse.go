package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"dramtherm/internal/sweep"
)

// handleRunEvents streams a job's event log as Server-Sent Events. The
// full retained log is replayed first (so late subscribers see the
// started event), then live events as they are published, with comment
// heartbeats across idle periods. The stream ends after the terminal
// event (done/error/cancelled) or when the client disconnects.
func (s *Server) handleRunEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, CodeJobNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.writeServerErr(w, r, fmt.Errorf("response writer %T cannot stream", w))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	// A stream that ends before delivering the terminal event counts as
	// dropped: the client is gone, a write failed, or the server drained.
	complete := false
	s.mSSESubs.Inc()
	defer func() {
		s.mSSESubs.Dec()
		if !complete {
			s.mSSEDropped.Inc()
		}
	}()

	heartbeat := time.NewTimer(s.heartbeat)
	defer heartbeat.Stop()
	cursor := 0
	for {
		evs, changed, finished := job.EventsSince(cursor)
		for _, ev := range evs {
			if err := writeSSE(w, ev); err != nil {
				return // client gone
			}
		}
		cursor += len(evs)
		if len(evs) > 0 {
			flusher.Flush()
		}
		if finished {
			// The terminal event is always the last one published, so a
			// drained log plus a terminal status means we sent it.
			evs, _, _ := job.EventsSince(cursor)
			if len(evs) == 0 {
				complete = true
				return
			}
			continue
		}
		if !heartbeat.Stop() {
			select {
			case <-heartbeat.C:
			default:
			}
		}
		heartbeat.Reset(s.heartbeat)
		select {
		case <-changed:
		case <-heartbeat.C:
			if _, err := fmt.Fprintf(w, ": heartbeat\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		case <-s.base.Done():
			return
		}
	}
}

// writeSSE emits one event in the SSE wire format, using the event's
// sequence number as the SSE id and its kind as the event name.
func writeSSE(w http.ResponseWriter, ev sweep.JobEvent) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, data)
	return err
}
