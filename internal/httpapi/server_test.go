package httpapi

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dramtherm/internal/core"
	"dramtherm/internal/sim"
	"dramtherm/internal/sweep"
	"dramtherm/internal/sweep/remote"
	"dramtherm/internal/sweep/remote/gossip"
)

// newTestServer backs the API with a counting fake run function so API
// tests exercise routing, job lifecycle and deduplication without paying
// for real simulations.
func newTestServer(t *testing.T, workers int, delay time.Duration, cfg Config) (*httptest.Server, *atomic.Int64, *sweep.Engine) {
	t.Helper()
	eng := sweep.NewEngine(core.NewSystem(core.DefaultConfig()), workers)
	var builds atomic.Int64
	eng.SetRunFunc(func(ctx context.Context, rs core.RunSpec) (sim.MEMSpotResult, error) {
		builds.Add(1)
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return sim.MEMSpotResult{}, ctx.Err()
		}
		secs := 100.0
		if rs.Policy.Name() != "No-limit" {
			secs = 120
		}
		return sim.MEMSpotResult{
			Seconds: secs, Completed: 4, MaxAMB: 108,
			AMBTrace: []float64{80, 100, 108}, DRAMTrace: []float64{70, 80, 84},
		}, nil
	})
	api := New(context.Background(), eng, cfg)
	t.Cleanup(api.Close)
	ts := httptest.NewServer(api)
	t.Cleanup(ts.Close)
	return ts, &builds, eng
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func doReq(t *testing.T, method, url string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// pollJob GETs the job until pred is satisfied or the deadline passes.
func pollJob(t *testing.T, baseURL, id string, pred func(jobView) bool) jobView {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		r, err := http.Get(baseURL + "/v1/runs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d", r.StatusCode)
		}
		job := decode[jobView](t, r)
		if pred(job) {
			return job
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never reached expected state: %+v", job)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestHealthz(t *testing.T) {
	ts, _, eng := newTestServer(t, 2, 0, Config{Version: "9.9-test"})
	if _, err := eng.Run(context.Background(), sweep.Spec{Mix: "W1"}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	h := decode[map[string]any](t, resp)
	if h["status"] != "ok" || h["version"] != "9.9-test" {
		t.Fatalf("healthz = %v", h)
	}
	if _, ok := h["uptime_seconds"].(float64); !ok {
		t.Fatalf("healthz lacks numeric uptime_seconds: %v", h)
	}
	if h["workers"].(float64) != 2 {
		t.Fatalf("healthz workers = %v, want 2", h["workers"])
	}
	cache, ok := h["cache"].(map[string]any)
	if !ok || cache["entries"].(float64) != 1 || cache["builds"].(float64) != 1 {
		t.Fatalf("healthz cache = %v, want 1 entry / 1 build", h["cache"])
	}
	if _, clustered := h["peers"]; clustered {
		t.Fatalf("unclustered healthz reports peers: %v", h)
	}
}

// TestHealthzClustered: with a ClusterStatus hook the body additionally
// carries the peer ring.
func TestHealthzClustered(t *testing.T) {
	ts, _, _ := newTestServer(t, 2, 0, Config{
		ClusterStatus: func() any { return []map[string]any{{"id": "w1", "up": true}} },
	})
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h := decode[map[string]any](t, resp)
	peers, ok := h["peers"].([]any)
	if !ok || len(peers) != 1 {
		t.Fatalf("clustered healthz peers = %v", h["peers"])
	}
}

// TestExec: the synchronous cluster-dispatch endpoint returns the full
// result plus the serving node's cache outcome.
func TestExec(t *testing.T) {
	ts, builds, _ := newTestServer(t, 2, 0, Config{})
	resp := postJSON(t, ts.URL+"/v1/exec", sweep.Spec{Mix: "W1", Policy: "DTM-ACG"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exec status %d", resp.StatusCode)
	}
	er := decode[remote.ExecResponse](t, resp)
	if er.Outcome != "built" || er.Result.Seconds != 120 {
		t.Fatalf("exec = %+v, want built/120s", er)
	}
	if len(er.Result.AMBTrace) == 0 {
		t.Fatal("exec response dropped the traces — coordinator caches would be incomplete")
	}
	// The same spec again is a cache hit on this node.
	resp = postJSON(t, ts.URL+"/v1/exec", sweep.Spec{Mix: "W1", Policy: "DTM-ACG"})
	if er := decode[remote.ExecResponse](t, resp); er.Outcome != "hit" {
		t.Fatalf("repeat exec outcome %q, want hit", er.Outcome)
	}
	if builds.Load() != 1 {
		t.Fatalf("%d builds for two identical execs", builds.Load())
	}

	// Bad specs are the client's problem: 400, not failover bait.
	resp = postJSON(t, ts.URL+"/v1/exec", sweep.Spec{Mix: "W1", Policy: "DTM-NOPE"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad exec status %d, want 400", resp.StatusCode)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
}

func TestRunLifecycle(t *testing.T) {
	ts, builds, _ := newTestServer(t, 2, 5*time.Millisecond, Config{})
	resp := postJSON(t, ts.URL+"/v1/runs", sweep.Spec{Mix: "W1", Policy: "DTM-ACG"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	id := decode[map[string]string](t, resp)["id"]
	if id == "" {
		t.Fatal("no job id")
	}

	job := pollJob(t, ts.URL, id, func(j jobView) bool { return j.Status.Terminal() })
	if job.Status != sweep.JobDone || job.Result == nil {
		t.Fatalf("job = %+v", job)
	}
	if job.Result.Seconds != 120 || job.Result.MaxAMB != 108 {
		t.Fatalf("result = %+v", job.Result)
	}
	if job.Result.AMBTrace != nil {
		t.Fatalf("traces returned without traces=1: %+v", job.Result)
	}
	if job.Spec == nil || job.Spec.Mix != "W1" {
		t.Fatalf("spec = %+v", job.Spec)
	}
	if builds.Load() != 1 {
		t.Fatalf("builds = %d", builds.Load())
	}

	// Unknown job id is a 404.
	r, err := http.Get(ts.URL + "/v1/runs/run-999")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status %d", r.StatusCode)
	}
}

func TestRunTracesOptIn(t *testing.T) {
	ts, _, _ := newTestServer(t, 2, 0, Config{})
	resp := postJSON(t, ts.URL+"/v1/runs", sweep.Spec{Mix: "W1"})
	id := decode[map[string]string](t, resp)["id"]
	pollJob(t, ts.URL, id, func(j jobView) bool { return j.Status == sweep.JobDone })

	r, err := http.Get(ts.URL + "/v1/runs/" + id + "?traces=1")
	if err != nil {
		t.Fatal(err)
	}
	job := decode[jobView](t, r)
	if len(job.Result.AMBTrace) != 3 || len(job.Result.DRAMTrace) != 3 {
		t.Fatalf("traces missing with traces=1: %+v", job.Result)
	}
}

func TestRunValidation(t *testing.T) {
	ts, builds, _ := newTestServer(t, 2, 0, Config{})
	for _, body := range []any{
		sweep.Spec{Mix: "W99"},
		sweep.Spec{Mix: "W1", Policy: "DTM-NOPE"},
		map[string]any{"mix": []int{1}},
	} {
		resp := postJSON(t, ts.URL+"/v1/runs", body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %v: status %d, want 400", body, resp.StatusCode)
		}
	}
	if builds.Load() != 0 {
		t.Fatalf("invalid specs reached the backend %d times", builds.Load())
	}
}

func TestListRunsFilterAndPagination(t *testing.T) {
	ts, _, _ := newTestServer(t, 4, 0, Config{})
	var ids []string
	for _, mix := range []string{"W1", "W2", "W3", "W4"} {
		resp := postJSON(t, ts.URL+"/v1/runs", sweep.Spec{Mix: mix})
		ids = append(ids, decode[map[string]string](t, resp)["id"])
	}
	for _, id := range ids {
		pollJob(t, ts.URL, id, func(j jobView) bool { return j.Status == sweep.JobDone })
	}

	all := decode[listResponse](t, doReq(t, http.MethodGet, ts.URL+"/v1/runs"))
	if all.Total != 4 || len(all.Jobs) != 4 {
		t.Fatalf("list all = %d/%d, want 4/4", len(all.Jobs), all.Total)
	}
	// Newest first: the last-submitted job leads.
	if all.Jobs[0].ID != ids[3] || all.Jobs[3].ID != ids[0] {
		t.Fatalf("ordering: %s .. %s", all.Jobs[0].ID, all.Jobs[3].ID)
	}
	// Listings never include trace payloads.
	if all.Jobs[1].Result != nil && all.Jobs[1].Result.AMBTrace != nil {
		t.Fatalf("listing leaked traces: %+v", all.Jobs[1].Result)
	}

	done := decode[listResponse](t, doReq(t, http.MethodGet, ts.URL+"/v1/runs?status=done"))
	if done.Total != 4 {
		t.Fatalf("done total = %d, want 4", done.Total)
	}
	running := decode[listResponse](t, doReq(t, http.MethodGet, ts.URL+"/v1/runs?status=running"))
	if running.Total != 0 {
		t.Fatalf("running total = %d, want 0", running.Total)
	}

	page := decode[listResponse](t, doReq(t, http.MethodGet, ts.URL+"/v1/runs?offset=1&limit=2"))
	if page.Total != 4 || len(page.Jobs) != 2 {
		t.Fatalf("page = %d/%d, want 2/4", len(page.Jobs), page.Total)
	}
	if page.Jobs[0].ID != ids[2] || page.Jobs[1].ID != ids[1] {
		t.Fatalf("page content: %s, %s", page.Jobs[0].ID, page.Jobs[1].ID)
	}

	for _, q := range []string{"?status=nope", "?offset=-1", "?limit=x"} {
		r := doReq(t, http.MethodGet, ts.URL+"/v1/runs"+q)
		r.Body.Close()
		if r.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, r.StatusCode)
		}
	}
}

// TestDeleteRun covers both DELETE paths: cancelling an in-flight job
// (the simulation actually stops) and evicting a finished one.
func TestDeleteRun(t *testing.T) {
	eng := sweep.NewEngine(core.NewSystem(core.DefaultConfig()), 2)
	started := make(chan struct{}, 16)
	stopped := make(chan struct{}, 16)
	eng.SetRunFunc(func(ctx context.Context, rs core.RunSpec) (sim.MEMSpotResult, error) {
		started <- struct{}{}
		<-ctx.Done()
		stopped <- struct{}{}
		return sim.MEMSpotResult{}, ctx.Err()
	})
	api := New(context.Background(), eng, Config{})
	defer api.Close()
	ts := httptest.NewServer(api)
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/runs", sweep.Spec{Mix: "W1"})
	id := decode[map[string]string](t, resp)["id"]
	<-started // genuinely in flight

	del := doReq(t, http.MethodDelete, ts.URL+"/v1/runs/"+id)
	if del.StatusCode != http.StatusAccepted {
		t.Fatalf("delete running status %d", del.StatusCode)
	}
	if st := decode[map[string]string](t, del)["status"]; st != "cancelling" {
		t.Fatalf("delete running = %q", st)
	}
	select {
	case <-stopped: // the simulation observed cancellation
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight simulation did not stop")
	}
	job := pollJob(t, ts.URL, id, func(j jobView) bool { return j.Status.Terminal() })
	if job.Status != sweep.JobCancelled || job.Error == "" {
		t.Fatalf("cancelled job = %+v", job)
	}

	// Second DELETE evicts the now-finished job; a third is a 404.
	del = doReq(t, http.MethodDelete, ts.URL+"/v1/runs/"+id)
	if st := decode[map[string]string](t, del)["status"]; del.StatusCode != http.StatusOK || st != "evicted" {
		t.Fatalf("delete finished = %d %q", del.StatusCode, st)
	}
	g := doReq(t, http.MethodGet, ts.URL+"/v1/runs/"+id)
	g.Body.Close()
	if g.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted job still fetchable: %d", g.StatusCode)
	}
	del = doReq(t, http.MethodDelete, ts.URL+"/v1/runs/"+id)
	del.Body.Close()
	if del.StatusCode != http.StatusNotFound {
		t.Fatalf("delete unknown status %d", del.StatusCode)
	}
}

// TestJobTTLEviction checks finished jobs disappear after the TTL.
func TestJobTTLEviction(t *testing.T) {
	ts, _, _ := newTestServer(t, 2, 0, Config{JobTTL: 30 * time.Millisecond})
	resp := postJSON(t, ts.URL+"/v1/runs", sweep.Spec{Mix: "W1"})
	id := decode[map[string]string](t, resp)["id"]
	pollJob(t, ts.URL, id, func(j jobView) bool { return j.Status == sweep.JobDone })

	deadline := time.Now().Add(5 * time.Second)
	for {
		r := doReq(t, http.MethodGet, ts.URL+"/v1/runs/"+id)
		r.Body.Close()
		if r.StatusCode == http.StatusNotFound {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("finished job never evicted by TTL reaper")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	id    string
	event string
	data  sweep.JobEvent
}

// readSSE parses frames from an SSE stream until the terminal event or
// EOF, counting heartbeat comments on the side.
func readSSE(t *testing.T, body io.Reader, heartbeats *int) []sseEvent {
	t.Helper()
	var (
		events []sseEvent
		cur    sseEvent
	)
	sc := bufio.NewScanner(body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.event != "" {
				events = append(events, cur)
				if cur.event == "done" || cur.event == "error" || cur.event == "cancelled" {
					return events
				}
			}
			cur = sseEvent{}
		case strings.HasPrefix(line, ":"):
			if heartbeats != nil {
				*heartbeats++
			}
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.data); err != nil {
				t.Fatalf("bad SSE data %q: %v", line, err)
			}
		}
	}
	return events
}

// TestSSEEventOrdering streams an async sweep job and checks the event
// log arrives complete and ordered: job started first, one started and
// one finished event per spec, terminal done last, sequence numbers
// strictly increasing. Run under -race this exercises the publisher /
// streamer locking.
func TestSSEEventOrdering(t *testing.T) {
	ts, builds, _ := newTestServer(t, 4, 5*time.Millisecond, Config{})
	grid := sweep.Grid{Mixes: []string{"W1", "W2"}, Policies: []string{"DTM-TS", "DTM-BW"}}
	resp := postJSON(t, ts.URL+"/v1/sweeps?async=1", sweepRequest{Grid: &grid})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit status %d", resp.StatusCode)
	}
	id := decode[map[string]string](t, resp)["id"]

	stream, err := http.Get(ts.URL + "/v1/runs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	events := readSSE(t, stream.Body, nil)

	if len(events) != 1+4+4+1 {
		t.Fatalf("got %d events, want 10: %+v", len(events), events)
	}
	if events[0].event != "started" || events[0].data.Total != 4 {
		t.Fatalf("first event %+v", events[0])
	}
	last := events[len(events)-1]
	if last.event != "done" || last.data.Done != 4 {
		t.Fatalf("terminal event %+v", last)
	}
	starts, finishes := 0, 0
	for i, ev := range events {
		if ev.data.Seq != i {
			t.Fatalf("event %d has seq %d", i, ev.data.Seq)
		}
		switch ev.event {
		case string(sweep.EventStarted):
			starts++
		case string(sweep.EventFinished):
			finishes++
			if ev.data.Outcome == "" || ev.data.Seconds == 0 {
				t.Fatalf("finish event without outcome/runtime: %+v", ev.data)
			}
		}
	}
	if starts != 4 || finishes != 4 {
		t.Fatalf("starts=%d finishes=%d, want 4/4", starts, finishes)
	}
	if builds.Load() != 4 {
		t.Fatalf("builds = %d, want 4", builds.Load())
	}

	// The job result is fetchable after the terminal event.
	job := pollJob(t, ts.URL, id, func(j jobView) bool { return j.Status == sweep.JobDone })
	if job.Sweep == nil || job.Sweep.Count != 4 {
		t.Fatalf("async sweep result = %+v", job)
	}
	if job.Kind != sweep.JobSweep || job.Total != 4 {
		t.Fatalf("job view = %+v", job)
	}
}

// TestSSELateSubscriberAndHeartbeat: a subscriber that connects after
// events were published still sees the full log from seq 0, and an idle
// stream carries heartbeat comments.
func TestSSELateSubscriberAndHeartbeat(t *testing.T) {
	eng := sweep.NewEngine(core.NewSystem(core.DefaultConfig()), 2)
	release := make(chan struct{})
	eng.SetRunFunc(func(ctx context.Context, rs core.RunSpec) (sim.MEMSpotResult, error) {
		select {
		case <-release:
			return sim.MEMSpotResult{Seconds: 100}, nil
		case <-ctx.Done():
			return sim.MEMSpotResult{}, ctx.Err()
		}
	})
	api := New(context.Background(), eng, Config{Heartbeat: 20 * time.Millisecond})
	defer api.Close()
	ts := httptest.NewServer(api)
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/runs", sweep.Spec{Mix: "W1"})
	id := decode[map[string]string](t, resp)["id"]

	// Let the run start (and publish its spec_started) before
	// subscribing, then hold it open across a few heartbeat periods.
	time.Sleep(50 * time.Millisecond)
	stream, err := http.Get(ts.URL + "/v1/runs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	go func() {
		time.Sleep(100 * time.Millisecond)
		close(release)
	}()
	heartbeats := 0
	events := readSSE(t, stream.Body, &heartbeats)
	if len(events) < 3 { // started, spec_started, spec_finished, done
		t.Fatalf("late subscriber saw only %d events: %+v", len(events), events)
	}
	if events[0].event != "started" || events[0].data.Seq != 0 {
		t.Fatalf("late subscriber missed the replayed start: %+v", events[0])
	}
	if events[len(events)-1].event != "done" {
		t.Fatalf("no terminal event: %+v", events)
	}
	if heartbeats == 0 {
		t.Fatal("idle stream carried no heartbeats")
	}
}

func TestSSEUnknownJob(t *testing.T) {
	ts, _, _ := newTestServer(t, 2, 0, Config{})
	r := doReq(t, http.MethodGet, ts.URL+"/v1/runs/run-404/events")
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d", r.StatusCode)
	}
}

// TestInternalErrorsDoNotLeak: a backend failure during a synchronous
// sweep is logged server-side and returned as a generic 500 body, while
// client-caused validation errors stay verbatim.
func TestInternalErrorsDoNotLeak(t *testing.T) {
	const secret = "secret backend detail: /var/lib/dramtherm"
	eng := sweep.NewEngine(core.NewSystem(core.DefaultConfig()), 2)
	eng.SetRunFunc(func(ctx context.Context, rs core.RunSpec) (sim.MEMSpotResult, error) {
		return sim.MEMSpotResult{}, fmt.Errorf("%s", secret)
	})
	var logged bytes.Buffer
	api := New(context.Background(), eng, Config{
		Logf: func(format string, v ...any) { fmt.Fprintf(&logged, format+"\n", v...) },
	})
	defer api.Close()
	ts := httptest.NewServer(api)
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/sweeps", sweepRequest{Specs: []sweep.Spec{{Mix: "W1"}}})
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if strings.Contains(string(body), secret) {
		t.Fatalf("internal error leaked to client: %s", body)
	}
	if !strings.Contains(string(body), "internal error") {
		t.Fatalf("unexpected 500 body: %s", body)
	}
	if !strings.Contains(logged.String(), secret) {
		t.Fatalf("internal error not logged server-side: %q", logged.String())
	}

	// Validation errors, by contrast, stay verbatim.
	resp = postJSON(t, ts.URL+"/v1/sweeps", sweepRequest{Specs: []sweep.Spec{{Mix: "W99"}}})
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "W99") {
		t.Fatalf("validation error not verbatim: %d %s", resp.StatusCode, body)
	}
}

// TestSweepDedup is the acceptance scenario: a sweep over 8 (mix,
// policy) combinations, submitted with every spec duplicated, runs
// concurrently with exactly one simulation per unique spec.
func TestSweepDedup(t *testing.T) {
	ts, builds, eng := newTestServer(t, 8, 5*time.Millisecond, Config{})
	grid := sweep.Grid{
		Mixes:    []string{"W1", "W2", "W3", "W4"},
		Policies: []string{"DTM-TS", "DTM-BW"},
	} // 8 unique combinations
	specs := grid.Expand()
	req := sweepRequest{Grid: &grid, Specs: specs} // every spec twice
	start := time.Now()
	resp := postJSON(t, ts.URL+"/v1/sweeps", req)
	wall := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	out := decode[sweepResponse](t, resp)
	if out.Count != 16 {
		t.Fatalf("count = %d, want 16", out.Count)
	}
	if builds.Load() != 8 {
		t.Fatalf("backend ran %d simulations, want 8 (duplicate in-flight specs must dedup)", builds.Load())
	}
	if st := eng.Stats(); st.Builds != 8 || st.Hits+st.Waits != 8 {
		t.Fatalf("cache stats %+v", st)
	}
	// 8 × 5 ms of work on 8 workers must not serialize to 40 ms+.
	if wall > 4*time.Second {
		t.Fatalf("sweep wall %v suggests serial execution", wall)
	}
	// The table aggregates mixes × policies.
	if len(out.Table.Rows) != 4 || len(out.Table.Header) != 3 {
		t.Fatalf("table %dx%d: %+v", len(out.Table.Rows), len(out.Table.Header), out.Table)
	}
	for _, res := range out.Results {
		if res.Summary.Seconds != 120 {
			t.Fatalf("summary %+v", res.Summary)
		}
		if res.Summary.AMBTrace != nil {
			t.Fatalf("sync sweep leaked traces without traces=1: %+v", res.Summary)
		}
	}
}

func TestSweepNormalize(t *testing.T) {
	ts, _, _ := newTestServer(t, 4, 0, Config{})
	resp := postJSON(t, ts.URL+"/v1/sweeps", sweepRequest{
		Grid:      &sweep.Grid{Mixes: []string{"W1"}, Policies: []string{"DTM-TS"}},
		Normalize: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	out := decode[sweepResponse](t, resp)
	if n := out.Results[0].Summary.Normalized; n != 1.2 {
		t.Fatalf("normalized = %v, want 1.2", n)
	}
}

func TestSweepTraces(t *testing.T) {
	ts, _, _ := newTestServer(t, 4, 0, Config{})
	resp := postJSON(t, ts.URL+"/v1/sweeps?traces=1", sweepRequest{
		Specs: []sweep.Spec{{Mix: "W1"}},
	})
	out := decode[sweepResponse](t, resp)
	if len(out.Results[0].Summary.AMBTrace) != 3 {
		t.Fatalf("sync sweep with traces=1 missing traces: %+v", out.Results[0].Summary)
	}
}

func TestSweepValidation(t *testing.T) {
	ts, builds, _ := newTestServer(t, 2, 0, Config{})
	for _, req := range []sweepRequest{
		{}, // empty
		{Grid: &sweep.Grid{}},
		{Specs: []sweep.Spec{{Mix: "W1"}, {Mix: "W77"}}},
	} {
		resp := postJSON(t, ts.URL+"/v1/sweeps", req)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("req %+v: status %d, want 400", req, resp.StatusCode)
		}
	}
	if builds.Load() != 0 {
		t.Fatalf("invalid sweeps reached the backend %d times", builds.Load())
	}
}

// TestServerShutdownCancelsJobs checks async jobs abort when the server
// base context is cancelled (graceful shutdown path).
func TestServerShutdownCancelsJobs(t *testing.T) {
	eng := sweep.NewEngine(core.NewSystem(core.DefaultConfig()), 2)
	started := make(chan struct{}, 16)
	eng.SetRunFunc(func(ctx context.Context, rs core.RunSpec) (sim.MEMSpotResult, error) {
		started <- struct{}{}
		<-ctx.Done()
		return sim.MEMSpotResult{}, ctx.Err()
	})
	base, cancel := context.WithCancel(context.Background())
	api := New(base, eng, Config{})
	defer api.Close()
	ts := httptest.NewServer(api)
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/runs", sweep.Spec{Mix: "W1"})
	id := decode[map[string]string](t, resp)["id"]
	<-started // the job is genuinely in flight
	cancel()  // server shutdown

	job := pollJob(t, ts.URL, id, func(j jobView) bool { return j.Status.Terminal() })
	if job.Status != sweep.JobError && job.Status != sweep.JobCancelled {
		t.Fatalf("job after shutdown: %+v", job)
	}
	if job.Error == "" {
		t.Fatal("terminated job has no error")
	}
}

// TestSweepRealTiny drives one real reduced-scale simulation through the
// full HTTP path, proving the service end-to-end.
func TestSweepRealTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation skipped in -short mode")
	}
	cfg := core.DefaultConfig()
	cfg.Replicas = 1
	cfg.InstrScale = 0.01
	eng := sweep.NewEngine(core.NewSystem(cfg), 2)
	api := New(context.Background(), eng, Config{})
	defer api.Close()
	ts := httptest.NewServer(api)
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/sweeps", sweepRequest{
		Specs: []sweep.Spec{{Mix: "W1"}, {Mix: "W1", Policy: "DTM-TS"}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	out := decode[sweepResponse](t, resp)
	for i, r := range out.Results {
		if r.Summary.Seconds <= 0 {
			t.Fatalf("result %d: %+v", i, r.Summary)
		}
	}
	if out.Results[1].Summary.Seconds < out.Results[0].Summary.Seconds {
		t.Fatalf("DTM-TS (%v s) ran faster than No-limit (%v s)",
			out.Results[1].Summary.Seconds, out.Results[0].Summary.Seconds)
	}
}

// TestGossipEndpointDisabled: without a gossip node the exchange
// endpoint answers 404 and healthz carries no membership table.
func TestGossipEndpointDisabled(t *testing.T) {
	ts, _, _ := newTestServer(t, 1, 0, Config{})
	resp := postJSON(t, ts.URL+gossip.Path, gossip.Message{From: "x"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("gossip on a non-gossip node: status %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()
	h := decode[map[string]any](t, doReq(t, http.MethodGet, ts.URL+"/v1/healthz"))
	if _, ok := h["membership"]; ok {
		t.Fatalf("non-gossip healthz reports membership: %v", h)
	}
}

// TestGossipExchange: a valid exchange merges the caller's members and
// answers with this node's table; the merged member then shows up in
// the healthz membership.
func TestGossipExchange(t *testing.T) {
	node, err := gossip.NewNode(gossip.Config{
		Self:     gossip.Member{ID: "self", URL: "http://self"},
		Interval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Close)
	ts, _, _ := newTestServer(t, 1, 0, Config{Gossip: node})

	resp := postJSON(t, ts.URL+gossip.Path, gossip.Message{
		From:    "w1",
		Members: []gossip.Member{{ID: "w1", URL: "http://w1", Incarnation: 3}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gossip exchange status %d", resp.StatusCode)
	}
	reply := decode[gossip.Message](t, resp)
	if reply.From != "self" || len(reply.Members) != 2 {
		t.Fatalf("gossip reply = %+v, want from=self with self+w1", reply)
	}

	h := decode[map[string]any](t, doReq(t, http.MethodGet, ts.URL+"/v1/healthz"))
	membership, ok := h["membership"].([]any)
	if !ok || len(membership) != 2 {
		t.Fatalf("gossip healthz membership = %v, want 2 rows", h["membership"])
	}
}

// TestGossipExchangeRejectsMalformed: garbage and over-limit payloads
// get a 400 and never touch the membership table.
func TestGossipExchangeRejectsMalformed(t *testing.T) {
	node, err := gossip.NewNode(gossip.Config{
		Self:     gossip.Member{ID: "self", URL: "http://self"},
		Interval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Close)
	ts, _, _ := newTestServer(t, 1, 0, Config{Gossip: node})

	for _, body := range []string{`{"members":`, `[]`, `{"members":[{"id":"x","state":"zombie"}]}`} {
		resp, err := http.Post(ts.URL+gossip.Path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("malformed gossip body %q: status %d, want 400", body, resp.StatusCode)
		}
		resp.Body.Close()
	}
	oversized := gossip.Message{From: "x", Members: make([]gossip.Member, gossip.MaxMembers+1)}
	for i := range oversized.Members {
		oversized.Members[i] = gossip.Member{ID: fmt.Sprintf("m%d", i)}
	}
	resp := postJSON(t, ts.URL+gossip.Path, oversized)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized gossip body: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
	if got := len(node.Members()); got != 1 {
		t.Fatalf("rejected payloads mutated the table: %d members, want just self", got)
	}
}
