package httpapi

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"dramtherm/internal/core"
	"dramtherm/internal/obs"
	"dramtherm/internal/sim"
	"dramtherm/internal/sweep"
)

// TestMetricsEndpoint drives a little traffic through an instrumented
// server and checks that GET /metrics serves valid exposition text
// covering every layer the server instruments.
func TestMetricsEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	ts, _, eng := newTestServer(t, 2, 0, Config{Metrics: reg})
	eng.Instrument(reg) // the daemon does this; embedders opt in per layer

	resp := postJSON(t, ts.URL+"/v1/exec", sweep.Spec{Mix: "W1", Policy: "DTM-ACG"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exec: got %d", resp.StatusCode)
	}
	resp = doReq(t, http.MethodGet, ts.URL+"/v1/healthz")
	resp.Body.Close()
	resp = doReq(t, http.MethodGet, ts.URL+"/v1/runs/nope")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: got %d", resp.StatusCode)
	}

	resp = doReq(t, http.MethodGet, ts.URL+"/metrics")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: got %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.TextContentType {
		t.Fatalf("content type %q, want %q", ct, obs.TextContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	families, err := obs.Lint(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("exposition lint: %v\n%s", err, body)
	}
	got := make(map[string]bool, len(families))
	for _, f := range families {
		got[f] = true
	}
	for _, want := range []string{
		"dramtherm_cache_requests_total",
		"dramtherm_cache_entries",
		"dramtherm_cache_build_seconds",
		"dramtherm_pool_workers",
		"dramtherm_pool_busy",
		"dramtherm_jobs",
		"dramtherm_http_requests_total",
		"dramtherm_http_request_seconds",
		"dramtherm_http_inflight_requests",
		"dramtherm_sse_subscribers",
		"dramtherm_sse_dropped_total",
	} {
		if !got[want] {
			t.Errorf("family %s missing from /metrics", want)
		}
	}
	if n := reg.Sum("dramtherm_http_requests_total", map[string]string{"route": "/v1/runs/{id}", "code": "404"}); n != 1 {
		t.Errorf("404 on /v1/runs/{id}: counted %v, want 1", n)
	}
	if n := reg.Sum("dramtherm_cache_requests_total", map[string]string{"outcome": "built"}); n != 1 {
		t.Errorf("cache builds: counted %v, want 1", n)
	}
}

// TestMetricsRouteDisabledWithoutRegistry keeps the surface stable for
// uninstrumented embedders: no Config.Metrics, no /metrics route.
func TestMetricsRouteDisabledWithoutRegistry(t *testing.T) {
	ts, _, _ := newTestServer(t, 1, 0, Config{})
	resp := doReq(t, http.MethodGet, ts.URL+"/metrics")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/metrics without registry: got %d, want 404", resp.StatusCode)
	}
}

// TestRequestIDAdoptMintEcho covers the correlation-id contract: a
// caller-supplied X-Request-ID is echoed back verbatim, and a missing
// one is minted server-side.
func TestRequestIDAdoptMintEcho(t *testing.T) {
	ts, _, _ := newTestServer(t, 1, 0, Config{})

	resp := doReq(t, http.MethodGet, ts.URL+"/v1/healthz")
	resp.Body.Close()
	minted := resp.Header.Get(obs.RequestIDHeader)
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(minted) {
		t.Fatalf("minted request id %q, want 16 hex chars", minted)
	}

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.RequestIDHeader, "caller-id-7")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(obs.RequestIDHeader); got != "caller-id-7" {
		t.Fatalf("echoed request id %q, want caller-id-7", got)
	}
}

// TestMiddlewareCardinalityUnderConcurrency hammers several routes at
// once and then checks two invariants: the request counter's route
// labels come only from the registered route table (never raw request
// paths, so cardinality is bounded), and no increment was lost.
func TestMiddlewareCardinalityUnderConcurrency(t *testing.T) {
	reg := obs.NewRegistry()
	ts, _, _ := newTestServer(t, 4, 0, Config{Metrics: reg})

	const perRoute = 25
	routes := []struct{ method, path string }{
		{http.MethodGet, "/v1/healthz"},
		{http.MethodGet, "/v1/runs"},
		{http.MethodGet, "/v1/runs/ghost-1"},
		{http.MethodGet, "/v1/runs/ghost-2"},
	}
	var wg sync.WaitGroup
	for _, rt := range routes {
		for i := 0; i < perRoute; i++ {
			wg.Add(1)
			go func(method, path string) {
				defer wg.Done()
				req, err := http.NewRequest(method, ts.URL+path, nil)
				if err != nil {
					t.Error(err)
					return
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}(rt.method, rt.path)
		}
	}
	wg.Wait()

	allowed := map[string]bool{
		"/v1/healthz": true, "/v1/runs": true, "/v1/runs/{id}": true,
	}
	for _, fam := range reg.Gather() {
		if fam.Name != "dramtherm_http_requests_total" {
			continue
		}
		for _, s := range fam.Series {
			for _, l := range s.Labels {
				if l.Name == "route" && !allowed[l.Value] {
					t.Errorf("unexpected route label %q (raw paths must not leak into labels)", l.Value)
				}
			}
		}
	}
	total := reg.Sum("dramtherm_http_requests_total", nil)
	if want := float64(len(routes) * perRoute); total != want {
		t.Errorf("request counter total %v, want %v (lost or duplicated increments)", total, want)
	}
	// Both ghost ids fold into one parameterized route.
	if n := reg.Sum("dramtherm_http_requests_total", map[string]string{"route": "/v1/runs/{id}"}); n != 2*perRoute {
		t.Errorf("/v1/runs/{id} count %v, want %v", n, 2*perRoute)
	}
	if n := reg.Sum("dramtherm_http_request_seconds", map[string]string{"route": "/v1/healthz"}); n != perRoute {
		t.Errorf("latency histogram count %v, want %v", n, perRoute)
	}
	if v := reg.Sum("dramtherm_http_inflight_requests", nil); v != 0 {
		t.Errorf("in-flight gauge %v after drain, want 0", v)
	}
}

// TestErrorLogsCarryRequestContext routes a failing run through the
// server with a captured structured logger and checks the error event
// carries method, path and the request id from the wire.
func TestErrorLogsCarryRequestContext(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	}), nil))

	eng := sweep.NewEngine(core.NewSystem(core.DefaultConfig()), 1)
	eng.SetRunFunc(func(context.Context, core.RunSpec) (sim.MEMSpotResult, error) {
		return sim.MEMSpotResult{}, errors.New("boom: simulated failure")
	})
	api := New(context.Background(), eng, Config{Logger: logger})
	t.Cleanup(api.Close)
	ts := httptest.NewServer(api)
	t.Cleanup(ts.Close)

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/exec",
		strings.NewReader(`{"mix":"W1","policy":"DTM-ACG"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.RequestIDHeader, "trace-me-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// A deterministic run failure is the spec's own doing: 422, logged
	// with full request context.
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("failing exec: got %d, want 422", resp.StatusCode)
	}

	mu.Lock()
	logged := buf.String()
	mu.Unlock()
	for _, want := range []string{"method=POST", "path=/v1/exec", "request_id=trace-me-42"} {
		if !strings.Contains(logged, want) {
			t.Errorf("error log missing %q:\n%s", want, logged)
		}
	}
}

// TestSSEMetricsCleanStream verifies a subscriber that reads through the
// terminal event leaves the gauge at zero without counting as a drop.
func TestSSEMetricsCleanStream(t *testing.T) {
	reg := obs.NewRegistry()
	ts, _, _ := newTestServer(t, 2, 0, Config{Metrics: reg})

	resp := postJSON(t, ts.URL+"/v1/runs", sweep.Spec{Mix: "W1", Policy: "DTM-ACG"})
	id := decode[map[string]any](t, resp)["id"].(string)

	resp = doReq(t, http.MethodGet, fmt.Sprintf("%s/v1/runs/%s/events", ts.URL, id))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: got %d", resp.StatusCode)
	}
	if _, err := io.ReadAll(resp.Body); err != nil { // server closes after terminal event
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for reg.Sum("dramtherm_sse_subscribers", nil) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("sse subscriber gauge never returned to 0")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := reg.Sum("dramtherm_sse_dropped_total", nil); n != 0 {
		t.Errorf("clean stream counted as dropped: %v", n)
	}
}

// writerFunc adapts a function to io.Writer for log capture.
type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
