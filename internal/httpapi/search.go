package httpapi

import (
	"fmt"
	"math"

	"dramtherm/internal/sweep"
	"dramtherm/internal/sweep/search"
)

// searchRequest is the "search" block of POST /v1/sweeps: instead of
// sweeping every spec exhaustively, a strategy plans rounds over the
// same candidates (specs + expanded grid), pruning on cheap fidelity
// rungs before any full-cost simulation.
type searchRequest struct {
	// Strategy is "halving" (successive halving) or "bounds"
	// (bound-driven refinement).
	Strategy string `json:"strategy"`
	// Rungs is the ascending fidelity ladder; the last entry must be 1.
	// Empty selects the strategy default (0.25, 0.5, 1).
	Rungs []float64 `json:"rungs,omitempty"`
	// Eta is halving's keep-fraction denominator (default 2).
	Eta float64 `json:"eta,omitempty"`
	// Slack is bounds' relative low-fidelity uncertainty (default 0.1).
	Slack float64 `json:"slack,omitempty"`
	// MaxRounds aborts a runaway strategy (default 32).
	MaxRounds int `json:"max_rounds,omitempty"`
}

// strategy builds the named Strategy over the candidates, validating
// everything a client could get wrong before any simulation starts.
func (sr *searchRequest) strategy(candidates []sweep.Spec) (search.Strategy, error) {
	for i, rung := range sr.Rungs {
		if !(rung > 0) || rung > 1 || math.IsInf(rung, 1) {
			return nil, fmt.Errorf("search rung %d is %g: rungs must be in (0, 1]", i, rung)
		}
		if i > 0 && rung <= sr.Rungs[i-1] {
			return nil, fmt.Errorf("search rungs must strictly ascend: rung %d (%g) <= rung %d (%g)", i, rung, i-1, sr.Rungs[i-1])
		}
	}
	if n := len(sr.Rungs); n > 0 && sr.Rungs[n-1] != 1 {
		return nil, fmt.Errorf("the last search rung must be 1 (full fidelity), got %g", sr.Rungs[n-1])
	}
	switch sr.Strategy {
	case "halving":
		if sr.Eta < 0 || sr.Eta == 1 {
			return nil, fmt.Errorf("halving eta %g out of range: want 0 (default) or >= 2", sr.Eta)
		}
		return &search.Halving{Candidates: candidates, Rungs: sr.Rungs, Eta: sr.Eta}, nil
	case "bounds":
		if sr.Slack < 0 || sr.Slack >= 1 {
			return nil, fmt.Errorf("bounds slack %g out of range: want [0, 1)", sr.Slack)
		}
		return &search.BoundPrune{Candidates: candidates, Rungs: sr.Rungs, Slack: sr.Slack}, nil
	default:
		return nil, fmt.Errorf("unknown search strategy %q (want %q or %q)", sr.Strategy, "halving", "bounds")
	}
}

// searchRound is the wire form of one completed round.
type searchRound struct {
	Index      int          `json:"index"`
	Rung       float64      `json:"rung"`
	Candidates int          `json:"candidates"`
	Survivors  int          `json:"survivors"`
	Pruned     int          `json:"pruned"`
	Best       sweep.Spec   `json:"best"`
	Objective  float64      `json:"objective"`
	Specs      []sweep.Spec `json:"specs,omitempty"`      // only with ?specs=1
	Objectives []float64    `json:"objectives,omitempty"` // only with ?specs=1
}

// searchResponse reports one completed adaptive search.
type searchResponse struct {
	Strategy         string        `json:"strategy"`
	Rounds           []searchRound `json:"rounds"`
	Best             sweep.Spec    `json:"best"`
	BestObjective    float64       `json:"best_objective"`
	TotalRuns        int           `json:"total_runs"`
	FullFidelityRuns int           `json:"full_fidelity_runs"`
	Table            tableJSON     `json:"table"`
	Cache            sweep.Stats   `json:"cache"`
	Wall             float64       `json:"wall_seconds"`
}

// searchPayload is what a finished search job stores in the registry.
type searchPayload struct {
	res  *search.Result
	wall float64
}

func (s *Server) searchResponseOf(res *search.Result, wall float64, perSpec bool) *searchResponse {
	out := &searchResponse{
		Strategy:         res.Strategy,
		Rounds:           make([]searchRound, 0, len(res.Rounds)),
		Best:             res.Best,
		BestObjective:    res.BestObjective,
		TotalRuns:        res.TotalRuns,
		FullFidelityRuns: res.FullFidelityRuns,
		Cache:            s.eng.Stats(),
		Wall:             wall,
	}
	for _, rd := range res.Rounds {
		best := 0
		for i := 1; i < len(rd.Objectives); i++ {
			if rd.Objectives[i] < rd.Objectives[best] {
				best = i
			}
		}
		jr := searchRound{
			Index:      rd.Index,
			Rung:       rd.Scale,
			Candidates: len(rd.Specs),
			Survivors:  rd.Survivors,
			Pruned:     rd.Pruned,
			Best:       rd.Specs[best],
			Objective:  rd.Objectives[best],
		}
		if perSpec {
			jr.Specs = rd.Specs
			jr.Objectives = rd.Objectives
		}
		out.Rounds = append(out.Rounds, jr)
	}
	tab := res.Table("search")
	out.Table = tableJSON{Header: tab.Header, Rows: tab.Rows}
	return out
}
