package httpapi

import "net/http"

// Every /v1 error response is one envelope:
//
//	{"error":{"code":"bad_spec","message":"core: unknown policy \"X\""}}
//
// The code is a stable machine-readable discriminator (clients switch
// on it; the set below is the contract documented in docs/api.md), the
// message is human-readable and may change wording freely. The 4xx/5xx
// hygiene split is unchanged: 4xx messages describe the client's own
// input verbatim, 5xx messages are generic and the detail goes to the
// server log.
const (
	// CodeBadRequest: the request body or a parameter does not parse.
	CodeBadRequest = "bad_request"
	// CodeBadSpec: a spec failed validation (unknown mix/policy/cooling/
	// model, partial limits, bad instr_scale).
	CodeBadSpec = "bad_spec"
	// CodeBadSearch: the search block names an unknown strategy or an
	// invalid rung ladder.
	CodeBadSearch = "bad_search"
	// CodeJobNotFound: no job with the given id.
	CodeJobNotFound = "job_not_found"
	// CodeTooLarge: the batch, handoff stream, or body exceeds a bound.
	CodeTooLarge = "too_large"
	// CodeRegistryFull: the job registry cannot admit another running
	// job; retry later.
	CodeRegistryFull = "registry_full"
	// CodeNotEnabled: the endpoint exists but is switched off on this
	// node (e.g. gossip without -gossip).
	CodeNotEnabled = "not_enabled"
	// CodeNodeDraining: the node is shutting down (or the caller hung
	// up); the work is retryable elsewhere.
	CodeNodeDraining = "node_draining"
	// CodeSpecFailed: the simulation itself failed for this spec;
	// terminal, do not retry on another peer.
	CodeSpecFailed = "spec_failed"
	// CodeInternal: an unexpected server-side failure; detail is in the
	// server log under the request id.
	CodeInternal = "internal"
)

// apiError is the envelope payload.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// errorEnvelope is the uniform /v1 error body.
type errorEnvelope struct {
	Error apiError `json:"error"`
}

// writeErr reports one error in the envelope. For 4xx codes err's text
// is the client's own input reflected back; 5xx callers must pass a
// sanitized error (see writeServerErr).
func writeErr(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, errorEnvelope{Error: apiError{Code: code, Message: err.Error()}})
}
