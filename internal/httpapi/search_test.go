package httpapi

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"dramtherm/internal/core"
	"dramtherm/internal/sim"
	"dramtherm/internal/sweep"
)

// newSearchServer backs the API with a run function whose runtime is a
// fixed per-policy cost, so adaptive searches have a deterministic
// winner (DTM-BW) at every fidelity rung.
func newSearchServer(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	costs := map[string]float64{
		"DTM-TS": 120, "DTM-BW": 90, "DTM-ACG": 110, "DTM-CDVFS": 130,
	}
	eng := sweep.NewEngine(core.NewSystem(core.DefaultConfig()), 4)
	var fullFid atomic.Int64
	eng.SetRunFunc(func(ctx context.Context, rs core.RunSpec) (sim.MEMSpotResult, error) {
		if rs.InstrScale == 0 || rs.InstrScale == 1 {
			fullFid.Add(1)
		}
		secs, ok := costs[rs.Policy.Name()]
		if !ok {
			secs = 100
		}
		return sim.MEMSpotResult{Seconds: secs, Completed: 4, MaxAMB: 100}, nil
	})
	api := New(context.Background(), eng, Config{Logf: func(string, ...any) {}})
	t.Cleanup(api.Close)
	ts := httptest.NewServer(api)
	t.Cleanup(ts.Close)
	return ts, &fullFid
}

var searchGrid = sweep.Grid{
	Mixes:    []string{"W1"},
	Policies: []string{"DTM-TS", "DTM-BW", "DTM-ACG", "DTM-CDVFS"},
}

// TestSweepSearchSync: a synchronous search request prunes on the cheap
// rung and returns the true winner having fully simulated only the
// survivors.
func TestSweepSearchSync(t *testing.T) {
	ts, fullFid := newSearchServer(t)
	resp := postJSON(t, ts.URL+"/v1/sweeps", sweepRequest{
		Grid:   &searchGrid,
		Search: &searchRequest{Strategy: "halving", Rungs: []float64{0.25, 1}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	res := decode[searchResponse](t, resp)
	if res.Strategy != "halving" {
		t.Errorf("strategy %q", res.Strategy)
	}
	if len(res.Rounds) != 2 {
		t.Fatalf("rounds = %d, want 2: %+v", len(res.Rounds), res.Rounds)
	}
	if r := res.Rounds[0]; r.Rung != 0.25 || r.Candidates != 4 || r.Pruned != 2 {
		t.Errorf("round 0 = %+v, want rung 0.25 over 4 candidates pruning 2", r)
	}
	if r := res.Rounds[1]; r.Rung != 1 || r.Candidates != 2 {
		t.Errorf("round 1 = %+v, want rung 1 over 2 candidates", r)
	}
	if res.Best.Policy != "DTM-BW" {
		t.Errorf("best = %v, want the cheapest policy DTM-BW", res.Best)
	}
	if res.FullFidelityRuns != 2 || res.TotalRuns != 6 {
		t.Errorf("runs = %d full / %d total, want 2/6", res.FullFidelityRuns, res.TotalRuns)
	}
	if got := fullFid.Load(); got != 2 {
		t.Errorf("full-fidelity simulations = %d, want 2 (half the grid)", got)
	}
	if len(res.Table.Rows) == 0 {
		t.Error("search response table is empty")
	}
}

// TestSweepSearchAsync: the async path runs the search as a job of kind
// "search" whose SSE stream carries round boundary events, and the
// fetched job embeds the search result.
func TestSweepSearchAsync(t *testing.T) {
	ts, _ := newSearchServer(t)
	resp := postJSON(t, ts.URL+"/v1/sweeps?async=1", sweepRequest{
		Grid:   &searchGrid,
		Search: &searchRequest{Strategy: "bounds", Rungs: []float64{0.25, 1}},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit status %d", resp.StatusCode)
	}
	id := decode[map[string]string](t, resp)["id"]

	stream, err := http.Get(ts.URL + "/v1/runs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	events := readSSE(t, stream.Body, nil)

	roundStarts, roundFinishes := 0, 0
	for _, ev := range events {
		switch ev.event {
		case string(sweep.EventRoundStarted):
			if ev.data.Rung <= 0 {
				t.Errorf("round_started without a rung: %+v", ev.data)
			}
			roundStarts++
		case string(sweep.EventRoundFinished):
			if ev.data.Round != roundFinishes {
				t.Errorf("round_finished out of order: %+v", ev.data)
			}
			roundFinishes++
		}
	}
	if roundStarts != 2 || roundFinishes != 2 {
		t.Fatalf("round events = %d started / %d finished, want 2/2: %+v",
			roundStarts, roundFinishes, events)
	}
	if last := events[len(events)-1]; last.event != "done" {
		t.Fatalf("terminal event %+v", last)
	}

	job := pollJob(t, ts.URL, id, func(j jobView) bool { return j.Status == sweep.JobDone })
	if job.Kind != sweep.JobSearch {
		t.Errorf("job kind = %q, want %q", job.Kind, sweep.JobSearch)
	}
	if job.Search == nil {
		t.Fatal("finished search job has no search result")
	}
	if job.Search.Best.Policy != "DTM-BW" {
		t.Errorf("best = %v, want DTM-BW", job.Search.Best)
	}
	if job.Sweep != nil {
		t.Error("search job must not carry a sweep payload")
	}
}

// TestSweepSearchValidation: every malformed search block is a 400 with
// the bad_search code, before any simulation starts.
func TestSweepSearchValidation(t *testing.T) {
	ts, fullFid := newSearchServer(t)
	cases := []struct {
		name   string
		search searchRequest
		want   string
	}{
		{"unknown strategy", searchRequest{Strategy: "anneal"}, "unknown search strategy"},
		{"rung out of range", searchRequest{Strategy: "halving", Rungs: []float64{0, 1}}, "rungs must be in (0, 1]"},
		{"rungs not ascending", searchRequest{Strategy: "halving", Rungs: []float64{0.5, 0.5, 1}}, "strictly ascend"},
		{"last rung not full", searchRequest{Strategy: "halving", Rungs: []float64{0.25, 0.5}}, "last search rung must be 1"},
		{"bad eta", searchRequest{Strategy: "halving", Eta: 1}, "eta"},
		{"bad slack", searchRequest{Strategy: "bounds", Slack: 1.5}, "slack"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postJSON(t, ts.URL+"/v1/sweeps", sweepRequest{
				Grid: &searchGrid, Search: &tc.search,
			})
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			e := decode[errorEnvelope](t, resp)
			if e.Error.Code != CodeBadSearch {
				t.Errorf("code = %q, want %q", e.Error.Code, CodeBadSearch)
			}
			if !strings.Contains(e.Error.Message, tc.want) {
				t.Errorf("message %q does not mention %q", e.Error.Message, tc.want)
			}
		})
	}
	if got := fullFid.Load(); got != 0 {
		t.Errorf("%d simulations ran for rejected requests, want 0", got)
	}
}
