package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"dramtherm/internal/sweep"
	"dramtherm/internal/sweep/remote"
)

// maxBatchBytes bounds the decoded batch request body; a shard is a list
// of small specs, so anything near this is a protocol error, not load.
const maxBatchBytes = 8 << 20

// handleExecBatch runs a whole shard of specs and streams per-spec
// outcomes back as NDJSON remote.BatchLines, in completion order — the
// endpoint the remote backend's batched dispatch talks to. Execution is
// bounded by the engine's worker pool (cache hits and joins still
// short-circuit), so one oversized shard cannot starve the node. A spec
// whose run fails deterministically produces an error line (terminal for
// that spec); node drain or client disconnect truncates the stream
// instead, which the coordinator reads as "fail the remainder over".
func (s *Server) handleExecBatch(w http.ResponseWriter, r *http.Request) {
	var req remote.BatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBytes)).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge, CodeTooLarge, fmt.Errorf("batch body exceeds %d bytes", tooBig.Limit))
			return
		}
		writeErr(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("decoding batch: %w", err))
		return
	}
	if len(req.Specs) == 0 {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, errors.New("empty batch: provide specs"))
		return
	}
	if len(req.Specs) > s.maxBatch {
		writeErr(w, http.StatusRequestEntityTooLarge, CodeTooLarge, fmt.Errorf("batch of %d specs exceeds limit %d", len(req.Specs), s.maxBatch))
		return
	}
	for i, sp := range req.Specs {
		if err := s.eng.Validate(sp); err != nil {
			writeErr(w, http.StatusBadRequest, CodeBadSpec, fmt.Errorf("spec %d: %w", i, err))
			return
		}
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.writeServerErr(w, r, fmt.Errorf("response writer %T cannot stream", w))
		return
	}
	ctx, cancel := mergeDone(r.Context(), s.base)
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	// Lines interleave from worker goroutines; serialize writes and kill
	// the whole batch once the client is gone — its coordinator has
	// already re-planned the shard, so finishing it would be wasted work.
	var wmu sync.Mutex
	writeLine := func(line remote.BatchLine) {
		data, err := json.Marshal(line)
		if err != nil {
			s.log.Error("httpapi: encoding batch line failed", s.reqAttrs(r, "index", line.Index, "err", err.Error())...)
			cancel()
			return
		}
		wmu.Lock()
		defer wmu.Unlock()
		if _, err := w.Write(append(data, '\n')); err != nil {
			cancel()
			return
		}
		flusher.Flush()
	}

	sem := make(chan struct{}, s.eng.Workers())
	var wg sync.WaitGroup
	for i, sp := range req.Specs {
		wg.Add(1)
		go func(i int, sp sweep.Spec) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				return
			}
			res, out, err := s.eng.RunTraced(ctx, sp)
			if err != nil {
				if ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					// Draining (or the client hung up): truncate the stream
					// so the coordinator fails the remainder over instead of
					// treating the shard as terminally failed.
					cancel()
					return
				}
				s.log.Warn("httpapi: batch spec failed", s.reqAttrs(r, "index", i, "spec", sp.String(), "err", err.Error())...)
				writeLine(remote.BatchLine{Index: i, Key: string(s.eng.Key(sp)), Error: err.Error()})
				return
			}
			writeLine(remote.BatchLine{Index: i, Key: string(s.eng.Key(sp)), Outcome: out.String(), Result: &res})
		}(i, sp)
	}
	wg.Wait()
}
