package httpapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"dramtherm/internal/sim"
	"dramtherm/internal/sweep"
	"dramtherm/internal/sweep/remote"
)

func postNDJSON(t *testing.T, url string, lines []remote.HandoffLine) *http.Response {
	t.Helper()
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for _, ln := range lines {
		if err := enc.Encode(ln); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/x-ndjson", &body)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestHandoffEndpoint streams replicas in and checks they are imported
// idempotently and then served as cache hits without any rebuild.
func TestHandoffEndpoint(t *testing.T) {
	ts, builds, eng := newTestServer(t, 2, 0, Config{})
	spec := sweep.Spec{Mix: "W1", Policy: "DTM-TS"}
	key := string(eng.Key(spec))
	res := sim.MEMSpotResult{Seconds: 99, Completed: 4}

	resp := postNDJSON(t, ts.URL+remote.HandoffPath, []remote.HandoffLine{
		{Key: key, Result: &res, Reason: remote.ReasonReplica},
		{Key: key, Result: &res, Reason: remote.ReasonReplica}, // duplicate: skipped
		{Key: "otherdigest|foreign", Result: &res},             // foreign digest: skipped
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("handoff status %d", resp.StatusCode)
	}
	hr := decode[remote.HandoffResponse](t, resp)
	if hr.Accepted != 1 || hr.Skipped != 2 {
		t.Fatalf("handoff response %+v, want accepted=1 skipped=2", hr)
	}

	// The imported replica serves the exec path as a hit — no rebuild.
	execResp := postJSON(t, ts.URL+"/v1/exec", spec)
	if execResp.StatusCode != http.StatusOK {
		t.Fatalf("exec status %d", execResp.StatusCode)
	}
	er := decode[remote.ExecResponse](t, execResp)
	if er.Outcome != "hit" || er.Result.Seconds != 99 {
		t.Fatalf("exec after handoff = %+v, want hit of the imported result", er)
	}
	if builds.Load() != 0 {
		t.Fatalf("handoff import did not prevent a rebuild (builds=%d)", builds.Load())
	}

	// The ingestion counters surface in healthz.
	hz := decode[healthzResponse](t, doReq(t, http.MethodGet, ts.URL+"/v1/healthz"))
	if hz.HandoffAccepted != 1 || hz.HandoffSkipped != 2 {
		t.Fatalf("healthz handoff counters = %d/%d, want 1/2", hz.HandoffAccepted, hz.HandoffSkipped)
	}
}

// TestHandoffEndpointRejectsMalformed checks stream-level validation:
// a line without a result is a 400, not a partial import.
func TestHandoffEndpointRejectsMalformed(t *testing.T) {
	ts, _, eng := newTestServer(t, 1, 0, Config{})
	key := string(eng.Key(sweep.Spec{Mix: "W1"}))
	resp := postNDJSON(t, ts.URL+remote.HandoffPath, []remote.HandoffLine{{Key: key}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing-result line: status %d, want 400", resp.StatusCode)
	}
	resp2, err := http.Post(ts.URL+remote.HandoffPath, "application/x-ndjson", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage stream: status %d, want 400", resp2.StatusCode)
	}
}
