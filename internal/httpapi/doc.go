// Package httpapi serves a sweep.Engine over HTTP/JSON — the wire layer
// of dramthermd, importable so examples and tests can embed the full
// service in-process:
//
//	POST   /v1/runs              submit one run asynchronously → {"id": ...}
//	GET    /v1/runs              list jobs (?status=, ?offset=, ?limit=)
//	GET    /v1/runs/{id}         job status and, when done, the result
//	                             (?traces=1 includes temperature traces)
//	GET    /v1/runs/{id}/events  live job progress over SSE
//	DELETE /v1/runs/{id}         cancel a running job / evict a finished one
//	POST   /v1/sweeps            spec list or grid; ?async=1 submits a job
//	POST   /v1/exec              synchronous single-run execution — the
//	                             endpoint cluster coordinators dispatch to
//	POST   /v1/exec/batch        whole-shard execution: specs in, per-spec
//	                             outcomes streamed back as NDJSON lines
//	GET    /v1/healthz           liveness: version, uptime, job count,
//	                             cache statistics, peer ring when clustered
//
// docs/api.md is the field-by-field reference for every endpoint.
//
// Async jobs live in a sweep.Jobs registry: bounded, TTL-evicted, each
// with its own cancellable context and a retained event log streamed by
// the SSE endpoint. In cluster mode the same server plays both roles:
// a coordinator (its engine routes cache misses through
// internal/sweep/remote) and a worker (its /v1/exec and /v1/exec/batch
// serve peers).
package httpapi
