package httpapi

import (
	"net/http"
	"strconv"
	"strings"
	"time"

	"dramtherm/internal/obs"
)

// handle registers h at pattern wrapped in the observability
// middleware. The metric route label is the registered pattern's path
// (e.g. "/v1/runs/{id}"), never the raw request path, so label
// cardinality is bounded by the route table.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	route := pattern
	if i := strings.IndexByte(pattern, ' '); i >= 0 {
		route = pattern[i+1:]
	}
	s.mux.Handle(pattern, s.middleware(route, h))
}

// middleware stamps every request with a correlation id — adopting the
// caller's X-Request-ID so a coordinator's id follows its dispatches
// onto worker nodes, minting one otherwise, and echoing it on the
// response — and, when metrics are configured, tracks in-flight count,
// per-route request totals by method and status code, and a per-route
// latency histogram.
func (s *Server) middleware(route string, next http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(obs.RequestIDHeader)
		if id == "" {
			id = obs.NewRequestID()
		}
		w.Header().Set(obs.RequestIDHeader, id)
		r = r.WithContext(obs.WithRequestID(r.Context(), id))
		if s.mReq == nil { // metrics off: request ids only
			next(w, r)
			return
		}
		s.mInflight.Inc()
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		var ww http.ResponseWriter = sw
		if _, ok := w.(http.Flusher); ok {
			// Only advertise Flusher when the underlying writer really
			// streams: the SSE and batch handlers type-assert for it.
			ww = flushWriter{sw}
		}
		next(ww, r)
		s.mInflight.Dec()
		code := sw.status
		if code == 0 {
			code = http.StatusOK
		}
		s.mReq.WithLabelValues(route, r.Method, strconv.Itoa(code)).Inc()
		s.mLat.WithLabelValues(route).Observe(time.Since(start).Seconds())
	})
}

// statusWriter records the first status code written so the middleware
// can label the request counter with it.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// flushWriter is a statusWriter over a flushable writer: it forwards
// Flush so streaming handlers keep their type assertion.
type flushWriter struct{ *statusWriter }

func (w flushWriter) Flush() {
	w.ResponseWriter.(http.Flusher).Flush()
}
