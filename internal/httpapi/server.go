package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"dramtherm/internal/obs"
	"dramtherm/internal/sim"
	"dramtherm/internal/sweep"
	"dramtherm/internal/sweep/remote"
	"dramtherm/internal/sweep/remote/gossip"
	"dramtherm/internal/sweep/search"
)

// Config tunes a Server. The zero value selects the defaults.
type Config struct {
	// JobTTL evicts finished jobs this long after completion
	// (default 15m; < 0 disables TTL eviction).
	JobTTL time.Duration
	// MaxJobs bounds the job registry (default sweep.DefaultMaxJobs).
	MaxJobs int
	// Heartbeat is the SSE keep-alive comment period (default 15s).
	Heartbeat time.Duration
	// MaxBatch bounds the spec count of one POST /v1/exec/batch shard
	// (default DefaultMaxBatch); larger shards get a 413.
	MaxBatch int
	// Logf sinks internal-error logs (default log.Printf). When Logger
	// is unset, log records are rendered onto Logf one line each, so
	// printf-style callers keep working.
	Logf func(format string, v ...any)
	// Logger, when non-nil, receives structured request and error logs
	// (method, path, request_id attrs) and takes precedence over Logf.
	Logger *slog.Logger
	// Metrics, when non-nil, instruments every route (request counts and
	// latency by registered pattern, in-flight gauge, SSE subscribers),
	// instruments the job registry, and serves the registry's text
	// exposition at GET /metrics. When nil, only request-id propagation
	// is active and /metrics answers 404.
	Metrics *obs.Registry
	// Version is reported by GET /v1/healthz (default "dev").
	Version string
	// ClusterStatus, when non-nil, adds its result as the "peers" field
	// of the healthz body — cluster-mode dramthermd passes the remote
	// backend's Status method here.
	ClusterStatus func() any
	// ReplicationStatus, when non-nil, adds its result as the
	// "replication" field of the healthz body — coordinators with RF=2
	// enabled pass the remote backend's ReplicationStatus method here.
	ReplicationStatus func() any
	// Gossip, when non-nil, serves POST /v1/gossip exchanges against
	// this node and adds its membership table to the healthz body —
	// gossip-mode dramthermd passes its gossip.Node here. When nil the
	// endpoint answers 404.
	Gossip *gossip.Node
}

// DefaultMaxBatch is the default bound on specs per batch request —
// far above any sensible grid, low enough to reject garbage early.
const DefaultMaxBatch = 4096

// Server is the HTTP front end. It implements http.Handler.
type Server struct {
	eng       *sweep.Engine
	mux       *http.ServeMux
	jobs      *sweep.Jobs
	heartbeat time.Duration
	maxBatch  int
	log       *slog.Logger
	version   string
	cluster   func() any
	repl      func() any
	gossip    *gossip.Node
	started   time.Time

	// Instrumentation; all nil (and therefore no-ops) without Metrics.
	mReq        *obs.CounterVec   // {route, method, code}
	mLat        *obs.HistogramVec // {route}
	mInflight   *obs.Gauge
	mSSESubs    *obs.Gauge
	mSSEDropped *obs.Counter
	mHandoff    *obs.CounterVec // {result}
	search      *search.Metrics

	// Handoff ingestion counters; also surfaced without Metrics.
	handoffAccepted atomic.Int64
	handoffSkipped  atomic.Int64

	// base is the lifetime context of asynchronous jobs; cancelling it
	// (server shutdown) aborts in-flight simulations.
	base context.Context
}

// New wires the routes. base bounds the lifetime of async jobs. Call
// Close when done to stop the registry's background reaper.
func New(base context.Context, eng *sweep.Engine, cfg Config) *Server {
	if cfg.JobTTL == 0 {
		cfg.JobTTL = 15 * time.Minute
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 15 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if cfg.Version == "" {
		cfg.Version = "dev"
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	s := &Server{
		eng:       eng,
		mux:       http.NewServeMux(),
		jobs:      sweep.NewJobs(sweep.JobsOptions{TTL: cfg.JobTTL, MaxJobs: cfg.MaxJobs}),
		heartbeat: cfg.Heartbeat,
		maxBatch:  cfg.MaxBatch,
		log:       cfg.Logger,
		version:   cfg.Version,
		cluster:   cfg.ClusterStatus,
		repl:      cfg.ReplicationStatus,
		gossip:    cfg.Gossip,
		started:   time.Now(),
		base:      base,
	}
	if s.log == nil {
		s.log = obs.LogfLogger(cfg.Logf)
	}
	if reg := cfg.Metrics; reg != nil {
		s.mReq = reg.CounterVec("dramtherm_http_requests_total",
			"HTTP requests served, by registered route pattern, method and status code.",
			"route", "method", "code")
		s.mLat = reg.HistogramVec("dramtherm_http_request_seconds",
			"HTTP request latency by registered route pattern.",
			obs.DefBuckets, "route")
		s.mInflight = reg.Gauge("dramtherm_http_inflight_requests",
			"Requests currently being served.")
		s.mSSESubs = reg.Gauge("dramtherm_sse_subscribers",
			"Open job event streams.")
		s.mSSEDropped = reg.Counter("dramtherm_sse_dropped_total",
			"Event streams that ended before delivering the job's terminal event (client gone, write failure, or server drain).")
		s.mHandoff = reg.CounterVec("dramtherm_handoff_received_total",
			"Results received via POST /v1/handoff, by disposition (accepted: imported into the cache; skipped: already present or wrong config digest).",
			"result")
		s.search = search.Instrument(reg)
		s.jobs.Instrument(reg)
		s.handle("GET /metrics", reg.Handler().ServeHTTP)
	}
	s.handle("GET /v1/healthz", s.handleHealthz)
	s.handle("POST "+gossip.Path, s.handleGossip)
	s.handle("POST /v1/runs", s.handleSubmitRun)
	s.handle("POST /v1/exec", s.handleExec)
	s.handle("POST /v1/exec/batch", s.handleExecBatch)
	s.handle("POST "+remote.HandoffPath, s.handleHandoff)
	s.handle("GET /v1/runs", s.handleListRuns)
	s.handle("GET /v1/runs/{id}", s.handleGetRun)
	s.handle("GET /v1/runs/{id}/events", s.handleRunEvents)
	s.handle("DELETE /v1/runs/{id}", s.handleDeleteRun)
	s.handle("POST /v1/sweeps", s.handleSweep)
	return s
}

// Close stops the job registry's background reaper.
func (s *Server) Close() { s.jobs.Close() }

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// runSummary is the wire form of a result: the scalar aggregates and,
// only when the client opts in with ?traces=1, the temperature traces.
type runSummary struct {
	Seconds    float64   `json:"seconds"`
	Normalized float64   `json:"normalized,omitempty"`
	TimedOut   bool      `json:"timed_out,omitempty"`
	Completed  int       `json:"completed"`
	ReadGB     float64   `json:"read_gb"`
	WriteGB    float64   `json:"write_gb"`
	MemEnergyJ float64   `json:"mem_energy_j"`
	CPUEnergyJ float64   `json:"cpu_energy_j"`
	MaxAMB     float64   `json:"max_amb_c"`
	MaxDRAM    float64   `json:"max_dram_c"`
	Overshoots int       `json:"overshoots"`
	AMBTrace   []float64 `json:"amb_trace,omitempty"`
	DRAMTrace  []float64 `json:"dram_trace,omitempty"`
}

func summarize(r sim.MEMSpotResult, traces bool) *runSummary {
	out := &runSummary{
		Seconds:    r.Seconds,
		TimedOut:   r.TimedOut,
		Completed:  r.Completed,
		ReadGB:     r.ReadGB,
		WriteGB:    r.WriteGB,
		MemEnergyJ: r.MemEnergyJ,
		CPUEnergyJ: r.CPUEnergyJ,
		MaxAMB:     r.MaxAMB,
		MaxDRAM:    r.MaxDRAM,
		Overshoots: r.Overshoots,
	}
	if traces {
		out.AMBTrace = r.AMBTrace
		out.DRAMTrace = r.DRAMTrace
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // nothing to do about a dead client
}

// writeServerErr reports a 5xx: the underlying error is logged
// server-side — tagged with the request's method, path and correlation
// id — and the client gets a generic envelope, so internal details
// (paths, config digests, backend state) never leak onto the wire.
func (s *Server) writeServerErr(w http.ResponseWriter, r *http.Request, err error) {
	s.log.Error("httpapi: internal error", s.reqAttrs(r, "err", err.Error())...)
	writeErr(w, http.StatusInternalServerError, CodeInternal, errors.New("internal error"))
}

// reqAttrs builds the request-context log attributes every error log
// carries, plus any extras.
func (s *Server) reqAttrs(r *http.Request, extra ...any) []any {
	out := []any{"method", r.Method, "path", r.URL.Path}
	if id := obs.RequestID(r.Context()); id != "" {
		out = append(out, "request_id", id)
	}
	return append(out, extra...)
}

// wantFlag reads a boolean query parameter ("1" or "true").
func wantFlag(r *http.Request, name string) bool {
	v := r.URL.Query().Get(name)
	return v == "1" || v == "true"
}

// healthzResponse is the GET /v1/healthz body: enough for liveness
// probes (status), operators (version, uptime, cache traffic) and the
// cluster prober (peers, when clustered).
type healthzResponse struct {
	Status        string      `json:"status"`
	Version       string      `json:"version"`
	UptimeSeconds float64     `json:"uptime_seconds"`
	Workers       int         `json:"workers"`
	Jobs          int         `json:"jobs"`
	Cache         sweep.Stats `json:"cache"`
	Peers         any         `json:"peers,omitempty"` // []remote.PeerStatus when clustered
	// Membership is this node's gossip view of the cluster (id, url,
	// incarnation, alive/suspect/dead), present only in gossip mode.
	Membership []gossip.Member `json:"membership,omitempty"`
	// Replication is the coordinator's RF=2 replication/handoff state
	// (remote.ReplicationStatus), present only when replication is on.
	Replication any `json:"replication,omitempty"`
	// State is the durable segment-log snapshot, present only when the
	// engine persists through one.
	State *sweep.StateStats `json:"state,omitempty"`
	// HandoffAccepted / HandoffSkipped count results this node received
	// via POST /v1/handoff.
	HandoffAccepted int64 `json:"handoff_accepted,omitempty"`
	HandoffSkipped  int64 `json:"handoff_skipped,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	out := healthzResponse{
		Status:        "ok",
		Version:       s.version,
		UptimeSeconds: time.Since(s.started).Seconds(),
		Workers:       s.eng.Workers(),
		Jobs:          s.jobs.Len(),
		Cache:         s.eng.Stats(),
	}
	if s.cluster != nil {
		out.Peers = s.cluster()
	}
	if s.gossip != nil {
		out.Membership = s.gossip.Members()
	}
	if s.repl != nil {
		out.Replication = s.repl()
	}
	if st, ok := s.eng.StateStats(); ok {
		out.State = &st
	}
	out.HandoffAccepted = s.handoffAccepted.Load()
	out.HandoffSkipped = s.handoffSkipped.Load()
	writeJSON(w, http.StatusOK, out)
}

// handleHandoff ingests replicated and handed-off cache entries: a
// stream of NDJSON remote.HandoffLines, each imported idempotently —
// present keys and foreign config digests are skipped, not errors, so
// senders with a stale view cannot poison the cache or fail the stream.
func (s *Server) handleHandoff(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 256<<20))
	var resp remote.HandoffResponse
	for n := 0; ; n++ {
		var ln remote.HandoffLine
		if err := dec.Decode(&ln); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			writeErr(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("decoding handoff line %d: %w", n, err))
			return
		}
		if ln.Key == "" || ln.Result == nil {
			writeErr(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("handoff line %d lacks key or result", n))
			return
		}
		if n >= s.maxBatch {
			writeErr(w, http.StatusRequestEntityTooLarge, CodeTooLarge,
				fmt.Errorf("handoff stream exceeds %d lines", s.maxBatch))
			return
		}
		if s.eng.ImportResult(sweep.Key(ln.Key), *ln.Result) {
			resp.Accepted++
			s.handoffAccepted.Add(1)
			s.mHandoff.WithLabelValues("accepted").Inc()
		} else {
			resp.Skipped++
			s.handoffSkipped.Add(1)
			s.mHandoff.WithLabelValues("skipped").Inc()
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleGossip serves the receiving half of an anti-entropy exchange:
// merge the caller's membership table, answer with ours. Malformed
// payloads are rejected whole (400) before they can touch the table.
func (s *Server) handleGossip(w http.ResponseWriter, r *http.Request) {
	if s.gossip == nil {
		writeErr(w, http.StatusNotFound, CodeNotEnabled, errors.New("gossip is not enabled on this node"))
		return
	}
	var msg gossip.Message
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&msg); err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("decoding gossip message: %w", err))
		return
	}
	if len(msg.Members) > gossip.MaxMembers {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("gossip message has %d members (max %d)", len(msg.Members), gossip.MaxMembers))
		return
	}
	writeJSON(w, http.StatusOK, s.gossip.HandleExchange(msg))
}

// handleExec runs one spec synchronously and returns the full result
// plus the cache outcome — the endpoint remote.Backend dispatches to.
// Unlike the job endpoints it blocks for the simulation's duration;
// cluster coordinators own the timeout via their request context.
func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	var spec sweep.Spec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("decoding spec: %w", err))
		return
	}
	if err := s.eng.Validate(spec); err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadSpec, err)
		return
	}
	ctx, cancel := mergeDone(r.Context(), s.base)
	defer cancel()
	res, out, err := s.eng.RunTraced(ctx, spec)
	if err != nil {
		// The status tells the coordinator whether to fail over. A
		// cancellation means this node is draining (or the caller hung
		// up): 503, retryable elsewhere. Any other run error is the
		// spec's own doing — a 422 is terminal, so one poisoned spec
		// cannot eject every healthy peer in turn.
		s.log.Warn("httpapi: exec failed", s.reqAttrs(r, "err", err.Error())...)
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			writeErr(w, http.StatusServiceUnavailable, CodeNodeDraining, errors.New("node draining"))
		} else {
			writeErr(w, http.StatusUnprocessableEntity, CodeSpecFailed, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, remote.ExecResponse{Outcome: out.String(), Result: res})
}

// jobView is the wire rendering of one job. Total carries the spec
// count for both kinds.
type jobView struct {
	ID        string          `json:"id"`
	Kind      sweep.JobKind   `json:"kind"`
	Spec      *sweep.Spec     `json:"spec,omitempty"` // run jobs
	Status    sweep.JobStatus `json:"status"`
	Error     string          `json:"error,omitempty"`
	Submitted time.Time       `json:"submitted"`
	Finished  *time.Time      `json:"finished,omitempty"`
	Done      int             `json:"done"`
	Total     int             `json:"total"`
	Result    *runSummary     `json:"result,omitempty"` // run jobs, when done
	Sweep     *sweepResponse  `json:"sweep,omitempty"`  // sweep jobs, when done
	Search    *searchResponse `json:"search,omitempty"` // search jobs, when done
}

// sweepPayload is what a finished sweep job stores in the registry: the
// raw engine results, rendered into wire form at fetch time so the
// traces opt-in applies per request.
type sweepPayload struct {
	res       *sweep.Result
	normalize bool
	wall      float64
}

func (s *Server) viewJob(snap sweep.JobSnapshot, traces bool) jobView {
	v := jobView{
		ID:        snap.ID,
		Kind:      snap.Kind,
		Status:    snap.Status,
		Error:     snap.Error,
		Submitted: snap.Submitted,
		Finished:  snap.Finished,
		Done:      snap.Done,
		Total:     snap.Total,
	}
	if snap.Kind == sweep.JobRun && len(snap.Specs) == 1 {
		v.Spec = &snap.Specs[0]
	}
	switch res := snap.Result.(type) {
	case sim.MEMSpotResult:
		v.Result = summarize(res, traces)
	case *sweepPayload:
		v.Sweep = s.sweepResponseOf(snap.Specs, res.res, res.normalize, res.wall, traces)
	case *searchPayload:
		v.Search = s.searchResponseOf(res.res, res.wall, traces)
	}
	return v
}

func (s *Server) handleSubmitRun(w http.ResponseWriter, r *http.Request) {
	var spec sweep.Spec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("decoding spec: %w", err))
		return
	}
	// Validate now so the client gets a 400 rather than a failed job.
	if err := s.eng.Validate(spec); err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadSpec, err)
		return
	}
	// The job outlives the request, but its logs and dispatches keep the
	// submitting request's correlation id.
	job, err := s.jobs.Create(obs.WithRequestID(s.base, obs.RequestID(r.Context())), sweep.JobRun, []sweep.Spec{spec})
	if err != nil {
		// Registry exhaustion is load, not client error: 503 invites retry.
		writeErr(w, http.StatusServiceUnavailable, CodeRegistryFull, err)
		return
	}
	go func() {
		res, err := s.eng.RunObserved(job.Context(), spec, func(ev sweep.Event) {
			job.Publish(sweep.JobEventFrom(ev))
		})
		if err != nil {
			job.Finish(nil, err)
			return
		}
		job.Finish(res, nil)
	}()
	writeJSON(w, http.StatusAccepted, map[string]string{"id": job.ID()})
}

// listResponse pages job listings.
type listResponse struct {
	Jobs   []jobView `json:"jobs"`
	Total  int       `json:"total"`
	Offset int       `json:"offset"`
	Limit  int       `json:"limit"`
}

func (s *Server) handleListRuns(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	status := sweep.JobStatus(q.Get("status"))
	switch status {
	case "", sweep.JobRunning, sweep.JobDone, sweep.JobError, sweep.JobCancelled:
	default:
		writeErr(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("unknown status %q", status))
		return
	}
	offset, err := intParam(q.Get("offset"), 0)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	limit, err := intParam(q.Get("limit"), 50)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	if limit == 0 {
		limit = 50 // an explicit 0 must not mean "unbounded" on the wire
	}
	limit = min(limit, 500)
	snaps, total := s.jobs.List(status, offset, limit)
	out := listResponse{Jobs: make([]jobView, 0, len(snaps)), Total: total, Offset: offset, Limit: limit}
	for _, snap := range snaps {
		// Listings stay scalar: traces are per-job fetches only.
		out.Jobs = append(out.Jobs, s.viewJob(snap, false))
	}
	writeJSON(w, http.StatusOK, out)
}

func intParam(v string, def int) (int, error) {
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad integer parameter %q", v)
	}
	return n, nil
}

func (s *Server) handleGetRun(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, CodeJobNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, s.viewJob(job.Snapshot(), wantFlag(r, "traces")))
}

func (s *Server) handleDeleteRun(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	evicted, ok := s.jobs.Cancel(id)
	switch {
	case !ok:
		writeErr(w, http.StatusNotFound, CodeJobNotFound, fmt.Errorf("unknown job %q", id))
	case evicted:
		writeJSON(w, http.StatusOK, map[string]string{"id": id, "status": "evicted"})
	default:
		// Cancellation is asynchronous: the job turns "cancelled" once
		// the simulation goroutine observes its dead context.
		writeJSON(w, http.StatusAccepted, map[string]string{"id": id, "status": "cancelling"})
	}
}

// sweepRequest is the POST /v1/sweeps body: either an explicit spec list
// or a grid to expand (or both, concatenated).
type sweepRequest struct {
	Specs     []sweep.Spec `json:"specs,omitempty"`
	Grid      *sweep.Grid  `json:"grid,omitempty"`
	Normalize bool         `json:"normalize,omitempty"`
	// Search switches the request from an exhaustive sweep to an
	// adaptive search over the same candidates.
	Search *searchRequest `json:"search,omitempty"`
}

// sweepResponse reports per-spec summaries plus the aggregate table.
type sweepResponse struct {
	Count   int           `json:"count"`
	Results []sweepResult `json:"results"`
	Table   tableJSON     `json:"table"`
	Cache   sweep.Stats   `json:"cache"`
	Wall    float64       `json:"wall_seconds"`
}

type sweepResult struct {
	Spec    sweep.Spec  `json:"spec"`
	Summary *runSummary `json:"summary"`
}

type tableJSON struct {
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

func (s *Server) sweepResponseOf(specs []sweep.Spec, res *sweep.Result, normalize bool, wall float64, traces bool) *sweepResponse {
	out := &sweepResponse{Count: len(specs), Cache: s.eng.Stats(), Wall: wall}
	for i := range specs {
		sum := summarize(res.Results[i], traces)
		if normalize {
			sum.Normalized = res.Norms[i]
		}
		out.Results = append(out.Results, sweepResult{Spec: specs[i], Summary: sum})
	}
	tab := res.Table("sweep")
	out.Table = tableJSON{Header: tab.Header, Rows: tab.Rows}
	return out
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("decoding sweep: %w", err))
		return
	}
	specs := req.Specs
	if req.Grid != nil {
		specs = append(specs, req.Grid.Expand()...)
	}
	if len(specs) == 0 {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, errors.New("empty sweep: provide specs or a grid with mixes"))
		return
	}
	for _, sp := range specs {
		if err := s.eng.Validate(sp); err != nil {
			writeErr(w, http.StatusBadRequest, CodeBadSpec, err)
			return
		}
	}
	kind := sweep.JobSweep
	var strat search.Strategy
	if req.Search != nil {
		var err error
		if strat, err = req.Search.strategy(specs); err != nil {
			writeErr(w, http.StatusBadRequest, CodeBadSearch, err)
			return
		}
		kind = sweep.JobSearch
	}

	if wantFlag(r, "async") {
		job, err := s.jobs.Create(obs.WithRequestID(s.base, obs.RequestID(r.Context())), kind, specs)
		if err != nil {
			writeErr(w, http.StatusServiceUnavailable, CodeRegistryFull, err)
			return
		}
		go func() {
			start := time.Now()
			onEvent := func(ev sweep.Event) { job.Publish(sweep.JobEventFrom(ev)) }
			if strat != nil {
				res, err := search.Run(job.Context(), s.eng, strat, search.Options{
					Normalize: req.Normalize,
					OnEvent:   onEvent,
					MaxRounds: req.Search.MaxRounds,
					Metrics:   s.search,
				})
				if err != nil {
					job.Finish(nil, err)
					return
				}
				job.Finish(&searchPayload{res: res, wall: time.Since(start).Seconds()}, nil)
				return
			}
			res, err := s.eng.Sweep(job.Context(), specs, sweep.Options{
				Normalize: req.Normalize,
				OnEvent:   onEvent,
			})
			if err != nil {
				job.Finish(nil, err)
				return
			}
			job.Finish(&sweepPayload{res: res, normalize: req.Normalize, wall: time.Since(start).Seconds()}, nil)
		}()
		writeJSON(w, http.StatusAccepted, map[string]string{"id": job.ID()})
		return
	}

	// Synchronous: the sweep runs under the request context (client
	// disconnect cancels it) bounded by the server lifetime.
	ctx, cancel := mergeDone(r.Context(), s.base)
	defer cancel()
	start := time.Now()
	if strat != nil {
		res, err := search.Run(ctx, s.eng, strat, search.Options{
			Normalize: req.Normalize,
			MaxRounds: req.Search.MaxRounds,
			Metrics:   s.search,
		})
		if err != nil {
			s.writeServerErr(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, s.searchResponseOf(res, time.Since(start).Seconds(), wantFlag(r, "specs")))
		return
	}
	res, err := s.eng.Sweep(ctx, specs, sweep.Options{Normalize: req.Normalize})
	if err != nil {
		s.writeServerErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, s.sweepResponseOf(specs, res, req.Normalize, time.Since(start).Seconds(), wantFlag(r, "traces")))
}

// mergeDone returns a context that is cancelled when either parent is.
func mergeDone(a, b context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(a)
	stop := context.AfterFunc(b, cancel)
	return ctx, func() { stop(); cancel() }
}
