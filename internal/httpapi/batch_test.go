package httpapi

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dramtherm/internal/core"
	"dramtherm/internal/sim"
	"dramtherm/internal/sweep"
	"dramtherm/internal/sweep/remote"
)

// batchLines posts a batch request and decodes the NDJSON stream.
func batchLines(t *testing.T, url string, req remote.BatchRequest) []remote.BatchLine {
	t.Helper()
	resp := postJSON(t, url+"/v1/exec/batch", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	var lines []remote.BatchLine
	dec := json.NewDecoder(resp.Body)
	for {
		var line remote.BatchLine
		if err := dec.Decode(&line); err != nil {
			break
		}
		lines = append(lines, line)
	}
	return lines
}

// TestBatchExec: every spec of a shard comes back exactly once with a
// result and an outcome, duplicates deduplicate through the run cache,
// and the shard costs builds only for distinct keys.
func TestBatchExec(t *testing.T) {
	ts, builds, eng := newTestServer(t, 2, 0, Config{})
	specs := []sweep.Spec{
		{Mix: "W1", Policy: "DTM-TS"},
		{Mix: "W1", Policy: "DTM-BW"},
		{Mix: "W1", Policy: "DTM-TS"}, // duplicate of 0: hit or join, never a second build
	}
	lines := batchLines(t, ts.URL, remote.BatchRequest{Specs: specs})
	if len(lines) != len(specs) {
		t.Fatalf("got %d lines, want %d", len(lines), len(specs))
	}
	seen := make(map[int]remote.BatchLine)
	for _, l := range lines {
		if _, dup := seen[l.Index]; dup {
			t.Fatalf("index %d delivered twice", l.Index)
		}
		seen[l.Index] = l
	}
	for i, sp := range specs {
		l, ok := seen[i]
		if !ok {
			t.Fatalf("index %d never delivered", i)
		}
		if l.Error != "" || l.Result == nil {
			t.Fatalf("line %d: error=%q result=%v, want a result", i, l.Error, l.Result)
		}
		if l.Result.Seconds != 120 {
			t.Errorf("line %d: seconds = %v, want 120", i, l.Result.Seconds)
		}
		if want := string(eng.Key(sp)); l.Key != want {
			t.Errorf("line %d: key = %q, want %q", i, l.Key, want)
		}
	}
	if got := builds.Load(); got != 2 {
		t.Errorf("builds = %d, want 2 (duplicate spec must not simulate again)", got)
	}
}

// TestBatchExecErrorPaths: the endpoint's 4xx surface — malformed body,
// empty batch, an invalid spec (with its index), and an oversized shard.
func TestBatchExecErrorPaths(t *testing.T) {
	ts, _, _ := newTestServer(t, 2, 0, Config{MaxBatch: 2})
	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/exec/batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	if resp := post("{not json"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status = %d, want 400", resp.StatusCode)
	}
	if resp := post(`{"specs":[]}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status = %d, want 400", resp.StatusCode)
	}
	resp := post(`{"specs":[{"mix":"W1"},{"mix":"no-such-mix"}]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid spec: status = %d, want 400", resp.StatusCode)
	}
	var e struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Error.Code != CodeBadSpec {
		t.Errorf("invalid-spec error code = %q, want %q", e.Error.Code, CodeBadSpec)
	}
	if !strings.Contains(e.Error.Message, "spec 1") {
		t.Errorf("invalid-spec error %q does not name the offending index", e.Error.Message)
	}
	if resp := post(`{"specs":[{"mix":"W1"},{"mix":"W2"},{"mix":"W3"}]}`); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized shard: status = %d, want 413", resp.StatusCode)
	}
	if resp := post(fmt.Sprintf(`{"specs":[{"mix":"W1","cooling":"%s"}]}`, strings.Repeat("x", 9<<20))); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status = %d, want 413", resp.StatusCode)
	}
}

// TestBatchExecClientDisconnect: a coordinator that hangs up mid-stream
// (it re-planned the shard elsewhere) must cancel the shard's remaining
// simulations rather than burn the pool finishing them.
func TestBatchExecClientDisconnect(t *testing.T) {
	eng := sweep.NewEngine(core.NewSystem(core.DefaultConfig()), 2)
	var started, cancelled atomic.Int64
	release := make(chan struct{})
	eng.SetRunFunc(func(ctx context.Context, rs core.RunSpec) (sim.MEMSpotResult, error) {
		started.Add(1)
		select {
		case <-release:
			return sim.MEMSpotResult{Seconds: 100, Completed: 1}, nil
		case <-ctx.Done():
			cancelled.Add(1)
			return sim.MEMSpotResult{}, ctx.Err()
		}
	})
	api := New(context.Background(), eng, Config{Logf: func(string, ...any) {}})
	t.Cleanup(api.Close)
	ts := httptest.NewServer(api)
	t.Cleanup(ts.Close)

	body, err := json.Marshal(remote.BatchRequest{Specs: []sweep.Spec{
		{Mix: "W1", Policy: "DTM-TS"}, {Mix: "W1", Policy: "DTM-BW"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/exec/batch", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Both sims are in flight; hang up before any line is written.
	waitFor(t, func() bool { return started.Load() == 2 })
	cancel()
	waitFor(t, func() bool { return cancelled.Load() == 2 })
	close(release)
}

// TestBatchExecRunError: a deterministic per-spec failure produces a
// terminal error line for that spec while the rest of the shard streams
// results normally.
func TestBatchExecRunError(t *testing.T) {
	eng := sweep.NewEngine(core.NewSystem(core.DefaultConfig()), 2)
	eng.SetRunFunc(func(ctx context.Context, rs core.RunSpec) (sim.MEMSpotResult, error) {
		if rs.Policy.Name() == "DTM-BW" {
			return sim.MEMSpotResult{}, fmt.Errorf("boom")
		}
		return sim.MEMSpotResult{Seconds: 100, Completed: 1}, nil
	})
	api := New(context.Background(), eng, Config{Logf: func(string, ...any) {}})
	t.Cleanup(api.Close)
	ts := httptest.NewServer(api)
	t.Cleanup(ts.Close)

	lines := batchLines(t, ts.URL, remote.BatchRequest{Specs: []sweep.Spec{
		{Mix: "W1", Policy: "DTM-TS"}, {Mix: "W1", Policy: "DTM-BW"},
	}})
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	byIndex := map[int]remote.BatchLine{}
	for _, l := range lines {
		byIndex[l.Index] = l
	}
	if l := byIndex[0]; l.Error != "" || l.Result == nil {
		t.Errorf("spec 0: error=%q, want a result", l.Error)
	}
	if l := byIndex[1]; !strings.Contains(l.Error, "boom") || l.Result != nil {
		t.Errorf("spec 1: error=%q result=%v, want the boom error and no result", l.Error, l.Result)
	}
}

// TestBatchExecStreams: lines arrive incrementally as specs finish, not
// in one buffered flush at the end — that is what feeds live progress
// into the coordinator's event log and SSE.
func TestBatchExecStreams(t *testing.T) {
	// Two pool slots so the gated spec cannot starve the ungated one.
	eng := sweep.NewEngine(core.NewSystem(core.DefaultConfig()), 2)
	gate := make(chan struct{})
	eng.SetRunFunc(func(ctx context.Context, rs core.RunSpec) (sim.MEMSpotResult, error) {
		if rs.Policy.Name() == "DTM-BW" {
			// The second spec waits until the test has read the first line.
			select {
			case <-gate:
			case <-ctx.Done():
				return sim.MEMSpotResult{}, ctx.Err()
			}
		}
		return sim.MEMSpotResult{Seconds: 100, Completed: 1}, nil
	})
	api := New(context.Background(), eng, Config{})
	t.Cleanup(api.Close)
	ts := httptest.NewServer(api)
	t.Cleanup(ts.Close)

	resp := postJSON(t, ts.URL+"/v1/exec/batch", remote.BatchRequest{Specs: []sweep.Spec{
		{Mix: "W1", Policy: "DTM-TS"}, {Mix: "W1", Policy: "DTM-BW"},
	}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatalf("no first line before the gate opened: %v", sc.Err())
	}
	var first remote.BatchLine
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil {
		t.Fatalf("first line %q: %v", sc.Text(), err)
	}
	if first.Index != 0 || first.Result == nil {
		t.Fatalf("first line = %+v, want spec 0's result (spec 1 is gated)", first)
	}
	close(gate)
	if !sc.Scan() {
		t.Fatalf("no second line after the gate opened: %v", sc.Err())
	}
}

// waitFor polls cond until it holds or the test times out.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
