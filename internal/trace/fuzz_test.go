package trace

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzTraceDecode feeds arbitrary bytes through the chunked trace
// decoder twice — once in a single Feed, once split at fuzzer-chosen
// chunk boundaries — and asserts the decoder's three invariants:
//
//  1. no input panics, whatever the chunking;
//  2. chunking invariance: the split decode accepts exactly the streams
//     the one-shot decode accepts, yields byte-identical records, and
//     pends exactly the same unfinished tails (truncated records,
//     partial length prefixes, partial magic);
//  3. accepted records re-encode deterministically — both decodes
//     re-frame to the same bytes.
func FuzzTraceDecode(f *testing.F) {
	valid := encodeStream(sampleRecords())
	f.Add(valid, uint64(3))
	f.Add(valid[:len(valid)-5], uint64(1))                   // truncated mid-record
	f.Add(valid[:len(codecMagic)+1], uint64(9))              // truncated after length prefix
	f.Add([]byte(codecMagic), uint64(0))                     // magic only: valid empty stream
	f.Add([]byte(codecMagic[:4]), uint64(2))                 // partial magic
	f.Add([]byte("XXTDTRC1\nnope"), uint64(7))               // bad magic
	f.Add(append([]byte(codecMagic), 0x00), uint64(4))       // zero-length record
	f.Add(append([]byte(codecMagic), 0xff, 0xff, 0xff, 0xff, // oversized length prefix
		0xff, 0xff, 0xff, 0xff, 0xff, 0x01), uint64(5))
	f.Fuzz(func(t *testing.T, data []byte, split uint64) {
		var one ChunkDecoder
		all, oneErr := one.Feed(append([]byte(nil), data...), nil)
		oneFin := one.Finish()

		var two ChunkDecoder
		var chunked []Rates
		var twoErr error
		rng := rand.New(rand.NewSource(int64(split)))
		rest := data
		for len(rest) > 0 && twoErr == nil {
			n := 1 + rng.Intn(len(rest))
			chunk := append([]byte(nil), rest[:n]...) // decoder must not retain the caller's chunk
			chunked, twoErr = two.Feed(chunk, chunked)
			rest = rest[n:]
		}

		if (oneErr == nil) != (twoErr == nil) {
			t.Fatalf("error divergence: one-shot %v, chunked %v", oneErr, twoErr)
		}
		if oneErr != nil {
			return // both rejected: the records decoded before the error are best-effort
		}
		twoFin := two.Finish()
		if (oneFin == nil) != (twoFin == nil) {
			t.Fatalf("finish divergence: one-shot %v, chunked %v", oneFin, twoFin)
		}
		if one.Buffered() != two.Buffered() {
			t.Fatalf("pending bytes diverge: one-shot %d, chunked %d", one.Buffered(), two.Buffered())
		}
		if len(all) != len(chunked) {
			t.Fatalf("record count diverges: one-shot %d, chunked %d", len(all), len(chunked))
		}
		for i := range all {
			a, b := appendRecord(nil, all[i]), appendRecord(nil, chunked[i])
			if !bytes.Equal(a, b) {
				t.Fatalf("record %d re-encodes differently under chunking", i)
			}
		}
	})
}
