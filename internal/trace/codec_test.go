package trace

import (
	"bytes"
	"encoding/gob"
	"math"
	"strings"
	"testing"
)

// sampleRecords covers the encoding's edge shapes: +Inf bandwidth caps,
// MemOff points, empty combinations, multi-app maps.
func sampleRecords() []Rates {
	return []Rates{
		{
			Point:          DesignPoint{Apps: "mcf|mcf|swim", FreqGHz: 3.2, BWCapGBps: math.Inf(1)},
			PerApp:         map[string]AppRates{"mcf": {InstrPerSec: 1e9, IPCRef: 0.4, ReadGBps: 2, WriteGBps: 1, L2MissPerSec: 1e7, L2AccessPerSec: 1e8, MemBoundFrac: 0.7}, "swim": {InstrPerSec: 2e9}},
			TotalReadGBps:  6.5,
			TotalWriteGBps: 2.25,
			MeanLatencyNS:  183.5,
		},
		{
			Point:  DesignPoint{Apps: "art", FreqGHz: 2.0, BWCapGBps: 4.2},
			PerApp: map[string]AppRates{"art": {InstrPerSec: 5e8, MemBoundFrac: 0.9}},
		},
		{
			Point:  DesignPoint{Apps: "", FreqGHz: 0, BWCapGBps: math.Inf(1), MemOff: true},
			PerApp: map[string]AppRates{},
		},
	}
}

// encodeStream frames records the way Store.Save does.
func encodeStream(recs []Rates) []byte {
	buf := []byte(codecMagic)
	for _, r := range recs {
		buf = appendRecord(buf, r)
	}
	return buf
}

// ratesEqual compares two records bit-for-bit (NaN-safe: compares
// re-encoded bytes, which preserve float bit patterns).
func ratesEqual(a, b Rates) bool {
	return bytes.Equal(appendRecord(nil, a), appendRecord(nil, b))
}

// TestCodecRoundTrip saves a store and reloads it through chunk sizes
// small enough that every record spans multiple chunks.
func TestCodecRoundTrip(t *testing.T) {
	src := NewStore(nil)
	for _, r := range sampleRecords() {
		src.Put(r)
	}
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), codecMagic) {
		t.Fatal("Save did not write the framed magic")
	}
	// Determinism: a second Save produces identical bytes.
	var buf2 bytes.Buffer
	if err := src.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("Save is not deterministic")
	}

	old := loadChunkBytes
	loadChunkBytes = 7 // force records to span many chunk boundaries
	defer func() { loadChunkBytes = old }()

	dst := NewStore(nil)
	if err := dst.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != src.Len() {
		t.Fatalf("loaded %d records, want %d", dst.Len(), src.Len())
	}
	for _, want := range sampleRecords() {
		got, err := dst.Get(want.Point)
		if err != nil {
			t.Fatal(err)
		}
		if want.Point.MemOff {
			continue // Get short-circuits MemOff to Zero by design
		}
		if !ratesEqual(got, want) {
			t.Fatalf("round trip changed %v:\n got %+v\nwant %+v", want.Point, got, want)
		}
	}
}

// TestLegacyGobLoad ensures Load still reads streams written by the
// pre-framed gob Save, including its -1 encoding of +Inf caps.
func TestLegacyGobLoad(t *testing.T) {
	legacy := []storedRates{
		{Rates: Rates{Point: DesignPoint{Apps: "mcf", FreqGHz: 3.2, BWCapGBps: -1}, PerApp: map[string]AppRates{"mcf": {InstrPerSec: 1e9}}}, InfCap: true},
		{Rates: Rates{Point: DesignPoint{Apps: "art", FreqGHz: 2.0, BWCapGBps: 4.2}, PerApp: map[string]AppRates{"art": {}}}},
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(legacy); err != nil {
		t.Fatal(err)
	}
	s := NewStore(nil)
	if err := s.Load(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := s.Get(DesignPoint{Apps: "mcf", FreqGHz: 3.2, BWCapGBps: math.Inf(1)})
	if err != nil {
		t.Fatalf("legacy +Inf cap not restored: %v", err)
	}
	if r.PerApp["mcf"].InstrPerSec != 1e9 {
		t.Fatalf("legacy record corrupted: %+v", r)
	}
	if s.Len() != 2 {
		t.Fatalf("loaded %d legacy records, want 2", s.Len())
	}
}

// TestChunkDecoderSingleBytes drives the decoder one byte at a time —
// every boundary lands inside the magic, a length prefix, or a record.
func TestChunkDecoderSingleBytes(t *testing.T) {
	stream := encodeStream(sampleRecords())
	var dec ChunkDecoder
	var got []Rates
	var err error
	for i := range stream {
		got, err = dec.Feed(stream[i:i+1], got)
		if err != nil {
			t.Fatalf("byte %d: %v", i, err)
		}
	}
	if err := dec.Finish(); err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !ratesEqual(got[i], want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

// TestChunkDecoderErrors exercises the failure modes: bad magic,
// oversized length prefixes, corrupt payloads, truncated tails.
func TestChunkDecoderErrors(t *testing.T) {
	t.Run("bad magic", func(t *testing.T) {
		var dec ChunkDecoder
		if _, err := dec.Feed([]byte("NOTDTMTRACE"), nil); err == nil {
			t.Fatal("bad magic accepted")
		}
	})
	t.Run("oversized length", func(t *testing.T) {
		stream := append([]byte(codecMagic), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01)
		var dec ChunkDecoder
		if _, err := dec.Feed(stream, nil); err == nil {
			t.Fatal("oversized length accepted")
		}
	})
	t.Run("corrupt payload", func(t *testing.T) {
		stream := encodeStream(sampleRecords()[:1])
		stream[len(codecMagic)] += 3 // lie about the record length
		var dec ChunkDecoder
		if _, err := dec.Feed(stream, nil); err == nil {
			// A longer length may leave the tail pending instead; then
			// Finish must fail.
			if err := dec.Finish(); err == nil {
				t.Fatal("corrupt length accepted")
			}
		}
	})
	t.Run("truncated tail", func(t *testing.T) {
		stream := encodeStream(sampleRecords())
		var dec ChunkDecoder
		if _, err := dec.Feed(stream[:len(stream)-3], nil); err != nil {
			t.Fatalf("truncation should pend, not error: %v", err)
		}
		if err := dec.Finish(); err == nil {
			t.Fatal("truncated stream passed Finish")
		}
		if dec.Buffered() == 0 {
			t.Fatal("truncated bytes not buffered")
		}
	})
	t.Run("empty stream", func(t *testing.T) {
		var dec ChunkDecoder
		if err := dec.Finish(); err == nil {
			t.Fatal("empty stream passed Finish")
		}
	})
}
