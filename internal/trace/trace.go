// Package trace defines the interface between the two levels of the
// thermal simulator (§4.3.1, Fig. 4.1): the level-1 architectural
// simulator produces Rates records — steady-state performance and
// throughput for one combination of running applications under one DTM
// design point — and the level-2 simulator (MEMSpot) consumes them in
// 10 ms windows. A Store memoizes records and can persist them in the
// framed binary format of codec.go (legacy gob streams still load),
// mirroring the paper's precomputed trace sets Wi×D.
package trace

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
)

// DesignPoint is one point of the explored design space D: which
// applications are running (canonicalized), the core frequency, the
// memory bandwidth cap, and whether the memory is fully shut down.
type DesignPoint struct {
	// Apps is the canonical combination key: running application names,
	// sorted, joined with "|". Empty means no application is running.
	Apps string
	// FreqGHz is the core clock of all active cores.
	FreqGHz float64
	// BWCapGBps is the memory bandwidth cap; +Inf means uncapped.
	BWCapGBps float64
	// MemOff marks the fully-stopped memory state (DTM-TS / level L5).
	MemOff bool
}

// CanonApps builds the canonical Apps key from a set of running
// application names (empty strings are dropped).
func CanonApps(names []string) string {
	apps := make([]string, 0, len(names))
	for _, n := range names {
		if n != "" {
			apps = append(apps, n)
		}
	}
	sort.Strings(apps)
	return strings.Join(apps, "|")
}

// AppNames splits the canonical key back into names.
func (d DesignPoint) AppNames() []string {
	if d.Apps == "" {
		return nil
	}
	return strings.Split(d.Apps, "|")
}

// String renders the design point compactly.
func (d DesignPoint) String() string {
	cap := "inf"
	if !math.IsInf(d.BWCapGBps, 1) {
		cap = fmt.Sprintf("%.1f", d.BWCapGBps)
	}
	return fmt.Sprintf("{%s f=%.3g cap=%s off=%v}", d.Apps, d.FreqGHz, cap, d.MemOff)
}

// AppRates is the measured steady-state behaviour of one application
// instance within a combination. When the same name appears k times in a
// combination, the record is the per-instance average.
type AppRates struct {
	// InstrPerSec is the committed instruction rate.
	InstrPerSec float64
	// IPCRef is instructions per reference cycle (cycle at maximum
	// frequency), the quantity Eq. 3.6 uses.
	IPCRef float64
	// ReadGBps is demand+speculative read traffic attributable to the
	// instance; WriteGBps is its writeback traffic.
	ReadGBps  float64
	WriteGBps float64
	// L2MissPerSec and L2AccessPerSec describe last-level cache activity.
	L2MissPerSec   float64
	L2AccessPerSec float64
	// MemBoundFrac is the fraction of core cycles stalled on memory; the
	// level-2 simulator uses it to adjust instruction rates under phase
	// multipliers.
	MemBoundFrac float64
}

// Rates is the full level-1 record for one design point.
type Rates struct {
	Point DesignPoint
	// PerApp maps application name → per-instance rates.
	PerApp map[string]AppRates
	// Totals across all instances.
	TotalReadGBps  float64
	TotalWriteGBps float64
	MeanLatencyNS  float64
}

// TotalGBps returns read+write throughput.
func (r Rates) TotalGBps() float64 { return r.TotalReadGBps + r.TotalWriteGBps }

// Zero returns an all-idle record for the design point (used for MemOff
// and no-apps points without running the simulator).
func Zero(dp DesignPoint) Rates {
	pa := make(map[string]AppRates)
	for _, n := range dp.AppNames() {
		pa[n] = AppRates{}
	}
	return Rates{Point: dp, PerApp: pa}
}

// Builder computes a Rates record for a design point; the level-1
// simulator provides one.
type Builder interface {
	Build(dp DesignPoint) (Rates, error)
}

// BuilderFunc adapts a function to Builder.
type BuilderFunc func(dp DesignPoint) (Rates, error)

// Build implements Builder.
func (f BuilderFunc) Build(dp DesignPoint) (Rates, error) { return f(dp) }

// Store memoizes Rates by design point. It is safe for concurrent use:
// simultaneous Gets for the same unbuilt point share a single build
// (singleflight), while distinct points build in parallel.
type Store struct {
	mu       sync.Mutex
	builder  Builder
	recs     map[DesignPoint]Rates
	inflight map[DesignPoint]*build
	builds   int
	hits     int
	onBuild  func(Rates) // post-build hook; nil until SetOnBuild
}

// build tracks one in-flight level-1 simulation.
type build struct {
	done chan struct{}
	r    Rates
	err  error
}

// NewStore returns a store backed by b (may be nil for a read-only store
// filled via Load or Put).
func NewStore(b Builder) *Store {
	return &Store{
		builder:  b,
		recs:     make(map[DesignPoint]Rates),
		inflight: make(map[DesignPoint]*build),
	}
}

// Get returns the record for dp, building and memoizing it on first use.
// MemOff or empty-combination points short-circuit to Zero.
func (s *Store) Get(dp DesignPoint) (Rates, error) {
	if dp.MemOff || dp.Apps == "" || dp.FreqGHz <= 0 {
		return Zero(dp), nil
	}
	s.mu.Lock()
	if r, ok := s.recs[dp]; ok {
		s.hits++
		s.mu.Unlock()
		return r, nil
	}
	if fl, ok := s.inflight[dp]; ok {
		s.mu.Unlock()
		<-fl.done
		return fl.r, fl.err
	}
	b := s.builder
	if b == nil {
		s.mu.Unlock()
		return Rates{}, fmt.Errorf("trace: no record for %v and no builder", dp)
	}
	fl := &build{done: make(chan struct{})}
	s.inflight[dp] = fl
	s.mu.Unlock()

	r, err := b.Build(dp)
	if err != nil {
		err = fmt.Errorf("trace: building %v: %w", dp, err)
	}
	fl.r, fl.err = r, err
	s.mu.Lock()
	delete(s.inflight, dp)
	var hook func(Rates)
	if err == nil {
		s.recs[dp] = r
		s.builds++
		hook = s.onBuild
	}
	s.mu.Unlock()
	close(fl.done)
	if err != nil {
		return Rates{}, err
	}
	if hook != nil {
		hook(r)
	}
	return r, nil
}

// SetOnBuild registers fn to run after every successful level-1 build —
// freshly simulated records, not entries restored via Put/Load (so
// replaying a persisted log does not re-persist every record). fn runs
// outside the store lock on the builder's goroutine. Call before the
// store is in use; not synchronized with concurrent Get.
func (s *Store) SetOnBuild(fn func(Rates)) {
	s.mu.Lock()
	s.onBuild = fn
	s.mu.Unlock()
}

// Range calls fn for every memoized record until fn returns false. The
// record set is snapshotted under the lock, so fn itself runs lock-free.
func (s *Store) Range(fn func(Rates) bool) {
	s.mu.Lock()
	snap := make([]Rates, 0, len(s.recs))
	for _, r := range s.recs {
		snap = append(snap, r)
	}
	s.mu.Unlock()
	for _, r := range snap {
		if !fn(r) {
			return
		}
	}
}

// Put inserts a record directly (used by tests and by Load).
func (s *Store) Put(r Rates) {
	s.mu.Lock()
	s.recs[r.Point] = r
	s.mu.Unlock()
}

// PutBatch inserts a batch of records under one lock acquisition; Load
// uses it to insert each decoded chunk as it completes.
func (s *Store) PutBatch(rs []Rates) {
	s.mu.Lock()
	for _, r := range rs {
		s.recs[r.Point] = r
	}
	s.mu.Unlock()
}

// Len returns the number of memoized records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Counts returns how many records were built vs. served from memo.
func (s *Store) Counts() (builds, hits int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.builds, s.hits
}

// storedRates mirrors Rates for the legacy gob format with an explicit
// Inf encoding; Load still reads such streams.
type storedRates struct {
	Rates  Rates
	InfCap bool
}

// Save writes all records to w in the framed binary format (codec.go).
// Records are sorted by design point so the same record set always
// produces the same bytes.
func (s *Store) Save(w io.Writer) error {
	s.mu.Lock()
	recs := make([]Rates, 0, len(s.recs))
	for _, r := range s.recs {
		recs = append(recs, r)
	}
	s.mu.Unlock()
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i].Point, recs[j].Point
		if a.Apps != b.Apps {
			return a.Apps < b.Apps
		}
		if a.FreqGHz != b.FreqGHz {
			return a.FreqGHz < b.FreqGHz
		}
		if a.BWCapGBps != b.BWCapGBps {
			return a.BWCapGBps < b.BWCapGBps
		}
		return !a.MemOff && b.MemOff
	})
	buf := []byte(codecMagic)
	for _, r := range recs {
		buf = appendRecord(buf, r)
	}
	_, err := w.Write(buf)
	return err
}

// loadChunkBytes sizes the Load read buffer; a var so tests can shrink
// it to force records to span chunk boundaries.
var loadChunkBytes = 64 << 10

// Load reads records written by Save and inserts them. It sniffs the
// stream: framed streams decode incrementally in fixed-size chunks
// (each decoded batch inserted via PutBatch as it completes), legacy
// gob streams fall back to the old one-shot decoder.
func (s *Store) Load(r io.Reader) error {
	head := make([]byte, len(codecMagic))
	n, err := io.ReadFull(r, head)
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		return fmt.Errorf("trace: load: %w", err)
	}
	head = head[:n]
	if string(head) != codecMagic {
		return s.loadGob(io.MultiReader(bytes.NewReader(head), r))
	}

	var dec ChunkDecoder
	if _, err := dec.Feed(head, nil); err != nil {
		return fmt.Errorf("trace: load: %w", err)
	}
	chunk := make([]byte, loadChunkBytes)
	var batch []Rates
	for {
		n, rerr := r.Read(chunk)
		if n > 0 {
			batch, err = dec.Feed(chunk[:n], batch[:0])
			if err != nil {
				return fmt.Errorf("trace: load: %w", err)
			}
			s.PutBatch(batch)
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return fmt.Errorf("trace: load: %w", rerr)
		}
	}
	if err := dec.Finish(); err != nil {
		return fmt.Errorf("trace: load: %w", err)
	}
	return nil
}

// loadGob reads the legacy one-blob gob format.
func (s *Store) loadGob(r io.Reader) error {
	var recs []storedRates
	if err := gob.NewDecoder(r).Decode(&recs); err != nil {
		return fmt.Errorf("trace: load: %w", err)
	}
	for _, sr := range recs {
		if sr.InfCap {
			sr.Rates.Point.BWCapGBps = math.Inf(1)
		}
		s.Put(sr.Rates)
	}
	return nil
}
