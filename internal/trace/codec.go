// Framed binary trace codec. Store.Save historically wrote one gob blob
// holding every record, which forces the reader to materialize the whole
// trace set before inserting anything. The framed format instead writes
// an 8-byte magic followed by length-prefixed records, so a reader can
// decode in fixed-size chunks and insert each batch as it completes —
// ChunkDecoder accepts arbitrary chunk boundaries, including boundaries
// in the middle of a record, a length prefix, or the magic itself.
// Store.Load sniffs the magic and still reads legacy gob streams.
package trace

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// codecMagic identifies a framed trace stream (8 bytes, versioned).
const codecMagic = "DTMTRC1\n"

// maxRecordBytes bounds one framed record. A record holds a handful of
// floats per application plus the combination key; real records are a
// few hundred bytes, so anything near the cap is a corrupt or truncated
// length prefix and is rejected before allocating.
const maxRecordBytes = 1 << 20

// appendRecord frames one Rates record onto dst: uvarint payload length,
// then the payload. Map entries are written in sorted name order so the
// encoding of a record is deterministic.
func appendRecord(dst []byte, r Rates) []byte {
	payload := appendPayload(nil, r)
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	return append(dst, payload...)
}

func appendPayload(dst []byte, r Rates) []byte {
	dst = appendString(dst, r.Point.Apps)
	dst = appendFloat(dst, r.Point.FreqGHz)
	dst = appendFloat(dst, r.Point.BWCapGBps) // IEEE 754 carries +Inf as-is
	if r.Point.MemOff {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = appendFloat(dst, r.TotalReadGBps)
	dst = appendFloat(dst, r.TotalWriteGBps)
	dst = appendFloat(dst, r.MeanLatencyNS)
	names := make([]string, 0, len(r.PerApp))
	for n := range r.PerApp {
		names = append(names, n)
	}
	sort.Strings(names)
	dst = binary.AppendUvarint(dst, uint64(len(names)))
	for _, n := range names {
		a := r.PerApp[n]
		dst = appendString(dst, n)
		dst = appendFloat(dst, a.InstrPerSec)
		dst = appendFloat(dst, a.IPCRef)
		dst = appendFloat(dst, a.ReadGBps)
		dst = appendFloat(dst, a.WriteGBps)
		dst = appendFloat(dst, a.L2MissPerSec)
		dst = appendFloat(dst, a.L2AccessPerSec)
		dst = appendFloat(dst, a.MemBoundFrac)
	}
	return dst
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendFloat(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

// payloadReader walks one record payload with strict bounds checking.
type payloadReader struct {
	b   []byte
	off int
	err error
}

func (p *payloadReader) fail(what string) {
	if p.err == nil {
		p.err = fmt.Errorf("trace: truncated %s at offset %d", what, p.off)
	}
}

func (p *payloadReader) str(what string) string {
	if p.err != nil {
		return ""
	}
	n, sz := binary.Uvarint(p.b[p.off:])
	if sz <= 0 || n > uint64(len(p.b)-p.off-sz) {
		p.fail(what)
		return ""
	}
	p.off += sz
	s := string(p.b[p.off : p.off+int(n)])
	p.off += int(n)
	return s
}

func (p *payloadReader) count(what string) int {
	if p.err != nil {
		return 0
	}
	n, sz := binary.Uvarint(p.b[p.off:])
	if sz <= 0 || n > maxRecordBytes {
		p.fail(what)
		return 0
	}
	p.off += sz
	return int(n)
}

func (p *payloadReader) float(what string) float64 {
	if p.err != nil {
		return 0
	}
	if len(p.b)-p.off < 8 {
		p.fail(what)
		return 0
	}
	f := math.Float64frombits(binary.LittleEndian.Uint64(p.b[p.off:]))
	p.off += 8
	return f
}

// decodePayload parses one framed record payload. The payload must be
// consumed exactly: trailing bytes mean a corrupt length prefix.
func decodePayload(b []byte) (Rates, error) {
	p := &payloadReader{b: b}
	var r Rates
	r.Point.Apps = p.str("apps key")
	r.Point.FreqGHz = p.float("freq")
	r.Point.BWCapGBps = p.float("cap")
	if p.err == nil {
		if len(b)-p.off < 1 {
			p.fail("memoff flag")
		} else {
			r.Point.MemOff = b[p.off] != 0
			p.off++
		}
	}
	r.TotalReadGBps = p.float("total read")
	r.TotalWriteGBps = p.float("total write")
	r.MeanLatencyNS = p.float("latency")
	n := p.count("app count")
	if p.err == nil && n > len(b) { // every entry needs ≥ 1 byte
		p.fail("app count")
	}
	if p.err == nil {
		r.PerApp = make(map[string]AppRates, n)
		for i := 0; i < n && p.err == nil; i++ {
			name := p.str("app name")
			a := AppRates{
				InstrPerSec:    p.float("instr/s"),
				IPCRef:         p.float("ipc"),
				ReadGBps:       p.float("read"),
				WriteGBps:      p.float("write"),
				L2MissPerSec:   p.float("l2 miss"),
				L2AccessPerSec: p.float("l2 access"),
				MemBoundFrac:   p.float("membound"),
			}
			if p.err == nil {
				r.PerApp[name] = a
			}
		}
	}
	if p.err != nil {
		return Rates{}, p.err
	}
	if p.off != len(b) {
		return Rates{}, fmt.Errorf("trace: record has %d trailing bytes", len(b)-p.off)
	}
	return r, nil
}

// ChunkDecoder incrementally decodes a framed trace stream fed in
// arbitrary chunks. Bytes that do not yet form a complete record —
// including a chunk boundary inside the magic, a length prefix, or a
// record payload — are carried to the next Feed. The zero value is
// ready to use.
type ChunkDecoder struct {
	sawMagic bool
	buf      []byte // carry: unconsumed prefix of the stream
}

// Feed consumes chunk, appends every completed record to dst and
// returns it. A decode error is permanent: the stream is corrupt at a
// known offset, and further feeding cannot resynchronize.
func (d *ChunkDecoder) Feed(chunk []byte, dst []Rates) ([]Rates, error) {
	b := chunk
	if len(d.buf) > 0 {
		d.buf = append(d.buf, chunk...)
		b = d.buf
	}
	if !d.sawMagic {
		if len(b) < len(codecMagic) {
			d.carry(b)
			return dst, nil
		}
		if string(b[:len(codecMagic)]) != codecMagic {
			return dst, fmt.Errorf("trace: bad magic %q", b[:len(codecMagic)])
		}
		d.sawMagic = true
		b = b[len(codecMagic):]
	}
	for {
		n, sz := binary.Uvarint(b)
		if sz == 0 { // incomplete length prefix
			d.carry(b)
			return dst, nil
		}
		if sz < 0 || n > maxRecordBytes {
			return dst, fmt.Errorf("trace: record length %d exceeds %d-byte cap", n, maxRecordBytes)
		}
		if uint64(len(b)-sz) < n { // record spans the chunk boundary
			d.carry(b)
			return dst, nil
		}
		r, err := decodePayload(b[sz : sz+int(n)])
		if err != nil {
			return dst, err
		}
		dst = append(dst, r)
		b = b[sz+int(n):]
	}
}

// carry saves b as the undecoded prefix for the next Feed. It always
// copies: b may alias the caller's chunk, which the caller is free to
// reuse.
func (d *ChunkDecoder) carry(b []byte) {
	d.buf = append(d.buf[:0:0], b...)
}

// Buffered reports how many undecoded bytes are carried.
func (d *ChunkDecoder) Buffered() int { return len(d.buf) }

// Finish validates end-of-stream: it fails if the stream ended inside
// the magic, a length prefix, or a record.
func (d *ChunkDecoder) Finish() error {
	if !d.sawMagic {
		return fmt.Errorf("trace: stream ended before magic (%d bytes)", len(d.buf))
	}
	if len(d.buf) > 0 {
		return fmt.Errorf("trace: stream ended mid-record with %d bytes pending", len(d.buf))
	}
	return nil
}
