package trace

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestCanonApps(t *testing.T) {
	if got := CanonApps([]string{"b", "a", "", "c"}); got != "a|b|c" {
		t.Fatalf("CanonApps = %q", got)
	}
	if got := CanonApps(nil); got != "" {
		t.Fatalf("CanonApps(nil) = %q", got)
	}
	// Multiplicity is preserved.
	if got := CanonApps([]string{"a", "a"}); got != "a|a" {
		t.Fatalf("duplicates = %q", got)
	}
}

// Property: CanonApps is order-insensitive and idempotent through
// AppNames.
func TestCanonRoundTripProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		names := make([]string, len(raw))
		for i, v := range raw {
			names[i] = fmt.Sprintf("app%d", v%5)
		}
		key := CanonApps(names)
		dp := DesignPoint{Apps: key}
		return CanonApps(dp.AppNames()) == key
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZero(t *testing.T) {
	dp := DesignPoint{Apps: "a|b", MemOff: true}
	z := Zero(dp)
	if len(z.PerApp) != 2 {
		t.Fatalf("Zero PerApp = %v", z.PerApp)
	}
	if z.TotalGBps() != 0 {
		t.Fatal("Zero has traffic")
	}
}

func TestDesignPointString(t *testing.T) {
	dp := DesignPoint{Apps: "a", FreqGHz: 3.2, BWCapGBps: math.Inf(1)}
	if s := dp.String(); s == "" {
		t.Fatal("empty string")
	}
	capped := DesignPoint{Apps: "a", FreqGHz: 3.2, BWCapGBps: 6.4}
	if capped.String() == dp.String() {
		t.Fatal("cap not rendered")
	}
}

type countingBuilder struct {
	mu sync.Mutex
	n  int
}

func (b *countingBuilder) Build(dp DesignPoint) (Rates, error) {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
	r := Zero(dp)
	r.TotalReadGBps = 1
	return r, nil
}

func TestStoreMemoization(t *testing.T) {
	b := &countingBuilder{}
	s := NewStore(b)
	dp := DesignPoint{Apps: "swim", FreqGHz: 3.2, BWCapGBps: math.Inf(1)}
	for i := 0; i < 5; i++ {
		if _, err := s.Get(dp); err != nil {
			t.Fatal(err)
		}
	}
	if b.n != 1 {
		t.Fatalf("builder called %d times", b.n)
	}
	builds, hits := s.Counts()
	if builds != 1 || hits != 4 {
		t.Fatalf("counts = %d/%d", builds, hits)
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestStoreShortCircuits(t *testing.T) {
	b := &countingBuilder{}
	s := NewStore(b)
	for _, dp := range []DesignPoint{
		{Apps: "swim", MemOff: true, FreqGHz: 3.2},
		{Apps: "", FreqGHz: 3.2},
		{Apps: "swim", FreqGHz: 0},
	} {
		r, err := s.Get(dp)
		if err != nil {
			t.Fatal(err)
		}
		if r.TotalGBps() != 0 {
			t.Fatalf("%v produced traffic", dp)
		}
	}
	if b.n != 0 {
		t.Fatal("short-circuit points invoked the builder")
	}
}

func TestStoreNoBuilder(t *testing.T) {
	s := NewStore(nil)
	if _, err := s.Get(DesignPoint{Apps: "swim", FreqGHz: 3.2}); err == nil {
		t.Fatal("missing builder not reported")
	}
	// Put makes the record available without a builder.
	r := Zero(DesignPoint{Apps: "swim", FreqGHz: 3.2})
	s.Put(r)
	if _, err := s.Get(r.Point); err != nil {
		t.Fatalf("Put record not served: %v", err)
	}
}

type failingBuilder struct{}

func (failingBuilder) Build(DesignPoint) (Rates, error) {
	return Rates{}, errors.New("boom")
}

func TestStoreBuilderError(t *testing.T) {
	s := NewStore(failingBuilder{})
	if _, err := s.Get(DesignPoint{Apps: "swim", FreqGHz: 3.2}); err == nil {
		t.Fatal("builder error swallowed")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := NewStore(nil)
	inf := DesignPoint{Apps: "a|b", FreqGHz: 3.2, BWCapGBps: math.Inf(1)}
	capped := DesignPoint{Apps: "a", FreqGHz: 2.4, BWCapGBps: 6.4}
	r1 := Zero(inf)
	r1.TotalReadGBps = 12.5
	r1.PerApp["a"] = AppRates{InstrPerSec: 1e9, MemBoundFrac: 0.8}
	r2 := Zero(capped)
	r2.MeanLatencyNS = 150
	s.Put(r1)
	s.Put(r2)

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore(nil)
	if err := s2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get(inf)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalReadGBps != 12.5 || got.PerApp["a"].InstrPerSec != 1e9 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if !math.IsInf(got.Point.BWCapGBps, 1) {
		t.Fatal("Inf cap not restored")
	}
	got2, err := s2.Get(capped)
	if err != nil || got2.MeanLatencyNS != 150 {
		t.Fatalf("capped record: %+v, %v", got2, err)
	}
	// Corrupt input errors cleanly.
	if err := NewStore(nil).Load(bytes.NewBufferString("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
}

// slowBuilder widens the race window so concurrent Gets for the same
// unbuilt point genuinely overlap.
type slowBuilder struct {
	countingBuilder
	gate chan struct{}
}

func (b *slowBuilder) Build(dp DesignPoint) (Rates, error) {
	<-b.gate
	return b.countingBuilder.Build(dp)
}

// TestStoreSingleflight checks simultaneous Gets for one unbuilt design
// point share a single level-1 build.
func TestStoreSingleflight(t *testing.T) {
	b := &slowBuilder{gate: make(chan struct{})}
	s := NewStore(b)
	dp := DesignPoint{Apps: "swim", FreqGHz: 3.2, BWCapGBps: math.Inf(1)}
	const waiters = 16
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := s.Get(dp)
			if err != nil {
				t.Error(err)
			}
			if r.TotalReadGBps != 1 {
				t.Errorf("bad record: %+v", r)
			}
		}()
	}
	close(b.gate) // release all; only one goroutine is inside Build
	wg.Wait()
	if b.n != 1 {
		t.Fatalf("builder called %d times, want 1", b.n)
	}
}

func TestStoreConcurrent(t *testing.T) {
	b := &countingBuilder{}
	s := NewStore(b)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			dp := DesignPoint{Apps: fmt.Sprintf("app%d", i%4), FreqGHz: 3.2}
			for j := 0; j < 100; j++ {
				if _, err := s.Get(dp); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if s.Len() != 4 {
		t.Fatalf("len = %d", s.Len())
	}
}
