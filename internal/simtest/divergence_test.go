package simtest

import (
	"context"
	"testing"

	"dramtherm/internal/core"
	"dramtherm/internal/fbconfig"
	"dramtherm/internal/sim"
	"dramtherm/internal/sweep/prefix"
	"dramtherm/internal/trace"
)

// hotLimits are tightened so a CI-sized run — whose AMB climbs from
// ≈100.5 °C to ≈100.9 °C — crosses the first emergency boundary
// (AMBTDP − 2) mid-run: the group stays cool (and shareable) for its
// first decisions, then the policies throttle differently and diverge.
var hotLimits = fbconfig.ThermalLimits{AMBTDP: 102.8, DRAMTDP: 85, AMBTRP: 100.85, DRAMTRP: 84}

// divergencePolicies spans the mechanism space: shutdown (TS), bandwidth
// cap (BW), core gating (ACG), DVFS (CDVFS), combined, and the
// never-throttling baseline.
var divergencePolicies = []string{"No-limit", "DTM-TS", "DTM-BW", "DTM-ACG", "DTM-CDVFS", "DTM-COMB"}

// specBuilder adapts one simtest Spec to the prefix.Builder seam: every
// run shares one synthetic trace store, and the policy comes from the
// RunSpec (the sharer constructs a fresh one per attempt via newRun).
type specBuilder struct {
	base  Spec
	store *trace.Store
}

func (b specBuilder) NewRun(rs core.RunSpec) (*sim.MEMSpot, error) {
	// The base policy name is a placeholder — the built config runs under
	// the RunSpec's policy instance.
	b.base.Policy = "No-limit"
	cfg, err := b.base.Config(false)
	if err != nil {
		return nil, err
	}
	cfg.Policy = rs.Policy
	return sim.NewMEMSpot(cfg, b.store)
}

// newRunFor returns the sharer's newRun callback for one policy name: a
// fresh stateful policy instance on every call.
func newRunFor(s Spec, policy string) func() (core.RunSpec, error) {
	return func() (core.RunSpec, error) {
		s.Policy = policy
		cfg, err := s.Config(false)
		if err != nil {
			return core.RunSpec{}, err
		}
		return core.RunSpec{Policy: cfg.Policy}, nil
	}
}

// runShared executes every policy for spec through one sharer group and
// returns the per-policy results plus the sharer's stats.
func runShared(t *testing.T, spec Spec, store *trace.Store) (map[string]sim.MEMSpotResult, prefix.Stats) {
	t.Helper()
	sharer := prefix.New(specBuilder{base: spec, store: store})
	out := make(map[string]sim.MEMSpotResult, len(divergencePolicies))
	for _, p := range divergencePolicies {
		res, err := sharer.Run(context.Background(), "slice", newRunFor(spec, p))
		if err != nil {
			t.Fatalf("%s via sharer: %v", p, err)
		}
		out[p] = res
	}
	return out, sharer.Stats()
}

// runColdAll executes every policy for spec as plain cold replays over
// the same store.
func runColdAll(t *testing.T, spec Spec, store *trace.Store) map[string]sim.MEMSpotResult {
	t.Helper()
	out := make(map[string]sim.MEMSpotResult, len(divergencePolicies))
	for _, p := range divergencePolicies {
		s := spec
		s.Policy = p
		cfg, err := s.Config(false)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.RunMix(cfg, store)
		if err != nil {
			t.Fatalf("%s cold: %v", p, err)
		}
		out[p] = res
	}
	return out
}

// TestDivergenceDifferential is the divergence-point differential suite:
// seeded random workloads run every policy slice both ways — cold replay
// and checkpoint-resume through the prefix sharer — and every result
// must match at 0 ULP: bit-identical report-table inputs, bit-identical
// trajectories. Limits are tightened on half the specs so followers
// exercise the checkpoint-restore path, not just full result reuse.
func TestDivergenceDifferential(t *testing.T) {
	n := 4
	if testing.Short() {
		n = 2
	}
	for i := 0; i < n; i++ {
		spec := Spec{
			MixName:    []string{"W1", "W4", "W7", "W3"}[i%4],
			Replicas:   1,
			InstrScale: 0.004,
			MaxSeconds: 2000,
		}
		hot := i%2 == 0
		if hot {
			spec.Limits = hotLimits
		}
		store := trace.NewStore(trace.BuilderFunc(SyntheticRates))
		cold := runColdAll(t, spec, store)
		shared, st := runShared(t, spec, store)
		for _, p := range divergencePolicies {
			if _, err := CompareResults(cold[p], shared[p], 0); err != nil {
				t.Fatalf("spec %d (%s, hot=%v) policy %s: shared diverges from cold: %v",
					i, spec.MixName, hot, p, err)
			}
		}
		if st.Leaders != 1 || st.FullReuse+st.Resumed+st.Cold != int64(len(divergencePolicies))-1 {
			t.Fatalf("spec %d: implausible sharer stats %+v", i, st)
		}
		if hot && st.Resumed == 0 {
			t.Errorf("spec %d (%s): tightened limits produced no checkpoint resume — "+
				"the differential is not exercising the restore path: %+v", i, spec.MixName, st)
		}
		if st.StepsSaved == 0 {
			t.Errorf("spec %d: sharing saved no timesteps: %+v", i, st)
		}
		t.Logf("spec %d %-3s hot=%-5v: %+v", i, spec.MixName, hot, st)
	}
}

// TestDivergencePointMatchesLockstep is the property test for the probe:
// the first divergence index DivergencePoint finds from the leader's log
// must equal the first index at which two brute-force lockstep cold runs
// — leader policy and follower policy, full simulations each — actually
// record different actions. Inputs must agree up to that index, which is
// the induction step the whole resume scheme rests on.
func TestDivergencePointMatchesLockstep(t *testing.T) {
	spec := Spec{
		MixName:    "W1",
		Replicas:   1,
		InstrScale: 0.004,
		MaxSeconds: 2000,
		Limits:     hotLimits,
	}
	store := trace.NewStore(trace.BuilderFunc(SyntheticRates))

	record := func(policy string) []prefix.DecisionRecord {
		s := spec
		s.Policy = policy
		cfg, err := s.Config(false)
		if err != nil {
			t.Fatal(err)
		}
		rec := prefix.NewRecorder(cfg.Policy)
		cfg.Policy = rec
		if _, err := sim.RunMix(cfg, store); err != nil {
			t.Fatalf("%s under recorder: %v", policy, err)
		}
		return rec.Log()
	}
	logs := make(map[string][]prefix.DecisionRecord, len(divergencePolicies))
	for _, p := range divergencePolicies {
		logs[p] = record(p)
		if len(logs[p]) == 0 {
			t.Fatalf("%s recorded no decisions", p)
		}
	}

	var pairs, diverged int
	for _, lead := range divergencePolicies {
		for _, follow := range divergencePolicies {
			if lead == follow {
				continue
			}
			pairs++
			la, lb := logs[lead], logs[follow]
			brute := len(la)
			if len(lb) < brute {
				brute = len(lb)
			}
			for i := 0; i < brute; i++ {
				if la[i].Act != lb[i].Act {
					brute = i
					break
				}
			}
			s := spec
			s.Policy = follow
			cfg, err := s.Config(false)
			if err != nil {
				t.Fatal(err)
			}
			if k := prefix.DivergencePoint(la, cfg.Policy); k != brute {
				t.Errorf("%s vs %s: DivergencePoint %d, lockstep brute force %d", lead, follow, k, brute)
			}
			if brute < len(la) {
				diverged++
			}
			for i := 0; i < brute && i < len(lb); i++ {
				if la[i].In != lb[i].In {
					t.Fatalf("%s vs %s: inputs diverge at %d before actions do — the induction premise is broken", lead, follow, i)
				}
			}
		}
	}
	if diverged == 0 {
		t.Fatalf("no pair of %d diverged — tighten the limits so the property test has teeth", pairs)
	}
}
