// Package benchcases holds the canonical per-timestep hot-loop
// benchmarks of the simulator core in importable form. Each case is a
// plain func(*testing.B) so the same body is (a) registered as a
// regular benchmark by the *_test.go wrappers in the packages under
// test and (b) driven programmatically by cmd/benchsnap via
// testing.Benchmark to produce the pinned BENCH_*.json snapshots. One
// body, two consumers — the snapshot can never drift from what
// `go test -bench` measures.
//
// The cases deliberately measure the per-timestep units, not end-to-end
// experiments (bench_test.go at the repo root covers those): the
// thermal RC update, one level-1 machine tick, one memory-controller
// scheduling tick, and one level-2 MEMSpot window.
package benchcases

import (
	"testing"

	"dramtherm/internal/cpu"
	"dramtherm/internal/dtm"
	"dramtherm/internal/fbconfig"
	"dramtherm/internal/memctrl"
	"dramtherm/internal/power"
	"dramtherm/internal/sim"
	"dramtherm/internal/simtest"
	"dramtherm/internal/thermal"
	"dramtherm/internal/trace"
	"dramtherm/internal/workload"
)

// Names lists the pinned benchmark cases in snapshot order.
func Names() []string {
	return []string{"ThermalStep", "Level1Timestep", "MemctrlTick", "MEMSpotWindow"}
}

// ByName returns the benchmark body for a pinned case name.
func ByName(name string) (func(*testing.B), bool) {
	switch name {
	case "ThermalStep":
		return ThermalStep, true
	case "Level1Timestep":
		return Level1Timestep, true
	case "MemctrlTick":
		return MemctrlTick, true
	case "MEMSpotWindow":
		return MEMSpotWindow, true
	}
	return nil, false
}

// ThermalStep measures one thermal timestep of the level-2 loop: the
// ambient RC update plus Model.Advance over a 4-DIMM channel — the
// Eq. 3.5 work MEMSpot performs every 10 ms window.
func ThermalStep(b *testing.B) {
	c := fbconfig.CoolingAOHS15
	idle := power.DIMMPower{
		AMB:  fbconfig.DefaultAMBPower.IdleOther,
		DRAM: fbconfig.DefaultDRAMPower.Static,
	}
	m := thermal.NewModel(c, 50, 4, idle)
	am := thermal.NewAmbientModel(fbconfig.AmbientIntegrated, 45)
	pw := []power.DIMMPower{
		{AMB: 6.5, DRAM: 1.8}, {AMB: 6.2, DRAM: 1.7},
		{AMB: 6.0, DRAM: 1.6}, {AMB: 5.8, DRAM: 1.5},
	}
	act := []thermal.CoreActivity{
		{Volt: 1.55, IPC: 0.6}, {Volt: 1.55, IPC: 0.5},
		{Volt: 1.55, IPC: 0.4}, {Volt: 1.55, IPC: 0.3},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Ambient = am.Advance(act, 0.01)
		if err := m.Advance(pw, 0.01); err != nil {
			b.Fatal(err)
		}
	}
}

// Level1Timestep measures one tick of the level-1 machine (one DDR2
// clock): four cores running the W1 mix over the shared L2 and the
// FBDIMM memory system, in steady state after warmup.
func Level1Timestep(b *testing.B) {
	mc := newW1Machine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mc.Step()
	}
}

// MemctrlTick measures the controller scheduling loop under a full
// transaction queue — the per-DDR2-clock cost of the level-1 memory
// system in the backlogged regime. It uses the production calling
// convention of the level-1 loop: TickAppend into a reused completion
// buffer, with completed Request structs recycled into new enqueues
// (as cpu.Multicore does).
func MemctrlTick(b *testing.B) {
	c, err := memctrl.New(memctrl.DefaultConfig(fbconfig.DefaultSimParams))
	if err != nil {
		b.Fatal(err)
	}
	addr := uint64(0)
	now := 0.0
	var comps []memctrl.Completion
	var free []*memctrl.Request
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for !c.Full() {
			var r *memctrl.Request
			if n := len(free); n > 0 {
				r, free = free[n-1], free[:n-1]
				*r = memctrl.Request{}
			} else {
				r = new(memctrl.Request)
			}
			r.Addr = addr
			c.Enqueue(r, now)
			addr += 64
		}
		comps = c.TickAppend(now, comps[:0])
		for _, comp := range comps {
			free = append(free, comp.Req)
		}
		now += 3
	}
}

// MEMSpotWindow measures one 10 ms window of the level-2 simulator —
// rate lookup, job progress, power evaluation, thermal advance, DTM
// bookkeeping — over a synthetic rate store, so the cost of the level-2
// per-timestep loop is isolated from level-1 trace construction.
func MEMSpotWindow(b *testing.B) {
	ms := newW1MEMSpot(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ms.StepWindow(); err != nil {
			b.Fatal(err)
		}
		if ms.Done() {
			b.Fatal("benchmark batch drained; raise Replicas")
		}
	}
}

// newW1Machine builds a warmed-up level-1 machine running W1.
func newW1Machine(b *testing.B) *cpu.Multicore {
	b.Helper()
	params := fbconfig.DefaultSimParams
	mem, err := memctrl.New(memctrl.DefaultConfig(params))
	if err != nil {
		b.Fatal(err)
	}
	cfg := cpu.Config{
		Cores:      params.Cores,
		MaxFreqGHz: params.DVFS[0].FreqGHz,
		L2Domain:   make([]int, params.Cores),
		Params:     params,
	}
	mc, err := cpu.New(cfg, mem, 1)
	if err != nil {
		b.Fatal(err)
	}
	mc.SetFreq(cfg.MaxFreqGHz)
	mix, err := workload.MixByName("W1")
	if err != nil {
		b.Fatal(err)
	}
	for i, n := range mix.Apps {
		p, err := workload.ByName(n)
		if err != nil {
			b.Fatal(err)
		}
		mc.Assign(i, p, 1)
	}
	mc.RunFor(3e5) // warm the L2 and fill the memory pipeline
	return mc
}

// newW1MEMSpot builds a level-2 run over a synthetic rate store big
// enough that StepWindow never drains the batch within a benchmark.
// The rate builder is simtest.SyntheticRates — the same records the
// differential workloads run on.
func newW1MEMSpot(b *testing.B) *sim.MEMSpot {
	b.Helper()
	mix, err := workload.MixByName("W1")
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.MEMSpotConfig{
		Mix:      mix,
		Replicas: 1 << 20, // effectively inexhaustible
		Policy:   dtm.NewACG(dtm.DefaultLevels(), 4),
	}
	ms, err := sim.NewMEMSpot(cfg, trace.NewStore(trace.BuilderFunc(simtest.SyntheticRates)))
	if err != nil {
		b.Fatal(err)
	}
	return ms
}
