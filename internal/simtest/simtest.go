// Package simtest is the differential test harness guarding the
// simulator fast path. The hot loop (cached decay factors in
// internal/thermal, reused buffers and the design-point memo in
// internal/sim, the boxing-free completion heap in internal/memctrl)
// is an optimization of a retained reference path — package-level
// thermal.Step / Model.AdvanceExact — and this package provides the
// machinery that proves the two stay interchangeable: seeded random
// workload configurations run through both paths end to end, results
// compared field by field with temperature trajectories held to the
// documented ULP bound (docs/PERFORMANCE.md), and the sweep-level
// report tables compared byte for byte.
package simtest

import (
	"fmt"
	"math"
	"math/rand"

	"dramtherm/internal/dtm"
	"dramtherm/internal/fbconfig"
	"dramtherm/internal/sim"
	"dramtherm/internal/trace"
	"dramtherm/internal/workload"
)

// MaxTrajectoryULP is the documented agreement bound between the fast
// and exact thermal paths, in units in the last place per recorded
// sample. The two paths agree bit for bit today (the cached factor is
// computed by the identical expression); the contract leaves 1 ULP of
// headroom so a future reassociation (e.g. FMA) is a documented event,
// not silent drift.
const MaxTrajectoryULP = 1

// ULPDiff returns the distance between a and b in representable
// float64 steps: 0 means bit-identical (or both zero of either sign),
// 1 means adjacent floats. NaNs and differing infinities compare as
// the maximum distance.
func ULPDiff(a, b float64) uint64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		if math.IsNaN(a) && math.IsNaN(b) {
			return 0
		}
		return math.MaxUint64
	}
	x, y := ulpOrdinal(a), ulpOrdinal(b)
	if x > y {
		return x - y
	}
	return y - x
}

// ulpOrdinal maps a float64 onto an unsigned scale that is monotone in
// the real-number ordering, so ordinal distance counts representable
// steps across the whole line (including through zero).
func ulpOrdinal(f float64) uint64 {
	u := math.Float64bits(f)
	if u&(1<<63) != 0 {
		return ^u // negative range, reversed
	}
	return u | 1<<63
}

// CompareTrajectories checks two recorded temperature traces sample by
// sample against the ULP bound and returns the maximum observed
// distance.
func CompareTrajectories(name string, fast, exact []float64, maxULP uint64) (uint64, error) {
	if len(fast) != len(exact) {
		return math.MaxUint64, fmt.Errorf("%s: %d samples fast vs %d exact", name, len(fast), len(exact))
	}
	var worst uint64
	for i := range fast {
		d := ULPDiff(fast[i], exact[i])
		if d > worst {
			worst = d
		}
		if d > maxULP {
			return worst, fmt.Errorf("%s[%d]: fast %v vs exact %v differ by %d ULP (bound %d)",
				name, i, fast[i], exact[i], d, maxULP)
		}
	}
	return worst, nil
}

// CompareResults compares a fast-path MEMSpot result against the
// exact-path reference: counters and residency exactly, float scalars
// and the three temperature trajectories within maxULP. It returns the
// worst trajectory distance observed.
func CompareResults(fast, exact sim.MEMSpotResult, maxULP uint64) (uint64, error) {
	if fast.Completed != exact.Completed || fast.TimedOut != exact.TimedOut ||
		fast.Overshoots != exact.Overshoots {
		return 0, fmt.Errorf("counters diverge: completed %d/%d, timedout %v/%v, overshoots %d/%d",
			fast.Completed, exact.Completed, fast.TimedOut, exact.TimedOut,
			fast.Overshoots, exact.Overshoots)
	}
	scalars := []struct {
		name        string
		fast, exact float64
	}{
		{"Seconds", fast.Seconds, exact.Seconds},
		{"ReadGB", fast.ReadGB, exact.ReadGB},
		{"WriteGB", fast.WriteGB, exact.WriteGB},
		{"L2Misses", fast.L2Misses, exact.L2Misses},
		{"L2Accesses", fast.L2Accesses, exact.L2Accesses},
		{"MemEnergyJ", fast.MemEnergyJ, exact.MemEnergyJ},
		{"CPUEnergyJ", fast.CPUEnergyJ, exact.CPUEnergyJ},
		{"MaxAMB", fast.MaxAMB, exact.MaxAMB},
		{"MaxDRAM", fast.MaxDRAM, exact.MaxDRAM},
		{"TimeMemOff", fast.TimeMemOff, exact.TimeMemOff},
	}
	for _, s := range scalars {
		if d := ULPDiff(s.fast, s.exact); d > maxULP {
			return 0, fmt.Errorf("%s: fast %v vs exact %v differ by %d ULP (bound %d)",
				s.name, s.fast, s.exact, d, maxULP)
		}
	}
	if err := compareResidency("TimeAtCores", fast.TimeAtCores, exact.TimeAtCores, maxULP); err != nil {
		return 0, err
	}
	if err := compareResidency("TimeAtFreq", fast.TimeAtFreq, exact.TimeAtFreq, maxULP); err != nil {
		return 0, err
	}
	var worst uint64
	for _, tr := range []struct {
		name        string
		fast, exact []float64
	}{
		{"AMBTrace", fast.AMBTrace, exact.AMBTrace},
		{"DRAMTrace", fast.DRAMTrace, exact.DRAMTrace},
		{"AmbientTrace", fast.AmbientTrace, exact.AmbientTrace},
	} {
		w, err := CompareTrajectories(tr.name, tr.fast, tr.exact, maxULP)
		if w > worst {
			worst = w
		}
		if err != nil {
			return worst, err
		}
	}
	return worst, nil
}

func compareResidency(name string, fast, exact map[int]float64, maxULP uint64) error {
	if len(fast) != len(exact) {
		return fmt.Errorf("%s: %d keys fast vs %d exact", name, len(fast), len(exact))
	}
	for k, fv := range fast {
		ev, ok := exact[k]
		if !ok {
			return fmt.Errorf("%s[%d]: only in fast result", name, k)
		}
		if d := ULPDiff(fv, ev); d > maxULP {
			return fmt.Errorf("%s[%d]: fast %v vs exact %v differ by %d ULP", name, k, fv, ev, d)
		}
	}
	return nil
}

// Spec describes one randomized differential workload by value, so the
// harness can instantiate it twice — DTM policies are stateful, and the
// fast and exact runs must not share one.
type Spec struct {
	MixName    string
	Policy     string // DTM-TS, DTM-BW, DTM-ACG, DTM-CDVFS, DTM-COMB
	Replicas   int
	InstrScale float64
	SensorSeed int64 // nonzero: noisy Chapter 5 sensors
	MaxSeconds float64
	// Limits overrides the thermal limits when nonzero. The divergence
	// suite tightens them so short runs actually cross the emergency
	// levels and policies throttle — and therefore diverge.
	Limits fbconfig.ThermalLimits
}

// RandomSpec draws a workload specification from r. Successive draws
// from one seeded source cover every paper mix, all five table-driven
// policies, noisy and noiseless sensors, and a spread of batch scales.
func RandomSpec(r *rand.Rand) Spec {
	s := Spec{
		MixName:    workload.Mixes[r.Intn(len(workload.Mixes))].Name,
		Replicas:   1 + r.Intn(2),
		InstrScale: 0.002 + 0.006*r.Float64(),
		MaxSeconds: 2000,
	}
	policies := []string{"DTM-TS", "DTM-BW", "DTM-ACG", "DTM-CDVFS", "DTM-COMB"}
	s.Policy = policies[r.Intn(len(policies))]
	if r.Intn(2) == 1 {
		s.SensorSeed = 1 + r.Int63n(1<<30)
	}
	return s
}

// Config materializes the spec into a runnable MEMSpot configuration
// with a freshly constructed policy. exact selects the retained
// math.Exp thermal path.
func (s Spec) Config(exact bool) (sim.MEMSpotConfig, error) {
	mix, err := workload.MixByName(s.MixName)
	if err != nil {
		return sim.MEMSpotConfig{}, err
	}
	cores := fbconfig.DefaultSimParams.Cores
	lim := fbconfig.DefaultLimits
	if s.Limits.AMBTDP != 0 {
		lim = s.Limits
	}
	levels := dtm.LevelsForTDP(lim.AMBTDP, lim.DRAMTDP)
	var pol dtm.Policy
	switch s.Policy {
	case "No-limit":
		pol = &dtm.NoLimit{Cores: cores}
	case "DTM-TS":
		pol = dtm.NewTS(lim, cores)
	case "DTM-BW":
		pol = dtm.NewBW(levels, cores)
	case "DTM-ACG":
		pol = dtm.NewACG(levels, cores)
	case "DTM-CDVFS":
		pol = dtm.NewCDVFS(levels, cores)
	case "DTM-COMB":
		pol = dtm.NewCOMB(levels, cores)
	default:
		return sim.MEMSpotConfig{}, fmt.Errorf("simtest: unknown policy %q", s.Policy)
	}
	return sim.MEMSpotConfig{
		Mix:          mix,
		Replicas:     s.Replicas,
		Policy:       pol,
		Cooling:      fbconfig.CoolingAOHS15,
		Ambient:      fbconfig.AmbientIsolated,
		InstrScale:   s.InstrScale,
		MaxSeconds:   s.MaxSeconds,
		SensorSeed:   s.SensorSeed,
		Limits:       s.Limits,
		ExactThermal: exact,
	}, nil
}

// RunBoth executes the spec through the fast path and the exact path,
// each with a fresh policy and a fresh synthetic rate store, and
// returns both results.
func RunBoth(s Spec) (fast, exact sim.MEMSpotResult, err error) {
	for i, isExact := range []bool{false, true} {
		cfg, cerr := s.Config(isExact)
		if cerr != nil {
			return fast, exact, cerr
		}
		res, rerr := sim.RunMix(cfg, trace.NewStore(trace.BuilderFunc(SyntheticRates)))
		if rerr != nil {
			return fast, exact, fmt.Errorf("simtest: %+v (exact=%v): %w", s, isExact, rerr)
		}
		if i == 0 {
			fast = res
		} else {
			exact = res
		}
	}
	return fast, exact, nil
}

// SyntheticRates returns deterministic plausible level-1 rates without
// running the cycle-driven simulator, mirroring the shape of real W1
// records; the differential workloads and the pinned MEMSpotWindow
// benchmark share it so both isolate the level-2 loop.
func SyntheticRates(dp trace.DesignPoint) (trace.Rates, error) {
	r := trace.Rates{Point: dp, PerApp: make(map[string]trace.AppRates)}
	for i, n := range dp.AppNames() {
		f := 1 + 0.1*float64(i)
		r.PerApp[n] = trace.AppRates{
			InstrPerSec:    2.2e9 * f,
			IPCRef:         0.55 * f,
			ReadGBps:       2.4 * f,
			WriteGBps:      0.9 * f,
			L2MissPerSec:   3.6e7 * f,
			L2AccessPerSec: 1.1e8 * f,
			MemBoundFrac:   math.Min(0.9, 0.45*f),
		}
		r.TotalReadGBps += 2.4 * f
		r.TotalWriteGBps += 0.9 * f
	}
	r.MeanLatencyNS = 180
	return r, nil
}
