package simtest

import (
	"context"
	"testing"

	"dramtherm/internal/core"
	"dramtherm/internal/fbconfig"
	"dramtherm/internal/sweep"
)

// goldenConfig is the examples/clusterdtm CI-sized demo configuration —
// the same oracle the cluster example asserts byte-identical tables
// against. exact selects the retained thermal path.
func goldenConfig(exact bool) core.Config {
	cfg := core.DefaultConfig()
	cfg.Replicas = 1
	cfg.InstrScale = 0.02
	cfg.Limits = fbconfig.ThermalLimits{AMBTDP: 103.5, DRAMTDP: 85, AMBTRP: 102.5, DRAMTRP: 84}
	cfg.ExactThermal = exact
	return cfg
}

// TestGoldenReportTables is the experiment-level differential golden
// test: the W1 × policy grid of the clusterdtm demo runs through real
// level-1 and level-2 simulation on the fast path — serially and with a
// parallel worker pool — and on the exact reference path, and all three
// report tables must come out byte-for-byte identical. Anything that
// perturbs simulation arithmetic anywhere in the stack (thermal cache,
// power model precompute, buffer reuse, completion-heap order, trace
// memo) fails this test at the same oracle the examples assert against.
func TestGoldenReportTables(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation skipped in -short mode")
	}
	specs := sweep.Grid{
		Mixes:    []string{"W1"},
		Policies: []string{"DTM-TS", "DTM-BW", "DTM-ACG", "DTM-CDVFS"},
	}.Expand()

	tables := make(map[string]string, 4)
	for _, v := range []struct {
		name    string
		exact   bool
		workers int
		prefix  bool
	}{
		{"fast-serial", false, 1, false},
		{"fast-parallel", false, 4, false},
		{"fast-prefix", false, 4, true},
		{"exact-serial", true, 1, false},
	} {
		eng := sweep.NewEngine(core.NewSystem(goldenConfig(v.exact)), v.workers)
		if v.prefix {
			eng.EnablePrefixSharing()
		}
		res, err := eng.Sweep(context.Background(), specs, sweep.Options{})
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		tables[v.name] = res.Table("cluster sweep").String()
		if tables[v.name] == "" {
			t.Fatalf("%s: empty table", v.name)
		}
	}
	if tables["fast-serial"] != tables["exact-serial"] {
		t.Errorf("fast serial table diverges from exact reference:\nfast:\n%s\nexact:\n%s",
			tables["fast-serial"], tables["exact-serial"])
	}
	if tables["fast-parallel"] != tables["exact-serial"] {
		t.Errorf("fast parallel table diverges from exact reference:\nparallel:\n%s\nexact:\n%s",
			tables["fast-parallel"], tables["exact-serial"])
	}
	if tables["fast-prefix"] != tables["exact-serial"] {
		t.Errorf("prefix-shared table diverges from exact reference:\nprefix:\n%s\nexact:\n%s",
			tables["fast-prefix"], tables["exact-serial"])
	}
}
