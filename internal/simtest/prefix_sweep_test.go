package simtest

import (
	"context"
	"testing"

	"dramtherm/internal/core"
	"dramtherm/internal/fbconfig"
	"dramtherm/internal/obs"
	"dramtherm/internal/sweep"
)

// prefixGrid is the acceptance grid: 4 policies × 8 limit points on W1,
// a TRP/TDP sensitivity sweep around the paper's defaults. The limit
// spread matters — the loose TDPs (the paper's 110 °C neighborhood)
// never throttle at this run's temperatures, so followers reuse the
// leader's whole result; the tight tail throttles at different depths,
// so followers resume from mid-run checkpoints. Both reuse modes are on
// the table, weighted the way a real sensitivity sweep weights them.
func prefixGrid() []sweep.Spec {
	var lims []fbconfig.ThermalLimits
	for _, tdp := range []float64{110, 109.5, 109, 108.5, 108, 107.5, 103.5, 103} {
		lims = append(lims, fbconfig.ThermalLimits{
			AMBTDP: fbconfig.Celsius(tdp), DRAMTDP: 85,
			AMBTRP: fbconfig.Celsius(tdp - 1), DRAMTRP: 84,
		})
	}
	return sweep.Grid{
		Mixes:    []string{"W1"},
		Policies: []string{"DTM-TS", "DTM-BW", "DTM-ACG", "DTM-CDVFS"},
		Limits:   lims,
	}.Expand()
}

// TestPrefixSharingSavesTimesteps is the acceptance test for the prefix
// layer at sweep scale: on a 4-policy × 8-point grid the shared engine
// must simulate at most half the timesteps a cold-replay engine would
// (saved ≥ simulated, counted by dramtherm_prefix_timesteps_saved_total)
// while producing a byte-identical report table.
func TestPrefixSharingSavesTimesteps(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation skipped in -short mode")
	}
	specs := prefixGrid()
	if len(specs) != 32 {
		t.Fatalf("grid expanded to %d specs, want 32", len(specs))
	}

	coldEng := sweep.NewEngine(core.NewSystem(goldenConfig(false)), 4)
	coldRes, err := coldEng.Sweep(context.Background(), specs, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}

	sharedEng := sweep.NewEngine(core.NewSystem(goldenConfig(false)), 4)
	sharedEng.EnablePrefixSharing()
	reg := obs.NewRegistry()
	sharedEng.Instrument(reg)
	sharedRes, err := sharedEng.Sweep(context.Background(), specs, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}

	cold := coldRes.Table("prefix acceptance").String()
	shared := sharedRes.Table("prefix acceptance").String()
	if cold == "" || cold != shared {
		t.Errorf("shared table not byte-identical to cold table:\ncold:\n%s\nshared:\n%s", cold, shared)
	}

	st, ok := sharedEng.PrefixStats()
	if !ok {
		t.Fatal("PrefixStats reports sharing disabled")
	}
	saved := reg.Sum("dramtherm_prefix_timesteps_saved_total", nil)
	run := reg.Sum("dramtherm_prefix_timesteps_simulated_total", nil)
	if saved != float64(st.StepsSaved) || run != float64(st.StepsSimulated) {
		t.Errorf("metrics disagree with Stats: saved %v vs %d, run %v vs %d",
			saved, st.StepsSaved, run, st.StepsSimulated)
	}
	if saved == 0 || run == 0 {
		t.Fatalf("degenerate counters: %+v", st)
	}
	// Cold replay would simulate run+saved timesteps; ≥ 2× fewer means
	// the shared engine ran at most half of that.
	if saved < run {
		t.Errorf("prefix sharing saved %v of %v cold timesteps — less than the required 2×: %+v",
			saved, saved+run, st)
	}
	t.Logf("32 specs in 8 groups: %+v (%.1f%% of cold timesteps simulated)",
		st, 100*run/(run+saved))
}
