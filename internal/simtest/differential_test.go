package simtest

import (
	"math"
	"math/rand"
	"testing"
)

// TestULPDiff pins the comparator itself: adjacent floats are 1 apart,
// sign-crossing distances count through zero, NaN/Inf behave.
func TestULPDiff(t *testing.T) {
	cases := []struct {
		a, b float64
		want uint64
	}{
		{1.0, 1.0, 0},
		{1.0, math.Nextafter(1.0, 2.0), 1},
		{1.0, math.Nextafter(math.Nextafter(1.0, 2.0), 2.0), 2},
		{-1.0, math.Nextafter(-1.0, 0), 1},
		{0.0, math.Copysign(0, -1), 1}, // +0 and −0 are adjacent ordinals
		{math.Inf(1), math.Inf(1), 0},
	}
	for _, c := range cases {
		if got := ULPDiff(c.a, c.b); got != c.want {
			t.Errorf("ULPDiff(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if ULPDiff(math.NaN(), 1) != math.MaxUint64 {
		t.Error("NaN vs number should be max distance")
	}
	if ULPDiff(math.NaN(), math.NaN()) != 0 {
		t.Error("NaN vs NaN should compare equal")
	}
	if d := ULPDiff(math.Inf(1), math.MaxFloat64); d != 1 {
		t.Errorf("Inf vs MaxFloat64 = %d, want 1", d)
	}
}

// TestDifferentialRandomWorkloads is the core differential guarantee:
// seeded random workload configurations — every mix, all five
// table-driven policies, noisy and noiseless sensors — run end to end
// through the fast path and the retained exact path, and every result
// field agrees within the documented bound. The observed worst-case is
// also pinned: the two paths are bit-identical today, and this test is
// where a deliberate future relaxation to 1 ULP must be made visible.
func TestDifferentialRandomWorkloads(t *testing.T) {
	n := 12
	if testing.Short() {
		n = 4
	}
	rng := rand.New(rand.NewSource(8))
	var worst uint64
	for i := 0; i < n; i++ {
		spec := RandomSpec(rng)
		fast, exact, err := RunBoth(spec)
		if err != nil {
			t.Fatal(err)
		}
		if fast.Seconds <= 0 || fast.Completed == 0 {
			t.Fatalf("%+v: degenerate run (%.3fs, %d completed)", spec, fast.Seconds, fast.Completed)
		}
		w, err := CompareResults(fast, exact, MaxTrajectoryULP)
		if err != nil {
			t.Fatalf("spec %d %+v: %v", i, spec, err)
		}
		if w > worst {
			worst = w
		}
		t.Logf("spec %d: %-9s %-9s replicas=%d sensor=%v  %.1fs simulated, worst %d ULP",
			i, spec.MixName, spec.Policy, spec.Replicas, spec.SensorSeed != 0, fast.Seconds, w)
	}
	if worst != 0 {
		t.Errorf("fast path drifted from exact path by %d ULP; today's implementation is bit-identical — "+
			"if this is a deliberate change, update MaxTrajectoryULP's documentation and docs/PERFORMANCE.md", worst)
	}
}

// TestDifferentialDeterminism guards the harness itself: running the
// same spec twice through the fast path must reproduce identical
// results, otherwise differential comparisons would be meaningless.
func TestDifferentialDeterminism(t *testing.T) {
	spec := RandomSpec(rand.New(rand.NewSource(3)))
	a1, e1, err := RunBoth(spec)
	if err != nil {
		t.Fatal(err)
	}
	a2, e2, err := RunBoth(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompareResults(a1, a2, 0); err != nil {
		t.Fatalf("fast path not deterministic: %v", err)
	}
	if _, err := CompareResults(e1, e2, 0); err != nil {
		t.Fatalf("exact path not deterministic: %v", err)
	}
}
