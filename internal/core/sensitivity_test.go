package core

import (
	"math"
	"testing"

	"dramtherm/internal/fbconfig"
	"dramtherm/internal/workload"
)

// TestBatchDepthSensitivity backs the EXPERIMENTS.md claim that the
// normalized runtime is insensitive to the batch depth: the paper uses 50
// replicas per application, the full-scale experiment runs use 4, and the
// ratio must agree because any batch longer than a few thermal time
// constants samples the same duty-cycle equilibrium.
func TestBatchDepthSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("sensitivity sweep skipped in -short mode")
	}
	mix, err := workload.MixByName("W1")
	if err != nil {
		t.Fatal(err)
	}
	norm := func(replicas int) float64 {
		cfg := DefaultConfig()
		cfg.Replicas = replicas
		sys := NewSystem(cfg)
		n, err := sys.NormalizedRuntime(mix, "DTM-TS", fbconfig.CoolingAOHS15, Isolated)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	n2, n6 := norm(2), norm(6)
	if n2 <= 1 || n6 <= 1 {
		t.Fatalf("thermal limit not binding: %v / %v", n2, n6)
	}
	if rel := math.Abs(n2-n6) / n6; rel > 0.06 {
		t.Fatalf("normalized runtime moved %.1f%% between 2 and 6 replicas (%v vs %v)",
			rel*100, n2, n6)
	}
}
