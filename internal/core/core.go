// Package core is the high-level engine of the library: it wires the
// level-1 architectural simulator, the trace store, the Chapter 3 power
// and thermal models and the DTM policies into a single System that runs
// workload mixes under a chosen policy and thermal configuration. The
// experiment drivers (internal/exp), the CLI tools and the examples all
// sit on top of this package.
package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"dramtherm/internal/dtm"
	"dramtherm/internal/fbconfig"
	"dramtherm/internal/sim"
	"dramtherm/internal/trace"
	"dramtherm/internal/workload"
)

// ThermalModelKind selects between §3.4 and §3.5 ambient handling.
type ThermalModelKind int

const (
	// Isolated is the §3.4 model: fixed DRAM ambient.
	Isolated ThermalModelKind = iota
	// Integrated is the §3.5 model: ambient pre-heated by the CPUs.
	Integrated
)

func (k ThermalModelKind) String() string {
	if k == Integrated {
		return "integrated"
	}
	return "isolated"
}

// Config parameterizes a System.
type Config struct {
	Params   fbconfig.SimParams
	Limits   fbconfig.ThermalLimits
	CPU      fbconfig.CPUPower
	DVFS     []fbconfig.DVFSLevel
	Replicas int     // batch copies per application (paper: 50)
	Seed     int64   // level-1 determinism seed
	Interval float64 // DTM interval in seconds (paper: 10 ms)
	// InstrScale shrinks application run lengths; tests use small values.
	InstrScale float64
	// ExactThermal routes level-2 runs through the retained per-step
	// math.Exp thermal path instead of the cached-decay fast path; the
	// differential harness (internal/simtest) uses it to compare whole
	// sweeps. The flag is part of the ConfigDigest, so results from the
	// two paths never share a cache scope.
	ExactThermal bool
}

// DefaultConfig returns the Chapter 4 configuration. Replicas defaults to
// 12 rather than the paper's 50 to keep a full experiment suite in the
// minutes range; the batch still spans dozens of thermal time constants,
// so normalized runtimes are insensitive to the difference (there is a
// sensitivity test for this).
func DefaultConfig() Config {
	return Config{
		Params:     fbconfig.DefaultSimParams,
		Limits:     fbconfig.DefaultLimits,
		CPU:        fbconfig.DefaultCPUPower,
		DVFS:       fbconfig.DTMDVFS,
		Replicas:   12,
		Seed:       1,
		Interval:   0.01,
		InstrScale: 1,
	}
}

// System owns a shared trace store so that every run reuses level-1
// results for design points it has already simulated.
type System struct {
	cfg   Config
	store *trace.Store
}

// NewSystem builds a System for cfg.
func NewSystem(cfg Config) *System {
	if cfg.Params.Cores == 0 {
		cfg = DefaultConfig()
	}
	l1 := sim.NewLevel1(cfg.Seed)
	l1.Params = cfg.Params
	if len(cfg.DVFS) > 0 {
		l1.MaxFreqGHz = cfg.DVFS[0].FreqGHz
	}
	return &System{cfg: cfg, store: trace.NewStore(l1)}
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// Store exposes the shared trace store.
func (s *System) Store() *trace.Store { return s.store }

// RunSpec describes one level-2 run.
type RunSpec struct {
	Mix     workload.Mix
	Policy  dtm.Policy
	Cooling fbconfig.Cooling
	Model   ThermalModelKind
	// PsiXi overrides the integrated model's interaction coefficient when
	// nonzero (Fig. 4.13/4.14 sensitivity).
	PsiXi float64
	// Interval overrides the system DTM interval when nonzero (Fig. 4.11).
	Interval float64
	// Limits overrides the thermal limits when nonzero (TRP/TDP sweeps).
	Limits fbconfig.ThermalLimits
	// InstrScale multiplies the system's application-length scale when
	// nonzero: fractional values run the same mix at reduced fidelity
	// (adaptive search rungs), 1 is full fidelity.
	InstrScale float64
}

// ConfigDigest returns a short stable hash of the system configuration.
// Two systems with the same digest produce identical results for the
// same RunSpec, so the digest scopes cross-run caches (internal/sweep)
// and persisted state files.
func (s *System) ConfigDigest() string {
	// fmt renders maps in sorted key order, so the rendering — and with
	// it the digest — is deterministic for a given Config value.
	sum := sha256.Sum256([]byte(fmt.Sprintf("%+v", s.cfg)))
	return hex.EncodeToString(sum[:8])
}

// Run executes the spec and returns the MEMSpot result.
func (s *System) Run(spec RunSpec) (sim.MEMSpotResult, error) {
	return s.RunCtx(context.Background(), spec)
}

// RunCtx is Run with cancellation: the level-2 simulation aborts between
// windows once ctx is done. The concurrent sweep engine uses it to tear
// down in-flight work promptly.
func (s *System) RunCtx(ctx context.Context, spec RunSpec) (sim.MEMSpotResult, error) {
	ms, err := s.NewRun(spec)
	if err != nil {
		return sim.MEMSpotResult{}, err
	}
	return ms.RunCtx(ctx)
}

// NewRun builds (without running) the level-2 simulator instance for
// spec, backed by the system's shared trace store. The prefix-sharing
// layer (internal/sweep/prefix) uses it to drive runs decision window by
// decision window with checkpoint hooks; RunCtx is NewRun followed by
// running the instance to completion.
func (s *System) NewRun(spec RunSpec) (*sim.MEMSpot, error) {
	if spec.Policy == nil {
		return nil, fmt.Errorf("core: RunSpec needs a policy")
	}
	amb := fbconfig.AmbientIsolated
	if spec.Model == Integrated {
		amb = fbconfig.AmbientIntegrated
	}
	if spec.PsiXi != 0 {
		amb.PsiXi = spec.PsiXi
	}
	lim := s.cfg.Limits
	if spec.Limits.AMBTDP != 0 {
		lim = spec.Limits
	}
	interval := s.cfg.Interval
	if spec.Interval != 0 {
		interval = spec.Interval
	}
	win := interval
	if win > 0.01 {
		win = 0.01
	}
	scale := s.cfg.InstrScale
	if scale == 0 {
		scale = 1 // MEMSpot would default it; multiply against the real base
	}
	if spec.InstrScale > 0 {
		scale *= spec.InstrScale
	}
	cfg := sim.MEMSpotConfig{
		Mix:          spec.Mix,
		Replicas:     s.cfg.Replicas,
		Policy:       spec.Policy,
		Cooling:      spec.Cooling,
		Ambient:      amb,
		Limits:       lim,
		Params:       s.cfg.Params,
		CPU:          s.cfg.CPU,
		DVFS:         s.cfg.DVFS,
		WindowS:      win,
		DTMIntervalS: interval,
		InstrScale:   scale,
		ExactThermal: s.cfg.ExactThermal,
	}
	return sim.NewMEMSpot(cfg, s.store)
}

// PolicyNames lists the Chapter 4 policy constructors available through
// NewPolicy, in the paper's presentation order.
func PolicyNames() []string {
	return []string{
		"No-limit", "DTM-TS", "DTM-BW", "DTM-ACG", "DTM-CDVFS", "DTM-COMB",
		"DTM-BW+PID", "DTM-ACG+PID", "DTM-CDVFS+PID",
	}
}

// NewPolicy builds a Chapter 4 policy by name using the system's limits
// and Table 4.3 levels. Each call returns a fresh policy (policies are
// stateful).
func (s *System) NewPolicy(name string) (dtm.Policy, error) {
	return s.NewPolicyFor(name, s.cfg.Limits)
}

// NewPolicyFor builds a policy by name against explicit thermal limits,
// for TRP/TDP sweeps where the swept limit must reach the policy itself
// (e.g. Fig. 4.2's DTM-TS TRP sweep).
func (s *System) NewPolicyFor(name string, lim fbconfig.ThermalLimits) (dtm.Policy, error) {
	cores := s.cfg.Params.Cores
	levels := dtm.LevelsForTDP(lim.AMBTDP, lim.DRAMTDP)
	switch name {
	case "No-limit":
		return &dtm.NoLimit{Cores: cores}, nil
	case "DTM-TS":
		return dtm.NewTS(lim, cores), nil
	case "DTM-BW":
		return dtm.NewBW(levels, cores), nil
	case "DTM-ACG":
		return dtm.NewACG(levels, cores), nil
	case "DTM-CDVFS":
		return dtm.NewCDVFS(levels, cores), nil
	case "DTM-COMB":
		return dtm.NewCOMB(levels, cores), nil
	case "DTM-BW+PID":
		return dtm.NewPID("DTM-BW", dtm.ActionsBW(cores), lim)
	case "DTM-ACG+PID":
		return dtm.NewPID("DTM-ACG", dtm.ActionsACG(cores), lim)
	case "DTM-CDVFS+PID":
		return dtm.NewPID("DTM-CDVFS", dtm.ActionsCDVFS(cores, len(s.cfg.DVFS)), lim)
	default:
		return nil, fmt.Errorf("core: unknown policy %q", name)
	}
}

// NormalizedRuntime runs the mix under the named policy and under
// No-limit, returning runtime(policy)/runtime(No-limit) — the unit of
// Figs. 4.2/4.3/4.12.
func (s *System) NormalizedRuntime(mix workload.Mix, policyName string, cooling fbconfig.Cooling, model ThermalModelKind) (float64, error) {
	p, err := s.NewPolicy(policyName)
	if err != nil {
		return 0, err
	}
	res, err := s.Run(RunSpec{Mix: mix, Policy: p, Cooling: cooling, Model: model})
	if err != nil {
		return 0, err
	}
	base, err := s.Baseline(mix, cooling, model)
	if err != nil {
		return 0, err
	}
	return res.Seconds / base.Seconds, nil
}

// Baseline runs (and memoizes per mix/cooling/model) the No-limit run.
func (s *System) Baseline(mix workload.Mix, cooling fbconfig.Cooling, model ThermalModelKind) (sim.MEMSpotResult, error) {
	return s.Run(RunSpec{
		Mix:     mix,
		Policy:  &dtm.NoLimit{Cores: s.cfg.Params.Cores},
		Cooling: cooling,
		Model:   model,
	})
}
