package core

import (
	"testing"
	"time"

	"dramtherm/internal/fbconfig"
	"dramtherm/internal/workload"
)

// TestSmokeW1 runs W1 end-to-end under every Chapter 4 policy at reduced
// scale and prints normalized runtimes — the first full-loop validation
// of the reproduction (compare with Fig. 4.3 AOHS_1.5).
func TestSmokeW1(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke run skipped in -short mode")
	}
	cfg := DefaultConfig()
	cfg.Replicas = 4
	sys := NewSystem(cfg)
	mix, err := workload.MixByName("W1")
	if err != nil {
		t.Fatal(err)
	}
	base, err := sys.Baseline(mix, fbconfig.CoolingAOHS15, Isolated)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("No-limit: %.0f s, %.0f GB traffic, maxAMB=%.1f maxDRAM=%.1f",
		base.Seconds, base.TotalTrafficGB(), base.MaxAMB, base.MaxDRAM)
	if base.TimedOut {
		t.Fatal("baseline timed out")
	}
	for _, name := range []string{"DTM-TS", "DTM-BW", "DTM-ACG", "DTM-CDVFS", "DTM-ACG+PID", "DTM-CDVFS+PID", "DTM-BW+PID"} {
		start := time.Now()
		p, err := sys.NewPolicy(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(RunSpec{Mix: mix, Policy: p, Cooling: fbconfig.CoolingAOHS15, Model: Isolated})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		norm := res.Seconds / base.Seconds
		t.Logf("%-14s norm=%.2f  (%.0f s, traffic %.0f GB, maxAMB %.1f, overshoots %d, memE %.0f kJ, cpuE %.0f kJ) [wall %.1fs]",
			name, norm, res.Seconds, res.TotalTrafficGB(), res.MaxAMB, res.Overshoots,
			res.MemEnergyJ/1e3, res.CPUEnergyJ/1e3, time.Since(start).Seconds())
		if res.MaxAMB > 111 {
			t.Errorf("%s exceeded AMB TDP badly: %.1f", name, res.MaxAMB)
		}
	}
	builds, hits := sys.Store().Counts()
	t.Logf("trace store: %d builds, %d hits", builds, hits)
}
