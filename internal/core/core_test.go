package core

import (
	"testing"

	"dramtherm/internal/fbconfig"
	"dramtherm/internal/workload"
)

func TestPolicyConstruction(t *testing.T) {
	sys := NewSystem(DefaultConfig())
	for _, name := range PolicyNames() {
		p, err := sys.NewPolicy(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("policy name %q != %q", p.Name(), name)
		}
	}
	if _, err := sys.NewPolicy("DTM-NOPE"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Params.Cores != 4 || cfg.Interval != 0.01 || cfg.Replicas <= 0 {
		t.Fatalf("defaults: %+v", cfg)
	}
	// Zero config falls back to defaults.
	sys := NewSystem(Config{})
	if sys.Config().Params.Cores != 4 {
		t.Fatal("zero config not defaulted")
	}
}

func TestModelKindString(t *testing.T) {
	if Isolated.String() != "isolated" || Integrated.String() != "integrated" {
		t.Fatal("kind strings wrong")
	}
}

func TestRunValidation(t *testing.T) {
	sys := NewSystem(DefaultConfig())
	if _, err := sys.Run(RunSpec{}); err == nil {
		t.Fatal("nil policy accepted")
	}
}

// TestNormalizedRuntimeTiny runs the full pipeline at a tiny scale and
// checks the normalized runtime of a throttled policy exceeds one.
func TestNormalizedRuntimeTiny(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Replicas = 1
	cfg.InstrScale = 0.05
	// Low thermal limits so the short run still hits emergencies.
	cfg.Limits = fbconfig.ThermalLimits{AMBTDP: 103.5, DRAMTDP: 85, AMBTRP: 102.5, DRAMTRP: 84}
	sys := NewSystem(cfg)
	mix, err := workload.MixByName("W1")
	if err != nil {
		t.Fatal(err)
	}
	n, err := sys.NormalizedRuntime(mix, "DTM-TS", fbconfig.CoolingAOHS15, Isolated)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 1.0 {
		t.Fatalf("DTM-TS normalized runtime %v, want > 1", n)
	}
	if n > 10 {
		t.Fatalf("DTM-TS normalized runtime %v implausible", n)
	}
}

// TestSpecOverrides checks that interval/limits/psixi overrides reach the
// level-2 run.
func TestSpecOverrides(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Replicas = 1
	cfg.InstrScale = 0.01
	sys := NewSystem(cfg)
	mix, _ := workload.MixByName("W8")
	p, _ := sys.NewPolicy("No-limit")
	res, err := sys.Run(RunSpec{
		Mix: mix, Policy: p, Cooling: fbconfig.CoolingFDHS10, Model: Integrated,
		PsiXi: 2.0, Interval: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds <= 0 {
		t.Fatal("empty run")
	}
}
