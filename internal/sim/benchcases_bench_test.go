// Per-timestep hot-loop benchmarks: the canonical bodies live in
// internal/simtest/benchcases so cmd/benchsnap pins the exact same
// measurements into BENCH_*.json snapshots. This file is an external
// test package because benchcases itself imports internal/sim.
package sim_test

import (
	"testing"

	"dramtherm/internal/simtest/benchcases"
)

func BenchmarkThermalStep(b *testing.B)    { benchcases.ThermalStep(b) }
func BenchmarkLevel1Timestep(b *testing.B) { benchcases.Level1Timestep(b) }
func BenchmarkMemctrlTick(b *testing.B)    { benchcases.MemctrlTick(b) }
func BenchmarkMEMSpotWindow(b *testing.B)  { benchcases.MEMSpotWindow(b) }
