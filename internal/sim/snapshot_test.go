package sim

import (
	"context"
	"reflect"
	"testing"

	"dramtherm/internal/dtm"
)

// TestSnapshotResumeBitIdentical is the package-level statement of the
// checkpoint contract: capturing the state at a decision boundary and
// resuming it on a fresh machine must finish with a result bit-identical
// to the uninterrupted run. NoLimit is stateless, so no policy warming
// is involved — the prefix layer's policy-replay obligations are covered
// by internal/simtest's divergence suite.
func TestSnapshotResumeBitIdentical(t *testing.T) {
	store := tinyStore()
	cold, err := RunMix(tinyConfig(t, &dtm.NoLimit{Cores: 4}), store)
	if err != nil {
		t.Fatal(err)
	}

	var st *MEMSpotState
	leader, err := NewMEMSpot(tinyConfig(t, &dtm.NoLimit{Cores: 4}), store)
	if err != nil {
		t.Fatal(err)
	}
	hooked, err := leader.RunHooked(context.Background(), func(m *MEMSpot) error {
		if st == nil && m.Decisions() == 5 {
			s, serr := m.Snapshot()
			if serr != nil {
				t.Fatalf("snapshot at decision 5: %v", serr)
			}
			st = s
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st == nil {
		t.Fatal("run finished before 5 decisions; shrink the hook threshold")
	}
	if !reflect.DeepEqual(cold, hooked) {
		t.Fatalf("hooked run diverged from plain run:\ncold:   %+v\nhooked: %+v", cold, hooked)
	}

	resumed, err := NewMEMSpot(tinyConfig(t, &dtm.NoLimit{Cores: 4}), store)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Restore(st); err != nil {
		t.Fatal(err)
	}
	if got := resumed.StepsTaken(); got != st.Steps {
		t.Fatalf("restored StepsTaken = %d, snapshot had %d", got, st.Steps)
	}
	res, err := resumed.RunCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, res) {
		t.Fatalf("resumed run diverged from cold run:\ncold:    %+v\nresumed: %+v", cold, res)
	}
}

// TestSnapshotRefusesSensorNoise: noisy-sensor runs carry hidden RNG
// state the snapshot does not capture, so Snapshot must refuse rather
// than silently produce a non-reproducible checkpoint.
func TestSnapshotRefusesSensorNoise(t *testing.T) {
	cfg := tinyConfig(t, &dtm.NoLimit{Cores: 4})
	cfg.SensorSeed = 7
	ms, err := NewMEMSpot(cfg, tinyStore())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ms.Snapshot(); err == nil {
		t.Fatal("snapshot of a noisy-sensor run accepted")
	}
}

// TestSnapshotDigest: the digest is stable for one state and moves when
// the simulation does.
func TestSnapshotDigest(t *testing.T) {
	ms, err := NewMEMSpot(tinyConfig(t, &dtm.NoLimit{Cores: 4}), tinyStore())
	if err != nil {
		t.Fatal(err)
	}
	var first, later *MEMSpotState
	if _, err := ms.RunHooked(context.Background(), func(m *MEMSpot) error {
		switch m.Decisions() {
		case 2:
			if first == nil {
				first, _ = m.Snapshot()
			}
		case 6:
			if later == nil {
				later, _ = m.Snapshot()
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if first == nil || later == nil {
		t.Fatal("hooks did not fire")
	}
	if first.Digest() != first.Digest() {
		t.Fatal("digest not stable")
	}
	if len(first.Digest()) != 16 {
		t.Fatalf("digest %q is not 16 hex digits", first.Digest())
	}
	if first.Digest() == later.Digest() {
		t.Fatal("digests of different decisions collide")
	}
}

// TestRestoreValidation: snapshots only restore onto a machine with the
// same shape.
func TestRestoreValidation(t *testing.T) {
	ms, err := NewMEMSpot(tinyConfig(t, &dtm.NoLimit{Cores: 4}), tinyStore())
	if err != nil {
		t.Fatal(err)
	}
	st, err := ms.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	other, err := NewMEMSpot(tinyConfig(t, &dtm.NoLimit{Cores: 4}), tinyStore())
	if err != nil {
		t.Fatal(err)
	}
	bad := *st
	bad.WindowS *= 2
	if err := other.Restore(&bad); err == nil {
		t.Fatal("window mismatch accepted")
	}
	bad = *st
	bad.Cores = bad.Cores[:len(bad.Cores)-1]
	if err := other.Restore(&bad); err == nil {
		t.Fatal("core-count mismatch accepted")
	}
	if err := other.Restore(st); err != nil {
		t.Fatalf("clean restore rejected: %v", err)
	}
}
