package sim

import (
	"math"
	"testing"

	"dramtherm/internal/dtm"
	"dramtherm/internal/fbconfig"
	"dramtherm/internal/trace"
	"dramtherm/internal/workload"
)

// fastLevel1 returns a short-window builder for unit tests.
func fastLevel1() *Level1 {
	l1 := NewLevel1(1)
	l1.WarmupNS = 3e5
	l1.MeasureNS = 3e5
	return l1
}

func w1(t *testing.T) workload.Mix {
	t.Helper()
	m, err := workload.MixByName("W1")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestLevel1Determinism(t *testing.T) {
	dp := trace.DesignPoint{Apps: "mgrid|swim", FreqGHz: 3.2, BWCapGBps: math.Inf(1)}
	a, err := fastLevel1().Build(dp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fastLevel1().Build(dp)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalReadGBps != b.TotalReadGBps || a.PerApp["swim"] != b.PerApp["swim"] {
		t.Fatalf("nondeterministic level-1: %+v vs %+v", a, b)
	}
}

func TestLevel1ZeroPoints(t *testing.T) {
	l1 := fastLevel1()
	for _, dp := range []trace.DesignPoint{
		{Apps: "", FreqGHz: 3.2},
		{Apps: "swim", FreqGHz: 3.2, MemOff: true},
		{Apps: "swim", FreqGHz: 0},
	} {
		r, err := l1.Build(dp)
		if err != nil {
			t.Fatal(err)
		}
		if r.TotalGBps() != 0 {
			t.Fatalf("%v has traffic", dp)
		}
	}
	// Too many apps.
	if _, err := l1.Build(trace.DesignPoint{Apps: "a|b|c|d|e", FreqGHz: 3.2}); err == nil {
		t.Fatal("5 apps on 4 cores accepted")
	}
	// Unknown app.
	if _, err := l1.Build(trace.DesignPoint{Apps: "nosuch", FreqGHz: 3.2}); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestLevel1CapBinds(t *testing.T) {
	l1 := fastLevel1()
	l1.MeasureNS = 1e6
	apps := trace.CanonApps(w1(t).Apps)
	capped, err := l1.Build(trace.DesignPoint{Apps: apps, FreqGHz: 3.2, BWCapGBps: 6.4})
	if err != nil {
		t.Fatal(err)
	}
	if got := capped.TotalGBps(); math.Abs(got-6.4) > 0.8 {
		t.Fatalf("capped throughput %v, want ≈6.4", got)
	}
	free, err := l1.Build(trace.DesignPoint{Apps: apps, FreqGHz: 3.2, BWCapGBps: math.Inf(1)})
	if err != nil {
		t.Fatal(err)
	}
	if free.TotalGBps() < capped.TotalGBps()*1.5 {
		t.Fatalf("uncapped %v not much above capped %v", free.TotalGBps(), capped.TotalGBps())
	}
}

// tinyConfig returns a MEMSpot config that completes in well under a
// second of wall time.
func tinyConfig(t *testing.T, policy dtm.Policy) MEMSpotConfig {
	return MEMSpotConfig{
		Mix:        w1(t),
		Replicas:   1,
		Policy:     policy,
		Cooling:    fbconfig.CoolingAOHS15,
		Ambient:    fbconfig.AmbientIsolated,
		InstrScale: 0.002,
	}
}

func tinyStore() *trace.Store {
	return trace.NewStore(fastLevel1())
}

func TestMEMSpotValidation(t *testing.T) {
	if _, err := NewMEMSpot(tinyConfig(t, nil), tinyStore()); err == nil {
		t.Fatal("nil policy accepted")
	}
	cfg := tinyConfig(t, &dtm.NoLimit{Cores: 4})
	if _, err := NewMEMSpot(cfg, nil); err == nil {
		t.Fatal("nil store accepted")
	}
	cfg.Mix = workload.Mix{Name: "bad", Apps: []string{"nosuch"}}
	if _, err := NewMEMSpot(cfg, tinyStore()); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestMEMSpotCompletes(t *testing.T) {
	res, err := RunMix(tinyConfig(t, &dtm.NoLimit{Cores: 4}), tinyStore())
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatal("timed out")
	}
	if res.Completed != 4 {
		t.Fatalf("completed %d of 4 jobs", res.Completed)
	}
	if res.Seconds <= 0 || res.TotalTrafficGB() <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if res.MemEnergyJ <= 0 || res.CPUEnergyJ <= 0 {
		t.Fatal("no energy accounted")
	}
	if len(res.AMBTrace) == 0 {
		t.Fatal("no temperature trace")
	}
}

func TestMEMSpotThermalSafety(t *testing.T) {
	// A short test run spans only a fraction of the 50 s AMB time
	// constant, so lower the TDP to a point reached within seconds.
	lim := fbconfig.ThermalLimits{AMBTDP: 103.5, DRAMTDP: 85, AMBTRP: 102.5, DRAMTRP: 84}
	ts := dtm.NewTS(lim, 4)
	store := tinyStore()
	cfg := tinyConfig(t, ts)
	cfg.Limits = lim
	cfg.InstrScale = 0.05
	res, err := RunMix(cfg, store)
	if err != nil {
		t.Fatal(err)
	}
	// DTM-TS keeps the AMB at or below the TDP (it trips exactly there).
	if res.MaxAMB > lim.AMBTDP+0.2 {
		t.Fatalf("TS exceeded TDP: %v", res.MaxAMB)
	}
	if res.TimeMemOff <= 0 {
		t.Fatal("TS never shut the memory down")
	}
	// The throttled run is slower than No-limit.
	baseCfg := tinyConfig(t, &dtm.NoLimit{Cores: 4})
	baseCfg.InstrScale = 0.05
	base, err := RunMix(baseCfg, store)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds <= base.Seconds {
		t.Fatalf("TS (%v s) not slower than No-limit (%v s)", res.Seconds, base.Seconds)
	}
}

func TestMEMSpotResidency(t *testing.T) {
	// Shift the emergency levels down so ACG engages within the short run.
	acg := dtm.NewACG(dtm.LevelsForTDP(103.5, 85), 4)
	cfg := tinyConfig(t, acg)
	cfg.Limits = fbconfig.ThermalLimits{AMBTDP: 103.5, DRAMTDP: 85, AMBTRP: 102.5, DRAMTRP: 84}
	cfg.InstrScale = 0.05
	res, err := RunMix(cfg, tinyStore())
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, s := range res.TimeAtCores {
		total += s
	}
	if math.Abs(total-res.Seconds) > 0.1 {
		t.Fatalf("core residency %v != runtime %v", total, res.Seconds)
	}
	// ACG must actually have gated cores at some point.
	gated := 0.0
	for n, s := range res.TimeAtCores {
		if n < 4 {
			gated += s
		}
	}
	if gated == 0 {
		t.Fatal("ACG never gated a core")
	}
}

func TestMEMSpotMaxSeconds(t *testing.T) {
	cfg := tinyConfig(t, &dtm.NoLimit{Cores: 4})
	cfg.MaxSeconds = 1
	cfg.InstrScale = 1 // full-length jobs cannot finish in 1 s
	res, err := RunMix(cfg, tinyStore())
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Fatal("MaxSeconds not enforced")
	}
}

func TestMEMSpotIntegratedAmbient(t *testing.T) {
	cfg := tinyConfig(t, &dtm.NoLimit{Cores: 4})
	cfg.Ambient = fbconfig.AmbientIntegrated
	res, err := RunMix(cfg, tinyStore())
	if err != nil {
		t.Fatal(err)
	}
	// CPU preheat must raise the ambient above the inlet.
	last := res.AmbientTrace[len(res.AmbientTrace)-1]
	if last <= fbconfig.AmbientIntegrated.InletAOHS15 {
		t.Fatalf("ambient %v never rose above inlet", last)
	}
}

func TestNoLimitRuntimeHelper(t *testing.T) {
	cfg := tinyConfig(t, nil)
	res, err := NoLimitRuntime(cfg, tinyStore())
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds <= 0 {
		t.Fatal("baseline empty")
	}
}
