// Snapshot/restore of a running MEMSpot at a DTM decision boundary. The
// prefix-sharing layer (internal/sweep/prefix) checkpoints the leader of
// a policy-sliced group here and resumes followers from the deepest
// checkpoint before their first divergent decision; correctness demands
// that a restored run continue bit-identically to one that never
// checkpointed, which the divergence differential suite in
// internal/simtest enforces.
//
// What is captured: simulated time and schedule cursors, the thermal
// state (model + ambient), the batch queue and per-core jobs, the live
// DTM action and overshoot flag, and the result accumulator. What is
// deliberately excluded: the hot-loop scratch state (design-point memo,
// power/gating buffers) — Restore resets it and the next step rebuilds
// it from the shared deterministic trace store — and the decay caches,
// which self-revalidate (see internal/thermal/snapshot.go).
//
// Runs with sensor noise enabled cannot be snapshotted: the sensor's
// math/rand state is not capturable, so a resumed run could not
// reproduce the noise sequence bit-for-bit.

package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"dramtherm/internal/dtm"
	"dramtherm/internal/thermal"
	"dramtherm/internal/workload"
)

// JobState is the restorable state of one core's batch entry. A zero
// Name marks an idle core (its job queue ran dry).
type JobState struct {
	Name      string
	Remaining float64
	Total     float64
}

// MEMSpotState is the restorable state of a MEMSpot between windows at a
// DTM decision boundary. All fields are exported so the state crosses
// gob (segment-log checkpoint records) and fmt (canonical digest)
// unchanged.
type MEMSpotState struct {
	// WindowS pins the window length the snapshot was taken under;
	// Restore rejects a mismatch rather than resume on a different grid.
	WindowS float64

	Now     float64
	NextDTM float64
	NextRot float64
	NextRec float64
	Rot     int

	Steps     int64
	Decisions int

	Act dtm.Action
	Hot bool

	Queue []string   // pending profile names, in dispatch order
	Cores []JobState // one per core

	Thermal thermal.ModelState
	Ambient thermal.AmbientState

	Res MEMSpotResult
}

// Snapshot captures the run's state. It fails for sensor-noise runs
// (SensorSeed != 0), whose RNG state cannot be captured.
func (m *MEMSpot) Snapshot() (*MEMSpotState, error) {
	if m.sensor != nil {
		return nil, fmt.Errorf("sim: cannot snapshot a run with sensor noise (RNG state is not restorable)")
	}
	st := &MEMSpotState{
		WindowS:   m.cfg.WindowS,
		Now:       m.now,
		NextDTM:   m.nextDTM,
		NextRot:   m.nextRot,
		NextRec:   m.nextRec,
		Rot:       m.rot,
		Steps:     m.steps,
		Decisions: m.decisions,
		Act:       m.act,
		Hot:       m.hot,
		Thermal:   m.model.Snapshot(),
		Ambient:   m.amb.Snapshot(),
		Res:       cloneResult(m.res),
	}
	st.Queue = make([]string, len(m.queue))
	for i, p := range m.queue {
		st.Queue[i] = p.Name
	}
	st.Cores = make([]JobState, len(m.cores))
	for i, j := range m.cores {
		if j != nil {
			st.Cores[i] = JobState{Name: j.prof.Name, Remaining: j.remaining, Total: j.total}
		}
	}
	return st, nil
}

// Restore overwrites the run's state from a snapshot taken on a run with
// the same configuration. The policy is untouched: the caller is
// responsible for bringing it to the matching internal state (the
// prefix sharer replays the recorded decision inputs into a fresh
// policy before restoring). The state is not consumed — multiple runs
// may restore from the same snapshot.
func (m *MEMSpot) Restore(st *MEMSpotState) error {
	if m.sensor != nil {
		return fmt.Errorf("sim: cannot restore a run with sensor noise")
	}
	if st.WindowS != m.cfg.WindowS {
		return fmt.Errorf("sim: restore with window %g s onto a run with window %g s", st.WindowS, m.cfg.WindowS)
	}
	if len(st.Cores) != len(m.cores) {
		return fmt.Errorf("sim: restore with %d cores onto a run with %d", len(st.Cores), len(m.cores))
	}
	queue := make([]*workload.Profile, len(st.Queue))
	for i, name := range st.Queue {
		p, err := workload.ByName(name)
		if err != nil {
			return fmt.Errorf("sim: restore queue: %w", err)
		}
		queue[i] = p
	}
	cores := make([]*job, len(st.Cores))
	for i, js := range st.Cores {
		if js.Name == "" {
			continue
		}
		p, err := workload.ByName(js.Name)
		if err != nil {
			return fmt.Errorf("sim: restore core %d: %w", i, err)
		}
		cores[i] = &job{prof: p, remaining: js.Remaining, total: js.Total}
	}
	if err := m.model.Restore(st.Thermal); err != nil {
		return err
	}
	m.amb.Restore(st.Ambient)

	m.queue = queue
	m.cores = cores
	m.now = st.Now
	m.nextDTM = st.NextDTM
	m.nextRot = st.NextRot
	m.nextRec = st.NextRec
	m.rot = st.Rot
	m.steps = st.Steps
	m.decisions = st.Decisions
	m.act = st.Act
	m.hot = st.Hot
	m.res = cloneResult(st.Res)

	// Drop the hot-loop memo: the next step re-resolves its design point
	// from the shared store, which is deterministic, so the resumed run
	// sees the identical rates a never-checkpointed run would.
	m.haveLast = false
	m.lastNames = m.lastNames[:0]
	m.lastApps = ""
	return nil
}

// Digest returns the canonical digest of the state: SHA-256 over its
// full-precision rendering, truncated to 16 hex digits (the
// core.ConfigDigest idiom). fmt renders maps in sorted key order and
// floats in shortest round-trippable form, so the digest is
// deterministic and distinct bit patterns digest differently.
func (st *MEMSpotState) Digest() string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%+v", *st)))
	return hex.EncodeToString(sum[:8])
}

// cloneResult deep-copies the accumulator so snapshot, live run, and any
// later restores never share trace slices or residency maps.
func cloneResult(r MEMSpotResult) MEMSpotResult {
	r.AMBTrace = append([]float64(nil), r.AMBTrace...)
	r.DRAMTrace = append([]float64(nil), r.DRAMTrace...)
	r.AmbientTrace = append([]float64(nil), r.AmbientTrace...)
	cores := make(map[int]float64, len(r.TimeAtCores))
	for k, v := range r.TimeAtCores {
		cores[k] = v
	}
	freq := make(map[int]float64, len(r.TimeAtFreq))
	for k, v := range r.TimeAtFreq {
		freq[k] = v
	}
	r.TimeAtCores, r.TimeAtFreq = cores, freq
	return r
}
