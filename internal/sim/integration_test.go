package sim

import (
	"math"
	"testing"

	"dramtherm/internal/cpu"
	"dramtherm/internal/dtm"
	"dramtherm/internal/fbconfig"
	"dramtherm/internal/memctrl"
	"dramtherm/internal/trace"
	"dramtherm/internal/workload"
)

// TestEvenShareAssumption validates the level-2 simplification that
// traffic spreads evenly over the DIMMs of a channel: the structural
// per-DIMM counters of the level-1 FBDIMM simulator must be close to
// uniform under interleaved mapping.
func TestEvenShareAssumption(t *testing.T) {
	params := fbconfig.DefaultSimParams
	mem, err := memctrl.New(memctrl.DefaultConfig(params))
	if err != nil {
		t.Fatal(err)
	}
	mc, err := cpu.New(cpu.Config{
		Cores: 4, MaxFreqGHz: 3.2,
		L2Domain: []int{0, 0, 0, 0}, Params: params,
	}, mem, 1)
	if err != nil {
		t.Fatal(err)
	}
	mix, _ := workload.MixByName("W1")
	profs, _ := mix.Profiles()
	for i, p := range profs {
		mc.Assign(i, p, 1)
	}
	mc.RunFor(1e6)
	mc.ResetStats()
	mc.RunFor(1e6)
	for ci, ch := range mem.Channels() {
		var total float64
		locals := make([]float64, ch.DIMMs())
		for d, tr := range ch.Traffic() {
			locals[d] = float64(tr.LocalRead + tr.LocalWrite)
			total += locals[d]
		}
		if total == 0 {
			t.Fatalf("channel %d idle", ci)
		}
		for d, l := range locals {
			frac := l / total
			if math.Abs(frac-0.25) > 0.05 {
				t.Errorf("channel %d DIMM %d carries %.3f of traffic, want ≈0.25", ci, d, frac)
			}
		}
	}
}

// TestACGTrafficMonotonic: gating cores reduces total memory traffic —
// the mechanism that makes DTM-ACG a thermal actuator.
func TestACGTrafficMonotonic(t *testing.T) {
	l1 := NewLevel1(1)
	l1.WarmupNS, l1.MeasureNS = 1e6, 1e6
	mix, _ := workload.MixByName("W1")
	var prev float64 = math.Inf(1)
	for n := 4; n >= 1; n-- {
		dp := trace.DesignPoint{
			Apps:      trace.CanonApps(mix.Apps[:n]),
			FreqGHz:   3.2,
			BWCapGBps: math.Inf(1),
		}
		r, err := l1.Build(dp)
		if err != nil {
			t.Fatal(err)
		}
		got := r.TotalGBps()
		if got > prev*1.02 {
			t.Fatalf("%d apps drive %v GB/s, more than %d apps (%v)", n, got, n+1, prev)
		}
		prev = got
	}
}

// TestFreqTrafficShedding: the lowest DVFS state sheds enough traffic to
// be thermally sustainable — the property DTM-CDVFS regulation needs
// (§4.4.2 and the 0.8 GHz analysis in DESIGN.md).
func TestFreqTrafficShedding(t *testing.T) {
	l1 := NewLevel1(1)
	l1.WarmupNS, l1.MeasureNS = 1e6, 1e6
	mix, _ := workload.MixByName("W1")
	apps := trace.CanonApps(mix.Apps)
	get := func(f float64) float64 {
		r, err := l1.Build(trace.DesignPoint{Apps: apps, FreqGHz: f, BWCapGBps: math.Inf(1)})
		if err != nil {
			t.Fatal(err)
		}
		return r.TotalGBps()
	}
	full, slow := get(3.2), get(0.8)
	if slow >= full {
		t.Fatalf("0.8 GHz traffic %v not below 3.2 GHz %v", slow, full)
	}
	// Thermally sustainable threshold under AOHS 1.5 at 50 °C ambient is
	// ≈9.6 GB/s (T ≈ 100.8 + 0.95·GB/s, TDP 110).
	if slow > 10.5 {
		t.Fatalf("0.8 GHz traffic %v GB/s not thermally sustainable", slow)
	}
}

// TestMemBoundedness: the hot mixes are memory-bound at full speed (the
// premise of the whole DTM study), the cool W8-style mix less so.
func TestMemBoundedness(t *testing.T) {
	l1 := NewLevel1(1)
	l1.WarmupNS, l1.MeasureNS = 1e6, 1e6
	w1, _ := workload.MixByName("W1")
	w8, _ := workload.MixByName("W8")
	mb := func(mix workload.Mix) float64 {
		r, err := l1.Build(trace.DesignPoint{
			Apps: trace.CanonApps(mix.Apps), FreqGHz: 3.2, BWCapGBps: math.Inf(1)})
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, a := range r.PerApp {
			sum += a.MemBoundFrac
		}
		return sum / float64(len(r.PerApp))
	}
	hot, cool := mb(w1), mb(w8)
	if hot < 0.5 {
		t.Fatalf("W1 mem-bound fraction %v too low", hot)
	}
	if cool >= hot {
		t.Fatalf("W8 (%v) as memory-bound as W1 (%v)", cool, hot)
	}
}

// TestEnergyConsistency: level-2 FBDIMM energy over a run is bounded
// below by idle power × time and above by a saturated-system estimate.
func TestEnergyConsistency(t *testing.T) {
	cfg := tinyConfig(t, &dtm.NoLimit{Cores: 4})
	res, err := RunMix(cfg, tinyStore())
	if err != nil {
		t.Fatal(err)
	}
	nDIMM := float64(cfg.Params.PhysicalChannels * cfg.Params.DIMMsPerChannel)
	if cfg.Params.Cores == 0 {
		nDIMM = 16
	}
	idleW := nDIMM * (fbconfig.DefaultAMBPower.IdleLast + fbconfig.DefaultDRAMPower.Static)
	if res.MemEnergyJ < idleW*res.Seconds*0.9 {
		t.Fatalf("memory energy %v below idle floor %v", res.MemEnergyJ, idleW*res.Seconds)
	}
	maxW := nDIMM * 12.0 // ~12 W per DIMM at saturation
	if res.MemEnergyJ > maxW*res.Seconds {
		t.Fatalf("memory energy %v above saturation ceiling", res.MemEnergyJ)
	}
}
