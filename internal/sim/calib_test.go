package sim

import (
	"math"
	"testing"
	"time"

	"dramtherm/internal/trace"
	"dramtherm/internal/workload"
)

// TestCalibrationReport is a diagnostic: it prints level-1 rates for key
// design points so throughput calibration against the paper's workload
// classes (§4.3.2) can be checked with `go test -run Calibration -v`.
func TestCalibrationReport(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration report skipped in -short mode")
	}
	l1 := NewLevel1(1)
	mix, err := workload.MixByName("W1")
	if err != nil {
		t.Fatal(err)
	}
	cases := []trace.DesignPoint{
		{Apps: trace.CanonApps(mix.Apps), FreqGHz: 3.2, BWCapGBps: math.Inf(1)},
		{Apps: trace.CanonApps(mix.Apps[:3]), FreqGHz: 3.2, BWCapGBps: math.Inf(1)},
		{Apps: trace.CanonApps(mix.Apps[:2]), FreqGHz: 3.2, BWCapGBps: math.Inf(1)},
		{Apps: trace.CanonApps(mix.Apps), FreqGHz: 2.4, BWCapGBps: math.Inf(1)},
		{Apps: trace.CanonApps(mix.Apps), FreqGHz: 0.8, BWCapGBps: math.Inf(1)},
		{Apps: trace.CanonApps(mix.Apps), FreqGHz: 3.2, BWCapGBps: 6.4},
		{Apps: trace.CanonApps([]string{"swim", "swim", "swim", "swim"}), FreqGHz: 3.2, BWCapGBps: math.Inf(1)},
		{Apps: trace.CanonApps([]string{"galgel", "fma3d", "vpr", "apsi"}), FreqGHz: 3.2, BWCapGBps: math.Inf(1)},
		{Apps: "galgel", FreqGHz: 3.2, BWCapGBps: math.Inf(1)},
		{Apps: "art", FreqGHz: 3.2, BWCapGBps: math.Inf(1)},
	}
	for _, dp := range cases {
		start := time.Now()
		r, err := l1.Build(dp)
		if err != nil {
			t.Fatalf("build %v: %v", dp, err)
		}
		t.Logf("%v: total=%.2f GB/s (r=%.2f w=%.2f) lat=%.0f ns  [%.2fs]",
			dp, r.TotalGBps(), r.TotalReadGBps, r.TotalWriteGBps, r.MeanLatencyNS, time.Since(start).Seconds())
		for n, a := range r.PerApp {
			t.Logf("  %-8s instr=%.2fG/s ipcRef=%.2f read=%.2f write=%.2f missRate=%.2f mb=%.2f",
				n, a.InstrPerSec/1e9, a.IPCRef, a.ReadGBps, a.WriteGBps,
				a.L2MissPerSec/a.L2AccessPerSec, a.MemBoundFrac)
		}
	}
}
