// Package sim implements the two-level thermal simulator of §4.3.1
// (Fig. 4.1). Level1 is the architectural level: it runs the
// cycle-driven multicore + shared-L2 + FBDIMM model for a short
// steady-state window per design point and distills it to a trace.Rates
// record. MEMSpot is the thermal level: it replays rate records in 10 ms
// windows through the Chapter 3 power and thermal models with a DTM
// policy in the loop, for thousands of simulated seconds.
package sim

import (
	"fmt"

	"dramtherm/internal/cpu"
	"dramtherm/internal/fbconfig"
	"dramtherm/internal/memctrl"
	"dramtherm/internal/trace"
	"dramtherm/internal/workload"
)

// Level1 builds trace.Rates records by direct simulation. It implements
// trace.Builder.
type Level1 struct {
	// Params are the Table 4.1 machine parameters.
	Params fbconfig.SimParams
	// MaxFreqGHz is the top core clock (reference frequency of Eq. 3.6).
	MaxFreqGHz float64
	// WarmupNS and MeasureNS set the simulation window. The defaults
	// (1.5 ms + 1.5 ms) warm a 4 MB L2 several times over before
	// measuring.
	WarmupNS  float64
	MeasureNS float64
	// Seed drives the synthetic address streams.
	Seed int64
}

// NewLevel1 returns a builder with the Chapter 4 configuration.
func NewLevel1(seed int64) *Level1 {
	return &Level1{
		Params:     fbconfig.DefaultSimParams,
		MaxFreqGHz: fbconfig.DefaultSimParams.DVFS[0].FreqGHz,
		WarmupNS:   1.5e6,
		MeasureNS:  1.5e6,
		Seed:       seed,
	}
}

// Build implements trace.Builder: it simulates the design point and
// returns the measured rates.
func (l *Level1) Build(dp trace.DesignPoint) (trace.Rates, error) {
	names := dp.AppNames()
	if len(names) == 0 || dp.MemOff || dp.FreqGHz <= 0 {
		return trace.Zero(dp), nil
	}
	if len(names) > l.Params.Cores {
		return trace.Rates{}, fmt.Errorf("sim: %d apps exceed %d cores", len(names), l.Params.Cores)
	}

	mem, err := memctrl.New(memctrl.DefaultConfig(l.Params))
	if err != nil {
		return trace.Rates{}, err
	}
	mem.SetBandwidthCap(dp.BWCapGBps)

	cfg := cpu.Config{
		Cores:      l.Params.Cores,
		MaxFreqGHz: l.MaxFreqGHz,
		L2Domain:   make([]int, l.Params.Cores),
		Params:     l.Params,
	}
	mc, err := cpu.New(cfg, mem, l.Seed)
	if err != nil {
		return trace.Rates{}, err
	}
	mc.SetFreq(dp.FreqGHz)
	for i, n := range names {
		p, err := workload.ByName(n)
		if err != nil {
			return trace.Rates{}, err
		}
		mc.Assign(i, p, 1)
	}

	mc.RunFor(l.WarmupNS)
	mc.ResetStats()
	mc.RunFor(l.MeasureNS)

	return l.collect(dp, mc, names)
}

// collect turns simulator counters into a Rates record, averaging over
// instances of the same application name.
func (l *Level1) collect(dp trace.DesignPoint, mc *cpu.Multicore, names []string) (trace.Rates, error) {
	secs := l.MeasureNS / 1e9
	r := trace.Rates{Point: dp, PerApp: make(map[string]trace.AppRates, len(names))}

	counts := make(map[string]float64, len(names))
	for i, n := range names {
		cs := mc.Cores()[i].Stats()
		l2 := mc.L2(0).CoreStats(i)
		busy := cs.BusyCycles + cs.StallCycles
		mb := 0.0
		if busy > 0 {
			mb = cs.StallCycles / busy
		}
		readBytes := float64(l2.Misses+cs.SpecIssued) * 64
		writeBytes := float64(l2.Writebacks) * 64
		ar := trace.AppRates{
			InstrPerSec:    cs.Retired / secs,
			IPCRef:         cs.Retired / (l.MeasureNS * l.MaxFreqGHz),
			ReadGBps:       readBytes / secs / 1e9,
			WriteGBps:      writeBytes / secs / 1e9,
			L2MissPerSec:   float64(l2.Misses) / secs,
			L2AccessPerSec: float64(l2.Accesses) / secs,
			MemBoundFrac:   mb,
		}
		if prev, ok := r.PerApp[n]; ok {
			// Average instances of the same name.
			c := counts[n]
			r.PerApp[n] = trace.AppRates{
				InstrPerSec:    (prev.InstrPerSec*c + ar.InstrPerSec) / (c + 1),
				IPCRef:         (prev.IPCRef*c + ar.IPCRef) / (c + 1),
				ReadGBps:       (prev.ReadGBps*c + ar.ReadGBps) / (c + 1),
				WriteGBps:      (prev.WriteGBps*c + ar.WriteGBps) / (c + 1),
				L2MissPerSec:   (prev.L2MissPerSec*c + ar.L2MissPerSec) / (c + 1),
				L2AccessPerSec: (prev.L2AccessPerSec*c + ar.L2AccessPerSec) / (c + 1),
				MemBoundFrac:   (prev.MemBoundFrac*c + ar.MemBoundFrac) / (c + 1),
			}
		} else {
			r.PerApp[n] = ar
		}
		counts[n]++
	}

	ms := mc.Mem().Stats()
	r.TotalReadGBps = float64(ms.ReadBytes) / secs / 1e9
	r.TotalWriteGBps = float64(ms.WriteBytes) / secs / 1e9
	r.MeanLatencyNS = ms.MeanLatencyNS()
	return r, nil
}

// NewStore returns a trace store backed by a fresh Level1 builder.
func NewStore(seed int64) *trace.Store {
	return trace.NewStore(NewLevel1(seed))
}
