// MEMSpot: the level-2 power/thermal simulator of §4.3.1. It consumes
// trace.Rates records through a Store (building them on demand via
// Level1), steps the Chapter 3 power and thermal models in fixed windows,
// runs the workload batch to completion, and invokes the DTM policy at
// every DTM interval.

package sim

import (
	"context"
	"fmt"
	"math/rand"

	"dramtherm/internal/dtm"
	"dramtherm/internal/fbconfig"
	"dramtherm/internal/power"
	"dramtherm/internal/thermal"
	"dramtherm/internal/trace"
	"dramtherm/internal/workload"
)

// MEMSpotConfig configures one level-2 run.
type MEMSpotConfig struct {
	Mix      workload.Mix
	Replicas int // copies of each application in the batch (paper: 50)
	Policy   dtm.Policy

	Cooling fbconfig.Cooling
	Ambient fbconfig.Ambient
	Limits  fbconfig.ThermalLimits
	Params  fbconfig.SimParams
	CPU     fbconfig.CPUPower
	DVFS    []fbconfig.DVFSLevel

	WindowS       float64 // simulation window (default 10 ms)
	DTMIntervalS  float64 // policy invocation period (default 10 ms)
	DTMOverheadS  float64 // per-invocation overhead (default 25 µs)
	RotatePeriodS float64 // ACG round-robin rotation period (default 100 ms)
	RecordPeriodS float64 // temperature trace sampling (default 1 s)
	MaxSeconds    float64 // safety bound (default 50,000 s)
	InstrScale    float64 // scales application lengths (tests use <1)

	// SensorSeed enables sensor noise when nonzero (Chapter 5 platform
	// runs); zero keeps the Chapter 4 noiseless simulation sensors.
	SensorSeed int64

	// ExactThermal selects the retained per-step math.Exp thermal path
	// (thermal.Model.AdvanceExact) instead of the cached-decay fast path.
	// The two agree bit-for-bit today; the flag exists so the
	// differential harness (internal/simtest) can drive both through the
	// identical simulation stack.
	ExactThermal bool
}

// applyDefaults fills zero fields.
func (c *MEMSpotConfig) applyDefaults() {
	if c.Replicas == 0 {
		c.Replicas = 50
	}
	if c.WindowS == 0 {
		c.WindowS = 0.01
	}
	if c.DTMIntervalS == 0 {
		c.DTMIntervalS = 0.01
	}
	if c.DTMOverheadS == 0 {
		c.DTMOverheadS = 25e-6
	}
	if c.RotatePeriodS == 0 {
		c.RotatePeriodS = 0.1
	}
	if c.RecordPeriodS == 0 {
		c.RecordPeriodS = 1
	}
	if c.MaxSeconds == 0 {
		c.MaxSeconds = 50000
	}
	if c.InstrScale == 0 {
		c.InstrScale = 1
	}
	if c.Params.Cores == 0 {
		c.Params = fbconfig.DefaultSimParams
	}
	if c.CPU.MaxWatt == 0 {
		c.CPU = fbconfig.DefaultCPUPower
	}
	if len(c.DVFS) == 0 {
		c.DVFS = fbconfig.DTMDVFS
	}
	if c.Limits.AMBTDP == 0 {
		c.Limits = fbconfig.DefaultLimits
	}
}

// MEMSpotResult aggregates one run.
type MEMSpotResult struct {
	Seconds   float64
	TimedOut  bool
	Completed int // jobs finished

	ReadGB, WriteGB float64
	L2Misses        float64
	L2Accesses      float64

	MemEnergyJ float64
	CPUEnergyJ float64

	MaxAMB, MaxDRAM float64
	Overshoots      int // episodes in which a DTM decision observed T ≥ TDP

	// Sampled once per RecordPeriodS.
	AMBTrace     []float64
	DRAMTrace    []float64
	AmbientTrace []float64

	// Residency in seconds.
	TimeAtCores map[int]float64
	TimeAtFreq  map[int]float64
	TimeMemOff  float64
}

// TotalTrafficGB returns read+write traffic.
func (r MEMSpotResult) TotalTrafficGB() float64 { return r.ReadGB + r.WriteGB }

// job is one batch entry.
type job struct {
	prof      *workload.Profile
	remaining float64
	total     float64
}

// MEMSpot is the level-2 simulator instance.
type MEMSpot struct {
	cfg   MEMSpotConfig
	store *trace.Store

	model   *thermal.Model
	amb     *thermal.AmbientModel
	sensor  *thermal.Sensor
	queue   []*workload.Profile
	cores   []*job
	act     dtm.Action
	hot     bool // currently in an overshoot episode
	rot     int
	now     float64
	nextDTM float64
	nextRot float64
	nextRec float64

	// Hot-loop scratch state, reused across windows so the steady-state
	// step allocates nothing: the precomputed channel power model, the
	// power/gating/activity buffers, and a one-entry design-point → rates
	// memo (windows overwhelmingly repeat the previous window's design
	// point, so most steps skip the store lock and key canonicalization).
	chanModel   *power.ChannelModel
	pwBuf       []power.DIMMPower
	gatedBuf    []bool
	namesBuf    []string
	runningBuf  []int
	activityBuf []thermal.CoreActivity
	lastNames   []string
	lastApps    string
	lastDP      trace.DesignPoint
	lastRates   trace.Rates
	haveLast    bool

	steps     int64 // windows on the simulated timeline (inherited on Restore)
	decisions int   // DTM decisions taken so far; index of the next decision

	res MEMSpotResult
}

// NewMEMSpot builds a run over the given rate store.
func NewMEMSpot(cfg MEMSpotConfig, store *trace.Store) (*MEMSpot, error) {
	cfg.applyDefaults()
	if store == nil {
		return nil, fmt.Errorf("sim: nil trace store")
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("sim: nil policy")
	}
	profs, err := cfg.Mix.Profiles()
	if err != nil {
		return nil, err
	}

	m := &MEMSpot{cfg: cfg, store: store}
	inlet := cfg.Ambient.Inlet(cfg.Cooling)
	m.amb = thermal.NewAmbientModel(cfg.Ambient, inlet)
	idle := power.DIMMPower{
		AMB:  fbconfig.DefaultAMBPower.IdleOther,
		DRAM: fbconfig.DefaultDRAMPower.Static,
	}
	m.model = thermal.NewModel(cfg.Cooling, inlet, cfg.Params.DIMMsPerChannel, idle)
	if cfg.SensorSeed != 0 {
		m.sensor = thermal.NewSensor(rand.New(rand.NewSource(cfg.SensorSeed)))
	}
	cm, err := power.NewChannelModel(fbconfig.DefaultDRAMPower, fbconfig.DefaultAMBPower,
		power.EvenShares(cfg.Params.DIMMsPerChannel))
	if err != nil {
		return nil, err
	}
	m.chanModel = cm

	// Batch queue: Replicas rounds of the mix in round-robin order
	// (§4.3.2: jobs assigned to freed cores round-robin).
	for r := 0; r < cfg.Replicas; r++ {
		m.queue = append(m.queue, profs...)
	}
	m.cores = make([]*job, cfg.Params.Cores)
	for i := range m.cores {
		m.dispatch(i)
	}

	cfg.Policy.Reset()
	m.act = dtm.Action{BWCapGBps: dtm.NoCap(), ActiveCores: cfg.Params.Cores}
	m.res.TimeAtCores = make(map[int]float64)
	m.res.TimeAtFreq = make(map[int]float64)
	return m, nil
}

// dispatch pops the next job onto core i, if any.
func (m *MEMSpot) dispatch(i int) {
	if len(m.queue) == 0 {
		m.cores[i] = nil
		return
	}
	p := m.queue[0]
	m.queue = m.queue[1:]
	total := p.Instructions() * m.cfg.InstrScale
	m.cores[i] = &job{prof: p, remaining: total, total: total}
}

// done reports batch completion.
func (m *MEMSpot) done() bool {
	if len(m.queue) > 0 {
		return false
	}
	for _, j := range m.cores {
		if j != nil {
			return false
		}
	}
	return true
}

// gatedSet returns which cores are gated under the current action with
// round-robin rotation offset. The returned slice is scratch state
// valid until the next call.
func (m *MEMSpot) gatedSet() []bool {
	n := m.act.ActiveCores
	c := len(m.cores)
	if n > c {
		n = c
	}
	if n < 0 {
		n = 0
	}
	if cap(m.gatedBuf) < c {
		m.gatedBuf = make([]bool, c)
	}
	gated := m.gatedBuf[:c]
	for i := range gated {
		gated[i] = false
	}
	for k := 0; k < c-n; k++ {
		gated[(m.rot+k)%c] = true
	}
	return gated
}

// canonApps returns trace.CanonApps(names), memoized on the previous
// window's name sequence: consecutive windows almost always run the
// same jobs in the same core order, so the sort+join and its
// allocations are skipped in steady state.
func (m *MEMSpot) canonApps(names []string) string {
	if len(names) == len(m.lastNames) {
		same := true
		for i := range names {
			if names[i] != m.lastNames[i] {
				same = false
				break
			}
		}
		if same {
			return m.lastApps
		}
	}
	m.lastNames = append(m.lastNames[:0], names...)
	m.lastApps = trace.CanonApps(names)
	return m.lastApps
}

// Run executes the batch to completion (or MaxSeconds) and returns the
// result.
func (m *MEMSpot) Run() (MEMSpotResult, error) {
	return m.RunCtx(context.Background())
}

// StepWindow advances the simulation by exactly one window. It is the
// per-timestep unit of the level-2 hot loop, exposed for the
// differential test harness (internal/simtest) and the pinned
// benchmarks (cmd/benchsnap); normal callers use Run/RunCtx.
func (m *MEMSpot) StepWindow() error { return m.step() }

// Done reports whether the batch has completed (all jobs finished).
func (m *MEMSpot) Done() bool { return m.done() }

// Now returns the current simulated time in seconds.
func (m *MEMSpot) Now() float64 { return m.now }

// Window returns the simulation window length in seconds.
func (m *MEMSpot) Window() float64 { return m.cfg.WindowS }

// StepsTaken counts the windows on the simulated timeline so far,
// including windows inherited through Restore rather than executed here.
func (m *MEMSpot) StepsTaken() int64 { return m.steps }

// Decisions counts the DTM decisions taken so far — equally, the index
// of the next decision the policy will be asked for.
func (m *MEMSpot) Decisions() int { return m.decisions }

// RunCtx is Run with cancellation: the simulation loop aborts between
// windows as soon as ctx is done, returning the context error and the
// partial result accumulated so far.
func (m *MEMSpot) RunCtx(ctx context.Context) (MEMSpotResult, error) {
	return m.RunHooked(ctx, nil)
}

// RunHooked is RunCtx with an optional hook fired at every DTM decision
// boundary, immediately before the window that takes the decision. The
// prefix-sharing layer (internal/sweep/prefix) uses it to snapshot the
// simulator between policy decisions; a hook error aborts the run. A nil
// hook makes RunHooked identical to RunCtx.
func (m *MEMSpot) RunHooked(ctx context.Context, hook func(*MEMSpot) error) (MEMSpotResult, error) {
	for !m.done() {
		if err := ctx.Err(); err != nil {
			m.res.Seconds = m.now
			return m.res, err
		}
		if m.now >= m.cfg.MaxSeconds {
			m.res.TimedOut = true
			break
		}
		if hook != nil && m.now >= m.nextDTM {
			if err := hook(m); err != nil {
				m.res.Seconds = m.now
				return m.res, err
			}
		}
		if err := m.step(); err != nil {
			return m.res, err
		}
	}
	m.res.Seconds = m.now
	return m.res, nil
}

// step advances one window.
func (m *MEMSpot) step() error {
	win := m.cfg.WindowS
	overheadThisWindow := 0.0

	// DTM decision.
	if m.now >= m.nextDTM {
		ambR, dramR := m.model.HottestAMB(), m.model.HottestDRAM()
		if m.sensor != nil {
			ambR, dramR = m.sensor.Read(ambR), m.sensor.Read(dramR)
		}
		over := ambR >= m.cfg.Limits.AMBTDP || dramR >= m.cfg.Limits.DRAMTDP
		if over && !m.hot {
			m.res.Overshoots++
		}
		m.hot = over
		m.act = m.cfg.Policy.Decide(dtm.Input{
			AMB: ambR, DRAM: dramR, Now: m.now, Dt: m.cfg.DTMIntervalS,
		})
		m.decisions++
		m.nextDTM += m.cfg.DTMIntervalS
		overheadThisWindow = m.cfg.DTMOverheadS
	}
	// ACG rotation for fairness (§4.2.2).
	if m.now >= m.nextRot {
		m.rot++
		m.nextRot += m.cfg.RotatePeriodS
	}

	gated := m.gatedSet()
	freqIdx := m.act.FreqIndex
	if freqIdx < 0 {
		freqIdx = 0
	}
	if freqIdx >= len(m.cfg.DVFS) {
		freqIdx = len(m.cfg.DVFS) - 1
	}
	lv := m.cfg.DVFS[freqIdx]

	// Running combination → design point → rates.
	names := m.namesBuf[:0]
	running := m.runningBuf[:0]
	for i, j := range m.cores {
		if j != nil && !gated[i] {
			names = append(names, j.prof.Name)
			running = append(running, i)
		}
	}
	m.namesBuf, m.runningBuf = names, running
	dp := trace.DesignPoint{
		Apps:      m.canonApps(names),
		FreqGHz:   lv.FreqGHz,
		BWCapGBps: m.act.BWCapGBps,
		MemOff:    m.act.MemOff,
	}
	rates := m.lastRates
	if !m.haveLast || dp != m.lastDP {
		var err error
		rates, err = m.store.Get(dp)
		if err != nil {
			return err
		}
		m.lastDP, m.lastRates, m.haveLast = dp, rates, true
	}

	// Progress and traffic.
	effWin := win - overheadThisWindow
	if effWin < 0 {
		effWin = 0
	}
	var readG, writeG float64 // GB/s aggregates
	activity := m.activityBuf[:0]
	for _, i := range running {
		j := m.cores[i]
		ar := rates.PerApp[j.prof.Name]
		if ar.InstrPerSec <= 0 {
			continue
		}
		progress := 1 - j.remaining/j.total
		mul := j.prof.PhaseMul(progress)
		den := 1 - ar.MemBoundFrac + ar.MemBoundFrac*mul
		if den <= 0 {
			den = 1
		}
		rate := ar.InstrPerSec / den
		ratio := rate / ar.InstrPerSec
		readG += ar.ReadGBps * mul * ratio
		writeG += ar.WriteGBps * mul * ratio
		m.res.L2Misses += ar.L2MissPerSec * mul * ratio * effWin
		m.res.L2Accesses += ar.L2AccessPerSec * mul * ratio * effWin
		j.remaining -= rate * effWin
		activity = append(activity, thermal.CoreActivity{
			Volt: lv.Volt, IPC: ar.IPCRef * ratio,
		})
		if j.remaining <= 0 {
			m.res.Completed++
			m.dispatch(i)
		}
	}
	m.activityBuf = activity
	m.res.ReadGB += readG * win
	m.res.WriteGB += writeG * win

	// Power: the precomputed channel model evaluates the same arithmetic
	// as power.ChannelWatts with even shares, without re-deriving the
	// share geometry or allocating per window.
	pw := m.chanModel.WattsInto(m.pwBuf[:0],
		readG/float64(m.cfg.Params.PhysicalChannels),
		writeG/float64(m.cfg.Params.PhysicalChannels))
	m.pwBuf = pw
	var memW float64
	for _, p := range pw {
		memW += (p.AMB + p.DRAM) * float64(m.cfg.Params.PhysicalChannels)
	}
	m.res.MemEnergyJ += memW * win

	cpuW := m.cpuWatts(lv, len(running))
	m.res.CPUEnergyJ += cpuW * win

	// Thermal.
	if m.cfg.ExactThermal {
		m.model.Ambient = m.amb.AdvanceExact(activity, win)
		if err := m.model.AdvanceExact(pw, win); err != nil {
			return err
		}
	} else {
		m.model.Ambient = m.amb.Advance(activity, win)
		if err := m.model.Advance(pw, win); err != nil {
			return err
		}
	}
	if a := m.model.HottestAMB(); a > m.res.MaxAMB {
		m.res.MaxAMB = a
	}
	if d := m.model.HottestDRAM(); d > m.res.MaxDRAM {
		m.res.MaxDRAM = d
	}

	// Residency and traces.
	if m.act.MemOff {
		m.res.TimeMemOff += win
	}
	m.res.TimeAtCores[len(running)] += win
	m.res.TimeAtFreq[freqIdx] += win
	if m.now >= m.nextRec {
		m.res.AMBTrace = append(m.res.AMBTrace, m.model.HottestAMB())
		m.res.DRAMTrace = append(m.res.DRAMTrace, m.model.HottestDRAM())
		m.res.AmbientTrace = append(m.res.AmbientTrace, m.amb.T)
		m.nextRec += m.cfg.RecordPeriodS
	}

	m.now += win
	m.steps++
	return nil
}

// cpuWatts evaluates Table 4.4 for the current action.
func (m *MEMSpot) cpuWatts(lv fbconfig.DVFSLevel, runningCores int) float64 {
	if m.act.MemOff || runningCores == 0 {
		// Stalled or fully gated processor: HALT power.
		return m.cfg.CPU.IdleWatt
	}
	if m.act.FreqIndex > 0 {
		return power.CPUWatts(m.cfg.CPU, power.CPUState{
			ActiveCores: runningCores, TotalCores: len(m.cores),
			Level: lv, UseDVFS: true,
		})
	}
	return m.cfg.CPU.ActiveCoresWatt(runningCores)
}

// RunMix is the high-level helper: build MEMSpot, run it, return results.
func RunMix(cfg MEMSpotConfig, store *trace.Store) (MEMSpotResult, error) {
	return RunMixCtx(context.Background(), cfg, store)
}

// RunMixCtx is RunMix with cancellation.
func RunMixCtx(ctx context.Context, cfg MEMSpotConfig, store *trace.Store) (MEMSpotResult, error) {
	ms, err := NewMEMSpot(cfg, store)
	if err != nil {
		return MEMSpotResult{}, err
	}
	return ms.RunCtx(ctx)
}

// NoLimitRuntime runs the mix with the No-limit pseudo-policy and an
// artificially cold ambient so no thermal constraint binds; it is the
// normalization baseline of the paper's figures.
func NoLimitRuntime(cfg MEMSpotConfig, store *trace.Store) (MEMSpotResult, error) {
	cfg.Policy = &dtm.NoLimit{Cores: coresOf(cfg)}
	// The baseline machine is identical; only the thermal response is
	// ignored, which NoLimit already guarantees (it never throttles).
	return RunMix(cfg, store)
}

func coresOf(cfg MEMSpotConfig) int {
	if cfg.Params.Cores > 0 {
		return cfg.Params.Cores
	}
	return fbconfig.DefaultSimParams.Cores
}
