package sim

import (
	"math"
	"testing"

	"dramtherm/internal/dtm"
	"dramtherm/internal/trace"
	"dramtherm/internal/workload"
)

// BenchmarkLevel1Build measures one level-1 design-point simulation (the
// unit of trace construction).
func BenchmarkLevel1Build(b *testing.B) {
	l1 := NewLevel1(1)
	l1.WarmupNS, l1.MeasureNS = 3e5, 3e5
	mix, err := workload.MixByName("W1")
	if err != nil {
		b.Fatal(err)
	}
	dp := trace.DesignPoint{Apps: trace.CanonApps(mix.Apps), FreqGHz: 3.2, BWCapGBps: math.Inf(1)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l1.Build(dp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMEMSpotSecond measures level-2 simulation speed in simulated
// seconds per wall second (100 windows of 10 ms per iteration).
func BenchmarkMEMSpotSecond(b *testing.B) {
	mix, err := workload.MixByName("W1")
	if err != nil {
		b.Fatal(err)
	}
	store := trace.NewStore(fastLevel1())
	cfg := MEMSpotConfig{
		Mix: mix, Replicas: 1000, Policy: dtm.NewACG(dtm.DefaultLevels(), 4),
		InstrScale: 1,
	}
	ms, err := NewMEMSpot(cfg, store)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for w := 0; w < 100; w++ {
			if err := ms.step(); err != nil {
				b.Fatal(err)
			}
		}
	}
}
