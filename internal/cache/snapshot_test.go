package cache

import (
	"math/rand"
	"testing"
)

// TestSnapshotForkBitIdentical: a restored cache serves the exact same
// hit/miss/writeback sequence as the cache it was captured from.
func TestSnapshotForkBitIdentical(t *testing.T) {
	src := small(t)
	rng := rand.New(rand.NewSource(11))
	access := func(c *Cache) Result {
		kind := Load
		if rng.Intn(3) == 0 {
			kind = Store
		}
		return c.Access(rng.Intn(2), Addr(rng.Intn(512))*64, kind)
	}
	for i := 0; i < 500; i++ {
		access(src)
	}
	st := src.Snapshot()

	dst := small(t)
	if err := dst.Restore(st); err != nil {
		t.Fatal(err)
	}
	if dst.Stats() != src.Stats() {
		t.Fatalf("restored stats %+v != source %+v", dst.Stats(), src.Stats())
	}
	// Lockstep: both caches see the identical remaining access stream.
	seq := rand.New(rand.NewSource(12))
	for i := 0; i < 500; i++ {
		kind := Load
		if seq.Intn(3) == 0 {
			kind = Store
		}
		addr := Addr(seq.Intn(512)) * 64
		core := seq.Intn(2)
		if a, b := src.Access(core, addr, kind), dst.Access(core, addr, kind); a != b {
			t.Fatalf("access %d: %+v vs %+v", i, a, b)
		}
	}
	if src.Stats() != dst.Stats() || src.CoreStats(0) != dst.CoreStats(0) || src.CoreStats(1) != dst.CoreStats(1) {
		t.Fatal("stats diverged after lockstep accesses")
	}
}

// TestSnapshotIsDeepCopy: mutating the source after Snapshot must not
// bleed into the captured state.
func TestSnapshotIsDeepCopy(t *testing.T) {
	src := small(t)
	src.Access(0, 0, Store)
	st := src.Snapshot()
	dirtyBefore := append([]bool(nil), st.Dirty...)
	src.Flush()
	for i := range st.Dirty {
		if st.Dirty[i] != dirtyBefore[i] {
			t.Fatal("snapshot aliases the live dirty array")
		}
	}
}

func TestRestoreRejectsGeometryMismatch(t *testing.T) {
	st := small(t).Snapshot()
	bigger := mustNew(t, Config{SizeKB: 16, Ways: 2, LineBytes: 64}, 2)
	if err := bigger.Restore(st); err == nil {
		t.Fatal("8KB snapshot restored onto a 16KB cache")
	}
	moreCores := mustNew(t, Config{SizeKB: 8, Ways: 2, LineBytes: 64}, 4)
	if err := moreCores.Restore(st); err == nil {
		t.Fatal("2-core snapshot restored onto a 4-core cache")
	}
}
