// Package cache implements the set-associative write-back caches of the
// level-1 architectural simulator (Table 4.1): per-core L1s and the shared
// L2 whose contention behaviour drives the DTM-ACG results. The shared L2
// is the load-bearing component: when cores are clock-gated, the surviving
// programs occupy more ways and miss less, which is the paper's main
// source of DTM-ACG performance gain (§4.4.2, §5.4.3).
package cache

import "fmt"

// Addr is a byte address. Streams address a per-core private region by
// setting high bits, so cores never alias.
type Addr = uint64

// AccessKind distinguishes loads from stores for dirty-bit maintenance.
type AccessKind int

const (
	// Load is a read access.
	Load AccessKind = iota
	// Store is a write access; it marks the line dirty.
	Store
)

// Result describes the outcome of an access.
type Result struct {
	Hit bool
	// Writeback holds the address of a dirty victim evicted by this
	// access; WritebackValid reports whether one occurred.
	Writeback      Addr
	WritebackValid bool
}

// Config sizes a cache.
type Config struct {
	SizeKB    int
	Ways      int
	LineBytes int
}

// Validate reports sizing errors.
func (c Config) Validate() error {
	if c.SizeKB <= 0 || c.Ways <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("cache: non-positive dimension in %+v", c)
	}
	lines := c.SizeKB * 1024 / c.LineBytes
	if lines%c.Ways != 0 {
		return fmt.Errorf("cache: %d lines not divisible by %d ways", lines, c.Ways)
	}
	sets := lines / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// Stats counts cache events, overall and per requester core.
type Stats struct {
	Accesses   uint64
	Misses     uint64
	Writebacks uint64
}

// MissRate returns misses/accesses, or 0 when idle.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is a set-associative, write-back, write-allocate cache with LRU
// replacement. It is a functional model (tags only): timing is handled by
// the caller.
type Cache struct {
	cfg      Config
	sets     int
	ways     int
	lineBits uint
	setMask  uint64

	tags  []uint64 // sets × ways; tag 0 means empty (tags stored +1)
	dirty []bool
	owner []uint8  // requester core of the resident line
	stamp []uint64 // LRU timestamps
	clock uint64

	stats   Stats
	perCore []Stats
}

// New builds a cache for cfg with stats tracked for cores requester IDs
// 0..cores-1 (pass 1 for a private cache).
func New(cfg Config, cores int) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cores < 1 {
		cores = 1
	}
	lines := cfg.SizeKB * 1024 / cfg.LineBytes
	sets := lines / cfg.Ways
	lineBits := uint(0)
	for 1<<lineBits < cfg.LineBytes {
		lineBits++
	}
	c := &Cache{
		cfg:      cfg,
		sets:     sets,
		ways:     cfg.Ways,
		lineBits: lineBits,
		setMask:  uint64(sets - 1),
		tags:     make([]uint64, lines),
		dirty:    make([]bool, lines),
		owner:    make([]uint8, lines),
		stamp:    make([]uint64, lines),
		perCore:  make([]Stats, cores),
	}
	return c, nil
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Access performs one access by core (requester ID) and returns the
// result. On a miss the line is allocated, evicting the LRU way; a dirty
// victim's address is reported for writeback.
func (c *Cache) Access(core int, addr Addr, kind AccessKind) Result {
	c.clock++
	line := addr >> c.lineBits
	set := int(line & c.setMask)
	tag := line >> 0 // full line address stored; +1 marks valid
	base := set * c.ways

	c.stats.Accesses++
	if core >= 0 && core < len(c.perCore) {
		c.perCore[core].Accesses++
	}

	// Hit path.
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.tags[i] == tag+1 {
			c.stamp[i] = c.clock
			if kind == Store {
				c.dirty[i] = true
			}
			return Result{Hit: true}
		}
	}

	// Miss: find victim (empty way first, else LRU).
	c.stats.Misses++
	if core >= 0 && core < len(c.perCore) {
		c.perCore[core].Misses++
	}
	victim := base
	var oldest uint64 = ^uint64(0)
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.tags[i] == 0 {
			victim = i
			oldest = 0
			break
		}
		if c.stamp[i] < oldest {
			oldest = c.stamp[i]
			victim = i
		}
	}

	var res Result
	if c.tags[victim] != 0 && c.dirty[victim] {
		victimLine := c.tags[victim] - 1
		res.Writeback = victimLine << c.lineBits
		res.WritebackValid = true
		c.stats.Writebacks++
		oc := int(c.owner[victim])
		if oc < len(c.perCore) {
			c.perCore[oc].Writebacks++
		}
	}
	c.tags[victim] = tag + 1
	c.dirty[victim] = kind == Store
	c.stamp[victim] = c.clock
	if core >= 0 && core < 256 {
		c.owner[victim] = uint8(core)
	}
	return res
}

// Contains reports whether addr's line is resident (no LRU update).
func (c *Cache) Contains(addr Addr) bool {
	line := addr >> c.lineBits
	set := int(line & c.setMask)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == line+1 {
			return true
		}
	}
	return false
}

// Stats returns the aggregate counters.
func (c *Cache) Stats() Stats { return c.stats }

// CoreStats returns the counters attributed to one requester core.
func (c *Cache) CoreStats(core int) Stats {
	if core < 0 || core >= len(c.perCore) {
		return Stats{}
	}
	return c.perCore[core]
}

// ResetStats clears the counters without disturbing cache contents, used
// after the warmup window of a level-1 run.
func (c *Cache) ResetStats() {
	c.stats = Stats{}
	for i := range c.perCore {
		c.perCore[i] = Stats{}
	}
}

// Flush empties the cache and returns the number of dirty lines dropped.
// Used when reassigning core ownership between batch jobs.
func (c *Cache) Flush() int {
	n := 0
	for i := range c.tags {
		if c.tags[i] != 0 && c.dirty[i] {
			n++
		}
		c.tags[i] = 0
		c.dirty[i] = false
		c.stamp[i] = 0
	}
	return n
}
