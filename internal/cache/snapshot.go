// Snapshot/restore seam for the functional cache model, part of the
// level-1 checkpoint chain (internal/cpu). All cache state is plain
// data, so a snapshot is a deep copy of the line arrays plus counters.

package cache

import "fmt"

// State is the restorable state of a Cache. Geometry (Config) is not
// part of the state: a snapshot restores only onto a cache built with
// the same configuration, which Restore checks via array lengths.
type State struct {
	Tags    []uint64
	Dirty   []bool
	Owner   []uint8
	Stamp   []uint64
	Clock   uint64
	Stats   Stats
	PerCore []Stats
}

// Snapshot deep-copies the cache's dynamic state.
func (c *Cache) Snapshot() State {
	return State{
		Tags:    append([]uint64(nil), c.tags...),
		Dirty:   append([]bool(nil), c.dirty...),
		Owner:   append([]uint8(nil), c.owner...),
		Stamp:   append([]uint64(nil), c.stamp...),
		Clock:   c.clock,
		Stats:   c.stats,
		PerCore: append([]Stats(nil), c.perCore...),
	}
}

// Restore overwrites the cache's state from a snapshot taken on a cache
// with the same geometry and core count.
func (c *Cache) Restore(st State) error {
	if len(st.Tags) != len(c.tags) || len(st.Dirty) != len(c.dirty) ||
		len(st.Owner) != len(c.owner) || len(st.Stamp) != len(c.stamp) {
		return fmt.Errorf("cache: restore onto a cache with different geometry")
	}
	if len(st.PerCore) != len(c.perCore) {
		return fmt.Errorf("cache: restore with %d per-core stats onto %d cores", len(st.PerCore), len(c.perCore))
	}
	copy(c.tags, st.Tags)
	copy(c.dirty, st.Dirty)
	copy(c.owner, st.Owner)
	copy(c.stamp, st.Stamp)
	c.clock = st.Clock
	c.stats = st.Stats
	copy(c.perCore, st.PerCore)
	return nil
}
