package cache

import (
	"math/rand"
	"testing"
)

// BenchmarkAccess measures the shared-L2 lookup path, the hottest inner
// loop of the level-1 simulator.
func BenchmarkAccess(b *testing.B) {
	c, err := New(Config{SizeKB: 4096, Ways: 8, LineBytes: 64}, 4)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(rng.Int63n(1 << 24))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(i&3, addrs[i&4095], Load)
	}
}

// BenchmarkAccessHit measures the pure hit path.
func BenchmarkAccessHit(b *testing.B) {
	c, err := New(Config{SizeKB: 64, Ways: 4, LineBytes: 64}, 1)
	if err != nil {
		b.Fatal(err)
	}
	c.Access(0, 0, Load)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(0, 0, Load)
	}
}
