package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, cfg Config, cores int) *Cache {
	t.Helper()
	c, err := New(cfg, cores)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func small(t *testing.T) *Cache {
	return mustNew(t, Config{SizeKB: 8, Ways: 2, LineBytes: 64}, 2) // 64 sets
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{SizeKB: 0, Ways: 2, LineBytes: 64},
		{SizeKB: 8, Ways: 0, LineBytes: 64},
		{SizeKB: 8, Ways: 2, LineBytes: 0},
		{SizeKB: 8, Ways: 3, LineBytes: 64},  // lines not divisible
		{SizeKB: 12, Ways: 2, LineBytes: 64}, // sets not power of two
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
	if err := (Config{SizeKB: 4096, Ways: 8, LineBytes: 64}).Validate(); err != nil {
		t.Fatalf("Table 4.1 L2 rejected: %v", err)
	}
}

func TestHitMiss(t *testing.T) {
	c := small(t)
	if r := c.Access(0, 0x1000, Load); r.Hit {
		t.Fatal("cold access hit")
	}
	if r := c.Access(0, 0x1000, Load); !r.Hit {
		t.Fatal("warm access missed")
	}
	// Same line, different byte offset: still a hit.
	if r := c.Access(0, 0x103F, Load); !r.Hit {
		t.Fatal("same-line access missed")
	}
	st := c.Stats()
	if st.Accesses != 3 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := small(t) // 2 ways
	setStride := uint64(64 * c.Sets())
	a, b, d := uint64(0), setStride, 2*setStride // same set
	c.Access(0, a, Load)
	c.Access(0, b, Load)
	c.Access(0, a, Load) // a is now MRU
	c.Access(0, d, Load) // evicts b (LRU)
	if !c.Contains(a) {
		t.Fatal("a evicted")
	}
	if c.Contains(b) {
		t.Fatal("b survived")
	}
	if !c.Contains(d) {
		t.Fatal("d not inserted")
	}
}

func TestWriteback(t *testing.T) {
	c := small(t)
	setStride := uint64(64 * c.Sets())
	c.Access(0, 0, Store) // dirty
	c.Access(0, setStride, Load)
	r := c.Access(0, 2*setStride, Load) // evicts the dirty line
	if !r.WritebackValid {
		t.Fatal("no writeback for dirty victim")
	}
	if r.Writeback != 0 {
		t.Fatalf("writeback addr = %#x", r.Writeback)
	}
	// Clean victims do not write back.
	r = c.Access(0, 3*setStride, Load)
	if r.WritebackValid {
		t.Fatal("clean victim wrote back")
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d", c.Stats().Writebacks)
	}
}

func TestStoreHitDirties(t *testing.T) {
	c := small(t)
	setStride := uint64(64 * c.Sets())
	c.Access(0, 0, Load)  // clean
	c.Access(0, 0, Store) // hit, now dirty
	c.Access(0, setStride, Load)
	r := c.Access(0, 2*setStride, Load)
	if !r.WritebackValid {
		t.Fatal("store-hit did not dirty the line")
	}
}

func TestPerCoreStats(t *testing.T) {
	c := small(t)
	c.Access(0, 0x0, Load)
	c.Access(1, 0x40, Load)
	c.Access(1, 0x40, Load)
	if s := c.CoreStats(0); s.Accesses != 1 || s.Misses != 1 {
		t.Fatalf("core0 = %+v", s)
	}
	if s := c.CoreStats(1); s.Accesses != 2 || s.Misses != 1 {
		t.Fatalf("core1 = %+v", s)
	}
	if s := c.CoreStats(99); s.Accesses != 0 {
		t.Fatalf("out of range stats = %+v", s)
	}
}

func TestResetStatsAndFlush(t *testing.T) {
	c := small(t)
	c.Access(0, 0, Store)
	c.ResetStats()
	if c.Stats().Accesses != 0 {
		t.Fatal("stats not reset")
	}
	if !c.Contains(0) {
		t.Fatal("reset flushed contents")
	}
	if n := c.Flush(); n != 1 {
		t.Fatalf("flushed %d dirty lines", n)
	}
	if c.Contains(0) {
		t.Fatal("flush kept contents")
	}
}

// TestWorkingSetFits: a working set smaller than the cache converges to
// all hits — the capacity behaviour the DTM-ACG gains rely on.
func TestWorkingSetFits(t *testing.T) {
	c := mustNew(t, Config{SizeKB: 64, Ways: 4, LineBytes: 64}, 1)
	rng := rand.New(rand.NewSource(1))
	lines := uint64(32 * 1024 / 64) // 32 KB working set in a 64 KB cache
	for i := 0; i < 20000; i++ {
		c.Access(0, uint64(rng.Int63n(int64(lines)))*64, Load)
	}
	c.ResetStats()
	for i := 0; i < 20000; i++ {
		c.Access(0, uint64(rng.Int63n(int64(lines)))*64, Load)
	}
	if mr := c.Stats().MissRate(); mr > 0.001 {
		t.Fatalf("fitting working set missed %.3f", mr)
	}
}

// TestContention: two cores sharing the cache miss more than one core
// alone with the same per-core working set.
func TestContention(t *testing.T) {
	run := func(cores int) float64 {
		c := mustNew(t, Config{SizeKB: 64, Ways: 4, LineBytes: 64}, 2)
		rng := rand.New(rand.NewSource(2))
		lines := int64(48 * 1024 / 64) // 48 KB per core
		for i := 0; i < 40000; i++ {
			core := i % cores
			addr := uint64(core)<<32 | uint64(rng.Int63n(lines))*64
			c.Access(core, addr, Load)
		}
		return c.Stats().MissRate()
	}
	solo, shared := run(1), run(2)
	if shared <= solo {
		t.Fatalf("no contention effect: solo %.3f shared %.3f", solo, shared)
	}
}

// Property: misses never exceed accesses, and stats add up per core.
func TestStatsConsistencyProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		c, err := New(Config{SizeKB: 8, Ways: 2, LineBytes: 64}, 4)
		if err != nil {
			return false
		}
		for i, a := range addrs {
			kind := Load
			if a%3 == 0 {
				kind = Store
			}
			c.Access(i%4, uint64(a)*64, kind)
		}
		st := c.Stats()
		if st.Misses > st.Accesses {
			return false
		}
		var sum Stats
		for core := 0; core < 4; core++ {
			cs := c.CoreStats(core)
			sum.Accesses += cs.Accesses
			sum.Misses += cs.Misses
			sum.Writebacks += cs.Writebacks
		}
		return sum.Accesses == st.Accesses && sum.Misses == st.Misses &&
			sum.Writebacks == st.Writebacks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMissRateZeroWhenIdle(t *testing.T) {
	if (Stats{}).MissRate() != 0 {
		t.Fatal("idle miss rate not 0")
	}
}
