// Package platform emulates the two Chapter 5 server testbeds — the Dell
// PowerEdge 1950 and the instrumented Intel SR1500AL — on top of the same
// power/thermal substrate as the Chapter 4 simulator. The machines have
// two dual-core Xeon 5160 sockets (one shared L2 per socket), FBDIMM
// memory behind an Intel-5000X-style controller, strong CPU→memory
// thermal interaction (the cooling air passes the processors before the
// DIMMs), noisy AMB sensors, and software DTM with a one-second interval
// implemented through the three OS mechanisms of §5.2.1: chipset
// activation-window bandwidth throttling, CPU hotplug (core gating with
// Linux time-quantum sharing of the remaining core), and cpufreq DVFS.
package platform

import (
	"fmt"
	"sort"
	"strings"

	"dramtherm/internal/cpu"
	"dramtherm/internal/dtm"
	"dramtherm/internal/fbconfig"
	"dramtherm/internal/memctrl"
	"dramtherm/internal/power"
	"dramtherm/internal/trace"
	"dramtherm/internal/workload"
)

// Machine describes one server.
type Machine struct {
	Name string

	// Memory geometry (logical channels of ganged physical pairs).
	LogicalChannels  int
	DIMMsPerChannel  int
	PhysicalChannels int

	// Thermal characterization, calibrated to the measured curves of
	// §5.4.1 (idle AMB ≈ 81 °C at 36 °C ambient on the SR1500AL; swim
	// reaching ≈ 96–100 °C).
	Cooling fbconfig.Cooling
	// SystemAmbient is the front-panel (room/hot-box) temperature.
	SystemAmbient fbconfig.Celsius
	// PsiXi is the measured CPU→memory interaction coefficient (Eq. 3.6);
	// ≈ 10 °C of preheat at full load on these chassis.
	PsiXi float64

	// AMB thermal design point and Table 5.1 emergency boundaries.
	AMBTDP    fbconfig.Celsius
	AMBLevels [4]fbconfig.Celsius

	// BW caps per running level L2..L4 in GB/s (L1 is uncapped); the last
	// entry doubles as the worst-case open-loop safety cap.
	BWCaps [3]float64

	CPU power.Xeon5160

	// FSBGBps is the front-side-bus ceiling on aggregate memory traffic:
	// the Xeon 5160 sockets reach the 5000X chipset over two FSBs, which
	// bound achievable memory throughput well below the FBDIMM channel
	// peak on these machines.
	FSBGBps float64

	// SimParams drive the platform's level-1 machine.
	SimParams fbconfig.SimParams
}

// platformSimParams builds the level-1 machine parameters for m.
func platformSimParams(logicalChannels, dimmsPerChannel int) fbconfig.SimParams {
	p := fbconfig.DefaultSimParams
	p.LogicalChannels = logicalChannels
	p.DIMMsPerChannel = dimmsPerChannel
	p.PhysicalChannels = 2 * logicalChannels
	p.L2Ways = 16 // the Xeon 5160 L2 is 4 MB 16-way (§5.3.1)
	p.DVFS = []fbconfig.DVFSLevel{
		{FreqGHz: 3.000, Volt: 1.2125},
		{FreqGHz: 2.667, Volt: 1.1625},
		{FreqGHz: 2.333, Volt: 1.1000},
		{FreqGHz: 2.000, Volt: 1.0375},
	}
	return p
}

// PE1950 returns the Dell PowerEdge 1950 testbed: stand-alone box in an
// air-conditioned room (26 °C), two FBDIMMs, artificial AMB TDP of 90 °C
// (§5.3.1, Table 5.1).
func PE1950() Machine {
	return Machine{
		Name:             "PE1950",
		LogicalChannels:  1,
		DIMMsPerChannel:  1, // one ganged position = 2 physical DIMMs
		PhysicalChannels: 2,
		Cooling: fbconfig.Cooling{
			// Calibrated so swim-class workloads peak near the measured
			// ~96 °C at room ambient and the TDP of 90 °C sustains
			// ≈9 GB/s (§5.4.1, Fig. 5.5).
			Spreader: fbconfig.AOHS, AirVelocity: 2.0,
			PsiAMB: 6.5, PsiDRAMAMB: 1.9, PsiDRAM: 2.5, PsiAMBDRAM: 3.0,
			TauAMB: 50, TauDRAM: 100,
		},
		SystemAmbient: 26,
		PsiXi:         3.0, // processors misaligned with DIMMs → weaker preheat
		AMBTDP:        90,
		AMBLevels:     [4]fbconfig.Celsius{76, 80, 84, 88},
		BWCaps:        [3]float64{4, 3, 2},
		CPU:           power.DefaultXeon5160,
		FSBGBps:       8,
		SimParams:     platformSimParams(1, 1),
	}
}

// SR1500AL returns the instrumented Intel SR1500AL testbed: hot-box
// enclosure (36 °C default), four FBDIMMs, AMB TDP 100 °C (Table 5.1).
func SR1500AL() Machine {
	return Machine{
		Name:             "SR1500AL",
		LogicalChannels:  2,
		DIMMsPerChannel:  1, // 4 physical DIMMs
		PhysicalChannels: 4,
		Cooling: fbconfig.Cooling{
			// Calibrated to the measured curves of Fig. 5.4: idle AMB near
			// 80 °C in the 36 °C hot box, swim/mgrid reaching 100 °C in
			// ≈150 s, and a 100 °C TDP sustaining ≈10 GB/s.
			Spreader: fbconfig.AOHS, AirVelocity: 1.5,
			PsiAMB: 9.5, PsiDRAMAMB: 3.2, PsiDRAM: 2.8, PsiAMBDRAM: 3.2,
			TauAMB: 50, TauDRAM: 100,
		},
		SystemAmbient: 36,
		PsiXi:         4.0, // one socket directly upstream of the DIMMs
		AMBTDP:        100,
		AMBLevels:     [4]fbconfig.Celsius{86, 90, 94, 98},
		BWCaps:        [3]float64{5, 4, 3},
		CPU:           power.DefaultXeon5160,
		FSBGBps:       8,
		SimParams:     platformSimParams(2, 1),
	}
}

// PolicyKind names the Chapter 5 DTM policies.
type PolicyKind int

const (
	// NoLimit disables thermal management (baseline).
	NoLimit PolicyKind = iota
	// BW is bandwidth throttling (§5.2.2 DTM-BW).
	BW
	// ACG is adaptive core gating (DTM-ACG).
	ACG
	// CDVFS is coordinated DVFS (DTM-CDVFS).
	CDVFS
	// COMB combines ACG and CDVFS (DTM-COMB, §5.2.2).
	COMB
)

// String implements fmt.Stringer.
func (k PolicyKind) String() string {
	switch k {
	case NoLimit:
		return "No-limit"
	case BW:
		return "DTM-BW"
	case ACG:
		return "DTM-ACG"
	case CDVFS:
		return "DTM-CDVFS"
	case COMB:
		return "DTM-COMB"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(k))
	}
}

// PolicyKinds lists the Chapter 5 policies in presentation order.
func PolicyKinds() []PolicyKind { return []PolicyKind{NoLimit, BW, ACG, CDVFS, COMB} }

// runLevel is the thermal running level 0..3 (Table 5.1 L1..L4), plus a
// safety level 4 (open-loop cap engaged above the TDP band).
type runLevel struct {
	cores   int     // active cores (4, 3, or 2)
	freqIdx int     // Xeon DVFS index
	cap     float64 // GB/s, +Inf = uncapped
}

// levelTable returns the Table 5.1 running levels for policy k on m.
func levelTable(m Machine, k PolicyKind) []runLevel {
	inf := dtm.NoCap()
	switch k {
	case NoLimit:
		return []runLevel{{4, 0, inf}, {4, 0, inf}, {4, 0, inf}, {4, 0, inf}, {4, 0, inf}}
	case BW:
		return []runLevel{
			{4, 0, inf}, {4, 0, m.BWCaps[0]}, {4, 0, m.BWCaps[1]}, {4, 0, m.BWCaps[2]},
			{4, 0, m.BWCaps[2]},
		}
	case ACG:
		return []runLevel{
			{4, 0, inf}, {3, 0, inf}, {2, 0, inf}, {2, 0, m.BWCaps[2]},
			{2, 0, m.BWCaps[2]},
		}
	case CDVFS:
		return []runLevel{
			{4, 0, inf}, {4, 1, inf}, {4, 2, inf}, {4, 3, inf},
			{4, 3, m.BWCaps[2]},
		}
	case COMB:
		return []runLevel{
			{4, 0, inf}, {3, 1, inf}, {2, 2, inf}, {2, 3, inf},
			{2, 3, m.BWCaps[2]},
		}
	default:
		panic(fmt.Sprintf("platform: unknown policy %v", k))
	}
}

// levelOf maps a sensor reading onto a running level index using the
// machine's Table 5.1 boundaries (index 4 = above the top band).
func levelOf(m Machine, amb fbconfig.Celsius) int {
	for i, b := range m.AMBLevels {
		if amb < b {
			return i
		}
	}
	return len(m.AMBLevels)
}

// domainKey canonicalizes a per-socket assignment into a design-point key
// that preserves which L2 domain each program runs in:
// "appA|appB/appC|appD" (sorted within each domain, domains sorted).
func domainKey(domains [][]string) string {
	parts := make([]string, 0, len(domains))
	for _, d := range domains {
		apps := make([]string, 0, len(d))
		for _, a := range d {
			if a != "" {
				apps = append(apps, a)
			}
		}
		sort.Strings(apps)
		parts = append(parts, strings.Join(apps, "|"))
	}
	sort.Strings(parts)
	return strings.Join(parts, "/")
}

// Level1 builds rate records for the platform machine: two L2 domains,
// Xeon frequencies, platform memory geometry. The design-point Apps key
// is the domainKey format above.
type Level1 struct {
	Machine   Machine
	WarmupNS  float64
	MeasureNS float64
	Seed      int64
}

// NewLevel1 returns a builder for m.
func NewLevel1(m Machine, seed int64) *Level1 {
	return &Level1{Machine: m, WarmupNS: 1.5e6, MeasureNS: 1.5e6, Seed: seed}
}

// Build implements trace.Builder.
func (l *Level1) Build(dp trace.DesignPoint) (trace.Rates, error) {
	if dp.MemOff || dp.Apps == "" || dp.FreqGHz <= 0 {
		return trace.Zero(dp), nil
	}
	params := l.Machine.SimParams
	mem, err := memctrl.New(memctrl.DefaultConfig(params))
	if err != nil {
		return trace.Rates{}, err
	}
	cap := dp.BWCapGBps
	if l.Machine.FSBGBps > 0 && cap > l.Machine.FSBGBps {
		cap = l.Machine.FSBGBps
	}
	mem.SetBandwidthCap(cap)

	domains := strings.Split(dp.Apps, "/")
	var names []string
	var l2dom []int
	for di, d := range domains {
		if d == "" {
			continue
		}
		for _, a := range strings.Split(d, "|") {
			names = append(names, a)
			l2dom = append(l2dom, di)
		}
	}
	if len(names) > params.Cores {
		return trace.Rates{}, fmt.Errorf("platform: %d apps exceed %d cores", len(names), params.Cores)
	}
	for len(l2dom) < params.Cores {
		l2dom = append(l2dom, 0)
	}
	cfg := cpu.Config{
		Cores:      params.Cores,
		MaxFreqGHz: l.Machine.CPU.Levels[0].FreqGHz,
		L2Domain:   l2dom,
		Params:     params,
	}
	mc, err := cpu.New(cfg, mem, l.Seed)
	if err != nil {
		return trace.Rates{}, err
	}
	mc.SetFreq(dp.FreqGHz)
	for i, n := range names {
		p, err := workload.ByName(n)
		if err != nil {
			return trace.Rates{}, err
		}
		mc.Assign(i, p, 1)
	}
	mc.RunFor(l.WarmupNS)
	mc.ResetStats()
	mc.RunFor(l.MeasureNS)
	return l.collect(dp, mc, names, l2dom)
}

func (l *Level1) collect(dp trace.DesignPoint, mc *cpu.Multicore, names []string, l2dom []int) (trace.Rates, error) {
	secs := l.MeasureNS / 1e9
	r := trace.Rates{Point: dp, PerApp: make(map[string]trace.AppRates, len(names))}
	counts := make(map[string]float64, len(names))
	maxF := l.Machine.CPU.Levels[0].FreqGHz
	for i, n := range names {
		cs := mc.Cores()[i].Stats()
		l2 := mc.L2(l2dom[i]).CoreStats(i)
		busy := cs.BusyCycles + cs.StallCycles
		mb := 0.0
		if busy > 0 {
			mb = cs.StallCycles / busy
		}
		ar := trace.AppRates{
			InstrPerSec:    cs.Retired / secs,
			IPCRef:         cs.Retired / (l.MeasureNS * maxF),
			ReadGBps:       float64(l2.Misses+cs.SpecIssued) * 64 / secs / 1e9,
			WriteGBps:      float64(l2.Writebacks) * 64 / secs / 1e9,
			L2MissPerSec:   float64(l2.Misses) / secs,
			L2AccessPerSec: float64(l2.Accesses) / secs,
			MemBoundFrac:   mb,
		}
		if prev, ok := r.PerApp[n]; ok {
			c := counts[n]
			r.PerApp[n] = trace.AppRates{
				InstrPerSec:    (prev.InstrPerSec*c + ar.InstrPerSec) / (c + 1),
				IPCRef:         (prev.IPCRef*c + ar.IPCRef) / (c + 1),
				ReadGBps:       (prev.ReadGBps*c + ar.ReadGBps) / (c + 1),
				WriteGBps:      (prev.WriteGBps*c + ar.WriteGBps) / (c + 1),
				L2MissPerSec:   (prev.L2MissPerSec*c + ar.L2MissPerSec) / (c + 1),
				L2AccessPerSec: (prev.L2AccessPerSec*c + ar.L2AccessPerSec) / (c + 1),
				MemBoundFrac:   (prev.MemBoundFrac*c + ar.MemBoundFrac) / (c + 1),
			}
		} else {
			r.PerApp[n] = ar
		}
		counts[n]++
	}
	ms := mc.Mem().Stats()
	r.TotalReadGBps = float64(ms.ReadBytes) / secs / 1e9
	r.TotalWriteGBps = float64(ms.WriteBytes) / secs / 1e9
	r.MeanLatencyNS = ms.MeanLatencyNS()
	return r, nil
}
