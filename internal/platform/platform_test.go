package platform

import (
	"math"
	"strings"
	"testing"

	"dramtherm/internal/trace"
	"dramtherm/internal/workload"
)

func TestMachines(t *testing.T) {
	pe, sr := PE1950(), SR1500AL()
	if pe.Name != "PE1950" || sr.Name != "SR1500AL" {
		t.Fatal("names wrong")
	}
	if pe.AMBTDP != 90 || sr.AMBTDP != 100 {
		t.Fatal("TDPs wrong (Table 5.1)")
	}
	if pe.AMBLevels != [4]float64{76, 80, 84, 88} {
		t.Fatalf("PE levels = %v", pe.AMBLevels)
	}
	if sr.AMBLevels != [4]float64{86, 90, 94, 98} {
		t.Fatalf("SR levels = %v", sr.AMBLevels)
	}
	if pe.BWCaps != [3]float64{4, 3, 2} || sr.BWCaps != [3]float64{5, 4, 3} {
		t.Fatal("caps wrong (Table 5.1)")
	}
	if sr.SystemAmbient != 36 || pe.SystemAmbient != 26 {
		t.Fatal("ambient temperatures wrong (§5.3.1)")
	}
	// Xeon 5160 frequency ladder (§5.2.1).
	want := []float64{3.000, 2.667, 2.333, 2.000}
	for i, lv := range pe.CPU.Levels {
		if lv.FreqGHz != want[i] {
			t.Fatalf("freq[%d] = %v", i, lv.FreqGHz)
		}
	}
}

func TestLevelOf(t *testing.T) {
	m := SR1500AL()
	cases := map[float64]int{80: 0, 87: 1, 91: 2, 95: 3, 99: 4, 120: 4}
	for amb, want := range cases {
		if got := levelOf(m, amb); got != want {
			t.Errorf("levelOf(%v) = %d, want %d", amb, got, want)
		}
	}
}

func TestLevelTables(t *testing.T) {
	m := SR1500AL()
	for _, k := range PolicyKinds() {
		lt := levelTable(m, k)
		if len(lt) != 5 {
			t.Fatalf("%v table = %d levels", k, len(lt))
		}
		// Level 0 is always full speed.
		if lt[0].cores != 4 || lt[0].freqIdx != 0 || !math.IsInf(lt[0].cap, 1) {
			t.Fatalf("%v level0 = %+v", k, lt[0])
		}
	}
	acg := levelTable(m, ACG)
	if acg[1].cores != 3 || acg[2].cores != 2 {
		t.Fatal("ACG core ladder wrong")
	}
	// ACG keeps at least one core per socket (§5.2.2).
	for _, rl := range acg {
		if rl.cores < 2 {
			t.Fatal("ACG went below 2 cores")
		}
	}
	comb := levelTable(m, COMB)
	if comb[1].cores != 3 || comb[1].freqIdx != 1 {
		t.Fatal("COMB ladder wrong")
	}
	if kinds := PolicyKinds(); len(kinds) != 5 || kinds[4].String() != "DTM-COMB" {
		t.Fatal("policy kinds wrong")
	}
}

func TestDomainKey(t *testing.T) {
	k := domainKey([][]string{{"b", "a"}, {"d", "c"}})
	if k != "a|b/c|d" {
		t.Fatalf("domainKey = %q", k)
	}
	// Socket order is canonicalized too.
	k2 := domainKey([][]string{{"d", "c"}, {"b", "a"}})
	if k2 != k {
		t.Fatalf("socket order not canonical: %q vs %q", k2, k)
	}
	if got := domainKey([][]string{{"a"}, {}}); got != "/a" && got != "a/" {
		t.Fatalf("empty domain = %q", got)
	}
}

func TestPlatformLevel1(t *testing.T) {
	m := SR1500AL()
	l1 := NewLevel1(m, 1)
	l1.WarmupNS, l1.MeasureNS = 3e5, 3e5
	r, err := l1.Build(trace.DesignPoint{Apps: "mgrid|swim/applu|galgel", FreqGHz: 3.0, BWCapGBps: math.Inf(1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PerApp) != 4 {
		t.Fatalf("PerApp = %v", r.PerApp)
	}
	// FSB ceiling binds total throughput.
	if got := r.TotalGBps(); got > m.FSBGBps*1.15 {
		t.Fatalf("throughput %v exceeds FSB %v", got, m.FSBGBps)
	}
	// Zero/invalid points.
	z, err := l1.Build(trace.DesignPoint{Apps: "", FreqGHz: 3})
	if err != nil || z.TotalGBps() != 0 {
		t.Fatal("empty point not zero")
	}
	if _, err := l1.Build(trace.DesignPoint{Apps: "a|b|c/d|e", FreqGHz: 3}); err == nil {
		t.Fatal("5 apps accepted")
	}
}

func tinyRun(t *testing.T, m Machine, k PolicyKind, quantum float64) RunResult {
	t.Helper()
	store := NewStore(m, 1)
	res, err := RunPlatform(RunConfig{
		Machine: m, Policy: k, Mix: mustMix(t, "W1"),
		RunsPerApp: 1, InstrScale: 0.01, QuantumS: quantum, SensorSeed: 3,
	}, store)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func mustMix(t *testing.T, name string) workload.Mix {
	t.Helper()
	m, err := workload.MixByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestServerRunCompletes(t *testing.T) {
	res := tinyRun(t, SR1500AL(), BW, 0.1)
	if res.TimedOut || res.Seconds <= 0 || res.Completed != 4 {
		t.Fatalf("run broken: %+v", res)
	}
	if res.AvgCPUWatt <= 0 || res.AvgInletC <= 36 {
		t.Fatalf("instrumentation broken: cpu %v inlet %v", res.AvgCPUWatt, res.AvgInletC)
	}
	var lvl float64
	for _, s := range res.LevelTimeS {
		lvl += s
	}
	if math.Abs(lvl-res.Seconds) > 1.5 {
		t.Fatalf("level residency %v vs %v", lvl, res.Seconds)
	}
}

// TestQuantumThrashing: a 5 ms quantum increases both L2 misses and
// runtime over a 100 ms quantum (Fig. 5.15 behaviour).
func TestQuantumThrashing(t *testing.T) {
	store := NewStore(PE1950(), 1)
	run := func(q float64) RunResult {
		// TDP 72 °C puts the machine deep in thermal emergency so ACG
		// spends the run in shared-core mode, exposing the quantum cost.
		res, err := RunPlatform(RunConfig{
			Machine: PE1950(), Policy: ACG, Mix: mustMix(t, "W1"),
			RunsPerApp: 1, InstrScale: 0.05, QuantumS: q, SensorSeed: 3,
			TDPOverride: 72,
		}, store)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	slow, fast := run(0.005), run(0.1)
	if slow.L2Misses <= fast.L2Misses {
		t.Fatalf("small quantum did not raise misses: %v vs %v", slow.L2Misses, fast.L2Misses)
	}
	if slow.Seconds < fast.Seconds {
		t.Fatalf("small quantum ran faster: %v vs %v", slow.Seconds, fast.Seconds)
	}
}

func TestRunConfigValidation(t *testing.T) {
	if _, err := NewServer(RunConfig{Machine: PE1950(), Policy: BW,
		Mix: workload.Mix{Name: "x", Apps: []string{"nosuch"}}}, NewStore(PE1950(), 1)); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := NewServer(RunConfig{Machine: PE1950(), Policy: BW, Mix: mustMix(t, "W1")}, nil); err == nil {
		t.Fatal("nil store accepted")
	}
}

func TestTDPOverrideShiftsLevels(t *testing.T) {
	cfg := RunConfig{Machine: PE1950(), Policy: BW, Mix: mustMix(t, "W1"),
		TDPOverride: 92, RunsPerApp: 1, InstrScale: 0.005}
	s, err := NewServer(cfg, NewStore(PE1950(), 1))
	if err != nil {
		t.Fatal(err)
	}
	if s.m.AMBTDP != 92 || s.m.AMBLevels[0] != 78 {
		t.Fatalf("override not applied: %+v", s.m)
	}
}

func TestPolicyKindString(t *testing.T) {
	if !strings.HasPrefix(PolicyKind(42).String(), "PolicyKind(") {
		t.Fatal("unknown kind rendering")
	}
}
