// The measurement loop: software DTM at a one-second interval over the
// emulated server, reproducing the §5.3 experimental methodology (batch
// jobs, pfmon-style counters, power/thermal instrumentation).

package platform

import (
	"fmt"
	"math/rand"

	"dramtherm/internal/fbconfig"
	"dramtherm/internal/power"
	"dramtherm/internal/thermal"
	"dramtherm/internal/trace"
	"dramtherm/internal/workload"
)

// RunConfig describes one measured experiment.
type RunConfig struct {
	Machine Machine
	Policy  PolicyKind
	Mix     workload.Mix
	// RunsPerApp is the batch depth (paper: 10 for CPU2000, 5 for
	// CPU2006).
	RunsPerApp int
	// QuantumS is the Linux scheduling time slice used when two programs
	// share a core under DTM-ACG (default 100 ms, Fig. 5.15 varies it).
	QuantumS float64
	// IntervalS is the DTM policy period (default 1 s, §5.2.1).
	IntervalS float64
	// InstrScale shrinks run lengths for tests.
	InstrScale float64
	// SensorSeed seeds sensor noise (0 = noiseless).
	SensorSeed int64
	// AmbientOverride replaces the machine's system ambient when nonzero
	// (Fig. 5.12 runs the SR1500AL at 26 °C).
	AmbientOverride fbconfig.Celsius
	// TDPOverride shifts the AMB TDP and all Table 5.1 boundaries by the
	// same margin when nonzero (Figs. 5.12/5.14).
	TDPOverride fbconfig.Celsius
	// ForceFreqIdx ≥ 0 pins the processor frequency for all running
	// levels (Fig. 5.13 compares policies at 3.0 vs 2.0 GHz).
	ForceFreqIdx int
	// MaxSeconds bounds the run (default 100,000).
	MaxSeconds float64
}

func (c *RunConfig) applyDefaults() {
	if c.RunsPerApp == 0 {
		c.RunsPerApp = 10
	}
	if c.QuantumS == 0 {
		c.QuantumS = 0.1
	}
	if c.IntervalS == 0 {
		c.IntervalS = 1
	}
	if c.InstrScale == 0 {
		c.InstrScale = 1
	}
	if c.MaxSeconds == 0 {
		c.MaxSeconds = 100000
	}
	if c.ForceFreqIdx == 0 {
		c.ForceFreqIdx = -1
	}
}

// RunResult is what the instrumented testbed reports.
type RunResult struct {
	Seconds  float64
	TimedOut bool

	ReadGB, WriteGB float64
	L2Misses        float64

	CPUEnergyJ float64
	MemEnergyJ float64
	AvgCPUWatt float64
	AvgInletC  float64 // memory inlet (processor exhaust) temperature
	MaxAMB     float64
	AMBTrace   []float64 // per second (quantized sensor readings)
	LevelTimeS [5]float64
	Completed  int
}

// TotalEnergyJ returns CPU+DRAM energy (Fig. 5.11's unit).
func (r RunResult) TotalEnergyJ() float64 { return r.CPUEnergyJ + r.MemEnergyJ }

// Server is one emulated testbed run.
type Server struct {
	cfg    RunConfig
	m      Machine
	store  *trace.Store
	levels []runLevel

	model  *thermal.Model
	amb    *thermal.AmbientModel
	sensor *thermal.Sensor

	queue []*workload.Profile
	cores []*pjob
	rot   int

	now float64
	res RunResult
}

// pjob is one batch entry on the platform.
type pjob struct {
	prof      *workload.Profile
	remaining float64
	total     float64
}

// NewServer builds a run. The store should be shared across runs of the
// same machine so level-1 results are reused; it must have been created
// with NewLevel1(machine) as its builder (see NewStore).
func NewServer(cfg RunConfig, store *trace.Store) (*Server, error) {
	cfg.applyDefaults()
	if store == nil {
		return nil, fmt.Errorf("platform: nil store")
	}
	profs, err := cfg.Mix.Profiles()
	if err != nil {
		return nil, err
	}
	m := cfg.Machine
	if cfg.AmbientOverride != 0 {
		m.SystemAmbient = cfg.AmbientOverride
	}
	if cfg.TDPOverride != 0 {
		shift := cfg.TDPOverride - m.AMBTDP
		m.AMBTDP = cfg.TDPOverride
		for i := range m.AMBLevels {
			m.AMBLevels[i] += shift
		}
	}

	s := &Server{cfg: cfg, m: m, store: store, levels: levelTable(m, cfg.Policy)}
	amb := fbconfig.Ambient{PsiXi: m.PsiXi, TauCPUDRAM: 20}
	s.amb = thermal.NewAmbientModel(amb, m.SystemAmbient)
	idle := power.DIMMPower{AMB: fbconfig.DefaultAMBPower.IdleLast, DRAM: fbconfig.DefaultDRAMPower.Static}
	s.model = thermal.NewModel(m.Cooling, m.SystemAmbient, m.DIMMsPerChannel*m.LogicalChannels, idle)
	if cfg.SensorSeed != 0 {
		s.sensor = thermal.NewSensor(rand.New(rand.NewSource(cfg.SensorSeed)))
	}
	for r := 0; r < cfg.RunsPerApp; r++ {
		s.queue = append(s.queue, profs...)
	}
	s.cores = make([]*pjob, 4)
	for i := range s.cores {
		s.dispatch(i)
	}
	return s, nil
}

// NewStore returns a trace store backed by the machine's level-1 builder.
func NewStore(m Machine, seed int64) *trace.Store {
	return trace.NewStore(NewLevel1(m, seed))
}

func (s *Server) dispatch(i int) {
	if len(s.queue) == 0 {
		s.cores[i] = nil
		return
	}
	p := s.queue[0]
	s.queue = s.queue[1:]
	total := p.Instructions() * s.cfg.InstrScale
	s.cores[i] = &pjob{prof: p, remaining: total, total: total}
}

func (s *Server) done() bool {
	if len(s.queue) > 0 {
		return false
	}
	for _, j := range s.cores {
		if j != nil {
			return false
		}
	}
	return true
}

// schedule is one concurrent execution pattern: executing[i] is the job
// index (0..3) running on physical core i, or -1.
type schedule struct {
	executing [4]int
	weight    float64
	shared    int // number of cores in time-shared mode
}

// schedules enumerates the concurrent execution patterns for ncores
// active cores. Sockets are {0,1} and {2,3}; at 3 cores one socket (the
// rotating one) time-shares; at 2 cores both do.
func (s *Server) schedules(ncores int) []schedule {
	js := [4]int{-1, -1, -1, -1}
	for i, j := range s.cores {
		if j != nil {
			js[i] = i
		}
	}
	full := schedule{executing: js, weight: 1}
	switch {
	case ncores >= 4:
		return []schedule{full}
	case ncores == 3:
		// One socket shares: alternate its two jobs on one core.
		shareSock := s.rot % 2
		var out []schedule
		a, b := 2*shareSock, 2*shareSock+1
		for _, run := range []int{a, b} {
			sc := full
			sc.executing[a], sc.executing[b] = -1, -1
			sc.executing[2*shareSock] = run
			sc.weight = 0.5
			sc.shared = 1
			if s.cores[run] == nil { // empty slot: nothing to alternate
				sc.weight = 0.5
			}
			out = append(out, sc)
		}
		return out
	default: // 2 cores: both sockets share
		var out []schedule
		for _, r0 := range []int{0, 1} {
			for _, r1 := range []int{2, 3} {
				var sc schedule
				sc.executing = [4]int{-1, -1, -1, -1}
				if s.cores[r0] != nil {
					sc.executing[0] = r0
				}
				if s.cores[r1] != nil {
					sc.executing[2] = r1
				}
				sc.weight = 0.25
				sc.shared = 2
				out = append(out, sc)
			}
		}
		return out
	}
}

// Run executes the batch and returns the measurements.
func (s *Server) Run() (RunResult, error) {
	var cpuWattSum, inletSum float64
	steps := 0
	for !s.done() {
		if s.now >= s.cfg.MaxSeconds {
			s.res.TimedOut = true
			break
		}
		if err := s.step(&cpuWattSum, &inletSum); err != nil {
			return s.res, err
		}
		steps++
	}
	s.res.Seconds = s.now
	if steps > 0 {
		s.res.AvgCPUWatt = cpuWattSum / float64(steps)
		s.res.AvgInletC = inletSum / float64(steps)
	}
	return s.res, nil
}

// step advances one DTM interval (one second by default).
func (s *Server) step(cpuWattSum, inletSum *float64) error {
	dt := s.cfg.IntervalS

	// Sensor read and policy decision.
	reading := s.model.HottestAMB()
	if s.sensor != nil {
		reading = s.sensor.Read(reading)
	}
	lvl := levelOf(s.m, reading)
	rl := s.levels[lvl]
	if s.cfg.ForceFreqIdx >= 0 && rl.freqIdx < s.cfg.ForceFreqIdx {
		rl.freqIdx = s.cfg.ForceFreqIdx
	}
	s.res.LevelTimeS[lvl] += dt
	s.rot++

	freq := s.m.CPU.Levels[rl.freqIdx]
	scheds := s.schedules(rl.cores)

	// Linux time-quantum switch cost on shared cores (§5.4.5, Fig. 5.15):
	// each switch-in refills the incoming program's share of the L2; below
	// ~20 ms the refill dominates and both misses and runtime climb. The
	// stall factor is applied to shared-mode progress below, the refill
	// misses to the traffic.
	nshared := scheds[len(scheds)-1].shared
	var extraMissPS, stallFrac float64
	if nshared > 0 && s.cfg.QuantumS > 0 {
		var refillLines, njobs float64
		for _, j := range s.cores {
			if j == nil {
				continue
			}
			hl := float64(j.prof.HotKB) * 1024 / 64
			if hl > 32768 {
				hl = 32768
			}
			refillLines += hl
			njobs++
		}
		if njobs > 0 {
			refillLines /= njobs
		}
		extraMissPS = refillLines / s.cfg.QuantumS * float64(nshared)
		stallFrac = extraMissPS * 150e-9 / 4 // ~150 ns refill latency, MLP ≈ 4
		if stallFrac > 0.5 {
			stallFrac = 0.5
		}
	}

	var readG, writeG, l2miss float64
	var sumVIPC, sumMemBound float64
	for _, sc := range scheds {
		// Build the domain key for this concurrent pattern.
		doms := [][]string{{}, {}}
		for c := 0; c < 4; c++ {
			ji := sc.executing[c]
			if ji < 0 || s.cores[ji] == nil {
				continue
			}
			doms[c/2] = append(doms[c/2], s.cores[ji].prof.Name)
		}
		dp := trace.DesignPoint{
			Apps:      domainKey(doms),
			FreqGHz:   freq.FreqGHz,
			BWCapGBps: rl.cap,
		}
		rates, err := s.store.Get(dp)
		if err != nil {
			return err
		}
		for c := 0; c < 4; c++ {
			ji := sc.executing[c]
			if ji < 0 || s.cores[ji] == nil {
				continue
			}
			j := s.cores[ji]
			ar := rates.PerApp[j.prof.Name]
			if ar.InstrPerSec <= 0 {
				continue
			}
			mul := j.prof.PhaseMul(1 - j.remaining/j.total)
			den := 1 - ar.MemBoundFrac + ar.MemBoundFrac*mul
			if den <= 0 {
				den = 1
			}
			rate := ar.InstrPerSec / den * (1 - stallFrac)
			ratio := rate / ar.InstrPerSec
			w := sc.weight
			readG += ar.ReadGBps * mul * ratio * w
			writeG += ar.WriteGBps * mul * ratio * w
			l2miss += ar.L2MissPerSec * mul * ratio * w * dt
			j.remaining -= rate * w * dt
			sumVIPC += freq.Volt * ar.IPCRef * ratio * w
			sumMemBound += ar.MemBoundFrac * w
		}
	}
	readG += extraMissPS * 64 / 1e9
	l2miss += extraMissPS * dt

	s.res.ReadGB += readG * dt
	s.res.WriteGB += writeG * dt
	s.res.L2Misses += l2miss

	// Power and thermal.
	perCh := power.ChannelTraffic{
		Read:  readG / float64(s.m.PhysicalChannels),
		Write: writeG / float64(s.m.PhysicalChannels),
		Share: power.EvenShares(s.m.DIMMsPerChannel * s.m.LogicalChannels),
	}
	pw, err := power.ChannelWatts(fbconfig.DefaultDRAMPower, fbconfig.DefaultAMBPower, perCh)
	if err != nil {
		return err
	}
	var memW float64
	for _, p := range pw {
		memW += (p.AMB + p.DRAM) * float64(s.m.PhysicalChannels)
	}
	s.res.MemEnergyJ += memW * dt

	// CPU power: active cores per socket under the current level.
	var perSock [2]int
	switch {
	case rl.cores >= 4:
		perSock = [2]int{2, 2}
	case rl.cores == 3:
		perSock = [2]int{2, 1}
		if s.rot%2 == 0 {
			perSock = [2]int{1, 2}
		}
	default:
		perSock = [2]int{1, 1}
	}
	util := 1 - sumMemBound/4
	if util < 0 {
		util = 0
	}
	cpuW := s.m.CPU.Watts(perSock, rl.freqIdx, util)
	s.res.CPUEnergyJ += cpuW * dt
	*cpuWattSum += cpuW

	// Ambient (memory inlet) = system ambient + CPU preheat, Eq. 3.6.
	inlet := s.amb.Advance([]thermal.CoreActivity{{Volt: 1, IPC: sumVIPC}}, dt)
	*inletSum += inlet
	s.model.Ambient = inlet
	if err := s.model.Advance(pw, dt); err != nil {
		return err
	}
	if a := s.model.HottestAMB(); a > s.res.MaxAMB {
		s.res.MaxAMB = a
	}
	s.res.AMBTrace = append(s.res.AMBTrace, reading)

	// Completions.
	for i, j := range s.cores {
		if j != nil && j.remaining <= 0 {
			s.res.Completed++
			s.dispatch(i)
		}
	}

	s.now += dt
	return nil
}

// RunPlatform is the high-level helper.
func RunPlatform(cfg RunConfig, store *trace.Store) (RunResult, error) {
	s, err := NewServer(cfg, store)
	if err != nil {
		return RunResult{}, err
	}
	return s.Run()
}
