package platform

import (
	"testing"

	"dramtherm/internal/workload"
)

// TestSmokePlatform runs W1 on both emulated servers under every policy
// at reduced scale and prints the Fig. 5.6-style comparison.
func TestSmokePlatform(t *testing.T) {
	if testing.Short() {
		t.Skip("platform smoke skipped in -short mode")
	}
	mix, err := workload.MixByName("W1")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Machine{PE1950(), SR1500AL()} {
		store := NewStore(m, 1)
		var base RunResult
		for _, k := range PolicyKinds() {
			res, err := RunPlatform(RunConfig{
				Machine: m, Policy: k, Mix: mix,
				RunsPerApp: 2, SensorSeed: 7,
			}, store)
			if err != nil {
				t.Fatalf("%s/%s: %v", m.Name, k, err)
			}
			if k == NoLimit {
				base = res
			}
			t.Logf("%s %-10s norm=%.2f (%.0f s, %.0f GB, L2m=%.1fG, cpu=%.0fW inlet=%.1fC maxAMB=%.1f E=%.0fkJ)",
				m.Name, k, res.Seconds/base.Seconds, res.Seconds, res.ReadGB+res.WriteGB,
				res.L2Misses/1e9, res.AvgCPUWatt, res.AvgInletC, res.MaxAMB, res.TotalEnergyJ()/1e3)
			if res.TimedOut {
				t.Errorf("%s/%s timed out", m.Name, k)
			}
		}
	}
}
