// Package workload provides synthetic stand-ins for the SPEC CPU2000 and
// CPU2006 applications the paper runs. We cannot ship SPEC binaries or
// SimPoint traces, so each application is replaced by a profile calibrated
// to its published characteristics in the paper: memory-throughput class
// (§4.3.2 names the >10 GB/s and 5–10 GB/s groups; Fig. 5.5 names the hot,
// moderate, and cool programs), L2 access intensity, working-set shape
// (streaming vs. hot-set reuse), memory-level parallelism, store fraction,
// and run length. A profile drives a deterministic synthetic address
// stream through the simulated cache hierarchy, so L2 miss rates — and
// with them all contention effects the DTM schemes exploit — emerge from
// simulation rather than being asserted.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"dramtherm/internal/cache"
)

// Suite identifies the benchmark suite of a profile.
type Suite int

const (
	// CPU2000 is SPEC CPU2000.
	CPU2000 Suite = iota
	// CPU2006 is SPEC CPU2006.
	CPU2006
)

func (s Suite) String() string {
	if s == CPU2006 {
		return "CPU2006"
	}
	return "CPU2000"
}

// Profile is a synthetic application model.
type Profile struct {
	Name  string
	Suite Suite

	// IPC0 is the issue-limited IPC while not stalled on memory.
	IPC0 float64
	// L2APKI is the L2 (last-level) cache accesses per kilo-instruction,
	// i.e. the L1 miss stream intensity.
	L2APKI float64
	// HotKB / HotFrac describe the reused hot set: HotFrac of L2 accesses
	// fall uniformly in a HotKB-sized region (cache-capacity sensitive).
	HotKB   int
	HotFrac float64
	// StreamKB is the size of the streaming buffer walked sequentially by
	// the remaining accesses (compulsory misses).
	StreamKB int
	// StoreFrac is the fraction of L2 accesses that are stores (drives
	// writeback traffic).
	StoreFrac float64
	// MLP is the maximum outstanding demand misses the core sustains.
	MLP int
	// SpecFrac is the expected number of speculative/prefetch reads per
	// demand miss at the maximum core frequency (§4.4.2: scaling the core
	// down sheds this traffic).
	SpecFrac float64
	// GInstr is the instructions per run, in billions.
	GInstr float64
	// Phases multiplies memory intensity across run progress; the run is
	// split into len(Phases) equal spans. Empty means flat.
	Phases []float64
	// CPUBound marks programs that keep the core busy even while memory
	// is throttled (galgel/apsi/vpr-like, §5.4.4).
	CPUBound bool
}

// Validate reports profile inconsistencies.
func (p *Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("workload: empty name")
	case p.IPC0 <= 0 || p.L2APKI < 0:
		return fmt.Errorf("workload %s: bad rates", p.Name)
	case p.HotFrac < 0 || p.HotFrac > 1 || p.StoreFrac < 0 || p.StoreFrac > 1:
		return fmt.Errorf("workload %s: fractions out of range", p.Name)
	case p.HotKB <= 0 || p.StreamKB <= 0:
		return fmt.Errorf("workload %s: working sets must be positive", p.Name)
	case p.MLP <= 0:
		return fmt.Errorf("workload %s: MLP must be positive", p.Name)
	case p.GInstr <= 0:
		return fmt.Errorf("workload %s: GInstr must be positive", p.Name)
	}
	for _, m := range p.Phases {
		if m < 0 {
			return fmt.Errorf("workload %s: negative phase multiplier", p.Name)
		}
	}
	return nil
}

// PhaseMul returns the memory-intensity multiplier at run progress
// p ∈ [0,1].
func (p *Profile) PhaseMul(progress float64) float64 {
	if len(p.Phases) == 0 {
		return 1
	}
	if progress < 0 {
		progress = 0
	}
	if progress >= 1 {
		progress = 0.999999
	}
	return p.Phases[int(progress*float64(len(p.Phases)))]
}

// Instructions returns the total instruction count of one run.
func (p *Profile) Instructions() float64 { return p.GInstr * 1e9 }

// Stream generates the profile's synthetic L2 access stream. Streams are
// deterministic given the seed and place all addresses in a private
// region selected by the owner tag, so two cores never share lines.
type Stream struct {
	prof      *Profile
	base      uint64
	rng       *rand.Rand
	src       *countingSource
	seed      int64 // combined seed the source was created from
	streamPos uint64
	hotLines  uint64
	strLines  uint64
}

// countingSource wraps the stream's rand source and counts Int63 draws.
// Every Stream method reaches the source through rand.Rand paths that
// call Int63 exactly once per draw, so a snapshot can record the draw
// count and a restore can replay it against a freshly seeded source,
// reproducing the generator state — and with it the access sequence —
// bit for bit.
type countingSource struct {
	src rand.Source
	n   uint64
}

func (c *countingSource) Int63() int64 { c.n++; return c.src.Int63() }

func (c *countingSource) Seed(seed int64) { c.src.Seed(seed); c.n = 0 }

// NewStream returns a stream for p owned by owner (unique per core slot).
func NewStream(p *Profile, owner int, seed int64) *Stream {
	combined := seed ^ int64(owner)<<17 ^ hashName(p.Name)
	src := &countingSource{src: rand.NewSource(combined)}
	return &Stream{
		prof:     p,
		base:     uint64(owner+1) << 40,
		rng:      rand.New(src),
		src:      src,
		seed:     combined,
		hotLines: uint64(p.HotKB) * 1024 / 64,
		strLines: uint64(p.StreamKB) * 1024 / 64,
	}
}

// StreamState is the restorable state of a Stream.
type StreamState struct {
	Name      string // profile name, to rebind on restore
	Seed      int64  // combined seed (owner and profile already folded in)
	Base      uint64
	Draws     uint64
	StreamPos uint64
}

// Snapshot captures the stream's generator state.
func (s *Stream) Snapshot() StreamState {
	return StreamState{
		Name:      s.prof.Name,
		Seed:      s.seed,
		Base:      s.base,
		Draws:     s.src.n,
		StreamPos: s.streamPos,
	}
}

// RestoreStream rebuilds a stream from a snapshot: a fresh source is
// seeded with the combined seed and advanced by the recorded draw
// count, so the restored stream continues the exact access sequence of
// the snapshotted one.
func RestoreStream(st StreamState) (*Stream, error) {
	p, err := ByName(st.Name)
	if err != nil {
		return nil, err
	}
	src := &countingSource{src: rand.NewSource(st.Seed)}
	for i := uint64(0); i < st.Draws; i++ {
		src.src.Int63()
	}
	src.n = st.Draws
	return &Stream{
		prof:      p,
		base:      st.Base,
		rng:       rand.New(src),
		src:       src,
		seed:      st.Seed,
		streamPos: st.StreamPos,
		hotLines:  uint64(p.HotKB) * 1024 / 64,
		strLines:  uint64(p.StreamKB) * 1024 / 64,
	}, nil
}

func hashName(s string) int64 {
	var h int64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= int64(s[i])
		h *= 1099511628211
	}
	return h
}

// Next returns the next access address and kind.
func (s *Stream) Next() (uint64, cache.AccessKind) {
	var line uint64
	if s.rng.Float64() < s.prof.HotFrac {
		line = uint64(s.rng.Int63n(int64(s.hotLines)))
	} else {
		// Streaming region placed after the hot region.
		line = s.hotLines + s.streamPos
		s.streamPos++
		if s.streamPos >= s.strLines {
			s.streamPos = 0
		}
	}
	kind := cache.Load
	if s.rng.Float64() < s.prof.StoreFrac {
		kind = cache.Store
	}
	return s.base + line*64, kind
}

// Speculative reports whether a speculative access should accompany a
// demand miss given the frequency ratio f ∈ [0,1] of current to maximum
// core frequency.
func (s *Stream) Speculative(freqRatio float64) bool {
	p := s.prof.SpecFrac * freqRatio
	return p > 0 && s.rng.Float64() < p
}

// profiles is the calibrated application table. Intensity classes follow
// §4.3.2 and Fig. 5.5; run lengths approximate SPEC reference-input
// instruction counts.
var profiles = []Profile{
	// ---- SPEC CPU2000: the eight >10 GB/s (four copies) applications.
	{Name: "swim", Suite: CPU2000, IPC0: 2.2, L2APKI: 48, HotKB: 2048, HotFrac: 0.3, StreamKB: 49152, StoreFrac: 0.36, MLP: 9, SpecFrac: 0.10, GInstr: 220, Phases: []float64{1.15, 1.1, 1, 0.95, 1.05, 1, 1.1, 0.9}},
	{Name: "mgrid", Suite: CPU2000, IPC0: 2.4, L2APKI: 40, HotKB: 2048, HotFrac: 0.3, StreamKB: 57344, StoreFrac: 0.3, MLP: 9, SpecFrac: 0.10, GInstr: 330, Phases: []float64{1, 1.1, 1.1, 1, 0.9, 1, 1.05, 1}},
	{Name: "applu", Suite: CPU2000, IPC0: 2.2, L2APKI: 42, HotKB: 2560, HotFrac: 0.3, StreamKB: 40960, StoreFrac: 0.34, MLP: 8, SpecFrac: 0.10, GInstr: 310, Phases: []float64{0.9, 1.05, 1.1, 1.05, 1, 1.05, 1.1, 0.95}},
	{Name: "galgel", Suite: CPU2000, IPC0: 2.6, L2APKI: 34, HotKB: 3584, HotFrac: 0.8, StreamKB: 16384, StoreFrac: 0.22, MLP: 6, SpecFrac: 0.08, GInstr: 300, Phases: []float64{1, 1, 1.1, 1.2, 1.1, 1, 0.9, 0.9}, CPUBound: true},
	{Name: "art", Suite: CPU2000, IPC0: 1.8, L2APKI: 72, HotKB: 3700, HotFrac: 0.88, StreamKB: 8192, StoreFrac: 0.2, MLP: 7, SpecFrac: 0.06, GInstr: 80, Phases: []float64{1.05, 1, 1, 1.1, 1, 1, 1.05, 1}},
	{Name: "equake", Suite: CPU2000, IPC0: 2.0, L2APKI: 44, HotKB: 4096, HotFrac: 0.35, StreamKB: 32768, StoreFrac: 0.25, MLP: 8, SpecFrac: 0.09, GInstr: 180, Phases: []float64{1.3, 1.05, 1, 1, 0.95, 1, 1, 0.95}},
	{Name: "lucas", Suite: CPU2000, IPC0: 2.1, L2APKI: 42, HotKB: 2048, HotFrac: 0.25, StreamKB: 65536, StoreFrac: 0.32, MLP: 9, SpecFrac: 0.10, GInstr: 260, Phases: []float64{1, 1.05, 1.05, 1, 1, 1.1, 0.95, 1}},
	{Name: "fma3d", Suite: CPU2000, IPC0: 2.0, L2APKI: 38, HotKB: 4096, HotFrac: 0.35, StreamKB: 28672, StoreFrac: 0.3, MLP: 8, SpecFrac: 0.09, GInstr: 290, Phases: []float64{0.95, 1, 1.1, 1.05, 1, 1, 1.05, 1}},
	// ---- SPEC CPU2000: the 5–10 GB/s group.
	{Name: "wupwise", Suite: CPU2000, IPC0: 2.3, L2APKI: 22, HotKB: 2048, HotFrac: 0.3, StreamKB: 24576, StoreFrac: 0.24, MLP: 6, SpecFrac: 0.08, GInstr: 350},
	{Name: "vpr", Suite: CPU2000, IPC0: 1.6, L2APKI: 9, HotKB: 2560, HotFrac: 0.85, StreamKB: 4096, StoreFrac: 0.3, MLP: 2, SpecFrac: 0.08, GInstr: 110, CPUBound: true},
	{Name: "mcf", Suite: CPU2000, IPC0: 1.1, L2APKI: 52, HotKB: 24576, HotFrac: 0.9, StreamKB: 16384, StoreFrac: 0.2, MLP: 3, SpecFrac: 0.05, GInstr: 60, Phases: []float64{1, 1.1, 1.1, 1, 1, 1.05, 1.05, 1}},
	{Name: "apsi", Suite: CPU2000, IPC0: 2.5, L2APKI: 16, HotKB: 3072, HotFrac: 0.75, StreamKB: 8192, StoreFrac: 0.26, MLP: 4, SpecFrac: 0.06, GInstr: 340, CPUBound: true},
	// ---- SPEC CPU2000: moderate programs named in Fig. 5.5.
	{Name: "gap", Suite: CPU2000, IPC0: 1.9, L2APKI: 10, HotKB: 4096, HotFrac: 0.7, StreamKB: 8192, StoreFrac: 0.25, MLP: 3, SpecFrac: 0.1, GInstr: 240},
	{Name: "bzip2", Suite: CPU2000, IPC0: 2.0, L2APKI: 8, HotKB: 6144, HotFrac: 0.8, StreamKB: 4096, StoreFrac: 0.3, MLP: 3, SpecFrac: 0.1, GInstr: 300},
	{Name: "facerec", Suite: CPU2000, IPC0: 2.1, L2APKI: 26, HotKB: 4096, HotFrac: 0.4, StreamKB: 16384, StoreFrac: 0.22, MLP: 6, SpecFrac: 0.15, GInstr: 310},
	// ---- SPEC CPU2000: low-intensity remainder.
	{Name: "gzip", Suite: CPU2000, IPC0: 2.2, L2APKI: 3, HotKB: 1024, HotFrac: 0.9, StreamKB: 2048, StoreFrac: 0.25, MLP: 2, SpecFrac: 0.05, GInstr: 180, CPUBound: true},
	{Name: "gcc", Suite: CPU2000, IPC0: 1.8, L2APKI: 5, HotKB: 2048, HotFrac: 0.85, StreamKB: 4096, StoreFrac: 0.3, MLP: 2, SpecFrac: 0.06, GInstr: 110},
	{Name: "crafty", Suite: CPU2000, IPC0: 2.4, L2APKI: 2, HotKB: 1024, HotFrac: 0.95, StreamKB: 1024, StoreFrac: 0.2, MLP: 2, SpecFrac: 0.05, GInstr: 190, CPUBound: true},
	{Name: "parser", Suite: CPU2000, IPC0: 1.7, L2APKI: 5, HotKB: 2048, HotFrac: 0.85, StreamKB: 2048, StoreFrac: 0.25, MLP: 2, SpecFrac: 0.05, GInstr: 330},
	{Name: "eon", Suite: CPU2000, IPC0: 2.5, L2APKI: 1, HotKB: 512, HotFrac: 0.95, StreamKB: 1024, StoreFrac: 0.2, MLP: 2, SpecFrac: 0.04, GInstr: 80, CPUBound: true},
	{Name: "perlbmk", Suite: CPU2000, IPC0: 2.2, L2APKI: 3, HotKB: 1536, HotFrac: 0.9, StreamKB: 2048, StoreFrac: 0.25, MLP: 2, SpecFrac: 0.05, GInstr: 210},
	{Name: "vortex", Suite: CPU2000, IPC0: 2.1, L2APKI: 4, HotKB: 2048, HotFrac: 0.85, StreamKB: 4096, StoreFrac: 0.3, MLP: 2, SpecFrac: 0.06, GInstr: 290},
	{Name: "twolf", Suite: CPU2000, IPC0: 1.6, L2APKI: 6, HotKB: 1536, HotFrac: 0.9, StreamKB: 1024, StoreFrac: 0.25, MLP: 2, SpecFrac: 0.05, GInstr: 250},
	{Name: "sixtrack", Suite: CPU2000, IPC0: 2.6, L2APKI: 2, HotKB: 1024, HotFrac: 0.9, StreamKB: 2048, StoreFrac: 0.2, MLP: 3, SpecFrac: 0.05, GInstr: 470, CPUBound: true},
	{Name: "mesa", Suite: CPU2000, IPC0: 2.4, L2APKI: 2, HotKB: 1024, HotFrac: 0.9, StreamKB: 2048, StoreFrac: 0.25, MLP: 2, SpecFrac: 0.05, GInstr: 280, CPUBound: true},
	{Name: "ammp", Suite: CPU2000, IPC0: 1.8, L2APKI: 7, HotKB: 4096, HotFrac: 0.8, StreamKB: 4096, StoreFrac: 0.22, MLP: 3, SpecFrac: 0.08, GInstr: 330},
	// ---- SPEC CPU2006 applications of Table 5.2.
	{Name: "milc", Suite: CPU2006, IPC0: 2.0, L2APKI: 44, HotKB: 3072, HotFrac: 0.25, StreamKB: 57344, StoreFrac: 0.3, MLP: 8, SpecFrac: 0.09, GInstr: 780},
	{Name: "leslie3d", Suite: CPU2006, IPC0: 2.1, L2APKI: 46, HotKB: 3072, HotFrac: 0.25, StreamKB: 49152, StoreFrac: 0.32, MLP: 8, SpecFrac: 0.10, GInstr: 1200},
	{Name: "soplex", Suite: CPU2006, IPC0: 1.7, L2APKI: 38, HotKB: 8192, HotFrac: 0.7, StreamKB: 24576, StoreFrac: 0.24, MLP: 5, SpecFrac: 0.06, GInstr: 700},
	{Name: "GemsFDTD", Suite: CPU2006, IPC0: 1.9, L2APKI: 52, HotKB: 4096, HotFrac: 0.28, StreamKB: 65536, StoreFrac: 0.3, MLP: 8, SpecFrac: 0.10, GInstr: 1100},
	{Name: "libquantum", Suite: CPU2006, IPC0: 2.2, L2APKI: 64, HotKB: 1024, HotFrac: 0.05, StreamKB: 32768, StoreFrac: 0.25, MLP: 9, SpecFrac: 0.12, GInstr: 1500},
	{Name: "lbm", Suite: CPU2006, IPC0: 2.0, L2APKI: 58, HotKB: 2048, HotFrac: 0.1, StreamKB: 65536, StoreFrac: 0.4, MLP: 9, SpecFrac: 0.11, GInstr: 1200},
	{Name: "omnetpp", Suite: CPU2006, IPC0: 1.4, L2APKI: 30, HotKB: 20480, HotFrac: 0.9, StreamKB: 8192, StoreFrac: 0.28, MLP: 3, SpecFrac: 0.06, GInstr: 650},
	{Name: "wrf", Suite: CPU2006, IPC0: 2.2, L2APKI: 24, HotKB: 3072, HotFrac: 0.4, StreamKB: 32768, StoreFrac: 0.28, MLP: 6, SpecFrac: 0.08, GInstr: 1600},
}

var byName = func() map[string]*Profile {
	m := make(map[string]*Profile, len(profiles))
	for i := range profiles {
		m[profiles[i].Name] = &profiles[i]
	}
	return m
}()

// ByName returns the profile for a benchmark name.
func ByName(name string) (*Profile, error) {
	p, ok := byName[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	return p, nil
}

// MustByName is ByName that panics on unknown names; for use with the
// static mix tables below.
func MustByName(name string) *Profile {
	p, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return p
}

// All returns every profile, sorted by name.
func All() []*Profile {
	out := make([]*Profile, 0, len(profiles))
	for i := range profiles {
		out = append(out, &profiles[i])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Suite2000 returns the SPEC CPU2000 profiles in table order.
func Suite2000() []*Profile {
	var out []*Profile
	for i := range profiles {
		if profiles[i].Suite == CPU2000 {
			out = append(out, &profiles[i])
		}
	}
	return out
}

// Mix is a multiprogramming workload: one application per core slot.
type Mix struct {
	Name string
	Apps []string
}

// Profiles resolves the mix's applications.
func (m Mix) Profiles() ([]*Profile, error) {
	out := make([]*Profile, len(m.Apps))
	for i, a := range m.Apps {
		p, err := ByName(a)
		if err != nil {
			return nil, fmt.Errorf("mix %s: %w", m.Name, err)
		}
		out[i] = p
	}
	return out, nil
}

// Mixes reproduces Table 4.2 / Table 5.2.
var Mixes = []Mix{
	{Name: "W1", Apps: []string{"swim", "mgrid", "applu", "galgel"}},
	{Name: "W2", Apps: []string{"art", "equake", "lucas", "fma3d"}},
	{Name: "W3", Apps: []string{"swim", "applu", "art", "lucas"}},
	{Name: "W4", Apps: []string{"mgrid", "galgel", "equake", "fma3d"}},
	{Name: "W5", Apps: []string{"swim", "art", "wupwise", "vpr"}},
	{Name: "W6", Apps: []string{"mgrid", "equake", "mcf", "apsi"}},
	{Name: "W7", Apps: []string{"applu", "lucas", "wupwise", "mcf"}},
	{Name: "W8", Apps: []string{"galgel", "fma3d", "vpr", "apsi"}},
	{Name: "W11", Apps: []string{"milc", "leslie3d", "soplex", "GemsFDTD"}},
	{Name: "W12", Apps: []string{"libquantum", "lbm", "omnetpp", "wrf"}},
}

// MixByName returns the named mix.
func MixByName(name string) (Mix, error) {
	for _, m := range Mixes {
		if m.Name == name {
			return m, nil
		}
	}
	return Mix{}, fmt.Errorf("workload: unknown mix %q", name)
}

// Chapter4Mixes returns W1..W8 (Table 4.2).
func Chapter4Mixes() []Mix { return Mixes[:8] }

// Chapter5Mixes returns W1..W8 plus W11, W12 (Table 5.2).
func Chapter5Mixes() []Mix { return Mixes }
