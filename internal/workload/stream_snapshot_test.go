package workload

import (
	"testing"
)

// TestStreamSnapshotResume: a restored stream must continue the exact
// access sequence — address, kind, and speculative coin flips — of the
// stream it was snapshotted from. The restore path replays the draw
// count against a fresh source, so this test is the contract that every
// Stream method consumes the source only through single-Int63 draws.
func TestStreamSnapshotResume(t *testing.T) {
	p, err := ByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	s := NewStream(p, 2, 1)
	for i := 0; i < 1000; i++ {
		s.Next()
		s.Speculative(0.7)
	}
	st := s.Snapshot()
	r, err := RestoreStream(st)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		a1, k1 := s.Next()
		a2, k2 := r.Next()
		if a1 != a2 || k1 != k2 {
			t.Fatalf("access %d diverged: (%#x,%v) vs (%#x,%v)", i, a1, k1, a2, k2)
		}
		if s.Speculative(0.5) != r.Speculative(0.5) {
			t.Fatalf("speculative flip %d diverged", i)
		}
	}
}

// TestStreamSnapshotUnknownProfile: a snapshot naming a profile this
// build does not know cannot restore.
func TestStreamSnapshotUnknownProfile(t *testing.T) {
	st := StreamState{Name: "no-such-app"}
	if _, err := RestoreStream(st); err == nil {
		t.Fatal("unknown profile accepted")
	}
}
