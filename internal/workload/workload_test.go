package workload

import (
	"testing"
	"testing/quick"

	"dramtherm/internal/cache"
)

// TestAllProfilesValid checks every compiled-in profile.
func TestAllProfilesValid(t *testing.T) {
	for _, p := range All() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	if len(All()) < 30 {
		t.Fatalf("only %d profiles (need 26 CPU2000 + 8 CPU2006)", len(All()))
	}
}

func TestSuiteSplit(t *testing.T) {
	if got := len(Suite2000()); got != 26 {
		t.Fatalf("CPU2000 count = %d, want 26", got)
	}
	n2006 := 0
	for _, p := range All() {
		if p.Suite == CPU2006 {
			n2006++
		}
	}
	if n2006 != 8 {
		t.Fatalf("CPU2006 count = %d, want 8", n2006)
	}
	if CPU2000.String() != "CPU2000" || CPU2006.String() != "CPU2006" {
		t.Fatal("Suite.String wrong")
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("swim")
	if err != nil || p.Name != "swim" {
		t.Fatalf("ByName(swim) = %v, %v", p, err)
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustByName did not panic")
		}
	}()
	MustByName("nonexistent")
}

// TestIntensityClasses verifies the paper's grouping (§4.3.2): the eight
// high-bandwidth applications are more memory-intensive than the 5–10
// GB/s group.
func TestIntensityClasses(t *testing.T) {
	high := []string{"swim", "mgrid", "applu", "galgel", "art", "equake", "lucas", "fma3d"}
	low := []string{"wupwise", "vpr", "apsi"}
	minHigh := 1e18
	for _, n := range high {
		p := MustByName(n)
		if v := p.L2APKI; v < minHigh {
			minHigh = v
		}
	}
	for _, n := range low {
		if MustByName(n).L2APKI >= minHigh {
			t.Errorf("%s as intense as the high group", n)
		}
	}
}

func TestMixes(t *testing.T) {
	if len(Chapter4Mixes()) != 8 {
		t.Fatalf("chapter 4 mixes = %d", len(Chapter4Mixes()))
	}
	if len(Chapter5Mixes()) != 10 {
		t.Fatalf("chapter 5 mixes = %d", len(Chapter5Mixes()))
	}
	// Table 4.2 exact contents.
	w1, err := MixByName("W1")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"swim", "mgrid", "applu", "galgel"}
	for i, a := range want {
		if w1.Apps[i] != a {
			t.Fatalf("W1 = %v", w1.Apps)
		}
	}
	for _, m := range Mixes {
		ps, err := m.Profiles()
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if len(ps) != 4 {
			t.Fatalf("%s has %d apps", m.Name, len(ps))
		}
	}
	if _, err := MixByName("W99"); err == nil {
		t.Fatal("unknown mix accepted")
	}
}

func TestPhaseMul(t *testing.T) {
	p := MustByName("swim")
	if len(p.Phases) == 0 {
		t.Skip("swim has no phases")
	}
	if got := p.PhaseMul(0); got != p.Phases[0] {
		t.Fatalf("PhaseMul(0) = %v", got)
	}
	if got := p.PhaseMul(1); got != p.Phases[len(p.Phases)-1] {
		t.Fatalf("PhaseMul(1) = %v", got)
	}
	if got := p.PhaseMul(-5); got != p.Phases[0] {
		t.Fatalf("PhaseMul(-5) = %v", got)
	}
	flat := Profile{Phases: nil}
	if flat.PhaseMul(0.5) != 1 {
		t.Fatal("flat profile multiplier != 1")
	}
}

func TestStreamDeterminism(t *testing.T) {
	p := MustByName("swim")
	a := NewStream(p, 0, 42)
	b := NewStream(p, 0, 42)
	for i := 0; i < 1000; i++ {
		aa, ak := a.Next()
		ba, bk := b.Next()
		if aa != ba || ak != bk {
			t.Fatalf("streams diverged at %d", i)
		}
	}
	// Different owners do not alias.
	c := NewStream(p, 1, 42)
	ca, _ := c.Next()
	if ca>>40 == 1 {
		t.Fatalf("owner 1 address in owner 0 region: %#x", ca)
	}
}

// TestStreamAddressRange: every address falls inside the owner's private
// hot+stream region.
func TestStreamAddressRange(t *testing.T) {
	p := MustByName("art")
	s := NewStream(p, 3, 7)
	base := uint64(4) << 40
	limit := base + uint64(p.HotKB+p.StreamKB)*1024
	stores := 0
	for i := 0; i < 20000; i++ {
		addr, kind := s.Next()
		if addr < base || addr >= limit {
			t.Fatalf("address %#x outside [%#x,%#x)", addr, base, limit)
		}
		if kind == cache.Store {
			stores++
		}
	}
	frac := float64(stores) / 20000
	if frac < p.StoreFrac-0.05 || frac > p.StoreFrac+0.05 {
		t.Fatalf("store fraction %.3f, want ~%.2f", frac, p.StoreFrac)
	}
}

func TestSpeculativeScalesWithFrequency(t *testing.T) {
	p := MustByName("swim")
	count := func(ratio float64) int {
		s := NewStream(p, 0, 9)
		n := 0
		for i := 0; i < 50000; i++ {
			if s.Speculative(ratio) {
				n++
			}
		}
		return n
	}
	full, quarter := count(1.0), count(0.25)
	if quarter >= full {
		t.Fatalf("speculative traffic did not scale: full=%d quarter=%d", full, quarter)
	}
	if zero := count(0); zero != 0 {
		t.Fatalf("zero-frequency speculation: %d", zero)
	}
}

func TestValidateRejects(t *testing.T) {
	base := *MustByName("swim")
	cases := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.IPC0 = 0 },
		func(p *Profile) { p.HotFrac = 1.5 },
		func(p *Profile) { p.StoreFrac = -0.1 },
		func(p *Profile) { p.HotKB = 0 },
		func(p *Profile) { p.StreamKB = 0 },
		func(p *Profile) { p.MLP = 0 },
		func(p *Profile) { p.GInstr = 0 },
		func(p *Profile) { p.Phases = []float64{1, -1} },
	}
	for i, mut := range cases {
		p := base
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// Property: PhaseMul output is always one of the declared phase values.
func TestPhaseMulProperty(t *testing.T) {
	p := MustByName("equake")
	f := func(raw uint16) bool {
		prog := float64(raw) / 65535
		m := p.PhaseMul(prog)
		for _, v := range p.Phases {
			if v == m {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
