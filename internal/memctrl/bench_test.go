package memctrl

import (
	"testing"

	"dramtherm/internal/fbconfig"
)

// BenchmarkTick measures the controller scheduling loop under load (the
// per-DDR2-clock cost of the level-1 memory system).
func BenchmarkTick(b *testing.B) {
	c, err := New(DefaultConfig(fbconfig.DefaultSimParams))
	if err != nil {
		b.Fatal(err)
	}
	addr := uint64(0)
	now := 0.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for !c.Full() {
			c.Enqueue(&Request{Addr: addr}, now)
			addr += 64
		}
		c.Tick(now)
		now += 3
	}
}
