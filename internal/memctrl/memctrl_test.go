package memctrl

import (
	"math"
	"testing"
	"testing/quick"

	"dramtherm/internal/fbconfig"
)

func mustNew(t *testing.T) *Controller {
	t.Helper()
	c, err := New(DefaultConfig(fbconfig.DefaultSimParams))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewErrors(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

// TestMapCoversGeometry: the address mapping reaches every
// (channel, dimm, bank) tuple and respects bounds.
func TestMapCoversGeometry(t *testing.T) {
	c := mustNew(t)
	p := fbconfig.DefaultSimParams
	seen := map[[3]int]bool{}
	for line := uint64(0); line < 4096; line++ {
		ch, d, b := c.Map(line * 64)
		if ch < 0 || ch >= p.LogicalChannels || d < 0 || d >= p.DIMMsPerChannel || b < 0 || b >= p.BanksPerDIMM {
			t.Fatalf("mapping out of range: %d %d %d", ch, d, b)
		}
		seen[[3]int{ch, d, b}] = true
	}
	want := p.LogicalChannels * p.DIMMsPerChannel * p.BanksPerDIMM
	if len(seen) != want {
		t.Fatalf("mapping covered %d of %d tuples", len(seen), want)
	}
}

// TestSequentialLinesSpreadChannels: adjacent lines alternate channels
// (line interleaving), so streams use the full system.
func TestSequentialLinesSpreadChannels(t *testing.T) {
	c := mustNew(t)
	ch0, _, _ := c.Map(0)
	ch1, _, _ := c.Map(64)
	if ch0 == ch1 {
		t.Fatal("adjacent lines on the same channel")
	}
}

func TestQueueFullRejection(t *testing.T) {
	c := mustNew(t)
	n := 0
	for i := 0; ; i++ {
		if !c.Enqueue(&Request{Addr: uint64(i) * 64}, 0) {
			break
		}
		n++
		if n > 1000 {
			t.Fatal("queue never fills")
		}
	}
	if n != fbconfig.DefaultSimParams.CtrlQueue {
		t.Fatalf("queue capacity = %d", n)
	}
	if c.Stats().Rejected != 1 {
		t.Fatalf("rejected = %d", c.Stats().Rejected)
	}
	if !c.Full() {
		t.Fatal("Full() false at capacity")
	}
}

func TestShutdownBlocksIssue(t *testing.T) {
	c := mustNew(t)
	c.Enqueue(&Request{Addr: 0}, 0)
	c.SetShutdown(true)
	for now := 0.0; now < 1000; now += 3 {
		if comps := c.Tick(now); len(comps) > 0 {
			t.Fatal("completion while shut down")
		}
	}
	if c.QueueLen() != 1 {
		t.Fatal("queued request vanished during shutdown")
	}
	c.SetShutdown(false)
	done := false
	for now := 1000.0; now < 2000; now += 3 {
		if len(c.Tick(now)) > 0 {
			done = true
			break
		}
	}
	if !done {
		t.Fatal("request not served after resume")
	}
}

func TestCompletionAndLatency(t *testing.T) {
	c := mustNew(t)
	r := &Request{Core: 2, Addr: 64}
	c.Enqueue(r, 0)
	var comp []Completion
	for now := 0.0; now < 500 && len(comp) == 0; now += 3 {
		comp = c.Tick(now)
	}
	if len(comp) != 1 || comp[0].Req != r {
		t.Fatalf("completions = %+v", comp)
	}
	// Unloaded latency: tRCD+tCL+AMBfixed+burst+ctrl ≈ 73–97 ns.
	lat := c.Stats().MeanLatencyNS()
	if lat < 60 || lat > 120 {
		t.Fatalf("unloaded latency %v ns implausible", lat)
	}
	if c.Stats().ReadBytes != 64 {
		t.Fatalf("read bytes = %d", c.Stats().ReadBytes)
	}
}

// TestBandwidthCap drives an open loop of requests against a 2 GB/s cap
// and checks the served throughput converges to the cap.
func TestBandwidthCap(t *testing.T) {
	c := mustNew(t)
	c.SetBandwidthCap(2.0)
	if c.BandwidthCap() != 2.0 {
		t.Fatalf("cap = %v", c.BandwidthCap())
	}
	served := 0
	addr := uint64(0)
	horizon := 2e6 // 2 ms
	for now := 0.0; now < horizon; now += 3 {
		for !c.Full() {
			c.Enqueue(&Request{Addr: addr}, now)
			addr += 64
		}
		served += len(c.Tick(now))
	}
	gbps := float64(served) * 64 / horizon
	if math.Abs(gbps-2.0) > 0.2 {
		t.Fatalf("served %v GB/s under 2 GB/s cap", gbps)
	}
	if c.Stats().ThrottleHit == 0 {
		t.Fatal("throttle never engaged")
	}
	// Disabling the cap restores full speed.
	c.SetBandwidthCap(0)
	if !math.IsInf(c.BandwidthCap(), 1) {
		t.Fatal("cap not cleared")
	}
}

// TestUncappedThroughputNearLinkLimit: with both channels saturated the
// served read bandwidth approaches 2 × 64B/6ns ≈ 21.3 GB/s.
func TestUncappedThroughputNearLinkLimit(t *testing.T) {
	c := mustNew(t)
	served := 0
	addr := uint64(0)
	horizon := 1e6
	for now := 0.0; now < horizon; now += 3 {
		for !c.Full() {
			c.Enqueue(&Request{Addr: addr}, now)
			addr += 64
		}
		served += len(c.Tick(now))
	}
	gbps := float64(served) * 64 / horizon
	if gbps < 15 || gbps > 22 {
		t.Fatalf("uncapped read throughput %v GB/s, want ≈21", gbps)
	}
}

func TestTrafficGBps(t *testing.T) {
	c := mustNew(t)
	addr := uint64(0)
	for now := 0.0; now < 1e5; now += 3 {
		for !c.Full() {
			c.Enqueue(&Request{Addr: addr}, now)
			addr += 64
		}
		c.Tick(now)
	}
	tr := c.TrafficGBps(1e5)
	p := fbconfig.DefaultSimParams
	if len(tr) != p.LogicalChannels*p.DIMMsPerChannel {
		t.Fatalf("traffic entries = %d", len(tr))
	}
	var local float64
	for _, d := range tr {
		local += d.LocalReadGBps + d.LocalWriteGBps
	}
	// Per-physical traffic is half the logical total.
	st := c.Stats()
	want := float64(st.ReadBytes+st.WriteBytes) / 1e5 / 2
	if math.Abs(local-want) > want*0.01+1e-9 {
		t.Fatalf("local sum %v, want %v", local, want)
	}
}

func TestDrain(t *testing.T) {
	c := mustNew(t)
	for i := 0; i < 10; i++ {
		c.Enqueue(&Request{Addr: uint64(i) * 64}, 0)
	}
	_, comps := c.Drain(0)
	if len(comps) != 10 {
		t.Fatalf("drained %d of 10", len(comps))
	}
	if c.QueueLen() != 0 {
		t.Fatal("queue not empty after drain")
	}
}

// Property: completion times are never before the enqueue time plus the
// minimal service latency, for random request patterns.
func TestCompletionCausalityProperty(t *testing.T) {
	f := func(addrsRaw []uint16, writesRaw []bool) bool {
		c, err := New(DefaultConfig(fbconfig.DefaultSimParams))
		if err != nil {
			return false
		}
		n := len(addrsRaw)
		if n > 40 {
			n = 40
		}
		enq := map[*Request]float64{}
		now := 0.0
		for i := 0; i < n; i++ {
			r := &Request{Addr: uint64(addrsRaw[i]) * 64}
			if i < len(writesRaw) {
				r.Write = writesRaw[i]
			}
			if c.Enqueue(r, now) {
				enq[r] = now
			}
			now += 3
		}
		for ; now < 1e5; now += 3 {
			for _, comp := range c.Tick(now) {
				if comp.Time < enq[comp.Req] {
					return false
				}
			}
			if c.QueueLen() == 0 {
				break
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
