// Package memctrl implements the FBDIMM memory controller of Table 4.1: a
// 64-entry transaction queue, line-interleaved address mapping across
// logical channels/banks/DIMMs, first-ready FCFS scheduling over the
// fbdimm channel model, and the row-activation throttling window that
// implements bandwidth capping (the DTM-BW actuator, §2.3/§5.2.1).
package memctrl

import (
	"fmt"
	"math"

	"dramtherm/internal/fbconfig"
	"dramtherm/internal/fbdimm"
)

// Request is one 64-byte memory transaction.
type Request struct {
	Core  int
	Addr  uint64
	Write bool
	// Speculative marks prefetch/speculative traffic: it heats the memory
	// but nobody waits for it (§4.4.2: slower cores issue fewer of these).
	Speculative bool

	channel, dimm, bank int
	row                 int64
	enqueued            float64
}

// Completion reports a finished request.
type Completion struct {
	Req  *Request
	Time float64
}

// Config sizes the controller.
type Config struct {
	Channels         int // logical channels
	DIMMs            int // per channel
	Banks            int // per DIMM
	QueueSize        int
	Timing           fbdimm.Timing
	WindowNS         float64 // throttle accounting window
	MaxIssuesPerTick int
}

// DefaultConfig derives the controller configuration from Table 4.1.
func DefaultConfig(p fbconfig.SimParams) Config {
	return Config{
		Channels:         p.LogicalChannels,
		DIMMs:            p.DIMMsPerChannel,
		Banks:            p.BanksPerDIMM,
		QueueSize:        p.CtrlQueue,
		Timing:           fbdimm.TimingFrom(p),
		WindowNS:         1e5, // 100 µs cap-accounting window
		MaxIssuesPerTick: 4,
	}
}

// Stats aggregates controller activity.
type Stats struct {
	ReadBytes   uint64
	WriteBytes  uint64
	Enqueued    uint64
	Rejected    uint64 // enqueue attempts that found the queue full
	Issued      uint64
	ThrottleHit uint64 // issue attempts blocked by the bandwidth cap
	LatencySum  float64
	LatencyN    uint64
}

// MeanLatencyNS returns the mean read latency observed.
func (s Stats) MeanLatencyNS() float64 {
	if s.LatencyN == 0 {
		return 0
	}
	return s.LatencySum / float64(s.LatencyN)
}

// Controller is the memory controller plus its channels.
type Controller struct {
	cfg      Config
	channels []*fbdimm.Channel

	queue       []*Request
	completions completionHeap
	stats       Stats

	// Bandwidth throttle: a budget of 64B transactions per window.
	capBytesPerSec float64 // 0 or +Inf = unlimited
	windowStart    float64
	windowBudget   float64 // transactions remaining this window
	budgetValid    bool
	shutdown       bool // DTM-TS / L5: memory fully stopped

	chBits, dimmBits, bankBits uint
}

// New builds a controller.
func New(cfg Config) (*Controller, error) {
	if cfg.Channels <= 0 || cfg.QueueSize <= 0 {
		return nil, fmt.Errorf("memctrl: invalid config %+v", cfg)
	}
	if cfg.MaxIssuesPerTick <= 0 {
		cfg.MaxIssuesPerTick = 4
	}
	c := &Controller{cfg: cfg, capBytesPerSec: math.Inf(1)}
	for i := 0; i < cfg.Channels; i++ {
		ch, err := fbdimm.NewChannel(cfg.Timing, cfg.DIMMs, cfg.Banks)
		if err != nil {
			return nil, err
		}
		c.channels = append(c.channels, ch)
	}
	c.chBits = log2(cfg.Channels)
	c.dimmBits = log2(cfg.DIMMs)
	c.bankBits = log2(cfg.Banks)
	return c, nil
}

func log2(n int) uint {
	b := uint(0)
	for 1<<b < n {
		b++
	}
	return b
}

// SetBandwidthCap limits aggregate throughput to gbps gigabytes/second
// (0 or +Inf disables the cap). This models the activation-count window
// of the Intel 5000X chipset: with close-page mode each transaction is one
// activation, so capping activations caps bandwidth (§5.2.2).
func (c *Controller) SetBandwidthCap(gbps float64) {
	if gbps <= 0 || math.IsInf(gbps, 1) {
		c.capBytesPerSec = math.Inf(1)
	} else {
		c.capBytesPerSec = gbps * 1e9
	}
	c.budgetValid = false
}

// BandwidthCap returns the current cap in GB/s (+Inf when unlimited).
func (c *Controller) BandwidthCap() float64 {
	if math.IsInf(c.capBytesPerSec, 1) {
		return math.Inf(1)
	}
	return c.capBytesPerSec / 1e9
}

// SetPageMode switches every channel's row-buffer policy (the paper's
// close-page default vs. the open-page ablation).
func (c *Controller) SetPageMode(m fbdimm.PageMode) {
	for _, ch := range c.channels {
		ch.SetPageMode(m)
	}
}

// SetShutdown stops (true) or resumes (false) all memory transactions,
// the DTM-TS actuator. Queued requests stay queued while shut down.
func (c *Controller) SetShutdown(down bool) { c.shutdown = down }

// Shutdown reports whether the memory system is stopped.
func (c *Controller) Shutdown() bool { return c.shutdown }

// QueueLen returns the number of waiting requests.
func (c *Controller) QueueLen() int { return len(c.queue) }

// Full reports whether the queue has no free entry.
func (c *Controller) Full() bool { return len(c.queue) >= c.cfg.QueueSize }

// Map assigns channel/DIMM/bank from the line address: lines interleave
// across channels, then banks, then DIMMs (page-ish DIMM interleaving so
// traffic spreads evenly over the chain, §3.3's even-share assumption).
func (c *Controller) Map(addr uint64) (channel, dimm, bank int) {
	line := addr >> 6
	channel = int(line & uint64(c.cfg.Channels-1))
	line >>= c.chBits
	bank = int(line & uint64(c.cfg.Banks-1))
	line >>= c.bankBits
	dimm = int(line & uint64(c.cfg.DIMMs-1))
	return
}

// Enqueue adds a request at time now. It returns false when the queue is
// full, in which case the requester must stall and retry.
func (c *Controller) Enqueue(r *Request, now float64) bool {
	if len(c.queue) >= c.cfg.QueueSize {
		c.stats.Rejected++
		return false
	}
	r.channel, r.dimm, r.bank = c.Map(r.Addr)
	r.row = int64(r.Addr >> 15) // 32 KB row per bank across the ganged pair
	r.enqueued = now
	c.queue = append(c.queue, r)
	c.stats.Enqueued++
	return true
}

// refillWindow resets the throttle budget when a new window starts or the
// cap has changed.
func (c *Controller) refillWindow(now float64) {
	if c.budgetValid && now-c.windowStart < c.cfg.WindowNS {
		return
	}
	if !c.budgetValid {
		c.windowStart = now
	} else {
		c.windowStart = now - math.Mod(now-c.windowStart, c.cfg.WindowNS)
	}
	c.budgetValid = true
	if math.IsInf(c.capBytesPerSec, 1) {
		c.windowBudget = math.Inf(1)
		return
	}
	c.windowBudget = c.capBytesPerSec * c.cfg.WindowNS / 1e9 / 64
}

// Tick attempts to issue queued requests at time now and returns all
// completions due at or before now. Call with monotonically nondecreasing
// times; a typical caller ticks every DDR2 clock (3 ns).
func (c *Controller) Tick(now float64) []Completion {
	return c.TickAppend(now, nil)
}

// TickAppend is Tick appending completions to out instead of allocating
// a fresh slice; the cycle-driven level-1 loop passes a buffer it reuses
// every clock (typically out[:0]), making the common empty tick
// allocation-free.
func (c *Controller) TickAppend(now float64, out []Completion) []Completion {
	c.refillWindow(now)
	if !c.shutdown {
		issued := 0
		for i := 0; i < len(c.queue) && issued < c.cfg.MaxIssuesPerTick; i++ {
			if c.windowBudget < 1 {
				c.stats.ThrottleHit++
				break
			}
			r := c.queue[i]
			ch := c.channels[r.channel]
			if !ch.CanIssue(now, r.dimm, r.bank, r.Write) {
				continue
			}
			done := ch.IssueRow(now, r.dimm, r.bank, r.row, r.Write)
			if !math.IsInf(c.windowBudget, 1) {
				c.windowBudget--
			}
			c.stats.Issued++
			if r.Write {
				c.stats.WriteBytes += 64
			} else {
				c.stats.ReadBytes += 64
				c.stats.LatencySum += done - r.enqueued
				c.stats.LatencyN++
			}
			c.completions.push(Completion{Req: r, Time: done})
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			i--
			issued++
		}
	}

	for len(c.completions) > 0 && c.completions[0].Time <= now {
		out = append(out, c.completions.pop())
	}
	return out
}

// Drain returns the time by which all in-flight and queued work would
// finish if ticked continuously from now; used by tests.
func (c *Controller) Drain(now float64) (float64, []Completion) {
	var all []Completion
	t := now
	for len(c.queue) > 0 || len(c.completions) > 0 {
		t += c.cfg.Timing.ClockNS
		all = append(all, c.Tick(t)...)
		if t > now+1e9 { // 1 s safety bound
			break
		}
	}
	return t, all
}

// Stats returns aggregate controller statistics.
func (c *Controller) Stats() Stats { return c.stats }

// Channels exposes the underlying channels (read-mostly, for traffic
// accounting by the power model).
func (c *Controller) Channels() []*fbdimm.Channel { return c.channels }

// TrafficGBps converts the per-DIMM byte counters accumulated since the
// last ResetStats into *per-physical-DIMM* GB/s over a window of winNS
// nanoseconds. The logical channel is a ganged pair, so physical traffic
// is half the logical counters. The result has Channels()×DIMMs entries,
// channel-major.
func (c *Controller) TrafficGBps(winNS float64) []PhysDIMMTraffic {
	out := make([]PhysDIMMTraffic, 0, len(c.channels)*c.cfg.DIMMs)
	if winNS <= 0 {
		winNS = 1
	}
	scale := 1.0 / (winNS / 1e9) / 1e9 / 2 // bytes→GB/s, halved for ganging
	for _, ch := range c.channels {
		for _, t := range ch.Traffic() {
			out = append(out, PhysDIMMTraffic{
				LocalReadGBps:  float64(t.LocalRead) * scale,
				LocalWriteGBps: float64(t.LocalWrite) * scale,
				BypassGBps:     float64(t.Bypass) * scale,
			})
		}
	}
	return out
}

// PhysDIMMTraffic is per-physical-DIMM throughput.
type PhysDIMMTraffic struct {
	LocalReadGBps  float64
	LocalWriteGBps float64
	BypassGBps     float64
}

// ResetStats clears throughput/latency counters (in-flight state kept).
func (c *Controller) ResetStats() {
	c.stats = Stats{}
	for _, ch := range c.channels {
		ch.ResetStats()
	}
}

// completionHeap is a min-heap on Completion.Time. The sift algorithms
// mirror container/heap exactly (same comparisons, same swaps), so
// equal-time pop order matches the previous heap.Push/heap.Pop
// implementation; the hand-rolled methods exist to avoid boxing every
// Completion through interface{} — one allocation per issued request on
// the level-1 hot path.
type completionHeap []Completion

func (h *completionHeap) push(x Completion) {
	*h = append(*h, x)
	s := *h
	// Sift up, as container/heap's up().
	for j := len(s) - 1; j > 0; {
		i := (j - 1) / 2
		if !(s[j].Time < s[i].Time) {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
}

func (h *completionHeap) pop() Completion {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	// Sift down over s[:n], as container/heap's down().
	for i := 0; ; {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && s[j2].Time < s[j].Time {
			j = j2
		}
		if !(s[j].Time < s[i].Time) {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	x := s[n]
	s[n] = Completion{} // drop the *Request reference
	*h = s[:n]
	return x
}
