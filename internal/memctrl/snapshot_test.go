package memctrl

import (
	"testing"

	"dramtherm/internal/fbconfig"
)

// loadedController enqueues a spread of requests and ticks partway, so
// the snapshot carries a non-empty queue, in-flight completions and
// window-budget state.
func loadedController(t *testing.T) (*Controller, float64) {
	t.Helper()
	c := mustNew(t)
	c.SetBandwidthCap(6.4)
	now := 0.0
	for i := 0; i < 40; i++ {
		c.Enqueue(&Request{Core: i % 4, Addr: uint64(i) * 64, Write: i%3 == 0}, now)
		if i%4 == 3 {
			c.Tick(now)
			now += 30
		}
	}
	if c.QueueLen() == 0 {
		t.Fatal("scenario vacuous: queue drained before snapshot")
	}
	return c, now
}

// TestControllerSnapshotForkBitIdentical: a restored controller drains
// the same completions at the same times with the same stats as the
// controller it was captured from.
func TestControllerSnapshotForkBitIdentical(t *testing.T) {
	src, now := loadedController(t)
	st := src.Snapshot()
	if st.Digest() != src.Snapshot().Digest() {
		t.Fatal("snapshot digest not stable")
	}

	dst := mustNew(t)
	if err := dst.Restore(st); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		a, b := src.Tick(now), dst.Tick(now)
		if len(a) != len(b) {
			t.Fatalf("tick %d: %d vs %d completions", i, len(a), len(b))
		}
		for j := range a {
			if a[j].Time != b[j].Time || a[j].Req.State() != b[j].Req.State() {
				t.Fatalf("tick %d completion %d: %+v@%v vs %+v@%v",
					i, j, a[j].Req.State(), a[j].Time, b[j].Req.State(), b[j].Time)
			}
			if a[j].Req == b[j].Req {
				t.Fatal("restored controller shares a live *Request with its source")
			}
		}
		now += 15
	}
	if src.Stats() != dst.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", src.Stats(), dst.Stats())
	}
	if src.Snapshot().Digest() != dst.Snapshot().Digest() {
		t.Fatal("final digests differ after lockstep ticks")
	}
}

func TestControllerRestoreValidation(t *testing.T) {
	src, _ := loadedController(t)
	st := src.Snapshot()

	cfg := DefaultConfig(fbconfig.DefaultSimParams)
	cfg.Channels = 1
	narrow, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := narrow.Restore(st); err == nil {
		t.Fatal("snapshot restored onto a controller with fewer channels")
	}

	over := st
	over.Queue = make([]RequestState, src.cfg.QueueSize+1)
	if err := mustNew(t).Restore(over); err == nil {
		t.Fatal("oversized queue restored")
	}
}

// TestRequestStateRoundTrip: State/NewRequest preserve the routing
// fields the scheduler depends on.
func TestRequestStateRoundTrip(t *testing.T) {
	c := mustNew(t)
	r := &Request{Core: 2, Addr: 0x12340, Write: true, Speculative: true}
	c.Enqueue(r, 5)
	st := r.State()
	fresh := NewRequest(st)
	if fresh == r {
		t.Fatal("NewRequest returned the captured pointer")
	}
	if fresh.State() != st {
		t.Fatalf("round trip changed state: %+v vs %+v", fresh.State(), st)
	}
}
