// Snapshot/restore seam for the memory controller, part of the level-1
// checkpoint chain (internal/cpu). Requests are captured by value —
// including the unexported routing fields — and Restore materializes
// fresh *Request allocations, so a restored controller never shares live
// request pointers with the machine it was snapshotted from.

package memctrl

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"dramtherm/internal/fbdimm"
)

// RequestState is the by-value capture of one Request, routing fields
// included.
type RequestState struct {
	Core        int
	Addr        uint64
	Write       bool
	Speculative bool
	Channel     int
	DIMM        int
	Bank        int
	Row         int64
	Enqueued    float64
}

// State captures the request by value.
func (r *Request) State() RequestState {
	return RequestState{
		Core: r.Core, Addr: r.Addr, Write: r.Write, Speculative: r.Speculative,
		Channel: r.channel, DIMM: r.dimm, Bank: r.bank, Row: r.row, Enqueued: r.enqueued,
	}
}

// NewRequest materializes a fresh Request from a captured state.
func NewRequest(st RequestState) *Request {
	return &Request{
		Core: st.Core, Addr: st.Addr, Write: st.Write, Speculative: st.Speculative,
		channel: st.Channel, dimm: st.DIMM, bank: st.Bank, row: st.Row, enqueued: st.Enqueued,
	}
}

// CompletionState is the by-value capture of one scheduled completion.
type CompletionState struct {
	Req  RequestState
	Time float64
}

// ControllerState is the restorable state of a Controller. The
// completion entries are stored in heap order, which is itself a valid
// heap, so Restore reloads them verbatim.
type ControllerState struct {
	Queue       []RequestState
	Completions []CompletionState
	Stats       Stats

	CapBytesPerSec float64
	WindowStart    float64
	WindowBudget   float64
	BudgetValid    bool
	Shutdown       bool

	Channels []fbdimm.ChannelState
}

// Snapshot deep-copies the controller's dynamic state.
func (c *Controller) Snapshot() ControllerState {
	st := ControllerState{
		Queue:          make([]RequestState, len(c.queue)),
		Completions:    make([]CompletionState, len(c.completions)),
		Stats:          c.stats,
		CapBytesPerSec: c.capBytesPerSec,
		WindowStart:    c.windowStart,
		WindowBudget:   c.windowBudget,
		BudgetValid:    c.budgetValid,
		Shutdown:       c.shutdown,
		Channels:       make([]fbdimm.ChannelState, len(c.channels)),
	}
	for i, r := range c.queue {
		st.Queue[i] = r.State()
	}
	for i, comp := range c.completions {
		st.Completions[i] = CompletionState{Req: comp.Req.State(), Time: comp.Time}
	}
	for i, ch := range c.channels {
		st.Channels[i] = ch.Snapshot()
	}
	return st
}

// Restore overwrites the controller's state from a snapshot taken on a
// controller with the same configuration. Every queued and in-flight
// request is a fresh allocation: the restored controller holds no
// pointer into the snapshotted machine.
func (c *Controller) Restore(st ControllerState) error {
	if len(st.Channels) != len(c.channels) {
		return fmt.Errorf("memctrl: restore with %d channels onto %d", len(st.Channels), len(c.channels))
	}
	if len(st.Queue) > c.cfg.QueueSize {
		return fmt.Errorf("memctrl: restore with %d queued requests, queue size %d", len(st.Queue), c.cfg.QueueSize)
	}
	for i, chs := range st.Channels {
		if err := c.channels[i].Restore(chs); err != nil {
			return err
		}
	}
	c.queue = c.queue[:0]
	for _, rs := range st.Queue {
		c.queue = append(c.queue, NewRequest(rs))
	}
	c.completions = c.completions[:0]
	for _, cs := range st.Completions {
		c.completions = append(c.completions, Completion{Req: NewRequest(cs.Req), Time: cs.Time})
	}
	c.stats = st.Stats
	c.capBytesPerSec = st.CapBytesPerSec
	c.windowStart = st.WindowStart
	c.windowBudget = st.WindowBudget
	c.budgetValid = st.BudgetValid
	c.shutdown = st.Shutdown
	return nil
}

// Digest returns the canonical digest of the state: SHA-256 over its
// full-precision rendering, truncated to 16 hex digits (the
// core.ConfigDigest idiom; the state holds no maps, so the rendering is
// deterministic).
func (st ControllerState) Digest() string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%+v", st)))
	return hex.EncodeToString(sum[:8])
}
