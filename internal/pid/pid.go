// Package pid implements the PID formal controller of §4.2.3 (Eq. 4.1)
// with the two refinements the paper describes in §4.3.4: the integral
// term is only enabled once the temperature exceeds an activation
// threshold, and it is frozen while the control output saturates the
// actuator (conditional integration anti-windup).
package pid

import "fmt"

// Config holds the controller gains and operating thresholds.
type Config struct {
	Kc float64 // proportional gain
	KI float64 // integral gain (multiplies the integral of e)
	KD float64 // differential gain

	Target           float64 // target temperature (°C)
	IntegralActivate float64 // integral enabled once measurement exceeds this

	OutputMin, OutputMax float64 // actuator saturation bounds on m(t)
}

// AMBDefaults returns the Chapter 4 AMB controller constants (§4.3.4):
// Kc=10.4, KI=180.24, KD=0.001, target 109.8 °C, integral activated at
// 109.0 °C. Output bounds must still be set by the caller to match the
// actuator's control range.
func AMBDefaults() Config {
	return Config{Kc: 10.4, KI: 180.24, KD: 0.001, Target: 109.8, IntegralActivate: 109.0}
}

// DRAMDefaults returns the Chapter 4 DRAM controller constants (§4.3.4):
// Kc=12.4, KI=155.12, KD=0.001, target 84.8 °C, integral activated at
// 84.0 °C.
func DRAMDefaults() Config {
	return Config{Kc: 12.4, KI: 155.12, KD: 0.001, Target: 84.8, IntegralActivate: 84.0}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.OutputMax < c.OutputMin {
		return fmt.Errorf("pid: OutputMax %v < OutputMin %v", c.OutputMax, c.OutputMin)
	}
	return nil
}

// Controller is a discrete-time PID controller. The zero value is not
// usable; construct with New.
type Controller struct {
	cfg      Config
	integral float64
	prevErr  float64
	seeded   bool
}

// New returns a controller for cfg.
func New(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Controller{cfg: cfg}, nil
}

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// Reset clears controller state (integral and error history).
func (c *Controller) Reset() {
	c.integral = 0
	c.prevErr = 0
	c.seeded = false
}

// Integral exposes the accumulated integral term, useful in tests.
func (c *Controller) Integral() float64 { return c.integral }

// Update advances the controller one step of dt seconds with the measured
// temperature and returns the (saturated) control output m(t). Following
// Eq. 4.1 the error is target − measured, so the output decreases
// (demanding a lower-performance running state) as the measurement
// approaches and exceeds the target.
func (c *Controller) Update(measured float64, dt float64) float64 {
	e := c.cfg.Target - measured

	var deriv float64
	if c.seeded && dt > 0 {
		deriv = (e - c.prevErr) / dt
	}

	// Tentative output with the current integral.
	raw := c.cfg.Kc * (e + c.cfg.KI*c.integral + c.cfg.KD*deriv)
	out := clamp(raw, c.cfg.OutputMin, c.cfg.OutputMax)

	// Conditional integration (§4.3.4): accumulate only once the
	// temperature has crossed the activation threshold, and freeze while
	// the actuator is saturated (anti-windup). The integral is further
	// clamped to the throttling direction: with the paper's large KI
	// (180.24) even a small positive accumulation below the target would
	// pin the output at full performance until the thermal limit is
	// violated, so error accumulated below the target may only unwind
	// previous above-target accumulation, never push past it. This is
	// the behaviour the paper reports (temperature "sticks around
	// 109.8 °C and never overshoots").
	if measured >= c.cfg.IntegralActivate && raw == out {
		c.integral += e * dt
		lo := c.cfg.OutputMin / (c.cfg.Kc * c.cfg.KI)
		if c.cfg.Kc*c.cfg.KI <= 0 {
			lo = 0
		}
		c.integral = clamp(c.integral, lo, 0)
		raw = c.cfg.Kc * (e + c.cfg.KI*c.integral + c.cfg.KD*deriv)
		out = clamp(raw, c.cfg.OutputMin, c.cfg.OutputMax)
	}

	c.prevErr = e
	c.seeded = true
	return out
}

// Level maps the controller output onto one of n discrete running levels,
// 0 being the highest-performance level and n−1 the most throttled. The
// output range [OutputMin, OutputMax] is divided evenly; outputs at
// OutputMax map to level 0.
func (c *Controller) Level(out float64, n int) int {
	if n <= 1 {
		return 0
	}
	span := c.cfg.OutputMax - c.cfg.OutputMin
	if span <= 0 {
		return 0
	}
	frac := (c.cfg.OutputMax - out) / span // 0 at max output, 1 at min
	lvl := int(frac * float64(n))
	if lvl >= n {
		lvl = n - 1
	}
	if lvl < 0 {
		lvl = 0
	}
	return lvl
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
