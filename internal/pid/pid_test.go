package pid

import (
	"testing"
	"testing/quick"
)

func ambController(t *testing.T) *Controller {
	t.Helper()
	cfg := AMBDefaults()
	cfg.OutputMin, cfg.OutputMax = -4, 4
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestValidate(t *testing.T) {
	if _, err := New(Config{OutputMin: 1, OutputMax: -1}); err == nil {
		t.Fatal("inverted bounds accepted")
	}
	if _, err := New(Config{OutputMin: -1, OutputMax: 1}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestSaturation(t *testing.T) {
	c := ambController(t)
	// Far below target: output pinned at max (full performance).
	if out := c.Update(90, 0.01); out != 4 {
		t.Fatalf("cold output = %v, want 4", out)
	}
	// Far above target: pinned at min (full throttle).
	c.Reset()
	if out := c.Update(130, 0.01); out != -4 {
		t.Fatalf("hot output = %v, want -4", out)
	}
}

func TestLevelMapping(t *testing.T) {
	c := ambController(t)
	if lv := c.Level(4, 4); lv != 0 {
		t.Fatalf("max output level = %d", lv)
	}
	if lv := c.Level(-4, 4); lv != 3 {
		t.Fatalf("min output level = %d", lv)
	}
	if lv := c.Level(0, 1); lv != 0 {
		t.Fatalf("single level = %d", lv)
	}
	prev := -1
	for out := 4.0; out >= -4; out -= 0.5 {
		lv := c.Level(out, 4)
		if lv < prev {
			t.Fatalf("level not monotonic in falling output")
		}
		prev = lv
	}
}

// simulatePlant runs the controller against a first-order thermal plant
// whose stable temperature depends on the chosen level, and returns the
// trajectory. Level 0 overheats (stable 115), level 3 cools (stable 105).
func simulatePlant(c *Controller, steps int) []float64 {
	stableFor := []float64{115, 111, 108.5, 105}
	temp := 100.0
	out := make([]float64, 0, steps)
	for i := 0; i < steps; i++ {
		o := c.Update(temp, 0.1)
		lv := c.Level(o, 4)
		stable := stableFor[lv]
		// RC step with tau=50, dt=0.1.
		temp += (stable - temp) * (1 - 0.998)
		out = append(out, temp)
	}
	return out
}

// TestRegulation is the §4.3.4 behaviour: the controlled temperature
// converges near the 109.8 target without exceeding the 110 limit.
func TestRegulation(t *testing.T) {
	c := ambController(t)
	traj := simulatePlant(c, 60000)
	max := 0.0
	for _, v := range traj {
		if v > max {
			max = v
		}
	}
	if max >= 110 {
		t.Fatalf("overshoot: max %v", max)
	}
	// Late trajectory hugs the target.
	late := traj[len(traj)-5000:]
	var sum float64
	for _, v := range late {
		sum += v
	}
	avg := sum / float64(len(late))
	if avg < 108.8 || avg > 110 {
		t.Fatalf("settled at %v, want near 109.8", avg)
	}
}

// TestIntegralActivation: below the activation threshold the integral
// stays zero.
func TestIntegralActivation(t *testing.T) {
	c := ambController(t)
	for i := 0; i < 100; i++ {
		c.Update(105, 0.1) // below 109.0 activation
	}
	if c.Integral() != 0 {
		t.Fatalf("integral accumulated below activation: %v", c.Integral())
	}
}

// TestIntegralClamp: the integral never pushes the output above what the
// proportional term alone would demand (throttling-only integral).
func TestIntegralClamp(t *testing.T) {
	c := ambController(t)
	for i := 0; i < 1000; i++ {
		c.Update(109.9, 0.1) // slightly above target: e < 0
	}
	if c.Integral() > 0 {
		t.Fatalf("positive integral: %v", c.Integral())
	}
	lo := c.Config().OutputMin / (c.Config().Kc * c.Config().KI)
	if c.Integral() < lo-1e-9 {
		t.Fatalf("integral below clamp: %v < %v", c.Integral(), lo)
	}
}

func TestReset(t *testing.T) {
	c := ambController(t)
	c.Update(109.9, 0.1)
	c.Update(109.9, 0.1)
	c.Reset()
	if c.Integral() != 0 {
		t.Fatal("reset did not clear integral")
	}
}

// Property: output always within [OutputMin, OutputMax].
func TestOutputBoundedProperty(t *testing.T) {
	c := ambController(t)
	f := func(temps []uint8) bool {
		c.Reset()
		for _, raw := range temps {
			temp := 80 + float64(raw%50)
			out := c.Update(temp, 0.1)
			if out < -4-1e-9 || out > 4+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDRAMDefaults(t *testing.T) {
	cfg := DRAMDefaults()
	if cfg.Kc != 12.4 || cfg.KI != 155.12 || cfg.Target != 84.8 {
		t.Fatalf("DRAM defaults wrong: %+v", cfg)
	}
	a := AMBDefaults()
	if a.Kc != 10.4 || a.KI != 180.24 || a.Target != 109.8 {
		t.Fatalf("AMB defaults wrong: %+v", a)
	}
}
