package pid

import "testing"

// BenchmarkUpdate measures one controller step (invoked once per DTM
// interval per sensor).
func BenchmarkUpdate(b *testing.B) {
	cfg := AMBDefaults()
	cfg.OutputMin, cfg.OutputMax = -4, 4
	c, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Update(109.5+float64(i%10)/20, 0.01)
	}
}
