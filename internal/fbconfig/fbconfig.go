// Package fbconfig holds the published parameter tables of the paper as
// typed Go data: the FBDIMM power-model coefficients (Table 3.1), the
// thermal-resistance/time-constant table (Table 3.2), the ambient-model
// parameters (Table 3.3), and the architectural simulator parameters
// (Table 4.1). Other packages consume these values; the experiment drivers
// also re-print them so the reproduction can be checked against the paper.
package fbconfig

import "fmt"

// GBps expresses a bandwidth in gigabytes per second.
type GBps = float64

// Celsius expresses a temperature in degrees Celsius.
type Celsius = float64

// Watt expresses power in watts.
type Watt = float64

// Seconds expresses a duration in seconds (the thermal models run on
// float64 seconds rather than time.Duration for numeric convenience).
type Seconds = float64

// DRAMPower holds the Micron-derived DRAM chip power model of Eq. 3.1 for
// one FBDIMM (1GB DDR2-667x8, 110 nm, close page + auto precharge, 20% of
// time all banks precharged, no low-power modes).
type DRAMPower struct {
	Static    Watt // P_DRAM_static, includes refresh
	ReadCoef  Watt // α1, W per GB/s of read throughput
	WriteCoef Watt // α2, W per GB/s of write throughput
}

// AMBPower holds the Intel-derived AMB power model of Eq. 3.2 (Table 3.1).
type AMBPower struct {
	IdleLast   Watt // P_AMB_idle for the last DIMM of a channel
	IdleOther  Watt // P_AMB_idle for any other DIMM
	BypassCoef Watt // β, W per GB/s of bypass traffic
	LocalCoef  Watt // γ, W per GB/s of local traffic
}

// DefaultDRAMPower is the Eq. 3.1 parameterization given in §3.3.
var DefaultDRAMPower = DRAMPower{Static: 0.98, ReadCoef: 1.12, WriteCoef: 1.16}

// DefaultAMBPower is Table 3.1.
var DefaultAMBPower = AMBPower{IdleLast: 4.0, IdleOther: 5.1, BypassCoef: 0.19, LocalCoef: 0.75}

// HeatSpreader identifies the FBDIMM heat-spreader type of §3.4.
type HeatSpreader int

const (
	// AOHS is the AMB-Only Heat Spreader.
	AOHS HeatSpreader = iota
	// FDHS is the Full-DIMM Heat Spreader.
	FDHS
)

func (h HeatSpreader) String() string {
	switch h {
	case AOHS:
		return "AOHS"
	case FDHS:
		return "FDHS"
	default:
		return fmt.Sprintf("HeatSpreader(%d)", int(h))
	}
}

// Cooling is one column of Table 3.2: a heat-spreader type plus a cooling
// air velocity, with the four thermal resistances (°C/W) that follow.
type Cooling struct {
	Spreader    HeatSpreader
	AirVelocity float64 // m/s

	PsiAMB     float64 // Ψ_AMB: AMB → ambient
	PsiDRAMAMB float64 // Ψ_DRAM_AMB: DRAM power → AMB temperature
	PsiDRAM    float64 // Ψ_DRAM: DRAM → ambient
	PsiAMBDRAM float64 // Ψ_AMB_DRAM: AMB power → DRAM temperature
	TauAMB     Seconds // τ_AMB thermal RC constant
	TauDRAM    Seconds // τ_DRAM thermal RC constant
}

// Name returns the paper's shorthand for the configuration, e.g. "AOHS_1.5".
func (c Cooling) Name() string {
	return fmt.Sprintf("%s_%.1f", c.Spreader, c.AirVelocity)
}

// Table 3.2, all six columns. The two bold columns (AOHS 1.5 and FDHS 1.0)
// are the ones the paper's experiments use.
var (
	CoolingAOHS10 = Cooling{AOHS, 1.0, 11.2, 4.3, 4.9, 5.3, 50, 100}
	CoolingAOHS15 = Cooling{AOHS, 1.5, 9.3, 3.4, 4.0, 4.1, 50, 100}
	CoolingAOHS30 = Cooling{AOHS, 3.0, 6.6, 2.2, 2.7, 2.6, 50, 100}
	CoolingFDHS10 = Cooling{FDHS, 1.0, 8.0, 4.4, 4.0, 5.7, 50, 100}
	CoolingFDHS15 = Cooling{FDHS, 1.5, 7.0, 3.7, 3.3, 4.5, 50, 100}
	CoolingFDHS30 = Cooling{FDHS, 3.0, 5.5, 2.9, 2.3, 2.9, 50, 100}
)

// Coolings lists every column of Table 3.2 in paper order.
var Coolings = []Cooling{
	CoolingAOHS10, CoolingAOHS15, CoolingAOHS30,
	CoolingFDHS10, CoolingFDHS15, CoolingFDHS30,
}

// ExperimentCoolings are the two configurations the paper evaluates
// (bold columns of Table 3.2).
var ExperimentCoolings = []Cooling{CoolingAOHS15, CoolingFDHS10}

// CoolingByName returns the Table 3.2 column with the given shorthand
// name (e.g. "AOHS_1.5"); the empty string selects AOHS_1.5, the paper's
// primary configuration.
func CoolingByName(name string) (Cooling, error) {
	if name == "" {
		return CoolingAOHS15, nil
	}
	for _, c := range Coolings {
		if c.Name() == name {
			return c, nil
		}
	}
	return Cooling{}, fmt.Errorf("fbconfig: unknown cooling %q", name)
}

// Ambient holds the Table 3.3 parameters of the DRAM-ambient model
// (Eq. 3.6): the system inlet temperature per cooling configuration and the
// combined interaction coefficient Ψ_CPU_MEM × ξ.
type Ambient struct {
	InletFDHS10 Celsius // system inlet temperature under FDHS 1.0
	InletAOHS15 Celsius // system inlet temperature under AOHS 1.5
	PsiXi       float64 // Ψ_CPU_MEM × ξ (°C per V·IPC summed over cores)
	TauCPUDRAM  Seconds // τ of the ambient RC (20 s, §3.5)
}

// Inlet returns the system inlet temperature for the given cooling
// configuration, falling back to the AOHS 1.5 value for other columns.
func (a Ambient) Inlet(c Cooling) Celsius {
	if c.Spreader == FDHS {
		return a.InletFDHS10
	}
	return a.InletAOHS15
}

// Table 3.3.
var (
	// AmbientIsolated is the isolated-model row: no CPU interaction and a
	// hotter fixed ambient (45/50 °C) to model a thermally constrained box.
	AmbientIsolated = Ambient{InletFDHS10: 45, InletAOHS15: 50, PsiXi: 0.0, TauCPUDRAM: 20}
	// AmbientIntegrated is the integrated-model row: lower inlet (40/45 °C)
	// plus Ψ_CPU_MEM×ξ = 1.5 CPU preheating.
	AmbientIntegrated = Ambient{InletFDHS10: 40, InletAOHS15: 45, PsiXi: 1.5, TauCPUDRAM: 20}
)

// ThermalLimits are the FBDIMM thermal design points of §4.3.3.
type ThermalLimits struct {
	AMBTDP  Celsius // 110 °C for the chosen FBDIMM
	DRAMTDP Celsius // 85 °C
	AMBTRP  Celsius // thermal release point used by DTM-TS
	DRAMTRP Celsius
}

// DefaultLimits reproduces the defaults of §4.4.1: TRP one degree below TDP.
var DefaultLimits = ThermalLimits{AMBTDP: 110, DRAMTDP: 85, AMBTRP: 109, DRAMTRP: 84}

// DVFSLevel is one processor voltage/frequency operating point.
type DVFSLevel struct {
	FreqGHz float64
	Volt    float64
}

// SimParams mirrors Table 4.1 (the level-1 simulator parameters).
type SimParams struct {
	Cores            int
	IssueWidth       int
	ROB              int
	LQ, SQ           int
	L1SizeKB         int
	L1Ways           int
	L1HitLatency     int // cycles (data)
	L2SizeKB         int
	L2Ways           int
	L2HitLatency     int // cycles
	LineBytes        int
	MSHRData         int
	MSHRL2           int
	LogicalChannels  int
	PhysicalChannels int
	DIMMsPerChannel  int
	BanksPerDIMM     int
	ChannelMTps      int     // mega-transfers per second (667)
	CtrlQueue        int     // memory controller buffer entries
	CtrlOverheadNS   float64 // fixed controller overhead
	DTMIntervalMS    float64
	DTMOverheadUS    float64
	DVFS             []DVFSLevel

	// DDR2 timing (ns), Table 4.1 "(5-5-5)" plus the extra parameters.
	TRCD, TCL, TRP       float64
	TRAS, TRC, TWTR, TWL float64
	TWPD, TRPD, TRRD     float64
}

// DefaultSimParams is Table 4.1.
var DefaultSimParams = SimParams{
	Cores:            4,
	IssueWidth:       4,
	ROB:              196,
	LQ:               32,
	SQ:               32,
	L1SizeKB:         64,
	L1Ways:           2,
	L1HitLatency:     3,
	L2SizeKB:         4096,
	L2Ways:           8,
	L2HitLatency:     15,
	LineBytes:        64,
	MSHRData:         32,
	MSHRL2:           64,
	LogicalChannels:  2,
	PhysicalChannels: 4,
	DIMMsPerChannel:  4,
	BanksPerDIMM:     8,
	ChannelMTps:      667,
	CtrlQueue:        64,
	CtrlOverheadNS:   12,
	DTMIntervalMS:    10,
	DTMOverheadUS:    25,
	DVFS: []DVFSLevel{
		{3.2, 1.55}, {2.4, 1.35}, {1.6, 1.15}, {0.8, 0.95},
	},
	TRCD: 15, TCL: 15, TRP: 15,
	TRAS: 39, TRC: 54, TWTR: 9, TWL: 12,
	TWPD: 36, TRPD: 9, TRRD: 9,
}

// PeakChannelBandwidth returns the theoretical northbound read bandwidth of
// one physical FBDIMM channel in GB/s: 8 bytes per transfer at ChannelMTps.
func (p SimParams) PeakChannelBandwidth() GBps {
	return float64(p.ChannelMTps) * 8 / 1000
}

// DTMDVFS is the Table 4.3 frequency/voltage ladder used by DTM-CDVFS:
// 3.2 GHz@1.55 V, 2.4 GHz@1.35 V, 1.6 GHz@1.15 V, 0.8 GHz@0.95 V.
var DTMDVFS = []DVFSLevel{
	{FreqGHz: 3.2, Volt: 1.55},
	{FreqGHz: 2.4, Volt: 1.35},
	{FreqGHz: 1.6, Volt: 1.15},
	{FreqGHz: 0.8, Volt: 0.95},
}

// CPUPower mirrors Table 4.4: power of the 4-core processor per DTM
// running state. Idle (all cores halted / memory off) draws IdleWatt.
type CPUPower struct {
	IdleWatt    Watt // 62 W: four cores at HALT (15.5 W each)
	PerCoreWatt Watt // 49.5 W increment per active core at full speed
	MaxWatt     Watt // 260 W: four cores at 3.2 GHz/1.55 V
	DVFSWatt    map[DVFSLevel]Watt
}

// DefaultCPUPower reproduces Table 4.4 (derived in §4.4.3 from the Intel
// Xeon data sheet: 65 W peak per core, 15.5 W halted).
var DefaultCPUPower = CPUPower{
	IdleWatt:    62,
	PerCoreWatt: 49.5,
	MaxWatt:     260,
	DVFSWatt: map[DVFSLevel]Watt{
		{0.8, 0.95}: 80.6,
		{1.6, 1.15}: 116.5,
		{2.8, 1.35}: 193.4,
		{2.4, 1.35}: 193.4, // Table 4.3 labels this level 2.4 GHz; same V level
		{3.2, 1.55}: 260,
	},
}

// ActiveCoresWatt returns Table 4.4's DTM-ACG column: power with n of four
// cores active at full speed.
func (c CPUPower) ActiveCoresWatt(n int) Watt {
	if n <= 0 {
		return c.IdleWatt
	}
	if n > 4 {
		n = 4
	}
	return c.IdleWatt + float64(n)*c.PerCoreWatt
}
