package fbconfig

import (
	"math"
	"testing"
)

// TestTable31 pins the Eq. 3.1/3.2 coefficients to the published values.
func TestTable31(t *testing.T) {
	if DefaultDRAMPower != (DRAMPower{Static: 0.98, ReadCoef: 1.12, WriteCoef: 1.16}) {
		t.Fatalf("DRAM power params changed: %+v", DefaultDRAMPower)
	}
	if DefaultAMBPower != (AMBPower{IdleLast: 4.0, IdleOther: 5.1, BypassCoef: 0.19, LocalCoef: 0.75}) {
		t.Fatalf("AMB power params changed: %+v", DefaultAMBPower)
	}
}

// TestTable32 pins the six cooling columns.
func TestTable32(t *testing.T) {
	if len(Coolings) != 6 {
		t.Fatalf("cooling columns = %d", len(Coolings))
	}
	c := CoolingAOHS15
	if c.PsiAMB != 9.3 || c.PsiDRAMAMB != 3.4 || c.PsiDRAM != 4.0 || c.PsiAMBDRAM != 4.1 {
		t.Fatalf("AOHS 1.5 = %+v", c)
	}
	f := CoolingFDHS10
	if f.PsiAMB != 8.0 || f.PsiDRAMAMB != 4.4 || f.PsiDRAM != 4.0 || f.PsiAMBDRAM != 5.7 {
		t.Fatalf("FDHS 1.0 = %+v", f)
	}
	for _, c := range Coolings {
		if c.TauAMB != 50 || c.TauDRAM != 100 {
			t.Fatalf("tau changed: %+v", c)
		}
	}
	if CoolingAOHS15.Name() != "AOHS_1.5" || CoolingFDHS10.Name() != "FDHS_1.0" {
		t.Fatal("cooling names wrong")
	}
	if len(ExperimentCoolings) != 2 {
		t.Fatal("experiment coolings wrong")
	}
}

// TestTable33 pins the ambient-model rows.
func TestTable33(t *testing.T) {
	if AmbientIsolated.PsiXi != 0 || AmbientIntegrated.PsiXi != 1.5 {
		t.Fatal("PsiXi wrong")
	}
	if AmbientIsolated.InletAOHS15 != 50 || AmbientIsolated.InletFDHS10 != 45 {
		t.Fatal("isolated inlets wrong")
	}
	if AmbientIntegrated.InletAOHS15 != 45 || AmbientIntegrated.InletFDHS10 != 40 {
		t.Fatal("integrated inlets wrong")
	}
	if AmbientIsolated.Inlet(CoolingAOHS15) != 50 || AmbientIsolated.Inlet(CoolingFDHS10) != 45 {
		t.Fatal("Inlet dispatch wrong")
	}
	if AmbientIsolated.TauCPUDRAM != 20 {
		t.Fatal("tau_CPU_DRAM wrong")
	}
}

func TestLimits(t *testing.T) {
	l := DefaultLimits
	if l.AMBTDP != 110 || l.DRAMTDP != 85 || l.AMBTRP != 109 || l.DRAMTRP != 84 {
		t.Fatalf("limits = %+v", l)
	}
}

func TestSimParams(t *testing.T) {
	p := DefaultSimParams
	if p.Cores != 4 || p.IssueWidth != 4 || p.ROB != 196 {
		t.Fatalf("pipeline params wrong: %+v", p)
	}
	if p.L2SizeKB != 4096 || p.L2Ways != 8 || p.LineBytes != 64 {
		t.Fatal("L2 params wrong")
	}
	if p.LogicalChannels != 2 || p.PhysicalChannels != 4 || p.DIMMsPerChannel != 4 || p.BanksPerDIMM != 8 {
		t.Fatal("memory geometry wrong")
	}
	if p.TRCD != 15 || p.TCL != 15 || p.TRP != 15 || p.TRAS != 39 || p.TRC != 54 {
		t.Fatal("DDR2 timing wrong")
	}
	// 667 MT/s × 8 B ≈ 5.3 GB/s per physical channel.
	if bw := p.PeakChannelBandwidth(); math.Abs(bw-5.336) > 0.01 {
		t.Fatalf("peak channel bandwidth = %v", bw)
	}
	if len(p.DVFS) != 4 || p.DVFS[0].FreqGHz != 3.2 {
		t.Fatal("DVFS table wrong")
	}
}

func TestDTMDVFS(t *testing.T) {
	want := []DVFSLevel{
		{FreqGHz: 3.2, Volt: 1.55},
		{FreqGHz: 2.4, Volt: 1.35},
		{FreqGHz: 1.6, Volt: 1.15},
		{FreqGHz: 0.8, Volt: 0.95},
	}
	for i, lv := range DTMDVFS {
		if lv != want[i] {
			t.Fatalf("DTMDVFS[%d] = %+v", i, lv)
		}
	}
}

// TestTable44 pins the processor power table.
func TestTable44(t *testing.T) {
	cp := DefaultCPUPower
	if cp.ActiveCoresWatt(0) != 62 || cp.ActiveCoresWatt(4) != 260 {
		t.Fatal("ACG power endpoints wrong")
	}
	if cp.ActiveCoresWatt(2) != 161 {
		t.Fatalf("2-core power = %v", cp.ActiveCoresWatt(2))
	}
	if cp.ActiveCoresWatt(-1) != 62 || cp.ActiveCoresWatt(9) != 260 {
		t.Fatal("clamping broken")
	}
	if cp.DVFSWatt[DVFSLevel{FreqGHz: 0.8, Volt: 0.95}] != 80.6 {
		t.Fatal("DVFS power table wrong")
	}
}

func TestHeatSpreaderString(t *testing.T) {
	if AOHS.String() != "AOHS" || FDHS.String() != "FDHS" {
		t.Fatal("spreader names wrong")
	}
	if HeatSpreader(9).String() == "" {
		t.Fatal("unknown spreader empty")
	}
}
