package power

import (
	"math"
	"testing"
	"testing/quick"

	"dramtherm/internal/fbconfig"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDRAMWattsEq31(t *testing.T) {
	m := fbconfig.DefaultDRAMPower
	// Idle DIMM: static only.
	if got := DRAMWatts(m, DIMMTraffic{}); !almost(got, 0.98) {
		t.Fatalf("idle DRAM = %v", got)
	}
	// 1 GB/s read + 1 GB/s write: 0.98 + 1.12 + 1.16.
	got := DRAMWatts(m, DIMMTraffic{LocalRead: 1, LocalWrite: 1})
	if !almost(got, 3.26) {
		t.Fatalf("DRAM = %v, want 3.26", got)
	}
}

func TestAMBWattsEq32(t *testing.T) {
	m := fbconfig.DefaultAMBPower
	// Last DIMM idle: 4.0 W; others: 5.1 W (Table 3.1).
	if got := AMBWatts(m, DIMMTraffic{}, true); !almost(got, 4.0) {
		t.Fatalf("last idle = %v", got)
	}
	if got := AMBWatts(m, DIMMTraffic{}, false); !almost(got, 5.1) {
		t.Fatalf("other idle = %v", got)
	}
	// 2 GB/s local + 3 GB/s bypass: 5.1 + 0.75*2 + 0.19*3.
	got := AMBWatts(m, DIMMTraffic{LocalRead: 1.5, LocalWrite: 0.5, Bypass: 3}, false)
	if !almost(got, 5.1+1.5+0.57) {
		t.Fatalf("AMB = %v", got)
	}
}

func TestSplitChannelStructure(t *testing.T) {
	ct := ChannelTraffic{Read: 3, Write: 1, Share: EvenShares(4)}
	ts, err := SplitChannel(ct)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 4 {
		t.Fatalf("got %d DIMMs", len(ts))
	}
	// Local traffic conservation.
	var lr, lw float64
	for _, d := range ts {
		lr += d.LocalRead
		lw += d.LocalWrite
	}
	if !almost(lr, 3) || !almost(lw, 1) {
		t.Fatalf("conservation broken: %v %v", lr, lw)
	}
	// Bypass decreases monotonically down the chain; last DIMM has none.
	for i := 1; i < len(ts); i++ {
		if ts[i].Bypass > ts[i-1].Bypass {
			t.Fatalf("bypass not monotonic: %v", ts)
		}
	}
	if ts[3].Bypass != 0 {
		t.Fatalf("last DIMM has bypass %v", ts[3].Bypass)
	}
	// First DIMM bypasses everything for DIMMs 1..3: 3/4 of the total.
	if !almost(ts[0].Bypass, 4*3.0/4) {
		t.Fatalf("DIMM0 bypass = %v, want 3", ts[0].Bypass)
	}
}

func TestSplitChannelErrors(t *testing.T) {
	if _, err := SplitChannel(ChannelTraffic{Read: 1}); err == nil {
		t.Fatal("no DIMMs accepted")
	}
	if _, err := SplitChannel(ChannelTraffic{Read: 1, Share: []float64{-1, 2}}); err == nil {
		t.Fatal("negative share accepted")
	}
	// All-zero shares on an idle channel are fine.
	if _, err := SplitChannel(ChannelTraffic{Share: []float64{0, 0}}); err != nil {
		t.Fatalf("idle channel rejected: %v", err)
	}
}

// Property: total bypass bytes equal sum over DIMMs of traffic to farther
// DIMMs, for arbitrary shares.
func TestSplitChannelProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 8 {
			return true
		}
		share := make([]float64, len(raw))
		var sum float64
		for i, v := range raw {
			share[i] = float64(v)
			sum += float64(v)
		}
		if sum == 0 {
			return true
		}
		for i := range share {
			share[i] /= sum
		}
		total := 10.0
		ts, err := SplitChannel(ChannelTraffic{Read: 6, Write: 4, Share: share})
		if err != nil {
			return false
		}
		for i := range ts {
			var farther float64
			for j := i + 1; j < len(ts); j++ {
				farther += share[j]
			}
			if math.Abs(ts[i].Bypass-total*farther) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChannelWatts(t *testing.T) {
	ps, err := ChannelWatts(fbconfig.DefaultDRAMPower, fbconfig.DefaultAMBPower,
		ChannelTraffic{Read: 4, Write: 2, Share: EvenShares(4)})
	if err != nil {
		t.Fatal(err)
	}
	// DIMM0 has the most bypass, so the highest AMB power; the last DIMM
	// has the lowest (no bypass + lower idle).
	if !(ps[0].AMB > ps[1].AMB && ps[1].AMB > ps[2].AMB && ps[2].AMB > ps[3].AMB) {
		t.Fatalf("AMB power not decreasing down the chain: %+v", ps)
	}
	// Equal local shares: equal DRAM power everywhere.
	for i := 1; i < 4; i++ {
		if !almost(ps[i].DRAM, ps[0].DRAM) {
			t.Fatalf("unequal DRAM power: %+v", ps)
		}
	}
}

func TestCPUWattsTable44(t *testing.T) {
	cp := fbconfig.DefaultCPUPower
	// ACG column.
	for n, want := range map[int]float64{0: 62, 1: 111.5, 2: 161, 3: 210.5, 4: 260} {
		if got := CPUWatts(cp, CPUState{ActiveCores: n, TotalCores: 4}); !almost(got, want) {
			t.Fatalf("ACG %d cores = %v, want %v", n, got, want)
		}
	}
	// DVFS column.
	for lv, want := range map[fbconfig.DVFSLevel]float64{
		{FreqGHz: 0.8, Volt: 0.95}: 80.6,
		{FreqGHz: 1.6, Volt: 1.15}: 116.5,
		{FreqGHz: 2.4, Volt: 1.35}: 193.4,
		{FreqGHz: 3.2, Volt: 1.55}: 260,
	} {
		got := CPUWatts(cp, CPUState{ActiveCores: 4, TotalCores: 4, Level: lv, UseDVFS: true})
		if !almost(got, want) {
			t.Fatalf("DVFS %v = %v, want %v", lv, got, want)
		}
	}
	// Unknown level interpolates via V^2 f and stays within bounds.
	got := CPUWatts(cp, CPUState{ActiveCores: 4, TotalCores: 4,
		Level: fbconfig.DVFSLevel{FreqGHz: 2.0, Volt: 1.25}, UseDVFS: true})
	if got <= cp.IdleWatt || got >= cp.MaxWatt {
		t.Fatalf("interpolated power %v out of range", got)
	}
	// DVFS with zero cores = idle.
	if got := CPUWatts(cp, CPUState{UseDVFS: true}); !almost(got, 62) {
		t.Fatalf("idle DVFS = %v", got)
	}
}

func TestXeon5160(t *testing.T) {
	x := DefaultXeon5160
	full := x.Watts([2]int{2, 2}, 0, 1)
	slow := x.Watts([2]int{2, 2}, 3, 1)
	if full <= slow {
		t.Fatalf("DVFS should lower power: %v vs %v", full, slow)
	}
	half := x.Watts([2]int{1, 1}, 0, 1)
	if half >= full {
		t.Fatalf("gating should lower power: %v vs %v", half, full)
	}
	stalled := x.Watts([2]int{2, 2}, 0, 0)
	if stalled >= full {
		t.Fatalf("stalled cores should draw less: %v vs %v", stalled, full)
	}
	// §5.4.4: memory-bound workloads leave little for ACG to save; the
	// utilization floor keeps stalled power well above half.
	if stalled < full*0.4 {
		t.Fatalf("clock gating model too aggressive: %v vs %v", stalled, full)
	}
	// Out-of-range inputs are clamped, not panics.
	_ = x.Watts([2]int{-1, 5}, -1, 2)
	_ = x.Watts([2]int{2, 2}, 99, -3)
}

func TestEnergy(t *testing.T) {
	var e Energy
	e.Add(100, 10)
	e.Add(50, 2)
	if !almost(e.Joules, 1100) {
		t.Fatalf("energy = %v", e.Joules)
	}
}
