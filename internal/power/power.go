// Package power implements the FBDIMM power model of Chapter 3: the DRAM
// chip model of Eq. 3.1, the AMB model of Eq. 3.2, channel-level helpers
// that derive per-DIMM local/bypass traffic from the daisy-chain position,
// and the processor power model of Table 4.4 / the Xeon 5160 levels used in
// Chapter 5.
package power

import (
	"fmt"

	"dramtherm/internal/fbconfig"
)

// DIMMTraffic is the per-DIMM throughput decomposition of Fig. 3.2: traffic
// terminating at this DIMM (local) and traffic passing through its AMB to
// DIMMs farther down the chain (bypass), plus the read/write split of the
// local traffic used by the DRAM model.
type DIMMTraffic struct {
	LocalRead  fbconfig.GBps
	LocalWrite fbconfig.GBps
	Bypass     fbconfig.GBps
}

// Local returns the total local throughput.
func (t DIMMTraffic) Local() fbconfig.GBps { return t.LocalRead + t.LocalWrite }

// DRAMWatts evaluates Eq. 3.1 for one DIMM's DRAM chips.
func DRAMWatts(m fbconfig.DRAMPower, t DIMMTraffic) fbconfig.Watt {
	return m.Static + m.ReadCoef*t.LocalRead + m.WriteCoef*t.LocalWrite
}

// AMBWatts evaluates Eq. 3.2 for one AMB. last reports whether the DIMM is
// the last on its channel (lower idle power, §3.3).
func AMBWatts(m fbconfig.AMBPower, t DIMMTraffic, last bool) fbconfig.Watt {
	idle := m.IdleOther
	if last {
		idle = m.IdleLast
	}
	return idle + m.BypassCoef*t.Bypass + m.LocalCoef*t.Local()
}

// ChannelTraffic describes one physical channel's aggregate read and write
// throughput together with how that throughput is spread over the DIMMs.
// Share[i] is the fraction of channel traffic whose target is DIMM i
// (i = 0 is closest to the memory controller); shares must sum to ~1.
type ChannelTraffic struct {
	Read  fbconfig.GBps
	Write fbconfig.GBps
	Share []float64
}

// EvenShares returns a uniform traffic distribution over n DIMMs, the
// mapping produced by page interleaving across DIMMs.
func EvenShares(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = 1 / float64(n)
	}
	return s
}

// SplitChannel derives each DIMM's DIMMTraffic from channel-level traffic.
// Bypass at DIMM i is all traffic addressed to DIMMs i+1..n-1: on the
// southbound link every command/write for a farther DIMM passes through,
// and on the northbound link every read return from a farther DIMM passes
// through, so bypass counts both directions (§3.3 treats read and write
// requests as moving the same command+data volume through an AMB).
func SplitChannel(ct ChannelTraffic) ([]DIMMTraffic, error) {
	n := len(ct.Share)
	if n == 0 {
		return nil, fmt.Errorf("power: channel has no DIMMs")
	}
	var sum float64
	for _, s := range ct.Share {
		if s < 0 {
			return nil, fmt.Errorf("power: negative traffic share %v", s)
		}
		sum += s
	}
	if sum == 0 {
		sum = 1 // idle channel: shares irrelevant
	}
	total := ct.Read + ct.Write
	out := make([]DIMMTraffic, n)
	// Suffix sums give bypass traffic.
	farther := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		farther[i] = farther[i+1] + ct.Share[i]/sum
	}
	for i := 0; i < n; i++ {
		frac := ct.Share[i] / sum
		out[i] = DIMMTraffic{
			LocalRead:  ct.Read * frac,
			LocalWrite: ct.Write * frac,
			Bypass:     total * farther[i+1],
		}
	}
	return out, nil
}

// DIMMPower is the evaluated power pair for one DIMM.
type DIMMPower struct {
	AMB  fbconfig.Watt
	DRAM fbconfig.Watt
}

// ChannelModel precomputes the traffic-share geometry of one channel —
// the per-DIMM local fractions and bypass suffix sums SplitChannel
// derives on every call — for a fixed distribution, so the per-window
// hot loop only scales the precomputed terms by the current read/write
// throughput. The arithmetic matches SplitChannel + ChannelWatts
// operation for operation, so results are bit-identical.
type ChannelModel struct {
	dp      fbconfig.DRAMPower
	ap      fbconfig.AMBPower
	frac    []float64 // Share[i]/sum: local traffic fraction per DIMM
	farther []float64 // suffix sums of frac; bypass at i scales farther[i+1]
}

// NewChannelModel validates the share vector exactly like SplitChannel
// and captures the power coefficients.
func NewChannelModel(dp fbconfig.DRAMPower, ap fbconfig.AMBPower, share []float64) (*ChannelModel, error) {
	n := len(share)
	if n == 0 {
		return nil, fmt.Errorf("power: channel has no DIMMs")
	}
	var sum float64
	for _, s := range share {
		if s < 0 {
			return nil, fmt.Errorf("power: negative traffic share %v", s)
		}
		sum += s
	}
	if sum == 0 {
		sum = 1 // idle channel: shares irrelevant
	}
	m := &ChannelModel{dp: dp, ap: ap, frac: make([]float64, n), farther: make([]float64, n+1)}
	for i := n - 1; i >= 0; i-- {
		m.frac[i] = share[i] / sum
		m.farther[i] = m.farther[i+1] + share[i]/sum
	}
	return m, nil
}

// DIMMs returns the number of DIMMs the model was built for.
func (m *ChannelModel) DIMMs() int { return len(m.frac) }

// WattsInto evaluates both power models for every DIMM of the channel
// under the given aggregate read/write throughput, appending the pairs
// to dst (pass dst[:0] to reuse a buffer across windows). It is the
// allocation-free equivalent of ChannelWatts with this model's shares.
func (m *ChannelModel) WattsInto(dst []DIMMPower, read, write fbconfig.GBps) []DIMMPower {
	n := len(m.frac)
	total := read + write
	for i := 0; i < n; i++ {
		t := DIMMTraffic{
			LocalRead:  read * m.frac[i],
			LocalWrite: write * m.frac[i],
			Bypass:     total * m.farther[i+1],
		}
		dst = append(dst, DIMMPower{
			AMB:  AMBWatts(m.ap, t, i == n-1),
			DRAM: DRAMWatts(m.dp, t),
		})
	}
	return dst
}

// ChannelWatts evaluates both models for every DIMM of a channel.
func ChannelWatts(dp fbconfig.DRAMPower, ap fbconfig.AMBPower, ct ChannelTraffic) ([]DIMMPower, error) {
	ts, err := SplitChannel(ct)
	if err != nil {
		return nil, err
	}
	out := make([]DIMMPower, len(ts))
	for i, t := range ts {
		out[i] = DIMMPower{
			AMB:  AMBWatts(ap, t, i == len(ts)-1),
			DRAM: DRAMWatts(dp, t),
		}
	}
	return out, nil
}

// CPUState describes the processor operating point for power evaluation.
type CPUState struct {
	ActiveCores int
	TotalCores  int
	Level       fbconfig.DVFSLevel // ignored when gating-based
	UseDVFS     bool               // true: Table 4.4 DVFS column; false: ACG column
}

// CPUWatts evaluates Table 4.4 for the 4-core Chapter 4 processor.
func CPUWatts(m fbconfig.CPUPower, s CPUState) fbconfig.Watt {
	if s.UseDVFS {
		if s.ActiveCores == 0 {
			return m.IdleWatt
		}
		if w, ok := m.DVFSWatt[s.Level]; ok {
			return w
		}
		// Interpolate unknown levels as V² f scaling of the max level.
		ref := fbconfig.DefaultSimParams.DVFS[0]
		scale := (s.Level.Volt * s.Level.Volt * s.Level.FreqGHz) /
			(ref.Volt * ref.Volt * ref.FreqGHz)
		dyn := (m.MaxWatt - m.IdleWatt) * scale
		return m.IdleWatt + dyn
	}
	return m.ActiveCoresWatt(s.ActiveCores)
}

// Xeon5160 models the Chapter 5 processors: two dual-core Xeon 5160
// sockets with four frequency steps. Power numbers are per-socket pairs
// scaled with V²f from the 80 W TDP at 3.0 GHz / 1.2125 V, plus idle floor.
type Xeon5160 struct {
	SocketTDP  fbconfig.Watt // per socket at top level
	SocketIdle fbconfig.Watt
	Levels     []fbconfig.DVFSLevel
}

// DefaultXeon5160 uses data-sheet numbers (§5.2.1 frequency/voltage table).
var DefaultXeon5160 = Xeon5160{
	SocketTDP:  80,
	SocketIdle: 24,
	Levels: []fbconfig.DVFSLevel{
		{FreqGHz: 3.000, Volt: 1.2125},
		{FreqGHz: 2.667, Volt: 1.1625},
		{FreqGHz: 2.333, Volt: 1.1000},
		{FreqGHz: 2.000, Volt: 1.0375},
	},
}

// Watts returns total power of both sockets with the given numbers of
// active cores per socket (0..2 each) at DVFS level index li. The dynamic
// part scales with V²f and with the fraction of active cores; utilization
// (0..1, fraction of non-stalled cycles) scales the dynamic part further —
// memory-bound programs clock-gate most functional blocks (§5.4.4).
func (x Xeon5160) Watts(activePerSocket [2]int, li int, utilization float64) fbconfig.Watt {
	if li < 0 {
		li = 0
	}
	if li >= len(x.Levels) {
		li = len(x.Levels) - 1
	}
	lv, top := x.Levels[li], x.Levels[0]
	scale := (lv.Volt * lv.Volt * lv.FreqGHz) / (top.Volt * top.Volt * top.FreqGHz)
	if utilization < 0 {
		utilization = 0
	}
	if utilization > 1 {
		utilization = 1
	}
	var w fbconfig.Watt
	for _, n := range activePerSocket {
		if n < 0 {
			n = 0
		}
		if n > 2 {
			n = 2
		}
		dyn := (x.SocketTDP - x.SocketIdle) * scale * float64(n) / 2
		// Clock gating on stalled cycles leaves ~35% of dynamic power
		// (clock tree, L2, uncore keep toggling).
		eff := 0.35 + 0.65*utilization
		w += x.SocketIdle + dyn*eff
	}
	return w
}

// Energy integrates power over a window and accumulates joules.
type Energy struct {
	Joules float64
}

// Add accumulates w watts over dt seconds.
func (e *Energy) Add(w fbconfig.Watt, dt fbconfig.Seconds) { e.Joules += w * dt }
