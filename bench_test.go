// Benchmarks: one per table and figure of the paper. Each benchmark
// regenerates its artifact through the experiment driver in quick mode,
// so `go test -bench=.` exercises the entire reproduction pipeline and
// reports how long each artifact takes to rebuild. Run
// `cmd/memtherm -run all` for the full-scale numbers recorded in
// EXPERIMENTS.md.
package dramtherm

import (
	"sync"
	"testing"

	"dramtherm/internal/exp"
)

// benchRunner is shared across benchmarks so level-1 traces and level-2
// runs are reused the same way `memtherm -run all` reuses them.
var (
	benchOnce   sync.Once
	benchRunner *exp.Runner
)

func runner() *exp.Runner {
	benchOnce.Do(func() { benchRunner = exp.NewRunner(true) })
	return benchRunner
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	d, err := exp.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	r := runner()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := d.Run(r)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(res.Tables) == 0 && len(res.Figures) == 0 {
			b.Fatalf("%s produced no output", id)
		}
	}
}

func BenchmarkTable3_1(b *testing.B) { benchExperiment(b, "table3.1") }
func BenchmarkTable3_2(b *testing.B) { benchExperiment(b, "table3.2") }
func BenchmarkTable3_3(b *testing.B) { benchExperiment(b, "table3.3") }
func BenchmarkTable4_1(b *testing.B) { benchExperiment(b, "table4.1") }
func BenchmarkTable4_3(b *testing.B) { benchExperiment(b, "table4.3") }
func BenchmarkTable4_4(b *testing.B) { benchExperiment(b, "table4.4") }
func BenchmarkTable5_1(b *testing.B) { benchExperiment(b, "table5.1") }

func BenchmarkFig4_2(b *testing.B)  { benchExperiment(b, "fig4.2") }
func BenchmarkFig4_3(b *testing.B)  { benchExperiment(b, "fig4.3") }
func BenchmarkFig4_4(b *testing.B)  { benchExperiment(b, "fig4.4") }
func BenchmarkFig4_5(b *testing.B)  { benchExperiment(b, "fig4.5") }
func BenchmarkFig4_6(b *testing.B)  { benchExperiment(b, "fig4.6") }
func BenchmarkFig4_7(b *testing.B)  { benchExperiment(b, "fig4.7") }
func BenchmarkFig4_8(b *testing.B)  { benchExperiment(b, "fig4.8") }
func BenchmarkFig4_9(b *testing.B)  { benchExperiment(b, "fig4.9") }
func BenchmarkFig4_10(b *testing.B) { benchExperiment(b, "fig4.10") }
func BenchmarkFig4_11(b *testing.B) { benchExperiment(b, "fig4.11") }
func BenchmarkFig4_12(b *testing.B) { benchExperiment(b, "fig4.12") }
func BenchmarkFig4_13(b *testing.B) { benchExperiment(b, "fig4.13") }
func BenchmarkFig4_14(b *testing.B) { benchExperiment(b, "fig4.14") }

func BenchmarkFig5_4(b *testing.B)  { benchExperiment(b, "fig5.4") }
func BenchmarkFig5_5(b *testing.B)  { benchExperiment(b, "fig5.5") }
func BenchmarkFig5_6(b *testing.B)  { benchExperiment(b, "fig5.6") }
func BenchmarkFig5_7(b *testing.B)  { benchExperiment(b, "fig5.7") }
func BenchmarkFig5_8(b *testing.B)  { benchExperiment(b, "fig5.8") }
func BenchmarkFig5_9(b *testing.B)  { benchExperiment(b, "fig5.9") }
func BenchmarkFig5_10(b *testing.B) { benchExperiment(b, "fig5.10") }
func BenchmarkFig5_11(b *testing.B) { benchExperiment(b, "fig5.11") }
func BenchmarkFig5_12(b *testing.B) { benchExperiment(b, "fig5.12") }
func BenchmarkFig5_13(b *testing.B) { benchExperiment(b, "fig5.13") }
func BenchmarkFig5_14(b *testing.B) { benchExperiment(b, "fig5.14") }
func BenchmarkFig5_15(b *testing.B) { benchExperiment(b, "fig5.15") }
