package dramtherm

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links and images: [text](target).
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)\)`)

// TestDocLinks fails on broken relative links in README.md and
// docs/*.md, so the documentation cannot silently rot as files move.
// External (scheme-ful) links and pure anchors are out of scope.
func TestDocLinks(t *testing.T) {
	files := []string{"README.md"}
	docs, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, docs...)
	if len(docs) == 0 {
		t.Error("no docs/*.md found — the architecture and API docs are missing")
	}

	checked := 0
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			target, _, _ = strings.Cut(target, "#") // drop fragments
			if target == "" {
				continue
			}
			path := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(path); err != nil {
				t.Errorf("%s: broken relative link %q (%v)", file, m[1], err)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Error("no relative links found at all — is the link regexp broken?")
	}
	t.Logf("checked %d relative links across %d files", checked, len(files))
}
