// serverdtm drives the dramthermd HTTP API end to end: it embeds the
// internal/httpapi server in-process over a demo-scale engine, submits
// an asynchronous DTM-policy sweep job, follows its live progress over
// the SSE event stream (GET /v1/runs/{id}/events), fetches the finished
// normalized-runtime table, and finally walks the job lifecycle — the
// listing and DELETE endpoints. Point -server at a running dramthermd
// to drive a remote instance instead of the embedded one.
//
// Usage:
//
//	go run ./examples/serverdtm
//	go run ./examples/serverdtm -mixes W1,W2 -full
//	go run ./examples/serverdtm -server http://localhost:8080
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"dramtherm/internal/core"
	"dramtherm/internal/fbconfig"
	"dramtherm/internal/httpapi"
	"dramtherm/internal/sweep"

	"context"
)

func main() {
	var (
		mixes    = flag.String("mixes", "W1,W2", "comma-separated workload mixes")
		policies = flag.String("policies", "DTM-TS,DTM-BW,DTM-ACG,DTM-CDVFS", "comma-separated DTM policies")
		full     = flag.Bool("full", false, "full-scale batches (default is a fast demo scale)")
		scale    = flag.Float64("instrscale", 0, "override the application length scale factor (embedded server only)")
		server   = flag.String("server", "", "URL of a running dramthermd (default: embedded in-process server)")
	)
	flag.Parse()

	base := *server
	if base == "" {
		// Embed the whole service in-process: same engine, same wire
		// format, no separate daemon needed for the demo.
		cfg := core.DefaultConfig()
		if !*full {
			cfg.Replicas = 1
			cfg.InstrScale = 0.05
			cfg.Limits = fbconfig.ThermalLimits{AMBTDP: 103.5, DRAMTDP: 85, AMBTRP: 102.5, DRAMTRP: 84}
		}
		if *scale > 0 {
			cfg.InstrScale = *scale
		}
		eng := sweep.NewEngine(core.NewSystem(cfg), 0)
		api := httpapi.New(context.Background(), eng, httpapi.Config{})
		defer api.Close()
		ts := httptest.NewServer(api)
		defer ts.Close()
		base = ts.URL
		fmt.Printf("embedded dramthermd at %s (%d workers)\n", base, eng.Workers())
	}

	// Submit the sweep as an asynchronous job.
	req := map[string]any{
		"grid": sweep.Grid{
			Mixes:    strings.Split(*mixes, ","),
			Policies: strings.Split(*policies, ","),
		},
		"normalize": true,
	}
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/sweeps?async=1", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var submitted struct {
		ID    string `json:"id"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	if submitted.Error != "" || submitted.ID == "" {
		log.Fatalf("submit failed (%d): %s", resp.StatusCode, submitted.Error)
	}
	fmt.Printf("submitted job %s\n\n", submitted.ID)

	// Follow the job live over SSE until the terminal event.
	if err := streamEvents(base, submitted.ID); err != nil {
		log.Fatal(err)
	}

	// Fetch the finished result and print the normalized-runtime table.
	var job struct {
		Status string `json:"status"`
		Error  string `json:"error"`
		Sweep  *struct {
			Wall  float64 `json:"wall_seconds"`
			Cache struct {
				Builds int64 `json:"builds"`
				Hits   int64 `json:"hits"`
				Waits  int64 `json:"waits"`
			} `json:"cache"`
			Table struct {
				Header []string   `json:"header"`
				Rows   [][]string `json:"rows"`
			} `json:"table"`
		} `json:"sweep"`
	}
	getJSON(base+"/v1/runs/"+submitted.ID, &job)
	if job.Status != "done" || job.Sweep == nil {
		log.Fatalf("job ended %s: %s", job.Status, job.Error)
	}
	fmt.Printf("\nnormalized runtime (vs No-limit), %.1fs wall:\n", job.Sweep.Wall)
	printTable(job.Sweep.Table.Header, job.Sweep.Table.Rows)
	fmt.Printf("cache: %d simulations run, %d deduplicated or cached\n\n",
		job.Sweep.Cache.Builds, job.Sweep.Cache.Hits+job.Sweep.Cache.Waits)

	// Job lifecycle: list finished jobs, then evict ours.
	var list struct {
		Total int `json:"total"`
	}
	getJSON(base+"/v1/runs?status=done", &list)
	fmt.Printf("registry holds %d finished job(s)\n", list.Total)
	del, err := http.NewRequest(http.MethodDelete, base+"/v1/runs/"+submitted.ID, nil)
	if err != nil {
		log.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(del)
	if err != nil {
		log.Fatal(err)
	}
	dresp.Body.Close()
	fmt.Printf("DELETE %s → %s (finished jobs are evicted; running ones would be cancelled)\n",
		submitted.ID, dresp.Status)
}

// streamEvents consumes the job's SSE stream, printing one line per
// event, and returns once the terminal event arrives.
func streamEvents(base, id string) error {
	resp, err := http.Get(base + "/v1/runs/" + id + "/events")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		return fmt.Errorf("expected an SSE stream, got %q (%s)", ct, resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	var ev sweep.JobEvent
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue // event:/id: framing lines and heartbeat comments
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			return fmt.Errorf("bad event %q: %w", line, err)
		}
		switch ev.Kind {
		case "started":
			fmt.Printf("  job started: %d specs\n", ev.Total)
		case string(sweep.EventStarted):
			fmt.Printf("  → %s/%s\n", ev.Spec.Mix, ev.Spec.Policy)
		case string(sweep.EventFinished):
			fmt.Printf("  ✓ [%2d/%2d] %s/%s  %.0f s (%s)\n",
				ev.Done, ev.Total, ev.Spec.Mix, ev.Spec.Policy, ev.Seconds, ev.Outcome)
		case string(sweep.EventError):
			fmt.Printf("  ✗ [%2d/%2d] %s/%s: %s\n",
				ev.Done, ev.Total, ev.Spec.Mix, ev.Spec.Policy, ev.Error)
		case "done", "error", "cancelled":
			fmt.Printf("  job %s after %d/%d specs\n", ev.Kind, ev.Done, ev.Total)
			return nil
		}
	}
	return fmt.Errorf("event stream ended without a terminal event: %w", sc.Err())
}

func getJSON(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}

func printTable(header []string, rows [][]string) {
	w := make([]int, len(header))
	for i, h := range header {
		w[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(w) && len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Printf("  %-*s", w[i], c)
		}
		fmt.Println()
	}
	line(header)
	for _, row := range rows {
		line(row)
	}
}
