// serverdtm reproduces the Chapter 5 workflow on the emulated servers:
// run a workload batch on the PE1950 and SR1500AL under each software DTM
// policy and report performance, power, inlet temperature and energy —
// the measurement campaign of §5.4 in miniature.
package main

import (
	"flag"
	"fmt"
	"log"

	"dramtherm/internal/platform"
	"dramtherm/internal/workload"
)

func main() {
	mixName := flag.String("mix", "W3", "workload mix")
	runs := flag.Int("runs", 2, "batch runs per application")
	flag.Parse()

	mix, err := workload.MixByName(*mixName)
	if err != nil {
		log.Fatal(err)
	}

	for _, m := range []platform.Machine{platform.PE1950(), platform.SR1500AL()} {
		store := platform.NewStore(m, 1)
		fmt.Printf("=== %s (AMB TDP %.0f C, ambient %.0f C)\n", m.Name, m.AMBTDP, m.SystemAmbient)
		var base platform.RunResult
		for _, k := range platform.PolicyKinds() {
			res, err := platform.RunPlatform(platform.RunConfig{
				Machine:    m,
				Policy:     k,
				Mix:        mix,
				RunsPerApp: *runs,
				SensorSeed: 42,
			}, store)
			if err != nil {
				log.Fatal(err)
			}
			if k == platform.NoLimit {
				base = res
			}
			fmt.Printf("%-10s  time %6.0fs (norm %.2f)  cpu %5.1fW  inlet %.1fC  maxAMB %5.1fC  energy %6.0f kJ\n",
				k, res.Seconds, res.Seconds/base.Seconds, res.AvgCPUWatt, res.AvgInletC,
				res.MaxAMB, res.TotalEnergyJ()/1e3)
		}
		fmt.Println()
	}
}
