// Quickstart: run one memory-intensive workload mix under the proposed
// DTM-ACG policy and compare it with the unconstrained baseline.
package main

import (
	"flag"
	"fmt"
	"log"

	"dramtherm"
)

func main() {
	scale := flag.Float64("instrscale", 0, "application length scale factor (0 = 1.0; small values for quick demos)")
	flag.Parse()

	cfg := dramtherm.DefaultConfig()
	if *scale > 0 {
		cfg.InstrScale = *scale
	}
	sys := dramtherm.NewSystem(cfg)

	mix, err := dramtherm.MixByName("W1") // swim, mgrid, applu, galgel
	if err != nil {
		log.Fatal(err)
	}

	// Baseline: the ideal machine without a thermal limit.
	base, err := sys.Baseline(mix, dramtherm.CoolingAOHS15, dramtherm.Isolated)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("No-limit:  %6.0f s, peak AMB %.1f C (the FBDIMM would overheat)\n",
		base.Seconds, base.MaxAMB)

	// The same machine under adaptive core gating.
	policy, err := sys.NewPolicy("DTM-ACG")
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Run(dramtherm.RunSpec{
		Mix:     mix,
		Policy:  policy,
		Cooling: dramtherm.CoolingAOHS15,
		Model:   dramtherm.Isolated,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DTM-ACG:   %6.0f s, peak AMB %.1f C (safe)\n", res.Seconds, res.MaxAMB)
	fmt.Printf("normalized running time: %.2f\n", res.Seconds/base.Seconds)
	fmt.Printf("memory traffic reduced:  %.1f%% (L2 contention relief)\n",
		(1-res.TotalTrafficGB()/base.TotalTrafficGB())*100)
}
