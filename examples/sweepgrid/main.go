// Example sweepgrid explores a design-space grid through the public
// dramtherm facade: it expands (mix × policy × cooling) into specs,
// executes them on a bounded worker pool with per-job progress, prints
// the normalized-runtime table, and demonstrates durable state — rerun
// with the same -state directory and the sweep completes from cache,
// even if the previous run crashed mid-sweep (results persist as they
// finish, not at exit).
//
// The whole program imports only the root dramtherm package: the sweep
// engine, grid expansion, options, and durable state all reach the
// caller through the facade.
//
// Usage:
//
//	go run ./examples/sweepgrid
//	go run ./examples/sweepgrid -workers 8 -state /tmp/sweep.d
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"dramtherm"
)

func main() {
	var (
		workers = flag.Int("workers", 0, "simulation worker pool width (0 = GOMAXPROCS)")
		state   = flag.String("state", "", "durable state directory: results append to a segment log as they complete; rerun to finish from cache")
		full    = flag.Bool("full", false, "full-scale batches (default is a fast demo scale)")
		scale   = flag.Float64("instrscale", 0, "override the application length scale factor")
	)
	flag.Parse()

	cfg := dramtherm.DefaultConfig()
	if !*full {
		// Demo scale: single batch round, 5% application lengths. Short
		// runs never heat the DIMMs near the real TDP (the thermal time
		// constants are 50–100 s), so lower the limits to keep the DTM
		// policies visibly engaged.
		cfg.Replicas = 1
		cfg.InstrScale = 0.05
		cfg.Limits = dramtherm.ThermalLimits{AMBTDP: 103.5, DRAMTDP: 85, AMBTRP: 102.5, DRAMTRP: 84}
	}
	if *scale > 0 {
		cfg.InstrScale = *scale
	}

	eng, err := dramtherm.NewEngine(cfg,
		dramtherm.WithWorkers(*workers), dramtherm.WithStateDir(*state))
	if err != nil {
		log.Fatalf("engine: %v", err)
	}
	defer eng.Close()
	if warm := eng.Stats().Entries; warm > 0 {
		fmt.Printf("warm start: %d trace records, %d cached runs\n",
			eng.System().Store().Len(), warm)
	}

	grid := dramtherm.Grid{
		Mixes:    []string{"W1", "W2", "W5", "W8"},
		Policies: []string{"DTM-TS", "DTM-BW", "DTM-ACG", "DTM-CDVFS"},
		Coolings: []string{"AOHS_1.5"},
	}
	specs := grid.Expand()
	fmt.Printf("sweeping %d specs on %d workers\n", len(specs), eng.Workers())

	start := time.Now()
	res, err := eng.Sweep(context.Background(), specs, dramtherm.SweepOptions{
		Normalize: true,
		OnProgress: func(p dramtherm.Progress) {
			fmt.Printf("  [%2d/%2d] %s\n", p.Done, p.Total, p.Spec)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s", res.Table(fmt.Sprintf("Normalized runtime (runtime / No-limit), %.1fs wall", time.Since(start).Seconds())))
	st := eng.Stats()
	fmt.Printf("cache: %d simulations run, %d requests deduplicated or cached\n", st.Builds, st.Hits+st.Waits)

	if *state != "" {
		fmt.Printf("state persisted under %s — rerun to finish from cache\n", *state)
	}
}
