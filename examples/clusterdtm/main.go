// clusterdtm demonstrates dramtherm's cluster mode end to end, entirely
// in-process: it starts two embedded dramthermd workers, builds a
// coordinator whose engine fans runs out to them through the
// consistent-hashing remote backend, sweeps a mix×policy grid across
// the cluster, and asserts the aggregated report table is byte-identical
// to a plain single-node sweep. In the default batched mode it also
// counts the cluster's HTTP traffic and asserts the whole sweep cost one
// /v1/exec/batch request per live peer — not one request per spec. It
// then repeats the sweep on a fresh cluster and kills one worker
// mid-sweep, exercising the failover path (the dead peer's
// unacknowledged shard re-plans onto the survivor or runs locally) — and
// asserts the table still comes out byte-identical.
//
// It then proves the replicated result cache under churn: a
// replication-enabled coordinator sweeps the grid (each built result
// streams to its key's ring successor over POST /v1/handoff, RF=2), a
// joiner receives its shard's cached results by handoff before any
// traffic lands, and a kill promotes the dead owner's replica holders
// in place — verified by cold-coordinator re-sweeps that must come back
// 100% worker-side cache hits (zero rebuilds on any worker engine) with
// byte-identical tables.
//
// Finally (batched mode only) it proves gossip-based membership under
// churn: every node runs a gossip.Node, a third worker joins the
// running cluster mid-sweep through a seed member, the coordinator's
// ring re-forms from the membership delta without any restart, one of
// the original workers is killed, and the dead worker's shard re-plans
// across the survivor AND the newly joined worker — per-endpoint
// request counts prove the joiner served batch shards, and the report
// table still comes out byte-identical to the single-node run.
//
// Usage:
//
//	go run ./examples/clusterdtm
//	go run ./examples/clusterdtm -batch=false         # legacy spec-at-a-time dispatch
//	go run ./examples/clusterdtm -mixes W1,W2 -policies DTM-TS,DTM-BW
//	go run ./examples/clusterdtm -instrscale 0.02     # CI-sized workload
//	go run ./examples/clusterdtm -table-out /tmp/t.txt  # dump the table for diffing
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dramtherm/internal/core"
	"dramtherm/internal/fbconfig"
	"dramtherm/internal/httpapi"
	"dramtherm/internal/obs"
	"dramtherm/internal/sweep"
	"dramtherm/internal/sweep/remote"
	"dramtherm/internal/sweep/remote/gossip"
)

var (
	mixes    = flag.String("mixes", "W1,W2", "comma-separated workload mixes")
	policies = flag.String("policies", "DTM-TS,DTM-BW,DTM-ACG,DTM-CDVFS", "comma-separated DTM policies")
	full     = flag.Bool("full", false, "full-scale batches (default is a fast demo scale)")
	scale    = flag.Float64("instrscale", 0, "override the application length scale factor")
	batch    = flag.Bool("batch", true, "dispatch whole shards per peer over /v1/exec/batch (false = one /v1/exec per spec)")
	tableOut = flag.String("table-out", "", "also write the cluster sweep's report table to this file")
)

// newEngine builds a demo-scale engine. Every node of the cluster must
// share one configuration — identical digests are what let keys, caches
// and results line up across peers.
func newEngine() *sweep.Engine {
	cfg := core.DefaultConfig()
	if !*full {
		cfg.Replicas = 1
		cfg.InstrScale = 0.05
		cfg.Limits = fbconfig.ThermalLimits{AMBTDP: 103.5, DRAMTDP: 85, AMBTRP: 102.5, DRAMTRP: 84}
	}
	if *scale > 0 {
		cfg.InstrScale = *scale
	}
	return sweep.NewEngine(core.NewSystem(cfg), 0)
}

// worker is one embedded dramthermd: engine + wire layer + listener,
// with per-endpoint request counters so the demo can prove how many
// round trips a sweep cost. In the gossip scenario it also runs a
// gossip.Node, and the designated victim's batch endpoint can be gated
// (requests accepted but never answered) so the kill deterministically
// leaves a whole unacknowledged shard to fail over.
type worker struct {
	ts       *httptest.Server
	api      atomic.Pointer[httpapi.Server] // late-bound: the listener must exist first for the gossip self-URL
	eng      *sweep.Engine                  // the worker's own run cache, for build/hit assertions
	node     *gossip.Node
	gated    atomic.Bool
	execs    atomic.Int64 // POST /v1/exec (spec-at-a-time dispatch)
	batches  atomic.Int64 // POST /v1/exec/batch (one whole shard)
	handoffs atomic.Int64 // POST /v1/handoff (replication / cache handoff)
	once     sync.Once
}

// gossipTimings are the demo's fast-convergence knobs: rounds every
// 10ms, unrefuted suspicions die after 150ms, the dead stay quarantined
// past the demo's lifetime.
func gossipTimings(cfg *gossip.Config) {
	cfg.Interval = 10 * time.Millisecond
	cfg.SuspectAfter = 150 * time.Millisecond
	cfg.Quarantine = time.Minute
}

// startWorker brings up one embedded dramthermd. With an id it also
// joins the gossip plane: the worker serves POST /v1/gossip and
// anti-entropy syncs its membership table through the seed members.
func startWorker(id string, seeds ...gossip.Member) *worker {
	w := &worker{}
	w.ts = httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case remote.ExecPath:
			w.execs.Add(1)
		case remote.HandoffPath:
			w.handoffs.Add(1)
		case remote.BatchPath:
			w.batches.Add(1)
			if w.gated.Load() {
				// The victim accepts the shard and sits on it until the
				// kill severs the connection. The body must be drained
				// first: net/http only watches for disconnects (and
				// cancels r.Context) once the request body hits EOF.
				io.Copy(io.Discard, r.Body) //nolint:errcheck
				<-r.Context().Done()
				return
			}
		}
		api := w.api.Load()
		if api == nil {
			http.Error(rw, "starting", http.StatusServiceUnavailable)
			return
		}
		api.ServeHTTP(rw, r)
	}))
	cfg := httpapi.Config{}
	if id != "" {
		gcfg := gossip.Config{Self: gossip.Member{ID: id, URL: w.ts.URL}, Seeds: seeds}
		gossipTimings(&gcfg)
		node, err := gossip.NewNode(gcfg)
		if err != nil {
			log.Fatalf("gossip node %s: %v", id, err)
		}
		w.node = node
		cfg.Gossip = node
	}
	w.eng = newEngine()
	w.api.Store(httpapi.New(context.Background(), w.eng, cfg))
	return w
}

// kill tears the worker down hard: in-flight exec requests and batch
// streams lose their connections (their simulations are cancelled
// server-side) and later dispatches are refused — exactly what a crashed
// peer looks like.
func (w *worker) kill() {
	w.once.Do(func() {
		if w.node != nil {
			w.node.Close()
		}
		w.ts.CloseClientConnections()
		w.ts.Close()
		w.api.Load().Close()
	})
}

// clusterSweep runs specs through a fresh two-worker cluster. When
// killVictim is set, the worker owning the first spec's shard is killed
// as soon as the sweep starts, so its runs fail over. It returns the
// rendered report table, how many specs each peer served, the
// per-endpoint request totals across both workers, and the
// coordinator's metrics registry so callers can assert on the remote
// backend's dispatch/failover counters. In the clean run it
// cross-checks the coordinator's per-peer dispatch counters against
// each worker's own HTTP request counts — two independent observers of
// the same traffic must agree exactly.
func clusterSweep(specs []sweep.Spec, killVictim bool) (table string, served map[string]int, execs, batches int64, reg *obs.Registry) {
	w1, w2 := startWorker(""), startWorker("")
	defer w1.kill()
	defer w2.kill()
	workers := map[string]*worker{"worker-1": w1, "worker-2": w2}

	coord := newEngine()
	backend, err := remote.New(remote.Config{
		Peers: []remote.Peer{
			{ID: "worker-1", URL: w1.ts.URL},
			{ID: "worker-2", URL: w2.ts.URL},
		},
		Key:   coord.Key,
		Local: coord.Exec,
		// The demo relies on failover alone; probes would only race the
		// assertions with readmission attempts.
		ProbeEvery: -1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer backend.Close()
	reg = obs.NewRegistry()
	backend.Instrument(reg)
	if *batch {
		coord.SetBatchBackend(backend)
	} else {
		coord.SetBackend(backend)
	}

	victim := backend.OwnerOf(specs[0])
	killed := make(chan struct{})
	var once sync.Once
	if killVictim {
		go func() {
			<-killed
			workers[victim].kill()
			fmt.Printf("  ✂ killed %s mid-sweep (owner of %s)\n", victim, specs[0])
		}()
	}

	var mu sync.Mutex
	served = map[string]int{}
	res, err := coord.Sweep(context.Background(), specs, sweep.Options{
		OnEvent: func(ev sweep.Event) {
			switch ev.Kind {
			case sweep.EventStarted:
				if killVictim {
					once.Do(func() { close(killed) })
				}
			case sweep.EventFinished:
				peer := ev.Peer
				if peer == "" {
					peer = "coordinator-cache"
				}
				mu.Lock()
				served[peer]++
				mu.Unlock()
				fmt.Printf("  ✓ [%2d/%2d] %-28s %6.0f s  (%s on %s)\n",
					ev.Done, ev.Total, ev.Spec, ev.Seconds, ev.Outcome, peer)
			}
		},
	})
	if err != nil {
		log.Fatalf("cluster sweep: %v", err)
	}
	execs = w1.execs.Load() + w2.execs.Load()
	batches = w1.batches.Load() + w2.batches.Load()
	if !killVictim {
		// No kill means no retries on severed connections, so the
		// coordinator's dispatch counters and each worker's own HTTP
		// request counts observed identical traffic.
		for id, w := range workers {
			db := int64(reg.Sum("dramtherm_remote_dispatch_total", map[string]string{"peer": id, "kind": "batch"}))
			de := int64(reg.Sum("dramtherm_remote_dispatch_total", map[string]string{"peer": id, "kind": "exec"}))
			if db != w.batches.Load() || de != w.execs.Load() {
				log.Fatalf("coordinator dispatch counters for %s (%d batch, %d exec) disagree with its HTTP request counts (%d batch, %d exec)",
					id, db, de, w.batches.Load(), w.execs.Load())
			}
		}
		fmt.Println("  ✓ dispatch counters match workers' per-endpoint HTTP request counts")
	}
	return res.Table("cluster sweep").String(), served, execs, batches, reg
}

// ringHas reports whether the backend's membership currently includes
// the peer id.
func ringHas(b *remote.Backend, id string) bool {
	for _, p := range b.Status() {
		if p.ID == id {
			return true
		}
	}
	return false
}

// gossipSweep runs specs through a gossiping cluster under churn. Every
// node runs a gossip.Node: two workers seed off each other, the
// coordinator (an observer member with no inbound server) seeds off
// both and re-forms its ring from membership deltas. The worker owning
// the first spec's shard is gated — it accepts its batch request and
// never answers — so the sweep stalls on it while a third worker joins
// the running cluster through a seed member. Once the coordinator's
// ring includes the joiner, the gated worker is killed: its whole
// unacknowledged shard re-plans across the survivor AND worker-3, with
// zero coordinator restarts. Returns the report table, who served what,
// and the joiner's batch-request count (the proof it took real shards).
func gossipSweep(specs []sweep.Spec) (table string, served map[string]int, joinerBatches int64) {
	w1 := startWorker("worker-1")
	w2 := startWorker("worker-2", gossip.Member{ID: "worker-1", URL: w1.ts.URL})
	defer w1.kill()
	defer w2.kill()
	workers := map[string]*worker{"worker-1": w1, "worker-2": w2}

	coord := newEngine()
	// The backend exists before the gossip node (membership deltas drive
	// SetMembers), so the detector callback late-binds the node.
	var gnode atomic.Pointer[gossip.Node]
	backend, err := remote.New(remote.Config{
		Peers: []remote.Peer{
			{ID: "worker-1", URL: w1.ts.URL},
			{ID: "worker-2", URL: w2.ts.URL},
		},
		Key:        coord.Key,
		Local:      coord.Exec,
		ProbeEvery: -1, // gossip is the membership channel; dispatch failures are the detector
		OnPeerDown: func(id string, err error) {
			if n := gnode.Load(); n != nil {
				n.Suspect(id)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer backend.Close()
	gcfg := gossip.Config{
		Self: gossip.Member{ID: "coordinator"}, // observer: initiates exchanges, serves none
		Seeds: []gossip.Member{
			{ID: "worker-1", URL: w1.ts.URL},
			{ID: "worker-2", URL: w2.ts.URL},
		},
		OnChange: func(ms []gossip.Member) {
			var ring []remote.Peer
			for _, m := range ms {
				if m.ID != "coordinator" && m.State != gossip.Dead && m.URL != "" {
					ring = append(ring, remote.Peer{ID: m.ID, URL: m.URL})
				}
			}
			backend.SetMembers(ring)
		},
	}
	gossipTimings(&gcfg)
	node, err := gossip.NewNode(gcfg)
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()
	gnode.Store(node)
	coord.SetBatchBackend(backend)

	victim := backend.OwnerOf(specs[0])
	survivor := "worker-2"
	if victim == survivor {
		survivor = "worker-1"
	}
	workers[victim].gated.Store(true)

	// Churn, triggered by the sweep's first started event: join worker-3
	// through the survivor seed, wait for the coordinator's ring to
	// re-form around it, then kill the gated victim so its whole shard
	// fails over onto the post-join ring.
	started := make(chan struct{})
	var startOnce sync.Once
	var w3 *worker
	churned := make(chan struct{})
	go func() {
		defer close(churned)
		<-started
		w3 = startWorker("worker-3", gossip.Member{ID: survivor, URL: workers[survivor].ts.URL})
		deadline := time.Now().Add(30 * time.Second)
		for !ringHas(backend, "worker-3") {
			if time.Now().After(deadline) {
				log.Fatal("worker-3 never reached the coordinator's ring")
			}
			time.Sleep(5 * time.Millisecond)
		}
		fmt.Printf("  ⇄ worker-3 joined the ring mid-sweep (gossiped through %s)\n", survivor)
		workers[victim].kill()
		fmt.Printf("  ✂ killed %s mid-sweep (owner of %s)\n", victim, specs[0])
	}()

	var mu sync.Mutex
	served = map[string]int{}
	res, err := coord.Sweep(context.Background(), specs, sweep.Options{
		OnEvent: func(ev sweep.Event) {
			switch ev.Kind {
			case sweep.EventStarted:
				startOnce.Do(func() { close(started) })
			case sweep.EventFinished:
				peer := ev.Peer
				if peer == "" {
					peer = "coordinator-cache"
				}
				mu.Lock()
				served[peer]++
				mu.Unlock()
				fmt.Printf("  ✓ [%2d/%2d] %-28s %6.0f s  (%s on %s)\n",
					ev.Done, ev.Total, ev.Spec, ev.Seconds, ev.Outcome, peer)
			}
		},
	})
	if err != nil {
		log.Fatalf("gossip sweep: %v", err)
	}
	<-churned
	defer w3.kill()

	// The dead worker must also leave the membership — suspicion from
	// the failed dispatch, confirmed dead by timeout, evicted from the
	// ring by the gossip delta, all without restarting anything.
	deadline := time.Now().Add(10 * time.Second)
	for ringHas(backend, victim) {
		if time.Now().After(deadline) {
			log.Fatalf("dead %s never left the coordinator's ring", victim)
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("  ⇄ dead %s gossiped out of the ring (membership now %d workers)\n",
		victim, len(backend.Status()))
	return res.Table("cluster sweep").String(), served, w3.batches.Load()
}

// drainRepl waits until the backend has planned wantRounds handoff
// rounds and its replication queue is empty, then returns the snapshot.
func drainRepl(b *remote.Backend, wantRounds int64) remote.ReplicationStatus {
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := b.ReplicationStatus()
		if st.HandoffRounds >= wantRounds && st.Pending == 0 {
			return st
		}
		if time.Now().After(deadline) {
			log.Fatalf("replication never drained: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// pickJoiner returns the first worker id whose arrival would take
// ownership of at least one swept spec. Ring placement is a pure
// function of member ids and keys, so this is checked offline against a
// probe backend — a joiner that owns nothing would get nothing handed
// off, proving nothing.
func pickJoiner(coord *sweep.Engine, peers []remote.Peer, specs []sweep.Spec) string {
	for i := 3; ; i++ {
		id := fmt.Sprintf("worker-%d", i)
		probe, err := remote.New(remote.Config{
			Peers:      append(append([]remote.Peer{}, peers...), remote.Peer{ID: id, URL: "http://joiner.invalid"}),
			Key:        coord.Key,
			Local:      coord.Exec,
			ProbeEvery: -1,
		})
		if err != nil {
			log.Fatal(err)
		}
		owns := false
		for _, s := range specs {
			if probe.OwnerOf(s) == id {
				owns = true
				break
			}
		}
		probe.Close()
		if owns {
			return id
		}
	}
}

// verifySweep proves cluster-wide cache warmth: a brand-new coordinator
// (cold cache, same config digest) sweeps specs over ring, and every
// spec must come back a worker-side cache hit — zero simulations
// anywhere, table byte-identical to the single-node reference. Returns
// who served what.
func verifySweep(specs []sweep.Spec, ring []remote.Peer, workers map[string]*worker, refTable, what string) map[string]int {
	before := map[string]int64{}
	for id, w := range workers {
		before[id] = w.eng.Stats().Builds
	}
	coord := newEngine()
	backend, err := remote.New(remote.Config{Peers: ring, Key: coord.Key, Local: coord.Exec, ProbeEvery: -1})
	if err != nil {
		log.Fatal(err)
	}
	defer backend.Close()
	if *batch {
		coord.SetBatchBackend(backend)
	} else {
		coord.SetBackend(backend)
	}
	var mu sync.Mutex
	served := map[string]int{}
	hits := 0
	res, err := coord.Sweep(context.Background(), specs, sweep.Options{
		OnEvent: func(ev sweep.Event) {
			if ev.Kind != sweep.EventFinished {
				return
			}
			mu.Lock()
			served[ev.Peer]++
			if ev.Outcome == sweep.Hit {
				hits++
			}
			mu.Unlock()
		},
	})
	if err != nil {
		log.Fatalf("%s verification sweep: %v", what, err)
	}
	if table := res.Table("cluster sweep").String(); table != refTable {
		log.Fatalf("%s table differs from single-node table:\n--- local ---\n%s--- %s ---\n%s",
			what, refTable, what, table)
	}
	if hits != len(specs) {
		log.Fatalf("%s: %d/%d specs were worker cache hits, want all %d", what, hits, len(specs), len(specs))
	}
	for id, w := range workers {
		if d := w.eng.Stats().Builds - before[id]; d != 0 {
			log.Fatalf("%s: worker %s rebuilt %d specs, want 0", what, id, d)
		}
	}
	return served
}

// replicationSweep proves the durable-cache story under churn. A
// replication-enabled coordinator sweeps the grid (RF=2: every built
// result streams to its key's ring successor over /v1/handoff). Then a
// joiner enters the ring and its shard's cached results are handed off
// before any traffic lands; a cold coordinator re-sweep must be all
// worker-side hits with the joiner serving its shard from handed-off
// cache. Then the owner of the first spec is killed; every one of its
// cached results was already replicated to its successor — now promoted
// to owner — so another cold re-sweep still sees zero rebuilds and a
// byte-identical table.
func replicationSweep(specs []sweep.Spec, refTable string) {
	w1, w2 := startWorker(""), startWorker("")
	defer w1.kill()
	defer w2.kill()
	workers := map[string]*worker{"worker-1": w1, "worker-2": w2}
	peers := []remote.Peer{
		{ID: "worker-1", URL: w1.ts.URL},
		{ID: "worker-2", URL: w2.ts.URL},
	}

	coord := newEngine()
	backend, err := remote.New(remote.Config{
		Peers:       peers,
		Key:         coord.Key,
		Local:       coord.Exec,
		ProbeEvery:  -1,
		Replication: true,
		Entries:     coord.Range,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer backend.Close()
	if *batch {
		coord.SetBatchBackend(backend)
	} else {
		coord.SetBackend(backend)
	}

	// Warm sweep: every result is built on its ring owner, streams back
	// into the coordinator's cache, and replicates to its successor.
	if _, err := coord.Sweep(context.Background(), specs, sweep.Options{}); err != nil {
		log.Fatalf("replicated sweep: %v", err)
	}
	st := drainRepl(backend, 0)
	if st.Sent < int64(len(specs)) || st.Dropped != 0 {
		log.Fatalf("replication sent %d of %d results (%d dropped), want all", st.Sent, len(specs), st.Dropped)
	}
	fmt.Printf("  ✓ %d results replicated to ring successors over %s (RF=2)\n", st.Sent, remote.HandoffPath)

	// Join: the membership delta hands the moved shard's cached results
	// to the new owner before any traffic lands there.
	joinID := pickJoiner(coord, peers, specs)
	wj := startWorker("")
	defer wj.kill()
	workers[joinID] = wj
	peers = append(peers, remote.Peer{ID: joinID, URL: wj.ts.URL})
	backend.SetMembers(peers)
	st = drainRepl(backend, 1)
	deadline := time.Now().Add(10 * time.Second)
	for wj.eng.Stats().Entries == 0 {
		if time.Now().After(deadline) {
			log.Fatalf("joiner %s never received a handed-off result", joinID)
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("  ⇄ %s joined: %d cached results handed off in %d request(s), before any traffic\n",
		joinID, wj.eng.Stats().Entries, wj.handoffs.Load())

	served := verifySweep(specs, peers, workers, refTable, "post-join")
	if served[joinID] == 0 {
		log.Fatalf("joiner %s serves none of the re-swept specs, want its shard", joinID)
	}
	fmt.Printf("  ✓ cold-coordinator re-sweep: all %d specs served as worker cache hits, %s served %d from handed-off cache\n",
		len(specs), joinID, served[joinID])

	// Kill the current owner of the first spec. Its every cached result
	// already lives on its successor, which the ring now promotes to
	// owner — nothing is lost and nothing is rebuilt.
	victim := backend.OwnerOf(specs[0])
	workers[victim].kill()
	var ring []remote.Peer
	for _, p := range peers {
		if p.ID != victim {
			ring = append(ring, p)
		}
	}
	backend.SetMembers(ring)
	st = drainRepl(backend, 2)
	if st.Promotions == 0 {
		log.Fatalf("killed %s but no replica promotions were planned", victim)
	}
	fmt.Printf("  ✂ killed %s (owner of %s): %d keys promoted to their replica holders in place\n",
		victim, specs[0], st.Promotions)

	live := map[string]*worker{}
	for id, w := range workers {
		if id != victim {
			live[id] = w
		}
	}
	served = verifySweep(specs, ring, live, refTable, "post-kill")
	fmt.Printf("  ✓ cold-coordinator re-sweep after the kill: zero rebuilds, every pre-kill result served from a replica (%v)\n", served)
}

// livePeersServing counts distinct worker peers in a served map (the
// coordinator's own cache and local fallback are not HTTP peers).
func livePeersServing(served map[string]int) int {
	n := 0
	for peer := range served {
		if strings.HasPrefix(peer, "worker-") {
			n++
		}
	}
	return n
}

func main() {
	flag.Parse()
	grid := sweep.Grid{
		Mixes:    strings.Split(*mixes, ","),
		Policies: strings.Split(*policies, ","),
	}
	specs := grid.Expand()
	mode := "batched shard dispatch"
	if !*batch {
		mode = "spec-at-a-time dispatch"
	}
	fmt.Printf("grid: %d mixes × %d policies = %d specs (%s)\n\n",
		len(grid.Mixes), len(grid.Policies), len(specs), mode)

	// Reference: the same grid on one plain single-node engine.
	fmt.Println("single-node reference sweep:")
	local := newEngine()
	ref, err := local.Sweep(context.Background(), specs, sweep.Options{})
	if err != nil {
		log.Fatalf("local sweep: %v", err)
	}
	refTable := ref.Table("cluster sweep").String()
	fmt.Print(refTable)

	// Cluster: two embedded workers behind a coordinating engine.
	fmt.Println("\ncluster sweep across 2 embedded workers:")
	clusterTable, served, execs, batches, _ := clusterSweep(specs, false)
	fmt.Printf("  shard distribution: %v\n", served)
	fmt.Printf("  HTTP requests: %d batch, %d single-exec, for %d specs\n", batches, execs, len(specs))
	if clusterTable != refTable {
		log.Fatalf("cluster table differs from single-node table:\n--- local ---\n%s--- cluster ---\n%s",
			refTable, clusterTable)
	}
	fmt.Println("  ✓ report table byte-identical to the single-node run")
	if *batch {
		// The whole point of batching: one request per live peer, not one
		// per spec.
		want := int64(livePeersServing(served))
		if batches != want || execs != 0 {
			log.Fatalf("batched sweep cost %d batch + %d single-exec requests, want exactly %d batch (one per serving peer) and 0 single-exec",
				batches, execs, want)
		}
		fmt.Printf("  ✓ one /v1/exec/batch request per live peer (%d requests for %d specs)\n", batches, len(specs))
	} else if batches != 0 {
		log.Fatalf("legacy mode issued %d batch requests, want 0", batches)
	}

	// Failover: fresh cluster, one worker killed as the sweep starts.
	fmt.Println("\ncluster sweep with one worker killed mid-sweep:")
	failTable, served, execs, batches, failReg := clusterSweep(specs, true)
	fmt.Printf("  shard distribution after failover: %v\n", served)
	fmt.Printf("  HTTP requests: %d batch, %d single-exec\n", batches, execs)
	if failTable != refTable {
		log.Fatalf("failover table differs from single-node table:\n--- local ---\n%s--- failover ---\n%s",
			refTable, failTable)
	}
	fmt.Println("  ✓ report table byte-identical despite the dead worker")
	// The kill must be visible in the coordinator's own metrics: the dead
	// peer transitions down, and the lost work is re-planned (batched
	// mode) or failed over spec by spec (legacy mode).
	if down := failReg.Sum("dramtherm_remote_peer_state_transitions_total", map[string]string{"to": "down"}); down < 1 {
		log.Fatalf("killed a worker but peer_state_transitions_total{to=down} = %v", down)
	}
	if *batch {
		if n := failReg.Sum("dramtherm_remote_replan_rounds_total", nil); n < 1 {
			log.Fatalf("killed a worker mid-batch but replan_rounds_total = %v", n)
		}
	} else if n := failReg.Sum("dramtherm_remote_failover_total", nil); n < 1 {
		log.Fatalf("killed a worker but failover_total = %v", n)
	}
	fmt.Println("  ✓ failover visible in metrics: down transition + re-planned work")

	// Replication: RF=2 successor copies, handoff on join, promotion on
	// kill — cached results survive churn with zero recomputation.
	fmt.Println("\nreplicated cluster sweep: RF=2 handoff on join, replica promotion on kill:")
	replicationSweep(specs, refTable)

	if *batch {
		// Gossip membership under churn: join mid-sweep, kill mid-sweep.
		fmt.Println("\ngossip cluster sweep: worker-3 joins mid-sweep, one worker killed:")
		gossipTable, served, joinerBatches := gossipSweep(specs)
		fmt.Printf("  shard distribution after churn: %v\n", served)
		if gossipTable != refTable {
			log.Fatalf("gossip-churn table differs from single-node table:\n--- local ---\n%s--- gossip ---\n%s",
				refTable, gossipTable)
		}
		fmt.Println("  ✓ report table byte-identical through join + kill, zero coordinator restarts")
		if joinerBatches == 0 || served["worker-3"] == 0 {
			log.Fatalf("worker-3 served %d batch requests / %d specs, want it visibly serving shards",
				joinerBatches, served["worker-3"])
		}
		fmt.Printf("  ✓ mid-sweep joiner worker-3 served %d batch shard(s), %d spec(s)\n",
			joinerBatches, served["worker-3"])
	}

	if *tableOut != "" {
		if err := os.WriteFile(*tableOut, []byte(clusterTable), 0o644); err != nil {
			log.Fatalf("-table-out: %v", err)
		}
		fmt.Printf("\ntable written to %s\n", *tableOut)
	}
}
