// clusterdtm demonstrates dramtherm's cluster mode end to end, entirely
// in-process: it starts two embedded dramthermd workers, builds a
// coordinator whose engine fans runs out to them through the
// consistent-hashing remote backend, sweeps a mix×policy grid across
// the cluster, and asserts the aggregated report table is byte-identical
// to a plain single-node sweep. It then repeats the sweep on a fresh
// cluster and kills one worker mid-sweep, exercising the failover path
// (the dead peer's shard retries on the surviving worker or locally) —
// and asserts the table still comes out byte-identical.
//
// Usage:
//
//	go run ./examples/clusterdtm
//	go run ./examples/clusterdtm -mixes W1,W2 -policies DTM-TS,DTM-BW
//	go run ./examples/clusterdtm -instrscale 0.02   # CI-sized workload
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http/httptest"
	"strings"
	"sync"

	"dramtherm/internal/core"
	"dramtherm/internal/fbconfig"
	"dramtherm/internal/httpapi"
	"dramtherm/internal/sweep"
	"dramtherm/internal/sweep/remote"
)

var (
	mixes    = flag.String("mixes", "W1,W2", "comma-separated workload mixes")
	policies = flag.String("policies", "DTM-TS,DTM-BW,DTM-ACG,DTM-CDVFS", "comma-separated DTM policies")
	full     = flag.Bool("full", false, "full-scale batches (default is a fast demo scale)")
	scale    = flag.Float64("instrscale", 0, "override the application length scale factor")
)

// newEngine builds a demo-scale engine. Every node of the cluster must
// share one configuration — identical digests are what let keys, caches
// and results line up across peers.
func newEngine() *sweep.Engine {
	cfg := core.DefaultConfig()
	if !*full {
		cfg.Replicas = 1
		cfg.InstrScale = 0.05
		cfg.Limits = fbconfig.ThermalLimits{AMBTDP: 103.5, DRAMTDP: 85, AMBTRP: 102.5, DRAMTRP: 84}
	}
	if *scale > 0 {
		cfg.InstrScale = *scale
	}
	return sweep.NewEngine(core.NewSystem(cfg), 0)
}

// worker is one embedded dramthermd: engine + wire layer + listener.
type worker struct {
	ts   *httptest.Server
	api  *httpapi.Server
	once sync.Once
}

func startWorker() *worker {
	api := httpapi.New(context.Background(), newEngine(), httpapi.Config{})
	return &worker{ts: httptest.NewServer(api), api: api}
}

// kill tears the worker down hard: in-flight exec requests lose their
// connections (their simulations are cancelled server-side) and later
// dispatches are refused — exactly what a crashed peer looks like.
func (w *worker) kill() {
	w.once.Do(func() {
		w.ts.CloseClientConnections()
		w.ts.Close()
		w.api.Close()
	})
}

// clusterSweep runs specs through a fresh two-worker cluster. When
// killVictim is set, the worker owning the first spec's shard is killed
// as soon as the sweep starts, so its runs fail over. It returns the
// rendered report table and how many specs each peer served.
func clusterSweep(specs []sweep.Spec, killVictim bool) (string, map[string]int) {
	w1, w2 := startWorker(), startWorker()
	defer w1.kill()
	defer w2.kill()
	workers := map[string]*worker{"worker-1": w1, "worker-2": w2}

	coord := newEngine()
	backend, err := remote.New(remote.Config{
		Peers: []remote.Peer{
			{ID: "worker-1", URL: w1.ts.URL},
			{ID: "worker-2", URL: w2.ts.URL},
		},
		Key:   coord.Key,
		Local: coord.Exec,
		// The demo relies on failover alone; probes would only race the
		// assertions with readmission attempts.
		ProbeEvery: -1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer backend.Close()
	coord.SetBackend(backend)

	victim := backend.OwnerOf(specs[0])
	killed := make(chan struct{})
	var once sync.Once
	if killVictim {
		go func() {
			<-killed
			workers[victim].kill()
			fmt.Printf("  ✂ killed %s mid-sweep (owner of %s)\n", victim, specs[0])
		}()
	}

	var mu sync.Mutex
	served := map[string]int{}
	res, err := coord.Sweep(context.Background(), specs, sweep.Options{
		OnEvent: func(ev sweep.Event) {
			switch ev.Kind {
			case sweep.EventStarted:
				if killVictim {
					once.Do(func() { close(killed) })
				}
			case sweep.EventFinished:
				peer := ev.Peer
				if peer == "" {
					peer = "coordinator-cache"
				}
				mu.Lock()
				served[peer]++
				mu.Unlock()
				fmt.Printf("  ✓ [%2d/%2d] %-28s %6.0f s  (%s on %s)\n",
					ev.Done, ev.Total, ev.Spec, ev.Seconds, ev.Outcome, peer)
			}
		},
	})
	if err != nil {
		log.Fatalf("cluster sweep: %v", err)
	}
	return res.Table("cluster sweep").String(), served
}

func main() {
	flag.Parse()
	grid := sweep.Grid{
		Mixes:    strings.Split(*mixes, ","),
		Policies: strings.Split(*policies, ","),
	}
	specs := grid.Expand()
	fmt.Printf("grid: %d mixes × %d policies = %d specs\n\n",
		len(grid.Mixes), len(grid.Policies), len(specs))

	// Reference: the same grid on one plain single-node engine.
	fmt.Println("single-node reference sweep:")
	local := newEngine()
	ref, err := local.Sweep(context.Background(), specs, sweep.Options{})
	if err != nil {
		log.Fatalf("local sweep: %v", err)
	}
	refTable := ref.Table("cluster sweep").String()
	fmt.Print(refTable)

	// Cluster: two embedded workers behind a coordinating engine.
	fmt.Println("\ncluster sweep across 2 embedded workers:")
	clusterTable, served := clusterSweep(specs, false)
	fmt.Printf("  shard distribution: %v\n", served)
	if clusterTable != refTable {
		log.Fatalf("cluster table differs from single-node table:\n--- local ---\n%s--- cluster ---\n%s",
			refTable, clusterTable)
	}
	fmt.Println("  ✓ report table byte-identical to the single-node run")

	// Failover: fresh cluster, one worker killed as the sweep starts.
	fmt.Println("\ncluster sweep with one worker killed mid-sweep:")
	failTable, served := clusterSweep(specs, true)
	fmt.Printf("  shard distribution after failover: %v\n", served)
	if failTable != refTable {
		log.Fatalf("failover table differs from single-node table:\n--- local ---\n%s--- failover ---\n%s",
			refTable, failTable)
	}
	fmt.Println("  ✓ report table byte-identical despite the dead worker")
}
