// clusterdtm demonstrates dramtherm's cluster mode end to end, entirely
// in-process: it starts two embedded dramthermd workers, builds a
// coordinator whose engine fans runs out to them through the
// consistent-hashing remote backend, sweeps a mix×policy grid across
// the cluster, and asserts the aggregated report table is byte-identical
// to a plain single-node sweep. In the default batched mode it also
// counts the cluster's HTTP traffic and asserts the whole sweep cost one
// /v1/exec/batch request per live peer — not one request per spec. It
// then repeats the sweep on a fresh cluster and kills one worker
// mid-sweep, exercising the failover path (the dead peer's
// unacknowledged shard re-plans onto the survivor or runs locally) — and
// asserts the table still comes out byte-identical.
//
// Usage:
//
//	go run ./examples/clusterdtm
//	go run ./examples/clusterdtm -batch=false         # legacy spec-at-a-time dispatch
//	go run ./examples/clusterdtm -mixes W1,W2 -policies DTM-TS,DTM-BW
//	go run ./examples/clusterdtm -instrscale 0.02     # CI-sized workload
//	go run ./examples/clusterdtm -table-out /tmp/t.txt  # dump the table for diffing
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"

	"dramtherm/internal/core"
	"dramtherm/internal/fbconfig"
	"dramtherm/internal/httpapi"
	"dramtherm/internal/sweep"
	"dramtherm/internal/sweep/remote"
)

var (
	mixes    = flag.String("mixes", "W1,W2", "comma-separated workload mixes")
	policies = flag.String("policies", "DTM-TS,DTM-BW,DTM-ACG,DTM-CDVFS", "comma-separated DTM policies")
	full     = flag.Bool("full", false, "full-scale batches (default is a fast demo scale)")
	scale    = flag.Float64("instrscale", 0, "override the application length scale factor")
	batch    = flag.Bool("batch", true, "dispatch whole shards per peer over /v1/exec/batch (false = one /v1/exec per spec)")
	tableOut = flag.String("table-out", "", "also write the cluster sweep's report table to this file")
)

// newEngine builds a demo-scale engine. Every node of the cluster must
// share one configuration — identical digests are what let keys, caches
// and results line up across peers.
func newEngine() *sweep.Engine {
	cfg := core.DefaultConfig()
	if !*full {
		cfg.Replicas = 1
		cfg.InstrScale = 0.05
		cfg.Limits = fbconfig.ThermalLimits{AMBTDP: 103.5, DRAMTDP: 85, AMBTRP: 102.5, DRAMTRP: 84}
	}
	if *scale > 0 {
		cfg.InstrScale = *scale
	}
	return sweep.NewEngine(core.NewSystem(cfg), 0)
}

// worker is one embedded dramthermd: engine + wire layer + listener,
// with per-endpoint request counters so the demo can prove how many
// round trips a sweep cost.
type worker struct {
	ts      *httptest.Server
	api     *httpapi.Server
	execs   atomic.Int64 // POST /v1/exec (spec-at-a-time dispatch)
	batches atomic.Int64 // POST /v1/exec/batch (one whole shard)
	once    sync.Once
}

func startWorker() *worker {
	w := &worker{api: httpapi.New(context.Background(), newEngine(), httpapi.Config{})}
	w.ts = httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case remote.ExecPath:
			w.execs.Add(1)
		case remote.BatchPath:
			w.batches.Add(1)
		}
		w.api.ServeHTTP(rw, r)
	}))
	return w
}

// kill tears the worker down hard: in-flight exec requests and batch
// streams lose their connections (their simulations are cancelled
// server-side) and later dispatches are refused — exactly what a crashed
// peer looks like.
func (w *worker) kill() {
	w.once.Do(func() {
		w.ts.CloseClientConnections()
		w.ts.Close()
		w.api.Close()
	})
}

// clusterSweep runs specs through a fresh two-worker cluster. When
// killVictim is set, the worker owning the first spec's shard is killed
// as soon as the sweep starts, so its runs fail over. It returns the
// rendered report table, how many specs each peer served, and the
// per-endpoint request totals across both workers.
func clusterSweep(specs []sweep.Spec, killVictim bool) (table string, served map[string]int, execs, batches int64) {
	w1, w2 := startWorker(), startWorker()
	defer w1.kill()
	defer w2.kill()
	workers := map[string]*worker{"worker-1": w1, "worker-2": w2}

	coord := newEngine()
	backend, err := remote.New(remote.Config{
		Peers: []remote.Peer{
			{ID: "worker-1", URL: w1.ts.URL},
			{ID: "worker-2", URL: w2.ts.URL},
		},
		Key:   coord.Key,
		Local: coord.Exec,
		// The demo relies on failover alone; probes would only race the
		// assertions with readmission attempts.
		ProbeEvery: -1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer backend.Close()
	if *batch {
		coord.SetBatchBackend(backend)
	} else {
		coord.SetBackend(backend)
	}

	victim := backend.OwnerOf(specs[0])
	killed := make(chan struct{})
	var once sync.Once
	if killVictim {
		go func() {
			<-killed
			workers[victim].kill()
			fmt.Printf("  ✂ killed %s mid-sweep (owner of %s)\n", victim, specs[0])
		}()
	}

	var mu sync.Mutex
	served = map[string]int{}
	res, err := coord.Sweep(context.Background(), specs, sweep.Options{
		OnEvent: func(ev sweep.Event) {
			switch ev.Kind {
			case sweep.EventStarted:
				if killVictim {
					once.Do(func() { close(killed) })
				}
			case sweep.EventFinished:
				peer := ev.Peer
				if peer == "" {
					peer = "coordinator-cache"
				}
				mu.Lock()
				served[peer]++
				mu.Unlock()
				fmt.Printf("  ✓ [%2d/%2d] %-28s %6.0f s  (%s on %s)\n",
					ev.Done, ev.Total, ev.Spec, ev.Seconds, ev.Outcome, peer)
			}
		},
	})
	if err != nil {
		log.Fatalf("cluster sweep: %v", err)
	}
	execs = w1.execs.Load() + w2.execs.Load()
	batches = w1.batches.Load() + w2.batches.Load()
	return res.Table("cluster sweep").String(), served, execs, batches
}

// livePeersServing counts distinct worker peers in a served map (the
// coordinator's own cache and local fallback are not HTTP peers).
func livePeersServing(served map[string]int) int {
	n := 0
	for peer := range served {
		if strings.HasPrefix(peer, "worker-") {
			n++
		}
	}
	return n
}

func main() {
	flag.Parse()
	grid := sweep.Grid{
		Mixes:    strings.Split(*mixes, ","),
		Policies: strings.Split(*policies, ","),
	}
	specs := grid.Expand()
	mode := "batched shard dispatch"
	if !*batch {
		mode = "spec-at-a-time dispatch"
	}
	fmt.Printf("grid: %d mixes × %d policies = %d specs (%s)\n\n",
		len(grid.Mixes), len(grid.Policies), len(specs), mode)

	// Reference: the same grid on one plain single-node engine.
	fmt.Println("single-node reference sweep:")
	local := newEngine()
	ref, err := local.Sweep(context.Background(), specs, sweep.Options{})
	if err != nil {
		log.Fatalf("local sweep: %v", err)
	}
	refTable := ref.Table("cluster sweep").String()
	fmt.Print(refTable)

	// Cluster: two embedded workers behind a coordinating engine.
	fmt.Println("\ncluster sweep across 2 embedded workers:")
	clusterTable, served, execs, batches := clusterSweep(specs, false)
	fmt.Printf("  shard distribution: %v\n", served)
	fmt.Printf("  HTTP requests: %d batch, %d single-exec, for %d specs\n", batches, execs, len(specs))
	if clusterTable != refTable {
		log.Fatalf("cluster table differs from single-node table:\n--- local ---\n%s--- cluster ---\n%s",
			refTable, clusterTable)
	}
	fmt.Println("  ✓ report table byte-identical to the single-node run")
	if *batch {
		// The whole point of batching: one request per live peer, not one
		// per spec.
		want := int64(livePeersServing(served))
		if batches != want || execs != 0 {
			log.Fatalf("batched sweep cost %d batch + %d single-exec requests, want exactly %d batch (one per serving peer) and 0 single-exec",
				batches, execs, want)
		}
		fmt.Printf("  ✓ one /v1/exec/batch request per live peer (%d requests for %d specs)\n", batches, len(specs))
	} else if batches != 0 {
		log.Fatalf("legacy mode issued %d batch requests, want 0", batches)
	}

	// Failover: fresh cluster, one worker killed as the sweep starts.
	fmt.Println("\ncluster sweep with one worker killed mid-sweep:")
	failTable, served, execs, batches := clusterSweep(specs, true)
	fmt.Printf("  shard distribution after failover: %v\n", served)
	fmt.Printf("  HTTP requests: %d batch, %d single-exec\n", batches, execs)
	if failTable != refTable {
		log.Fatalf("failover table differs from single-node table:\n--- local ---\n%s--- failover ---\n%s",
			refTable, failTable)
	}
	fmt.Println("  ✓ report table byte-identical despite the dead worker")

	if *tableOut != "" {
		if err := os.WriteFile(*tableOut, []byte(clusterTable), 0o644); err != nil {
			log.Fatalf("-table-out: %v", err)
		}
		fmt.Printf("\ntable written to %s\n", *tableOut)
	}
}
