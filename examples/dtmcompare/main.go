// dtmcompare sweeps every DTM policy over a workload mix and prints the
// Fig. 4.3-style comparison: normalized running time, traffic, energy and
// thermal safety, with and without the PID formal controller.
package main

import (
	"flag"
	"fmt"
	"log"

	"dramtherm"
)

func main() {
	mixName := flag.String("mix", "W2", "workload mix (W1..W8)")
	cooling := flag.String("cooling", "AOHS_1.5", "AOHS_1.5 or FDHS_1.0")
	replicas := flag.Int("replicas", 6, "batch copies per application")
	scale := flag.Float64("instrscale", 0, "application length scale factor (0 = 1.0; small values for quick demos)")
	flag.Parse()

	cfg := dramtherm.DefaultConfig()
	cfg.Replicas = *replicas
	if *scale > 0 {
		cfg.InstrScale = *scale
	}
	sys := dramtherm.NewSystem(cfg)

	mix, err := dramtherm.MixByName(*mixName)
	if err != nil {
		log.Fatal(err)
	}
	cool := dramtherm.CoolingAOHS15
	if *cooling == "FDHS_1.0" {
		cool = dramtherm.CoolingFDHS10
	}

	base, err := sys.Baseline(mix, cool, dramtherm.Isolated)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s under %s — baseline %.0f s, %.0f GB\n\n", mix.Name, cool.Name(), base.Seconds, base.TotalTrafficGB())
	fmt.Printf("%-15s %9s %9s %9s %9s %7s %6s\n",
		"policy", "norm time", "traffic", "mem kJ", "cpu kJ", "maxAMB", "overs")
	for _, name := range dramtherm.PolicyNames() {
		if name == "No-limit" {
			continue
		}
		p, err := sys.NewPolicy(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Run(dramtherm.RunSpec{Mix: mix, Policy: p, Cooling: cool, Model: dramtherm.Isolated})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s %9.3f %9.3f %9.0f %9.0f %7.1f %6d\n",
			name,
			res.Seconds/base.Seconds,
			res.TotalTrafficGB()/base.TotalTrafficGB(),
			res.MemEnergyJ/1e3, res.CPUEnergyJ/1e3,
			res.MaxAMB, res.Overshoots)
	}
}
