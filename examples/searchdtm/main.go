// searchdtm demonstrates adaptive search end to end and checks its two
// promises against an exhaustive grid sweep of the same candidates:
//
//  1. Fidelity: the search finds the same best DTM configuration as the
//     exhaustive sweep.
//  2. Economy: at most half the candidates reach full-fidelity
//     simulation — the rest are pruned on cheap fidelity rungs.
//
// It also proves determinism (two independent searches render
// byte-identical report tables) and drives the HTTP surface: an
// embedded dramthermd runs the same search as an async job whose SSE
// stream carries round-boundary events.
//
// Usage:
//
//	go run ./examples/searchdtm
//	go run ./examples/searchdtm -strategy bounds -instrscale 0.02
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"dramtherm"
	"dramtherm/internal/core"
	"dramtherm/internal/httpapi"
	"dramtherm/internal/sweep"
)

func main() {
	var (
		workers  = flag.Int("workers", 0, "simulation worker pool width (0 = GOMAXPROCS)")
		strategy = flag.String("strategy", "halving", "search strategy: halving or bounds")
		full     = flag.Bool("full", false, "full-scale batches (default is a fast demo scale)")
		scale    = flag.Float64("instrscale", 0, "override the application length scale factor")
	)
	flag.Parse()

	cfg := dramtherm.DefaultConfig()
	if !*full {
		// Demo scale, as in examples/sweepgrid: one batch round, short
		// applications, lowered limits so the DTM policies engage.
		cfg.Replicas = 1
		cfg.InstrScale = 0.05
		cfg.Limits = dramtherm.ThermalLimits{AMBTDP: 103.5, DRAMTDP: 85, AMBTRP: 102.5, DRAMTRP: 84}
	}
	if *scale > 0 {
		cfg.InstrScale = *scale
	}

	candidates := dramtherm.Grid{
		Mixes:    []string{"W1", "W2"},
		Policies: []string{"DTM-TS", "DTM-BW", "DTM-ACG", "DTM-CDVFS"},
	}.Expand()

	// Exhaustive baseline: sweep every candidate at full fidelity.
	gridBest, gridObj, err := exhaustive(cfg, *workers, candidates)
	if err != nil {
		log.Fatalf("exhaustive sweep: %v", err)
	}
	fmt.Printf("exhaustive grid: %d full-fidelity simulations, best %s (%.3f)\n\n",
		len(candidates), gridBest, gridObj)

	// The same space, searched adaptively — twice, on cold engines, to
	// prove the rounds and tables are deterministic. Both runs must
	// succeed before their tables are compared: diffing against a
	// half-finished second search would report nondeterminism where the
	// real story is a failed run.
	res, err := search(cfg, *workers, *strategy, candidates)
	if err != nil {
		log.Fatalf("adaptive search: %v", err)
	}
	again, err := search(cfg, *workers, *strategy, candidates)
	if err != nil {
		log.Fatalf("adaptive search (determinism re-run): %v", err)
	}
	fmt.Print(res.Table("adaptive search").String())
	fmt.Printf("\nadaptive %s search: %d of %d candidates reached full fidelity, best %s (%.3f)\n",
		*strategy, res.FullFidelityRuns, len(candidates), res.Best, res.BestObjective)

	if t1, t2 := res.Table("t").String(), again.Table("t").String(); t1 != t2 {
		log.Fatalf("nondeterministic search: two cold runs rendered different tables:\n%s\nvs\n%s", t1, t2)
	}
	fmt.Println("determinism: two cold searches rendered byte-identical tables")
	// Compare canonical names: the searched winner carries an explicit
	// full-fidelity InstrScale of 1 where the grid spec left it 0, and
	// the two spell the same configuration.
	if res.Best.String() != gridBest.String() {
		log.Fatalf("search best %s != exhaustive best %s", res.Best, gridBest)
	}
	fmt.Println("fidelity: search winner matches the exhaustive winner")
	// Halving's economy holds by construction (each rung keeps half);
	// bound pruning adapts to the landscape — a flat one is correctly
	// kept whole rather than pruned at the risk of the optimum.
	if *strategy == "halving" && 2*res.FullFidelityRuns > len(candidates) {
		log.Fatalf("economy violated: %d of %d candidates simulated at full fidelity (want <= 50%%)",
			res.FullFidelityRuns, len(candidates))
	}
	fmt.Printf("economy: %d/%d candidates fully simulated\n\n", res.FullFidelityRuns, len(candidates))

	// The HTTP surface: the same search as an async job on an embedded
	// server, with round boundaries visible on the SSE stream.
	if err := serverSearch(cfg, *strategy); err != nil {
		log.Fatal(err)
	}
}

func exhaustive(cfg dramtherm.Config, workers int, specs []dramtherm.Spec) (dramtherm.Spec, float64, error) {
	eng, err := dramtherm.NewEngine(cfg, dramtherm.WithWorkers(workers))
	if err != nil {
		return dramtherm.Spec{}, 0, fmt.Errorf("engine: %w", err)
	}
	defer eng.Close()
	res, err := eng.Sweep(context.Background(), specs, dramtherm.SweepOptions{Normalize: true})
	if err != nil {
		return dramtherm.Spec{}, 0, err
	}
	best := 0
	for i := range specs {
		if res.Norms[i] < res.Norms[best] {
			best = i
		}
	}
	return specs[best], res.Norms[best], nil
}

func search(cfg dramtherm.Config, workers int, strategy string, candidates []dramtherm.Spec) (*dramtherm.SearchResult, error) {
	eng, err := dramtherm.NewEngine(cfg, dramtherm.WithWorkers(workers))
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	defer eng.Close()
	var strat dramtherm.Strategy
	switch strategy {
	case "halving":
		strat = &dramtherm.Halving{Candidates: candidates}
	case "bounds":
		strat = &dramtherm.BoundPrune{Candidates: candidates}
	default:
		return nil, fmt.Errorf("unknown -strategy %q (want halving or bounds)", strategy)
	}
	return eng.Search(context.Background(), strat, dramtherm.SearchOptions{Normalize: true})
}

// serverSearch submits the search as an async job against an embedded
// httpapi server and follows its SSE stream, expecting round-boundary
// events between the per-spec ones.
func serverSearch(cfg dramtherm.Config, strategy string) error {
	eng := sweep.NewEngine(core.NewSystem(cfg), 0)
	api := httpapi.New(context.Background(), eng, httpapi.Config{})
	defer api.Close()
	ts := httptest.NewServer(api)
	defer ts.Close()
	fmt.Printf("embedded dramthermd at %s\n", ts.URL)

	body, err := json.Marshal(map[string]any{
		"grid": sweep.Grid{
			Mixes:    []string{"W1", "W2"},
			Policies: []string{"DTM-TS", "DTM-BW", "DTM-ACG", "DTM-CDVFS"},
		},
		"normalize": true,
		"search":    map[string]any{"strategy": strategy},
	})
	if err != nil {
		return err
	}
	resp, err := http.Post(ts.URL+"/v1/sweeps?async=1", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	var submitted struct {
		ID string `json:"id"`
	}
	err = json.NewDecoder(resp.Body).Decode(&submitted)
	resp.Body.Close()
	if err != nil || submitted.ID == "" {
		return fmt.Errorf("submit failed (%s): %v", resp.Status, err)
	}
	fmt.Printf("submitted search job %s\n", submitted.ID)

	stream, err := http.Get(ts.URL + "/v1/runs/" + submitted.ID + "/events")
	if err != nil {
		return err
	}
	defer stream.Body.Close()
	rounds := 0
	sc := bufio.NewScanner(stream.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev sweep.JobEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			return fmt.Errorf("bad event %q: %w", line, err)
		}
		switch ev.Kind {
		case string(sweep.EventRoundStarted):
			fmt.Printf("  round %d started: rung %g, %d candidates\n", ev.Round, ev.Rung, ev.Total)
		case string(sweep.EventRoundFinished):
			fmt.Printf("  round %d finished: %d survive, %d pruned\n", ev.Round, ev.Survivors, ev.Pruned)
			rounds++
		case "done", "error", "cancelled":
			if ev.Kind != "done" {
				return fmt.Errorf("job ended %s", ev.Kind)
			}
			if rounds < 2 {
				return fmt.Errorf("only %d round_finished events on the SSE stream, want >= 2", rounds)
			}
			fmt.Printf("job done: %d rounds streamed over SSE\n", rounds)
			return nil
		}
	}
	return fmt.Errorf("event stream ended without a terminal event: %w", sc.Err())
}
