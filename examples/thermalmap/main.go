// thermalmap exercises the Chapter 3 models directly (no simulator): it
// sweeps memory throughput and prints the stable AMB and DRAM
// temperatures of every DIMM on an FBDIMM channel for both cooling
// configurations, then shows a step-response of the thermal RC dynamics —
// the raw behaviour behind Figs. 4.5–4.8.
package main

import (
	"fmt"

	"dramtherm/internal/fbconfig"
	"dramtherm/internal/power"
	"dramtherm/internal/thermal"
)

func main() {
	for _, cool := range fbconfig.ExperimentCoolings {
		ambient := fbconfig.AmbientIsolated.Inlet(cool)
		fmt.Printf("=== %s, ambient %.0f C (AMB TDP 110 C, DRAM TDP 85 C)\n", cool.Name(), ambient)
		fmt.Printf("%10s  %s\n", "traffic", "DIMM0..DIMM3: AMB / DRAM stable temperature (C)")
		for _, gbps := range []float64{0, 4, 8, 12, 16, 20} {
			perCh := power.ChannelTraffic{
				Read:  gbps * 0.75 / 4, // 4 physical channels, 3:1 read:write
				Write: gbps * 0.25 / 4,
				Share: power.EvenShares(4),
			}
			pw, err := power.ChannelWatts(fbconfig.DefaultDRAMPower, fbconfig.DefaultAMBPower, perCh)
			if err != nil {
				panic(err)
			}
			fmt.Printf("%7.0fGB/s ", gbps)
			for _, p := range pw {
				fmt.Printf(" %5.1f/%5.1f", thermal.StableAMB(cool, ambient, p), thermal.StableDRAM(cool, ambient, p))
			}
			fmt.Println()
		}
		fmt.Println()
	}

	// Step response: idle channel suddenly driven at 16 GB/s for 120 s,
	// then idled again — the τ=50 s AMB rise of §3.4.
	cool := fbconfig.CoolingAOHS15
	ambient := fbconfig.AmbientIsolated.Inlet(cool)
	idle := power.DIMMPower{AMB: fbconfig.DefaultAMBPower.IdleOther, DRAM: fbconfig.DefaultDRAMPower.Static}
	m := thermal.NewModel(cool, ambient, 4, idle)
	hot, err := power.ChannelWatts(fbconfig.DefaultDRAMPower, fbconfig.DefaultAMBPower, power.ChannelTraffic{
		Read: 3, Write: 1, Share: power.EvenShares(4),
	})
	if err != nil {
		panic(err)
	}
	idles := []power.DIMMPower{idle, idle, idle, idle}
	fmt.Println("step response (16 GB/s for 120 s, then idle), hottest AMB:")
	for t := 0; t < 240; t += 10 {
		pw := hot
		if t >= 120 {
			pw = idles
		}
		if err := m.Advance(pw, 10); err != nil {
			panic(err)
		}
		fmt.Printf("  t=%3ds  AMB %.1f C\n", t+10, m.HottestAMB())
	}
}
