package dramtherm

import (
	"context"
	"time"

	"dramtherm/internal/core"
	"dramtherm/internal/sweep"
	"dramtherm/internal/sweep/search"
)

// Re-exported sweep types: the concurrent engine's vocabulary, usable
// without importing any internal package. See internal/sweep for full
// documentation.
type (
	// Spec names one run by value — mix, policy, cooling, model — the
	// engine's canonical cache key (sweep.Spec).
	Spec = sweep.Spec
	// Grid expands (mixes × policies × coolings × models) into specs
	// (sweep.Grid).
	Grid = sweep.Grid
	// SweepOptions configures Engine.Sweep (sweep.Options).
	SweepOptions = sweep.Options
	// SweepResult is a completed sweep: per-spec results plus rendered
	// tables (sweep.Result).
	SweepResult = sweep.Result
	// Progress is one OnProgress callback payload (sweep.Progress).
	Progress = sweep.Progress
	// CacheStats snapshots the engine's run cache (sweep.Stats).
	CacheStats = sweep.Stats
	// StateStats snapshots the durable segment log (sweep.StateStats).
	StateStats = sweep.StateStats

	// Event is one per-spec (or per-round) lifecycle notification
	// delivered to SweepOptions.OnEvent and SearchOptions.OnEvent
	// (sweep.Event).
	Event = sweep.Event
	// EventKind classifies an Event (sweep.EventKind).
	EventKind = sweep.EventKind
	// Outcome tells how a run was served: built, cache hit, or joined
	// an in-flight duplicate (sweep.Outcome).
	Outcome = sweep.Outcome
	// RunInfo is the outcome plus the executing cluster peer
	// (sweep.RunInfo).
	RunInfo = sweep.RunInfo
)

// Event kinds delivered to OnEvent callbacks.
const (
	EventStarted       = sweep.EventStarted
	EventFinished      = sweep.EventFinished
	EventError         = sweep.EventError
	EventRoundStarted  = sweep.EventRoundStarted
	EventRoundFinished = sweep.EventRoundFinished
)

// Cache outcomes carried by Event.Outcome and RunInfo.Outcome.
const (
	Built  = sweep.Built
	Hit    = sweep.Hit
	Joined = sweep.Joined
)

// Re-exported adaptive-search types: plan sweeps round by round
// instead of exhaustively (internal/sweep/search).
type (
	// Strategy plans an adaptive search: Next(completed rounds) →
	// next round's specs, done (search.Strategy).
	Strategy = search.Strategy
	// SearchOptions configures Engine.Search (search.Options).
	SearchOptions = search.Options
	// SearchResult is a completed adaptive search: rounds, winner,
	// full-fidelity run count (search.Result).
	SearchResult = search.Result
	// SearchRound is one completed round of a search (search.Round).
	SearchRound = search.Round
	// Halving is the successive-halving strategy (search.Halving).
	Halving = search.Halving
	// BoundPrune is the bound-driven refinement strategy
	// (search.BoundPrune).
	BoundPrune = search.BoundPrune
)

// Engine is the public handle on the concurrent sweep engine: a
// deduplicating, memoizing run cache over a bounded simulation worker
// pool, with optional durable state. It embeds *sweep.Engine, so the
// full engine surface (Run, Sweep, Stats, Normalized, …) is available
// directly.
//
//	eng, err := dramtherm.NewEngine(dramtherm.DefaultConfig(),
//		dramtherm.WithWorkers(8),
//		dramtherm.WithStateDir("/var/lib/dramtherm/state"))
//	defer eng.Close()
//	res, err := eng.Sweep(ctx, dramtherm.Grid{
//		Mixes:    []string{"W1", "W2"},
//		Policies: []string{"DTM-TS", "DTM-ACG"},
//	}.Expand(), dramtherm.SweepOptions{Normalize: true})
type Engine struct {
	*sweep.Engine
}

// Search runs an adaptive multi-round sweep: the strategy plans each
// round from the completed ones, every round executes through the
// regular Sweep path (worker pool, run cache, batch backend, events),
// and the final full-fidelity round's best candidate wins.
//
//	res, err := eng.Search(ctx, &dramtherm.Halving{
//		Candidates: dramtherm.Grid{
//			Mixes:    []string{"W1", "W2"},
//			Policies: []string{"DTM-TS", "DTM-ACG"},
//		}.Expand(),
//	}, dramtherm.SearchOptions{Normalize: true})
func (e *Engine) Search(ctx context.Context, strat Strategy, opts SearchOptions) (*SearchResult, error) {
	return search.Run(ctx, e.Engine, strat, opts)
}

// engineOptions collects NewEngine's functional options.
type engineOptions struct {
	workers      int
	stateDir     string
	legacyState  string
	compactEvery time.Duration
	prefixShare  bool
}

// EngineOption configures NewEngine.
type EngineOption func(*engineOptions)

// WithWorkers sets the simulation worker-pool width (<= 0 selects
// GOMAXPROCS).
func WithWorkers(n int) EngineOption {
	return func(o *engineOptions) { o.workers = n }
}

// WithStateDir makes the engine's cache durable: completed runs and
// level-1 traces append to a crash-safe segment log under dir as they
// finish, and replay into the cache when the engine is built. An empty
// dir is a no-op, so flag values pass through unconditionally.
func WithStateDir(dir string) EngineOption {
	return func(o *engineOptions) { o.stateDir = dir }
}

// WithState is the migrating alias for pre-segment-log deployments:
// path names a legacy gob state file, which is imported once into the
// segment log (under path + ".d" unless WithStateDir overrides it) and
// renamed aside. An empty path is a no-op.
func WithState(path string) EngineOption {
	return func(o *engineOptions) { o.legacyState = path }
}

// WithCompactInterval sets the background segment-log compaction period
// (default 10m; 0 disables background compaction). Only meaningful with
// WithStateDir or WithState.
func WithCompactInterval(d time.Duration) EngineOption {
	return func(o *engineOptions) { o.compactEvery = d }
}

// WithPrefixSharing turns on prefix-state checkpointing: specs that
// differ only in DTM policy form a group whose shared warm-up prefix
// simulates once — the group's first run records its policy decisions
// and checkpoints the simulator at strided decision boundaries, and
// later policies resume from the checkpoint before their first
// divergent decision instead of replaying from t=0. Results are
// bit-identical to cold replay (the divergence differential suite in
// internal/simtest is the proof). With WithStateDir, checkpoint records
// persist in the segment log and survive restarts.
func WithPrefixSharing() EngineOption {
	return func(o *engineOptions) { o.prefixShare = true }
}

// NewEngine builds a concurrent sweep engine over a System configured
// by cfg. With no options the engine is purely in-memory; state options
// make its cache durable across restarts. Callers that enabled state
// should Close the engine when done.
func NewEngine(cfg Config, opts ...EngineOption) (*Engine, error) {
	o := engineOptions{compactEvery: 10 * time.Minute}
	for _, opt := range opts {
		opt(&o)
	}
	eng := sweep.NewEngine(core.NewSystem(cfg), o.workers)
	if o.prefixShare {
		// Before EnableSegmentLog, so replayed checkpoint records import
		// and completed groups gain the persistence hook.
		eng.EnablePrefixSharing()
	}
	dir := o.stateDir
	if dir == "" && o.legacyState != "" {
		dir = o.legacyState + ".d"
	}
	if dir != "" {
		if err := eng.EnableSegmentLog(dir, o.compactEvery); err != nil {
			return nil, err
		}
		if o.legacyState != "" {
			if _, err := eng.MigrateLegacyStateFile(o.legacyState); err != nil {
				eng.Close() //nolint:errcheck
				return nil, err
			}
		}
	}
	return &Engine{Engine: eng}, nil
}
