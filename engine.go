package dramtherm

import (
	"time"

	"dramtherm/internal/core"
	"dramtherm/internal/sweep"
)

// Re-exported sweep types: the concurrent engine's vocabulary, usable
// without importing any internal package. See internal/sweep for full
// documentation.
type (
	// Spec names one run by value — mix, policy, cooling, model — the
	// engine's canonical cache key (sweep.Spec).
	Spec = sweep.Spec
	// Grid expands (mixes × policies × coolings × models) into specs
	// (sweep.Grid).
	Grid = sweep.Grid
	// SweepOptions configures Engine.Sweep (sweep.Options).
	SweepOptions = sweep.Options
	// SweepResult is a completed sweep: per-spec results plus rendered
	// tables (sweep.Result).
	SweepResult = sweep.Result
	// Progress is one OnProgress callback payload (sweep.Progress).
	Progress = sweep.Progress
	// CacheStats snapshots the engine's run cache (sweep.Stats).
	CacheStats = sweep.Stats
	// StateStats snapshots the durable segment log (sweep.StateStats).
	StateStats = sweep.StateStats
)

// Engine is the public handle on the concurrent sweep engine: a
// deduplicating, memoizing run cache over a bounded simulation worker
// pool, with optional durable state. It embeds *sweep.Engine, so the
// full engine surface (Run, Sweep, Stats, Normalized, …) is available
// directly.
//
//	eng, err := dramtherm.NewEngine(dramtherm.DefaultConfig(),
//		dramtherm.WithWorkers(8),
//		dramtherm.WithStateDir("/var/lib/dramtherm/state"))
//	defer eng.Close()
//	res, err := eng.Sweep(ctx, dramtherm.Grid{
//		Mixes:    []string{"W1", "W2"},
//		Policies: []string{"DTM-TS", "DTM-ACG"},
//	}.Expand(), dramtherm.SweepOptions{Normalize: true})
type Engine struct {
	*sweep.Engine
}

// engineOptions collects NewEngine's functional options.
type engineOptions struct {
	workers      int
	stateDir     string
	legacyState  string
	compactEvery time.Duration
}

// EngineOption configures NewEngine.
type EngineOption func(*engineOptions)

// WithWorkers sets the simulation worker-pool width (<= 0 selects
// GOMAXPROCS).
func WithWorkers(n int) EngineOption {
	return func(o *engineOptions) { o.workers = n }
}

// WithStateDir makes the engine's cache durable: completed runs and
// level-1 traces append to a crash-safe segment log under dir as they
// finish, and replay into the cache when the engine is built. An empty
// dir is a no-op, so flag values pass through unconditionally.
func WithStateDir(dir string) EngineOption {
	return func(o *engineOptions) { o.stateDir = dir }
}

// WithState is the migrating alias for pre-segment-log deployments:
// path names a legacy gob state file, which is imported once into the
// segment log (under path + ".d" unless WithStateDir overrides it) and
// renamed aside. An empty path is a no-op.
func WithState(path string) EngineOption {
	return func(o *engineOptions) { o.legacyState = path }
}

// WithCompactInterval sets the background segment-log compaction period
// (default 10m; 0 disables background compaction). Only meaningful with
// WithStateDir or WithState.
func WithCompactInterval(d time.Duration) EngineOption {
	return func(o *engineOptions) { o.compactEvery = d }
}

// NewEngine builds a concurrent sweep engine over a System configured
// by cfg. With no options the engine is purely in-memory; state options
// make its cache durable across restarts. Callers that enabled state
// should Close the engine when done.
func NewEngine(cfg Config, opts ...EngineOption) (*Engine, error) {
	o := engineOptions{compactEvery: 10 * time.Minute}
	for _, opt := range opts {
		opt(&o)
	}
	eng := sweep.NewEngine(core.NewSystem(cfg), o.workers)
	dir := o.stateDir
	if dir == "" && o.legacyState != "" {
		dir = o.legacyState + ".d"
	}
	if dir != "" {
		if err := eng.EnableSegmentLog(dir, o.compactEvery); err != nil {
			return nil, err
		}
		if o.legacyState != "" {
			if _, err := eng.MigrateLegacyStateFile(o.legacyState); err != nil {
				eng.Close() //nolint:errcheck
				return nil, err
			}
		}
	}
	return &Engine{Engine: eng}, nil
}
