// Package dramtherm is the public facade of the library: a reproduction
// of "Thermal Modeling and Management of DRAM Memory Systems" (Lin,
// Zheng, Zhu, David, Zhang — ISCA 2007, plus the Chapter 5 follow-up
// measurement study).
//
// The facade exposes the high-level workflow — build a System, pick a
// workload mix, a DTM policy, a cooling configuration and a thermal
// model, then Run — while the full machinery lives in the internal
// packages:
//
//	internal/fbdimm, internal/memctrl  FBDIMM + controller simulator
//	internal/cpu, internal/cache       multicore and shared-L2 models
//	internal/workload                  synthetic SPEC application profiles
//	internal/power, internal/thermal   Chapter 3 models (Eqs. 3.1–3.6)
//	internal/pid, internal/dtm         PID controller and DTM policies
//	internal/sim                       two-level simulator (Level1 + MEMSpot)
//	internal/platform                  Chapter 5 server emulation
//	internal/exp                       one driver per paper table/figure
//
// Quickstart:
//
//	sys := dramtherm.NewSystem(dramtherm.DefaultConfig())
//	mix, _ := dramtherm.MixByName("W1")
//	p, _ := sys.NewPolicy("DTM-ACG")
//	res, _ := sys.Run(dramtherm.RunSpec{
//		Mix: mix, Policy: p,
//		Cooling: dramtherm.CoolingAOHS15, Model: dramtherm.Isolated,
//	})
//	fmt.Println(res.Seconds, res.MaxAMB)
package dramtherm

import (
	"dramtherm/internal/core"
	"dramtherm/internal/fbconfig"
	"dramtherm/internal/sim"
	"dramtherm/internal/workload"
)

// Re-exported types. See the internal packages for full documentation.
type (
	// Config parameterizes a System (core.Config).
	Config = core.Config
	// System is the simulation engine (core.System).
	System = core.System
	// RunSpec describes one level-2 run (core.RunSpec).
	RunSpec = core.RunSpec
	// Result is a level-2 run result (sim.MEMSpotResult).
	Result = sim.MEMSpotResult
	// Mix is a multiprogramming workload (workload.Mix).
	Mix = workload.Mix
	// Cooling is a Table 3.2 cooling configuration (fbconfig.Cooling).
	Cooling = fbconfig.Cooling
	// ThermalLimits are the TDP/TRP thresholds DTM policies act on
	// (fbconfig.ThermalLimits).
	ThermalLimits = fbconfig.ThermalLimits
	// ThermalModelKind selects isolated vs integrated ambient modeling.
	ThermalModelKind = core.ThermalModelKind
)

// Thermal model kinds.
const (
	Isolated   = core.Isolated
	Integrated = core.Integrated
)

// The two cooling configurations the paper evaluates (Table 3.2).
var (
	CoolingAOHS15 = fbconfig.CoolingAOHS15
	CoolingFDHS10 = fbconfig.CoolingFDHS10
)

// DefaultConfig returns the Chapter 4 system configuration.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewSystem builds a simulation engine.
func NewSystem(cfg Config) *System { return core.NewSystem(cfg) }

// MixByName returns a Table 4.2/5.2 workload mix (W1..W8, W11, W12).
func MixByName(name string) (Mix, error) { return workload.MixByName(name) }

// Mixes returns all workload mixes of the paper.
func Mixes() []Mix { return workload.Mixes }

// PolicyNames lists the available Chapter 4 DTM policies.
func PolicyNames() []string { return core.PolicyNames() }
