module dramtherm

go 1.24
