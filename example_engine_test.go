package dramtherm_test

import (
	"context"
	"fmt"
	"log"

	"dramtherm"
)

// ExampleNewEngine runs a small design-space sweep through the public
// facade: build an engine, expand a grid, sweep it on the worker pool.
// Add WithStateDir to make the cache durable across restarts — results
// persist as they complete, and a rerun finishes from cache.
func ExampleNewEngine() {
	eng, err := dramtherm.NewEngine(dramtherm.DefaultConfig(),
		dramtherm.WithWorkers(4))
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	specs := dramtherm.Grid{
		Mixes:    []string{"W1", "W2"},
		Policies: []string{"DTM-TS", "DTM-ACG"},
	}.Expand()
	res, err := eng.Sweep(context.Background(), specs, dramtherm.SweepOptions{
		Normalize: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, spec := range specs {
		fmt.Println(spec, res.Norms[i])
	}
}
