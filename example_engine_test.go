package dramtherm_test

import (
	"context"
	"fmt"
	"log"

	"dramtherm"
)

// ExampleNewEngine runs a small design-space sweep through the public
// facade: build an engine, expand a grid, sweep it on the worker pool.
// Add WithStateDir to make the cache durable across restarts — results
// persist as they complete, and a rerun finishes from cache.
func ExampleNewEngine() {
	eng, err := dramtherm.NewEngine(dramtherm.DefaultConfig(),
		dramtherm.WithWorkers(4))
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	specs := dramtherm.Grid{
		Mixes:    []string{"W1", "W2"},
		Policies: []string{"DTM-TS", "DTM-ACG"},
	}.Expand()
	res, err := eng.Sweep(context.Background(), specs, dramtherm.SweepOptions{
		Normalize: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, spec := range specs {
		fmt.Println(spec, res.Norms[i])
	}
}

// ExampleEngine_Sweep_onEvent observes a sweep's lifecycle through the
// facade alone: the OnEvent callback and everything it carries (Event,
// EventKind, Outcome) are usable without importing any internal
// package. Cache hits and deduplicated joins are distinguishable from
// fresh simulations by the event's Outcome.
func ExampleEngine_Sweep_onEvent() {
	eng, err := dramtherm.NewEngine(dramtherm.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	specs := dramtherm.Grid{Mixes: []string{"W1"},
		Policies: []string{"DTM-TS", "DTM-BW"}}.Expand()
	_, err = eng.Sweep(context.Background(), specs, dramtherm.SweepOptions{
		OnEvent: func(ev dramtherm.Event) {
			switch ev.Kind {
			case dramtherm.EventFinished:
				cached := ev.Outcome == dramtherm.Hit || ev.Outcome == dramtherm.Joined
				fmt.Printf("%s done in %.1fs (cached: %v, peer: %q)\n",
					ev.Spec, ev.Seconds, cached, ev.Peer)
			case dramtherm.EventError:
				fmt.Printf("%s failed: %v\n", ev.Spec, ev.Err)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
}

// ExampleEngine_Search finds the best DTM configuration adaptively:
// successive halving measures every candidate at a cheap fidelity rung
// (a fraction of the full application lengths), keeps the better half,
// and only the survivors reach full-fidelity simulation.
func ExampleEngine_Search() {
	eng, err := dramtherm.NewEngine(dramtherm.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	res, err := eng.Search(context.Background(), &dramtherm.Halving{
		Candidates: dramtherm.Grid{
			Mixes:    []string{"W1", "W2"},
			Policies: []string{"DTM-TS", "DTM-BW", "DTM-ACG", "DTM-CDVFS"},
		}.Expand(),
		Rungs: []float64{0.25, 1},
	}, dramtherm.SearchOptions{Normalize: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best %s (normalized %.3f) after %d full-fidelity runs\n",
		res.Best, res.BestObjective, res.FullFidelityRuns)
	fmt.Println(res.Table("search").String())
}
